package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E11", "E14"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("missing %s in list: %q", id, buf.String())
		}
	}
}

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3,E4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Proposition 9") || !strings.Contains(out, "Section 3.2") {
		t.Errorf("output: %q", out)
	}
	if strings.Contains(out, "Proposition 18") {
		t.Errorf("unselected experiment ran: %q", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}
