package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"E1", "E11", "E14"} {
		if !strings.Contains(buf.String(), id) {
			t.Errorf("missing %s in list: %q", id, buf.String())
		}
	}
}

func TestRunSelected(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E3,E4"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Proposition 9") || !strings.Contains(out, "Section 3.2") {
		t.Errorf("output: %q", out)
	}
	if strings.Contains(out, "Proposition 18") {
		t.Errorf("unselected experiment ran: %q", out)
	}
}

func TestUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestJSONTimings(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "-run", "E3,E4"}, &buf); err != nil {
		t.Fatal(err)
	}
	var timings []timing
	if err := json.Unmarshal(buf.Bytes(), &timings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if len(timings) != 2 {
		t.Fatalf("got %d records, want 2", len(timings))
	}
	for i, id := range []string{"E3", "E4"} {
		tm := timings[i]
		if tm.ID != id {
			t.Errorf("record %d id = %q, want %q", i, tm.ID, id)
		}
		if tm.Rows <= 0 {
			t.Errorf("%s rows = %d, want > 0", id, tm.Rows)
		}
		if tm.NS <= 0 {
			t.Errorf("%s ns = %d, want > 0", id, tm.NS)
		}
		if tm.Artifact == "" {
			t.Errorf("%s missing artifact", id)
		}
	}
	if strings.Contains(buf.String(), "completed in") {
		t.Error("-json must suppress the table rendering")
	}
}

// TestJSONRecordsWorkers checks the perf-trajectory attribution fields:
// -json output must carry the workers setting and the GOMAXPROCS the run
// had available.
func TestJSONRecordsWorkers(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-json", "-workers", "3", "-run", "E3"}, &buf); err != nil {
		t.Fatal(err)
	}
	var timings []timing
	if err := json.Unmarshal(buf.Bytes(), &timings); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, buf.String())
	}
	if len(timings) != 1 {
		t.Fatalf("got %d records, want 1", len(timings))
	}
	if timings[0].Workers != 3 {
		t.Errorf("workers = %d, want 3", timings[0].Workers)
	}
	if timings[0].GOMAXPROCS <= 0 {
		t.Errorf("gomaxprocs = %d, want > 0", timings[0].GOMAXPROCS)
	}
	if !strings.Contains(buf.String(), "\"workers\"") || !strings.Contains(buf.String(), "\"gomaxprocs\"") {
		t.Errorf("JSON missing attribution fields: %s", buf.String())
	}
}
