// Command elbench regenerates the experiment tables of EXPERIMENTS.md —
// one experiment per paper artifact (lemmas, counterexamples, algorithms,
// constructions, and the headline Proposition 18 paradox).
//
// Usage:
//
//	elbench              run the full suite
//	elbench -list        list experiments
//	elbench -run E11,E12 run selected experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"github.com/elin-go/elin/internal/exp"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	sel := fs.String("run", "", "comma-separated experiment ids (default: all)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := exp.All()
	if *list {
		for _, e := range all {
			fmt.Fprintln(out, e.ID)
		}
		return nil
	}

	var chosen []exp.Experiment
	if *sel == "" {
		chosen = all
	} else {
		for _, id := range strings.Split(*sel, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			chosen = append(chosen, e)
		}
	}

	for _, e := range chosen {
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if err := table.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
