// Command elbench regenerates the experiment tables of EXPERIMENTS.md —
// one experiment per paper artifact (lemmas, counterexamples, algorithms,
// constructions, and the headline Proposition 18 paradox).
//
// Usage:
//
//	elbench              run the full suite
//	elbench -list        list experiments
//	elbench -run E11,E12 run selected experiments
//	elbench -json        emit machine-readable per-experiment timings
//
// With -json the rendered tables are replaced by a JSON array of
// {id, artifact, rows, ns, workers, gomaxprocs} records — one per
// experiment — so successive runs can be archived (BENCH_*.json) and
// compared to track the performance trajectory across changes; the
// workers/gomaxprocs fields make each timing attributable to the
// exploration parallelism it ran with.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/elin-go/elin/internal/exp"
)

// timing is one experiment's machine-readable result.
type timing struct {
	// ID is the experiment identifier, e.g. "E8".
	ID string `json:"id"`
	// Artifact names the paper artifact the experiment reproduces.
	Artifact string `json:"artifact"`
	// Rows is the number of table rows the experiment produced.
	Rows int `json:"rows"`
	// NS is the wall-clock run time in nanoseconds.
	NS int64 `json:"ns"`
	// Workers is the exploration worker setting the run used (0 =
	// GOMAXPROCS).
	Workers int `json:"workers"`
	// GOMAXPROCS records the scheduler parallelism the run had available,
	// so timings stay attributable across machines.
	GOMAXPROCS int `json:"gomaxprocs"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elbench:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elbench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	sel := fs.String("run", "", "comma-separated experiment ids (default: all)")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-experiment timings instead of tables")
	workers := fs.Int("workers", 0, "exploration workers for the experiments: 0 = GOMAXPROCS, 1 = sequential")
	if err := fs.Parse(args); err != nil {
		return err
	}

	exp.SetWorkers(*workers)
	all := exp.All()
	if *list {
		for _, e := range all {
			fmt.Fprintln(out, e.ID)
		}
		return nil
	}

	var chosen []exp.Experiment
	if *sel == "" {
		chosen = all
	} else {
		for _, id := range strings.Split(*sel, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			chosen = append(chosen, e)
		}
	}

	var timings []timing
	for _, e := range chosen {
		start := time.Now()
		table, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonOut {
			timings = append(timings, timing{
				ID:         table.ID,
				Artifact:   table.Artifact,
				Rows:       len(table.Rows),
				NS:         time.Since(start).Nanoseconds(),
				Workers:    *workers,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			})
			continue
		}
		if err := table.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(timings)
	}
	return nil
}
