// Command elsim runs one of the built-in implementations under a chosen
// scheduler and base-object adversary, prints the recorded history, and
// optionally checks it on the spot.
//
// Usage:
//
//	elsim -impl cas-counter -procs 3 -ops 4 -sched random -seed 7 -check
//	elsim -impl el-consensus -procs 3 -ops 2 -chooser stale -policy window:2 -check
//	elsim -impl sloppy-counter -procs 2 -ops 8 -sched random -check -quiet
//	elsim -impl warmup-counter:4 -procs 2 -ops 8 -check -track
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elsim", flag.ContinueOnError)
	implName := fs.String("impl", "cas-counter", "implementation (see -list)")
	list := fs.Bool("list", false, "list implementations and exit")
	procs := fs.Int("procs", 2, "number of processes")
	ops := fs.Int("ops", 3, "operations per process")
	schedName := fs.String("sched", "rr", "scheduler: rr | random | solo:P | burst:N")
	chooserName := fs.String("chooser", "stale", "EL response chooser: true | stale | mix:P")
	policyName := fs.String("policy", "window:4", "EL stabilization policy: immediate | never | window:K")
	seed := fs.Int64("seed", 0, "random seed")
	maxSteps := fs.Int("max-steps", 0, "step bound (0 = default)")
	doCheck := fs.Bool("check", false, "check the history (lin, weak, MinT)")
	doTrack := fs.Bool("track", false, "track MinT across prefixes")
	quiet := fs.Bool("quiet", false, "suppress the history dump")
	emitJSON := fs.Bool("emit-json", false, "emit the history as a JSON event array (for elcheck -json)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range registry.ImplNames() {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	impl, err := registry.Impl(*implName)
	if err != nil {
		return err
	}
	sched, err := registry.Scheduler(*schedName)
	if err != nil {
		return err
	}
	chooser, err := registry.Chooser(*chooserName)
	if err != nil {
		return err
	}
	policy, err := registry.Policy(*policyName)
	if err != nil {
		return err
	}

	res, err := sim.Run(sim.Config{
		Impl:      impl,
		Workload:  registry.Workload(impl, *procs, *ops),
		Scheduler: sched,
		Chooser:   chooser,
		Policies:  base.SamePolicy(policy),
		Seed:      *seed,
		MaxSteps:  *maxSteps,
	})
	if err != nil {
		return err
	}

	if *emitJSON {
		data, err := json.Marshal(res.History)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	fmt.Fprintf(out, "impl=%s procs=%d ops=%d sched=%s chooser=%s policy=%s seed=%d\n",
		impl.Name(), *procs, *ops, sched.Name(), chooser.Name(), policy.Name(), *seed)
	fmt.Fprintf(out, "steps=%d timedout=%v events=%d\n", res.Steps, res.TimedOut, res.History.Len())
	for name, at := range res.StabilizedAt {
		fmt.Fprintf(out, "stabilized %s at event %d\n", name, at)
	}
	if !*quiet {
		fmt.Fprint(out, res.History.String())
	}

	objs := map[string]spec.Object{impl.Name(): impl.Spec()}
	if *doCheck {
		lin, err := check.Linearizable(objs, res.History, check.Options{})
		if err != nil {
			return err
		}
		wc, err := check.WeaklyConsistent(objs, res.History, check.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "linearizable=%v weakly-consistent=%v", lin, wc)
		mt, ok, err := check.MinT(impl.Spec(), res.History, check.Options{})
		if err == nil && ok {
			fmt.Fprintf(out, " MinT=%d", mt)
		}
		fmt.Fprintln(out)
	}
	if *doTrack {
		v, err := check.TrackMinT(impl.Spec(), res.History, maxInt(res.History.Len()/8, 2), check.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trend=%s final-MinT=%d slope=%.4f\n", v.Trend, v.FinalMinT, v.Slope)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
