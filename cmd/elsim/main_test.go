package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cas-counter") ||
		!strings.Contains(buf.String(), "el-consensus") {
		t.Errorf("list output: %q", buf.String())
	}
}

func TestRunCASCounter(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "cas-counter", "-procs", "2", "-ops", "2",
		"-sched", "random", "-seed", "3", "-check"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "linearizable=true") || !strings.Contains(out, "MinT=0") {
		t.Errorf("output: %q", out)
	}
	if !strings.Contains(out, "inv p0") {
		t.Errorf("history dump missing: %q", out)
	}
}

func TestRunELConsensusQuietTrack(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "el-consensus", "-procs", "3", "-ops", "2",
		"-chooser", "stale", "-policy", "window:2", "-quiet", "-track"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "inv p0") {
		t.Errorf("quiet run dumped the history: %q", out)
	}
	if !strings.Contains(out, "trend=") {
		t.Errorf("track output missing: %q", out)
	}
}

func TestRunWarmupCounterParam(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "warmup-counter:2", "-procs", "2", "-ops", "3",
		"-check", "-quiet"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "weakly-consistent=true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestRunMaxSteps(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "cas-counter", "-procs", "2", "-ops", "50",
		"-max-steps", "10", "-quiet"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "timedout=true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestEmitJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "cas-counter", "-procs", "2", "-ops", "1", "-emit-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(out, "[{") || !strings.Contains(out, `"kind":"inv"`) {
		t.Errorf("json output: %q", out)
	}
}

func TestErrors(t *testing.T) {
	bad := [][]string{
		{"-impl", "nosuch"},
		{"-impl", "cas-counter", "-sched", "nosuch"},
		{"-impl", "cas-counter", "-chooser", "nosuch"},
		{"-impl", "cas-counter", "-policy", "nosuch"},
		{"-impl", "warmup-counter:xx"},
	}
	for _, args := range bad {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestGoldenRun pins the complete output of a deterministic run: scheduler,
// chooser and policy are all pure functions of the seed, so any drift here
// is a real behaviour change, not noise.
func TestGoldenRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "warmup-counter:2", "-procs", "2", "-ops", "2",
		"-sched", "rr", "-chooser", "stale", "-policy", "window:2", "-seed", "5",
		"-check", "-track"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	want := `impl=warmup-counter procs=2 ops=2 sched=roundrobin chooser=stale policy=window(2) seed=5
steps=18 timedout=false events=8
  0  inv p0 warmup-counter fetchinc
  1  inv p1 warmup-counter fetchinc
  2  res p0 warmup-counter 0
  3  inv p0 warmup-counter fetchinc
  4  res p1 warmup-counter 0
  5  inv p1 warmup-counter fetchinc
  6  res p0 warmup-counter 2
  7  res p1 warmup-counter 3
linearizable=false weakly-consistent=true MinT=3
trend=stabilized final-MinT=3 slope=0.0000
`
	if buf.String() != want {
		t.Errorf("golden output drift:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
