package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/elin-go/elin/internal/exp"
	"github.com/elin-go/elin/internal/scenario"
)

// runBench is the experiment-suite subcommand (the retired elbench): one
// experiment per paper artifact, each regenerating its EXPERIMENTS.md
// table.
func runBench(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin bench", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiments and exit")
	sel := fs.String("run", "", "comma-separated experiment ids (default: all)")
	jsonOut := fs.Bool("json", false, "emit machine-readable per-experiment timings instead of tables")
	workers := fs.Int("workers", 0, "exploration workers for the experiments: 0 = GOMAXPROCS, 1 = sequential")
	stress := fs.Bool("stress", false, "append the live stress trajectory records (unified Reports) to the -json output")
	stressOps := fs.Int("stress-ops", 250000, "per-client operation budget of the -stress records (default: 1M total ops at 4 clients, the historical archive scale)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := exp.All()
	if *list {
		for _, e := range all {
			fmt.Fprintln(out, e.ID)
		}
		return nil
	}

	var chosen []exp.Experiment
	if *sel == "" {
		chosen = all
	} else {
		for _, id := range strings.Split(*sel, ",") {
			e, ok := exp.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			chosen = append(chosen, e)
		}
	}

	// Timings use the shared scenario.Timing record — the BENCH_*.json
	// trajectory format, one encoder with campaign per-cell perf records so
	// the two cannot drift.
	cfg := exp.Config{Workers: *workers}
	var timings []scenario.Timing
	for _, e := range chosen {
		start := time.Now()
		table, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *jsonOut {
			timings = append(timings, scenario.Timing{
				ID:         table.ID,
				Artifact:   table.Artifact,
				Rows:       len(table.Rows),
				NS:         time.Since(start).Nanoseconds(),
				Workers:    *workers,
				GOMAXPROCS: runtime.GOMAXPROCS(0),
			})
			continue
		}
		if err := table.Render(out); err != nil {
			return err
		}
		fmt.Fprintf(out, "(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
	if *jsonOut {
		records := make([]any, 0, len(timings)+3)
		for _, t := range timings {
			records = append(records, t)
		}
		if *stress {
			reps, err := stressTrajectory(*stressOps)
			if err != nil {
				return err
			}
			records = append(records, reps...)
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	return nil
}

// stressTrajectory runs the archived live stress configurations and
// returns their unified Reports — the BENCH_*.json stress records since
// the CLI merge. The scenario Name identifies each configuration across
// archives; throughput/latency live in the report's perf section.
func stressTrajectory(ops int) ([]any, error) {
	// The serve rows go over real loopback TCP, so a round trip — not the
	// object apply — dominates each op; a tenth of the in-process budget
	// keeps the archive regeneration time flat while the percentiles stay
	// stable.
	serveOps := ops / 10
	if serveOps < 1 {
		serveOps = ops
	}
	configs := []struct {
		engine string
		s      scenario.Scenario
	}{
		{"live", scenario.Scenario{Name: "STRESS-atomic-fi-c4", Impl: "atomic-fi", Procs: 4, Ops: ops, Seed: 1, Stride: 512, LatencySample: 8}},
		{"live", scenario.Scenario{Name: "STRESS-mutex-fi-c4", Impl: "mutex-fi", Procs: 4, Ops: ops, Seed: 1, Stride: 512, LatencySample: 8}},
		{"live", scenario.Scenario{Name: "STRESS-atomic-fi-c8-nomon", Impl: "atomic-fi", Procs: 8, Ops: ops, Seed: 1, NoMonitor: true, LatencySample: 8}},
		// The WAL-on rows price durability against the no-WAL row above:
		// sync never = the framing + write() cost alone, interval:4096 = the
		// amortized-fsync production setting. (always would fsync per commit
		// — measurable with elin stress -wal-sync always, too slow to archive.)
		{"live", scenario.Scenario{Name: "STRESS-atomic-fi-c8-nomon-wal-never", Impl: "atomic-fi", Procs: 8, Ops: ops, Seed: 1, NoMonitor: true, LatencySample: 8, WALSync: "never"}},
		{"live", scenario.Scenario{Name: "STRESS-atomic-fi-c8-nomon-wal-i4096", Impl: "atomic-fi", Procs: 8, Ops: ops, Seed: 1, NoMonitor: true, LatencySample: 8, WALSync: "interval:4096"}},
		// The stabilizing-log rows price the promotion knob on the lock-free
		// fast path: batch 1 pays a full promotion per op (linearizable —
		// comparable head-on with atomic-fi), batch 64 answers speculatively
		// and promotes 1/64th as often. Monitored at batch 1; the batch-64
		// row is throughput-only (its speculative staleness is the point,
		// not a verdict).
		{"live", scenario.Scenario{Name: "SLOG-fi-b1-c4", Impl: "slog-fi:1", Procs: 4, Ops: ops, Seed: 1, Stride: 512, LatencySample: 8}},
		{"live", scenario.Scenario{Name: "SLOG-fi-b1-c8-nomon", Impl: "slog-fi:1", Procs: 8, Ops: ops, Seed: 1, NoMonitor: true, LatencySample: 8}},
		{"live", scenario.Scenario{Name: "SLOG-fi-b64-c8-nomon", Impl: "slog-fi:64", Procs: 8, Ops: ops, Seed: 1, NoMonitor: true, LatencySample: 8}},
		// The MON-* rows price online monitoring itself at one fixed workload
		// (the ISSUE-10 monitored-gap matrix): full sequential checking vs
		// the pipelined shard:4 monitor vs record-only. The gap between full
		// and none is what monitoring costs; shard:4 is how much of it the
		// worker pool buys back.
		{"live", scenario.Scenario{Name: "MON-atomic-fi-c4-full", Impl: "atomic-fi", Procs: 4, Ops: ops, Seed: 1, Stride: 512, LatencySample: 8, Monitor: "full"}},
		{"live", scenario.Scenario{Name: "MON-atomic-fi-c4-shard4", Impl: "atomic-fi", Procs: 4, Ops: ops, Seed: 1, Stride: 512, LatencySample: 8, Monitor: "shard:4"}},
		{"live", scenario.Scenario{Name: "MON-atomic-fi-c4-none", Impl: "atomic-fi", Procs: 4, Ops: ops, Seed: 1, LatencySample: 8, Monitor: "none"}},
		// The networked rows: client-observed latency percentiles under load
		// (p50/p95/p99 in the perf section), clean and under the flaky-net
		// fault plane — the retry/backoff cost shows up as the tail spread
		// between the two.
		{"serve", scenario.Scenario{Name: "SERVE-atomic-fi-c4", Impl: "atomic-fi", Procs: 4, Ops: serveOps, Seed: 1, Stride: 512, LatencySample: 8}},
		{"serve", scenario.Scenario{Name: "SERVE-atomic-fi-c4-flaky", Impl: "atomic-fi", Procs: 4, Ops: serveOps, Seed: 1, Stride: 512, LatencySample: 8, NetFaults: "flaky-net"}},
	}
	dir, err := os.MkdirTemp("", "elin-bench-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	var out []any
	for _, cfg := range configs {
		s := cfg.s
		s.NoVerify = true // trajectory records time the hot path, not the replay
		if s.WALSync != "" {
			s.WAL = filepath.Join(dir, s.Name+".wal")
		}
		rep, err := scenario.Run(cfg.engine, s)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		if rep.Trend != nil {
			// Archives track the summary (trend, final MinT, window count),
			// not a million-op run's per-window sample list.
			rep.Trend.Samples = rep.Trend.Samples[:0]
		}
		out = append(out, rep)
	}
	return out, nil
}
