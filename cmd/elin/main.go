// Command elin is the toolkit's multitool: one scenario vocabulary, ten
// subcommands, four execution engines, one report schema.
//
//	elin explore  exhaustive bounded exploration (lin | weak | valency | stable)
//	elin sim      one seeded simulation run, checked after the fact
//	elin check    check a recorded history against the paper's conditions
//	elin stress   live goroutine stress run or fuzz campaign
//	elin serve    long-lived networked object server (framed TCP, fault plane)
//	elin load     retrying client fleet against a server (-self = serve engine)
//	elin recover  recover a crashed run's commit log and continue it
//	elin sweep    declarative scenario grid with baseline diffing (the CI gate)
//	elin compare  head-to-head of two impl families over matched grid cells
//	elin bench    regenerate the experiment tables / machine-readable timings
//	elin list     registry contents (implementations, engines, workloads, ...)
//
// Every execution subcommand is a thin shell over internal/scenario: flags
// build one Scenario value, the named engine runs it, and -json emits the
// unified Report (schema elin/report/v1) on every engine alike.
//
// Usage examples:
//
//	elin explore -impl cas-counter -procs 2 -ops 2 -mode lin -depth 22
//	elin explore -impl reg-consensus -procs 2 -ops 1 -mode valency -depth 18
//	elin sim -impl warmup-counter:4 -procs 2 -ops 8 -chooser stale -dump
//	elin sim -impl cas-counter -emit-json | elin check -json -obj cas-counter=fetchinc -mode lin
//	elin stress -impl atomic-fi -procs 8 -ops 100000
//	elin stress -impl junk-fi:40 -procs 2 -ops 2000 -fuzz 4
//	elin stress -impl el-fi -serial -wal run.wal -crash-at 6000 -ops 5000
//	elin serve -impl atomic-fi -addr 127.0.0.1:7400 -net-faults flaky-net -wal run.wal
//	elin load -addr 127.0.0.1:7400 -procs 4 -ops 20000
//	elin load -self -impl atomic-fi -procs 4 -ops 20000 -net-faults partition:120+40
//	elin recover -wal run.wal -ops 2000
//	elin recover -wal run.wal -corrupt trunc:7
//	elin sweep -spec .github/sweeps/smoke.json -baseline .github/sweeps/smoke.baseline.json
//	elin compare -grid .github/sweeps/e19.json -impls-a slog-register -impls-b localcopy-register
//	elin bench -run E8,E11 -json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/elin-go/elin/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elin:", err)
		os.Exit(1)
	}
}

// run dispatches a subcommand; out receives all normal output (tests drive
// this directly).
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "explore":
		return runExplore(rest, out)
	case "sim":
		return runSim(rest, out)
	case "check":
		return runCheck(rest, out)
	case "stress":
		return runStress(rest, out)
	case "serve":
		return runServe(rest, out)
	case "load":
		return runLoad(rest, out)
	case "recover":
		return runRecover(rest, out)
	case "sweep":
		return runSweep(rest, out)
	case "compare":
		return runCompare(rest, out)
	case "bench":
		return runBench(rest, out)
	case "list":
		return runList(rest, out)
	case "help", "-h", "-help", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage(out io.Writer) {
	fmt.Fprint(out, `usage: elin <command> [flags]

commands:
  explore   exhaustive bounded exploration (lin | weak | valency | stable)
  sim       one seeded simulation run, checked after the fact
  check     check a recorded history file (or stdin)
  stress    live goroutine stress run or fuzz campaign
  serve     long-lived networked object server with the fault plane and monitor
  load      retrying client fleet against a server (-self runs the serve engine)
  recover   recover a commit log, continue the run, verify the stitched history
  sweep     declarative scenario grid: expand, execute, diff against a baseline
  compare   head-to-head of two impl families over matched grid cells
  bench     experiment tables / machine-readable timings
  list      registry contents
  help      this text

run 'elin <command> -h' for the command's flags.
`)
}

// scenarioFlags are the shared scenario vocabulary every execution
// subcommand speaks.
type scenarioFlags struct {
	impl      *string
	workload  *string
	policy    *string
	procs     *int
	ops       *int
	seed      *int64
	tolerance *int
	jsonOut   *bool
	quiet     *bool
}

// addScenarioFlags registers the shared flags with per-command defaults.
// defSeed stays 1 for stress (the live runtime's historical default, so
// archived runs remain reproducible by default invocation) and 0
// elsewhere.
func addScenarioFlags(fs *flag.FlagSet, defImpl string, defProcs, defOps int, defPolicy string, defSeed int64) *scenarioFlags {
	return &scenarioFlags{
		impl:      fs.String("impl", defImpl, "object/implementation under test (see 'elin list')"),
		workload:  fs.String("workload", "default", "operation mix: default | uniform:OP | rw:P | zipf:S"),
		policy:    fs.String("policy", defPolicy, "EL stabilization policy: immediate | never | window:K"),
		procs:     fs.Int("procs", defProcs, "number of processes / client goroutines"),
		ops:       fs.Int("ops", defOps, "operations per process"),
		seed:      fs.Int64("seed", defSeed, "random seed (schedules, choices, client streams)"),
		tolerance: fs.Int("tolerance", 0, "t-linearizability tolerance of the verdict (-1 = observe only)"),
		jsonOut:   fs.Bool("json", false, "emit the unified Report as JSON (schema elin/report/v1)"),
		quiet:     fs.Bool("quiet", false, "suppress witness history dumps"),
	}
}

// scenario builds the Scenario base value.
func (f *scenarioFlags) scenario() scenario.Scenario {
	return scenario.Scenario{
		Impl:      *f.impl,
		Workload:  *f.workload,
		Policy:    *f.policy,
		Procs:     *f.procs,
		Ops:       *f.ops,
		Seed:      *f.seed,
		Tolerance: *f.tolerance,
	}
}

// emit writes the report: JSON when requested, the human rendering
// otherwise (with witness histories stripped under -quiet).
func (f *scenarioFlags) emit(out io.Writer, rep *scenario.Report) error {
	if *f.jsonOut {
		return rep.EncodeJSON(out)
	}
	if *f.quiet && rep.Witness != nil {
		cp := *rep
		w := *rep.Witness
		w.History = ""
		cp.Witness = &w
		rep = &cp
	}
	return rep.Render(out)
}
