package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/loadgen"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/scenario"
)

// runLoad drives a retrying client fleet at a server. Two modes:
//
//   - `-self`: stand the server up in-process and run the full serve
//     engine — monitor verdict, exactly-once ledger, replay check. This is
//     the form sweep repro commands print, and it is byte-for-byte the
//     scenario a serve campaign cell ran.
//   - `-addr HOST:PORT`: load an external `elin serve` process. The fleet
//     reports its own ledger and latency percentiles; the monitor verdict
//     lives with the server (interrupt it for the report).
//
// Either way the exit status is the exactly-once contract: any lost or
// duplicated commit is a non-zero exit.
func runLoad(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin load", flag.ContinueOnError)
	sf := addScenarioFlags(fs, "atomic-fi", 4, 10000, "window:400", 1)
	addr := fs.String("addr", "", "server address to load (exactly one of -addr and -self)")
	self := fs.Bool("self", false, "serve in-process: the self-contained serve engine")
	netFaults := fs.String("net-faults", "", "network fault plane, -self only (the server injects the faults)")
	walPath := fs.String("wal", "", "durable commit log path (-self only)")
	walSync := fs.String("wal-sync", "", "WAL durability: always | never | interval:N (-self only)")
	stride := fs.Int("stride", 0, "monitor window stride in events (0 = auto; -self only)")
	monitor := fs.String("monitor", "", "monitor spec: full | sample:N | shard:K | shard:key | none (-self only)")
	noMonitor := fs.Bool("nomonitor", false, "disable the server-side monitor (-self only)")
	noVerify := fs.Bool("noverify", false, "skip the replay-identical check (-self only)")
	rate := fs.Float64("rate", 0, "per-client open-loop pacing in ops/sec (0 = closed loop)")
	latSample := fs.Int("latsample", 1, "record every Nth operation's latency")
	maxAttempts := fs.Int("max-attempts", 0, "connection attempts per pending op before a client gives up (0 = 200)")
	backoffBase := fs.Duration("backoff-base", 0, "reconnect backoff base (0 = 200µs)")
	backoffCap := fs.Duration("backoff-cap", 0, "reconnect backoff cap (0 = 50ms)")
	ioTimeout := fs.Duration("io-timeout", 0, "per-dial and per-response wait bound (0 = 10s)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *self == (*addr != "") {
		return fmt.Errorf("load: exactly one of -addr and -self")
	}

	if *self {
		s := sf.scenario()
		s.NetFaults = *netFaults
		s.WAL = *walPath
		s.WALSync = *walSync
		s.Stride = *stride
		s.Monitor = *monitor
		s.NoMonitor = *noMonitor
		s.NoVerify = *noVerify
		s.Rate = *rate
		s.LatencySample = *latSample
		rep, err := scenario.Run("serve", s)
		if err != nil {
			return err
		}
		if err := sf.emit(out, rep); err != nil {
			return err
		}
		if rep.Verdict != scenario.VerdictOK {
			return fmt.Errorf("load: %s", rep.Detail)
		}
		return nil
	}

	// External server: resolve the same generator the serve engine would,
	// run the fleet, report the client-side view. The retry-shaping flags
	// matter here — against a real network they are the tuning surface.
	for flagName, set := range map[string]bool{
		"net-faults": *netFaults != "", "wal": *walPath != "", "wal-sync": *walSync != "",
		"stride": *stride != 0, "monitor": *monitor != "", "nomonitor": *noMonitor, "noverify": *noVerify,
	} {
		if set {
			return fmt.Errorf("load: -%s is server-side state and needs -self (or pass it to 'elin serve')", flagName)
		}
	}
	pol, err := registry.Policy(*sf.policy)
	if err != nil {
		return err
	}
	obj, err := registry.LiveObject(*sf.impl, *sf.procs, pol, *sf.seed, check.Options{})
	if err != nil {
		return err
	}
	gen, err := registry.OpGenByName(*sf.workload, obj.Spec())
	if err != nil {
		return err
	}
	res, lerr := loadgen.Run(loadgen.Config{
		Addr:          *addr,
		Clients:       *sf.procs,
		Ops:           *sf.ops,
		Gen:           gen,
		Seed:          *sf.seed,
		Rate:          *rate,
		LatencySample: *latSample,
		MaxAttempts:   *maxAttempts,
		BackoffBase:   *backoffBase,
		BackoffCap:    *backoffCap,
		IOTimeout:     *ioTimeout,
	})
	if res != nil {
		fmt.Fprintf(out, "load %s: clients=%d ops=%d completed=%d lost=%d duplicated=%d\n",
			*addr, res.Clients, res.Ops, res.Completed, res.Lost, res.Duplicated)
		fmt.Fprintf(out, "  retries=%d reconnects=%d refused=%d elapsed=%v throughput=%.0f ops/s\n",
			res.Retries, res.Reconnects, res.Refused, res.Elapsed.Round(time.Millisecond), res.Throughput())
		fmt.Fprintf(out, "  latency: p50=%v p95=%v p99=%v max=%v\n",
			time.Duration(res.P50NS), time.Duration(res.P95NS),
			time.Duration(res.P99NS), time.Duration(res.MaxNS))
	}
	if lerr != nil {
		return lerr
	}
	if res.Lost > 0 || res.Duplicated > 0 {
		return fmt.Errorf("load: exactly-once broken: %d lost, %d duplicated commits", res.Lost, res.Duplicated)
	}
	return nil
}
