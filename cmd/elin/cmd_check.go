package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/spec"
)

// objFlags collects repeatable -obj NAME=TYPE[:init] specifications.
type objFlags map[string]spec.Object

func (o objFlags) String() string { return fmt.Sprintf("%d objects", len(o)) }

func (o objFlags) Set(v string) error {
	name, typ, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=TYPE, got %q", v)
	}
	obj, err := registry.TypeByName(typ)
	if err != nil {
		return err
	}
	o[name] = obj
	return nil
}

// runCheck is the recorded-history subcommand (the retired elcheck):
// linearizability, t-linearizability (Definition 2), MinT, weak
// consistency (Definition 1) and the MinT-trend classification. Histories
// are the compact text serialization or a JSON event array (-json); with
// no file argument, stdin is read.
func runCheck(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin check", flag.ContinueOnError)
	objs := objFlags{}
	fs.Var(objs, "obj", "object spec NAME=TYPE[:init] (repeatable), e.g. X=fetchinc")
	mode := fs.String("mode", "lin", "check: lin | tlin | mint | mintlocal | weak | track | legal")
	tval := fs.Int("t", 0, "t for -mode tlin")
	stride := fs.Int("stride", 8, "prefix stride for -mode track")
	asJSON := fs.Bool("json", false, "input is a JSON event array")
	budget := fs.Int64("budget", 0, "search budget (0 = default)")
	witness := fs.Bool("witness", false, "print a witness linearization (modes tlin, mint)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(objs) == 0 {
		return fmt.Errorf("at least one -obj NAME=TYPE is required")
	}

	h, err := loadHistory(fs.Args(), *asJSON)
	if err != nil {
		return err
	}
	opts := check.Options{Budget: *budget}

	switch *mode {
	case "lin":
		ok, badObj, err := check.LinearizableExplain(objs, h, opts)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintln(out, "linearizable: true")
			return nil
		}
		fmt.Fprintf(out, "linearizable: false (object %s)\n", badObj)
	case "tlin":
		obj, err := singleObject(objs, h)
		if err != nil {
			return err
		}
		ok, err := check.TLinearizable(obj, h, *tval, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d-linearizable: %v\n", *tval, ok)
		if ok && *witness {
			if err := printWitness(out, obj, h, *tval, opts); err != nil {
				return err
			}
		}
	case "mint":
		obj, err := singleObject(objs, h)
		if err != nil {
			return err
		}
		t, ok, err := check.MinT(obj, h, opts)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Fprintln(out, "MinT: none (not t-linearizable for any t)")
			return nil
		}
		fmt.Fprintf(out, "MinT: %d (of %d events)\n", t, h.Len())
		if *witness {
			if err := printWitness(out, obj, h, t, opts); err != nil {
				return err
			}
		}
	case "weak":
		ok, badOp, err := check.WeaklyConsistentExplain(objs, h, opts)
		if err != nil {
			return err
		}
		if ok {
			fmt.Fprintln(out, "weakly consistent: true")
			return nil
		}
		fmt.Fprintf(out, "weakly consistent: false (operation %s)\n", badOp)
	case "track":
		obj, err := singleObject(objs, h)
		if err != nil {
			return err
		}
		v, err := check.TrackMinT(obj, h, *stride, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "trend: %s  final MinT: %d  slope: %.4f\n", v.Trend, v.FinalMinT, v.Slope)
		for _, s := range v.Samples {
			fmt.Fprintf(out, "  events %5d  MinT %5d\n", s.Events, s.MinT)
		}
	case "legal":
		ok, err := check.Legal(objs, h)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "legal sequential history: %v\n", ok)
	case "mintlocal":
		local, err := check.MinTLocal(objs, h, opts)
		if err != nil {
			return err
		}
		names := h.Objects()
		for _, name := range names {
			fmt.Fprintf(out, "t_%s = %d (of %d events in H|%s)\n",
				name, local[name], h.ByObject(name).Len(), name)
		}
		lift, err := check.MinTGlobalUpper(objs, h, opts)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "global MinT <= %d (Lemma 7 lift, of %d events)\n", lift, h.Len())
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}

func printWitness(out io.Writer, obj spec.Object, h *history.History, t int, opts check.Options) error {
	steps, ok, err := check.Linearization(obj, h, t, opts)
	if err != nil {
		return fmt.Errorf("witness extraction: %w", err)
	}
	if !ok {
		return fmt.Errorf("witness extraction disagreed with the decision procedure")
	}
	fmt.Fprintf(out, "witness %d-linearization:\n%s", t, check.FormatLinearization(steps))
	return nil
}

func singleObject(objs map[string]spec.Object, h *history.History) (spec.Object, error) {
	names := h.Objects()
	if len(names) != 1 {
		return spec.Object{}, fmt.Errorf("mode needs a single-object history, got %d objects", len(names))
	}
	obj, ok := objs[names[0]]
	if !ok {
		return spec.Object{}, fmt.Errorf("no -obj specification for %q", names[0])
	}
	return obj, nil
}

func loadHistory(args []string, asJSON bool) (*history.History, error) {
	var r io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if asJSON {
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, err
		}
		var h history.History
		if err := json.Unmarshal(data, &h); err != nil {
			return nil, err
		}
		return &h, nil
	}
	return history.ReadText(r)
}
