package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"github.com/elin-go/elin/internal/campaign"
	"github.com/elin-go/elin/internal/compare"
)

// runCompare is the head-to-head subcommand: match the cells of two
// implementation families coordinate-for-coordinate and report per-cell
// t-lin trends, stabilization points, throughput and a deterministic
// winner (schema elin/compare/v1). Two input forms:
//
//	elin compare -a slog.json -b localcopy.json
//	    two campaign reports (elin sweep -json) sweeping the same grid
//	    with different impl axes
//	elin compare -grid e19.json -impls-a slog-register -impls-b localcopy-register
//	    one file holding both families: a campaign report, or a sweep
//	    spec (schema elin/sweep/v1) to expand and run in place
func runCompare(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin compare", flag.ContinueOnError)
	aPath := fs.String("a", "", "side-a campaign report file")
	bPath := fs.String("b", "", "side-b campaign report file")
	gridPath := fs.String("grid", "", "one grid holding both families: campaign report or sweep spec (runs the sweep)")
	implsA := fs.String("impls-a", "", "comma-separated side-a impl coordinates of the -grid file")
	implsB := fs.String("impls-b", "", "comma-separated side-b impl coordinates of the -grid file")
	workers := fs.Int("workers", 0, "concurrent cells when -grid runs a sweep spec (0 = GOMAXPROCS)")
	jsonOut := fs.Bool("json", false, "emit the comparison report as JSON (schema elin/compare/v1)")
	canonical := fs.Bool("canonical", false, "emit the canonical (throughput-free) report JSON — byte-stable for deterministic grids; implies -json")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var rep *compare.Report
	switch {
	case *gridPath != "":
		if *aPath != "" || *bPath != "" {
			return fmt.Errorf("compare: -grid and -a/-b are mutually exclusive")
		}
		a, b := splitImplList(*implsA), splitImplList(*implsB)
		if len(a) == 0 || len(b) == 0 {
			return fmt.Errorf("compare: -grid needs -impls-a and -impls-b to name the two families")
		}
		camp, err := loadOrRunGrid(*gridPath, *workers)
		if err != nil {
			return err
		}
		rep, err = compare.Split(camp, a, b)
		if err != nil {
			return err
		}
	case *aPath != "" && *bPath != "":
		a, err := campaign.Load(*aPath)
		if err != nil {
			return err
		}
		b, err := campaign.Load(*bPath)
		if err != nil {
			return err
		}
		rep, err = compare.Campaigns(a, b)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("compare: need either -a and -b (two campaign reports) or -grid with -impls-a/-impls-b")
	}

	switch {
	case *canonical:
		return rep.Canonical().EncodeJSON(out)
	case *jsonOut:
		return rep.EncodeJSON(out)
	default:
		return rep.Render(out)
	}
}

// loadOrRunGrid reads a -grid file: a campaign report loads directly, a
// sweep spec expands and runs (the one-shot E19-style flow).
func loadOrRunGrid(path string, workers int) (*campaign.Campaign, error) {
	camp, loadErr := campaign.Load(path)
	if loadErr == nil {
		return camp, nil
	}
	sp, specErr := campaign.LoadSpec(path)
	if specErr != nil {
		return nil, fmt.Errorf("compare: %s is neither a campaign report (%v) nor a sweep spec (%v)", path, loadErr, specErr)
	}
	return campaign.Run(sp, campaign.RunOptions{Workers: workers})
}

// splitImplList parses a comma-separated impl list, dropping empty
// entries.
func splitImplList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
