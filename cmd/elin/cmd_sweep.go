package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"github.com/elin-go/elin/internal/campaign"
)

// runSweep is the campaign subcommand: expand a declarative sweep spec
// into a scenario grid, execute it on one shared worker pool, and emit
// the schema-tagged campaign report — optionally diffed and gated
// against a baseline report. This is the CI regression gate: the exit
// status is non-zero on any verdict flip against the baseline, on any
// perf regression beyond -perf-threshold (when both reports carry
// timings), and on any error cell.
func runSweep(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin sweep", flag.ContinueOnError)
	specPath := fs.String("spec", "", "sweep spec file (schema elin/sweep/v1; see .github/sweeps/)")
	baselinePath := fs.String("baseline", "", "baseline campaign report to diff and gate against")
	jsonOut := fs.Bool("json", false, "emit the campaign report as JSON (schema elin/campaign/v1)")
	canonical := fs.Bool("canonical", false, "emit the canonical (wall-clock-free) report JSON — the form baselines are committed in; implies -json")
	monitor := fs.String("monitor", "", "override the spec's monitor axis with a single spec (full | sample:N | shard:K | shard:key | none)")
	workers := fs.Int("workers", 0, "concurrent cells on the shared pool (0 = GOMAXPROCS)")
	perfThreshold := fs.Float64("perf-threshold", 0.20, "gate on cells slowing down by more than this fraction (needs timings on both sides; canonical baselines carry none)")
	quiet := fs.Bool("quiet", false, "suppress the streamed per-cell progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("sweep: -spec is required (committed grids live under .github/sweeps/)")
	}
	sp, err := campaign.LoadSpec(*specPath)
	if err != nil {
		return err
	}
	if *monitor != "" {
		// Collapse the monitor axis: rerun the whole grid under one monitor
		// (e.g. -monitor shard:4 to compare against a full-checking baseline).
		sp.Axes.Monitor = []string{*monitor}
		if err := sp.Validate(); err != nil {
			return err
		}
	}

	opts := campaign.RunOptions{Workers: *workers}
	if !*jsonOut && !*canonical && !*quiet {
		// Stream cells as they finish; completion order is nondeterministic,
		// so these lines are progress, not a stable format — the summary and
		// the JSON report are.
		opts.OnCell = func(done, total int, c campaign.Cell) {
			var ms int64
			if c.Timing != nil {
				ms = time.Duration(c.Timing.NS).Milliseconds()
			}
			fmt.Fprintf(out, "[%d/%d] %-9s %s (%dms)\n", done, total, c.Verdict, c.ID, ms)
		}
	}
	camp, err := campaign.Run(sp, opts)
	if err != nil {
		return err
	}

	var gateErr error
	if *baselinePath != "" {
		base, err := campaign.Load(*baselinePath)
		if err != nil {
			return err
		}
		camp.Diff = campaign.Compare(base, camp, *perfThreshold)
		gateErr = camp.Diff.Gate()
	}

	switch {
	case *canonical:
		if err := camp.Canonical().EncodeJSON(out); err != nil {
			return err
		}
	case *jsonOut:
		if err := camp.EncodeJSON(out); err != nil {
			return err
		}
	default:
		if err := camp.RenderSummary(out); err != nil {
			return err
		}
		if camp.Diff != nil {
			if err := camp.Diff.Render(out); err != nil {
				return err
			}
		}
	}

	if gateErr != nil {
		return gateErr
	}
	if camp.Totals.Error > 0 {
		return fmt.Errorf("sweep: %d cell(s) errored (their error fields name the broken coordinates)", camp.Totals.Error)
	}
	if camp.Diff == nil {
		return nil
	}
	if !*jsonOut && !*canonical {
		fmt.Fprintf(out, "gate: ok (no verdict flips, no perf regressions)\n")
	}
	return nil
}
