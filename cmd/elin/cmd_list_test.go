package main

import (
	"testing"
)

// The monitors section is part of the CLI contract: exact lines, so a
// renamed spec form or reworded doc is a conscious change here too.
func TestListMonitors(t *testing.T) {
	out := runOut(t, "list", "-section", "monitors")
	want := "full       sequential exhaustive windowed checking (the default)\n" +
		"sample:N   check every Nth window, escalate back to full on a near-violation\n" +
		"shard:K    pipelined windowed checking on K parallel workers\n" +
		"shard:key  one sequential monitor per object key (compositionality probe)\n" +
		"none       record only, no online checking\n"
	if out != want {
		t.Errorf("list -section monitors drifted:\ngot:\n%swant:\n%s", out, want)
	}
}
