package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runOut(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("elin %v: %v\noutput:\n%s", args, err, buf.String())
	}
	return buf.String()
}

func TestDispatchErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("empty invocation accepted")
	}
	if err := run([]string{"nosuch"}, &buf); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"help"}, &buf); err != nil {
		t.Errorf("help: %v", err)
	}
	if !strings.Contains(buf.String(), "explore") {
		t.Errorf("usage output: %q", buf.String())
	}
}

// ----------------------------------------------------------------------------
// elin explore (covers the retired elexplore).

func TestExploreLin(t *testing.T) {
	out := runOut(t, "explore", "-impl", "cas-counter", "-procs", "2", "-ops", "1", "-depth", "12")
	if !strings.Contains(out, "verdict: ok") || !strings.Contains(out, "explored: nodes=113 leaves=28 truncated=false") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExploreLinViolation(t *testing.T) {
	out := runOut(t, "explore", "-impl", "sloppy-counter", "-procs", "2", "-ops", "1", "-depth", "10")
	if !strings.Contains(out, "verdict: violation") || !strings.Contains(out, "witness history:") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExploreValency(t *testing.T) {
	out := runOut(t, "explore", "-impl", "reg-consensus", "-procs", "2", "-ops", "1",
		"-mode", "valency", "-depth", "18", "-quiet")
	if !strings.Contains(out, "valency: root=[1 2]") || !strings.Contains(out, "agreement-violations=66") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExploreStable(t *testing.T) {
	out := runOut(t, "explore", "-impl", "warmup-counter:2", "-procs", "2", "-ops", "3",
		"-mode", "stable", "-depth", "8", "-verify-depth", "16")
	if !strings.Contains(out, "verdict: ok") || !strings.Contains(out, "stable: depth=") {
		t.Errorf("output:\n%s", out)
	}
}

func TestExploreErrors(t *testing.T) {
	for _, args := range [][]string{
		{"explore", "-impl", "nosuch"},
		{"explore", "-mode", "nosuch"},
		{"explore", "-policy", "nosuch"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// ----------------------------------------------------------------------------
// elin sim (covers the retired elsim).

// TestSimGoldenRun pins the complete output of a deterministic run —
// scheduler, chooser and policy are pure functions of the seed, so any
// drift here is a real behaviour change. The history and derived numbers
// match the retired elsim golden (steps=18, MinT=3).
func TestSimGoldenRun(t *testing.T) {
	out := runOut(t, "sim", "-impl", "warmup-counter:2", "-procs", "2", "-ops", "2",
		"-sched", "rr", "-chooser", "stale", "-policy", "window:2", "-seed", "5", "-tolerance", "-1", "-dump")
	want := `engine=sim impl=warmup-counter:2 workload=default procs=2 ops=2 seed=5
verdict: ok (observe-only (negative tolerance))
checks: linearizable=false weakly-consistent=true MinT=3
trend: stabilized final-MinT=3 slope=0.0000 windows=4
run: steps=18 timedout=false ops=4 events=8
  0  inv p0 warmup-counter fetchinc
  1  inv p1 warmup-counter fetchinc
  2  res p0 warmup-counter 0
  3  inv p0 warmup-counter fetchinc
  4  res p1 warmup-counter 0
  5  inv p1 warmup-counter fetchinc
  6  res p0 warmup-counter 2
  7  res p1 warmup-counter 3
`
	if out != want {
		t.Errorf("golden output drift:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestSimMaxSteps(t *testing.T) {
	out := runOut(t, "sim", "-impl", "cas-counter", "-procs", "2", "-ops", "50",
		"-max-steps", "10", "-tolerance", "-1")
	if !strings.Contains(out, "timedout=true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestSimEmitJSONPipesIntoCheck(t *testing.T) {
	hist := runOut(t, "sim", "-impl", "cas-counter", "-procs", "2", "-ops", "1", "-emit-json")
	if !strings.HasPrefix(strings.TrimSpace(hist), "[{") {
		t.Fatalf("emit-json output: %q", hist)
	}
	path := filepath.Join(t.TempDir(), "h.json")
	if err := os.WriteFile(path, []byte(hist), 0o600); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "check", "-json", "-obj", "cas-counter=fetchinc", "-mode", "lin", path)
	if !strings.Contains(out, "linearizable: true") {
		t.Errorf("check output: %q", out)
	}
}

func TestSimErrors(t *testing.T) {
	for _, args := range [][]string{
		{"sim", "-impl", "nosuch"},
		{"sim", "-sched", "nosuch"},
		{"sim", "-chooser", "nosuch"},
		{"sim", "-policy", "nosuch"},
		{"sim", "-impl", "warmup-counter:xx"},
		{"sim", "-workload", "nosuch"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// ----------------------------------------------------------------------------
// elin check (covers the retired elcheck).

const dupHistory = `
inv p0 X fetchinc
inv p1 X fetchinc
res p0 X 0
res p1 X 0
`

func writeHistory(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCheckModes(t *testing.T) {
	path := writeHistory(t, dupHistory)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "lin", path}, "linearizable: false"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "weak", path}, "weakly consistent: true"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "mint", path}, "MinT: 3"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "tlin", "-t", "3", path}, "3-linearizable: true"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "tlin", "-t", "0", path}, "0-linearizable: false"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "track", "-stride", "2", path}, "trend:"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "mintlocal", path}, "t_X = 3"},
		{[]string{"check", "-obj", "X=fetchinc", "-mode", "mint", "-witness", path}, "witness 3-linearization"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := run(tc.args, &buf); err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%v output %q, want %q", tc.args, buf.String(), tc.want)
		}
	}
}

func TestCheckErrors(t *testing.T) {
	path := writeHistory(t, dupHistory)
	for _, args := range [][]string{
		{"check", path},                     // no -obj
		{"check", "-obj", "X=nosuch", path}, // unknown type
		{"check", "-obj", "X", path},        // malformed spec
		{"check", "-obj", "X=fetchinc", "-mode", "nosuch", path},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// ----------------------------------------------------------------------------
// elin stress (covers the retired elstress).

func TestStressCleanRun(t *testing.T) {
	out := runOut(t, "stress", "-impl", "atomic-fi", "-procs", "4", "-ops", "2000",
		"-stride", "512", "-seed", "1")
	if !strings.Contains(out, "verdict: ok") || !strings.Contains(out, "replay-identical=true") {
		t.Errorf("output:\n%s", out)
	}
	if !strings.Contains(out, "throughput=") {
		t.Errorf("no perf line:\n%s", out)
	}
}

func TestStressJunkViolation(t *testing.T) {
	out := runOut(t, "stress", "-impl", "junk-fi:40", "-procs", "2", "-ops", "500",
		"-stride", "64", "-seed", "1", "-quiet")
	if !strings.Contains(out, "verdict: violation") || !strings.Contains(out, "sim replay diverged=true") {
		t.Errorf("output:\n%s", out)
	}
	if strings.Contains(out, "witness history:") {
		t.Errorf("quiet run dumped the witness:\n%s", out)
	}
}

func TestStressFuzz(t *testing.T) {
	out := runOut(t, "stress", "-impl", "junk-fi:20", "-procs", "2", "-ops", "400",
		"-stride", "64", "-seed", "1", "-fuzz", "3", "-quiet")
	if !strings.Contains(out, "fuzz: runs=") || !strings.Contains(out, "found=true") {
		t.Errorf("output:\n%s", out)
	}
}

func TestStressImplName(t *testing.T) {
	// A registry implementation name runs live through the serialized
	// step-machine adapter — the scenario vocabulary is engine-independent.
	out := runOut(t, "stress", "-impl", "cas-counter", "-procs", "2", "-ops", "200",
		"-stride", "512", "-seed", "1")
	if !strings.Contains(out, "verdict: ok") || !strings.Contains(out, "impl=cas-counter") {
		t.Errorf("output:\n%s", out)
	}
}

// ----------------------------------------------------------------------------
// -json: one Report schema on every engine.

func TestJSONReportSchemaEverywhere(t *testing.T) {
	cases := [][]string{
		{"explore", "-impl", "cas-counter", "-procs", "2", "-ops", "1", "-depth", "12", "-json"},
		{"sim", "-impl", "cas-counter", "-procs", "2", "-ops", "1", "-json"},
		{"stress", "-impl", "atomic-fi", "-procs", "2", "-ops", "100", "-seed", "1", "-json"},
	}
	for _, args := range cases {
		out := runOut(t, args...)
		var rep struct {
			Schema   string `json:"schema"`
			Engine   string `json:"engine"`
			Verdict  string `json:"verdict"`
			Scenario struct {
				Impl string `json:"impl"`
			} `json:"scenario"`
		}
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Errorf("%v: bad JSON: %v\n%s", args, err, out)
			continue
		}
		if rep.Schema != "elin/report/v1" || rep.Verdict != "ok" {
			t.Errorf("%v: report = %+v", args, rep)
		}
		if rep.Engine != args[0] && !(args[0] == "stress" && rep.Engine == "live") {
			t.Errorf("%v: engine = %q", args, rep.Engine)
		}
	}
}

// ----------------------------------------------------------------------------
// elin bench (covers the retired elbench).

func TestBenchListAndRun(t *testing.T) {
	out := runOut(t, "bench", "-list")
	if !strings.Contains(out, "E1") || !strings.Contains(out, "E17") {
		t.Errorf("list output: %q", out)
	}
	out = runOut(t, "bench", "-run", "E4")
	if !strings.Contains(out, "E4 — Section 3.2") {
		t.Errorf("run output: %q", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"bench", "-run", "E99"}, &buf); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestBenchJSONTrajectoryFormat(t *testing.T) {
	out := runOut(t, "bench", "-run", "E4,E1", "-json", "-workers", "1")
	var recs []struct {
		ID         string `json:"id"`
		Artifact   string `json:"artifact"`
		Rows       int    `json:"rows"`
		NS         int64  `json:"ns"`
		Workers    int    `json:"workers"`
		GOMAXPROCS int    `json:"gomaxprocs"`
	}
	if err := json.Unmarshal([]byte(out), &recs); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(recs) != 2 || recs[0].ID != "E4" || recs[1].ID != "E1" {
		t.Fatalf("records: %+v", recs)
	}
	for _, r := range recs {
		if r.Rows == 0 || r.NS <= 0 || r.Workers != 1 || r.GOMAXPROCS <= 0 || r.Artifact == "" {
			t.Errorf("record %+v", r)
		}
	}
}

// ----------------------------------------------------------------------------
// elin list.

func TestList(t *testing.T) {
	out := runOut(t, "list")
	for _, want := range []string{"impls:", "cas-counter", "engines:", "live", "workloads:", "uniform:OP", "experiments:", "E17", "atomic-fi[:init]"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output misses %q:\n%s", want, out)
		}
	}
	out = runOut(t, "list", "-section", "engines")
	if strings.Contains(out, "impls") || !strings.Contains(out, "explore") {
		t.Errorf("section output:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"list", "-section", "nosuch"}, &buf); err == nil {
		t.Error("unknown section accepted")
	}
}

func TestBenchJSONStressTrajectory(t *testing.T) {
	out := runOut(t, "bench", "-run", "E4", "-json", "-stress", "-stress-ops", "500")
	var records []map[string]any
	if err := json.Unmarshal([]byte(out), &records); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(records) != 14 { // E4 + three no-WAL stress + two WAL-on + three SLOG + three MON + two serve rows
		t.Fatalf("got %d records", len(records))
	}
	walRows, serveRows, slogRows, monRows := 0, 0, 0, 0
	for _, r := range records[1:] {
		if r["schema"] != "elin/report/v1" || r["verdict"] != "ok" {
			t.Errorf("stress record: %v", r)
		}
		sc := r["scenario"].(map[string]any)
		name := sc["name"].(string)
		switch {
		case strings.HasPrefix(name, "SERVE-"):
			serveRows++
			// Serve rows are the networked latency trajectory: they must
			// carry the client-side percentiles.
			perf := r["perf"].(map[string]any)
			if p99, ok := perf["p99_ns"].(float64); !ok || p99 <= 0 {
				t.Errorf("serve record %s has no latency percentiles: %v", name, perf)
			}
		case strings.HasPrefix(name, "SLOG-"):
			slogRows++
			// The SLOG rows ride the lock-free fast path, never the
			// serialized step machine: the impl coordinate says so.
			if impl := sc["impl"].(string); !strings.HasPrefix(impl, "slog-fi:") {
				t.Errorf("SLOG record %s impl = %q", name, impl)
			}
		case strings.HasPrefix(name, "MON-"):
			monRows++
			// The MON rows are the monitored-gap matrix: the monitor
			// coordinate distinguishes them, and the record-only row must
			// really run unmonitored (no trend section).
			mon := sc["monitor"]
			if strings.HasSuffix(name, "-none") {
				if mon != "none" || r["trend"] != nil {
					t.Errorf("MON record %s: monitor=%v trend=%v", name, mon, r["trend"])
				}
			} else if mon != "shard:4" && mon != nil {
				// full canonicalizes to the empty (default) coordinate.
				t.Errorf("MON record %s: monitor=%v", name, mon)
			}
		case strings.HasPrefix(name, "STRESS-"):
			if strings.Contains(name, "-wal-") {
				walRows++
			}
		default:
			t.Errorf("stress record name: %v", name)
		}
	}
	if walRows != 2 {
		t.Errorf("WAL-on trajectory rows = %d, want 2 (sync never + interval:4096)", walRows)
	}
	if slogRows != 3 {
		t.Errorf("SLOG trajectory rows = %d, want 3 (b1-c4, b1-c8-nomon, b64-c8-nomon)", slogRows)
	}
	if serveRows != 2 {
		t.Errorf("serve trajectory rows = %d, want 2 (clean + flaky-net)", serveRows)
	}
	if monRows != 3 {
		t.Errorf("MON trajectory rows = %d, want 3 (full, shard4, none)", monRows)
	}
}

func TestSimNoCheckAndEmitJSONSkipCheckers(t *testing.T) {
	out := runOut(t, "sim", "-impl", "warmup-counter:2", "-procs", "2", "-ops", "2",
		"-policy", "window:2", "-seed", "5", "-nocheck")
	if !strings.Contains(out, "checks skipped") || strings.Contains(out, "MinT") {
		t.Errorf("nocheck output:\n%s", out)
	}
	// -emit-json implies -nocheck and emits only the event array.
	hist := runOut(t, "sim", "-impl", "warmup-counter:2", "-procs", "2", "-ops", "2",
		"-policy", "window:2", "-seed", "5", "-emit-json")
	if !strings.HasPrefix(strings.TrimSpace(hist), "[{") || strings.Contains(hist, "verdict") {
		t.Errorf("emit-json output: %q", hist)
	}
}

func TestStressDefaultSeedIsOne(t *testing.T) {
	out := runOut(t, "stress", "-impl", "atomic-fi", "-procs", "2", "-ops", "100", "-json")
	if !strings.Contains(out, `"seed": 1`) {
		t.Errorf("stress default seed drifted:\n%s", out)
	}
}
