package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/campaign"
)

// smokeSpecPath is the committed CI smoke grid, exercised directly so the
// repository's own gate cannot rot.
const (
	smokeSpecPath     = "../../.github/sweeps/smoke.json"
	smokeBaselinePath = "../../.github/sweeps/smoke.baseline.json"
)

// TestSweepSmokeGridMatchesBaseline is the acceptance contract of the CI
// gate: the committed smoke grid runs ≥ 48 cells spanning all three
// engines in one process, and its canonical report is byte-identical to
// the committed baseline — i.e. an unchanged tree passes its own gate,
// and the baseline file is provably fresh.
func TestSweepSmokeGridMatchesBaseline(t *testing.T) {
	out := runOut(t, "sweep", "-spec", smokeSpecPath, "-canonical")
	want, err := os.ReadFile(smokeBaselinePath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(out), want) {
		t.Errorf("canonical smoke report drifted from the committed baseline; regenerate with\n  elin sweep -spec .github/sweeps/smoke.json -canonical > .github/sweeps/smoke.baseline.json")
	}

	var camp struct {
		Schema string `json:"schema"`
		Totals struct {
			Cells int `json:"cells"`
			Error int `json:"error"`
		} `json:"totals"`
		Rollups map[string][]struct {
			Value string `json:"value"`
			Cells int    `json:"cells"`
		} `json:"rollups"`
	}
	if err := json.Unmarshal([]byte(out), &camp); err != nil {
		t.Fatal(err)
	}
	if camp.Schema != "elin/campaign/v1" {
		t.Errorf("schema = %q", camp.Schema)
	}
	if camp.Totals.Cells < 48 || camp.Totals.Error != 0 {
		t.Errorf("smoke grid totals: %+v (want >= 48 cells, 0 errors)", camp.Totals)
	}
	engines := map[string]bool{}
	for _, row := range camp.Rollups["engine"] {
		if row.Cells > 0 {
			engines[row.Value] = true
		}
	}
	for _, e := range []string{"explore", "sim", "live"} {
		if !engines[e] {
			t.Errorf("smoke grid has no %s cells (engines: %v)", e, engines)
		}
	}
}

// TestSweepNetsmokeGridMatchesBaseline is the same contract for the
// serve-engine network grid: real loopback TCP, the network fault plane
// and wal-sync durability cells are all canonical-byte-stable, so the
// committed baseline is provably fresh.
func TestSweepNetsmokeGridMatchesBaseline(t *testing.T) {
	out := runOut(t, "sweep", "-spec", "../../.github/sweeps/netsmoke.json", "-canonical")
	want, err := os.ReadFile("../../.github/sweeps/netsmoke.baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(out), want) {
		t.Errorf("canonical netsmoke report drifted from the committed baseline; regenerate with\n  elin sweep -spec .github/sweeps/netsmoke.json -canonical > .github/sweeps/netsmoke.baseline.json")
	}

	var camp struct {
		Totals struct {
			Cells int `json:"cells"`
			OK    int `json:"ok"`
		} `json:"totals"`
		Rollups map[string][]struct {
			Value string `json:"value"`
		} `json:"rollups"`
	}
	if err := json.Unmarshal([]byte(out), &camp); err != nil {
		t.Fatal(err)
	}
	if camp.Totals.Cells != 12 || camp.Totals.OK != 12 {
		t.Errorf("netsmoke totals: %+v (want 12 ok cells)", camp.Totals)
	}
	if nf, ws := len(camp.Rollups["net-faults"]), len(camp.Rollups["wal-sync"]); nf != 3 || ws != 2 {
		t.Errorf("netsmoke rollups: %d net-faults rows, %d wal-sync rows (want 3, 2)", nf, ws)
	}
}

// TestNightlySpecExpands keeps the committed nightly grid loadable: it
// validates and expands (without executing) so a typo in the spec or a
// dead exclusion fails `go test`, not the 3am workflow.
func TestNightlySpecExpands(t *testing.T) {
	sp, err := campaign.LoadSpec("../../.github/sweeps/nightly.json")
	if err != nil {
		t.Fatal(err)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 500 {
		t.Errorf("nightly grid has only %d cells", len(points))
	}
	engines := map[string]int{}
	for _, p := range points {
		engines[p.Engine]++
	}
	for _, e := range []string{"explore", "sim", "live"} {
		if engines[e] == 0 {
			t.Errorf("nightly grid has no %s cells (%v)", e, engines)
		}
	}
}

// TestSweepBaselineGate drives the gate through the CLI: an identical
// rerun exits zero, and a seeded verdict flip (a junk-fi cell whose
// baseline record says ok) exits non-zero with the cell identity.
func TestSweepBaselineGate(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
  "schema": "elin/sweep/v1",
  "name": "gate",
  "axes": {
    "engine": ["sim", "live"],
    "impl": ["cas-counter", "junk-fi:100000"],
    "procs": [2],
    "ops": [100],
    "seed": [1]
  },
  "exclude": [{"engine": "sim", "impl": "junk-fi:100000"}],
  "stride": 64
}`), 0o600); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "base.json")
	canon := runOut(t, "sweep", "-spec", spec, "-canonical")
	if err := os.WriteFile(baseline, []byte(canon), 0o600); err != nil {
		t.Fatal(err)
	}

	// Identical rerun: gate passes.
	out := runOut(t, "sweep", "-spec", spec, "-baseline", baseline, "-quiet")
	if !strings.Contains(out, "same=3 flips=0 new=0 missing=0") || !strings.Contains(out, "gate: ok") {
		t.Errorf("clean gate output:\n%s", out)
	}

	// Inject the flip on the junk-fi cell: the baseline remembers it as a
	// violation (as if the bug had once fired), so today's ok run flips
	// against it.
	var doc map[string]any
	if err := json.Unmarshal([]byte(canon), &doc); err != nil {
		t.Fatal(err)
	}
	var flippedID string
	for _, raw := range doc["cells"].([]any) {
		cell := raw.(map[string]any)
		if strings.Contains(cell["id"].(string), "junk-fi") {
			cell["verdict"] = "violation"
			flippedID = cell["id"].(string)
		}
	}
	if flippedID == "" {
		t.Fatal("no junk-fi cell in baseline")
	}
	flipped, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline, flipped, 0o600); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err = run([]string{"sweep", "-spec", spec, "-baseline", baseline, "-quiet"}, &buf)
	if err == nil {
		t.Fatalf("flip passed the gate:\n%s", buf.String())
	}
	for _, want := range []string{"verdict flip", flippedID, "violation -> ok", "rerun: elin stress -impl junk-fi"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q misses %q", err, want)
		}
	}
}

func TestSweepJSONIncludesDiff(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
  "schema": "elin/sweep/v1",
  "name": "j",
  "axes": {"engine": ["sim"], "impl": ["cas-counter"], "procs": [2], "ops": [1]}
}`), 0o600); err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "base.json")
	if err := os.WriteFile(baseline, []byte(runOut(t, "sweep", "-spec", spec, "-canonical")), 0o600); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "sweep", "-spec", spec, "-baseline", baseline, "-json")
	var camp struct {
		Schema string `json:"schema"`
		Diff   *struct {
			Baseline string `json:"baseline"`
			Same     int    `json:"same"`
		} `json:"diff"`
		Cells []struct {
			Timing *struct {
				NS int64 `json:"ns"`
			} `json:"timing"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &camp); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if camp.Schema != "elin/campaign/v1" || camp.Diff == nil || camp.Diff.Same != 1 || camp.Diff.Baseline != "j" {
		t.Errorf("campaign JSON: %+v", camp)
	}
	// The full (non-canonical) report carries per-cell timing records.
	if len(camp.Cells) != 1 || camp.Cells[0].Timing == nil || camp.Cells[0].Timing.NS <= 0 {
		t.Errorf("full report cells: %+v", camp.Cells)
	}
}

func TestSweepErrors(t *testing.T) {
	dir := t.TempDir()
	badWorkload := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badWorkload, []byte(`{
  "schema": "elin/sweep/v1", "name": "b",
  "axes": {"workload": ["nosuch"]}
}`), 0o600); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"sweep"}, "-spec is required"},
		{[]string{"sweep", "-spec", filepath.Join(dir, "nosuch.json")}, "read spec"},
		{[]string{"sweep", "-spec", badWorkload}, "unknown workload"},
		// A sweep spec handed to -baseline is caught by the schema tag.
		{[]string{"sweep", "-spec", smokeSpecPath, "-baseline", smokeSpecPath}, "sweep spec"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		err := run(tc.args, &buf)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%v: error %v, want mention of %q", tc.args, err, tc.want)
		}
	}
}

func TestSweepStreamsProgress(t *testing.T) {
	dir := t.TempDir()
	spec := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(spec, []byte(`{
  "schema": "elin/sweep/v1", "name": "s",
  "axes": {"engine": ["sim"], "impl": ["cas-counter", "sloppy-counter"], "procs": [2], "ops": [1]}
}`), 0o600); err != nil {
		t.Fatal(err)
	}
	out := runOut(t, "sweep", "-spec", spec)
	if !strings.Contains(out, "[1/2]") || !strings.Contains(out, "[2/2]") {
		t.Errorf("no streamed cell lines:\n%s", out)
	}
	if !strings.Contains(out, "campaign s: cells=2") {
		t.Errorf("no summary line:\n%s", out)
	}
}

func TestListAxes(t *testing.T) {
	out := runOut(t, "list", "-section", "axes")
	for _, axis := range []string{"engine", "impl", "workload", "policy", "monitor", "procs", "ops", "tolerance", "seed"} {
		if !strings.Contains(out, axis) {
			t.Errorf("axes listing misses %q:\n%s", axis, out)
		}
	}
}
