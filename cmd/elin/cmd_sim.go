package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"

	"github.com/elin-go/elin/internal/scenario"
)

// runSim is the seeded-simulation subcommand (the retired elsim): one run
// under a named scheduler and base-object adversary, checked after the
// fact (linearizability, weak consistency, MinT and trend).
func runSim(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin sim", flag.ContinueOnError)
	sf := addScenarioFlags(fs, "cas-counter", 2, 3, "window:4", 0)
	sched := fs.String("sched", "rr", "scheduler: rr | random | solo:P | burst:N")
	chooser := fs.String("chooser", "stale", "EL response chooser: true | stale | mix:P")
	maxSteps := fs.Int("max-steps", 0, "step bound (0 = default)")
	stride := fs.Int("stride", 0, "MinT-trend stride in events (0 = auto)")
	dump := fs.Bool("dump", false, "print the recorded history")
	noCheck := fs.Bool("nocheck", false, "run and record only, skip the decision procedures")
	emitJSON := fs.Bool("emit-json", false, "emit the history as a JSON event array (for elin check -json); implies -nocheck")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := sf.scenario()
	s.Scheduler = *sched
	s.Chooser = *chooser
	s.Budget.MaxSteps = *maxSteps
	s.Stride = *stride
	// History export must not pay for (or gate on) the checkers — the
	// downstream consumer checks.
	s.NoCheck = *noCheck || *emitJSON

	rep, err := scenario.Run("sim", s)
	if err != nil {
		return err
	}
	if *emitJSON {
		data, err := json.Marshal(rep.History())
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	}
	if err := sf.emit(out, rep); err != nil {
		return err
	}
	// -dump prints the recorded history unless the rendered witness already
	// showed it.
	if *dump && !*sf.jsonOut && (rep.Witness == nil || rep.Witness.History == "" || *sf.quiet) {
		fmt.Fprint(out, rep.History().String())
	}
	return nil
}
