package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/elin-go/elin/internal/scenario"
)

// runServe is the long-lived networked runtime: the object under test
// behind the framed-TCP server, serving `elin load` fleets (or any client
// speaking the wire protocol) until a signal arrives. The online monitor
// runs server-side and degrades to sampling under overload; the network
// fault plane (-net-faults) drops, severs and slows connections by commit
// ticket; a -wal makes the merged stream durable, so a kill -9 mid-load
// recovers with 'elin recover'. On SIGINT/SIGTERM the server drains,
// finishes the monitor and emits the unified Report.
func runServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin serve", flag.ContinueOnError)
	sf := addScenarioFlags(fs, "atomic-fi", 4, 10000, "window:400", 1)
	addr := fs.String("addr", "127.0.0.1:0", "TCP listen address")
	netFaults := fs.String("net-faults", "", "network fault plane: preset or grammar (see 'elin list -section net-faults')")
	walPath := fs.String("wal", "", "write a durable commit log to this path (recover with 'elin recover')")
	walSync := fs.String("wal-sync", "", "WAL durability: always | never | interval:N (default never)")
	stride := fs.Int("stride", 0, "monitor window stride in events (0 = auto)")
	monitor := fs.String("monitor", "", "monitor spec: full | sample:N | shard:K | shard:key | none (see 'elin list -section monitors')")
	noMonitor := fs.Bool("nomonitor", false, "disable the server-side online monitor")
	duration := fs.Duration("duration", 0, "serve for this long then shut down (0 = until SIGINT/SIGTERM)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := sf.scenario()
	s.NetFaults = *netFaults
	s.WAL = *walPath
	s.WALSync = *walSync
	s.Stride = *stride
	s.Monitor = *monitor
	s.NoMonitor = *noMonitor

	srv, err := scenario.BuildServer(s)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	srv.Serve(ln)
	fmt.Fprintf(out, "serving %s on %s (client ids 0..%d; interrupt for the report)\n",
		*sf.impl, ln.Addr(), *sf.procs-1)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if *duration > 0 {
		select {
		case <-sig:
		case <-time.After(*duration):
		}
	} else {
		<-sig
	}

	sum, err := srv.Shutdown()
	if err != nil {
		return err
	}
	return sf.emit(out, scenario.ServerReport(s, sum, nil))
}
