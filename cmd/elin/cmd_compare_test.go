package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// e19GridSpec is the E19-style two-family grid the compare CLI tests
// sweep.
const e19GridSpec = `{
  "schema": "elin/sweep/v1",
  "name": "e19-cli",
  "axes": {
    "engine": ["sim"],
    "impl": ["slog-register", "localcopy-register"],
    "ops": [4, 8],
    "tolerance": [-1],
    "seed": [1]
  }
}
`

func writeE19Spec(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "e19.json")
	if err := os.WriteFile(path, []byte(e19GridSpec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGridMode(t *testing.T) {
	spec := writeE19Spec(t)
	out := runOut(t, "compare", "-grid", spec, "-impls-a", "slog-register", "-impls-b", "localcopy-register")
	for _, want := range []string{
		"compare slog-register (a) vs localcopy-register (b): cells=2 a-wins=2 b-wins=0 ties=0",
		"ok/stabilized minT=0",
		"ok/diverging minT=30",
		"winner=a (trend)",
		"impl=*",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output misses %q:\n%s", want, out)
		}
	}
}

// The canonical comparison of a deterministic grid is byte-stable — the
// acceptance bar for committed reports — and the -grid file may equally
// be a pre-swept campaign report.
func TestCompareCanonicalByteStableAcrossInputForms(t *testing.T) {
	spec := writeE19Spec(t)
	canonical := func(grid string) string {
		return runOut(t, "compare", "-grid", grid, "-canonical",
			"-impls-a", "slog-register", "-impls-b", "localcopy-register")
	}
	a := canonical(spec)
	if a != canonical(spec) {
		t.Fatal("canonical comparison not byte-stable across sweeps")
	}
	var rep struct {
		Schema string `json:"schema"`
		Totals struct {
			Cells int `json:"cells"`
			AWins int `json:"a_wins"`
		} `json:"totals"`
		Cells []struct {
			A struct {
				ThroughputOpsS float64 `json:"throughput_ops_s"`
			} `json:"a"`
		} `json:"cells"`
	}
	if err := json.Unmarshal([]byte(a), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep.Schema != "elin/compare/v1" || rep.Totals.Cells != 2 || rep.Totals.AWins != 2 {
		t.Fatalf("report: %+v", rep)
	}
	for _, c := range rep.Cells {
		if c.A.ThroughputOpsS != 0 {
			t.Fatal("canonical report carries throughput")
		}
	}

	// Sweep the grid to a campaign report, compare that file: identical
	// canonical bytes.
	campPath := filepath.Join(t.TempDir(), "camp.json")
	campJSON := runOut(t, "sweep", "-spec", spec, "-json")
	if err := os.WriteFile(campPath, []byte(campJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if b := canonical(campPath); b != a {
		t.Fatalf("campaign-report input diverged from sweep-spec input:\n%s\nvs\n%s", b, a)
	}
}

// TestCommittedE19GridCompare exercises the committed nightly comparison
// grid directly, so the workflow's impl-compare legs cannot rot: both
// rival pairs must keep reproducing the paper-level outcome (stabilizing
// log wins every matched cell on trend class).
func TestCommittedE19GridCompare(t *testing.T) {
	const spec = "../../.github/sweeps/e19.json"
	for _, leg := range []struct{ a, b string }{
		{"slog-register", "localcopy-register"},
		{"slog-batch:1", "slog-counter"},
	} {
		out := runOut(t, "compare", "-grid", spec, "-impls-a", leg.a, "-impls-b", leg.b)
		want := "compare " + leg.a + " (a) vs " + leg.b + " (b): cells=2 a-wins=2 b-wins=0 ties=0"
		if !strings.Contains(out, want) {
			t.Errorf("%s vs %s misses %q:\n%s", leg.a, leg.b, want, out)
		}
		if !strings.Contains(out, "ok/stabilized minT=0") || !strings.Contains(out, "ok/diverging") {
			t.Errorf("%s vs %s lost the trend-class split:\n%s", leg.a, leg.b, out)
		}
	}
}

func TestCompareFlagErrors(t *testing.T) {
	spec := writeE19Spec(t)
	for _, args := range [][]string{
		{"compare"},
		{"compare", "-grid", spec},
		{"compare", "-grid", spec, "-impls-a", "slog-register"},
		{"compare", "-grid", spec, "-a", "x.json", "-impls-a", "a", "-impls-b", "b"},
		{"compare", "-a", "only-one-side.json"},
		{"compare", "-grid", "/nonexistent.json", "-impls-a", "a", "-impls-b", "b"},
	} {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

// The impls detail view is a stable, exact-line format: every registry
// family, sorted, with its parameter syntax and one-line doc.
func TestListDetailGolden(t *testing.T) {
	want := []string{
		"announced-cas       cas-counter wrapped in the Figure 1 announce/verify algorithm",
		"announced-junk      junk-counter wrapped in the Figure 1 announce/verify algorithm",
		"base-consensus      passthrough over one atomic consensus object",
		"cas-counter         linearizable fetch&increment from one CAS word (retry loop)",
		"cas-testset         linearizable test&set from CAS",
		"el-consensus        Proposition 16 consensus over eventually linearizable registers",
		"el-register         passthrough over one eventually linearizable register",
		"el-sloppy-counter   sloppy counter over eventually linearizable registers",
		"el-testset          communication-free eventually linearizable test&set",
		"junk-counter        weak-consistency violator (announce-wrapper demo input)",
		"localcopy-register  Theorem 12 local-copy construction of el-register (diverges)",
		"reg-consensus       the Proposition 16 consensus algorithm over atomic registers",
		"slog-batch:K        stabilizing-log counter with promotion batch K (1 = linearizable)",
		"slog-counter        stabilizing-log counter (arXiv 1512.08258): speculate, promote every 4",
		"slog-register       stabilizing-log register: speculative apply, stabilized prefix",
		"slog-testset        stabilizing-log test&set",
		"sloppy-counter      register-only counter: weakly consistent, never stabilizes",
		"warmup-counter:K    EL counter answering privately below count K, exact after",
	}
	got := strings.Split(strings.TrimRight(runOut(t, "list", "-detail"), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("list -detail: %d lines, want %d:\n%s", len(got), len(want), strings.Join(got, "\n"))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("list -detail line %d:\n got %q\nwant %q", i, got[i], want[i])
		}
	}
	// -section impls -detail prints the same view; other sections reject it.
	if out := runOut(t, "list", "-section", "impls", "-detail"); !strings.Contains(out, want[0]) {
		t.Errorf("-section impls -detail:\n%s", out)
	}
	var buf bytes.Buffer
	if err := run([]string{"list", "-section", "engines", "-detail"}, &buf); err == nil {
		t.Error("-detail on a non-impls section accepted")
	}
}
