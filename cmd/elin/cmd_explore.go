package main

import (
	"flag"
	"io"

	"github.com/elin-go/elin/internal/scenario"
)

// runExplore is the exhaustive-exploration subcommand (the retired
// elexplore): every interleaving and every weakly consistent response up
// to the depth bound.
func runExplore(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin explore", flag.ContinueOnError)
	sf := addScenarioFlags(fs, "cas-counter", 2, 1, "never", 0)
	mode := fs.String("mode", "lin", "analysis: lin | weak | valency | stable")
	depth := fs.Int("depth", 16, "exploration depth bound")
	verifyDepth := fs.Int("verify-depth", 14, "stability verification depth (mode stable)")
	dedup := fs.Bool("dedup", false, "merge equivalent configurations (mode valency): the tree becomes a DAG")
	workers := fs.Int("workers", 0, "exploration workers: 0 = GOMAXPROCS, 1 = sequential reference engine")
	checkDet := fs.Bool("checkdet", false, "verify programme determinism on every probe")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := sf.scenario()
	s.Analysis = *mode
	s.Budget.Depth = *depth
	s.Budget.VerifyDepth = *verifyDepth
	s.Dedup = *dedup
	s.Workers = *workers
	s.CheckDeterminism = *checkDet

	rep, err := scenario.Run("explore", s)
	if err != nil {
		return err
	}
	return sf.emit(out, rep)
}
