package main

import (
	"flag"
	"fmt"
	"io"

	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/scenario"
	"github.com/elin-go/elin/internal/wal"
)

// runRecover is the crash-recovery subcommand: recover a commit log
// written by 'elin stress -wal' (truncating any torn tail), replay it
// against a fresh object, continue the run with fresh clients, and verify
// the stitched history still t-stabilizes. Continuation parameters default
// from the log header; the continuation seed defaults to the header seed
// plus one so fresh clients draw fresh op streams. -strict inverts the
// torn-tail posture: instead of truncating and continuing, a torn log is a
// non-zero exit naming the first bad byte — the mode for pipelines that
// must not silently drop committed suffixes.
func runRecover(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin recover", flag.ContinueOnError)
	walPath := fs.String("wal", "", "commit log to recover (required)")
	strict := fs.Bool("strict", false, "refuse a torn log: exit non-zero naming the first bad byte instead of truncating")
	corrupt := fs.String("corrupt", "", "corrupt the log in place before recovery: flip[:OFF] | trunc:N (destructive)")
	procs := fs.Int("procs", 0, "continuation client goroutines (0 = the log header's procs)")
	ops := fs.Int("ops", 0, "operations per continuation client (0 = the header's ops)")
	workload := fs.String("workload", "", "continuation operation mix (default: the header's workload)")
	policy := fs.String("policy", "", "EL stabilization policy (default: the header's policy)")
	seed := fs.Int64("seed", 0, "continuation seed (0 = the header's seed + 1)")
	tolerance := fs.Int("tolerance", 0, "t-lin tolerance of the stitched verdict (0 = the header's tolerance)")
	faults := fs.String("faults", "", "fault injection for the continuation (preset or grammar)")
	outWAL := fs.String("out-wal", "", "write a new self-contained commit log (recovered prefix + continuation)")
	walSync := fs.String("wal-sync", "", "durability of -out-wal: always | never | interval:N")
	stride := fs.Int("stride", 0, "monitor window stride in events (0 = auto)")
	noMonitor := fs.Bool("nomonitor", false, "disable online monitoring of the stitched history")
	serial := fs.Bool("serial", false, "deterministic serial driver for the continuation")
	jsonOut := fs.Bool("json", false, "emit the unified Report as JSON (schema elin/report/v1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *walPath == "" {
		return fmt.Errorf("recover: -wal FILE is required")
	}
	if *corrupt != "" {
		sp, err := registry.Faults(*corrupt)
		if err != nil {
			return err
		}
		if sp == nil || sp.Corrupt == nil {
			return fmt.Errorf("recover: -corrupt wants flip[:OFF] or trunc:N, got %q", *corrupt)
		}
		if err := sp.CorruptFile(*walPath, *seed); err != nil {
			return err
		}
		hdr, err := wal.ReadHeaderOnly(*walPath)
		if err == nil {
			fmt.Fprintf(out, "corrupted %s (%s) — log of %s, %d procs x %d ops, seed %d\n",
				*walPath, sp.Corrupt.String(), hdr.Object, hdr.Procs, hdr.Ops, hdr.Seed)
		}
	}
	if *strict {
		rec, err := wal.Recover(*walPath)
		if err != nil {
			return err
		}
		if rec.Torn {
			return fmt.Errorf("recover: log %s is torn at byte %d (%d intact frames); rerun without -strict to truncate and continue",
				*walPath, rec.TornAt, rec.Frames)
		}
	}
	s := scenario.Scenario{
		Workload:  *workload,
		Policy:    *policy,
		Procs:     *procs,
		Ops:       *ops,
		Seed:      *seed,
		Tolerance: *tolerance,
		Faults:    *faults,
		WAL:       *outWAL,
		WALSync:   *walSync,
		Stride:    *stride,
		NoMonitor: *noMonitor,
		Serial:    *serial,
	}
	rep, err := scenario.Recover(*walPath, s)
	if err != nil {
		return err
	}
	if *jsonOut {
		return rep.EncodeJSON(out)
	}
	return rep.Render(out)
}
