package main

import (
	"flag"
	"fmt"
	"io"

	"github.com/elin-go/elin/internal/campaign"
	"github.com/elin-go/elin/internal/exp"
	"github.com/elin-go/elin/internal/registry"
)

// runList prints the registry contents: everything nameable in a scenario.
func runList(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin list", flag.ContinueOnError)
	section := fs.String("section", "", "one section only: impls | objects | engines | workloads | schedulers | choosers | policies | faults | net-faults | monitors | types | experiments | axes")
	detail := fs.Bool("detail", false, "annotate the impls section with each family's parameter syntax and one-line doc")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *detail {
		if *section != "" && *section != "impls" {
			return fmt.Errorf("-detail only applies to the impls section (got %q)", *section)
		}
		width := 0
		for _, d := range registry.ImplDocs() {
			if len(d.Name) > width {
				width = len(d.Name)
			}
		}
		for _, d := range registry.ImplDocs() {
			fmt.Fprintf(out, "%-*s  %s\n", width, d.Name, d.Doc)
		}
		return nil
	}
	sections := []struct {
		name  string
		items []string
	}{
		{"impls", registry.ImplNames()},
		{"objects", registry.LiveObjectNames()},
		{"engines", registry.EngineNames()},
		{"workloads", registry.WorkloadNames()},
		{"schedulers", registry.SchedulerNames()},
		{"choosers", registry.ChooserNames()},
		{"policies", registry.PolicyNames()},
		{"faults", registry.FaultNames()},
		{"net-faults", registry.NetFaultNames()},
		{"monitors", monitorLines()},
		{"types", registry.TypeNames()},
		{"experiments", experimentIDs()},
		{"axes", campaign.AxisNames()},
	}
	found := false
	for _, s := range sections {
		if *section != "" && s.name != *section {
			continue
		}
		found = true
		if *section == "" {
			fmt.Fprintf(out, "%s:\n", s.name)
		}
		for _, it := range s.items {
			if *section == "" {
				fmt.Fprintf(out, "  %s\n", it)
			} else {
				fmt.Fprintln(out, it)
			}
		}
	}
	if !found {
		return fmt.Errorf("unknown section %q", *section)
	}
	return nil
}

// monitorLines renders the monitor spec vocabulary with its one-line docs,
// name-padded like `list -detail` output.
func monitorLines() []string {
	docs := registry.MonitorDocs()
	width := 0
	for _, d := range docs {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}
	lines := make([]string, len(docs))
	for i, d := range docs {
		lines[i] = fmt.Sprintf("%-*s  %s", width, d.Name, d.Doc)
	}
	return lines
}

func experimentIDs() []string {
	var ids []string
	for _, e := range exp.All() {
		ids = append(ids, e.ID)
	}
	return ids
}
