package main

import (
	"flag"
	"fmt"
	"io"

	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/scenario"
)

// runStress is the live-runtime subcommand (the retired elstress): real
// goroutine clients against a genuinely shared object, online windowed
// monitoring, seeded fuzzing and shrink-to-simulator replay — plus the
// fault plane (-faults/-crash-at/-serial) and the durable commit log
// (-wal/-wal-sync) a crashed run recovers from with 'elin recover'.
func runStress(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin stress", flag.ContinueOnError)
	sf := addScenarioFlags(fs, "atomic-fi", 4, 10000, "window:400", 1)
	rate := fs.Float64("rate", 0, "open-loop rate per client in ops/sec (0 = closed loop)")
	stride := fs.Int("stride", 0, "monitor window stride in events (0 = auto)")
	monitor := fs.String("monitor", "", "monitor spec: full | sample:N | shard:K | shard:key | none (see 'elin list -section monitors')")
	noMonitor := fs.Bool("nomonitor", false, "disable online monitoring (pure throughput)")
	latSample := fs.Int("latsample", 1, "record one latency sample every N ops per client")
	fuzz := fs.Int("fuzz", 0, "run a fuzz campaign over N consecutive seeds instead of one run")
	noShrink := fs.Bool("noshrink", false, "skip ddmin shrinking of a violation window")
	noVerify := fs.Bool("noverify", false, "skip the byte-identical replay verification")
	faults := fs.String("faults", "", "fault injection: preset or grammar (see 'elin list'; e.g. stall:0@64+256,jitter:5)")
	crashAt := fs.Uint64("crash-at", 0, "crash the run at commit K (shorthand for -faults crash:K)")
	walPath := fs.String("wal", "", "write a durable commit log to this path (recover with 'elin recover')")
	walSync := fs.String("wal-sync", "", "WAL durability: always | never | interval:N (default never)")
	serial := fs.Bool("serial", false, "deterministic serial driver: byte-identical history and WAL across reruns")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := sf.scenario()
	s.Rate = *rate
	s.Stride = *stride
	s.Monitor = *monitor
	s.NoMonitor = *noMonitor
	s.LatencySample = *latSample
	s.FuzzRuns = *fuzz
	s.NoShrink = *noShrink
	s.NoVerify = *noVerify
	s.Faults = *faults
	s.WAL = *walPath
	s.WALSync = *walSync
	s.Serial = *serial
	if *crashAt > 0 {
		crash := fmt.Sprintf("crash:%d", *crashAt)
		// Expand presets to grammar before combining; a duplicate crash
		// directive (or an unparseable -faults value) errors downstream.
		if sp, err := registry.Faults(s.Faults); err != nil {
			s.Faults += "," + crash
		} else if sp.Zero() {
			s.Faults = crash
		} else {
			s.Faults = sp.String() + "," + crash
		}
	}

	rep, err := scenario.Run("live", s)
	if err != nil {
		return err
	}
	return sf.emit(out, rep)
}
