package main

import (
	"flag"
	"io"

	"github.com/elin-go/elin/internal/scenario"
)

// runStress is the live-runtime subcommand (the retired elstress): real
// goroutine clients against a genuinely shared object, online windowed
// monitoring, seeded fuzzing and shrink-to-simulator replay.
func runStress(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elin stress", flag.ContinueOnError)
	sf := addScenarioFlags(fs, "atomic-fi", 4, 10000, "window:400", 1)
	rate := fs.Float64("rate", 0, "open-loop rate per client in ops/sec (0 = closed loop)")
	stride := fs.Int("stride", 0, "monitor window stride in events (0 = auto)")
	noMonitor := fs.Bool("nomonitor", false, "disable online monitoring (pure throughput)")
	latSample := fs.Int("latsample", 1, "record one latency sample every N ops per client")
	fuzz := fs.Int("fuzz", 0, "run a fuzz campaign over N consecutive seeds instead of one run")
	noShrink := fs.Bool("noshrink", false, "skip ddmin shrinking of a violation window")
	noVerify := fs.Bool("noverify", false, "skip the byte-identical replay verification")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := sf.scenario()
	s.Rate = *rate
	s.Stride = *stride
	s.NoMonitor = *noMonitor
	s.LatencySample = *latSample
	s.FuzzRuns = *fuzz
	s.NoShrink = *noShrink
	s.NoVerify = *noVerify

	rep, err := scenario.Run("live", s)
	if err != nil {
		return err
	}
	return sf.emit(out, rep)
}
