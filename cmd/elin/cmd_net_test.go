package main

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

// ----------------------------------------------------------------------------
// elin load -self: the self-contained serve engine from the CLI — the form
// sweep repro commands print.

func TestLoadSelf(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "load.wal")
	out := runOut(t, "load", "-self", "-impl", "atomic-fi", "-procs", "3", "-ops", "80",
		"-net-faults", "drop-one", "-wal", wal, "-wal-sync", "interval:4", "-quiet")
	for _, want := range []string{
		"engine=serve",
		"verdict: ok",
		"net-faults=drop:0@40",
		"wal-sync=interval:4",
		"net: clients=3",
		"lost=0 duplicated=0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("load -self output missing %q:\n%s", want, out)
		}
	}
	// The commit log the run wrote is clean: strict recovery accepts it and
	// continues the run.
	out = runOut(t, "recover", "-wal", wal, "-strict", "-ops", "20")
	if !strings.Contains(out, "verdict: ok") {
		t.Errorf("strict recover of a clean serve log:\n%s", out)
	}
}

func TestLoadModeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"load"}, &buf); err == nil || !strings.Contains(err.Error(), "exactly one of -addr and -self") {
		t.Errorf("load with neither mode: %v", err)
	}
	if err := run([]string{"load", "-self", "-addr", "127.0.0.1:1"}, &buf); err == nil || !strings.Contains(err.Error(), "exactly one of -addr and -self") {
		t.Errorf("load with both modes: %v", err)
	}
	if err := run([]string{"load", "-addr", "127.0.0.1:1", "-net-faults", "flaky-net"}, &buf); err == nil || !strings.Contains(err.Error(), "-self") {
		t.Errorf("server-side flag against -addr: %v", err)
	}
}

// ----------------------------------------------------------------------------
// elin serve + elin load -addr: a real server process loop — serve in a
// goroutine, load it over loopback, interrupt the server for its report.
// The fleet's dial retry covers the startup race: clients back off and
// reconnect until the listener is up.

func TestServeThenLoadExternal(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var serveOut bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"serve", "-impl", "atomic-fi", "-procs", "3", "-ops", "60",
			"-addr", addr, "-duration", "30s"}, &serveOut)
	}()

	out := runOut(t, "load", "-addr", addr, "-impl", "atomic-fi", "-procs", "3", "-ops", "60", "-seed", "1")
	for _, want := range []string{"completed=180 lost=0 duplicated=0", "latency: p50="} {
		if !strings.Contains(out, want) {
			t.Errorf("load output missing %q:\n%s", want, out)
		}
	}

	// Interrupt the server: it drains, finishes the monitor, reports.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v\noutput:\n%s", err, serveOut.String())
	}
	sOut := serveOut.String()
	for _, want := range []string{"serving atomic-fi on " + addr, "verdict: ok", "events=360"} {
		if !strings.Contains(sOut, want) {
			t.Errorf("serve report missing %q:\n%s", want, sOut)
		}
	}
}

// ----------------------------------------------------------------------------
// elin recover -strict: a torn log is a non-zero exit naming the offset.

func TestRecoverStrictTorn(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "torn.wal")
	runOut(t, "stress", "-impl", "atomic-fi", "-procs", "2", "-ops", "50", "-serial", "-wal", wal, "-quiet")

	var buf bytes.Buffer
	err := run([]string{"recover", "-wal", wal, "-corrupt", "trunc:3", "-strict"}, &buf)
	if err == nil {
		t.Fatalf("strict recovery accepted a torn log:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "torn at byte") || !strings.Contains(err.Error(), "intact frames") {
		t.Errorf("strict error does not name the tear: %v", err)
	}
	// Without -strict the same log recovers by truncation.
	out := runOut(t, "recover", "-wal", wal, "-ops", "20")
	if !strings.Contains(out, "verdict: ok") {
		t.Errorf("permissive recovery of the torn log:\n%s", out)
	}
}

func TestListNetFaults(t *testing.T) {
	out := runOut(t, "list", "-section", "net-faults")
	for _, want := range []string{"none", "flaky-net", "partition-heal", "drop:C@T"} {
		if !strings.Contains(out, want) {
			t.Errorf("net-faults section missing %q:\n%s", want, out)
		}
	}
}
