package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeHistory(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "h.txt")
	if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

const dupHistory = `
inv p0 X fetchinc
inv p1 X fetchinc
res p0 X 0
res p1 X 0
`

func TestModes(t *testing.T) {
	path := writeHistory(t, dupHistory)
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-obj", "X=fetchinc", "-mode", "lin", path}, "linearizable: false"},
		{[]string{"-obj", "X=fetchinc", "-mode", "weak", path}, "weakly consistent: true"},
		{[]string{"-obj", "X=fetchinc", "-mode", "mint", path}, "MinT: 3"},
		{[]string{"-obj", "X=fetchinc", "-mode", "tlin", "-t", "3", path}, "3-linearizable: true"},
		{[]string{"-obj", "X=fetchinc", "-mode", "tlin", "-t", "0", path}, "0-linearizable: false"},
		{[]string{"-obj", "X=fetchinc", "-mode", "track", "-stride", "2", path}, "trend:"},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := run(tc.args, &buf); err != nil {
			t.Errorf("%v: %v", tc.args, err)
			continue
		}
		if !strings.Contains(buf.String(), tc.want) {
			t.Errorf("%v output %q, want %q", tc.args, buf.String(), tc.want)
		}
	}
}

func TestWitness(t *testing.T) {
	path := writeHistory(t, dupHistory)
	var buf bytes.Buffer
	err := run([]string{"-obj", "X=fetchinc", "-mode", "mint", "-witness", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "witness 3-linearization") ||
		!strings.Contains(buf.String(), "(reassigned)") {
		t.Errorf("witness output: %q", buf.String())
	}
}

func TestLegalMode(t *testing.T) {
	path := writeHistory(t, "inv p0 X write(5)\nres p0 X 0\ninv p0 X read\nres p0 X 5\n")
	var buf bytes.Buffer
	if err := run([]string{"-obj", "X=register", "-mode", "legal", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legal sequential history: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestMinTLocalMode(t *testing.T) {
	path := writeHistory(t, `
inv p0 R1 write(1)
res p0 R1 0
inv p1 R1 read
res p1 R1 0
inv p0 R2 write(1)
res p0 R2 0
inv p1 R2 read
res p1 R2 0
`)
	var buf bytes.Buffer
	err := run([]string{"-obj", "R1=register", "-obj", "R2=register",
		"-mode", "mintlocal", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "t_R1 = 2") || !strings.Contains(out, "t_R2 = 2") {
		t.Errorf("per-object cuts: %q", out)
	}
	if !strings.Contains(out, "global MinT <= 6") {
		t.Errorf("global lift: %q", out)
	}
}

func TestMultiObjectWeak(t *testing.T) {
	path := writeHistory(t, "inv p0 X fetchinc\nres p0 X 0\ninv p0 Y write(1)\nres p0 Y 0\n")
	var buf bytes.Buffer
	err := run([]string{"-obj", "X=fetchinc", "-obj", "Y=register", "-mode", "weak", path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "weakly consistent: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestJSONInput(t *testing.T) {
	path := writeHistory(t, `[{"kind":"inv","proc":0,"obj":"X","op":"fetchinc"},{"kind":"res","proc":0,"obj":"X","resp":0}]`)
	var buf bytes.Buffer
	if err := run([]string{"-obj", "X=fetchinc", "-mode", "lin", "-json", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "linearizable: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestInitValue(t *testing.T) {
	path := writeHistory(t, "inv p0 X fetchinc\nres p0 X 10\n")
	var buf bytes.Buffer
	if err := run([]string{"-obj", "X=fetchinc:10", "-mode", "lin", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "linearizable: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestErrors(t *testing.T) {
	path := writeHistory(t, dupHistory)
	bad := [][]string{
		{path}, // no -obj
		{"-obj", "X", path},
		{"-obj", "X=nosuchtype", path},
		{"-obj", "X=fetchinc", "-mode", "zap", path},
		{"-obj", "Y=fetchinc", "-mode", "mint", path}, // wrong object name
		{"-obj", "X=fetchinc", "-mode", "lin", "/nonexistent/file"},
	}
	for _, args := range bad {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestGoldenWitness pins the complete witness output for the canonical
// duplicate-response history.
func TestGoldenWitness(t *testing.T) {
	path := writeHistory(t, dupHistory)
	var buf bytes.Buffer
	if err := run([]string{"-obj", "X=fetchinc", "-mode", "mint", "-witness", path}, &buf); err != nil {
		t.Fatal(err)
	}
	want := `MinT: 3 (of 4 events)
witness 3-linearization:
  1. p1 fetchinc -> 0
  2. p0 fetchinc -> 1 (reassigned)
`
	if buf.String() != want {
		t.Errorf("golden output drift:\ngot:\n%s\nwant:\n%s", buf.String(), want)
	}
}
