package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestLinMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "cas-counter", "-procs", "2", "-ops", "1",
		"-mode", "lin", "-depth", "14"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "linearizable everywhere: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestLinModeViolation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "sloppy-counter", "-procs", "2", "-ops", "1",
		"-mode", "lin", "-depth", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "linearizable everywhere: false") ||
		!strings.Contains(out, "violating history") {
		t.Errorf("output: %q", out)
	}
}

func TestWeakMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "sloppy-counter", "-procs", "2", "-ops", "1",
		"-mode", "weak", "-depth", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "weakly consistent everywhere: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestValencyMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "reg-consensus", "-procs", "2", "-ops", "1",
		"-mode", "valency", "-depth", "18"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "agreement-violations=") || !strings.Contains(out, "root valence") {
		t.Errorf("output: %q", out)
	}
	if !strings.Contains(out, "example agreement violation") {
		t.Errorf("expected a violation example: %q", out)
	}
}

func TestValencyStrongPivot(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "base-consensus", "-procs", "2", "-ops", "1",
		"-mode", "valency", "-depth", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "critical=1") || !strings.Contains(out, "type=consensus") {
		t.Errorf("output: %q", out)
	}
}

func TestStableMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "warmup-counter:2", "-procs", "2", "-ops", "3",
		"-mode", "stable", "-depth", "8", "-verify-depth", "14"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stable configuration found at depth") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestErrors(t *testing.T) {
	bad := [][]string{
		{"-impl", "nosuch"},
		{"-impl", "cas-counter", "-mode", "zap"},
		{"-impl", "cas-counter", "-policy", "zap"},
	}
	for _, args := range bad {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
