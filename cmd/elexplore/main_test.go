package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestLinMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "cas-counter", "-procs", "2", "-ops", "1",
		"-mode", "lin", "-depth", "14"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "linearizable everywhere: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestLinModeViolation(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "sloppy-counter", "-procs", "2", "-ops", "1",
		"-mode", "lin", "-depth", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "linearizable everywhere: false") ||
		!strings.Contains(out, "violating history") {
		t.Errorf("output: %q", out)
	}
}

func TestWeakMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "sloppy-counter", "-procs", "2", "-ops", "1",
		"-mode", "weak", "-depth", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "weakly consistent everywhere: true") {
		t.Errorf("output: %q", buf.String())
	}
}

func TestValencyMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "reg-consensus", "-procs", "2", "-ops", "1",
		"-mode", "valency", "-depth", "18"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "agreement-violations=") || !strings.Contains(out, "root valence") {
		t.Errorf("output: %q", out)
	}
	if !strings.Contains(out, "example agreement violation") {
		t.Errorf("expected a violation example: %q", out)
	}
}

func TestValencyStrongPivot(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "base-consensus", "-procs", "2", "-ops", "1",
		"-mode", "valency", "-depth", "10"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "critical=1") || !strings.Contains(out, "type=consensus") {
		t.Errorf("output: %q", out)
	}
}

func TestStableMode(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-impl", "warmup-counter:2", "-procs", "2", "-ops", "3",
		"-mode", "stable", "-depth", "8", "-verify-depth", "14"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "stable configuration found at depth") {
		t.Errorf("output: %q", buf.String())
	}
}

// TestWorkersFlagDeterministic runs every mode at several worker counts
// and checks the rendered output is identical to the sequential engine's —
// the CLI-level face of the parallel engine's determinism guarantee. The
// violating lin run compares only the witness: an early exit leaves the
// node/leaf counters at a schedule-dependent point by design.
func TestWorkersFlagDeterministic(t *testing.T) {
	cases := []struct {
		args        []string
		witnessOnly bool
	}{
		{[]string{"-impl", "sloppy-counter", "-procs", "2", "-ops", "1", "-mode", "lin", "-depth", "10"}, true},
		{[]string{"-impl", "cas-counter", "-procs", "2", "-ops", "1", "-mode", "lin", "-depth", "14"}, false},
		{[]string{"-impl", "reg-consensus", "-procs", "2", "-ops", "1", "-mode", "valency", "-depth", "12"}, false},
		{[]string{"-impl", "warmup-counter:2", "-procs", "2", "-ops", "3", "-mode", "stable", "-depth", "6", "-verify-depth", "12"}, false},
	}
	project := func(out string, witnessOnly bool) string {
		if !witnessOnly {
			return out
		}
		i := strings.Index(out, "violating history:")
		if i < 0 {
			return out
		}
		return out[i:]
	}
	for _, tc := range cases {
		var seq bytes.Buffer
		if err := run(append([]string{"-workers", "1"}, tc.args...), &seq); err != nil {
			t.Fatal(err)
		}
		want := project(seq.String(), tc.witnessOnly)
		for _, w := range []string{"2", "4"} {
			var par bytes.Buffer
			if err := run(append([]string{"-workers", w}, tc.args...), &par); err != nil {
				t.Fatal(err)
			}
			if got := project(par.String(), tc.witnessOnly); got != want {
				t.Errorf("workers=%s output diverges for %v:\npar: %q\nseq: %q", w, tc.args, got, want)
			}
		}
	}
}

func TestErrors(t *testing.T) {
	bad := [][]string{
		{"-impl", "nosuch"},
		{"-impl", "cas-counter", "-mode", "zap"},
		{"-impl", "cas-counter", "-policy", "zap"},
	}
	for _, args := range bad {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestCheckDetFlag(t *testing.T) {
	// All built-in implementations are deterministic step machines, so
	// -checkdet must not change the verdict (the nondeterministic-programme
	// error path is exercised in internal/explore's determinism tests).
	var plain, checked bytes.Buffer
	args := []string{"-impl", "cas-counter", "-procs", "2", "-ops", "1", "-mode", "lin", "-depth", "12"}
	if err := run(args, &plain); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-checkdet"), &checked); err != nil {
		t.Fatal(err)
	}
	if plain.String() != checked.String() {
		t.Errorf("-checkdet changed output:\n%q\nvs\n%q", plain.String(), checked.String())
	}
	if !strings.Contains(checked.String(), "linearizable everywhere: true") {
		t.Errorf("output: %q", checked.String())
	}
}
