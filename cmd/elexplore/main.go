// Command elexplore exhaustively explores bounded execution trees: it can
// certify linearizability or weak consistency over every interleaving,
// run the Proposition 15 valency analysis, or search for a Proposition 18
// stable configuration.
//
// Usage:
//
//	elexplore -impl cas-counter   -procs 2 -ops 2 -mode lin     -depth 22
//	elexplore -impl sloppy-counter -procs 2 -ops 1 -mode lin    -depth 10
//	elexplore -impl reg-consensus -procs 2 -ops 1 -mode valency -depth 18
//	elexplore -impl warmup-counter:2 -procs 2 -ops 3 -mode stable -depth 8 -verify-depth 16
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elexplore:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elexplore", flag.ContinueOnError)
	implName := fs.String("impl", "cas-counter", "implementation (see elsim -list)")
	procs := fs.Int("procs", 2, "number of processes")
	ops := fs.Int("ops", 1, "operations per process")
	mode := fs.String("mode", "lin", "analysis: lin | weak | valency | stable")
	depth := fs.Int("depth", 16, "exploration depth bound")
	verifyDepth := fs.Int("verify-depth", 14, "stability verification depth (mode stable)")
	policyName := fs.String("policy", "never", "EL stabilization policy: immediate | never | window:K")
	dedup := fs.Bool("dedup", false, "merge equivalent configurations (mode valency): the tree becomes a DAG")
	workers := fs.Int("workers", 0, "exploration workers: 0 = GOMAXPROCS, 1 = sequential reference engine")
	checkDet := fs.Bool("checkdet", false, "verify programme determinism on every probe (catches implementations whose Step depends on state outside Clone)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	impl, err := registry.Impl(*implName)
	if err != nil {
		return err
	}
	policy, err := registry.Policy(*policyName)
	if err != nil {
		return err
	}
	root, err := sim.NewSystem(impl, registry.Workload(impl, *procs, *ops),
		base.SamePolicy(policy), check.Options{}, false)
	if err != nil {
		return err
	}

	cfg := explore.Config{Workers: *workers, CheckDeterminism: *checkDet}
	switch *mode {
	case "lin":
		ok, bad, st, err := explore.LinearizableEverywhereConfig(root, *depth, cfg, check.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "linearizable everywhere: %v (nodes=%d leaves=%d truncated=%v)\n",
			ok, st.Nodes, st.Leaves, st.Truncated)
		if !ok {
			fmt.Fprintln(out, "violating history:")
			fmt.Fprint(out, bad.History().String())
		}
	case "weak":
		ok, bad, st, err := explore.WeaklyConsistentEverywhereConfig(root, *depth, cfg, check.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "weakly consistent everywhere: %v (nodes=%d leaves=%d truncated=%v)\n",
			ok, st.Nodes, st.Leaves, st.Truncated)
		if !ok {
			fmt.Fprintln(out, "violating history:")
			fmt.Fprint(out, bad.History().String())
		}
	case "valency":
		cfg.Dedup = *dedup
		rep, err := explore.AnalyzeConfig(root, *depth, cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "root valence: %v (truncated=%v)\n", rep.Root.Values(), rep.Stats.Truncated)
		fmt.Fprintf(out, "multivalent=%d univalent=%d critical=%d agreement-violations=%d deduped=%d\n",
			rep.Multivalent, rep.Univalent, len(rep.Criticals), rep.AgreementViolations, rep.Stats.Deduped)
		for i, c := range rep.Criticals {
			if i >= 3 {
				fmt.Fprintf(out, "... %d more critical configurations\n", len(rep.Criticals)-3)
				break
			}
			fmt.Fprintf(out, "critical #%d at depth %d (same-object=%v):\n", i+1, c.Depth, c.SameObject)
			for _, pa := range c.Pending {
				fmt.Fprintf(out, "  p%d -> %s (type=%s eventual=%v)\n", pa.Proc, pa.Desc, pa.BaseType, pa.Eventually)
			}
		}
		if rep.AgreementViolations > 0 && rep.ViolationHistory != "" {
			fmt.Fprintln(out, "example agreement violation:")
			fmt.Fprint(out, rep.ViolationHistory)
		}
	case "stable":
		res, err := explore.FindStableConfig(root, *depth, *verifyDepth, cfg, check.Options{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "stable configuration found at depth %d (t=%d, searched %d nodes)\n",
			res.Depth, res.T, res.NodesSearched)
		fmt.Fprintf(out, "verification: nodes=%d leaves=%d truncated=%v\n",
			res.VerifyStats.Nodes, res.VerifyStats.Leaves, res.VerifyStats.Truncated)
		fmt.Fprintln(out, "history at the stable configuration:")
		fmt.Fprint(out, res.System.History().String())
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
