// Command elstress drives the live concurrent runtime: N goroutine clients
// against a genuinely shared object, with sharded history recording, online
// windowed t-linearizability monitoring, seeded fuzzing, and automatic
// shrink-to-simulator replay on violations.
//
// Usage:
//
//	elstress -object atomic-fi -clients 8 -ops 100000
//	elstress -object mutex-fi -clients 4 -ops 50000 -rate 20000
//	elstress -object el-fi -policy window:400 -maxt -1
//	elstress -object junk-fi:40 -clients 4 -ops 2000
//	elstress -object junk-fi:50 -fuzz 8
//	elstress -object atomic-fi -ops 1000000 -nomonitor -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/spec"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "elstress:", err)
		os.Exit(1)
	}
}

// objectNames lists the stressable objects for -list.
var objectNames = []string{
	"atomic-fi[:init]   lock-free fetch&increment (one atomic fetch-add)",
	"mutex-fi[:init]    mutex-serialized atomic counter base object",
	"mutex-reg[:init]   mutex-serialized atomic register (read/write mix)",
	"el-fi[:init]       mutex-serialized eventually linearizable counter (see -policy)",
	"junk-fi:K          injected bug: loses every increment past K",
}

// makeObject resolves an -object spec.
func makeObject(name, policyName string, seed int64) (live.Object, live.OpGen, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	argInt := func(def int64) (int64, error) {
		if !hasArg {
			return def, nil
		}
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad parameter %q in %q: %w", arg, name, err)
		}
		return v, nil
	}
	switch kind {
	case "atomic-fi":
		init, err := argInt(0)
		if err != nil {
			return nil, nil, err
		}
		return live.NewAtomicFetchInc("C", init), live.FetchIncGen(), nil
	case "mutex-fi":
		init, err := argInt(0)
		if err != nil {
			return nil, nil, err
		}
		obj, err := live.NewSerialized("C", spec.Object{Type: spec.FetchInc{InitVal: init}, Init: init}, seed)
		return obj, live.FetchIncGen(), err
	case "mutex-reg":
		init, err := argInt(0)
		if err != nil {
			return nil, nil, err
		}
		obj, err := live.NewSerialized("R", spec.Object{Type: spec.Register{InitVal: init}, Init: init}, seed)
		return obj, live.RegisterMixGen(0.3, 16), err
	case "el-fi":
		init, err := argInt(0)
		if err != nil {
			return nil, nil, err
		}
		policy, err := registry.Policy(policyName)
		if err != nil {
			return nil, nil, err
		}
		obj, err := live.NewSerializedEventual("C",
			spec.Object{Type: spec.FetchInc{InitVal: init}, Init: init}, policy, seed, check.Options{})
		return obj, live.FetchIncGen(), err
	case "junk-fi":
		stick, err := argInt(32)
		if err != nil {
			return nil, nil, err
		}
		return live.NewJunkFetchInc("C", stick), live.FetchIncGen(), nil
	default:
		return nil, nil, fmt.Errorf("unknown object %q (see -list)", name)
	}
}

// stressRecord is the machine-readable summary (-json), archived alongside
// elbench timings in BENCH_*.json.
type stressRecord struct {
	ID         string  `json:"id"`
	Object     string  `json:"object"`
	Clients    int     `json:"clients"`
	Ops        int     `json:"ops"`
	Events     int     `json:"events"`
	NS         int64   `json:"ns"`
	Throughput float64 `json:"throughput_ops_s"`
	P50NS      int64   `json:"p50_ns"`
	P95NS      int64   `json:"p95_ns"`
	P99NS      int64   `json:"p99_ns"`
	Windows    int     `json:"windows"`
	Trend      string  `json:"trend,omitempty"`
	Violation  bool    `json:"violation"`
	GOMAXPROCS int     `json:"gomaxprocs"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("elstress", flag.ContinueOnError)
	objName := fs.String("object", "atomic-fi", "object under stress (see -list)")
	list := fs.Bool("list", false, "list objects and exit")
	clients := fs.Int("clients", 4, "client goroutines")
	ops := fs.Int("ops", 10000, "operations per client")
	seed := fs.Int64("seed", 1, "run seed (per-client RNG streams and EL response choices)")
	rate := fs.Float64("rate", 0, "open-loop rate per client in ops/sec (0 = closed loop)")
	policyName := fs.String("policy", "window:400", "EL stabilization policy for el-fi: immediate | never | window:K")
	stride := fs.Int("stride", 0, "monitor window stride in events (0 = auto: 512 for counter/consensus types with polynomial checkers, 80 for generic types whose windows are capped at 63 ops)")
	maxT := fs.Int("maxt", 0, "window MinT tolerance; -1 = observe only (no violation stop)")
	noMonitor := fs.Bool("nomonitor", false, "disable online monitoring (pure throughput)")
	latSample := fs.Int("latsample", 1, "record one latency sample every N ops per client")
	fuzz := fs.Int("fuzz", 0, "run a fuzz campaign over N consecutive seeds instead of one run")
	noShrink := fs.Bool("noshrink", false, "skip ddmin shrinking of a violation window")
	noVerify := fs.Bool("noverify", false, "skip the byte-identical replay verification (single-run mode; fuzz runs never verify)")
	quiet := fs.Bool("quiet", false, "suppress witness history dumps")
	jsonOut := fs.Bool("json", false, "emit a machine-readable summary record")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, n := range objectNames {
			fmt.Fprintln(out, n)
		}
		return nil
	}

	obj, gen, err := makeObject(*objName, *policyName, *seed)
	if err != nil {
		return err
	}
	if *stride <= 0 {
		switch obj.Spec().Type.(type) {
		case spec.FetchInc, spec.Consensus:
			*stride = 512 // polynomial checkers: windows can be generous
		default:
			// The generic engine caps a window at check.MaxOpsPerObject
			// operations, and a window holds ~stride/2 new operations plus
			// up to one carried-over open invocation per client.
			s := 2 * (check.MaxOpsPerObject - *clients - 2)
			if s < 8 {
				return fmt.Errorf("%d clients leave no window room for the generic checker (cap %d ops); lower -clients or use -nomonitor",
					*clients, check.MaxOpsPerObject)
			}
			if s > 80 {
				s = 80
			}
			*stride = s
		}
	}
	// A negative MaxT means observe-only (trend watching, no violation
	// stop) — honoured by the monitor directly.
	mon := check.IncrementalConfig{Stride: *stride, MaxT: *maxT}
	cfg := live.Config{
		Object:        obj,
		Clients:       *clients,
		Ops:           *ops,
		Gen:           gen,
		Seed:          *seed,
		Rate:          *rate,
		Monitor:       mon,
		NoMonitor:     *noMonitor,
		LatencySample: *latSample,
	}

	if *fuzz > 0 {
		return runFuzz(out, cfg, *fuzz, *noShrink, *quiet, *jsonOut)
	}

	res, err := live.Run(cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		// The id encodes the configuration axes that make timings
		// incomparable (client count, monitoring on/off), so archived
		// records of the same object never collide in BENCH_*.json.
		id := fmt.Sprintf("STRESS-%s-c%d", *objName, *clients)
		if *noMonitor {
			id += "-nomon"
		}
		rec := stressRecord{
			ID:         id,
			Object:     *objName,
			Clients:    *clients,
			Ops:        res.Ops,
			Events:     res.History.Len(),
			NS:         res.Elapsed.Nanoseconds(),
			Throughput: res.Throughput,
			P50NS:      res.LatP50.Nanoseconds(),
			P95NS:      res.LatP95.Nanoseconds(),
			P99NS:      res.LatP99.Nanoseconds(),
			Windows:    len(res.Verdict.Samples),
			Violation:  res.Violation != nil,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		}
		if !*noMonitor {
			rec.Trend = res.Verdict.Trend.String()
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rec)
	}

	mode := "closed"
	if *rate > 0 {
		mode = fmt.Sprintf("open@%g/s", *rate)
	}
	fmt.Fprintf(out, "object=%s clients=%d ops/client=%d seed=%d mode=%s\n",
		*objName, *clients, *ops, *seed, mode)
	merged := ""
	if res.Stopped {
		merged = " (merge stopped at the violation window)"
	}
	fmt.Fprintf(out, "completed ops=%d events=%d%s in %v: %.0f ops/s\n",
		res.Ops, res.History.Len(), merged, res.Elapsed.Round(time.Millisecond), res.Throughput)
	fmt.Fprintf(out, "latency p50=%v p95=%v p99=%v max=%v\n",
		res.LatP50, res.LatP95, res.LatP99, res.LatMax)
	if !*noMonitor {
		fmt.Fprintf(out, "monitor windows=%d trend=%s final-window-MinT=%d\n",
			len(res.Verdict.Samples), res.Verdict.Trend, res.Verdict.FinalMinT)
	}
	if res.Violation != nil {
		fmt.Fprintf(out, "VIOLATION: %s\n", res.Violation)
		if err := reportViolation(out, res.Violation, *noShrink, *quiet); err != nil {
			return err
		}
	}
	if !*noVerify {
		same, err := live.Verify(obj, res.History)
		if err != nil {
			return err
		}
		if same {
			fmt.Fprintln(out, "replay: byte-identical (run reproducible from seed + commit order)")
		} else {
			fmt.Fprintln(out, "replay: DIVERGED (object is not commit-deterministic)")
		}
	}
	return nil
}

// reportViolation shrinks (unless disabled) and prints the witness with its
// simulator confirmation.
func reportViolation(out io.Writer, v *check.WindowViolation, noShrink, quiet bool) error {
	if noShrink {
		if !quiet {
			fmt.Fprintln(out, "offending window:")
			fmt.Fprint(out, v.Window.String())
		}
		return nil
	}
	w, err := live.Shrink(v, check.Options{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "shrunk to %d ops in %d trials; sim replay diverged=%v\n",
		w.Ops, w.Trials, w.Replay.Diverged)
	if w.Replay.Diverged {
		fmt.Fprintf(out, "sim: p%d %s got %d, model permits %v\n",
			w.Replay.Proc, w.Replay.Op, w.Replay.Got, w.Replay.Want)
	}
	if !quiet {
		fmt.Fprintln(out, "minimized witness:")
		fmt.Fprint(out, w.History.String())
	}
	return nil
}

// runFuzz drives a fuzz campaign.
func runFuzz(out io.Writer, base live.Config, runs int, noShrink, quiet, jsonOut bool) error {
	res, err := live.Fuzz(live.FuzzConfig{Base: base, Runs: runs, NoShrink: noShrink})
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{
			"id":        "FUZZ-" + base.Object.Name(),
			"runs":      res.Runs,
			"total_ops": res.TotalOps,
			"found":     res.Found(),
			"seed":      res.Seed,
		})
	}
	fmt.Fprintf(out, "fuzz: %d runs, %d total ops\n", res.Runs, res.TotalOps)
	if !res.Found() {
		fmt.Fprintln(out, "no violation found")
		return nil
	}
	fmt.Fprintf(out, "VIOLATION at seed %d: %s\n", res.Seed, res.Violation)
	if res.Witness == nil {
		if !quiet {
			fmt.Fprintln(out, "offending window:")
			fmt.Fprint(out, res.Violation.Window.String())
		}
		return nil
	}
	fmt.Fprintf(out, "shrunk to %d ops in %d trials; sim replay diverged=%v\n",
		res.Witness.Ops, res.Witness.Trials, res.Witness.Replay.Diverged)
	if res.Witness.Replay.Diverged {
		fmt.Fprintf(out, "sim: p%d %s got %d, model permits %v\n",
			res.Witness.Replay.Proc, res.Witness.Replay.Op, res.Witness.Replay.Got, res.Witness.Replay.Want)
	}
	if !quiet {
		fmt.Fprintln(out, "minimized witness:")
		fmt.Fprint(out, res.Witness.History.String())
	}
	return nil
}
