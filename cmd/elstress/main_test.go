package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"atomic-fi", "mutex-fi", "el-fi", "junk-fi"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("list output missing %s: %q", want, buf.String())
		}
	}
}

func TestCleanAtomicRun(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "atomic-fi", "-clients", "4", "-ops", "2000",
		"-stride", "256", "-seed", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"completed ops=8000 events=16000",
		"trend=stabilized",
		"replay: byte-identical",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("clean run reported a violation:\n%s", out)
	}
}

func TestJunkCaughtAndShrunk(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "junk-fi:40", "-clients", "2", "-ops", "500",
		"-stride", "64"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"VIOLATION", "sim replay diverged=true", "minimized witness:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestELObserveOnly(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "el-fi", "-policy", "window:200", "-clients", "2",
		"-ops", "600", "-maxt", "-1", "-stride", "128", "-quiet"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("observe-only run stopped:\n%s", out)
	}
	if !strings.Contains(out, "monitor windows=") {
		t.Errorf("monitor summary missing:\n%s", out)
	}
}

func TestOpenLoopAndRegisterMix(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "mutex-reg", "-clients", "3", "-ops", "100",
		"-rate", "100000", "-stride", "40"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mode=open@100000/s") {
		t.Errorf("open-loop mode missing:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "VIOLATION") {
		t.Errorf("serialized register flagged:\n%s", buf.String())
	}
}

func TestRegisterDefaultStride(t *testing.T) {
	// Generic types must get an automatic stride that keeps windows under
	// the generic engine's 63-op cap (an unadapted default used to fail
	// with ErrTooLarge on the first window).
	var buf bytes.Buffer
	err := run([]string{"-object", "mutex-reg", "-clients", "2", "-ops", "2000"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "VIOLATION") {
		t.Errorf("serialized register flagged under default flags:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "trend=stabilized") {
		t.Errorf("monitor summary missing:\n%s", buf.String())
	}
}

func TestFuzzFinds(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "junk-fi:30", "-clients", "2", "-ops", "200",
		"-stride", "64", "-fuzz", "3", "-quiet"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "VIOLATION at seed 1") {
		t.Errorf("fuzz did not report the first seed:\n%s", out)
	}
	if !strings.Contains(out, "sim replay diverged=true") {
		t.Errorf("fuzz witness not confirmed:\n%s", out)
	}
}

func TestJSONRecord(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "atomic-fi", "-clients", "2", "-ops", "1000",
		"-stride", "256", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad json: %v\n%s", err, buf.String())
	}
	if rec["id"] != "STRESS-atomic-fi-c2" || rec["violation"] != false {
		t.Errorf("record: %v", rec)
	}
	if rec["throughput_ops_s"].(float64) <= 0 {
		t.Errorf("missing throughput: %v", rec)
	}
	if rec["trend"] != "stabilized" {
		t.Errorf("trend: %v", rec)
	}
}

func TestNoMonitorJSON(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-object", "mutex-fi", "-clients", "2", "-ops", "500",
		"-nomonitor", "-latsample", "16", "-json"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if _, hasTrend := rec["trend"]; hasTrend {
		t.Errorf("nomonitor record has trend: %v", rec)
	}
	if rec["events"].(float64) != 2000 {
		t.Errorf("events: %v", rec)
	}
}

func TestErrors(t *testing.T) {
	bad := [][]string{
		{"-object", "nosuch"},
		{"-object", "junk-fi:xx"},
		{"-object", "el-fi", "-policy", "nosuch"},
		// Too many clients for the generic checker's window cap under
		// auto-stride.
		{"-object", "mutex-reg", "-clients", "62", "-ops", "10"},
	}
	for _, args := range bad {
		var buf bytes.Buffer
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
