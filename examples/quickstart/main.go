// Quickstart: the scenario-first API. One declarative Scenario — an
// implementation, a workload, a seed, a tolerance — runs unchanged on all
// three engines (exhaustive exploration, deterministic simulation, live
// goroutine stress), and every engine answers with the same Report.
//
// The object under test is the paper's warmup counter: an eventually
// linearizable fetch&increment that answers with a private count until the
// shared count crosses a threshold. While warming up it may hand out
// duplicate responses — "intermittent inconsistency" — which is exactly
// what a strict tolerance flags and an observe-only tolerance tracks.
package main

import (
	"fmt"
	"os"

	elin "github.com/elin-go/elin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// One declarative description. Strict tolerance (0) demands
	// linearizability.
	s := elin.Scenario{
		Impl:     "warmup-counter:2",
		Workload: "uniform:inc",
		Procs:    2,
		Ops:      2,
		Seed:     5,
		Chooser:  "stale",
		Policy:   "window:2",
		Budget:   elin.ScenarioBudget{Depth: 16},
	}

	// The exhaustive engine proves the duplicates are reachable; the
	// simulation engine exhibits one run and measures its MinT; the live
	// engine hammers the same implementation with real goroutines.
	for _, engine := range []string{"explore", "sim"} {
		rep, err := elin.RunScenario(engine, s)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s verdict=%s  %s\n", engine, rep.Verdict, rep.Detail)
	}

	// Observe-only tolerance: the same scenario, now tracked rather than
	// judged — the finite-data instrument for eventual linearizability.
	s.Tolerance = -1
	rep, err := elin.RunScenario("sim", s)
	if err != nil {
		return err
	}
	if rep.Checks != nil && rep.Checks.MinT != nil {
		fmt.Printf("sim observe: MinT=%d of %d events, trend=%s\n",
			*rep.Checks.MinT, rep.Perf.Events, rep.Trend.Trend)
	}

	live, err := elin.RunScenario("live", s)
	if err != nil {
		return err
	}
	fmt.Printf("live     verdict=%s  ops=%d replay-identical=%v\n",
		live.Verdict, live.Perf.Ops, *live.Checks.ReplayIdentical)

	fmt.Println()
	fmt.Println("The warmup counter is weakly consistent and t-linearizable for a")
	fmt.Println("finite cut: strict tolerance rejects it mid-stabilization, observe")
	fmt.Println("mode watches MinT stabilize — the behaviour of an eventually")
	fmt.Println("linearizable object, on every engine, from one scenario value.")
	return nil
}
