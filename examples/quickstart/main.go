// Quickstart: build a concurrent history by hand, then ask the checker the
// three questions the paper is about — is it linearizable, is it
// t-linearizable for some cut t, and where is the least such cut (MinT)?
package main

import (
	"fmt"
	"os"

	elin "github.com/elin-go/elin"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Two processes share a fetch&increment counter. Process p0's
	// operation overlaps p1's, and both return 0 — the kind of
	// "intermittent inconsistency" eventual linearizability tolerates.
	h := elin.NewHistory()
	steps := []func() error{
		func() error { return h.Invoke(0, "X", elin.MakeOp("fetchinc")) },
		func() error { return h.Invoke(1, "X", elin.MakeOp("fetchinc")) },
		func() error { return h.Respond(0, 0) },
		func() error { return h.Respond(1, 0) }, // duplicate!
		func() error { return h.Call(0, "X", elin.MakeOp("fetchinc"), 2) },
		func() error { return h.Call(1, "X", elin.MakeOp("fetchinc"), 3) },
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	fmt.Print(h.String())

	obj := elin.NewObject(elin.FetchInc{})
	objs := map[string]elin.Object{"X": obj}

	lin, err := elin.Linearizable(objs, h, elin.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("linearizable:       %v (two operations returned 0)\n", lin)

	weak, err := elin.WeaklyConsistent(objs, h, elin.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("weakly consistent:  %v (each 0 has a witness ignoring the other)\n", weak)

	// Definition 2: after cutting the first t events, does a legal
	// sequential witness exist? MinT finds the least such cut.
	t, ok, err := elin.MinT(obj, h, elin.Options{})
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("history is not t-linearizable for any t")
	}
	fmt.Printf("MinT:               %d of %d events\n", t, h.Len())
	fmt.Println()
	fmt.Println("The history is weakly consistent and t-linearizable for a finite cut:")
	fmt.Println("exactly the behaviour an eventually linearizable counter may exhibit")
	fmt.Println("while it is still stabilizing.")
	return nil
}
