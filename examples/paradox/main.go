// Paradox runs the paper's headline result (Proposition 18) end to end:
//
//  1. Build an eventually linearizable — but NOT linearizable —
//     fetch&increment from linearizable base objects (the warmup counter:
//     it answers from its private count until the shared count crosses a
//     threshold).
//  2. Confirm by exhaustive bounded exploration that it is not
//     linearizable, and by MinT tracking that it stabilizes.
//  3. Apply the stable-configuration construction: find a stable node in
//     the execution tree (Claim 1), advance to C0, capture all base and
//     local state, and emit A′ with responses offset by v0.
//  4. Certify A′ fully linearizable over every bounded interleaving.
//
// In other words: the work needed to be "eventually" consistent already
// contains a fully consistent counter — the paradox.
package main

import (
	"fmt"
	"os"

	elin "github.com/elin-go/elin"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/stabilize"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "paradox:", err)
		os.Exit(1)
	}
}

func run() error {
	impl := counter.Warmup{Threshold: 2}
	fetchinc := elin.MakeOp("fetchinc")

	fmt.Println("Step 1+2: the warmup counter is eventually linearizable but not linearizable")
	root, err := sim.NewSystem(impl, elin.UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		return err
	}
	lin, bad, _, err := explore.LinearizableEverywhere(root, 16, explore.Config{}, check.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  linearizable on all bounded interleavings: %v\n", lin)
	if !lin {
		ops := bad.History().Operations()
		fmt.Printf("  (a violating interleaving returns %d and %d)\n", ops[0].Resp, ops[1].Resp)
	}
	res, err := elin.Run(elin.RunConfig{
		Impl:      impl,
		Workload:  elin.UniformWorkload(2, 8, fetchinc),
		Scheduler: sim.Random{},
		Seed:      3,
	})
	if err != nil {
		return err
	}
	v, err := elin.TrackMinT(impl.Spec(), res.History, 6, elin.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  MinT over a long contended run: %d (trend: %s) — it stabilizes\n\n",
		v.FinalMinT, v.Trend)

	fmt.Println("Step 3: the Proposition 18 construction")
	out, rep, err := stabilize.Transform(impl, stabilize.Config{
		NumProcs:    2,
		OpsPerProc:  4,
		SearchDepth: 8,
		VerifyDepth: 16,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  stable configuration found at depth %d (searched %d nodes), t = %d events\n",
		rep.StableDepth, rep.NodesSearched, rep.StableT)
	fmt.Printf("  solo phase found op0 after %d operation(s); offset v0 = %d\n",
		rep.SoloOps, rep.V0)
	fmt.Printf("  captured base states: %v\n\n", rep.BaseStates)

	fmt.Println("Step 4: certify A′")
	root2, err := sim.NewSystem(out, elin.UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		return err
	}
	lin2, _, st, err := explore.LinearizableEverywhere(root2, 24, explore.Config{}, check.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("  A′ linearizable on ALL %d bounded interleavings: %v\n", st.Leaves, lin2)
	fmt.Println()
	fmt.Println("The eventually linearizable counter contained a fully linearizable one:")
	fmt.Println("same base objects, same programmes — only the initial state changed.")
	return nil
}
