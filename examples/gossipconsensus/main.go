// Gossipconsensus demonstrates Proposition 16: consensus — the hardest
// object to implement linearizably — has a trivial wait-free EVENTUALLY
// linearizable implementation from eventually linearizable registers.
//
// The example runs the paper's Proposals-array algorithm over base
// registers whose adversary may answer with any weakly consistent value
// for a configurable window, and shows that (i) every run is weakly
// consistent and t-linearizable for a finite t, and (ii) the stabilization
// cut MinT tracks the adversary window, collapsing to 0 once the base
// registers behave.
package main

import (
	"fmt"
	"os"

	elin "github.com/elin-go/elin"
	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gossipconsensus:", err)
		os.Exit(1)
	}
}

func run() error {
	const procs = 3
	impl := elconsensus.Impl{}
	objs := map[string]elin.Object{impl.Name(): impl.Spec()}

	fmt.Println("Proposition 16: consensus from eventually linearizable registers")
	fmt.Printf("%d processes, each proposing its id+1 twice; stale-preferring adversary\n\n", procs)
	fmt.Printf("%-10s %-6s %-18s %-6s %s\n", "window", "seeds", "weakly-consistent", "maxT", "decisions observed")

	for _, window := range []int{0, 2, 6} {
		allWC := true
		maxT := 0
		decisions := map[int64]bool{}
		for seed := int64(0); seed < 10; seed++ {
			w := make([][]elin.Op, procs)
			for p := 0; p < procs; p++ {
				w[p] = []elin.Op{
					elin.MakeOp1("propose", int64(p+1)),
					elin.MakeOp1("propose", int64(p+1)),
				}
			}
			res, err := elin.Run(elin.RunConfig{
				Impl:      impl,
				Workload:  w,
				Scheduler: sim.Random{},
				Chooser:   sim.StaleChooser{},
				Policies:  base.SamePolicy(base.Window{K: window}),
				Seed:      seed,
			})
			if err != nil {
				return err
			}
			wc, err := elin.WeaklyConsistent(objs, res.History, elin.Options{})
			if err != nil {
				return err
			}
			allWC = allWC && wc
			t, ok, err := check.MinT(impl.Spec(), res.History, check.Options{})
			if err != nil || !ok {
				return fmt.Errorf("MinT failed: %v %v", ok, err)
			}
			if t > maxT {
				maxT = t
			}
			for _, op := range res.History.Operations() {
				if !op.Pending() {
					decisions[op.Resp] = true
				}
			}
		}
		fmt.Printf("%-10d %-6d %-18v %-6d %v\n", window, 10, allWC, maxT, keys(decisions))
	}

	fmt.Println()
	fmt.Println("Even with window 0 (atomic base registers) early proposes can disagree —")
	fmt.Println("registers cannot solve consensus (Proposition 15), so the algorithm is only")
	fmt.Println("EVENTUALLY linearizable; but every run stabilizes at a finite MinT, which is")
	fmt.Println("Definition 3's requirement, and larger adversary windows only push MinT up.")
	fmt.Println("Contrast with fetch&increment, where Proposition 18 shows no such shortcut exists.")
	return nil
}

func keys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
