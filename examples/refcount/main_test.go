package main

import "testing"

func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}
