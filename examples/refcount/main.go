// Refcount reproduces the paper introduction's motivating scenario: a
// shared fetch&increment used for reference counting. The linearizable
// implementation synchronizes through compare&swap and retries under
// contention; the "eventually consistent" alternative does its increment
// locally and returns a possibly lower value.
//
// The example runs both under the same contended schedules and reports the
// trade-off the paper formalizes: the sloppy counter completes every
// operation in a bounded number of steps and stays weakly consistent, but
// its MinT diverges — by Corollary 19 it cannot be eventually
// linearizable, no matter how long it runs.
package main

import (
	"fmt"
	"os"

	elin "github.com/elin-go/elin"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "refcount:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		procs = 3
		ops   = 8
		seed  = 42
	)
	fmt.Printf("reference-counting workload: %d processes x %d increments, contended schedule\n\n",
		procs, ops)

	for _, impl := range []elin.Impl{counter.CAS{}, counter.Sloppy{}} {
		res, err := elin.Run(elin.RunConfig{
			Impl:      impl,
			Workload:  elin.UniformWorkload(procs, ops, elin.MakeOp("fetchinc")),
			Scheduler: sim.Random{},
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		objs := map[string]elin.Object{impl.Name(): impl.Spec()}
		wc, err := elin.WeaklyConsistent(objs, res.History, elin.Options{})
		if err != nil {
			return err
		}
		v, err := elin.TrackMinT(impl.Spec(), res.History, res.History.Len()/6, elin.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("%-16s steps/op %.2f   weakly consistent %-5v  MinT %3d  trend %s\n",
			impl.Name(),
			float64(res.Steps)/float64(procs*ops),
			wc, v.FinalMinT, v.Trend)
	}

	fmt.Println()
	fmt.Println("cas-counter:    every response exact (MinT 0), but steps/op grows with contention.")
	fmt.Println("sloppy-counter: bounded steps/op and weakly consistent — yet its MinT diverges,")
	fmt.Println("                the Corollary 19 signature: no register-only fetch&increment can")
	fmt.Println("                be eventually linearizable.")
	return nil
}
