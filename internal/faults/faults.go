// Package faults is the deterministic fault plane of the live runtime:
// one Spec describes every injected failure of a run — per-client stalls,
// a hard crash at a commit ticket, slow-writer jitter, and post-crash
// write-ahead-log corruption — and every decision the spec makes is a pure
// function of (seed, commit ticket, client, op index). No fault consults a
// wall clock or an unseeded random source, so seeded replay, fuzzing and
// ddmin shrinking keep working byte-identically under injected failures,
// and the serial driver (live.Config.Serial) reproduces a faulted run
// exactly across reruns.
//
// The textual grammar is a comma-separated list of directives:
//
//	stall:C@T+D   client C pauses at commit ticket T until ticket T+D
//	crash:K       the process dies at commit ticket K (only the WAL survives)
//	jitter:N      per-op slow-writer jitter with amplitude N (microseconds
//	              under goroutine clients; deferred turns under the serial
//	              driver), drawn as a pure function of (seed, client, op)
//	flip[:OFF]    post-crash WAL corruption: flip one bit at byte OFF
//	              (seed-derived offset when omitted)
//	trunc:N       post-crash WAL corruption: cut N bytes off the tail
//	none          the empty spec
//
// Example: "stall:1@64+256,jitter:20,crash:5000".
package faults

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Stall pauses one client: once the run's commit ticket reaches Ticket,
// the client issues no further operations until the ticket reaches
// Ticket+Ops (other clients' commits move the ticket past the window; the
// runtime releases the victim early when no other client remains to
// commit).
type Stall struct {
	// Client is the victim client index (0-based).
	Client int
	// Ticket is the trigger: the commit ticket at which the pause begins.
	Ticket uint64
	// Ops is the pause length in commit tickets.
	Ops uint64
}

// String renders the stall in spec grammar.
func (s Stall) String() string {
	return fmt.Sprintf("stall:%d@%d+%d", s.Client, s.Ticket, s.Ops)
}

// Corrupt describes post-crash write-ahead-log corruption, applied to the
// log file between the crash and the recovery (the torn-tail and
// bit-rot cases recovery must survive).
type Corrupt struct {
	// Kind is "flip" (flip one bit) or "trunc" (cut bytes off the tail).
	Kind string
	// Arg is the byte offset of a flip (negative: derive it from the
	// seed), or the number of tail bytes a trunc removes.
	Arg int64
}

// String renders the corruption in spec grammar.
func (c Corrupt) String() string {
	if c.Kind == KindFlip {
		if c.Arg < 0 {
			return KindFlip
		}
		return fmt.Sprintf("%s:%d", KindFlip, c.Arg)
	}
	return fmt.Sprintf("%s:%d", KindTrunc, c.Arg)
}

// Corruption kinds.
const (
	KindFlip  = "flip"
	KindTrunc = "trunc"
)

// Spec is one run's fault plane. The zero value injects nothing.
type Spec struct {
	// Stalls are the per-client pauses, evaluated independently.
	Stalls []Stall
	// CrashAtCommit kills the run at this commit ticket (0 = never): the
	// in-memory state is gone, only the write-ahead log survives.
	CrashAtCommit uint64
	// JitterMax enables slow-writer jitter: before each operation a client
	// delays by a pure function of (seed, client, op index) bounded by
	// JitterMax — microseconds under goroutine clients, deferred
	// round-robin turns (capped at 8) under the serial driver.
	JitterMax int
	// Corrupt is the post-crash WAL corruption, applied by CorruptWAL.
	Corrupt *Corrupt
}

// Zero reports whether the spec injects nothing.
func (s *Spec) Zero() bool {
	return s == nil || (len(s.Stalls) == 0 && s.CrashAtCommit == 0 && s.JitterMax == 0 && s.Corrupt == nil)
}

// String renders the spec in the Parse grammar (canonical directive
// order: stalls sorted by client then ticket, crash, jitter, corruption).
func (s *Spec) String() string {
	if s.Zero() {
		return "none"
	}
	var parts []string
	stalls := append([]Stall(nil), s.Stalls...)
	sort.Slice(stalls, func(i, j int) bool {
		if stalls[i].Client != stalls[j].Client {
			return stalls[i].Client < stalls[j].Client
		}
		return stalls[i].Ticket < stalls[j].Ticket
	})
	for _, st := range stalls {
		parts = append(parts, st.String())
	}
	if s.CrashAtCommit > 0 {
		parts = append(parts, fmt.Sprintf("crash:%d", s.CrashAtCommit))
	}
	if s.JitterMax > 0 {
		parts = append(parts, fmt.Sprintf("jitter:%d", s.JitterMax))
	}
	if s.Corrupt != nil {
		parts = append(parts, s.Corrupt.String())
	}
	return strings.Join(parts, ",")
}

// Parse reads the directive grammar. "" and "none" parse to nil (no fault
// plane); unknown directives and malformed parameters are errors that echo
// the grammar.
func Parse(text string) (*Spec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return nil, nil
	}
	sp := &Spec{}
	for _, dir := range strings.Split(text, ",") {
		dir = strings.TrimSpace(dir)
		kind, arg, hasArg := strings.Cut(dir, ":")
		switch kind {
		case "stall":
			st, err := parseStall(arg, hasArg)
			if err != nil {
				return nil, fmt.Errorf("faults: directive %q: %w", dir, err)
			}
			sp.Stalls = append(sp.Stalls, st)
		case "crash":
			k, err := parseUint(arg, hasArg)
			if err != nil || k == 0 {
				return nil, fmt.Errorf("faults: directive %q: want crash:K with K >= 1", dir)
			}
			if sp.CrashAtCommit != 0 {
				return nil, fmt.Errorf("faults: duplicate crash directive %q", dir)
			}
			sp.CrashAtCommit = k
		case "jitter":
			n, err := parseUint(arg, hasArg)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faults: directive %q: want jitter:N with N >= 1", dir)
			}
			if sp.JitterMax != 0 {
				return nil, fmt.Errorf("faults: duplicate jitter directive %q", dir)
			}
			sp.JitterMax = int(n)
		case KindFlip:
			if sp.Corrupt != nil {
				return nil, fmt.Errorf("faults: duplicate corruption directive %q", dir)
			}
			off := int64(-1)
			if hasArg {
				v, err := strconv.ParseInt(arg, 10, 64)
				if err != nil || v < 0 {
					return nil, fmt.Errorf("faults: directive %q: want flip[:OFF] with OFF >= 0", dir)
				}
				off = v
			}
			sp.Corrupt = &Corrupt{Kind: KindFlip, Arg: off}
		case KindTrunc:
			n, err := parseUint(arg, hasArg)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("faults: directive %q: want trunc:N with N >= 1", dir)
			}
			if sp.Corrupt != nil {
				return nil, fmt.Errorf("faults: duplicate corruption directive %q", dir)
			}
			sp.Corrupt = &Corrupt{Kind: KindTrunc, Arg: int64(n)}
		case "none":
			return nil, fmt.Errorf("faults: %q cannot be combined with other directives", dir)
		default:
			return nil, fmt.Errorf("faults: unknown directive %q (grammar: stall:C@T+D, crash:K, jitter:N, flip[:OFF], trunc:N, none)", dir)
		}
	}
	return sp, nil
}

// parseStall reads "C@T+D".
func parseStall(arg string, hasArg bool) (Stall, error) {
	if !hasArg {
		return Stall{}, fmt.Errorf("want stall:C@T+D")
	}
	cs, rest, ok := strings.Cut(arg, "@")
	if !ok {
		return Stall{}, fmt.Errorf("want stall:C@T+D")
	}
	ts, ds, ok := strings.Cut(rest, "+")
	if !ok {
		return Stall{}, fmt.Errorf("want stall:C@T+D")
	}
	c, err := strconv.Atoi(cs)
	if err != nil || c < 0 {
		return Stall{}, fmt.Errorf("client %q (want an index >= 0)", cs)
	}
	t, err := strconv.ParseUint(ts, 10, 64)
	if err != nil || t == 0 {
		return Stall{}, fmt.Errorf("trigger ticket %q (want >= 1)", ts)
	}
	d, err := strconv.ParseUint(ds, 10, 64)
	if err != nil || d == 0 {
		return Stall{}, fmt.Errorf("duration %q (want >= 1 tickets)", ds)
	}
	return Stall{Client: c, Ticket: t, Ops: d}, nil
}

func parseUint(arg string, hasArg bool) (uint64, error) {
	if !hasArg {
		return 0, fmt.Errorf("missing parameter")
	}
	return strconv.ParseUint(arg, 10, 64)
}

// StallTarget returns, for the client's next operation while the commit
// ticket reads now, the ticket the client must wait for before issuing it
// (0 = no stall active). Serve bookkeeping is the caller's: a stall whose
// window the ticket has passed never fires again on its own.
func (s *Spec) StallTarget(client int, now uint64) uint64 {
	if s == nil {
		return 0
	}
	var target uint64
	for _, st := range s.Stalls {
		if st.Client != client {
			continue
		}
		if now >= st.Ticket && now < st.Ticket+st.Ops && st.Ticket+st.Ops > target {
			target = st.Ticket + st.Ops
		}
	}
	return target
}

// Jitter returns the client's delay amplitude before its i-th operation: a
// pure splitmix64 draw over (seed, client, i) in [0, JitterMax]. Zero when
// jitter is disabled.
func (s *Spec) Jitter(seed int64, client, i int) int {
	if s == nil || s.JitterMax <= 0 {
		return 0
	}
	x := uint64(seed) ^ (uint64(client+1) * 0x9E3779B97F4A7C15) ^ (uint64(i+1) * 0xD1B54A32D192ED03)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(s.JitterMax+1))
}

// CorruptFile applies the spec's post-crash WAL corruption to the file in
// place — the injection step of a corrupted-recovery scenario, so it is
// deliberately destructive. A flip with a negative offset derives the
// offset from the seed (a pure function of seed and file length, skipping
// the 8-byte magic so recovery still recognizes the file); a trunc cuts
// min(N, size) bytes off the tail. No-op when the spec carries no
// corruption.
func (s *Spec) CorruptFile(path string, seed int64) error {
	if s == nil || s.Corrupt == nil {
		return nil
	}
	c := s.Corrupt
	switch c.Kind {
	case KindTrunc:
		st, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("faults: corrupt %s: %w", path, err)
		}
		keep := st.Size() - c.Arg
		if keep < 0 {
			keep = 0
		}
		if err := os.Truncate(path, keep); err != nil {
			return fmt.Errorf("faults: corrupt %s: %w", path, err)
		}
		return nil
	case KindFlip:
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("faults: corrupt %s: %w", path, err)
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			return fmt.Errorf("faults: corrupt %s: %w", path, err)
		}
		const magic = 8
		if st.Size() <= magic {
			return fmt.Errorf("faults: corrupt %s: file too short to flip (%d bytes)", path, st.Size())
		}
		off := c.Arg
		if off < 0 {
			x := uint64(seed)*0x9E3779B97F4A7C15 + 0xBF58476D1CE4E5B9
			x ^= x >> 31
			off = magic + int64(x%uint64(st.Size()-magic))
		}
		if off >= st.Size() {
			off = st.Size() - 1
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			return fmt.Errorf("faults: corrupt %s: %w", path, err)
		}
		b[0] ^= 1 << (uint(seed) & 7)
		if _, err := f.WriteAt(b[:], off); err != nil {
			return fmt.Errorf("faults: corrupt %s: %w", path, err)
		}
		return f.Close()
	default:
		return fmt.Errorf("faults: unknown corruption kind %q", c.Kind)
	}
}
