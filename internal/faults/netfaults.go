package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// NetSpec is the network half of the fault plane: the failures a served
// object's connections suffer — one-shot connection drops, a symmetric
// partition window, and per-link latency. Like Spec, every decision is a
// pure function of the run's commit ticket (and the directive parameters),
// never of a wall clock or an unseeded random source, so a faulted
// serve/load run is reproducible from its seed and recorded commit order.
//
// The textual grammar is a comma-separated list of directives:
//
//	drop:C@T         sever client C's connection once, at the first
//	                 read/write after the commit ticket reaches T
//	partition:T+D    while the ticket is in [T, T+D) the server severs and
//	                 refuses the connections of odd-numbered clients (the
//	                 minority side of a symmetric split; even clients keep
//	                 committing, which is what moves the ticket to T+D and
//	                 heals the partition)
//	slow:C:LAT       delay every response to client C by LAT microseconds
//	none             the empty spec
//
// Example: "drop:0@40,drop:1@80,slow:2:200,partition:120+40".
type NetSpec struct {
	// Drops are the one-shot connection severs, evaluated independently.
	Drops []Drop
	// Partition is the symmetric split window, at most one per spec.
	Partition *Partition
	// Slows are the per-client response delays, at most one per client.
	Slows []SlowLink
}

// Drop severs one client's connection once the commit ticket reaches
// Ticket. It fires exactly once: the client is expected to reconnect and
// resume, which is precisely the retry contract under test.
type Drop struct {
	// Client is the victim client id (0-based).
	Client int
	// Ticket is the trigger commit ticket.
	Ticket uint64
}

// String renders the drop in spec grammar.
func (d Drop) String() string { return fmt.Sprintf("drop:%d@%d", d.Client, d.Ticket) }

// Partition is a symmetric split: while the commit ticket is in
// [Ticket, Ticket+Width) the server severs and refuses odd-numbered
// clients. Even clients keep committing, so the ticket provably reaches
// Ticket+Width and the partition heals on its own.
type Partition struct {
	// Ticket is the split trigger, Width its length in commit tickets.
	Ticket, Width uint64
}

// String renders the partition in spec grammar.
func (p Partition) String() string { return fmt.Sprintf("partition:%d+%d", p.Ticket, p.Width) }

// Active reports whether the split covers the given commit ticket.
func (p *Partition) Active(tick uint64) bool {
	return p != nil && tick >= p.Ticket && tick < p.Ticket+p.Width
}

// SlowLink delays every response written to one client.
type SlowLink struct {
	// Client is the slowed client id (0-based).
	Client int
	// LatencyUS is the added per-response delay in microseconds.
	LatencyUS int
}

// String renders the slow link in spec grammar.
func (s SlowLink) String() string { return fmt.Sprintf("slow:%d:%d", s.Client, s.LatencyUS) }

// Zero reports whether the spec injects nothing.
func (s *NetSpec) Zero() bool {
	return s == nil || (len(s.Drops) == 0 && s.Partition == nil && len(s.Slows) == 0)
}

// String renders the spec in the ParseNet grammar (canonical directive
// order: drops sorted by client then ticket, slows sorted by client,
// partition last).
func (s *NetSpec) String() string {
	if s.Zero() {
		return "none"
	}
	var parts []string
	drops := append([]Drop(nil), s.Drops...)
	sort.Slice(drops, func(i, j int) bool {
		if drops[i].Client != drops[j].Client {
			return drops[i].Client < drops[j].Client
		}
		return drops[i].Ticket < drops[j].Ticket
	})
	for _, d := range drops {
		parts = append(parts, d.String())
	}
	slows := append([]SlowLink(nil), s.Slows...)
	sort.Slice(slows, func(i, j int) bool { return slows[i].Client < slows[j].Client })
	for _, sl := range slows {
		parts = append(parts, sl.String())
	}
	if s.Partition != nil {
		parts = append(parts, s.Partition.String())
	}
	return strings.Join(parts, ",")
}

// SlowUS returns the response delay for the client in microseconds (0 when
// the client has no slow link).
func (s *NetSpec) SlowUS(client int) int {
	if s == nil {
		return 0
	}
	for _, sl := range s.Slows {
		if sl.Client == client {
			return sl.LatencyUS
		}
	}
	return 0
}

// ParseNet reads the network directive grammar. "" and "none" parse to nil
// (no network faults); unknown directives and malformed parameters are
// errors that echo the grammar.
func ParseNet(text string) (*NetSpec, error) {
	text = strings.TrimSpace(text)
	if text == "" || text == "none" {
		return nil, nil
	}
	sp := &NetSpec{}
	for _, dir := range strings.Split(text, ",") {
		dir = strings.TrimSpace(dir)
		kind, arg, hasArg := strings.Cut(dir, ":")
		switch kind {
		case "drop":
			d, err := parseDrop(arg, hasArg)
			if err != nil {
				return nil, fmt.Errorf("faults: directive %q: %w", dir, err)
			}
			for _, prev := range sp.Drops {
				if prev == d {
					return nil, fmt.Errorf("faults: duplicate drop directive %q", dir)
				}
			}
			sp.Drops = append(sp.Drops, d)
		case "partition":
			p, err := parsePartition(arg, hasArg)
			if err != nil {
				return nil, fmt.Errorf("faults: directive %q: %w", dir, err)
			}
			if sp.Partition != nil {
				return nil, fmt.Errorf("faults: duplicate partition directive %q", dir)
			}
			sp.Partition = &p
		case "slow":
			sl, err := parseSlow(arg, hasArg)
			if err != nil {
				return nil, fmt.Errorf("faults: directive %q: %w", dir, err)
			}
			for _, prev := range sp.Slows {
				if prev.Client == sl.Client {
					return nil, fmt.Errorf("faults: duplicate slow directive for client %d", sl.Client)
				}
			}
			sp.Slows = append(sp.Slows, sl)
		case "none":
			return nil, fmt.Errorf("faults: %q cannot be combined with other directives", dir)
		default:
			return nil, fmt.Errorf("faults: unknown network directive %q (grammar: drop:C@T, partition:T+D, slow:C:LAT, none)", dir)
		}
	}
	return sp, nil
}

// parseDrop reads "C@T".
func parseDrop(arg string, hasArg bool) (Drop, error) {
	if !hasArg {
		return Drop{}, fmt.Errorf("want drop:C@T")
	}
	cs, ts, ok := strings.Cut(arg, "@")
	if !ok {
		return Drop{}, fmt.Errorf("want drop:C@T")
	}
	c, err := strconv.Atoi(cs)
	if err != nil || c < 0 {
		return Drop{}, fmt.Errorf("client %q (want an index >= 0)", cs)
	}
	t, err := strconv.ParseUint(ts, 10, 64)
	if err != nil || t == 0 {
		return Drop{}, fmt.Errorf("trigger ticket %q (want >= 1)", ts)
	}
	return Drop{Client: c, Ticket: t}, nil
}

// parsePartition reads "T+D".
func parsePartition(arg string, hasArg bool) (Partition, error) {
	if !hasArg {
		return Partition{}, fmt.Errorf("want partition:T+D")
	}
	ts, ds, ok := strings.Cut(arg, "+")
	if !ok {
		return Partition{}, fmt.Errorf("want partition:T+D")
	}
	t, err := strconv.ParseUint(ts, 10, 64)
	if err != nil || t == 0 {
		return Partition{}, fmt.Errorf("trigger ticket %q (want >= 1)", ts)
	}
	d, err := strconv.ParseUint(ds, 10, 64)
	if err != nil || d == 0 {
		return Partition{}, fmt.Errorf("width %q (want >= 1 tickets)", ds)
	}
	return Partition{Ticket: t, Width: d}, nil
}

// parseSlow reads "C:LAT".
func parseSlow(arg string, hasArg bool) (SlowLink, error) {
	if !hasArg {
		return SlowLink{}, fmt.Errorf("want slow:C:LAT")
	}
	cs, ls, ok := strings.Cut(arg, ":")
	if !ok {
		return SlowLink{}, fmt.Errorf("want slow:C:LAT")
	}
	c, err := strconv.Atoi(cs)
	if err != nil || c < 0 {
		return SlowLink{}, fmt.Errorf("client %q (want an index >= 0)", cs)
	}
	l, err := strconv.Atoi(ls)
	if err != nil || l <= 0 {
		return SlowLink{}, fmt.Errorf("latency %q (want >= 1 microseconds)", ls)
	}
	return SlowLink{Client: c, LatencyUS: l}, nil
}
