package faults

import "testing"

func TestParseNetGrammar(t *testing.T) {
	sp, err := ParseNet("drop:1@80,slow:2:200,drop:0@40,partition:120+40")
	if err != nil {
		t.Fatalf("ParseNet: %v", err)
	}
	if len(sp.Drops) != 2 || sp.Partition == nil || len(sp.Slows) != 1 {
		t.Fatalf("unexpected spec: %+v", sp)
	}
	if got, want := sp.String(), "drop:0@40,drop:1@80,slow:2:200,partition:120+40"; got != want {
		t.Fatalf("String() = %q, want canonical %q", got, want)
	}
	// The canonical rendering re-parses to the same spec.
	again, err := ParseNet(sp.String())
	if err != nil {
		t.Fatalf("re-parse canonical: %v", err)
	}
	if again.String() != sp.String() {
		t.Fatalf("canonical not a fixpoint: %q vs %q", again.String(), sp.String())
	}
}

func TestParseNetEmpty(t *testing.T) {
	for _, text := range []string{"", "none", "  none  "} {
		sp, err := ParseNet(text)
		if err != nil {
			t.Fatalf("ParseNet(%q): %v", text, err)
		}
		if sp != nil {
			t.Fatalf("ParseNet(%q) = %+v, want nil", text, sp)
		}
		if !sp.Zero() || sp.String() != "none" {
			t.Fatalf("nil spec: Zero()=%v String()=%q", sp.Zero(), sp.String())
		}
	}
}

func TestParseNetErrors(t *testing.T) {
	bad := []string{
		"drop",                        // missing args
		"drop:0",                      // missing trigger
		"drop:0@0",                    // ticket must be >= 1
		"drop:-1@5",                   // negative client
		"drop:0@5,drop:0@5",           // duplicate
		"partition:5",                 // missing width
		"partition:0+10",              // trigger must be >= 1
		"partition:5+0",               // width must be >= 1
		"partition:5+5,partition:9+2", // duplicate
		"slow:1",                      // missing latency
		"slow:1:0",                    // latency must be >= 1
		"slow:1:5,slow:1:9",           // duplicate client
		"drop:0@5,none",               // none cannot combine
		"stall:0@2+2",                 // schedule-fault grammar is not network grammar
		"bogus:1",                     // unknown directive
	}
	for _, text := range bad {
		if _, err := ParseNet(text); err == nil {
			t.Errorf("ParseNet(%q): want error, got nil", text)
		}
	}
}

func TestNetSpecHelpers(t *testing.T) {
	sp, err := ParseNet("slow:2:200,partition:60+40")
	if err != nil {
		t.Fatal(err)
	}
	if got := sp.SlowUS(2); got != 200 {
		t.Fatalf("SlowUS(2) = %d, want 200", got)
	}
	if got := sp.SlowUS(0); got != 0 {
		t.Fatalf("SlowUS(0) = %d, want 0", got)
	}
	for tick, want := range map[uint64]bool{0: false, 59: false, 60: true, 99: true, 100: false} {
		if got := sp.Partition.Active(tick); got != want {
			t.Errorf("Active(%d) = %v, want %v", tick, got, want)
		}
	}
	var none *Partition
	if none.Active(5) {
		t.Error("nil partition must never be active")
	}
}
