package faults

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"stall:0@64+256",
		"stall:0@64+256,stall:1@128+32",
		"crash:5000",
		"jitter:20",
		"flip",
		"flip:1234",
		"trunc:17",
		"stall:1@64+256,crash:5000,jitter:20,flip",
	}
	for _, text := range cases {
		sp, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got := sp.String(); got != text {
			t.Errorf("Parse(%q).String() = %q", text, got)
		}
		// String output is canonical: reparsing it yields the same string.
		again, err := Parse(sp.String())
		if err != nil || again.String() != sp.String() {
			t.Errorf("reparse %q: %v / %q", sp.String(), err, again.String())
		}
	}
}

func TestParseCanonicalOrder(t *testing.T) {
	// Directives in any order render in canonical order: stalls (sorted by
	// client, ticket), crash, jitter, corruption.
	sp, err := Parse("flip:3,stall:2@8+4,crash:100,stall:0@16+2,jitter:5")
	if err != nil {
		t.Fatal(err)
	}
	want := "stall:0@16+2,stall:2@8+4,crash:100,jitter:5,flip:3"
	if got := sp.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestParseEmpty(t *testing.T) {
	for _, text := range []string{"", "none", "  none  "} {
		sp, err := Parse(text)
		if err != nil || sp != nil {
			t.Errorf("Parse(%q) = %v, %v; want nil, nil", text, sp, err)
		}
	}
	if !(*Spec)(nil).Zero() || !new(Spec).Zero() {
		t.Error("nil/empty spec not Zero")
	}
	if got := (*Spec)(nil).String(); got != "none" {
		t.Errorf("nil String() = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"stall",             // missing parameter
		"stall:0@0+4",       // trigger ticket must be >= 1
		"stall:0@4+0",       // duration must be >= 1
		"stall:-1@4+4",      // client index must be >= 0
		"stall:0@4",         // missing duration
		"crash:0",           // K >= 1
		"crash",             // missing parameter
		"crash:1,crash:2",   // duplicate
		"jitter:0",          // N >= 1
		"jitter:2,jitter:3", // duplicate
		"flip:-2",           // explicit offset must be >= 0
		"trunc:0",           // N >= 1
		"flip,trunc:4",      // one corruption directive only
		"none,crash:5",      // none does not combine
		"explode:9",         // unknown directive
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): want error", text)
		}
	}
}

func TestStallTarget(t *testing.T) {
	sp := &Spec{Stalls: []Stall{
		{Client: 1, Ticket: 10, Ops: 5},
		{Client: 1, Ticket: 12, Ops: 20},
		{Client: 2, Ticket: 100, Ops: 1},
	}}
	cases := []struct {
		client int
		now    uint64
		want   uint64
	}{
		{1, 9, 0},   // before the window
		{1, 10, 15}, // first stall active
		{1, 12, 32}, // overlapping stalls: the longer target wins
		{1, 14, 32}, // second stall still active after the first ends
		{1, 32, 0},  // both windows passed
		{2, 100, 101},
		{2, 101, 0},
		{0, 10, 0}, // unaffected client
	}
	for _, c := range cases {
		if got := sp.StallTarget(c.client, c.now); got != c.want {
			t.Errorf("StallTarget(%d, %d) = %d, want %d", c.client, c.now, got, c.want)
		}
	}
	if (*Spec)(nil).StallTarget(0, 5) != 0 {
		t.Error("nil spec stalls")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	sp := &Spec{JitterMax: 20}
	seen := map[int]bool{}
	for c := 0; c < 4; c++ {
		for i := 0; i < 200; i++ {
			j := sp.Jitter(42, c, i)
			if j < 0 || j > 20 {
				t.Fatalf("Jitter(42,%d,%d) = %d out of [0,20]", c, i, j)
			}
			if j != sp.Jitter(42, c, i) {
				t.Fatalf("Jitter(42,%d,%d) not deterministic", c, i)
			}
			seen[j] = true
		}
	}
	if len(seen) < 15 {
		t.Errorf("jitter draws cover only %d of 21 values", len(seen))
	}
	if sp.Jitter(42, 0, 0) == sp.Jitter(43, 0, 0) &&
		sp.Jitter(42, 0, 1) == sp.Jitter(43, 0, 1) &&
		sp.Jitter(42, 1, 0) == sp.Jitter(43, 1, 0) {
		t.Error("jitter appears seed-independent")
	}
	if (&Spec{}).Jitter(42, 0, 0) != 0 || (*Spec)(nil).Jitter(42, 0, 0) != 0 {
		t.Error("disabled jitter must draw 0")
	}
}

func corpus(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "log.wal")
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCorruptFileTrunc(t *testing.T) {
	path := corpus(t, 100)
	sp := &Spec{Corrupt: &Corrupt{Kind: KindTrunc, Arg: 30}}
	if err := sp.CorruptFile(path, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if len(data) != 70 {
		t.Fatalf("trunc left %d bytes, want 70", len(data))
	}
	// Truncating past the start clamps to empty.
	sp.Corrupt.Arg = 1000
	if err := sp.CorruptFile(path, 1); err != nil {
		t.Fatal(err)
	}
	data, _ = os.ReadFile(path)
	if len(data) != 0 {
		t.Fatalf("over-trunc left %d bytes", len(data))
	}
}

func TestCorruptFileFlip(t *testing.T) {
	path := corpus(t, 100)
	orig, _ := os.ReadFile(path)

	// Explicit offset.
	sp := &Spec{Corrupt: &Corrupt{Kind: KindFlip, Arg: 50}}
	if err := sp.CorruptFile(path, 3); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	diff := 0
	for i := range data {
		if data[i] != orig[i] {
			diff++
			if i != 50 {
				t.Errorf("flip landed at %d, want 50", i)
			}
		}
	}
	if diff != 1 {
		t.Fatalf("flip changed %d bytes, want 1", diff)
	}

	// Seed-derived offset: deterministic per seed and never in the magic.
	for seed := int64(0); seed < 32; seed++ {
		p1, p2 := corpus(t, 100), corpus(t, 100)
		sp := &Spec{Corrupt: &Corrupt{Kind: KindFlip, Arg: -1}}
		if err := sp.CorruptFile(p1, seed); err != nil {
			t.Fatal(err)
		}
		if err := sp.CorruptFile(p2, seed); err != nil {
			t.Fatal(err)
		}
		d1, _ := os.ReadFile(p1)
		d2, _ := os.ReadFile(p2)
		if string(d1) != string(d2) {
			t.Fatalf("seed %d: flip not deterministic", seed)
		}
		for i := 0; i < 8; i++ {
			if d1[i] != orig[i] {
				t.Fatalf("seed %d: flip hit magic byte %d", seed, i)
			}
		}
	}
}

func TestCorruptFileNoop(t *testing.T) {
	path := corpus(t, 16)
	if err := (*Spec)(nil).CorruptFile(path, 1); err != nil {
		t.Fatal(err)
	}
	if err := (&Spec{JitterMax: 3}).CorruptFile(path, 1); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if len(data) != 16 {
		t.Fatal("no-corruption spec touched the file")
	}
}

func TestGrammarEchoInErrors(t *testing.T) {
	_, err := Parse("explode:9")
	if err == nil || !strings.Contains(err.Error(), "stall:C@T+D") {
		t.Errorf("unknown-directive error should echo the grammar, got %v", err)
	}
}
