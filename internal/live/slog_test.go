package live

import (
	"sync/atomic"
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestSlogFetchIncBatchOneIsLinearizable(t *testing.T) {
	obj, err := NewSlogFetchInc("C", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Uint64
	for i := 0; i < 6; i++ {
		resp, ticket, err := obj.Apply(i%2, spec.MakeOp(spec.MethodFetchInc), &seq)
		if err != nil {
			t.Fatal(err)
		}
		if resp != int64(i) || ticket != uint64(i+1) {
			t.Fatalf("op %d: resp=%d ticket=%d, want resp=%d ticket=%d", i, resp, ticket, i, i+1)
		}
	}
}

func TestSlogFetchIncStalenessBounded(t *testing.T) {
	const batch = 4
	obj, err := NewSlogFetchInc("C", batch, 3)
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Uint64
	for i := 0; i < 60; i++ {
		resp, ticket, err := obj.Apply(i%3, spec.MakeOp(spec.MethodFetchInc), &seq)
		if err != nil {
			t.Fatal(err)
		}
		pos := int64(ticket) - 1
		if resp > pos || pos-resp >= batch {
			t.Fatalf("op %d at pos %d answered %d: staleness out of [0,%d)", i, pos, resp, batch)
		}
	}
}

func TestSlogFetchIncReplayDeterministic(t *testing.T) {
	procs := []int{0, 1, 1, 0, 2, 2, 0, 1, 2, 0, 0, 1}
	run := func(obj Object) []int64 {
		var seq atomic.Uint64
		resps := make([]int64, len(procs))
		for i, p := range procs {
			resp, _, err := obj.Apply(p, spec.MakeOp(spec.MethodFetchInc), &seq)
			if err != nil {
				t.Fatal(err)
			}
			resps[i] = resp
		}
		return resps
	}
	obj, err := NewSlogFetchInc("C", 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := run(obj)
	b := run(obj.Fresh())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at op %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSlogFetchIncErrors(t *testing.T) {
	if _, err := NewSlogFetchInc("C", 0, 2); err == nil {
		t.Fatal("batch 0 accepted")
	}
	if _, err := NewSlogFetchInc("C", 4, 0); err == nil {
		t.Fatal("0 clients accepted")
	}
	obj, err := NewSlogFetchInc("C", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Uint64
	if _, _, err := obj.Apply(0, spec.MakeOp(spec.MethodRead), &seq); err == nil {
		t.Fatal("read accepted by a fetchinc object")
	}
	if _, _, err := obj.Apply(5, spec.MakeOp(spec.MethodFetchInc), &seq); err == nil {
		t.Fatal("out-of-range proc accepted")
	}
}
