package live

import "github.com/elin-go/elin/internal/history"

// CommitSink receives the run's merged event stream as it is established —
// the storage-agnostic seam between the live runtime's commit/sequencing
// path and its persistence backend. The in-memory path is a nil sink (no
// calls, zero hot-path cost); wal.Log implements the interface directly
// and turns the stream into a durable commit log.
//
// Append observes one merged event with its merge position: the commit
// ticket for responses, the sequencer stamp for invocations. Events arrive
// in merge order (the canonical history order), from the single merging
// goroutine — implementations need no locking against the runtime. Run
// owns the sink it is given: it closes the sink before returning, both on
// normal completion and at an injected crash (the crash cut flushes, so a
// simulated crash loses in-flight operations, not buffered frames; torn
// tails are injected separately via faults.Spec.CorruptFile).
type CommitSink interface {
	Append(e history.Event, pos uint64) error
	Close() error
}

// TryFresher is the non-panicking variant of Object.Fresh: objects whose
// construction can fail (the Serialized wrappers rebuild base objects)
// implement it so that a failure during recovery surfaces as a verdict
// instead of a crash. tryFresh is the runtime's accessor; plain objects
// whose Fresh cannot fail need not implement it.
type TryFresher interface {
	TryFresh() (Object, error)
}

// tryFresh returns a pristine instance of obj, via TryFresh when the
// object implements it and Fresh otherwise.
func tryFresh(obj Object) (Object, error) {
	if tf, ok := obj.(TryFresher); ok {
		return tf.TryFresh()
	}
	return obj.Fresh(), nil
}
