package live

import (
	"testing"

	"github.com/elin-go/elin/internal/check"
)

// serialRun executes one deterministic serial run under the given monitor
// spec; the history is a pure function of (object, clients, ops, seed), so
// every spec sees the identical event sequence.
func serialRun(t *testing.T, obj Object, spec check.MonitorSpec, maxT int) *Result {
	t.Helper()
	res, err := Run(Config{
		Object:      obj,
		Clients:     4,
		Ops:         400,
		Seed:        11,
		Serial:      true,
		Monitor:     check.IncrementalConfig{Stride: 64, MaxT: maxT},
		MonitorSpec: spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// On deterministic -serial runs the sharded monitors are pinned to the
// sequential one: same verdict, trend, final MinT — and on the junk
// counter, the same violation window.
func TestSerialRunShardedMatchesFull(t *testing.T) {
	cases := []struct {
		name    string
		mk      func() Object
		violate bool
	}{
		{"clean-counter", func() Object { return NewAtomicFetchInc("C", 0) }, false},
		{"junk-sticky", func() Object { return NewJunkFetchInc("C", 300) }, true},
	}
	for _, c := range cases {
		ref := serialRun(t, c.mk(), check.MonitorSpec{Kind: check.MonitorFull}, 2)
		if c.violate && ref.Violation == nil {
			t.Fatalf("%s: reference run missed the junk counter", c.name)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			res := serialRun(t, c.mk(), check.MonitorSpec{Kind: check.MonitorShardWindow, N: workers}, 2)
			if res.Verdict.Trend != ref.Verdict.Trend || res.Verdict.FinalMinT != ref.Verdict.FinalMinT {
				t.Errorf("%s shard:%d: verdict trend=%s final=%d, reference trend=%s final=%d",
					c.name, workers, res.Verdict.Trend, res.Verdict.FinalMinT,
					ref.Verdict.Trend, ref.Verdict.FinalMinT)
			}
			if len(res.Verdict.Samples) != len(ref.Verdict.Samples) {
				t.Errorf("%s shard:%d: %d samples, reference %d",
					c.name, workers, len(res.Verdict.Samples), len(ref.Verdict.Samples))
			}
			switch {
			case (res.Violation == nil) != (ref.Violation == nil):
				t.Errorf("%s shard:%d: violation = %v, reference %v",
					c.name, workers, res.Violation, ref.Violation)
			case ref.Violation != nil:
				rv, sv := ref.Violation, res.Violation
				if rv.Start != sv.Start || rv.End != sv.End || rv.MinT != sv.MinT {
					t.Errorf("%s shard:%d: violation [%d,%d) minT=%d, reference [%d,%d) minT=%d",
						c.name, workers, sv.Start, sv.End, sv.MinT, rv.Start, rv.End, rv.MinT)
				}
				if rv.Window.String() != sv.Window.String() {
					t.Errorf("%s shard:%d: violation window text diverged", c.name, workers)
				}
			}
		}
		// shard:key on a single-key run degenerates to exactly the sequential
		// monitor.
		res := serialRun(t, c.mk(), check.MonitorSpec{Kind: check.MonitorShardKey}, 2)
		if res.Verdict.Trend != ref.Verdict.Trend || res.Verdict.FinalMinT != ref.Verdict.FinalMinT ||
			(res.Violation == nil) != (ref.Violation == nil) {
			t.Errorf("%s shard:key: diverged from the sequential monitor", c.name)
		}
	}
}

// MonitorSpec none behaves like NoMonitor: the run records and merges with
// no verdict, and the junk counter runs to completion.
func TestSerialRunMonitorNone(t *testing.T) {
	res := serialRun(t, NewJunkFetchInc("C", 100), check.MonitorSpec{Kind: check.MonitorNone}, 2)
	if res.Violation != nil || res.Stopped {
		t.Fatalf("record-only run stopped: %+v", res.Violation)
	}
	if res.Ops != 4*400 {
		t.Fatalf("ops = %d, want %d", res.Ops, 4*400)
	}
	if len(res.Verdict.Samples) != 0 {
		t.Fatalf("record-only run produced %d samples", len(res.Verdict.Samples))
	}
}
