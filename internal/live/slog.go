package live

import (
	"fmt"
	"sync/atomic"

	"github.com/elin-go/elin/internal/spec"
)

// SlogFetchInc is the dedicated lock-free live fast path of the
// stabilizing-log counter (internal/core/stablog): the shared append-only
// log of a counter degenerates to the commit sequencer itself — appending
// a fetchinc IS drawing a ticket, and the entry's log position is
// ticket-1. Apply is therefore a single atomic fetch-add plus per-client
// arithmetic, no mutex anywhere.
//
// Each client keeps its own stable frontier and pending count (written
// only by that client's goroutine, in cache-line-padded slots). While the
// gap between a new position and the frontier stays below the promotion
// batch K the client answers speculatively with frontier+pending — the
// counter value the agreed order would give if its own pending operations
// came right after the stable prefix. Once the gap reaches K it promotes:
// the agreed-order response at position pos of an all-fetchinc log is pos
// itself, so catch-up needs no log scan at all. Batch 1 never speculates
// and is exactly AtomicFetchInc.
//
// Responses are a pure function of the (proc, ticket) commit sequence, so
// Replay re-derives them byte-identically — the package's reproducibility
// contract.
type SlogFetchInc struct {
	name    string
	batch   int64
	clients []slogClient
}

// slogClient is one client's speculation state, padded so concurrent
// writers of neighbouring slots never share a cache line.
type slogClient struct {
	frontier int64 // stable prefix length this client has promoted
	pending  int64 // own speculative ops past the frontier
	_        [48]byte
}

var _ Object = (*SlogFetchInc)(nil)

// NewSlogFetchInc returns the lock-free stabilizing-log counter for the
// given client count; batch is the promotion batch K (min 1).
func NewSlogFetchInc(name string, batch int64, clients int) (*SlogFetchInc, error) {
	if batch < 1 {
		return nil, fmt.Errorf("live: slog batch %d out of range (want >= 1)", batch)
	}
	if clients < 1 {
		return nil, fmt.Errorf("live: slog needs at least one client (got %d)", clients)
	}
	return &SlogFetchInc{name: name, batch: batch, clients: make([]slogClient, clients)}, nil
}

// Name implements Object.
func (c *SlogFetchInc) Name() string { return c.name }

// Spec implements Object. The construction is eventually linearizable for
// batch > 1: speculative responses lag the agreed order by at most
// batch-1 concurrent operations, so the monitor sees a bounded,
// stabilizing MinT rather than a violation-free history.
func (c *SlogFetchInc) Spec() spec.Object { return spec.NewObject(spec.FetchInc{}) }

// Fresh implements Object.
func (c *SlogFetchInc) Fresh() Object {
	cp, err := NewSlogFetchInc(c.name, c.batch, len(c.clients))
	if err != nil {
		panic(err.Error()) // construction succeeded once with the same parameters
	}
	return cp
}

// Apply implements Object: the ticket draw is the append, position
// ticket-1 is the operation's place in the agreed order.
func (c *SlogFetchInc) Apply(proc int, op spec.Op, seq *atomic.Uint64) (int64, uint64, error) {
	if op.Method != spec.MethodFetchInc || op.NArgs != 0 {
		return 0, 0, fmt.Errorf("live: %s rejects %s (fetchinc only)", c.name, op)
	}
	if proc < 0 || proc >= len(c.clients) {
		return 0, 0, fmt.Errorf("live: %s has %d client slots, got proc %d", c.name, len(c.clients), proc)
	}
	st := &c.clients[proc]
	ticket := seq.Add(1)
	pos := int64(ticket) - 1
	if pos+1-st.frontier >= c.batch {
		// Promote: the agreed order of an all-fetchinc log answers pos.
		st.frontier = pos + 1
		st.pending = 0
		return pos, ticket, nil
	}
	resp := st.frontier + st.pending
	st.pending++
	return resp, ticket, nil
}
