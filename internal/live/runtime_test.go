package live

import (
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

func newHist(t *testing.T) *history.History {
	t.Helper()
	return history.New()
}

func TestRunAtomicCounterClean(t *testing.T) {
	res, err := Run(Config{
		Object:  NewAtomicFetchInc("C", 0),
		Clients: 8,
		Ops:     1500,
		Seed:    7,
		Monitor: check.IncrementalConfig{Stride: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("clean counter flagged: %v", res.Violation)
	}
	if res.Ops != 8*1500 {
		t.Fatalf("ops = %d, want %d", res.Ops, 8*1500)
	}
	if res.History.Len() != 2*res.Ops {
		t.Fatalf("history %d events, want %d", res.History.Len(), 2*res.Ops)
	}
	for _, s := range res.Verdict.Samples {
		if s.MinT != 0 {
			t.Fatalf("linearizable counter window MinT = %d at %d events", s.MinT, s.Events)
		}
	}
	if res.Verdict.Trend != check.TrendStabilized {
		t.Fatalf("trend = %s, want stabilized", res.Verdict.Trend)
	}
	if res.Throughput <= 0 || res.LatMax <= 0 {
		t.Fatalf("missing perf stats: %+v", res)
	}
}

func TestRunReplayByteIdentical(t *testing.T) {
	// The reproducibility contract: replaying a recorded run re-derives it
	// byte for byte, for every object kind (the junk counter runs with the
	// monitor in observe-only mode so its run completes).
	mkSerial := func() Object {
		s, err := NewSerialized("C", spec.NewObject(spec.FetchInc{}), 3)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkEventual := func() Object {
		s, err := NewSerializedEventual("C", spec.NewObject(spec.FetchInc{}),
			base.Window{K: 200}, 3, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	objects := map[string]Object{
		"atomic-fi":   NewAtomicFetchInc("C", 0),
		"serialized":  mkSerial(),
		"el-counter":  mkEventual(),
		"junk-sticky": NewJunkFetchInc("C", 40),
	}
	for name, obj := range objects {
		res, err := Run(Config{
			Object:  obj,
			Clients: 6,
			Ops:     300,
			Seed:    5,
			Monitor: check.IncrementalConfig{Stride: 128, NoViolation: true},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		same, err := Verify(obj, res.History)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !same {
			t.Fatalf("%s: replay is not byte-identical to the recorded run", name)
		}
		// Replay is pure: running it twice agrees with itself.
		h1, err := Replay(obj, res.History)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := Replay(obj, res.History)
		if err != nil {
			t.Fatal(err)
		}
		if string(h1.AppendFingerprint(nil)) != string(h2.AppendFingerprint(nil)) {
			t.Fatalf("%s: two replays disagree", name)
		}
	}
}

func TestRunEventualStabilizes(t *testing.T) {
	// An eventually linearizable counter: stale windows early, exact after
	// the policy stabilizes. In observe-only mode the trend must stabilize.
	s, err := NewSerializedEventual("C", spec.NewObject(spec.FetchInc{}),
		base.Window{K: 300}, 9, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Object:  s,
		Clients: 3,
		Ops:     800,
		Seed:    9,
		Monitor: check.IncrementalConfig{Stride: 256, NoViolation: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	samples := res.Verdict.Samples
	if len(samples) < 6 {
		t.Fatalf("only %d windows", len(samples))
	}
	// Early staleness must be visible, late windows exact.
	if samples[0].MinT == 0 {
		t.Logf("note: first window already exact (stale choices can be true by chance)")
	}
	last := samples[len(samples)-1]
	if last.MinT != 0 {
		t.Fatalf("post-stabilization window MinT = %d: %+v", last.MinT, samples)
	}
	if res.Verdict.Trend != check.TrendStabilized {
		t.Fatalf("trend = %s, want stabilized (%+v)", res.Verdict.Trend, samples)
	}
}

func TestRunJunkCaughtShrunkConfirmed(t *testing.T) {
	// The end-to-end acceptance pipeline: the junk counter is caught by the
	// online monitor, the window shrinks to a near-minimal core, and the
	// shrunk counterexample replays to the same violation inside sim.
	res, err := Run(Config{
		Object:  NewJunkFetchInc("C", 50),
		Clients: 4,
		Ops:     200,
		Seed:    1,
		Monitor: check.IncrementalConfig{Stride: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("junk counter not caught by the online monitor")
	}
	if !res.Stopped {
		t.Fatal("violation did not stop the run")
	}
	w, err := Shrink(res.Violation, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if w.Ops < 1 || w.Ops > 2 {
		t.Fatalf("shrunk witness has %d ops, want 1 or 2:\n%s", w.Ops, w.History)
	}
	if !w.Replay.Diverged {
		t.Fatal("shrunk witness does not diverge in sim")
	}
	if w.Replay.Got != 50 {
		t.Fatalf("diverging response %d, want the stuck value 50", w.Replay.Got)
	}
	if w.Trials < 2 {
		t.Fatalf("shrinker ran only %d trials", w.Trials)
	}
}

func TestFuzzFindsJunkAndCleanPasses(t *testing.T) {
	junk, err := Fuzz(FuzzConfig{
		Base: Config{
			Object:  NewJunkFetchInc("C", 30),
			Clients: 4,
			Ops:     100,
			Seed:    100,
			Monitor: check.IncrementalConfig{Stride: 64},
		},
		Runs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !junk.Found() {
		t.Fatal("fuzz missed the junk counter")
	}
	if junk.Witness == nil || !junk.Witness.Replay.Diverged {
		t.Fatalf("fuzz witness not sim-confirmed: %+v", junk.Witness)
	}
	if junk.Seed != 100 {
		t.Fatalf("violating seed %d, want 100 (first run)", junk.Seed)
	}

	clean, err := Fuzz(FuzzConfig{
		Base: Config{
			Object:  NewAtomicFetchInc("C", 0),
			Clients: 4,
			Ops:     200,
			Seed:    100,
			Monitor: check.IncrementalConfig{Stride: 64},
		},
		Runs: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Found() {
		t.Fatalf("fuzz flagged the correct counter: %+v", clean.Violation)
	}
	if clean.Runs != 3 || clean.TotalOps != 3*4*200 {
		t.Fatalf("campaign stats: %+v", clean)
	}
}

func TestRunOpenLoop(t *testing.T) {
	res, err := Run(Config{
		Object:  NewAtomicFetchInc("C", 0),
		Clients: 3,
		Ops:     50,
		Seed:    2,
		Rate:    50000, // per-client ops/sec: finishes in ~1ms of schedule
		Monitor: check.IncrementalConfig{Stride: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("open-loop clean run flagged: %v", res.Violation)
	}
	if res.Ops != 150 {
		t.Fatalf("ops = %d, want 150", res.Ops)
	}
	if res.LatMax <= 0 {
		t.Fatal("open-loop latency not recorded")
	}
}

func TestRunSerializedRegisterMix(t *testing.T) {
	// A non-counter type through the generic checker: read/write mix on a
	// mutex-serialized register. Stride keeps each window under the
	// generic engine's operation cap.
	s, err := NewSerialized("R", spec.NewObject(spec.Register{}), 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Object:  s,
		Clients: 4,
		Ops:     150,
		Seed:    4,
		Gen:     RegisterMixGen(0.3, 8),
		Monitor: check.IncrementalConfig{Stride: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("serialized register flagged: %v", res.Violation)
	}
	if res.Verdict.Trend != check.TrendStabilized {
		t.Fatalf("trend = %s, want stabilized", res.Verdict.Trend)
	}
}

func TestRunLatencySampling(t *testing.T) {
	res, err := Run(Config{
		Object:        NewAtomicFetchInc("C", 0),
		Clients:       2,
		Ops:           1000,
		Seed:          3,
		NoMonitor:     true,
		LatencySample: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil || len(res.Verdict.Samples) != 0 {
		t.Fatalf("NoMonitor run produced monitor output: %+v", res)
	}
	if res.LatP50 <= 0 || res.LatP99 < res.LatP50 {
		t.Fatalf("latency percentiles: p50=%v p99=%v", res.LatP50, res.LatP99)
	}
}
