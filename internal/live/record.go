package live

import (
	"fmt"
	"sync/atomic"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// rec is one recorded event in a client's shard. Commit records carry the
// commit ticket in pos; invocation records carry the sequencer stamp read
// at operation start (the number of commits provably before the start).
type rec struct {
	pos    uint64
	invoke bool
	resp   int64
	op     spec.Op
}

// key orders the merged run: commit t sits at (t,0), an invocation stamped
// g in the gap after commit g at (g,1). Ties between invocations of
// different clients are broken by client id in the merger (invocation
// order among concurrent starts carries no precedence information).
func (r *rec) key() (uint64, int) {
	if r.invoke {
		return r.pos, 1
	}
	return r.pos, 0
}

// Shard is one client's private recorder. The owning goroutine writes into
// an array and publishes progress with one atomic length store per record —
// the only hot-path synchronization besides the commit sequencer itself.
//
// With a positive capacity the array never reallocates and push reports
// overflow (the in-process runtime preallocates the exact op budget, so
// overflow indicates an accounting bug rather than load). With capacity 0
// the shard grows: the writer copies into a doubled array and publishes the
// new slice pointer before publishing a length beyond the old capacity, so
// a reader that loads the length first and the pointer second always sees
// an array covering that length — what a long-lived server needs for
// sessions with no a-priori op budget.
type Shard struct {
	recs atomic.Pointer[[]rec]
	n    atomic.Int64
	done atomic.Bool
	// bound publishes an idle watermark as pos+1 (0 = unset): the owner
	// promises every future record's key exceeds (pos, 0). The merger takes
	// the larger of this and the last consumed key as the shard's
	// watermark, so one idle or disconnected client cannot stall the merge
	// behind records it will never write.
	bound atomic.Uint64
	w     int  // writer-local count (== n, unpublished view)
	fixed bool // capacity is a hard limit; push reports overflow
}

// NewShard builds a client recorder. capacity > 0 preallocates a
// fixed-size shard (push fails on overflow); capacity 0 makes the shard
// growable.
func NewShard(capacity int) *Shard {
	s := &Shard{fixed: capacity > 0}
	if capacity == 0 {
		capacity = 64
	}
	buf := make([]rec, capacity)
	s.recs.Store(&buf)
	return s
}

// push appends one record. It returns false when a fixed capacity is
// exhausted.
func (s *Shard) push(r rec) bool {
	buf := *s.recs.Load()
	if s.w >= len(buf) {
		if s.fixed {
			return false
		}
		grown := make([]rec, 2*len(buf))
		copy(grown, buf)
		// Pointer before length: a concurrent reader ordering its loads
		// length-then-pointer can never see a length past an array that
		// does not cover it.
		s.recs.Store(&grown)
		buf = grown
	}
	buf[s.w] = r
	s.w++
	s.n.Store(int64(s.w))
	return true
}

// PushInvoke records an operation start carrying the sequencer stamp read
// at the linearization-window open.
func (s *Shard) PushInvoke(stamp uint64, op spec.Op) bool {
	return s.push(rec{pos: stamp, invoke: true, op: op})
}

// PushCommit records an operation completion carrying its commit ticket
// and response.
func (s *Shard) PushCommit(ticket uint64, resp int64, op spec.Op) bool {
	return s.push(rec{pos: ticket, resp: resp, op: op})
}

// Finish marks the shard complete (no further pushes will come).
func (s *Shard) Finish() { s.done.Store(true) }

// SetBound publishes the idle watermark: a promise that every record the
// owner pushes from now on has key strictly greater than (pos, 0). Callers
// must only advance it, and must read the sequencer stamp for pos only
// while the client provably has no operation in flight.
func (s *Shard) SetBound(pos uint64) { s.bound.Store(pos + 1) }

// Merger performs the online k-way merge of client shards into one
// history.History in key order. Safety is a per-client watermark argument:
// a client's records are pushed in strictly increasing key order, and its
// next unpublished record's key is strictly greater than its last
// published one, so any available record whose key is at most every
// unfinished drained client's watermark can never be preceded by a record
// that has not been published yet.
type Merger struct {
	objName string
	// procBase offsets recorded proc ids: shard i's events are appended as
	// proc procBase+i, so a continuation run's fresh clients never collide
	// with the proc ids of a recovered history prefix.
	procBase int
	shards   []*Shard
	cursor   []int
	// lastPos/lastInv track each shard's last consumed key (the watermark
	// for drained shards). The initial (0,-1) watermark is below every real
	// key, so nothing is merged until every client has published its first
	// record or an idle bound — required, since an unstarted client's first
	// invocation may be stamped 0.
	lastPos []uint64
	lastInv []int
	// nBuf/doneBuf are the per-drain snapshot scratch.
	nBuf    []int
	doneBuf []bool
	recBuf  [][]rec
}

// NewMerger builds the merge over the given client shards: shard i's
// events are appended to the history as proc procBase+i on object objName.
func NewMerger(objName string, procBase int, shards []*Shard) *Merger {
	m := &Merger{
		objName:  objName,
		procBase: procBase,
		shards:   shards,
		cursor:   make([]int, len(shards)),
		lastPos:  make([]uint64, len(shards)),
		lastInv:  make([]int, len(shards)),
		nBuf:     make([]int, len(shards)),
		doneBuf:  make([]bool, len(shards)),
		recBuf:   make([][]rec, len(shards)),
	}
	for i := range m.lastInv {
		m.lastInv[i] = -1 // (0,-1): below the smallest possible key
	}
	return m
}

// keyLess compares (pos,kind,client) triples.
func keyLess(p1 uint64, k1, c1 int, p2 uint64, k2, c2 int) bool {
	if p1 != p2 {
		return p1 < p2
	}
	if k1 != k2 {
		return k1 < k2
	}
	return c1 < c2
}

// Drain merges every safely-ordered published record into h, invoking feed
// (if non-nil) on each appended event with its merge position (commit
// ticket for responses, sequencer stamp for invocations — what a commit
// sink persists). It returns the number of events appended; call it
// repeatedly until the run completes. Shard progress is snapshotted once
// per call (one atomic load per shard), which is sound — records published
// mid-drain are merged by the next call.
func (m *Merger) Drain(h *history.History, feed func(history.Event, uint64) error) (int, error) {
	n, done, recs := m.nBuf, m.doneBuf, m.recBuf
	for i, sh := range m.shards {
		// done before n: a shard observed done has pushed everything, so
		// the later n load is guaranteed to cover its final records (the
		// reverse order could skip the watermark of a shard whose last
		// records are invisible in this snapshot). And n before the array
		// pointer: a growing shard publishes the doubled array before any
		// length beyond the old one, so this order can never observe a
		// length past the loaded array's end.
		done[i] = sh.done.Load()
		n[i] = int(sh.n.Load())
		recs[i] = *sh.recs.Load()
	}
	moved := 0
	for {
		best := -1
		var bp uint64
		var bk int
		for i := range m.shards {
			c := m.cursor[i]
			if c >= n[i] {
				continue
			}
			p, k := recs[i][c].key()
			if best < 0 || keyLess(p, k, i, bp, bk, best) {
				best, bp, bk = i, p, k
			}
		}
		if best < 0 {
			return moved, nil
		}
		// Watermark check: every unfinished, fully-drained shard may still
		// publish a record with key greater than its watermark — the larger
		// of its last consumed key and its published idle bound; the
		// candidate is safe only if it is at or below all such watermarks.
		safe := true
		for i, sh := range m.shards {
			if m.cursor[i] < n[i] || done[i] {
				continue
			}
			wp, wk := m.lastPos[i], m.lastInv[i]
			if b := sh.bound.Load(); b > 0 && keyLess(wp, wk, i, b-1, 0, i) {
				wp, wk = b-1, 0
			}
			if keyLess(wp, wk, i, bp, bk, best) {
				safe = false
				break
			}
		}
		if !safe {
			return moved, nil
		}
		r := &recs[best][m.cursor[best]]
		m.cursor[best]++
		m.lastPos[best], m.lastInv[best] = bp, bk
		var err error
		if r.invoke {
			err = h.Invoke(m.procBase+best, m.objName, r.op)
		} else {
			err = h.Respond(m.procBase+best, r.resp)
		}
		if err != nil {
			return moved, fmt.Errorf("live: merge: %w", err)
		}
		if feed != nil {
			e := h.Event(h.Len() - 1)
			if err := feed(e, r.pos); err != nil {
				return moved, err
			}
		}
		moved++
	}
}
