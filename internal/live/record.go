package live

import (
	"fmt"
	"sync/atomic"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// rec is one recorded event in a client's shard. Commit records carry the
// commit ticket in pos; invocation records carry the sequencer stamp read
// at operation start (the number of commits provably before the start).
type rec struct {
	pos    uint64
	invoke bool
	resp   int64
	op     spec.Op
}

// key orders the merged run: commit t sits at (t,0), an invocation stamped
// g in the gap after commit g at (g,1). Ties between invocations of
// different clients are broken by client id in the merger (invocation
// order among concurrent starts carries no precedence information).
func (r *rec) key() (uint64, int) {
	if r.invoke {
		return r.pos, 1
	}
	return r.pos, 0
}

// shard is one client's private recorder. The owning goroutine writes into
// a preallocated array and publishes progress with one atomic length store
// per record — the only hot-path synchronization besides the commit
// sequencer itself. The array never reallocates, so the merger may read
// recs[:n.Load()] concurrently: the release store of n orders the entry
// writes before any acquire load that observes them.
type shard struct {
	recs []rec
	n    atomic.Int64
	done atomic.Bool
	w    int // writer-local count (== n, unpublished view)
}

func newShard(capacity int) *shard {
	return &shard{recs: make([]rec, capacity)}
}

// push appends one record. It returns false when the capacity (fixed at
// the run's op budget) is exhausted, which indicates a runtime accounting
// bug rather than load.
func (s *shard) push(r rec) bool {
	if s.w >= len(s.recs) {
		return false
	}
	s.recs[s.w] = r
	s.w++
	s.n.Store(int64(s.w))
	return true
}

// finish marks the shard complete (no further pushes will come).
func (s *shard) finish() { s.done.Store(true) }

// merger performs the online k-way merge of client shards into one
// history.History in key order. Safety is a per-client watermark argument:
// a client's records are pushed in strictly increasing key order, and its
// next unpublished record's key is strictly greater than its last
// published one, so any available record whose key is at most every
// unfinished drained client's last-published key can never be preceded by
// a record that has not been published yet.
type merger struct {
	objName string
	// procBase offsets recorded proc ids: shard i's events are appended as
	// proc procBase+i, so a continuation run's fresh clients never collide
	// with the proc ids of a recovered history prefix.
	procBase int
	shards   []*shard
	cursor   []int
	// lastPos/lastInv track each shard's last consumed key (the watermark
	// for drained shards). The initial (0,-1) watermark is below every real
	// key, so nothing is merged until every client has published its first
	// record — required, since an unstarted client's first invocation may
	// be stamped 0.
	lastPos []uint64
	lastInv []int
	// nBuf/doneBuf are the per-drain snapshot scratch.
	nBuf    []int
	doneBuf []bool
}

func newMerger(objName string, procBase int, shards []*shard) *merger {
	m := &merger{
		objName:  objName,
		procBase: procBase,
		shards:   shards,
		cursor:   make([]int, len(shards)),
		lastPos:  make([]uint64, len(shards)),
		lastInv:  make([]int, len(shards)),
		nBuf:     make([]int, len(shards)),
		doneBuf:  make([]bool, len(shards)),
	}
	for i := range m.lastInv {
		m.lastInv[i] = -1 // (0,-1): below the smallest possible key
	}
	return m
}

// keyLess compares (pos,kind,client) triples.
func keyLess(p1 uint64, k1, c1 int, p2 uint64, k2, c2 int) bool {
	if p1 != p2 {
		return p1 < p2
	}
	if k1 != k2 {
		return k1 < k2
	}
	return c1 < c2
}

// drain merges every safely-ordered published record into h, invoking feed
// (if non-nil) on each appended event with its merge position (commit
// ticket for responses, sequencer stamp for invocations — what a commit
// sink persists). It returns the number of events appended; call it
// repeatedly until the run completes. Shard progress is snapshotted once
// per call (one atomic load per shard), which is sound — records published
// mid-drain are merged by the next call.
func (m *merger) drain(h *history.History, feed func(history.Event, uint64) error) (int, error) {
	n, done := m.nBuf, m.doneBuf
	for i, sh := range m.shards {
		// done before n: a shard observed done has pushed everything, so
		// the later n load is guaranteed to cover its final records (the
		// reverse order could skip the watermark of a shard whose last
		// records are invisible in this snapshot).
		done[i] = sh.done.Load()
		n[i] = int(sh.n.Load())
	}
	moved := 0
	for {
		best := -1
		var bp uint64
		var bk int
		for i, sh := range m.shards {
			c := m.cursor[i]
			if c >= n[i] {
				continue
			}
			p, k := sh.recs[c].key()
			if best < 0 || keyLess(p, k, i, bp, bk, best) {
				best, bp, bk = i, p, k
			}
		}
		if best < 0 {
			return moved, nil
		}
		// Watermark check: every unfinished, fully-drained shard may still
		// publish a record with key greater than its last consumed one; the
		// candidate is safe only if it is at or below all such watermarks.
		safe := true
		for i := range m.shards {
			if m.cursor[i] < n[i] || done[i] {
				continue
			}
			if keyLess(m.lastPos[i], m.lastInv[i], i, bp, bk, best) {
				safe = false
				break
			}
		}
		if !safe {
			return moved, nil
		}
		r := &m.shards[best].recs[m.cursor[best]]
		m.cursor[best]++
		m.lastPos[best], m.lastInv[best] = bp, bk
		var err error
		if r.invoke {
			err = h.Invoke(m.procBase+best, m.objName, r.op)
		} else {
			err = h.Respond(m.procBase+best, r.resp)
		}
		if err != nil {
			return moved, fmt.Errorf("live: merge: %w", err)
		}
		if feed != nil {
			e := h.Event(h.Len() - 1)
			if err := feed(e, r.pos); err != nil {
				return moved, err
			}
		}
		moved++
	}
}
