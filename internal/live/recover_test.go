package live

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
	"github.com/elin-go/elin/internal/wal"
)

var _ CommitSink = (*wal.Log)(nil)

func mustFaults(t *testing.T, text string) *faults.Spec {
	t.Helper()
	sp, err := faults.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// crashRecoverContinue runs the full pipeline once: serial run with a WAL
// sink crashing at commit 60, recovery from the log, resume, and a serial
// continuation with two fresh clients. It returns the stitched history and
// the WAL bytes of the crashed run.
func crashRecoverContinue(t *testing.T) (*history.History, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.wal")
	hdr := wal.Header{Object: "atomic-fi", ObjName: "C", Procs: 2, Ops: 50, Seed: 7}
	log, err := wal.Create(path, hdr, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Object:  NewAtomicFetchInc("C", 0),
		Clients: 2,
		Ops:     50,
		Seed:    7,
		Serial:  true,
		Sink:    log,
		Faults:  mustFaults(t, "crash:60"),
		Monitor: check.IncrementalConfig{Stride: 32},
	})
	if err != nil {
		t.Fatalf("crashed run: %v", err)
	}
	if !res.Crashed || res.CrashTicket != 60 {
		t.Fatalf("Crashed=%v CrashTicket=%d, want crash at 60", res.Crashed, res.CrashTicket)
	}
	walBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	rec, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn {
		t.Fatalf("clean crash cut reported torn at %d", rec.TornAt)
	}
	if got := rec.LastCommit(); got != 60 {
		t.Fatalf("LastCommit = %d, want 60", got)
	}
	rr, err := Resume(NewAtomicFetchInc("C", 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if rr.NextSeq != 60 || rr.Committed != 60 {
		t.Fatalf("NextSeq=%d Committed=%d, want 60/60", rr.NextSeq, rr.Committed)
	}

	res2, err := Run(Config{
		Object:   rr.Object,
		Clients:  2,
		Ops:      30,
		Seed:     8,
		Serial:   true,
		StartSeq: rr.NextSeq,
		ProcBase: hdr.Procs,
		History:  rr.History,
		Monitor:  check.IncrementalConfig{Stride: 32},
	})
	if err != nil {
		t.Fatalf("continuation: %v", err)
	}
	if res2.Crashed || res2.Stopped {
		t.Fatalf("continuation crashed/stopped: %+v", res2)
	}
	if res2.Ops != 60 {
		t.Fatalf("continuation Ops = %d, want 60", res2.Ops)
	}
	return res2.History, walBytes
}

func TestCrashRecoverContinueSerialByteIdentical(t *testing.T) {
	h1, w1 := crashRecoverContinue(t)
	h2, w2 := crashRecoverContinue(t)
	if string(w1) != string(w2) {
		t.Fatal("WAL bytes differ across identical serial reruns")
	}
	f1 := h1.AppendFingerprint(nil)
	f2 := h2.AppendFingerprint(nil)
	if string(f1) != string(f2) {
		t.Fatal("stitched histories differ across identical serial reruns")
	}

	// The stitched pre+post-crash history still t-stabilizes: every window
	// of a correct counter is 0-linearizable and the trend classifies as
	// stabilized.
	obj := NewAtomicFetchInc("C", 0)
	mon := check.NewIncremental(obj.Spec(), check.IncrementalConfig{Stride: 32})
	for i := 0; i < h1.Len(); i++ {
		v, err := mon.Feed(h1.Event(i))
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if v != nil {
			t.Fatalf("stitched history violation: %v", v)
		}
	}
	if v, err := mon.Finish(); err != nil || v != nil {
		t.Fatalf("finish: %v / %v", err, v)
	}
	verdict := mon.Verdict()
	if verdict.Trend != check.TrendStabilized {
		t.Fatalf("stitched trend = %v (MinT %d), want stabilized", verdict.Trend, verdict.FinalMinT)
	}
}

func TestCrashRecoverGoroutine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	log, err := wal.Create(path, wal.Header{Object: "atomic-fi", ObjName: "C", Procs: 4, Seed: 3}, wal.SyncPolicy(8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Object:  NewAtomicFetchInc("C", 0),
		Clients: 4,
		Ops:     500,
		Seed:    3,
		Sink:    log,
		Faults:  mustFaults(t, "crash:700"),
		Monitor: check.IncrementalConfig{Stride: 128},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Crashed {
		t.Fatal("run did not crash")
	}
	rec, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := rec.LastCommit(); got != res.CrashTicket {
		t.Fatalf("LastCommit = %d, CrashTicket = %d", got, res.CrashTicket)
	}
	rr, err := Resume(NewAtomicFetchInc("C", 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(rr.Committed) != res.CrashTicket {
		t.Fatalf("Committed = %d, want %d", rr.Committed, res.CrashTicket)
	}
}

func TestCorruptTailRecoverLongestPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	log, err := wal.Create(path, wal.Header{Object: "atomic-fi", ObjName: "C", Procs: 2, Seed: 5}, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{
		Object:    NewAtomicFetchInc("C", 0),
		Clients:   2,
		Ops:       40,
		Seed:      5,
		Serial:    true,
		Sink:      log,
		NoMonitor: true,
	}); err != nil {
		t.Fatal(err)
	}
	clean, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the tail: recovery lands on the longest valid prefix and the
	// prefix still verifies (replay reproduces it byte for byte).
	if err := mustFaults(t, "trunc:7").CorruptFile(path, 5); err != nil {
		t.Fatal(err)
	}
	rec, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Torn {
		t.Fatal("truncated tail not reported torn")
	}
	if len(rec.Events) >= len(clean.Events) || len(rec.Events) == 0 {
		t.Fatalf("recovered %d events of %d", len(rec.Events), len(clean.Events))
	}
	rr, err := Resume(NewAtomicFetchInc("C", 0), rec)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Verify(NewAtomicFetchInc("C", 0), rr.History)
	if err != nil || !ok {
		t.Fatalf("recovered prefix failed verification: ok=%v err=%v", ok, err)
	}

	// Same with a mid-file bit flip (seed-derived offset).
	path2 := filepath.Join(t.TempDir(), "run2.wal")
	log2, err := wal.Create(path2, wal.Header{Object: "atomic-fi", ObjName: "C", Procs: 2, Seed: 5}, wal.SyncNever)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(Config{
		Object: NewAtomicFetchInc("C", 0), Clients: 2, Ops: 40, Seed: 5,
		Serial: true, Sink: log2, NoMonitor: true,
	}); err != nil {
		t.Fatal(err)
	}
	if err := mustFaults(t, "flip").CorruptFile(path2, 5); err != nil {
		t.Fatal(err)
	}
	rec2, err := wal.Recover(path2)
	if err != nil {
		// A flip inside the header frame is unrecoverable by design.
		t.Logf("flip hit the header region: %v", err)
		return
	}
	if len(rec2.Events) > len(clean.Events) {
		t.Fatalf("flip recovery produced %d events of %d", len(rec2.Events), len(clean.Events))
	}
	if _, err := Resume(NewAtomicFetchInc("C", 0), rec2); err != nil {
		t.Fatalf("resume after flip recovery: %v", err)
	}
}

func TestStallJitterSerialDeterministic(t *testing.T) {
	run := func() *history.History {
		res, err := Run(Config{
			Object:  NewAtomicFetchInc("C", 0),
			Clients: 3,
			Ops:     40,
			Seed:    11,
			Serial:  true,
			Faults:  mustFaults(t, "stall:0@10+25,jitter:5"),
			Monitor: check.IncrementalConfig{Stride: 64},
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Ops != 120 {
			t.Fatalf("Ops = %d, want 120 (stall must not drop operations)", res.Ops)
		}
		return res.History
	}
	a, b := run(), run()
	if string(a.AppendFingerprint(nil)) != string(b.AppendFingerprint(nil)) {
		t.Fatal("faulted serial runs differ across reruns")
	}
}

func TestAllStalledEscapeSerial(t *testing.T) {
	// Every client stalled on a window nobody can move the ticket past:
	// the driver must force progress deterministically, not livelock.
	res, err := Run(Config{
		Object:    NewAtomicFetchInc("C", 0),
		Clients:   2,
		Ops:       5,
		Seed:      1,
		Serial:    true,
		Faults:    mustFaults(t, "stall:0@1+1000,stall:1@1+1000"),
		NoMonitor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 10 {
		t.Fatalf("Ops = %d, want 10", res.Ops)
	}
}

func TestStallGoroutineCompletes(t *testing.T) {
	res, err := Run(Config{
		Object:    NewAtomicFetchInc("C", 0),
		Clients:   2,
		Ops:       200,
		Seed:      2,
		Faults:    mustFaults(t, "stall:0@20+50,stall:1@30+400"),
		NoMonitor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 400 {
		t.Fatalf("Ops = %d, want 400", res.Ops)
	}
}

// failingObject errors on every Apply — exercises client-error context.
type failingObject struct{ AtomicFetchInc }

func (f *failingObject) Apply(proc int, op spec.Op, seq *atomic.Uint64) (int64, uint64, error) {
	return 0, 0, fmt.Errorf("synthetic fault")
}

func (f *failingObject) Fresh() Object { return f }

func TestClientErrorContext(t *testing.T) {
	_, err := Run(Config{
		Object:    &failingObject{},
		Clients:   2,
		Ops:       3,
		Seed:      1,
		Serial:    true,
		NoMonitor: true,
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "client 0 op 0 (ticket") {
		t.Fatalf("error lacks client/op/ticket context: %v", err)
	}
}

func TestJoinClientErrors(t *testing.T) {
	err := joinClientErrors([]clientError{
		{client: 2, err: fmt.Errorf("live: client 2 op 7 (ticket 31): boom")},
		{client: 0, err: fmt.Errorf("live: client 0 op 3 (ticket 12): bang")},
	})
	if err == nil {
		t.Fatal("want joined error")
	}
	msg := err.Error()
	i0 := strings.Index(msg, "client 0")
	i2 := strings.Index(msg, "client 2")
	if i0 < 0 || i2 < 0 {
		t.Fatalf("joined error drops a victim: %q", msg)
	}
	if i0 > i2 {
		t.Fatalf("victims not sorted by client id: %q", msg)
	}
}

func TestTryFresh(t *testing.T) {
	s, err := NewSerialized("C", spec.NewObject(spec.FetchInc{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.TryFresh()
	if err != nil || cp == nil {
		t.Fatalf("TryFresh: %v", err)
	}
	if cp == Object(s) {
		t.Fatal("TryFresh returned the same instance")
	}
	// tryFresh falls back to Fresh for plain objects.
	o, err := tryFresh(NewAtomicFetchInc("C", 0))
	if err != nil || o == nil {
		t.Fatalf("tryFresh fallback: %v", err)
	}
}
