package live

import (
	"fmt"
	"sync/atomic"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
	"github.com/elin-go/elin/internal/wal"
)

// ResumeResult is a run rebuilt from its commit log: the object at its
// recovered state, the ticket to continue from, and the recovered history
// prefix a continuation run extends.
type ResumeResult struct {
	// Object is a fresh instance of the template replayed to the log's last
	// commit. Pass it (plus NextSeq/History/ProcBase) to Run to continue.
	Object Object
	// NextSeq is the last committed ticket — Config.StartSeq for the
	// continuation, so ticket numbering spans the crash without a gap.
	NextSeq uint64
	// History is the recovered merged history, including invocations that
	// never committed (in-flight at the crash; they stay pending forever,
	// which the t-lin checkers tolerate by construction).
	History *history.History
	// Committed counts the completed operations replayed into Object;
	// Pending counts the in-flight invocations lost to the crash.
	Committed int
	Pending   int
}

// Resume replays a recovered commit log against a fresh instance of
// template, rebuilding the object state and the merged history up to the
// log's last durable commit. The template must be constructed with the
// log header's parameters — same registry object, same Seed (response
// choices of eventually linearizable objects are pure functions of the
// original seed and the ticket), and a client count covering both the
// crashed run's procs and any continuation clients.
//
// Every replayed response is checked against the recorded one: a mismatch
// means the log and the object disagree on the commit-determinism contract
// (wrong template parameters, or an object whose responses are not a
// function of its commit order) and aborts the resume.
func Resume(template Object, rec *wal.Recovered) (*ResumeResult, error) {
	fresh, err := tryFresh(template)
	if err != nil {
		return nil, fmt.Errorf("live: resume: %w", err)
	}
	var seq atomic.Uint64
	h := history.New()
	h.Reserve(len(rec.Events))
	pending := make(map[int]spec.Op)
	committed := 0
	for i, e := range rec.Events {
		if e.Kind == history.KindInvoke {
			if _, dup := pending[e.Proc]; dup {
				return nil, fmt.Errorf("live: resume event %d: client %d invoked twice without a response", i, e.Proc)
			}
			pending[e.Proc] = e.Op
			if err := h.Invoke(e.Proc, e.Obj, e.Op); err != nil {
				return nil, fmt.Errorf("live: resume event %d: %w", i, err)
			}
			continue
		}
		op, ok := pending[e.Proc]
		if !ok {
			return nil, fmt.Errorf("live: resume event %d: response without invocation (client %d)", i, e.Proc)
		}
		delete(pending, e.Proc)
		resp, ticket, err := fresh.Apply(e.Proc, op, &seq)
		if err != nil {
			return nil, fmt.Errorf("live: resume event %d: %w", i, err)
		}
		if resp != e.Resp || ticket != rec.Pos[i] {
			return nil, fmt.Errorf("live: resume event %d: log says client %d %s -> %d at ticket %d, replay derives %d at ticket %d (wrong template, or object is not commit-deterministic)",
				i, e.Proc, op, e.Resp, rec.Pos[i], resp, ticket)
		}
		if err := h.Respond(e.Proc, resp); err != nil {
			return nil, fmt.Errorf("live: resume event %d: %w", i, err)
		}
		committed++
	}
	return &ResumeResult{
		Object:    fresh,
		NextSeq:   seq.Load(),
		History:   h,
		Committed: committed,
		Pending:   len(pending),
	}, nil
}
