package live

import (
	"sync"
	"testing"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// A growable shard accepts pushes far past its initial allocation while a
// concurrent merger drains it, and the merge output matches the push order.
func TestShardGrowsUnderConcurrentDrain(t *testing.T) {
	op := spec.MakeOp(spec.MethodFetchInc)
	const ops = 5000
	sh := NewShard(0)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer sh.Finish()
		for i := uint64(0); i < ops; i++ {
			if !sh.PushInvoke(i, op) {
				t.Error("growable shard refused a push")
				return
			}
			if !sh.PushCommit(i+1, int64(i), op) {
				t.Error("growable shard refused a push")
				return
			}
		}
	}()
	h := history.New()
	m := NewMerger("C", 0, []*Shard{sh})
	for h.Len() < 2*ops {
		if _, err := m.Drain(h, nil); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	wg.Wait()
	for i := 0; i < ops; i++ {
		if e := h.Event(2*i + 1); e.Resp != int64(i) {
			t.Fatalf("event %d: resp %d, want %d", 2*i+1, e.Resp, i)
		}
	}
}

// A fixed-capacity shard still reports overflow (the in-process runtime's
// accounting guard).
func TestShardFixedOverflow(t *testing.T) {
	op := spec.MakeOp(spec.MethodFetchInc)
	sh := NewShard(2)
	if !sh.PushInvoke(0, op) || !sh.PushCommit(1, 0, op) {
		t.Fatal("pushes within capacity must succeed")
	}
	if sh.PushInvoke(1, op) {
		t.Fatal("push past fixed capacity must fail")
	}
}

// An idle shard's published bound releases records the watermark would
// otherwise hold back, without the shard pushing anything.
func TestMergerIdleBound(t *testing.T) {
	op := spec.MakeOp(spec.MethodFetchInc)
	busy := NewShard(0)
	idle := NewShard(0)
	busy.PushInvoke(0, op)
	busy.PushCommit(1, 0, op)
	h := history.New()
	m := NewMerger("C", 0, []*Shard{busy, idle})

	// The idle shard has published nothing: its (0,-1) watermark blocks
	// everything.
	if n, err := m.Drain(h, nil); err != nil || n != 0 {
		t.Fatalf("drain before bound: n=%d err=%v, want 0 merged", n, err)
	}
	// Bound (1,0) releases busy's invoke at (0,1) and commit at (1,0) —
	// equal keys are safe (the idle client's future records are strictly
	// above its bound).
	idle.SetBound(1)
	if n, err := m.Drain(h, nil); err != nil || n != 2 {
		t.Fatalf("drain after bound: n=%d err=%v, want 2 merged", n, err)
	}
	// A later record from the previously idle shard still merges in order.
	idle.PushInvoke(1, op)
	idle.PushCommit(2, 1, op)
	idle.Finish()
	busy.Finish()
	if n, err := m.Drain(h, nil); err != nil || n != 2 {
		t.Fatalf("final drain: n=%d err=%v, want 2 merged", n, err)
	}
	if h.Len() != 4 {
		t.Fatalf("history length %d, want 4", h.Len())
	}
}
