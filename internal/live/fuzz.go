package live

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
)

// FuzzConfig drives a seeded fuzz campaign: repeated live runs with
// consecutive seeds, each fully monitored, with automatic shrink-to-sim on
// the first violation.
type FuzzConfig struct {
	// Base is the run configuration; Base.Seed is the campaign's first
	// seed. When Base.Object implements Fresh (all Objects do), each run
	// gets a pristine instance.
	Base Config
	// Runs is the number of seeds to try (default 8).
	Runs int
	// NoShrink reports the first violation as-is instead of ddmin-shrinking
	// it (Witness stays nil).
	NoShrink bool
	// CheckOpts configures the shrinker's confirmation replays.
	CheckOpts check.Options
}

// FuzzResult is a fuzz campaign's outcome.
type FuzzResult struct {
	// Runs is the number of runs executed.
	Runs int
	// TotalOps sums completed operations over all runs.
	TotalOps int
	// Seed is the violating run's seed (meaningful when Violation is set).
	Seed int64
	// Run is the violating run's result, Violation its offending window,
	// Witness the shrunk, sim-confirmed counterexample. All nil/zero when
	// the campaign found nothing.
	Run       *Result
	Violation *check.WindowViolation
	Witness   *Witness
}

// Found reports whether the campaign produced a counterexample.
func (r *FuzzResult) Found() bool { return r.Violation != nil }

// Fuzz runs the campaign: every run is reproducible from its seed plus its
// recorded commit order, so a reported witness can be re-shrunk or
// re-replayed offline from the returned Run.History alone.
func Fuzz(cfg FuzzConfig) (*FuzzResult, error) {
	if cfg.Runs <= 0 {
		cfg.Runs = 8
	}
	if cfg.Base.Object == nil {
		return nil, fmt.Errorf("live: FuzzConfig.Base.Object is nil")
	}
	out := &FuzzResult{}
	for i := 0; i < cfg.Runs; i++ {
		run := cfg.Base
		run.Seed = cfg.Base.Seed + int64(i)
		run.Object = cfg.Base.Object.Fresh()
		res, err := Run(run)
		if err != nil {
			return nil, fmt.Errorf("live: fuzz run %d (seed %d): %w", i, run.Seed, err)
		}
		out.Runs++
		out.TotalOps += res.Ops
		if res.Violation == nil {
			continue
		}
		out.Seed = run.Seed
		out.Run = res
		out.Violation = res.Violation
		if cfg.NoShrink {
			return out, nil
		}
		w, err := Shrink(res.Violation, cfg.CheckOpts)
		if err != nil {
			return nil, fmt.Errorf("live: shrink (seed %d): %w", run.Seed, err)
		}
		out.Witness = w
		return out, nil
	}
	return out, nil
}
