package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// implMaxSteps bounds one operation's step-machine execution under
// SerializedImpl. The live regime runs every operation solo inside the
// mutex, so any obstruction-free implementation terminates quickly; an
// implementation that needs help from other processes to finish would spin
// here forever, and surfaces as an error instead.
const implMaxSteps = 1 << 20

// SerializedImpl runs any machine.Impl — the step-machine implementations
// the simulator and model checker drive — under the live runtime, by
// serializing whole operations under a mutex: each Apply runs the client's
// programme to completion against the implementation's base objects inside
// one critical section. This is the bridge that lets one scenario execute
// on every engine: the same implementation value explored exhaustively by
// package explore and simulated by package sim is hammered by real
// goroutine clients here.
//
// Because the whole operation is one critical section, the commit ticket
// (drawn at entry) is the linearization point and mutex order equals
// ticket order. Responses of eventually linearizable bases are chosen as a
// pure function of (seed, ticket, step index), so a recorded run is a
// deterministic function of its commit order and Replay reproduces it byte
// for byte — the package's reproducibility contract.
//
// Note the regime difference: under the mutex, base-object actions of
// different operations never interleave, so implementation-level races the
// model checker can reach (interleaved CAS loops, overlapping register
// reads) do not occur live. What remains observable is the weak-consistency
// behaviour of eventually linearizable bases before stabilization — which
// is exactly the behaviour the online monitor quantifies.
type SerializedImpl struct {
	impl     machine.Impl
	clients  int
	policies base.PolicyFor
	seed     int64
	opts     check.Options

	mu    sync.Mutex
	bases []base.Object
	procs []machine.Process
}

var _ Object = (*SerializedImpl)(nil)

// NewSerializedImpl wraps impl for clients goroutine clients. Eventually
// linearizable bases receive their stabilization policy from policies
// (nil: all Immediate, i.e. atomic from the start); seed pins their
// response choices.
func NewSerializedImpl(impl machine.Impl, clients int, policies base.PolicyFor, seed int64, opts check.Options) (*SerializedImpl, error) {
	if clients <= 0 {
		return nil, fmt.Errorf("live: SerializedImpl needs at least one client, got %d", clients)
	}
	if err := machine.Validate(impl, clients); err != nil {
		return nil, err
	}
	s := &SerializedImpl{impl: impl, clients: clients, policies: policies, seed: seed, opts: opts}
	bases, err := base.Instantiate(impl.Bases(), policies, opts)
	if err != nil {
		return nil, err
	}
	s.bases = bases
	s.procs = make([]machine.Process, clients)
	for p := range s.procs {
		s.procs[p] = impl.NewProcess(p, clients)
	}
	return s, nil
}

// Name implements Object.
func (s *SerializedImpl) Name() string { return s.impl.Name() }

// Spec implements Object.
func (s *SerializedImpl) Spec() spec.Object { return s.impl.Spec() }

// TryFresh implements TryFresher: a pristine instance, with construction
// failures (possible when recovery rebuilds objects under injected faults)
// returned as errors instead of panics.
func (s *SerializedImpl) TryFresh() (Object, error) {
	cp, err := NewSerializedImpl(s.impl, s.clients, s.policies, s.seed, s.opts)
	if err != nil {
		return nil, fmt.Errorf("live: SerializedImpl.TryFresh: %w", err)
	}
	return cp, nil
}

// Fresh implements Object. Construction succeeded once with identical
// parameters, so a failure here is a programming error; error-aware
// callers use TryFresh.
func (s *SerializedImpl) Fresh() Object {
	cp, err := s.TryFresh()
	if err != nil {
		panic(err.Error())
	}
	return cp
}

// Apply implements Object: the client's programme runs to completion inside
// one critical section, so the ticket drawn at entry is the operation's
// linearization point.
func (s *SerializedImpl) Apply(proc int, op spec.Op, seq *atomic.Uint64) (int64, uint64, error) {
	if proc < 0 || proc >= s.clients {
		return 0, 0, fmt.Errorf("live: %s built for %d clients, got client %d", s.impl.Name(), s.clients, proc)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	ticket := seq.Add(1)
	p := s.procs[proc]
	p.Begin(op)
	var resp int64
	for step := 0; ; step++ {
		if step >= implMaxSteps {
			return 0, 0, fmt.Errorf("live: %s operation %s did not complete within %d solo steps",
				s.impl.Name(), op, implMaxSteps)
		}
		act := p.Step(resp)
		if act.Kind == machine.ActReturn {
			return act.Ret, ticket, nil
		}
		if act.Obj < 0 || act.Obj >= len(s.bases) {
			return 0, 0, fmt.Errorf("live: %s action on unknown base %d", s.impl.Name(), act.Obj)
		}
		obj := s.bases[act.Obj]
		cands, err := obj.Candidates(proc, act.Op)
		if err != nil {
			return 0, 0, err
		}
		r := cands[0]
		if len(cands) > 1 {
			r = cands[pickIndexStep(s.seed, ticket, step, len(cands))]
		}
		if err := obj.Commit(proc, act.Op, r); err != nil {
			return 0, 0, err
		}
		resp = r
	}
}

// pickIndexStep chooses a weak-consistency candidate as a pure function of
// (seed, ticket, step index): a splitmix64 step over the combined value, so
// every base action of every operation draws an independent, reproducible
// choice.
func pickIndexStep(seed int64, ticket uint64, step, n int) int {
	x := uint64(seed) ^ (ticket * 0x9E3779B97F4A7C15) ^ (uint64(step+1) * 0xD1B54A32D192ED03)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}
