package live

import (
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/spec"
)

// benchRun drives one live run sized by b.N and reports achieved
// throughput. The monitored variants measure the full pipeline (recording,
// merging, windowed checking), the recording-only variants the hot path.
func benchRun(b *testing.B, mk func() Object, clients int, monitor bool) {
	b.Helper()
	ops := b.N/clients + 1
	cfg := Config{
		Object:        mk(),
		Clients:       clients,
		Ops:           ops,
		Seed:          1,
		NoMonitor:     !monitor,
		LatencySample: 64,
	}
	if monitor {
		cfg.Monitor = check.IncrementalConfig{Stride: 4096}
	}
	b.ResetTimer()
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Violation != nil {
		b.Fatalf("benchmark run flagged: %v", res.Violation)
	}
	b.ReportMetric(res.Throughput, "ops/s")
	b.ReportMetric(float64(res.LatP99), "p99-ns")
}

func BenchmarkLiveAtomicFIRecord(b *testing.B) {
	benchRun(b, func() Object { return NewAtomicFetchInc("C", 0) }, 4, false)
}

func BenchmarkLiveAtomicFIMonitored(b *testing.B) {
	benchRun(b, func() Object { return NewAtomicFetchInc("C", 0) }, 4, true)
}

func BenchmarkLiveSerializedFIRecord(b *testing.B) {
	benchRun(b, func() Object {
		s, err := NewSerialized("C", spec.NewObject(spec.FetchInc{}), 1)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}, 4, false)
}

func BenchmarkLiveSerializedFIMonitored(b *testing.B) {
	benchRun(b, func() Object {
		s, err := NewSerialized("C", spec.NewObject(spec.FetchInc{}), 1)
		if err != nil {
			b.Fatal(err)
		}
		return s
	}, 4, true)
}
