// Package live executes real goroutine concurrency against genuinely shared
// objects — the regime every other layer of this repository deliberately
// avoids. sim/explore drive cooperative, single-threaded schedules so that
// executions are reproducible and exhaustively checkable; live trades that
// control for actual parallelism: N client goroutines hammer one shared
// object, per-client sharded recorders capture the history without a global
// lock on the hot path, and an online windowed monitor (check.Incremental)
// t-lin-checks the merged history as it grows. When the monitor flags a
// window, the shrinker (Shrink) minimizes it by delta debugging and replays
// the result inside the deterministic simulator (sim.Replay) — the bridge
// back from the live world to the model checker.
//
// # Tickets and the recorded history
//
// One shared atomic counter sequences the run, and it counts commits only:
// an operation draws its commit ticket at the object's linearization point
// (inside the mutex for Serialized; for AtomicFetchInc the draw IS the
// fetch-add — a fetch&increment is itself a sequencer, so the ticket is
// the response). Invocation events do not draw tickets; they carry a
// seq.Load() stamp taken at operation start and are merged into the gap
// after the stamped commit (ties broken by client id). The merged history
// orders response events by commit ticket and places each invocation after
// every commit its stamp proves it followed.
//
// Real-time precedence survives the encoding soundly: a recorded edge
// "operation X precedes operation Y" means X's commit ticket is at most
// Y's invocation stamp, i.e. X's linearization happened before Y loaded
// the sequencer at its start — a true wall-time precedence. (Some true
// precedences are lost when a stamp reads low; losing edges only weakens
// the check.) A correct implementation therefore always has its own commit
// order as a linearization witness and the monitor never raises a false
// alarm; the commit order of a buggy implementation fails to serialize,
// which is exactly what the monitor catches.
//
// # Reproducibility
//
// True concurrency makes the interleaving schedule-dependent, so two live
// runs of the same seed need not agree. What the seed pins down is
// everything *except* the race outcomes: per-client operation streams are
// deterministic RNG streams, and response choices of eventually
// linearizable objects are pure functions of (seed, commit ticket). The
// recorded commit order therefore determines the entire run: Replay
// re-executes a merged history serially, re-deriving every response, and
// must reproduce it byte for byte — the reproducibility contract the fuzz
// and shrink layers build on.
package live

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/spec"
)

// Object is a concurrency-safe shared object: many client goroutines call
// Apply simultaneously. Implementations draw the operation's commit ticket
// from seq at their linearization point (see the package comment) and must
// be deterministic functions of the commit order, so that Replay can
// re-derive every response from a recorded run.
type Object interface {
	// Name is the object's name in recorded histories.
	Name() string
	// Spec is the sequential specification recorded histories are checked
	// against.
	Spec() spec.Object
	// Apply performs op for client proc, returning the response and the
	// commit ticket. seq is the run's commit sequencer: Apply must draw the
	// ticket (seq.Add(1)) exactly once, at the operation's linearization
	// point, and the response must be a deterministic function of the
	// object's commit history in ticket order.
	Apply(proc int, op spec.Op, seq *atomic.Uint64) (resp int64, ticket uint64, err error)
	// Fresh returns a new instance with the same parameters and pristine
	// state (the replay and fuzz layers re-execute against it).
	Fresh() Object
}

// ----------------------------------------------------------------------------
// Serialized: the mutex adapter.

// Serialized makes any base.Object concurrency-safe by serializing Apply
// under a mutex — the correctness baseline every lock-free object is
// measured against, and the only generic way to run eventually linearizable
// base objects (whose candidate computation is stateful) under real
// concurrency. Response choices among weak-consistency candidates are a
// pure function of (seed, commit ticket), keeping runs reproducible from
// the recorded commit order.
type Serialized struct {
	name     string
	sp       spec.Object
	eventual bool
	policy   base.Policy
	seed     int64
	opts     check.Options

	mu  sync.Mutex
	obj base.Object
}

var _ Object = (*Serialized)(nil)

// NewSerialized wraps an atomic (linearizable) base object of the given
// specification.
func NewSerialized(name string, obj spec.Object, seed int64) (*Serialized, error) {
	return newSerialized(name, obj, false, nil, seed, check.Options{})
}

// NewSerializedEventual wraps an eventually linearizable base object: before
// the policy's stabilization point responses range over the Definition 1
// candidate set, chosen deterministically from (seed, commit ticket).
func NewSerializedEventual(name string, obj spec.Object, policy base.Policy, seed int64, opts check.Options) (*Serialized, error) {
	if policy == nil {
		policy = base.Never{}
	}
	return newSerialized(name, obj, true, policy, seed, opts)
}

func newSerialized(name string, obj spec.Object, eventual bool, policy base.Policy, seed int64, opts check.Options) (*Serialized, error) {
	s := &Serialized{name: name, sp: obj, eventual: eventual, policy: policy, seed: seed, opts: opts}
	var err error
	if eventual {
		s.obj, err = base.NewEventual(name, obj, policy, opts)
	} else {
		s.obj, err = base.NewAtomic(name, obj)
	}
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Name implements Object.
func (s *Serialized) Name() string { return s.name }

// Spec implements Object.
func (s *Serialized) Spec() spec.Object { return s.sp }

// TryFresh implements TryFresher: a pristine instance, with construction
// failures (possible when recovery rebuilds objects under injected faults)
// returned as errors instead of panics.
func (s *Serialized) TryFresh() (Object, error) {
	cp, err := newSerialized(s.name, s.sp, s.eventual, s.policy, s.seed, s.opts)
	if err != nil {
		return nil, fmt.Errorf("live: Serialized.TryFresh: %w", err)
	}
	return cp, nil
}

// Fresh implements Object. Construction succeeded once with identical
// parameters, so a failure here is a programming error; error-aware
// callers use TryFresh.
func (s *Serialized) Fresh() Object {
	cp, err := s.TryFresh()
	if err != nil {
		panic(err.Error())
	}
	return cp
}

// Apply implements Object: candidates, ticket draw and commit happen inside
// one critical section, so the commit ticket is the linearization point.
func (s *Serialized) Apply(proc int, op spec.Op, seq *atomic.Uint64) (int64, uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cands, err := s.obj.Candidates(proc, op)
	if err != nil {
		return 0, 0, err
	}
	ticket := seq.Add(1)
	resp := cands[0]
	if len(cands) > 1 {
		resp = cands[pickIndex(s.seed, ticket, len(cands))]
	}
	if err := s.obj.Commit(proc, op, resp); err != nil {
		return 0, 0, err
	}
	return resp, ticket, nil
}

// pickIndex chooses a candidate index as a pure function of (seed, ticket):
// a splitmix64 step over the combined value.
func pickIndex(seed int64, ticket uint64, n int) int {
	x := uint64(seed) ^ (ticket * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(n))
}

// ----------------------------------------------------------------------------
// AtomicFetchInc: the first lock-free "production" object.

// AtomicFetchInc is a lock-free linearizable fetch&increment over one
// machine word: Apply is a single atomic fetch-add, the hardware analog of
// the paper's CAS-counter implementation with the retry loop compiled
// away. The fetch-add is performed directly on the run's commit sequencer:
// a fetch&increment is itself a sequencer, so the linearization point, the
// commit ticket and the response are one atomic operation — which is what
// makes the recorded run exactly commit-deterministic (Replay re-derives
// every response from the ticket alone).
type AtomicFetchInc struct {
	name string
	init int64
}

var _ Object = (*AtomicFetchInc)(nil)

// NewAtomicFetchInc returns a lock-free counter starting at init.
func NewAtomicFetchInc(name string, init int64) *AtomicFetchInc {
	return &AtomicFetchInc{name: name, init: init}
}

// Name implements Object.
func (c *AtomicFetchInc) Name() string { return c.name }

// Spec implements Object.
func (c *AtomicFetchInc) Spec() spec.Object {
	return spec.Object{Type: spec.FetchInc{InitVal: c.init}, Init: c.init}
}

// Fresh implements Object.
func (c *AtomicFetchInc) Fresh() Object { return NewAtomicFetchInc(c.name, c.init) }

// Apply implements Object.
func (c *AtomicFetchInc) Apply(proc int, op spec.Op, seq *atomic.Uint64) (int64, uint64, error) {
	if op.Method != spec.MethodFetchInc || op.NArgs != 0 {
		return 0, 0, fmt.Errorf("live: %s rejects %s (fetchinc only)", c.name, op)
	}
	ticket := seq.Add(1)
	return c.init + int64(ticket) - 1, ticket, nil
}

// ----------------------------------------------------------------------------
// JunkFetchInc: the injected-bug adapter.

// JunkFetchInc is a deliberately broken counter: it behaves like
// AtomicFetchInc until its value reaches Stick, then loses every further
// increment and hands the same value out forever — duplicate responses that
// no serialization explains. It exists to prove the monitoring pipeline
// end to end: the online monitor must flag it, the shrinker must minimize
// the window, and the sim replay must refuse the duplicate.
type JunkFetchInc struct {
	name  string
	stick int64
}

var _ Object = (*JunkFetchInc)(nil)

// NewJunkFetchInc returns a counter that sticks at the given value.
func NewJunkFetchInc(name string, stick int64) *JunkFetchInc {
	return &JunkFetchInc{name: name, stick: stick}
}

// Name implements Object.
func (c *JunkFetchInc) Name() string { return c.name }

// Spec implements Object: it claims to be a correct counter — the claim the
// monitor falsifies.
func (c *JunkFetchInc) Spec() spec.Object { return spec.NewObject(spec.FetchInc{}) }

// Fresh implements Object.
func (c *JunkFetchInc) Fresh() Object { return NewJunkFetchInc(c.name, c.stick) }

// Apply implements Object.
func (c *JunkFetchInc) Apply(proc int, op spec.Op, seq *atomic.Uint64) (int64, uint64, error) {
	if op.Method != spec.MethodFetchInc || op.NArgs != 0 {
		return 0, 0, fmt.Errorf("live: %s rejects %s (fetchinc only)", c.name, op)
	}
	tick := seq.Add(1)
	val := int64(tick) - 1
	if val > c.stick {
		val = c.stick
	}
	return val, tick, nil
}
