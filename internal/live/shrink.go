package live

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/sim"
)

// Witness is a minimized, simulator-confirmed counterexample.
type Witness struct {
	// History is the minimized window: removing any chunk the shrinker
	// tried would make the violation disappear.
	History *history.History
	// Ops is the number of completed operations remaining.
	Ops int
	// Replay is the confirming deterministic-simulator run: Diverged names
	// the first operation whose recorded response the model cannot
	// produce.
	Replay *sim.ReplayResult
	// Trials counts the candidate histories the shrinker re-checked.
	Trials int
}

// Shrink minimizes a monitor violation by delta debugging: completed
// operations of the offending window are removed chunk-wise (ddmin), a
// candidate surviving when it still exhibits the violation that was
// reported — MinT above the monitor's tolerance — so a tolerance-monitored
// object can never shrink to a window that is back inside tolerance. The
// final witness is then confirmed by a commit-order replay inside the
// deterministic simulator: a window with MinT above the (non-negative)
// tolerance has no 0-linearization, so in particular its own commit order
// fails to serialize and sim.Replay pinpoints the first response the model
// cannot produce. Pending operations are kept throughout (they commit
// nothing, and removing them could only manufacture constraints).
func Shrink(v *check.WindowViolation, opts check.Options) (*Witness, error) {
	if v == nil {
		return nil, fmt.Errorf("live: Shrink of nil violation")
	}
	maxT := v.MaxT
	if maxT < 0 {
		maxT = 0
	}
	w := &Witness{}
	violates := func(h *history.History) (bool, error) {
		w.Trials++
		t, ok, err := check.MinT(v.Object, h, opts)
		if err != nil {
			return false, err
		}
		return !ok || t > maxT, nil
	}

	ops := v.Window.Operations()
	var completed []int
	for i, op := range ops {
		if !op.Pending() {
			completed = append(completed, i)
		}
	}
	still, err := violates(v.Window)
	if err != nil {
		return nil, err
	}
	if !still {
		return nil, fmt.Errorf("live: violation window re-checks clean (MinT within %d): monitor and shrinker disagree", maxT)
	}
	best := v.Window
	cur := completed

	// ddmin over the completed-operation set.
	n := 2
	for len(cur) > 1 && n <= len(cur) {
		chunk := (len(cur) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(cur); lo += chunk {
			hi := lo + chunk
			if hi > len(cur) {
				hi = len(cur)
			}
			trial := make([]int, 0, len(cur)-(hi-lo))
			trial = append(trial, cur[:lo]...)
			trial = append(trial, cur[hi:]...)
			th := subHistory(v.Window, ops, trial)
			d, err := violates(th)
			if err != nil {
				return nil, err
			}
			if d {
				cur = trial
				best = th
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if n >= len(cur) {
				break
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	w.History = best
	w.Ops = len(cur)
	// Confirm the minimized witness in the deterministic simulator.
	rep, err := sim.Replay(sim.ReplayConfig{Object: v.Object, CheckOpts: opts}, best)
	if err != nil {
		return nil, err
	}
	w.Replay = rep
	return w, nil
}

// subHistory projects h onto the kept completed operations (by index into
// ops) plus every pending operation, preserving event order.
func subHistory(h *history.History, ops []history.Operation, keep []int) *history.History {
	keepEvent := make([]bool, h.Len())
	for _, op := range ops {
		if op.Pending() {
			keepEvent[op.Inv] = true
		}
	}
	for _, k := range keep {
		keepEvent[ops[k].Inv] = true
		keepEvent[ops[k].Res] = true
	}
	out := history.New()
	for i := 0; i < h.Len(); i++ {
		if !keepEvent[i] {
			continue
		}
		e := h.Event(i)
		// Projection of a well-formed history onto whole operations is
		// well-formed; Append re-validates anyway.
		if e.Kind == history.KindInvoke {
			_ = out.Invoke(e.Proc, e.Obj, e.Op)
		} else {
			_ = out.Respond(e.Proc, e.Resp)
		}
	}
	return out
}
