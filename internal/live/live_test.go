package live

import (
	"sync"
	"sync/atomic"
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/spec"
)

func TestAtomicFetchIncParallel(t *testing.T) {
	// Hammer the lock-free counter from many goroutines: every value in
	// [0, total) must be handed out exactly once.
	const clients, ops = 8, 500
	c := NewAtomicFetchInc("C", 0)
	var seq atomic.Uint64
	results := make([][]int64, clients)
	var wg sync.WaitGroup
	op := spec.MakeOp(spec.MethodFetchInc)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				v, _, err := c.Apply(g, op, &seq)
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = append(results[g], v)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool)
	for _, rs := range results {
		for _, v := range rs {
			if seen[v] {
				t.Fatalf("value %d handed out twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != clients*ops {
		t.Fatalf("got %d distinct values, want %d", len(seen), clients*ops)
	}
}

func TestSerializedMatchesBaseObject(t *testing.T) {
	// Serial application through the adapter equals direct base stepping.
	s, err := NewSerialized("C", spec.NewObject(spec.FetchInc{}), 1)
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Uint64
	op := spec.MakeOp(spec.MethodFetchInc)
	for i := int64(0); i < 10; i++ {
		v, ticket, err := s.Apply(0, op, &seq)
		if err != nil {
			t.Fatal(err)
		}
		if v != i {
			t.Fatalf("op %d: resp %d", i, v)
		}
		if ticket != uint64(i+1) {
			t.Fatalf("op %d: ticket %d", i, ticket)
		}
	}
}

func TestSerializedEventualDeterministicChoice(t *testing.T) {
	// The same (seed, commit order) must yield the same responses.
	runOnce := func() []int64 {
		s, err := NewSerializedEventual("C", spec.NewObject(spec.FetchInc{}),
			base.Never{}, 42, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var seq atomic.Uint64
		op := spec.MakeOp(spec.MethodFetchInc)
		var out []int64
		for i := 0; i < 12; i++ {
			v, _, err := s.Apply(i%3, op, &seq)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, v)
		}
		return out
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("responses diverge at %d: %v vs %v", i, a, b)
		}
	}
	// And a different seed should (here) make different stale choices.
	s2, err := NewSerializedEventual("C", spec.NewObject(spec.FetchInc{}),
		base.Never{}, 43, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Uint64
	op := spec.MakeOp(spec.MethodFetchInc)
	diff := false
	for i := 0; i < 12; i++ {
		v, _, err := s2.Apply(i%3, op, &seq)
		if err != nil {
			t.Fatal(err)
		}
		if v != a[i] {
			diff = true
		}
	}
	if !diff {
		t.Log("seeds 42 and 43 coincide on all 12 ops (possible but unexpected)")
	}
}

func TestJunkFetchIncSticks(t *testing.T) {
	c := NewJunkFetchInc("C", 3)
	var seq atomic.Uint64
	op := spec.MakeOp(spec.MethodFetchInc)
	var got []int64
	for i := 0; i < 6; i++ {
		v, _, err := c.Apply(0, op, &seq)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	want := []int64{0, 1, 2, 3, 3, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("junk values %v, want %v", got, want)
		}
	}
}

func TestMergerOrdersByKey(t *testing.T) {
	// Hand-built shards: client 0 commits tickets 1 and 3, client 1 commits
	// ticket 2. Invocation stamps interleave them.
	op := spec.MakeOp(spec.MethodFetchInc)
	s0 := NewShard(4)
	s1 := NewShard(2)
	s0.PushInvoke(0, op)    // inv a  (gap 0)
	s1.PushInvoke(0, op)    // inv b  (gap 0, after a: client order)
	s0.PushCommit(1, 0, op) // commit a @1
	s1.PushCommit(2, 1, op) // commit b @2
	s0.PushInvoke(2, op)    // inv c  (gap 2)
	s0.PushCommit(3, 2, op) // commit c @3
	s0.Finish()
	s1.Finish()
	m := NewMerger("C", 0, []*Shard{s0, s1})
	h := newHist(t)
	if _, err := m.Drain(h, nil); err != nil {
		t.Fatal(err)
	}
	want := []string{
		"inv p0 C fetchinc",
		"inv p1 C fetchinc",
		"res p0 C 0",
		"res p1 C 1",
		"inv p0 C fetchinc",
		"res p0 C 2",
	}
	if h.Len() != len(want) {
		t.Fatalf("merged %d events, want %d:\n%s", h.Len(), len(want), h)
	}
	for i, w := range want {
		if h.Event(i).String() != w {
			t.Fatalf("event %d = %q, want %q\n%s", i, h.Event(i), w, h)
		}
	}
}

func TestMergerWatermarkStalls(t *testing.T) {
	// A drained, unfinished shard blocks records above its watermark.
	op := spec.MakeOp(spec.MethodFetchInc)
	s0 := NewShard(2)
	s1 := NewShard(2)
	s0.PushInvoke(0, op)
	s0.PushCommit(1, 0, op)
	s0.Finish()
	// s1 has published nothing and is not done: nothing may merge (its
	// first invocation could be stamped 0 and belong before everything).
	m := NewMerger("C", 0, []*Shard{s0, s1})
	h := newHist(t)
	n, err := m.Drain(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("merged %d events past an unpublished shard", n)
	}
	// Once s1 publishes an invocation stamped 1 (key above s0's records),
	// s0's records flow; s1's invocation then waits on nothing and merges
	// too.
	s1.PushInvoke(1, op)
	s1.Finish()
	if _, err := m.Drain(h, nil); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 3 {
		t.Fatalf("merged %d events, want 3:\n%s", h.Len(), h)
	}
}
