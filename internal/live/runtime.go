package live

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// OpGen generates the i-th operation of a client. r is the client's private
// deterministic RNG stream (derived from the run seed and the client id),
// so the operation sequence of every client is a pure function of the seed.
type OpGen func(client, i int, r *rand.Rand) spec.Op

// FetchIncGen returns the generator for pure fetch&increment workloads.
func FetchIncGen() OpGen {
	op := spec.MakeOp(spec.MethodFetchInc)
	return func(int, int, *rand.Rand) spec.Op { return op }
}

// MixGen draws operations from a weighted mix.
func MixGen(ops []spec.Op, weights []int) (OpGen, error) {
	if len(ops) == 0 || len(ops) != len(weights) {
		return nil, fmt.Errorf("live: mix of %d ops with %d weights", len(ops), len(weights))
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("live: non-positive mix weight %d", w)
		}
		total += w
	}
	return func(_, _ int, r *rand.Rand) spec.Op {
		k := r.Intn(total)
		for j, w := range weights {
			if k < w {
				return ops[j]
			}
			k -= w
		}
		return ops[len(ops)-1]
	}, nil
}

// RegisterMixGen returns a read/write mix for register-shaped objects:
// writes (with values drawn from [1, valueRange]) occur with probability
// writeRatio, reads otherwise.
func RegisterMixGen(writeRatio float64, valueRange int64) OpGen {
	read := spec.MakeOp(spec.MethodRead)
	return func(_, _ int, r *rand.Rand) spec.Op {
		if r.Float64() < writeRatio {
			return spec.MakeOp1(spec.MethodWrite, 1+r.Int63n(valueRange))
		}
		return read
	}
}

// Config describes one live stress run.
type Config struct {
	// Object is the shared object under test.
	Object Object
	// Clients is the number of client goroutines (default 4).
	Clients int
	// Ops is the per-client operation budget (default 1000).
	Ops int
	// Gen generates each client's operations (default FetchIncGen).
	Gen OpGen
	// Seed pins the per-client RNG streams and the response choices of
	// eventually linearizable objects.
	Seed int64
	// Rate, when positive, switches to open-loop mode: each client issues
	// operations at Rate ops/second (scheduled at fixed intervals, with
	// latency measured from the scheduled start, so queueing delay counts).
	// Zero means closed loop: each client issues its next operation as soon
	// as the previous one returns.
	Rate float64
	// Monitor tunes the online windowed monitor.
	Monitor check.IncrementalConfig
	// NoMonitor disables online checking: the run records and merges only
	// (the configuration for pure throughput measurement).
	NoMonitor bool
	// LatencySample records one latency sample every LatencySample
	// operations per client (default 1: every operation; raise it on
	// multi-million-op runs to keep the timestamping off the hot path).
	LatencySample int
}

func (c *Config) fill() error {
	if c.Object == nil {
		return fmt.Errorf("live: Config.Object is nil")
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Gen == nil {
		c.Gen = FetchIncGen()
	}
	if c.LatencySample <= 0 {
		c.LatencySample = 1
	}
	return nil
}

// Result is the outcome of a live run.
type Result struct {
	// History is the merged history (ordered by commit ticket, invocations
	// by sequencer stamp). On a violation stop it covers the run up to and
	// including the offending window.
	History *history.History
	// Ops counts completed operations; ClientOps breaks them down per
	// client.
	Ops       int
	ClientOps []int
	// Elapsed is the wall-clock run time, Throughput the completed
	// operations per second.
	Elapsed    time.Duration
	Throughput float64
	// LatP50/P95/P99/Max are latency percentiles over the sampled
	// operations (closed loop: call duration; open loop: from scheduled
	// start).
	LatP50, LatP95, LatP99, LatMax time.Duration
	// Verdict is the online monitor's trend over per-window MinT samples
	// (zero when NoMonitor).
	Verdict check.Verdict
	// Violation is the offending window when the monitor stopped the run.
	Violation *check.WindowViolation
	// Stopped reports that the monitor stopped the run early at a
	// violation (client errors surface as Run's error instead).
	Stopped bool
}

// Run executes one live stress run: Clients goroutines apply Ops operations
// each to the shared Object, per-client shards record invocation stamps and
// commit tickets, and the merging loop feeds the growing history to the
// online monitor. A monitor violation stops the clients and returns with
// the offending window; see Shrink for what to do with it.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	var seq atomic.Uint64
	var stop atomic.Bool
	var firstErr atomic.Value // error

	shards := make([]*shard, cfg.Clients)
	lats := make([][]int64, cfg.Clients)
	clientOps := make([]int, cfg.Clients)
	for c := range shards {
		shards[c] = newShard(2 * cfg.Ops)
		lats[c] = make([]int64, 0, cfg.Ops/cfg.LatencySample+1)
	}

	fail := func(err error) {
		if err == nil {
			return
		}
		if firstErr.CompareAndSwap(nil, err) {
			stop.Store(true)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer shards[c].finish()
			r := rand.New(rand.NewSource(cfg.Seed ^ int64(c+1)*0x5DEECE66D))
			sh := shards[c]
			var interval time.Duration
			if cfg.Rate > 0 {
				interval = time.Duration(float64(time.Second) / cfg.Rate)
			}
			for i := 0; i < cfg.Ops; i++ {
				if stop.Load() {
					return
				}
				op := cfg.Gen(c, i, r)
				// Timestamps stay off the hot path: closed-loop ops take one
				// only when sampled; open-loop ops know their scheduled start
				// for free.
				sample := i%cfg.LatencySample == 0
				var t0 time.Time
				if interval > 0 {
					t0 = start.Add(time.Duration(i) * interval)
					if d := time.Until(t0); d > 0 {
						time.Sleep(d)
					}
				} else if sample {
					t0 = time.Now()
				}
				if !sh.push(rec{pos: seq.Load(), invoke: true, op: op}) {
					fail(fmt.Errorf("live: client %d shard overflow", c))
					return
				}
				resp, ticket, err := cfg.Object.Apply(c, op, &seq)
				if err != nil {
					fail(fmt.Errorf("live: client %d op %d: %w", c, i, err))
					return
				}
				if !sh.push(rec{pos: ticket, resp: resp, op: op}) {
					fail(fmt.Errorf("live: client %d shard overflow", c))
					return
				}
				clientOps[c]++
				if sample {
					lats[c] = append(lats[c], int64(time.Since(t0)))
				}
			}
		}(c)
	}

	clientsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(clientsDone)
	}()

	// Merge-and-monitor loop (runs on this goroutine).
	var mon *check.Incremental
	if !cfg.NoMonitor {
		mon = check.NewIncremental(cfg.Object.Spec(), cfg.Monitor)
	}
	h := history.New()
	h.Reserve(2 * cfg.Clients * cfg.Ops)
	m := newMerger(cfg.Object.Name(), shards)
	var violation *check.WindowViolation
	feed := func(e history.Event) error {
		if mon == nil {
			return nil
		}
		v, err := mon.Feed(e)
		if err != nil {
			return err
		}
		if v != nil {
			violation = v
			stop.Store(true)
			return errStopMerge
		}
		return nil
	}
	done := false
	for {
		if _, err := m.drain(h, feed); err != nil && err != errStopMerge {
			stop.Store(true)
			<-clientsDone
			return nil, err
		}
		if violation != nil {
			break
		}
		if done {
			break
		}
		select {
		case <-clientsDone:
			// One final drain after every shard finished.
			done = true
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	<-clientsDone
	elapsed := time.Since(start)
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	if mon != nil && violation == nil {
		v, err := mon.Finish()
		if err != nil {
			return nil, err
		}
		violation = v
	}

	res := &Result{
		History:   h,
		ClientOps: clientOps,
		Elapsed:   elapsed,
		Violation: violation,
		Stopped:   violation != nil,
	}
	for _, n := range clientOps {
		res.Ops += n
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	if mon != nil {
		res.Verdict = mon.Verdict()
	}
	res.LatP50, res.LatP95, res.LatP99, res.LatMax = percentiles(lats)
	return res, nil
}

// errStopMerge aborts the merge loop when the monitor flags a violation.
var errStopMerge = fmt.Errorf("live: stop merge")

// percentiles merges the sampled latencies and returns p50/p95/p99/max.
func percentiles(lats [][]int64) (p50, p95, p99, max time.Duration) {
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(all)-1))
		return time.Duration(all[i])
	}
	return at(0.50), at(0.95), at(0.99), time.Duration(all[len(all)-1])
}

// Replay re-executes a merged history serially against a fresh instance of
// obj, re-deriving every response from the recorded commit order, and
// returns the rebuilt history. For a correct (commit-deterministic) object
// the result is byte-identical to the input — the reproducibility contract
// of the package: seed plus recorded commit order determine the run. A
// mismatch means the object is not a deterministic function of its commit
// order (state outside the linearization discipline), reported as an error
// by Verify.
func Replay(obj Object, h *history.History) (*history.History, error) {
	fresh := obj.Fresh()
	var seq atomic.Uint64
	out := history.New()
	out.Reserve(h.Len())
	pending := make(map[int]spec.Op)
	for i := 0; i < h.Len(); i++ {
		e := h.Event(i)
		if e.Kind == history.KindInvoke {
			pending[e.Proc] = e.Op
			if err := out.Invoke(e.Proc, e.Obj, e.Op); err != nil {
				return nil, fmt.Errorf("live: replay event %d: %w", i, err)
			}
			continue
		}
		op, ok := pending[e.Proc]
		if !ok {
			return nil, fmt.Errorf("live: replay event %d: response without invocation", i)
		}
		delete(pending, e.Proc)
		resp, _, err := fresh.Apply(e.Proc, op, &seq)
		if err != nil {
			return nil, fmt.Errorf("live: replay event %d: %w", i, err)
		}
		if err := out.Respond(e.Proc, resp); err != nil {
			return nil, fmt.Errorf("live: replay event %d: %w", i, err)
		}
	}
	return out, nil
}

// Verify replays h against a fresh obj and reports whether the rebuilt
// history is byte-identical (via the canonical history fingerprint).
func Verify(obj Object, h *history.History) (bool, error) {
	replayed, err := Replay(obj, h)
	if err != nil {
		return false, err
	}
	a := h.AppendFingerprint(nil)
	b := replayed.AppendFingerprint(nil)
	return string(a) == string(b), nil
}
