package live

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// OpGen generates the i-th operation of a client. r is the client's private
// deterministic RNG stream (derived from the run seed and the client id),
// so the operation sequence of every client is a pure function of the seed.
type OpGen func(client, i int, r *rand.Rand) spec.Op

// FetchIncGen returns the generator for pure fetch&increment workloads.
func FetchIncGen() OpGen {
	op := spec.MakeOp(spec.MethodFetchInc)
	return func(int, int, *rand.Rand) spec.Op { return op }
}

// MixGen draws operations from a weighted mix.
func MixGen(ops []spec.Op, weights []int) (OpGen, error) {
	if len(ops) == 0 || len(ops) != len(weights) {
		return nil, fmt.Errorf("live: mix of %d ops with %d weights", len(ops), len(weights))
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("live: non-positive mix weight %d", w)
		}
		total += w
	}
	return func(_, _ int, r *rand.Rand) spec.Op {
		k := r.Intn(total)
		for j, w := range weights {
			if k < w {
				return ops[j]
			}
			k -= w
		}
		return ops[len(ops)-1]
	}, nil
}

// RegisterMixGen returns a read/write mix for register-shaped objects:
// writes (with values drawn from [1, valueRange]) occur with probability
// writeRatio, reads otherwise.
func RegisterMixGen(writeRatio float64, valueRange int64) OpGen {
	read := spec.MakeOp(spec.MethodRead)
	return func(_, _ int, r *rand.Rand) spec.Op {
		if r.Float64() < writeRatio {
			return spec.MakeOp1(spec.MethodWrite, 1+r.Int63n(valueRange))
		}
		return read
	}
}

// Config describes one live stress run.
type Config struct {
	// Object is the shared object under test.
	Object Object
	// Clients is the number of client goroutines (default 4).
	Clients int
	// Ops is the per-client operation budget (default 1000).
	Ops int
	// Gen generates each client's operations (default FetchIncGen).
	Gen OpGen
	// Seed pins the per-client RNG streams, the response choices of
	// eventually linearizable objects, and every fault-plane draw.
	Seed int64
	// Rate, when positive, switches to open-loop mode: each client issues
	// operations at Rate ops/second (scheduled at fixed intervals, with
	// latency measured from the scheduled start, so queueing delay counts).
	// Zero means closed loop: each client issues its next operation as soon
	// as the previous one returns. Ignored under Serial.
	Rate float64
	// Monitor tunes the online windowed monitor.
	Monitor check.IncrementalConfig
	// MonitorSpec selects the monitor implementation (full, sample:N,
	// shard:K, shard:key, none — see check.ParseMonitorSpec). The zero
	// value is the sequential exhaustive monitor, so existing callers are
	// unchanged. Kind none is equivalent to NoMonitor.
	MonitorSpec check.MonitorSpec
	// NoMonitor disables online checking: the run records and merges only
	// (the configuration for pure throughput measurement).
	NoMonitor bool
	// LatencySample records one latency sample every LatencySample
	// operations per client (default 1: every operation; raise it on
	// multi-million-op runs to keep the timestamping off the hot path).
	LatencySample int
	// Faults is the injected fault plane (nil: a perfect machine). Every
	// fault decision is a pure function of (Seed, commit ticket, client,
	// op index) — see package faults.
	Faults *faults.Spec
	// Sink, when non-nil, receives every merged event with its merge
	// position — the durable commit-log backend (wal.Log implements it).
	// Run owns the sink and closes it before returning.
	Sink CommitSink
	// StartSeq initializes the commit sequencer. Continuation runs resume
	// ticket numbering from a recovered log's last commit (Resume.NextSeq);
	// fresh runs leave it zero.
	StartSeq uint64
	// ProcBase offsets client proc ids: client c records as proc
	// ProcBase+c. Continuation runs set it to the crashed run's client
	// count so the stitched history never reuses a proc id that may still
	// have an operation pending from before the crash.
	ProcBase int
	// History, when non-nil, is a recovered history prefix the run extends
	// in place: the monitor is primed with its events before any client
	// starts, so window accounting spans the crash cut. The prefix is not
	// re-appended to Sink (it is already durable in the log it came from).
	History *history.History
	// Serial switches to the deterministic driver: clients run round-robin
	// on the calling goroutine, so for a fixed seed the merged history (and
	// any WAL written through Sink) is byte-identical across reruns — the
	// mode crash-recovery acceptance pins down. Fault semantics carry over
	// deterministically; see runSerial.
	Serial bool
}

func (c *Config) fill() error {
	if c.Object == nil {
		return fmt.Errorf("live: Config.Object is nil")
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Ops <= 0 {
		c.Ops = 1000
	}
	if c.Gen == nil {
		c.Gen = FetchIncGen()
	}
	if c.LatencySample <= 0 {
		c.LatencySample = 1
	}
	return nil
}

// Result is the outcome of a live run.
type Result struct {
	// History is the merged history (ordered by commit ticket, invocations
	// by sequencer stamp). On a violation stop it covers the run up to and
	// including the offending window; on an injected crash, up to and
	// including the crash commit. A continuation run's History includes the
	// recovered prefix it was seeded with.
	History *history.History
	// Ops counts completed operations; ClientOps breaks them down per
	// client.
	Ops       int
	ClientOps []int
	// Elapsed is the wall-clock run time, Throughput the completed
	// operations per second.
	Elapsed    time.Duration
	Throughput float64
	// LatP50/P95/P99/Max are latency percentiles over the sampled
	// operations (closed loop: call duration; open loop: from scheduled
	// start).
	LatP50, LatP95, LatP99, LatMax time.Duration
	// Verdict is the online monitor's trend over per-window MinT samples
	// (zero when NoMonitor).
	Verdict check.Verdict
	// Violation is the offending window when the monitor stopped the run.
	Violation *check.WindowViolation
	// Stopped reports that the monitor stopped the run early at a
	// violation (client errors surface as Run's error instead).
	Stopped bool
	// Crashed reports that the injected crash-at-commit fault killed the
	// run; CrashTicket is the commit ticket it died at. In-flight
	// operations are lost — only History up to the crash commit and
	// whatever Sink persisted survive.
	Crashed     bool
	CrashTicket uint64
}

// runEnv is the driver-independent state of one run: the commit sequencer,
// the (possibly pre-seeded) history, the online monitor, the commit sink
// and the crash bookkeeping. Both drivers funnel every merged event through
// feed, which is where persistence, the injected crash and the monitor
// observe the run in one place.
type runEnv struct {
	cfg       *Config
	seq       atomic.Uint64
	stop      atomic.Bool
	h         *history.History
	mon       check.Monitor
	violation *check.WindowViolation
	crashed   bool
	crashTick uint64
	sinkOpen  bool
}

func newRunEnv(cfg *Config) (*runEnv, error) {
	env := &runEnv{cfg: cfg, sinkOpen: cfg.Sink != nil}
	env.seq.Store(cfg.StartSeq)
	// MonitorNone and NoMonitor both mean "record only": the monitor stays
	// nil so the reporting path keeps its monitoring-disabled shape instead
	// of dressing a Null monitor's empty verdict up as a trend.
	if !cfg.NoMonitor && cfg.MonitorSpec.Kind != check.MonitorNone {
		mon, err := check.NewMonitor(cfg.MonitorSpec, cfg.Object.Spec(), cfg.Monitor)
		if err != nil {
			return nil, err
		}
		env.mon = mon
	}
	h := cfg.History
	if h == nil {
		h = history.New()
	}
	h.Reserve(h.Len() + 2*cfg.Clients*cfg.Ops)
	env.h = h
	// Prime the monitor with the recovered prefix so window accounting and
	// commit-order state span the crash cut. A violation here means the
	// recovered log itself fails to t-stabilize — surfaced before any new
	// client runs.
	if env.mon != nil {
		for i := 0; i < h.Len(); i++ {
			v, err := env.mon.Feed(h.Event(i))
			if err != nil {
				env.mon.Abort()
				return nil, fmt.Errorf("live: priming monitor with recovered history: %w", err)
			}
			if v != nil {
				env.mon.Abort()
				return nil, fmt.Errorf("live: recovered history violates %d-linearizability in window [%d,%d)",
					v.MaxT, v.Start, v.End)
			}
		}
	}
	return env, nil
}

// abortMon releases monitor resources on every exit path. Abort after a
// normal Finish is a no-op, so this is safe to defer unconditionally; it is
// what keeps a pipelined monitor's workers from outliving an early return
// (client error, crash, violation) — campaigns run many cells per process.
func (env *runEnv) abortMon() {
	if env.mon != nil {
		env.mon.Abort()
	}
}

// feed observes one merged event at its merge position: persist first (a
// commit is durable before anything else sees it), then the injected crash
// (the crash commit IS durable — what a real machine loses is everything
// after its last synced frame, injected separately via WAL corruption),
// then the online monitor.
func (env *runEnv) feed(e history.Event, pos uint64) error {
	if env.sinkOpen {
		if err := env.cfg.Sink.Append(e, pos); err != nil {
			return err
		}
	}
	if f := env.cfg.Faults; f != nil && f.CrashAtCommit > 0 &&
		e.Kind == history.KindRespond && pos >= f.CrashAtCommit {
		env.crashed, env.crashTick = true, pos
		env.stop.Store(true)
		return errCrash
	}
	if env.mon != nil {
		v, err := env.mon.Feed(e)
		if err != nil {
			return err
		}
		if v != nil {
			env.violation = v
			env.stop.Store(true)
			return errStopMerge
		}
	}
	return nil
}

func (env *runEnv) closeSink() error {
	if !env.sinkOpen {
		return nil
	}
	env.sinkOpen = false
	return env.cfg.Sink.Close()
}

// finish runs the monitor's final window (skipped after a crash — the
// partial window died with the process) and assembles the Result.
func (env *runEnv) finish(clientOps []int, elapsed time.Duration, lats [][]int64) (*Result, error) {
	if env.mon != nil && env.violation == nil && !env.crashed {
		v, err := env.mon.Finish()
		if err != nil {
			return nil, err
		}
		env.violation = v
	}
	if err := env.closeSink(); err != nil {
		return nil, err
	}
	res := &Result{
		History:     env.h,
		ClientOps:   clientOps,
		Elapsed:     elapsed,
		Violation:   env.violation,
		Stopped:     env.violation != nil,
		Crashed:     env.crashed,
		CrashTicket: env.crashTick,
	}
	for _, n := range clientOps {
		res.Ops += n
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	if env.mon != nil {
		res.Verdict = env.mon.Verdict()
	}
	res.LatP50, res.LatP95, res.LatP99, res.LatMax = percentiles(lats)
	return res, nil
}

// clientError carries the victim's id so aggregated diagnostics name it.
type clientError struct {
	client int
	err    error
}

// joinClientErrors aggregates every client's failure (sorted by client id)
// instead of first-error-wins, so a multi-client incident names all
// victims.
func joinClientErrors(cerrs []clientError) error {
	if len(cerrs) == 0 {
		return nil
	}
	sort.SliceStable(cerrs, func(i, j int) bool { return cerrs[i].client < cerrs[j].client })
	errs := make([]error, len(cerrs))
	for i, ce := range cerrs {
		errs[i] = ce.err
	}
	return errors.Join(errs...)
}

// Run executes one live stress run: Clients goroutines apply Ops operations
// each to the shared Object, per-client shards record invocation stamps and
// commit tickets, and the merging loop feeds the growing history to the
// commit sink and the online monitor. A monitor violation stops the clients
// and returns with the offending window (see Shrink for what to do with
// it); an injected crash stops the run with Result.Crashed set — recover
// the WAL with wal.Recover + Resume to continue.
func Run(cfg Config) (*Result, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	env, err := newRunEnv(&cfg)
	if err != nil {
		if cfg.Sink != nil {
			cfg.Sink.Close()
		}
		return nil, err
	}
	defer env.abortMon()
	if cfg.Serial {
		return runSerial(&cfg, env)
	}
	defer env.closeSink()

	shards := make([]*Shard, cfg.Clients)
	lats := make([][]int64, cfg.Clients)
	clientOps := make([]int, cfg.Clients)
	for c := range shards {
		shards[c] = NewShard(2 * cfg.Ops)
		lats[c] = make([]int64, 0, cfg.Ops/cfg.LatencySample+1)
	}

	var errMu sync.Mutex
	var cerrs []clientError
	fail := func(client int, err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		cerrs = append(cerrs, clientError{client, err})
		errMu.Unlock()
		env.stop.Store(true)
	}
	// active/stalled let a stalled client detect that nobody is left to
	// move the commit ticket past its window: when every still-running
	// client is stalled (or it is the last one), waiting would deadlock, so
	// the stall expires.
	var active, stalled atomic.Int64
	active.Store(int64(cfg.Clients))

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			defer active.Add(-1)
			defer shards[c].Finish()
			r := rand.New(rand.NewSource(cfg.Seed ^ int64(c+1)*0x5DEECE66D))
			sh := shards[c]
			proc := cfg.ProcBase + c
			var interval time.Duration
			if cfg.Rate > 0 {
				interval = time.Duration(float64(time.Second) / cfg.Rate)
			}
			for i := 0; i < cfg.Ops; i++ {
				if env.stop.Load() {
					return
				}
				if f := cfg.Faults; f != nil {
					if j := f.Jitter(cfg.Seed, c, i); j > 0 {
						time.Sleep(time.Duration(j) * time.Microsecond)
					}
					if target := f.StallTarget(c, env.seq.Load()); target > 0 {
						stalled.Add(1)
						for env.seq.Load() < target && !env.stop.Load() &&
							stalled.Load() < active.Load() {
							time.Sleep(10 * time.Microsecond)
						}
						stalled.Add(-1)
						if env.stop.Load() {
							return
						}
					}
				}
				op := cfg.Gen(c, i, r)
				// Timestamps stay off the hot path: closed-loop ops take one
				// only when sampled; open-loop ops know their scheduled start
				// for free.
				sample := i%cfg.LatencySample == 0
				var t0 time.Time
				if interval > 0 {
					t0 = start.Add(time.Duration(i) * interval)
					if d := time.Until(t0); d > 0 {
						time.Sleep(d)
					}
				} else if sample {
					t0 = time.Now()
				}
				if !sh.PushInvoke(env.seq.Load(), op) {
					fail(c, fmt.Errorf("live: client %d shard overflow", c))
					return
				}
				resp, ticket, err := cfg.Object.Apply(proc, op, &env.seq)
				if err != nil {
					fail(c, fmt.Errorf("live: client %d op %d (ticket %d): %w", c, i, env.seq.Load(), err))
					return
				}
				if !sh.PushCommit(ticket, resp, op) {
					fail(c, fmt.Errorf("live: client %d shard overflow", c))
					return
				}
				clientOps[c]++
				if sample {
					lats[c] = append(lats[c], int64(time.Since(t0)))
				}
			}
		}(c)
	}

	clientsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(clientsDone)
	}()

	// Merge-and-monitor loop (runs on this goroutine).
	m := NewMerger(cfg.Object.Name(), cfg.ProcBase, shards)
	done := false
	for {
		if _, err := m.Drain(env.h, env.feed); err != nil && err != errStopMerge && err != errCrash {
			env.stop.Store(true)
			<-clientsDone
			return nil, err
		}
		if env.violation != nil || env.crashed || done {
			break
		}
		select {
		case <-clientsDone:
			// One final drain after every shard finished.
			done = true
		default:
			time.Sleep(100 * time.Microsecond)
		}
	}
	<-clientsDone
	elapsed := time.Since(start)
	if err := joinClientErrors(cerrs); err != nil {
		return nil, err
	}
	return env.finish(clientOps, elapsed, lats)
}

// runSerial drives the clients round-robin on the calling goroutine. With
// no goroutine races left, a fixed seed determines the merged history —
// and any WAL written through the sink — byte for byte across reruns,
// which is the mode crash-recovery acceptance pins down. Fault semantics
// carry over deterministically: jitter defers a client's turn by a pure
// (seed, client, op) draw capped at 8 turns, a stalled client skips its
// turns while the commit ticket is inside the window (the lowest-indexed
// unfinished client is forced onward when everyone left is stalled), and
// crash-at-K stops the run exactly at commit K. Rate is ignored —
// open-loop pacing is meaningless without concurrency.
func runSerial(cfg *Config, env *runEnv) (*Result, error) {
	defer env.closeSink()

	lats := make([][]int64, cfg.Clients)
	clientOps := make([]int, cfg.Clients)
	rngs := make([]*rand.Rand, cfg.Clients)
	for c := range rngs {
		rngs[c] = rand.New(rand.NewSource(cfg.Seed ^ int64(c+1)*0x5DEECE66D))
		lats[c] = make([]int64, 0, cfg.Ops/cfg.LatencySample+1)
	}
	next := make([]int, cfg.Clients)   // per-client next op index
	wait := make([]int, cfg.Clients)   // jitter turns left before the next op
	armed := make([]bool, cfg.Clients) // jitter drawn for the pending op
	objName := cfg.Object.Name()
	start := time.Now()
	remaining := cfg.Clients * cfg.Ops
	forced := -1
	var runErr error

outer:
	for remaining > 0 {
		progress := false
		for c := 0; c < cfg.Clients; c++ {
			i := next[c]
			if i >= cfg.Ops {
				continue
			}
			if wait[c] > 0 {
				wait[c]--
				progress = true
				continue
			}
			if f := cfg.Faults; f != nil {
				if !armed[c] {
					armed[c] = true
					if j := f.Jitter(cfg.Seed, c, i); j > 0 {
						wait[c] = min(j, 8)
						progress = true
						continue
					}
				}
				if c != forced {
					if target := f.StallTarget(c, env.seq.Load()); target > 0 {
						continue
					}
				}
			}
			forced = -1
			op := cfg.Gen(c, i, rngs[c])
			sample := i%cfg.LatencySample == 0
			var t0 time.Time
			if sample {
				t0 = time.Now()
			}
			proc := cfg.ProcBase + c
			stamp := env.seq.Load()
			if err := env.h.Invoke(proc, objName, op); err != nil {
				runErr = fmt.Errorf("live: serial merge: %w", err)
				break outer
			}
			if err := env.feed(env.h.Event(env.h.Len()-1), stamp); err != nil {
				if err != errStopMerge && err != errCrash {
					runErr = err
				}
				break outer
			}
			resp, ticket, err := cfg.Object.Apply(proc, op, &env.seq)
			if err != nil {
				runErr = fmt.Errorf("live: client %d op %d (ticket %d): %w", c, i, env.seq.Load(), err)
				break outer
			}
			if err := env.h.Respond(proc, resp); err != nil {
				runErr = fmt.Errorf("live: serial merge: %w", err)
				break outer
			}
			if err := env.feed(env.h.Event(env.h.Len()-1), ticket); err != nil {
				if err != errStopMerge && err != errCrash {
					runErr = err
				}
				break outer
			}
			next[c] = i + 1
			armed[c] = false
			remaining--
			clientOps[c]++
			if sample {
				lats[c] = append(lats[c], int64(time.Since(t0)))
			}
			progress = true
		}
		if !progress {
			// Every unfinished client is stalled; expire the earliest stall
			// deterministically (mirrors the goroutine driver's all-stalled
			// escape) so the run cannot livelock.
			forced = -1
			for c := range next {
				if next[c] < cfg.Ops {
					forced = c
					break
				}
			}
			if forced < 0 {
				break
			}
		}
	}
	elapsed := time.Since(start)
	if runErr != nil {
		return nil, runErr
	}
	return env.finish(clientOps, elapsed, lats)
}

// errStopMerge aborts the merge loop when the monitor flags a violation;
// errCrash aborts it at the injected crash commit.
var (
	errStopMerge = fmt.Errorf("live: stop merge")
	errCrash     = fmt.Errorf("live: injected crash")
)

// percentiles merges the sampled latencies and returns p50/p95/p99/max.
func percentiles(lats [][]int64) (p50, p95, p99, max time.Duration) {
	var all []int64
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return 0, 0, 0, 0
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(all)-1))
		return time.Duration(all[i])
	}
	return at(0.50), at(0.95), at(0.99), time.Duration(all[len(all)-1])
}

// Replay re-executes a merged history serially against a fresh instance of
// obj, re-deriving every response from the recorded commit order, and
// returns the rebuilt history. For a correct (commit-deterministic) object
// the result is byte-identical to the input — the reproducibility contract
// of the package: seed plus recorded commit order determine the run. A
// mismatch means the object is not a deterministic function of its commit
// order (state outside the linearization discipline), reported as an error
// by Verify. Fault injection never breaks the contract: stalls and jitter
// only reshape the commit order the history already records, and a crash
// only truncates it.
func Replay(obj Object, h *history.History) (*history.History, error) {
	fresh, err := tryFresh(obj)
	if err != nil {
		return nil, err
	}
	var seq atomic.Uint64
	out := history.New()
	out.Reserve(h.Len())
	pending := make(map[int]spec.Op)
	for i := 0; i < h.Len(); i++ {
		e := h.Event(i)
		if e.Kind == history.KindInvoke {
			pending[e.Proc] = e.Op
			if err := out.Invoke(e.Proc, e.Obj, e.Op); err != nil {
				return nil, fmt.Errorf("live: replay event %d: %w", i, err)
			}
			continue
		}
		op, ok := pending[e.Proc]
		if !ok {
			return nil, fmt.Errorf("live: replay event %d: response without invocation", i)
		}
		delete(pending, e.Proc)
		resp, _, err := fresh.Apply(e.Proc, op, &seq)
		if err != nil {
			return nil, fmt.Errorf("live: replay event %d: %w", i, err)
		}
		if err := out.Respond(e.Proc, resp); err != nil {
			return nil, fmt.Errorf("live: replay event %d: %w", i, err)
		}
	}
	return out, nil
}

// Verify replays h against a fresh obj and reports whether the rebuilt
// history is byte-identical (via the canonical history fingerprint).
func Verify(obj Object, h *history.History) (bool, error) {
	replayed, err := Replay(obj, h)
	if err != nil {
		return false, err
	}
	a := h.AppendFingerprint(nil)
	b := replayed.AppendFingerprint(nil)
	return string(a) == string(b), nil
}
