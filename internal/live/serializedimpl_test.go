package live

import (
	"sync/atomic"
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/spec"
)

// TestSerializedImplCASCounter runs the model checker's CAS counter under
// real goroutine concurrency: the monitor must stay clean and the run must
// replay byte-identically from its commit order.
func TestSerializedImplCASCounter(t *testing.T) {
	obj, err := NewSerializedImpl(counter.CAS{}, 4, nil, 1, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Object:  obj,
		Clients: 4,
		Ops:     200,
		Seed:    1,
		Monitor: check.IncrementalConfig{Stride: 512},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("correct counter flagged: %v", res.Violation)
	}
	if res.Ops != 800 {
		t.Fatalf("completed %d ops, want 800", res.Ops)
	}
	same, err := Verify(obj, res.History)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("clean run did not replay byte-identically")
	}
}

// TestSerializedImplEventualReplayDeterministic pins the reproducibility
// contract for implementations over eventually linearizable bases: the
// weak-consistency response choices are pure functions of (seed, ticket,
// step), so the recorded commit order determines the whole run.
func TestSerializedImplEventualReplayDeterministic(t *testing.T) {
	obj, err := NewSerializedImpl(counter.Warmup{Threshold: 3}, 3,
		base.SamePolicy(base.Window{K: 6}), 7, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Object:  obj,
		Clients: 3,
		Ops:     50,
		Seed:    7,
		Monitor: check.IncrementalConfig{Stride: 512, MaxT: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	same, err := Verify(obj, res.History)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("eventually linearizable run did not replay byte-identically")
	}
}

// TestSerializedImplRejectsUnknownClient pins the client-range check.
func TestSerializedImplRejectsUnknownClient(t *testing.T) {
	obj, err := NewSerializedImpl(counter.CAS{}, 2, nil, 1, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var seq atomic.Uint64
	if _, _, err := obj.Apply(2, spec.MakeOp(spec.MethodFetchInc), &seq); err == nil {
		t.Fatal("client 2 of 2 accepted")
	}
}
