package registry

import (
	"strings"
	"testing"
)

// TestFaults pins the fault-spec vocabulary: none, presets, raw grammar,
// and loud rejection with the known names listed.
func TestFaults(t *testing.T) {
	for _, none := range []string{"", "none", " none "} {
		sp, err := Faults(none)
		if err != nil || !sp.Zero() {
			t.Errorf("Faults(%q) = %v, %v; want zero spec", none, sp, err)
		}
	}
	for _, name := range []string{"stall-one", "stall-storm", "jitter-light", "jitter-heavy", "chaos"} {
		sp, err := Faults(name)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if sp.Zero() {
			t.Errorf("preset %q resolves to the zero spec", name)
		}
		// Preset grammar reparses to itself (canonical).
		if again, err := Faults(sp.String()); err != nil || again.String() != sp.String() {
			t.Errorf("preset %q grammar %q not canonical: %v", name, sp.String(), err)
		}
	}
	sp, err := Faults("crash:100,jitter:2")
	if err != nil || sp.CrashAtCommit != 100 || sp.JitterMax != 2 {
		t.Errorf("grammar resolution = %+v, %v", sp, err)
	}
	if err := ValidateFaults("chaos"); err != nil {
		t.Errorf("ValidateFaults(chaos): %v", err)
	}
	err = ValidateFaults("explode:9")
	if err == nil || !strings.Contains(err.Error(), "chaos") || !strings.Contains(err.Error(), "stall:C@T+D") {
		t.Errorf("unknown fault spec error does not list the vocabulary: %v", err)
	}
}
