package registry

import (
	"fmt"
	"sort"
	"strings"

	"github.com/elin-go/elin/internal/faults"
)

// netFaultPresets names canned network fault specs for the serve engine.
// Each value is plain network-faults grammar, so a preset is exactly
// shorthand for spelling it out. Trigger tickets are sized to fire inside
// the small op budgets the smoke grids run (a few hundred commits).
var netFaultPresets = map[string]string{
	// drop-one: client 0 loses its connection once, shortly after warmup.
	"drop-one": "drop:0@40",
	// flaky-net: two staggered drops, one slow link, one partition-and-heal
	// — the retry/backoff/resume diet.
	"flaky-net": "drop:0@40,drop:1@80,slow:2:200,partition:120+40",
	// partition-heal: one symmetric split that heals on its own.
	"partition-heal": "partition:60+40",
	// net-chaos: everything at once — the nightly network chaos diet.
	"net-chaos": "drop:0@30,drop:1@60,drop:2@90,slow:0:100,slow:3:300,partition:150+50",
}

// NetFaultNames lists the network fault-spec vocabulary: the preset names
// plus the grammar templates ParseNet accepts.
func NetFaultNames() []string {
	names := make([]string, 0, len(netFaultPresets)+4)
	for n := range netFaultPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return append([]string{"none"}, append(names,
		"drop:C@T", "partition:T+D", "slow:C:LAT")...)
}

// NetFaults resolves a network fault spec by name: "" or "none" (no
// injection, nil spec), a preset from NetFaultNames, or the grammar
// directly ("drop:0@40,slow:2:200,partition:120+40").
func NetFaults(name string) (*faults.NetSpec, error) {
	name = strings.TrimSpace(name)
	if grammar, ok := netFaultPresets[name]; ok {
		return faults.ParseNet(grammar)
	}
	sp, err := faults.ParseNet(name)
	if err != nil {
		return nil, fmt.Errorf("registry: unknown network fault spec %q (known: %s): %w",
			name, strings.Join(NetFaultNames(), ", "), err)
	}
	return sp, nil
}

// ValidateNetFaults checks a network fault-spec name without constructing
// anything — the syntax-only resolution campaign sweep specs validate
// against.
func ValidateNetFaults(name string) error {
	_, err := NetFaults(name)
	return err
}
