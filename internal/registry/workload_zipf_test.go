package registry

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/spec"
)

// The zipf generator must be a pure function of seed: the same name and
// dimensions build the same workload every time, and the live generator
// produces identical streams from identically-seeded rands.
func TestZipfWorkloadPureFunctionOfSeed(t *testing.T) {
	impl, err := Impl("el-register")
	if err != nil {
		t.Fatal(err)
	}
	f := func(procsRaw, opsRaw uint8, seed int64) bool {
		procs := int(procsRaw%4) + 1
		ops := int(opsRaw%16) + 1
		a, err := WorkloadByName("zipf:1.2", impl, procs, ops)
		if err != nil {
			return false
		}
		b, err := WorkloadByName("zipf:1.2", impl, procs, ops)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(a, b) {
			return false
		}
		gen, err := OpGenByName("zipf:1.2", impl.Spec())
		if err != nil {
			return false
		}
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		for i := 0; i < ops; i++ {
			if gen(0, i, r1) != gen(0, i, r2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// The skew must bite: rank 1 is the hottest write value, and heavier
// exponents concentrate more mass on it.
func TestZipfWorkloadSkewsValues(t *testing.T) {
	impl, err := Impl("el-register")
	if err != nil {
		t.Fatal(err)
	}
	count := func(name string) map[int64]int {
		w, err := WorkloadByName(name, impl, 4, 400)
		if err != nil {
			t.Fatal(err)
		}
		c := map[int64]int{}
		for _, ops := range w {
			for _, op := range ops {
				if op.Method == spec.MethodWrite {
					c[op.Args[0]]++
				}
			}
		}
		return c
	}
	mild, heavy := count("zipf:1.1"), count("zipf:3")
	if len(mild) == 0 || len(heavy) == 0 {
		t.Fatal("zipf workloads produced no writes")
	}
	for v, n := range mild {
		if v < 1 || v > zipfValues {
			t.Fatalf("zipf write value %d outside [1,%d]", v, zipfValues)
		}
		if n > mild[1] {
			t.Fatalf("zipf:1.1 value %d (%d writes) hotter than rank 1 (%d)", v, n, mild[1])
		}
	}
	total := 0
	for _, n := range heavy {
		total += n
	}
	if 2*heavy[1] < total {
		t.Fatalf("zipf:3 rank 1 got %d of %d writes, want a majority", heavy[1], total)
	}
}

// Non-register families still build: the axis composes across impl
// families by falling back to the default operation.
func TestZipfWorkloadFallsBackForSingleOpTypes(t *testing.T) {
	impl, err := Impl("slog-counter")
	if err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadByName("zipf", impl, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, ops := range w {
		for _, op := range ops {
			if op.Method != spec.MethodFetchInc {
				t.Fatalf("counter zipf workload produced %v", op)
			}
		}
	}
	if err := ValidateWorkload("zipf:2.5"); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"zipf:0", "zipf:-1", "zipf:x", "zipf:99"} {
		if err := ValidateWorkload(bad); err == nil {
			t.Errorf("ValidateWorkload(%q) accepted", bad)
		}
	}
}
