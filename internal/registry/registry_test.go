package registry

import (
	"testing"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

func TestImplResolvesAllNames(t *testing.T) {
	names := []string{
		"cas-counter", "sloppy-counter", "el-sloppy-counter", "warmup-counter:3",
		"warmup-counter", "junk-counter", "announced-junk", "announced-cas",
		"el-consensus", "reg-consensus", "el-testset", "cas-testset",
		"el-register", "localcopy-register", "base-consensus",
	}
	for _, name := range names {
		impl, err := Impl(name)
		if err != nil {
			t.Errorf("Impl(%q): %v", name, err)
			continue
		}
		if err := machine.Validate(impl, 2); err != nil {
			t.Errorf("Impl(%q) invalid: %v", name, err)
		}
	}
}

func TestImplErrors(t *testing.T) {
	for _, name := range []string{"nosuch", "warmup-counter:abc", ""} {
		if _, err := Impl(name); err == nil {
			t.Errorf("Impl(%q) accepted", name)
		}
	}
}

func TestImplNamesSorted(t *testing.T) {
	names := ImplNames()
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}

func TestDefaultOpAndWorkload(t *testing.T) {
	cons, err := Impl("el-consensus")
	if err != nil {
		t.Fatal(err)
	}
	if op := DefaultOp(cons, 2); op.Method != spec.MethodPropose || op.Args[0] != 3 {
		t.Errorf("consensus default op = %v", op)
	}
	ts, err := Impl("el-testset")
	if err != nil {
		t.Fatal(err)
	}
	if op := DefaultOp(ts, 0); op.Method != spec.MethodTestSet {
		t.Errorf("testset default op = %v", op)
	}
	reg, err := Impl("el-register")
	if err != nil {
		t.Fatal(err)
	}
	if op := DefaultOp(reg, 0); op.Method != spec.MethodWrite {
		t.Errorf("register p0 default op = %v", op)
	}
	if op := DefaultOp(reg, 1); op.Method != spec.MethodRead {
		t.Errorf("register p1 default op = %v", op)
	}
	cnt, err := Impl("cas-counter")
	if err != nil {
		t.Fatal(err)
	}
	w := Workload(cnt, 3, 2)
	if len(w) != 3 || len(w[1]) != 2 || w[1][0].Method != spec.MethodFetchInc {
		t.Errorf("workload = %v", w)
	}
}

func TestScheduler(t *testing.T) {
	for _, name := range []string{"", "rr", "roundrobin", "random", "solo", "solo:2", "burst", "burst:16"} {
		s, err := Scheduler(name)
		if err != nil || s == nil {
			t.Errorf("Scheduler(%q): %v", name, err)
		}
	}
	for _, name := range []string{"zap", "solo:x", "burst:x"} {
		if _, err := Scheduler(name); err == nil {
			t.Errorf("Scheduler(%q) accepted", name)
		}
	}
}

func TestChooser(t *testing.T) {
	for _, name := range []string{"", "true", "stale", "mix", "mix:0.3"} {
		c, err := Chooser(name)
		if err != nil || c == nil {
			t.Errorf("Chooser(%q): %v", name, err)
		}
	}
	for _, name := range []string{"zap", "mix:x"} {
		if _, err := Chooser(name); err == nil {
			t.Errorf("Chooser(%q) accepted", name)
		}
	}
}

func TestPolicy(t *testing.T) {
	for _, name := range []string{"", "immediate", "never", "window", "window:9"} {
		p, err := Policy(name)
		if err != nil || p == nil {
			t.Errorf("Policy(%q): %v", name, err)
		}
	}
	p, err := Policy("window:9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Stabilized(8) || !p.Stabilized(9) {
		t.Error("window:9 boundary wrong")
	}
	for _, name := range []string{"zap", "window:x"} {
		if _, err := Policy(name); err == nil {
			t.Errorf("Policy(%q) accepted", name)
		}
	}
}

func TestTypeByName(t *testing.T) {
	cases := []struct {
		name string
		typ  string
		init spec.State
	}{
		{"register", "register", int64(0)},
		{"register:7", "register", int64(7)},
		{"fetchinc:3", "fetchinc", int64(3)},
		{"consensus", "consensus", spec.NoValue},
		{"testset", "testset", int64(0)},
		{"cas:2", "cas", int64(2)},
		{"queue", "queue", ""},
		{"maxregister:5", "maxregister", int64(5)},
	}
	for _, tc := range cases {
		obj, err := TypeByName(tc.name)
		if err != nil {
			t.Errorf("TypeByName(%q): %v", tc.name, err)
			continue
		}
		if obj.Type.Name() != tc.typ {
			t.Errorf("TypeByName(%q) type = %s", tc.name, obj.Type.Name())
		}
		if obj.Init != tc.init {
			t.Errorf("TypeByName(%q) init = %v, want %v", tc.name, obj.Init, tc.init)
		}
	}
	for _, name := range []string{"zap", "register:x"} {
		if _, err := TypeByName(name); err == nil {
			t.Errorf("TypeByName(%q) accepted", name)
		}
	}
}
