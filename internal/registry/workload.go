package registry

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// WorkloadNames lists the registered workload names.
func WorkloadNames() []string {
	return []string{"default", "rw:P", "uniform:OP"}
}

// opAliases maps the short operation names the workload vocabulary accepts
// to canonical method names; anything else goes through spec.ParseOp, so
// "write(3)" and friends work too.
var opAliases = map[string]string{
	"inc":      spec.MethodFetchInc,
	"fetchinc": spec.MethodFetchInc,
	"read":     spec.MethodRead,
	"testset":  spec.MethodTestSet,
}

// parseWorkloadOp resolves the operation of a "uniform:OP" workload.
func parseWorkloadOp(s string) (spec.Op, error) {
	if m, ok := opAliases[s]; ok {
		return spec.MakeOp(m), nil
	}
	op, err := spec.ParseOp(s)
	if err != nil {
		return spec.Op{}, fmt.Errorf("registry: bad workload operation %q: %w", s, err)
	}
	return op, nil
}

// WorkloadByName builds an ops-per-process workload for the simulation and
// exploration engines:
//
//	default       per-process operations chosen by the implemented type
//	              (propose(p+1) for consensus, testset, register r/w mix,
//	              fetchinc otherwise)
//	uniform:OP    every process repeats OP ("inc", "read", "write(3)", ...)
//	rw:P          register read/write mix: process p writes p*ops+k+1 with
//	              probability P% (seeded per process), reads otherwise
func WorkloadByName(name string, impl machine.Impl, procs, ops int) ([][]spec.Op, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "default":
		if hasArg {
			return nil, fmt.Errorf("registry: workload %q takes no parameter (got %q)", kind, arg)
		}
		return Workload(impl, procs, ops), nil
	case "uniform":
		if !hasArg || arg == "" {
			return nil, fmt.Errorf("registry: workload uniform needs an operation (uniform:OP)")
		}
		op, err := parseWorkloadOp(arg)
		if err != nil {
			return nil, err
		}
		w := make([][]spec.Op, procs)
		for p := range w {
			for k := 0; k < ops; k++ {
				w[p] = append(w[p], op)
			}
		}
		return w, nil
	case "rw":
		pct, err := workloadPct(arg, hasArg)
		if err != nil {
			return nil, err
		}
		w := make([][]spec.Op, procs)
		for p := range w {
			r := rand.New(rand.NewSource(int64(p) + 1))
			for k := 0; k < ops; k++ {
				if r.Intn(100) < pct {
					w[p] = append(w[p], spec.MakeOp1(spec.MethodWrite, int64(p*ops+k+1)))
				} else {
					w[p] = append(w[p], spec.MakeOp(spec.MethodRead))
				}
			}
		}
		return w, nil
	default:
		return nil, fmt.Errorf("registry: unknown workload %q (known: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
}

// workloadPct parses the write percentage of an "rw:P" workload.
func workloadPct(arg string, hasArg bool) (int, error) {
	if !hasArg {
		return 30, nil
	}
	var pct int
	if _, err := fmt.Sscanf(arg, "%d", &pct); err != nil || pct < 0 || pct > 100 {
		return 0, fmt.Errorf("registry: bad rw write percentage %q (want 0..100)", arg)
	}
	return pct, nil
}

// OpGenByName builds the per-client operation generator the live engine
// uses for a named workload against an object of the given specification.
// The vocabulary matches WorkloadByName, so one scenario drives the same
// operation mix on every engine.
func OpGenByName(name string, obj spec.Object) (live.OpGen, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "default":
		if hasArg {
			return nil, fmt.Errorf("registry: workload %q takes no parameter (got %q)", kind, arg)
		}
		return defaultOpGen(obj), nil
	case "uniform":
		if !hasArg || arg == "" {
			return nil, fmt.Errorf("registry: workload uniform needs an operation (uniform:OP)")
		}
		op, err := parseWorkloadOp(arg)
		if err != nil {
			return nil, err
		}
		return func(int, int, *rand.Rand) spec.Op { return op }, nil
	case "rw":
		pct, err := workloadPct(arg, hasArg)
		if err != nil {
			return nil, err
		}
		return live.RegisterMixGen(float64(pct)/100, 16), nil
	default:
		return nil, fmt.Errorf("registry: unknown workload %q (known: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
}

// defaultOpGen mirrors DefaultOp for the live regime: a generator the
// implemented type can always answer.
func defaultOpGen(obj spec.Object) live.OpGen {
	switch obj.Type.(type) {
	case spec.Consensus:
		return func(client, _ int, _ *rand.Rand) spec.Op {
			return spec.MakeOp1(spec.MethodPropose, int64(client+1))
		}
	case spec.TestSet:
		return func(int, int, *rand.Rand) spec.Op { return spec.MakeOp(spec.MethodTestSet) }
	case spec.Register:
		return live.RegisterMixGen(0.3, 16)
	default:
		return live.FetchIncGen()
	}
}

// EngineNames lists the registered scenario-engine names.
func EngineNames() []string {
	return []string{"explore", "live", "sim"}
}

// Engine canonicalizes a scenario-engine name ("" defaults to "sim").
func Engine(name string) (string, error) {
	switch name {
	case "":
		return "sim", nil
	case "explore", "sim", "live":
		return name, nil
	default:
		return "", fmt.Errorf("registry: unknown engine %q (known: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
}
