package registry

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// WorkloadNames lists the registered workload names.
func WorkloadNames() []string {
	return []string{"default", "rw:P", "uniform:OP", "zipf:S"}
}

// opAliases maps the short operation names the workload vocabulary accepts
// to canonical method names; anything else goes through spec.ParseOp, so
// "write(3)" and friends work too.
var opAliases = map[string]string{
	"inc":      spec.MethodFetchInc,
	"fetchinc": spec.MethodFetchInc,
	"read":     spec.MethodRead,
	"testset":  spec.MethodTestSet,
}

// parseWorkloadOp resolves the operation of a "uniform:OP" workload.
func parseWorkloadOp(s string) (spec.Op, error) {
	if m, ok := opAliases[s]; ok {
		return spec.MakeOp(m), nil
	}
	op, err := spec.ParseOp(s)
	if err != nil {
		return spec.Op{}, fmt.Errorf("registry: bad workload operation %q: %w", s, err)
	}
	return op, nil
}

// workloadSpec is a parsed workload name: the one syntax layer under
// WorkloadByName, OpGenByName and ValidateWorkload, so the three cannot
// drift when a workload kind is added.
type workloadSpec struct {
	kind string  // "default" | "uniform" | "rw" | "zipf"
	op   spec.Op // uniform only
	pct  int     // rw only: write percentage
	skew float64 // zipf only: the distribution exponent
}

// parseWorkload resolves a workload name's syntax (no implementation
// needed):
//
//	default       per-process operations chosen by the implemented type
//	              (propose(p+1) for consensus, testset, register r/w mix,
//	              fetchinc otherwise)
//	uniform:OP    every process repeats OP ("inc", "read", "write(3)", ...)
//	rw:P          register read/write mix with write probability P%
//	zipf:S        skewed mix: register writes draw zipf-ranked values with
//	              exponent S (single-op types fall back to the default op)
func parseWorkload(name string) (workloadSpec, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "default":
		if hasArg {
			return workloadSpec{}, fmt.Errorf("registry: workload %q takes no parameter (got %q)", kind, arg)
		}
		return workloadSpec{kind: "default"}, nil
	case "uniform":
		if !hasArg || arg == "" {
			return workloadSpec{}, fmt.Errorf("registry: workload uniform needs an operation (uniform:OP)")
		}
		op, err := parseWorkloadOp(arg)
		if err != nil {
			return workloadSpec{}, err
		}
		return workloadSpec{kind: "uniform", op: op}, nil
	case "rw":
		pct, err := workloadPct(arg, hasArg)
		if err != nil {
			return workloadSpec{}, err
		}
		return workloadSpec{kind: "rw", pct: pct}, nil
	case "zipf":
		skew := 1.2
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil || v <= 0 || v > 8 {
				return workloadSpec{}, fmt.Errorf("registry: bad zipf skew %q (want a positive exponent, e.g. zipf:1.2)", arg)
			}
			skew = v
		}
		return workloadSpec{kind: "zipf", skew: skew}, nil
	default:
		return workloadSpec{}, fmt.Errorf("registry: unknown workload %q (known: %s)",
			name, strings.Join(WorkloadNames(), ", "))
	}
}

// WorkloadByName builds an ops-per-process workload for the simulation
// and exploration engines (vocabulary: see parseWorkload). rw:P writes
// p*ops+k+1, seeded per process.
func WorkloadByName(name string, impl machine.Impl, procs, ops int) ([][]spec.Op, error) {
	ws, err := parseWorkload(name)
	if err != nil {
		return nil, err
	}
	switch ws.kind {
	case "uniform":
		w := make([][]spec.Op, procs)
		for p := range w {
			for k := 0; k < ops; k++ {
				w[p] = append(w[p], ws.op)
			}
		}
		return w, nil
	case "rw":
		w := make([][]spec.Op, procs)
		for p := range w {
			r := rand.New(rand.NewSource(int64(p) + 1))
			for k := 0; k < ops; k++ {
				if r.Intn(100) < ws.pct {
					w[p] = append(w[p], spec.MakeOp1(spec.MethodWrite, int64(p*ops+k+1)))
				} else {
					w[p] = append(w[p], spec.MakeOp(spec.MethodRead))
				}
			}
		}
		return w, nil
	case "zipf":
		cum := zipfCum(ws.skew)
		w := make([][]spec.Op, procs)
		for p := range w {
			r := rand.New(rand.NewSource(int64(p) + 1))
			for k := 0; k < ops; k++ {
				w[p] = append(w[p], zipfOp(impl.Spec(), cum, p, r))
			}
		}
		return w, nil
	default:
		return Workload(impl, procs, ops), nil
	}
}

// zipfValues is the zipf value domain size (matches the register mix
// generators' value range).
const zipfValues = 16

// zipfCum precomputes the cumulative zipf weight table for exponent s:
// rank k (1-based) has weight 1/k^s. One table serves a whole workload, so
// drawing a value costs one Float64 and a short scan, no allocation.
func zipfCum(s float64) []float64 {
	cum := make([]float64, zipfValues)
	total := 0.0
	for k := 0; k < zipfValues; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cum[k] = total
	}
	return cum
}

// zipfDraw maps one uniform draw u in [0,1) to a 1-based zipf-ranked value.
func zipfDraw(cum []float64, u float64) int64 {
	x := u * cum[len(cum)-1]
	for k, c := range cum {
		if x < c {
			return int64(k + 1)
		}
	}
	return int64(len(cum))
}

// zipfOp draws one operation of the zipf workload. Register-shaped types
// get a 30% write mix whose values are zipf-ranked (rank 1 hottest);
// single-op types fall back to the default operation, so the workload
// axis composes across implementation families. The result is a pure
// function of the rand stream, hence of the per-process seed.
func zipfOp(obj spec.Object, cum []float64, client int, r *rand.Rand) spec.Op {
	switch obj.Type.(type) {
	case spec.Register:
		if r.Intn(100) < 30 {
			return spec.MakeOp1(spec.MethodWrite, zipfDraw(cum, r.Float64()))
		}
		return spec.MakeOp(spec.MethodRead)
	case spec.Consensus:
		return spec.MakeOp1(spec.MethodPropose, int64(client+1))
	case spec.TestSet:
		return spec.MakeOp(spec.MethodTestSet)
	default:
		return spec.MakeOp(spec.MethodFetchInc)
	}
}

// ValidateWorkload checks that a workload name is well-formed without
// resolving an implementation: the syntax-only resolution campaign sweep
// specs use to reject a bad axis value before any cell runs. A name that
// passes here builds on every engine through WorkloadByName/OpGenByName
// (the per-implementation operation choice never fails).
func ValidateWorkload(name string) error {
	_, err := parseWorkload(name)
	return err
}

// workloadPct parses the write percentage of an "rw:P" workload.
func workloadPct(arg string, hasArg bool) (int, error) {
	if !hasArg {
		return 30, nil
	}
	var pct int
	if _, err := fmt.Sscanf(arg, "%d", &pct); err != nil || pct < 0 || pct > 100 {
		return 0, fmt.Errorf("registry: bad rw write percentage %q (want 0..100)", arg)
	}
	return pct, nil
}

// OpGenByName builds the per-client operation generator the live engine
// uses for a named workload against an object of the given specification.
// The vocabulary matches WorkloadByName (one parser underneath), so one
// scenario drives the same operation mix on every engine.
func OpGenByName(name string, obj spec.Object) (live.OpGen, error) {
	ws, err := parseWorkload(name)
	if err != nil {
		return nil, err
	}
	switch ws.kind {
	case "uniform":
		op := ws.op
		return func(int, int, *rand.Rand) spec.Op { return op }, nil
	case "rw":
		return live.RegisterMixGen(float64(ws.pct)/100, 16), nil
	case "zipf":
		cum := zipfCum(ws.skew)
		return func(client, _ int, r *rand.Rand) spec.Op {
			return zipfOp(obj, cum, client, r)
		}, nil
	default:
		return defaultOpGen(obj), nil
	}
}

// defaultOpGen mirrors DefaultOp for the live regime: a generator the
// implemented type can always answer.
func defaultOpGen(obj spec.Object) live.OpGen {
	switch obj.Type.(type) {
	case spec.Consensus:
		return func(client, _ int, _ *rand.Rand) spec.Op {
			return spec.MakeOp1(spec.MethodPropose, int64(client+1))
		}
	case spec.TestSet:
		return func(int, int, *rand.Rand) spec.Op { return spec.MakeOp(spec.MethodTestSet) }
	case spec.Register:
		return live.RegisterMixGen(0.3, 16)
	default:
		return live.FetchIncGen()
	}
}

// EngineNames lists the registered scenario-engine names.
func EngineNames() []string {
	return []string{"explore", "live", "serve", "sim"}
}

// Engine canonicalizes a scenario-engine name ("" defaults to "sim").
func Engine(name string) (string, error) {
	switch name {
	case "":
		return "sim", nil
	case "explore", "sim", "live", "serve":
		return name, nil
	default:
		return "", fmt.Errorf("registry: unknown engine %q (known: %s)",
			name, strings.Join(EngineNames(), ", "))
	}
}
