// Package registry names the built-in implementations, schedulers,
// choosers and stabilization policies so that command-line tools can
// select them by string.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/announce"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/core/localcopy"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Impl resolves an implementation by name. Parameterized names use a colon:
//
//	cas-counter            linearizable fetch&inc from CAS
//	sloppy-counter         register-only counter (weakly consistent, not EL)
//	warmup-counter:K       EL counter answering privately below count K
//	junk-counter           weak-consistency violator (announce-wrapper demo)
//	announced-junk         junk-counter wrapped in the Figure 1 algorithm
//	el-consensus           Proposition 16 consensus over EL registers
//	reg-consensus          the same algorithm over atomic registers
//	el-testset             communication-free EL test&set
//	cas-testset            linearizable test&set from CAS
//	el-register            passthrough over one EL register
//	localcopy-register     Theorem 12 local-copy of el-register
func Impl(name string) (machine.Impl, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	argInt := func(def int64) (int64, error) {
		if !hasArg {
			return def, nil
		}
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("registry: bad parameter %q in %q: %w", arg, name, err)
		}
		return v, nil
	}
	switch base {
	case "cas-counter":
		return counter.CAS{}, nil
	case "sloppy-counter":
		return counter.Sloppy{}, nil
	case "el-sloppy-counter":
		return counter.Sloppy{EventualBases: true}, nil
	case "warmup-counter":
		k, err := argInt(4)
		if err != nil {
			return nil, err
		}
		return counter.Warmup{Threshold: k}, nil
	case "junk-counter":
		return counter.Junk{}, nil
	case "announced-junk":
		return announce.New(counter.Junk{}, announce.FetchIncCodec(), check.Options{})
	case "announced-cas":
		return announce.New(counter.CAS{}, announce.FetchIncCodec(), check.Options{})
	case "el-consensus":
		return elconsensus.Impl{}, nil
	case "reg-consensus":
		return elconsensus.Impl{AtomicBases: true}, nil
	case "el-testset":
		return eltestset.Local{}, nil
	case "cas-testset":
		return eltestset.FromCAS{}, nil
	case "el-register":
		return passthrough.New("el-register", spec.NewObject(spec.Register{}), true), nil
	case "localcopy-register":
		inner := passthrough.New("el-register", spec.NewObject(spec.Register{}), true)
		return localcopy.New(inner, 0)
	case "base-consensus":
		return passthrough.New("base-consensus", spec.NewObject(spec.Consensus{}), false), nil
	default:
		return nil, fmt.Errorf("registry: unknown implementation %q (known: %s)",
			name, strings.Join(ImplNames(), ", "))
	}
}

// ImplNames lists the registered implementation names.
func ImplNames() []string {
	names := []string{
		"cas-counter", "sloppy-counter", "el-sloppy-counter", "warmup-counter:K",
		"junk-counter", "announced-junk", "announced-cas",
		"el-consensus", "reg-consensus", "el-testset", "cas-testset",
		"el-register", "localcopy-register", "base-consensus",
	}
	sort.Strings(names)
	return names
}

// DefaultOp returns the operation a process of the named implementation
// performs, so tools can build uniform workloads: propose(p+1) for
// consensus, testset for test&set, fetchinc otherwise.
func DefaultOp(impl machine.Impl, p int) spec.Op {
	switch impl.Spec().Type.(type) {
	case spec.Consensus:
		return spec.MakeOp1(spec.MethodPropose, int64(p+1))
	case spec.TestSet:
		return spec.MakeOp(spec.MethodTestSet)
	case spec.Register:
		if p%2 == 0 {
			return spec.MakeOp1(spec.MethodWrite, int64(p+1))
		}
		return spec.MakeOp(spec.MethodRead)
	default:
		return spec.MakeOp(spec.MethodFetchInc)
	}
}

// Workload builds an ops-per-process workload using DefaultOp.
func Workload(impl machine.Impl, procs, ops int) [][]spec.Op {
	w := make([][]spec.Op, procs)
	for p := 0; p < procs; p++ {
		for k := 0; k < ops; k++ {
			w[p] = append(w[p], DefaultOp(impl, p))
		}
	}
	return w
}

// Scheduler resolves a scheduler by name: "rr", "random", "solo:P",
// "burst:N".
func Scheduler(name string) (sim.Scheduler, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "rr", "roundrobin":
		return sim.RoundRobin{}, nil
	case "random":
		return sim.Random{}, nil
	case "solo":
		p := 0
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("registry: bad solo process %q: %w", arg, err)
			}
			p = v
		}
		return sim.Solo{P: p}, nil
	case "burst":
		n := 8
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("registry: bad burst phase %q: %w", arg, err)
			}
			n = v
		}
		return sim.Burst{Phase: n}, nil
	default:
		return nil, fmt.Errorf("registry: unknown scheduler %q (rr, random, solo:P, burst:N)", name)
	}
}

// Chooser resolves an eventually-linearizable response chooser by name:
// "true", "stale", "mix:P".
func Chooser(name string) (sim.Chooser, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "true":
		return sim.TrueChooser{}, nil
	case "stale":
		return sim.StaleChooser{}, nil
	case "mix":
		p := 0.5
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("registry: bad mix probability %q: %w", arg, err)
			}
			p = v
		}
		return sim.MixChooser{P: p}, nil
	default:
		return nil, fmt.Errorf("registry: unknown chooser %q (true, stale, mix:P)", name)
	}
}

// Policy resolves a stabilization policy: "immediate", "never",
// "window:K".
func Policy(name string) (base.Policy, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "immediate":
		return base.Immediate(), nil
	case "never":
		return base.Never{}, nil
	case "window":
		k := 4
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("registry: bad window %q: %w", arg, err)
			}
			k = v
		}
		return base.Window{K: k}, nil
	default:
		return nil, fmt.Errorf("registry: unknown policy %q (immediate, never, window:K)", name)
	}
}

// TypeByName resolves a specification type: "register[:init]",
// "fetchinc[:init]", "consensus", "testset", "cas[:init]", "queue",
// "maxregister[:init]".
func TypeByName(name string) (spec.Object, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	initVal := int64(0)
	if hasArg {
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return spec.Object{}, fmt.Errorf("registry: bad initial value %q: %w", arg, err)
		}
		initVal = v
	}
	switch kind {
	case "register":
		return spec.Object{Type: spec.Register{InitVal: initVal}, Init: initVal}, nil
	case "fetchinc":
		return spec.Object{Type: spec.FetchInc{InitVal: initVal}, Init: initVal}, nil
	case "consensus":
		return spec.NewObject(spec.Consensus{}), nil
	case "testset":
		return spec.NewObject(spec.TestSet{}), nil
	case "cas":
		return spec.Object{Type: spec.CAS{InitVal: initVal}, Init: initVal}, nil
	case "queue":
		return spec.NewObject(spec.Queue{}), nil
	case "maxregister":
		return spec.Object{Type: spec.MaxRegister{InitVal: initVal}, Init: initVal}, nil
	default:
		return spec.Object{}, fmt.Errorf("registry: unknown type %q", name)
	}
}
