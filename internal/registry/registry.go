// Package registry names the built-in implementations, schedulers,
// choosers and stabilization policies so that command-line tools can
// select them by string.
package registry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/announce"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/core/localcopy"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/core/stablog"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Impl resolves an implementation by name. Parameterized names use a colon:
//
//	cas-counter            linearizable fetch&inc from CAS
//	sloppy-counter         register-only counter (weakly consistent, not EL)
//	warmup-counter:K       EL counter answering privately below count K
//	junk-counter           weak-consistency violator (announce-wrapper demo)
//	announced-junk         junk-counter wrapped in the Figure 1 algorithm
//	el-consensus           Proposition 16 consensus over EL registers
//	reg-consensus          the same algorithm over atomic registers
//	el-testset             communication-free EL test&set
//	cas-testset            linearizable test&set from CAS
//	el-register            passthrough over one EL register
//	localcopy-register     Theorem 12 local-copy of el-register
//	slog-counter           stabilizing-log counter (arXiv 1512.08258)
//	slog-register          stabilizing-log register
//	slog-testset           stabilizing-log test&set
//	slog-batch:K           stabilizing-log counter, promotion batch K
func Impl(name string) (machine.Impl, error) {
	base, arg, hasArg := strings.Cut(name, ":")
	ent, ok := implTable[base]
	if !ok {
		return nil, fmt.Errorf("registry: unknown implementation %q (known: %s)",
			name, strings.Join(ImplNames(), ", "))
	}
	if hasArg && ent.param == "" {
		return nil, fmt.Errorf("registry: implementation %q takes no parameter (got %q in %q)", base, arg, name)
	}
	argVal := ent.paramDef
	if hasArg {
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("registry: bad parameter %q in %q: %w", arg, name, err)
		}
		argVal = v
	}
	return ent.make(argVal)
}

// implEntry is one implementation registration: the single source for
// resolution, name listing and parameter validation, so they cannot
// desynchronize.
type implEntry struct {
	// param annotates the parameter in listings ("K"); empty means the
	// name takes none and a stray ":x" is rejected.
	param string
	// paramDef is the parameter's default when omitted.
	paramDef int64
	// doc is the one-line description `elin list -detail` prints.
	doc string
	// make constructs the implementation (arg is paramDef for
	// parameterless entries).
	make func(arg int64) (machine.Impl, error)
}

func implOK(impl machine.Impl) func(int64) (machine.Impl, error) {
	return func(int64) (machine.Impl, error) { return impl, nil }
}

var implTable = map[string]implEntry{
	"cas-counter": {doc: "linearizable fetch&increment from one CAS word (retry loop)",
		make: implOK(counter.CAS{})},
	"sloppy-counter": {doc: "register-only counter: weakly consistent, never stabilizes",
		make: implOK(counter.Sloppy{})},
	"el-sloppy-counter": {doc: "sloppy counter over eventually linearizable registers",
		make: implOK(counter.Sloppy{EventualBases: true})},
	"warmup-counter": {param: "K", paramDef: 4, doc: "EL counter answering privately below count K, exact after",
		make: func(k int64) (machine.Impl, error) {
			return counter.Warmup{Threshold: k}, nil
		}},
	"junk-counter": {doc: "weak-consistency violator (announce-wrapper demo input)",
		make: implOK(counter.Junk{})},
	"announced-junk": {doc: "junk-counter wrapped in the Figure 1 announce/verify algorithm",
		make: func(int64) (machine.Impl, error) {
			return announce.New(counter.Junk{}, announce.FetchIncCodec(), check.Options{})
		}},
	"announced-cas": {doc: "cas-counter wrapped in the Figure 1 announce/verify algorithm",
		make: func(int64) (machine.Impl, error) {
			return announce.New(counter.CAS{}, announce.FetchIncCodec(), check.Options{})
		}},
	"el-consensus": {doc: "Proposition 16 consensus over eventually linearizable registers",
		make: implOK(elconsensus.Impl{})},
	"reg-consensus": {doc: "the Proposition 16 consensus algorithm over atomic registers",
		make: implOK(elconsensus.Impl{AtomicBases: true})},
	"el-testset": {doc: "communication-free eventually linearizable test&set",
		make: implOK(eltestset.Local{})},
	"cas-testset": {doc: "linearizable test&set from CAS",
		make: implOK(eltestset.FromCAS{})},
	"el-register": {doc: "passthrough over one eventually linearizable register",
		make: implOK(passthrough.New("el-register", spec.NewObject(spec.Register{}), true))},
	"localcopy-register": {doc: "Theorem 12 local-copy construction of el-register (diverges)",
		make: func(int64) (machine.Impl, error) {
			inner := passthrough.New("el-register", spec.NewObject(spec.Register{}), true)
			return localcopy.New(inner, 0)
		}},
	"base-consensus": {doc: "passthrough over one atomic consensus object",
		make: implOK(passthrough.New("base-consensus", spec.NewObject(spec.Consensus{}), false))},
	"slog-counter": {doc: "stabilizing-log counter (arXiv 1512.08258): speculate, promote every 4",
		make: func(int64) (machine.Impl, error) {
			return stablog.New("slog-counter", spec.NewObject(spec.FetchInc{}), stablog.DefaultBatch)
		}},
	"slog-register": {doc: "stabilizing-log register: speculative apply, stabilized prefix",
		make: func(int64) (machine.Impl, error) {
			return stablog.New("slog-register", spec.NewObject(spec.Register{}), stablog.DefaultBatch)
		}},
	"slog-testset": {doc: "stabilizing-log test&set",
		make: func(int64) (machine.Impl, error) {
			return stablog.New("slog-testset", spec.NewObject(spec.TestSet{}), stablog.DefaultBatch)
		}},
	"slog-batch": {param: "K", paramDef: stablog.DefaultBatch,
		doc: "stabilizing-log counter with promotion batch K (1 = linearizable)",
		make: func(k int64) (machine.Impl, error) {
			return stablog.New(fmt.Sprintf("slog-batch:%d", k), spec.NewObject(spec.FetchInc{}), k)
		}},
}

// ImplNames lists the registered implementation names (parameterized ones
// annotated as name:PARAM).
func ImplNames() []string {
	names := make([]string, 0, len(implTable))
	for n, ent := range implTable {
		if ent.param != "" {
			n += ":" + ent.param
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ImplDoc is one row of the implementation listing: the name (annotated
// name:PARAM when parameterized) and a one-line description.
type ImplDoc struct {
	Name string
	Doc  string
}

// ImplDocs lists every registered implementation with its parameter
// syntax and doc string, sorted by name — the `elin list -detail` view,
// drawn from the same table as Impl so the two cannot desynchronize.
func ImplDocs() []ImplDoc {
	docs := make([]ImplDoc, 0, len(implTable))
	for n, ent := range implTable {
		if ent.param != "" {
			n += ":" + ent.param
		}
		docs = append(docs, ImplDoc{Name: n, Doc: ent.doc})
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	return docs
}

// DefaultOp returns the operation a process of the named implementation
// performs, so tools can build uniform workloads: propose(p+1) for
// consensus, testset for test&set, fetchinc otherwise.
func DefaultOp(impl machine.Impl, p int) spec.Op {
	switch impl.Spec().Type.(type) {
	case spec.Consensus:
		return spec.MakeOp1(spec.MethodPropose, int64(p+1))
	case spec.TestSet:
		return spec.MakeOp(spec.MethodTestSet)
	case spec.Register:
		if p%2 == 0 {
			return spec.MakeOp1(spec.MethodWrite, int64(p+1))
		}
		return spec.MakeOp(spec.MethodRead)
	default:
		return spec.MakeOp(spec.MethodFetchInc)
	}
}

// Workload builds an ops-per-process workload using DefaultOp.
func Workload(impl machine.Impl, procs, ops int) [][]spec.Op {
	w := make([][]spec.Op, procs)
	for p := 0; p < procs; p++ {
		for k := 0; k < ops; k++ {
			w[p] = append(w[p], DefaultOp(impl, p))
		}
	}
	return w
}

// SchedulerNames lists the registered scheduler names.
func SchedulerNames() []string {
	return []string{"burst:N", "random", "rr", "solo:P"}
}

// Scheduler resolves a scheduler by name: "rr", "random", "solo:P",
// "burst:N".
func Scheduler(name string) (sim.Scheduler, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "rr", "roundrobin":
		if hasArg {
			return nil, fmt.Errorf("registry: scheduler %q takes no parameter (got %q)", kind, arg)
		}
		return sim.RoundRobin{}, nil
	case "random":
		if hasArg {
			return nil, fmt.Errorf("registry: scheduler %q takes no parameter (got %q)", kind, arg)
		}
		return sim.Random{}, nil
	case "solo":
		p := 0
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("registry: bad solo process %q: %w", arg, err)
			}
			p = v
		}
		return sim.Solo{P: p}, nil
	case "burst":
		n := 8
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("registry: bad burst phase %q: %w", arg, err)
			}
			n = v
		}
		return sim.Burst{Phase: n}, nil
	default:
		return nil, fmt.Errorf("registry: unknown scheduler %q (known: %s)",
			name, strings.Join(SchedulerNames(), ", "))
	}
}

// ChooserNames lists the registered chooser names.
func ChooserNames() []string {
	return []string{"mix:P", "stale", "true"}
}

// Chooser resolves an eventually-linearizable response chooser by name:
// "true", "stale", "mix:P".
func Chooser(name string) (sim.Chooser, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "true":
		if hasArg {
			return nil, fmt.Errorf("registry: chooser %q takes no parameter (got %q)", kind, arg)
		}
		return sim.TrueChooser{}, nil
	case "stale":
		if hasArg {
			return nil, fmt.Errorf("registry: chooser %q takes no parameter (got %q)", kind, arg)
		}
		return sim.StaleChooser{}, nil
	case "mix":
		p := 0.5
		if hasArg {
			v, err := strconv.ParseFloat(arg, 64)
			if err != nil {
				return nil, fmt.Errorf("registry: bad mix probability %q: %w", arg, err)
			}
			p = v
		}
		return sim.MixChooser{P: p}, nil
	default:
		return nil, fmt.Errorf("registry: unknown chooser %q (known: %s)",
			name, strings.Join(ChooserNames(), ", "))
	}
}

// PolicyNames lists the registered stabilization-policy names.
func PolicyNames() []string {
	return []string{"immediate", "never", "window:K"}
}

// Policy resolves a stabilization policy: "immediate", "never",
// "window:K".
func Policy(name string) (base.Policy, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	switch kind {
	case "", "immediate":
		if hasArg {
			return nil, fmt.Errorf("registry: policy %q takes no parameter (got %q)", kind, arg)
		}
		return base.Immediate(), nil
	case "never":
		if hasArg {
			return nil, fmt.Errorf("registry: policy %q takes no parameter (got %q)", kind, arg)
		}
		return base.Never{}, nil
	case "window":
		k := 4
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil {
				return nil, fmt.Errorf("registry: bad window %q: %w", arg, err)
			}
			k = v
		}
		return base.Window{K: k}, nil
	default:
		return nil, fmt.Errorf("registry: unknown policy %q (known: %s)",
			name, strings.Join(PolicyNames(), ", "))
	}
}

// TypeNames lists the registered specification-type names.
func TypeNames() []string {
	return []string{"cas[:init]", "consensus", "fetchinc[:init]", "maxregister[:init]",
		"queue", "register[:init]", "testset"}
}

// TypeByName resolves a specification type: "register[:init]",
// "fetchinc[:init]", "consensus", "testset", "cas[:init]", "queue",
// "maxregister[:init]".
func TypeByName(name string) (spec.Object, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	initVal := int64(0)
	if hasArg {
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return spec.Object{}, fmt.Errorf("registry: bad initial value %q in %q: %w", arg, name, err)
		}
		initVal = v
	}
	switch kind {
	case "register":
		return spec.Object{Type: spec.Register{InitVal: initVal}, Init: initVal}, nil
	case "fetchinc":
		return spec.Object{Type: spec.FetchInc{InitVal: initVal}, Init: initVal}, nil
	case "consensus", "testset", "queue":
		if hasArg {
			return spec.Object{}, fmt.Errorf("registry: type %q takes no initial value (got %q)", kind, arg)
		}
		switch kind {
		case "consensus":
			return spec.NewObject(spec.Consensus{}), nil
		case "testset":
			return spec.NewObject(spec.TestSet{}), nil
		}
		return spec.NewObject(spec.Queue{}), nil
	case "cas":
		return spec.Object{Type: spec.CAS{InitVal: initVal}, Init: initVal}, nil
	case "maxregister":
		return spec.Object{Type: spec.MaxRegister{InitVal: initVal}, Init: initVal}, nil
	default:
		return spec.Object{}, fmt.Errorf("registry: unknown type %q (known: %s)",
			name, strings.Join(TypeNames(), ", "))
	}
}
