package registry

import (
	"fmt"
	"strings"

	"github.com/elin-go/elin/internal/check"
)

// MonitorDoc is one monitor spec form with its one-line description, as
// `elin list monitors` prints it.
type MonitorDoc struct {
	Name string
	Doc  string
}

// monitorForms is the monitor spec vocabulary in display order: concrete
// names first, parameterized grammar templates after.
var monitorForms = []MonitorDoc{
	{"full", "sequential exhaustive windowed checking (the default)"},
	{"sample:N", "check every Nth window, escalate back to full on a near-violation"},
	{"shard:K", "pipelined windowed checking on K parallel workers"},
	{"shard:key", "one sequential monitor per object key (compositionality probe)"},
	{"none", "record only, no online checking"},
}

// MonitorNames lists the monitor spec vocabulary.
func MonitorNames() []string {
	names := make([]string, len(monitorForms))
	for i, f := range monitorForms {
		names[i] = f.Name
	}
	return names
}

// MonitorDocs returns the monitor spec forms with their one-line docs.
func MonitorDocs() []MonitorDoc {
	return append([]MonitorDoc(nil), monitorForms...)
}

// MonitorSpec resolves a monitor spec by name ("" means full). It is the
// registry face of check.ParseMonitorSpec, with the vocabulary echoed on
// error like the other registry resolvers.
func MonitorSpec(name string) (check.MonitorSpec, error) {
	ms, err := check.ParseMonitorSpec(strings.TrimSpace(name))
	if err != nil {
		return check.MonitorSpec{}, fmt.Errorf("registry: unknown monitor spec %q (known: %s): %w",
			name, strings.Join(MonitorNames(), ", "), err)
	}
	return ms, nil
}

// ValidateMonitor checks a monitor spec name without constructing anything
// — the syntax-only resolution campaign sweep specs validate against.
func ValidateMonitor(name string) error {
	_, err := MonitorSpec(name)
	return err
}
