package registry

import (
	"fmt"
	"sort"
	"strings"

	"github.com/elin-go/elin/internal/faults"
)

// faultPresets names canned fault-injection specs. Each value is plain
// faults grammar, so a preset is exactly shorthand for spelling it out.
// Crash points and WAL corruption depend on the run's op budget and log
// file, so presets cover only scale-tolerant schedule faults; spell
// "crash:K", "flip" and "trunc:N" directly.
var faultPresets = map[string]string{
	// stall-one: client 0 freezes for 64 commits shortly after warmup.
	"stall-one": "stall:0@32+64",
	// stall-storm: the first two clients freeze back to back, overlapping.
	"stall-storm": "stall:0@16+48,stall:1@40+48",
	// jitter-light / jitter-heavy: per-op scheduling delay, mild and rough.
	"jitter-light": "jitter:3",
	"jitter-heavy": "jitter:25",
	// chaos: overlapping stalls plus jitter — the nightly chaos diet.
	"chaos": "stall:0@16+32,stall:1@64+32,jitter:4",
}

// FaultNames lists the fault-spec vocabulary: the preset names plus the
// grammar templates Parse accepts.
func FaultNames() []string {
	names := make([]string, 0, len(faultPresets)+6)
	for n := range faultPresets {
		names = append(names, n)
	}
	sort.Strings(names)
	return append([]string{"none"}, append(names,
		"stall:C@T+D", "crash:K", "jitter:N", "flip[:OFF]", "trunc:N")...)
}

// Faults resolves a fault spec by name: "" or "none" (no injection, nil
// spec), a preset from FaultNames, or the faults grammar directly
// ("stall:0@64+256,crash:5000,jitter:20,flip").
func Faults(name string) (*faults.Spec, error) {
	name = strings.TrimSpace(name)
	if grammar, ok := faultPresets[name]; ok {
		return faults.Parse(grammar)
	}
	sp, err := faults.Parse(name)
	if err != nil {
		return nil, fmt.Errorf("registry: unknown fault spec %q (known: %s): %w",
			name, strings.Join(FaultNames(), ", "), err)
	}
	return sp, nil
}

// ValidateFaults checks a fault-spec name without constructing anything —
// the syntax-only resolution campaign sweep specs validate against.
func ValidateFaults(name string) error {
	_, err := Faults(name)
	return err
}
