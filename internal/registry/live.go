package registry

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/stablog"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/spec"
)

// LiveObjectNames lists the live-native object names. Every implementation
// name accepted by Impl also resolves through LiveObject, wrapped in the
// mutex-serialized step-machine adapter.
func LiveObjectNames() []string {
	return []string{
		"atomic-fi[:init]", "el-fi[:init]", "junk-fi:K", "mutex-fi[:init]", "mutex-reg[:init]",
		"slog-fi[:K]",
	}
}

// LiveObject resolves an object for the live concurrent runtime.
//
// Live-native objects:
//
//	atomic-fi[:init]   lock-free fetch&increment (one atomic fetch-add)
//	mutex-fi[:init]    mutex-serialized atomic counter base object
//	mutex-reg[:init]   mutex-serialized atomic register
//	el-fi[:init]       mutex-serialized eventually linearizable counter
//	                   (stabilization from policy)
//	junk-fi:K          injected bug: loses every increment past K
//	slog-fi[:K]        lock-free stabilizing-log counter, promotion batch K
//
// The stabilizing-log counter family (slog-counter, slog-batch:K) routes
// to the same lock-free fast path instead of the serialized step machine:
// an all-fetchinc log degenerates to the commit sequencer, so the fast
// path computes the identical speculation semantics with one atomic
// fetch-add per operation.
//
// Any other name resolves through Impl and runs as a mutex-serialized step
// machine (live.SerializedImpl), so the scenario vocabulary is identical
// across engines. clients is the number of goroutine clients the object
// will serve; policy governs eventually linearizable bases and seed pins
// their response choices.
func LiveObject(name string, clients int, policy base.Policy, seed int64, opts check.Options) (live.Object, error) {
	kind, arg, hasArg := strings.Cut(name, ":")
	argInt := func(def int64) (int64, error) {
		if !hasArg {
			return def, nil
		}
		v, err := strconv.ParseInt(arg, 10, 64)
		if err != nil {
			return 0, fmt.Errorf("registry: bad parameter %q in %q: %w", arg, name, err)
		}
		return v, nil
	}
	switch kind {
	case "atomic-fi":
		init, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return live.NewAtomicFetchInc("C", init), nil
	case "mutex-fi":
		init, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return live.NewSerialized("C", spec.Object{Type: spec.FetchInc{InitVal: init}, Init: init}, seed)
	case "mutex-reg":
		init, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return live.NewSerialized("R", spec.Object{Type: spec.Register{InitVal: init}, Init: init}, seed)
	case "el-fi":
		init, err := argInt(0)
		if err != nil {
			return nil, err
		}
		return live.NewSerializedEventual("C",
			spec.Object{Type: spec.FetchInc{InitVal: init}, Init: init}, policy, seed, opts)
	case "junk-fi":
		stick, err := argInt(32)
		if err != nil {
			return nil, err
		}
		return live.NewJunkFetchInc("C", stick), nil
	case "slog-fi", "slog-batch":
		batch, err := argInt(stablog.DefaultBatch)
		if err != nil {
			return nil, err
		}
		return live.NewSlogFetchInc("C", batch, clients)
	case "slog-counter":
		if hasArg {
			return nil, fmt.Errorf("registry: implementation %q takes no parameter (got %q in %q)", kind, arg, name)
		}
		return live.NewSlogFetchInc("C", stablog.DefaultBatch, clients)
	default:
		impl, err := Impl(name)
		if err != nil {
			return nil, fmt.Errorf("registry: %q is neither a live object (known: %s) nor an implementation: %w",
				name, strings.Join(LiveObjectNames(), ", "), err)
		}
		return live.NewSerializedImpl(impl, clients, base.SamePolicy(policy), seed, opts)
	}
}
