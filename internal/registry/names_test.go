package registry

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/spec"
)

// TestUnknownNameErrorsListAvailable pins the contract that every resolver
// names the available choices when it rejects an unknown name.
func TestUnknownNameErrorsListAvailable(t *testing.T) {
	cases := []struct {
		resolver string
		err      error
		want     string
	}{
		{"Impl", errOf(func() error { _, err := Impl("nosuch"); return err }), "cas-counter"},
		{"Scheduler", errOf(func() error { _, err := Scheduler("nosuch"); return err }), "solo:P"},
		{"Chooser", errOf(func() error { _, err := Chooser("nosuch"); return err }), "mix:P"},
		{"Policy", errOf(func() error { _, err := Policy("nosuch"); return err }), "window:K"},
		{"TypeByName", errOf(func() error { _, err := TypeByName("nosuch"); return err }), "fetchinc"},
		{"WorkloadByName", errOf(func() error {
			impl, _ := Impl("cas-counter")
			_, err := WorkloadByName("nosuch", impl, 2, 1)
			return err
		}), "uniform:OP"},
		{"Engine", errOf(func() error { _, err := Engine("nosuch"); return err }), "explore"},
		{"LiveObject", errOf(func() error {
			_, err := LiveObject("nosuch", 2, nil, 1, check.Options{})
			return err
		}), "atomic-fi"},
	}
	for _, tc := range cases {
		if tc.err == nil {
			t.Errorf("%s accepted an unknown name", tc.resolver)
			continue
		}
		if !strings.Contains(tc.err.Error(), tc.want) {
			t.Errorf("%s error does not list available names: %v", tc.resolver, tc.err)
		}
	}
}

func errOf(f func() error) error { return f() }

// TestValidateWorkload pins the syntax-only workload resolution campaign
// sweep specs rely on: it must accept exactly what WorkloadByName and
// OpGenByName accept, without needing an implementation in hand.
func TestValidateWorkload(t *testing.T) {
	for _, ok := range []string{"", "default", "uniform:inc", "uniform:read", "uniform:write(3)", "rw", "rw:40"} {
		if err := ValidateWorkload(ok); err != nil {
			t.Errorf("ValidateWorkload(%q): %v", ok, err)
		}
	}
	bad := []struct{ name, want string }{
		{"nosuch", "uniform:OP"},
		{"default:1", "no parameter"},
		{"uniform", "needs an operation"},
		{"uniform:", "needs an operation"},
		{"uniform:write(x)", "bad workload operation"},
		{"rw:999", "0..100"},
		{"rw:x", "0..100"},
	}
	for _, tc := range bad {
		err := ValidateWorkload(tc.name)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("ValidateWorkload(%q) = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestParameterValidation pins the argument errors of parameterized names:
// malformed arguments fail, and names that take no parameter reject stray
// ones instead of silently ignoring them.
func TestParameterValidation(t *testing.T) {
	bad := []struct {
		resolver string
		err      error
	}{
		{"Impl(warmup-counter:)", errOf(func() error { _, err := Impl("warmup-counter:"); return err })},
		{"Impl(warmup-counter:zap)", errOf(func() error { _, err := Impl("warmup-counter:zap"); return err })},
		{"Impl(cas-counter:3)", errOf(func() error { _, err := Impl("cas-counter:3"); return err })},
		{"Scheduler(rr:1)", errOf(func() error { _, err := Scheduler("rr:1"); return err })},
		{"Scheduler(random:2)", errOf(func() error { _, err := Scheduler("random:2"); return err })},
		{"Scheduler(solo:)", errOf(func() error { _, err := Scheduler("solo:"); return err })},
		{"Chooser(true:1)", errOf(func() error { _, err := Chooser("true:1"); return err })},
		{"Chooser(stale:0.5)", errOf(func() error { _, err := Chooser("stale:0.5"); return err })},
		{"Chooser(mix:)", errOf(func() error { _, err := Chooser("mix:"); return err })},
		{"Policy(never:4)", errOf(func() error { _, err := Policy("never:4"); return err })},
		{"Policy(immediate:1)", errOf(func() error { _, err := Policy("immediate:1"); return err })},
		{"Policy(window:)", errOf(func() error { _, err := Policy("window:"); return err })},
		{"TypeByName(consensus:1)", errOf(func() error { _, err := TypeByName("consensus:1"); return err })},
		{"TypeByName(queue:1)", errOf(func() error { _, err := TypeByName("queue:1"); return err })},
		{"TypeByName(register:)", errOf(func() error { _, err := TypeByName("register:"); return err })},
		{"Workload(uniform:)", errOf(func() error {
			impl, _ := Impl("cas-counter")
			_, err := WorkloadByName("uniform:", impl, 2, 1)
			return err
		})},
		{"Workload(default:3)", errOf(func() error {
			impl, _ := Impl("cas-counter")
			_, err := WorkloadByName("default:3", impl, 2, 1)
			return err
		})},
		{"Workload(rw:200)", errOf(func() error {
			impl, _ := Impl("el-register")
			_, err := WorkloadByName("rw:200", impl, 2, 1)
			return err
		})},
		{"LiveObject(junk-fi:zap)", errOf(func() error {
			_, err := LiveObject("junk-fi:zap", 2, nil, 1, check.Options{})
			return err
		})},
	}
	for _, tc := range bad {
		if tc.err == nil {
			t.Errorf("%s accepted", tc.resolver)
		}
	}
}

// TestWorkloadByName pins the workload vocabulary on the simulation side.
func TestWorkloadByName(t *testing.T) {
	impl, err := Impl("cas-counter")
	if err != nil {
		t.Fatal(err)
	}
	w, err := WorkloadByName("uniform:inc", impl, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(w) != 3 || len(w[0]) != 2 || w[2][1].Method != spec.MethodFetchInc {
		t.Fatalf("uniform:inc workload = %v", w)
	}
	w, err = WorkloadByName("uniform:write(7)", impl, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w[0][0].Method != spec.MethodWrite || w[0][0].Args[0] != 7 {
		t.Fatalf("uniform:write(7) workload = %v", w)
	}
	w, err = WorkloadByName("default", impl, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w[0][0].Method != spec.MethodFetchInc {
		t.Fatalf("default workload = %v", w)
	}
	w, err = WorkloadByName("rw:50", impl, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	reads, writes := 0, 0
	for _, ops := range w {
		for _, op := range ops {
			if op.Method == spec.MethodRead {
				reads++
			} else if op.Method == spec.MethodWrite {
				writes++
			}
		}
	}
	if reads == 0 || writes == 0 {
		t.Fatalf("rw:50 produced reads=%d writes=%d", reads, writes)
	}
}

// TestOpGenByNameMatchesWorkload pins that the live generator speaks the
// same vocabulary.
func TestOpGenByNameMatchesWorkload(t *testing.T) {
	obj, err := TypeByName("fetchinc")
	if err != nil {
		t.Fatal(err)
	}
	gen, err := OpGenByName("uniform:inc", obj)
	if err != nil {
		t.Fatal(err)
	}
	if op := gen(0, 0, nil); op.Method != spec.MethodFetchInc {
		t.Fatalf("uniform:inc gen = %v", op)
	}
	cons, err := TypeByName("consensus")
	if err != nil {
		t.Fatal(err)
	}
	gen, err = OpGenByName("default", cons)
	if err != nil {
		t.Fatal(err)
	}
	if op := gen(2, 0, nil); op.Method != spec.MethodPropose || op.Args[0] != 3 {
		t.Fatalf("consensus default gen = %v", op)
	}
	if _, err := OpGenByName("nosuch", obj); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestLiveObjectResolvesImplNames pins the cross-engine bridge: any
// implementation name runs live via the serialized step-machine adapter.
func TestLiveObjectResolvesImplNames(t *testing.T) {
	obj, err := LiveObject("cas-counter", 2, nil, 1, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if obj.Name() != "cas-counter" {
		t.Fatalf("live object name = %q", obj.Name())
	}
	var seq atomic.Uint64
	resp, ticket, err := obj.Apply(0, spec.MakeOp(spec.MethodFetchInc), &seq)
	if err != nil {
		t.Fatal(err)
	}
	if resp != 0 || ticket != 1 {
		t.Fatalf("first fetchinc = (%d, %d)", resp, ticket)
	}
	for _, name := range []string{"atomic-fi", "mutex-fi:5", "mutex-reg", "el-fi", "junk-fi:8"} {
		if _, err := LiveObject(name, 2, nil, 3, check.Options{}); err != nil {
			t.Errorf("LiveObject(%q): %v", name, err)
		}
	}
}
