// Package progress implements empirical probes for the three progress
// conditions of Section 3: wait-freedom (every operation completes within a
// bounded number of its process's own steps), the non-blocking property
// (some operation completes whenever steps keep being taken; also called
// lock-freedom), and obstruction-freedom (a process running solo
// completes).
//
// These are properties of infinite executions; the probes are
// finite-evidence instruments in the same spirit as check.TrackMinT:
//
//   - Solo runs certify/refute obstruction-freedom up to a step bound.
//   - A starvation adversary (sim.Ratio) hunts for executions in which one
//     process takes unboundedly many steps without completing while others
//     complete — witnessing a wait-freedom violation of a non-blocking
//     implementation.
//   - Per-operation step bounds across schedules estimate the wait-free
//     bound when no starvation is found.
package progress

import (
	"fmt"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Report summarizes the probes for one implementation.
type Report struct {
	// ObstructionFree reports that every process completed an operation
	// running solo within SoloBound steps.
	ObstructionFree bool
	// SoloSteps is the maximum steps any process needed solo.
	SoloSteps int
	// StarvationFound reports that the starvation adversary drove some
	// process through StarvedSteps steps without completing an operation
	// while others completed OthersCompleted operations — a wait-freedom
	// violation witness.
	StarvationFound bool
	// StarvedSteps is the victim's step count in the starvation witness.
	StarvedSteps int
	// OthersCompleted counts operations completed by non-victims in the
	// starvation witness.
	OthersCompleted int
	// NonBlocking reports that in the starvation run the system as a whole
	// kept completing operations.
	NonBlocking bool
	// MaxStepsPerOp is the largest per-operation step count observed
	// across the probe schedules (a wait-freedom bound estimate when
	// StarvationFound is false).
	MaxStepsPerOp int
}

// Config tunes the probes.
type Config struct {
	// Procs is the number of processes (default 2).
	Procs int
	// OpsPerProc sizes workloads (default 4).
	OpsPerProc int
	// SoloBound caps solo runs (default 512 steps).
	SoloBound int
	// StarveSteps is the adversarial run length (default 512).
	StarveSteps int
	// Op overrides the probed operation (default: fetchinc-style from the
	// implementation's type via opFor).
	Op spec.Op
}

func (c Config) defaults() Config {
	if c.Procs <= 0 {
		c.Procs = 2
	}
	if c.OpsPerProc <= 0 {
		c.OpsPerProc = 4
	}
	if c.SoloBound <= 0 {
		c.SoloBound = 512
	}
	if c.StarveSteps <= 0 {
		c.StarveSteps = 512
	}
	return c
}

// Probe runs the three probes against impl.
func Probe(impl machine.Impl, cfg Config) (*Report, error) {
	cfg = cfg.defaults()
	op := cfg.Op
	if op == (spec.Op{}) {
		op = opFor(impl)
	}
	rep := &Report{ObstructionFree: true}

	// Obstruction-freedom: each process solo, one operation.
	for p := 0; p < cfg.Procs; p++ {
		w := make([][]spec.Op, cfg.Procs)
		w[p] = []spec.Op{op}
		res, err := sim.Run(sim.Config{
			Impl:      impl,
			Workload:  w,
			Scheduler: sim.Solo{P: p},
			MaxSteps:  cfg.SoloBound,
		})
		if err != nil {
			return nil, fmt.Errorf("progress: solo probe p%d: %w", p, err)
		}
		if res.TimedOut || res.OpsCompleted[p] == 0 {
			rep.ObstructionFree = false
		}
		if res.Steps > rep.SoloSteps {
			rep.SoloSteps = res.Steps
		}
	}

	// Starvation hunt: victim 0 under the ratio adversary, long workload.
	longOps := cfg.StarveSteps // more work than steps: nobody runs dry
	w := make([][]spec.Op, cfg.Procs)
	for p := range w {
		for k := 0; k < longOps; k++ {
			w[p] = append(w[p], op)
		}
	}
	res, err := sim.Run(sim.Config{
		Impl:      impl,
		Workload:  w,
		Scheduler: sim.Ratio{Victim: 0, Every: 4},
		MaxSteps:  cfg.StarveSteps,
	})
	if err != nil {
		return nil, fmt.Errorf("progress: starvation probe: %w", err)
	}
	others := 0
	for p := 1; p < cfg.Procs; p++ {
		others += res.OpsCompleted[p]
	}
	victimSteps := cfg.StarveSteps / 4 // Ratio schedules the victim every 4th step
	rep.OthersCompleted = others
	rep.NonBlocking = others > 0 || res.OpsCompleted[0] > 0
	if res.OpsCompleted[0] == 0 && victimSteps > 8 {
		rep.StarvationFound = true
		rep.StarvedSteps = victimSteps
	}

	// Wait-free bound estimate: max steps per completed op across a few
	// schedules. Implemented-level steps are not directly attributed per
	// op by the runner, so use the per-process quotient.
	for _, sched := range []sim.Scheduler{sim.RoundRobin{}, sim.Random{}, sim.Burst{Phase: 4}} {
		res, err := sim.Run(sim.Config{
			Impl:      impl,
			Workload:  sim.UniformWorkload(cfg.Procs, cfg.OpsPerProc, op),
			Scheduler: sched,
			Seed:      7,
			MaxSteps:  1 << 15,
		})
		if err != nil {
			return nil, fmt.Errorf("progress: bound probe (%s): %w", sched.Name(), err)
		}
		total := 0
		for _, n := range res.OpsCompleted {
			total += n
		}
		if total == 0 {
			continue
		}
		perOp := (res.Steps + total - 1) / total
		if perOp > rep.MaxStepsPerOp {
			rep.MaxStepsPerOp = perOp
		}
	}
	return rep, nil
}

// opFor mirrors registry.DefaultOp without importing it (avoiding a cycle
// if registry ever wants progress reports).
func opFor(impl machine.Impl) spec.Op {
	switch impl.Spec().Type.(type) {
	case spec.Consensus:
		return spec.MakeOp1(spec.MethodPropose, 1)
	case spec.TestSet:
		return spec.MakeOp(spec.MethodTestSet)
	case spec.Register:
		return spec.MakeOp(spec.MethodRead)
	default:
		return spec.MakeOp(spec.MethodFetchInc)
	}
}

// Classify renders the standard progress-condition verdict line:
// wait-free ⊂ non-blocking ⊂ obstruction-free (for the probes' finite
// evidence).
func Classify(rep *Report) string {
	switch {
	case rep.StarvationFound && rep.NonBlocking:
		return "non-blocking, not wait-free (starvation witness found)"
	case rep.ObstructionFree && !rep.StarvationFound:
		return fmt.Sprintf("wait-free evidence (max %d steps/op, no starvation found)", rep.MaxStepsPerOp)
	case rep.ObstructionFree:
		return "obstruction-free"
	default:
		return "no obstruction-free evidence (solo run did not complete)"
	}
}
