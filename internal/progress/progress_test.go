package progress

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

func TestCASCounterNonBlockingNotWaitFree(t *testing.T) {
	// The CAS retry loop is obstruction-free and non-blocking, but the
	// ratio adversary starves the victim forever: the classic separation.
	rep, err := Probe(counter.CAS{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ObstructionFree {
		t.Error("CAS counter should be obstruction-free")
	}
	if !rep.StarvationFound {
		t.Error("ratio adversary failed to starve the CAS counter victim")
	}
	if !rep.NonBlocking {
		t.Error("others should keep completing while the victim starves")
	}
	if rep.OthersCompleted == 0 {
		t.Error("starvation run completed nothing")
	}
	if !strings.Contains(Classify(rep), "not wait-free") {
		t.Errorf("classification = %q", Classify(rep))
	}
}

func TestSloppyCounterWaitFree(t *testing.T) {
	// The register-only counter finishes every operation in n+1 of its own
	// steps regardless of the adversary: wait-free (the property it trades
	// eventual linearizability for).
	rep, err := Probe(counter.Sloppy{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ObstructionFree {
		t.Error("sloppy counter should be obstruction-free")
	}
	if rep.StarvationFound {
		t.Error("sloppy counter starved; it is wait-free")
	}
	if rep.MaxStepsPerOp > 4 { // n+1 = 3 for 2 procs, +1 slack for rounding
		t.Errorf("steps/op = %d, want <= 4", rep.MaxStepsPerOp)
	}
	if !strings.Contains(Classify(rep), "wait-free") {
		t.Errorf("classification = %q", Classify(rep))
	}
}

func TestELConsensusWaitFree(t *testing.T) {
	// Proposition 16's algorithm is wait-free: at most 2 + n register
	// actions per propose.
	rep, err := Probe(elconsensus.Impl{}, Config{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StarvationFound || !rep.ObstructionFree {
		t.Errorf("EL consensus should be wait-free: %+v", rep)
	}
	if rep.MaxStepsPerOp > 3+2+1 {
		t.Errorf("steps/op = %d, want <= n+3", rep.MaxStepsPerOp)
	}
}

func TestELTestSetWaitFree(t *testing.T) {
	rep, err := Probe(eltestset.Local{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StarvationFound || !rep.ObstructionFree || rep.MaxStepsPerOp > 1 {
		t.Errorf("el-testset should complete in one local step: %+v", rep)
	}
}

func TestNonObstructionFreeDetected(t *testing.T) {
	rep, err := Probe(spinImpl{}, Config{SoloBound: 64, StarveSteps: 64})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ObstructionFree {
		t.Error("spin implementation reported obstruction-free")
	}
	if !strings.Contains(Classify(rep), "no obstruction-free evidence") {
		t.Errorf("classification = %q", Classify(rep))
	}
}

// spinImpl spins on its register forever: not even obstruction-free.
type spinImpl struct{}

func (spinImpl) Name() string      { return "spin" }
func (spinImpl) Spec() spec.Object { return spec.NewObject(spec.Register{}) }
func (spinImpl) Bases() []machine.Base {
	return []machine.Base{{Name: "R", Obj: spec.NewObject(spec.Register{})}}
}
func (spinImpl) NewProcess(p, n int) machine.Process { return &spinProc{} }

type spinProc struct{}

func (s *spinProc) Begin(op spec.Op) {}
func (s *spinProc) Step(resp int64) machine.Action {
	return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
}
func (s *spinProc) Clone() machine.Process { return &spinProc{} }

func TestConfigDefaults(t *testing.T) {
	c := Config{}.defaults()
	if c.Procs != 2 || c.OpsPerProc != 4 || c.SoloBound != 512 || c.StarveSteps != 512 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestOpFor(t *testing.T) {
	if opFor(elconsensus.Impl{}).Method != spec.MethodPropose {
		t.Error("consensus op")
	}
	if opFor(eltestset.Local{}).Method != spec.MethodTestSet {
		t.Error("testset op")
	}
	if opFor(counter.CAS{}).Method != spec.MethodFetchInc {
		t.Error("counter op")
	}
}
