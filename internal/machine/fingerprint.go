package machine

import (
	"github.com/elin-go/elin/internal/spec"
)

// Fingerprinter is optionally implemented by Process machines that can
// encode their complete local state into bytes. The encoding must be
// injective per implementation: two processes of the same implementation
// append equal bytes iff they behave identically under every future
// response sequence.
//
// Fingerprints power the configuration-deduplication option of package
// explore: symmetric workloads reach the same configuration along many
// interleavings, and merging those nodes turns the execution tree into a
// DAG. Implementations that do not provide a fingerprint still explore
// correctly — deduplication is simply unavailable for them.
type Fingerprinter interface {
	// AppendFingerprint appends the process's local state to b and returns
	// the extended slice. It must not retain b and must not allocate beyond
	// growing b. The second result is false when the process cannot encode
	// its state (e.g. a wrapper whose inner programme is not a
	// Fingerprinter); deduplication then disables itself.
	AppendFingerprint(b []byte) ([]byte, bool)
}

// AppendFPInt appends a fixed 8-byte encoding of v to b. It is the helper
// Process implementations use to build fingerprints from integer fields
// (the canonical encoding lives in spec.AppendFPInt).
func AppendFPInt(b []byte, v int64) []byte {
	return spec.AppendFPInt(b, v)
}

// AppendFPOp appends a canonical encoding of an operation to b.
func AppendFPOp(b []byte, op spec.Op) []byte {
	b = spec.AppendFPInt(b, int64(len(op.Method)))
	b = append(b, op.Method...)
	b = append(b, byte(op.NArgs)) // NArgs <= 2 by construction
	for i := 0; i < op.NArgs; i++ {
		b = AppendFPInt(b, op.Args[i])
	}
	return b
}

// AppendFPState appends a canonical encoding of a spec.State to b. The
// second result is false when the state's dynamic type is not supported
// (all states of the paper's concrete types are int64 or string).
func AppendFPState(b []byte, s spec.State) ([]byte, bool) {
	switch v := s.(type) {
	case int64:
		return AppendFPInt(append(b, 'i'), v), true
	case string:
		b = append(b, 's')
		b = AppendFPInt(b, int64(len(v)))
		return append(b, v...), true
	case bool:
		if v {
			return append(b, 'T'), true
		}
		return append(b, 'F'), true
	default:
		return b, false
	}
}
