// Package machine defines the implementation model of Section 3: an
// implementation of a shared object provides, per process, a programme that
// performs each operation by issuing actions on shared base objects.
//
// Programmes are deterministic step machines rather than goroutines so that
// the same algorithm code can be driven by a randomized scheduler (package
// sim), exhaustively model-checked (package explore), and transformed (the
// local-copy construction of Theorem 12 and the stable-configuration
// construction of Proposition 18 both rewrite implementations).
package machine

import (
	"fmt"

	"github.com/elin-go/elin/internal/spec"
)

// ActionKind distinguishes base-object invocations from final returns.
type ActionKind int

// Action kinds.
const (
	// ActInvoke performs one atomic action on a base object.
	ActInvoke ActionKind = iota + 1
	// ActReturn completes the current operation with a response.
	ActReturn
)

// Action is the next thing a process asks the runtime to do.
type Action struct {
	// Kind selects invocation or return.
	Kind ActionKind
	// Obj indexes into the implementation's Bases (ActInvoke only).
	Obj int
	// Op is the base-object operation (ActInvoke only).
	Op spec.Op
	// Ret is the implemented operation's response (ActReturn only).
	Ret int64
}

// Invoke returns an invocation action on base object obj.
func Invoke(obj int, op spec.Op) Action {
	return Action{Kind: ActInvoke, Obj: obj, Op: op}
}

// Return returns a completion action with response ret.
func Return(ret int64) Action {
	return Action{Kind: ActReturn, Ret: ret}
}

// String implements fmt.Stringer.
func (a Action) String() string {
	if a.Kind == ActInvoke {
		return fmt.Sprintf("invoke obj%d.%s", a.Obj, a.Op)
	}
	return fmt.Sprintf("return %d", a.Ret)
}

// Process is one process's programme: a deterministic, resumable step
// machine. The runtime drives it as follows:
//
//	p.Begin(op)            // start an operation (process must be idle)
//	act := p.Step(0)       // first step; the argument is ignored
//	for act.Kind == ActInvoke {
//	    resp := ...        // perform the base action atomically
//	    act = p.Step(resp) // resume with the base object's response
//	}
//	// act.Ret is the operation's response; the process is idle again.
//
// Processes may keep local state across operations (the paper's programmes
// are arbitrary Turing machines; e.g. Figure 1 keeps the counter c_i and
// state q_i between operations). Step must be deterministic: identical
// response sequences yield identical actions.
type Process interface {
	// Begin starts performing op. It must only be called when the process
	// is idle (before any Step, or after a Step returned ActReturn).
	Begin(op spec.Op)
	// Step consumes the response to the previous ActInvoke (the first call
	// after Begin receives a dummy 0) and returns the next action.
	Step(resp int64) Action
	// Clone returns a deep copy of the process, used by the model checker
	// to branch executions and by the Proposition 18 construction to
	// capture local variables at a configuration.
	Clone() Process
}

// Base describes one shared base object an implementation uses.
type Base struct {
	// Name is the object's name in recorded base-level histories.
	Name string
	// Obj is the object's sequential specification and initial state.
	Obj spec.Object
	// Eventually marks the object as eventually linearizable: before its
	// stabilization point it may answer with any response permitted by
	// weak consistency (Definition 1). If false the object is
	// linearizable (atomic).
	Eventually bool
}

// Impl is an implementation of a shared object from base objects.
type Impl interface {
	// Name identifies the implementation; it is also used as the
	// implemented object's name in recorded histories.
	Name() string
	// Spec returns the implemented object's sequential specification,
	// against which recorded histories are checked.
	Spec() spec.Object
	// Bases lists the shared base objects. The slice is fresh on each
	// call; runtimes instantiate live objects from it.
	Bases() []Base
	// NewProcess returns the programme for process p of n. Implementations
	// must tolerate any 0 <= p < n.
	NewProcess(p, n int) Process
}

// Validate performs basic sanity checks on an implementation: base names
// are unique and non-empty, and NewProcess returns distinct machines.
func Validate(impl Impl, n int) error {
	if impl.Name() == "" {
		return fmt.Errorf("machine: implementation has empty name")
	}
	seen := make(map[string]bool)
	for i, b := range impl.Bases() {
		if b.Name == "" {
			return fmt.Errorf("machine: %s base %d has empty name", impl.Name(), i)
		}
		if seen[b.Name] {
			return fmt.Errorf("machine: %s has duplicate base name %q", impl.Name(), b.Name)
		}
		seen[b.Name] = true
		if b.Obj.Type == nil {
			return fmt.Errorf("machine: %s base %q has nil type", impl.Name(), b.Name)
		}
	}
	for p := 0; p < n; p++ {
		if impl.NewProcess(p, n) == nil {
			return fmt.Errorf("machine: %s NewProcess(%d,%d) returned nil", impl.Name(), p, n)
		}
	}
	return nil
}
