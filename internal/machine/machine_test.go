package machine

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestActionConstructorsAndString(t *testing.T) {
	inv := Invoke(2, spec.MakeOp1(spec.MethodWrite, 7))
	if inv.Kind != ActInvoke || inv.Obj != 2 || inv.Op.Args[0] != 7 {
		t.Fatalf("invoke = %+v", inv)
	}
	if !strings.Contains(inv.String(), "obj2.write(7)") {
		t.Errorf("invoke string = %q", inv.String())
	}
	ret := Return(9)
	if ret.Kind != ActReturn || ret.Ret != 9 {
		t.Fatalf("return = %+v", ret)
	}
	if ret.String() != "return 9" {
		t.Errorf("return string = %q", ret.String())
	}
}

// stubImpl is a configurable implementation for Validate tests.
type stubImpl struct {
	name  string
	bases []Base
	proc  func(p, n int) Process
}

func (s stubImpl) Name() string      { return s.name }
func (s stubImpl) Spec() spec.Object { return spec.NewObject(spec.Register{}) }
func (s stubImpl) Bases() []Base     { return s.bases }
func (s stubImpl) NewProcess(p, n int) Process {
	if s.proc != nil {
		return s.proc(p, n)
	}
	return nopProc{}
}

type nopProc struct{}

func (nopProc) Begin(spec.Op)     {}
func (nopProc) Step(int64) Action { return Return(0) }
func (nopProc) Clone() Process    { return nopProc{} }

func TestValidate(t *testing.T) {
	good := stubImpl{
		name: "good",
		bases: []Base{
			{Name: "A", Obj: spec.NewObject(spec.Register{})},
			{Name: "B", Obj: spec.NewObject(spec.CAS{})},
		},
	}
	if err := Validate(good, 3); err != nil {
		t.Fatalf("good impl rejected: %v", err)
	}

	cases := []struct {
		name string
		impl Impl
	}{
		{"empty name", stubImpl{name: ""}},
		{"empty base name", stubImpl{name: "x", bases: []Base{{Name: "", Obj: spec.NewObject(spec.Register{})}}}},
		{"dup base name", stubImpl{name: "x", bases: []Base{
			{Name: "A", Obj: spec.NewObject(spec.Register{})},
			{Name: "A", Obj: spec.NewObject(spec.Register{})},
		}}},
		{"nil base type", stubImpl{name: "x", bases: []Base{{Name: "A"}}}},
		{"nil process", stubImpl{name: "x", proc: func(p, n int) Process { return nil }}},
	}
	for _, tc := range cases {
		if err := Validate(tc.impl, 2); err == nil {
			t.Errorf("%s: Validate accepted", tc.name)
		}
	}
}
