// Package sim executes implementations (package machine) against live base
// objects (package base) and records the resulting histories. The central
// type is System — one configuration of the asynchronous shared-memory
// model: process programmes plus base-object states. Systems are cloneable,
// which is what makes exhaustive exploration (package explore) and the
// Proposition 18 configuration capture possible.
package sim

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// System is a live configuration: an implementation, its base objects, its
// process programmes, per-process progress through a workload, and the
// histories recorded so far. One Advance call performs one atomic step of
// one process, exactly the granularity of the paper's execution trees.
type System struct {
	impl     machine.Impl
	bases    []base.Object
	procs    []machine.Process
	running  []bool  // process is mid-operation
	nextResp []int64 // response to feed the process's next Step
	opIdx    []int   // operations begun per process
	workload [][]spec.Op
	hist     *history.History
	baseHist *history.History // nil unless base recording enabled

	// stabilizedAt records, per eventually linearizable base object, the
	// implemented-level event count at which it stabilized (-1 while
	// unstabilized).
	stabilizedAt map[string]int
	steps        int
}

// NewSystem builds a fresh configuration. Workload lists the operations
// each process performs in order; policies assigns stabilization policies
// to eventually linearizable bases (nil means all Immediate); recordBase
// enables base-level history recording.
func NewSystem(impl machine.Impl, workload [][]spec.Op, policies base.PolicyFor, opts check.Options, recordBase bool) (*System, error) {
	n := len(workload)
	if n == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if err := machine.Validate(impl, n); err != nil {
		return nil, err
	}
	objs, err := base.Instantiate(impl.Bases(), policies, opts)
	if err != nil {
		return nil, fmt.Errorf("sim: instantiate bases for %s: %w", impl.Name(), err)
	}
	s := &System{
		impl:         impl,
		bases:        objs,
		procs:        make([]machine.Process, n),
		running:      make([]bool, n),
		nextResp:     make([]int64, n),
		opIdx:        make([]int, n),
		workload:     workload,
		hist:         history.New(),
		stabilizedAt: make(map[string]int),
	}
	if recordBase {
		s.baseHist = history.New()
	}
	for p := 0; p < n; p++ {
		s.procs[p] = impl.NewProcess(p, n)
	}
	for _, b := range objs {
		if ev, ok := b.(*base.Eventual); ok && !ev.Stabilized() {
			s.stabilizedAt[b.Name()] = -1
		}
	}
	return s, nil
}

// NumProcs returns the number of processes.
func (s *System) NumProcs() int { return len(s.procs) }

// Impl returns the implementation under execution.
func (s *System) Impl() machine.Impl { return s.impl }

// Steps returns the number of Advance calls performed.
func (s *System) Steps() int { return s.steps }

// History returns the implemented-level history recorded so far. The
// returned value is live; callers must not mutate it.
func (s *System) History() *history.History { return s.hist }

// BaseHistory returns the base-level history (nil if recording was off).
func (s *System) BaseHistory() *history.History { return s.baseHist }

// StabilizedAt returns, per eventually linearizable base, the
// implemented-level event index at which it stabilized (-1 if it has not).
func (s *System) StabilizedAt() map[string]int {
	out := make(map[string]int, len(s.stabilizedAt))
	for k, v := range s.stabilizedAt {
		out[k] = v
	}
	return out
}

// BaseStates returns the current state of every base object by name.
func (s *System) BaseStates() map[string]spec.State {
	out := make(map[string]spec.State, len(s.bases))
	for _, b := range s.bases {
		out[b.Name()] = b.State()
	}
	return out
}

// Bases returns the live base objects (callers must not mutate them).
func (s *System) Bases() []base.Object { return s.bases }

// Proc returns process p's programme (callers must not step it directly).
func (s *System) Proc(p int) machine.Process { return s.procs[p] }

// Enabled returns the processes that can take a step: mid-operation, or
// idle with workload remaining.
func (s *System) Enabled() []int {
	var out []int
	for p := range s.procs {
		if s.running[p] || s.opIdx[p] < len(s.workload[p]) {
			out = append(out, p)
		}
	}
	return out
}

// Done reports whether every process has completed its workload.
func (s *System) Done() bool { return len(s.Enabled()) == 0 }

// OpsBegun returns the number of operations process p has begun.
func (s *System) OpsBegun(p int) int { return s.opIdx[p] }

// Running reports whether process p is mid-operation.
func (s *System) Running(p int) bool { return s.running[p] }

// NextAction returns the action process p would take if scheduled now,
// without advancing the system, plus whether scheduling p would begin a new
// operation. It clones p's programme, so the system is unchanged.
func (s *System) NextAction(p int) (machine.Action, bool, error) {
	if p < 0 || p >= len(s.procs) {
		return machine.Action{}, false, fmt.Errorf("sim: no process p%d", p)
	}
	probe := s.procs[p].Clone()
	begins := false
	if !s.running[p] {
		if s.opIdx[p] >= len(s.workload[p]) {
			return machine.Action{}, false, fmt.Errorf("sim: process p%d has no work", p)
		}
		probe.Begin(s.workload[p][s.opIdx[p]])
		begins = true
	}
	act := probe.Step(s.nextResp[p])
	if act.Kind == machine.ActInvoke && (act.Obj < 0 || act.Obj >= len(s.bases)) {
		return machine.Action{}, false, fmt.Errorf("sim: %s p%d invokes unknown base %d",
			s.impl.Name(), p, act.Obj)
	}
	return act, begins, nil
}

// Candidates returns the permitted responses for process p's next action.
// Returns operations have exactly one branch. The first candidate of a base
// invocation is always the true (linearizable) response.
func (s *System) Candidates(p int) ([]int64, error) {
	act, _, err := s.NextAction(p)
	if err != nil {
		return nil, err
	}
	if act.Kind == machine.ActReturn {
		return []int64{act.Ret}, nil
	}
	return s.bases[act.Obj].Candidates(p, act.Op)
}

// Advance performs one atomic step of process p, resolving a base
// invocation with the branch-th candidate response. For a return action,
// branch must be 0. It records history events and stabilization points.
func (s *System) Advance(p, branch int) error {
	act, begins, err := s.NextAction(p)
	if err != nil {
		return err
	}
	if begins {
		op := s.workload[p][s.opIdx[p]]
		if err := s.hist.Invoke(p, s.impl.Name(), op); err != nil {
			return fmt.Errorf("sim: record invoke: %w", err)
		}
		s.procs[p].Begin(op)
		s.opIdx[p]++
		s.running[p] = true
	}
	real := s.procs[p].Step(s.nextResp[p])
	if real != act {
		return fmt.Errorf("sim: nondeterministic programme in %s: probe %s, real %s",
			s.impl.Name(), act, real)
	}
	s.steps++
	switch act.Kind {
	case machine.ActReturn:
		if branch != 0 {
			return fmt.Errorf("sim: return action has a single branch, got %d", branch)
		}
		if err := s.hist.Respond(p, act.Ret); err != nil {
			return fmt.Errorf("sim: record respond: %w", err)
		}
		s.running[p] = false
		s.nextResp[p] = 0
		return nil
	case machine.ActInvoke:
		obj := s.bases[act.Obj]
		cands, err := obj.Candidates(p, act.Op)
		if err != nil {
			return err
		}
		if branch < 0 || branch >= len(cands) {
			return fmt.Errorf("sim: branch %d out of range (%d candidates) on %s",
				branch, len(cands), obj.Name())
		}
		resp := cands[branch]
		if err := obj.Commit(p, act.Op, resp); err != nil {
			return err
		}
		if s.baseHist != nil {
			if err := s.baseHist.Call(p, obj.Name(), act.Op, resp); err != nil {
				return fmt.Errorf("sim: record base call: %w", err)
			}
		}
		if ev, ok := obj.(*base.Eventual); ok {
			if at, tracked := s.stabilizedAt[obj.Name()]; tracked && at < 0 && ev.Stabilized() {
				s.stabilizedAt[obj.Name()] = s.hist.Len()
			}
		}
		s.nextResp[p] = resp
		return nil
	default:
		return fmt.Errorf("sim: invalid action kind %d", int(act.Kind))
	}
}

// Clone returns a deep copy of the configuration (programmes, base objects,
// histories, progress counters).
func (s *System) Clone() *System {
	cp := &System{
		impl:         s.impl,
		bases:        make([]base.Object, len(s.bases)),
		procs:        make([]machine.Process, len(s.procs)),
		running:      append([]bool(nil), s.running...),
		nextResp:     append([]int64(nil), s.nextResp...),
		opIdx:        append([]int(nil), s.opIdx...),
		workload:     s.workload, // workloads are immutable
		hist:         s.hist.Clone(),
		stabilizedAt: make(map[string]int, len(s.stabilizedAt)),
		steps:        s.steps,
	}
	for i, b := range s.bases {
		cp.bases[i] = b.Clone()
	}
	for i, p := range s.procs {
		cp.procs[i] = p.Clone()
	}
	if s.baseHist != nil {
		cp.baseHist = s.baseHist.Clone()
	}
	for k, v := range s.stabilizedAt {
		cp.stabilizedAt[k] = v
	}
	return cp
}

// UniformWorkload returns a workload where each of n processes performs the
// same operation reps times.
func UniformWorkload(n, reps int, op spec.Op) [][]spec.Op {
	w := make([][]spec.Op, n)
	for p := range w {
		ops := make([]spec.Op, reps)
		for i := range ops {
			ops[i] = op
		}
		w[p] = ops
	}
	return w
}
