// Package sim executes implementations (package machine) against live base
// objects (package base) and records the resulting histories. The central
// type is System — one configuration of the asynchronous shared-memory
// model: process programmes plus base-object states. Systems support
// in-place traversal (Advance/Undo, which is what makes exhaustive
// exploration in package explore cheap) and deep copying (Clone, which is
// what makes the Proposition 18 configuration capture possible).
package sim

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// System is a live configuration: an implementation, its base objects, its
// process programmes, per-process progress through a workload, and the
// histories recorded so far. One Advance call performs one atomic step of
// one process, exactly the granularity of the paper's execution trees.
//
// Systems support two traversal styles. Clone captures an independent copy
// (for configurations a caller genuinely keeps: Proposition 18 witnesses,
// valency reports). For exhaustive exploration, EnableUndo switches on
// per-step undo records so a single mutable System can walk an execution
// tree with Advance/Undo instead of allocating a deep copy per edge.
type System struct {
	impl     machine.Impl
	bases    []base.Object
	procs    []machine.Process
	running  []bool  // process is mid-operation
	nextResp []int64 // response to feed the process's next Step
	opIdx    []int   // operations begun per process
	workload [][]spec.Op
	hist     *history.History
	baseHist *history.History // nil unless base recording enabled

	// stabilizedAt records, per eventually linearizable base object, the
	// implemented-level event count at which it stabilized (-1 while
	// unstabilized).
	stabilizedAt map[string]int
	steps        int

	// stateID uniquely identifies the current configuration along the
	// Advance/Undo path: every Advance assigns a fresh id, every Undo
	// restores the pre-step id. Caches tag their entries with the id they
	// were computed at; a tag mismatch means the configuration changed.
	stateID uint64
	nextID  uint64

	// actCache memoizes NextAction per process: the probe programme is
	// cloned and stepped once per (configuration, process) and the stepped
	// clone is installed by Advance, replacing the historical
	// probe-then-restep double execution. The displaced programme becomes
	// the undo record.
	actCache []actCache

	// candScratch memoizes the most recent candidate set (candTagProc at
	// candTagID). Advance(p, branch) immediately after Candidates/
	// CandidatesAppend reuses it instead of recomputing.
	candScratch []int64
	candTagProc int
	candTagID   uint64

	// undo is the LIFO step log populated while undoOn.
	undo   []undoRec
	undoOn bool

	// detCheck re-verifies programme determinism on every probe: see
	// EnableDeterminismCheck.
	detCheck bool

	fpBuf  []byte  // scratch for Fingerprint
	advBuf []int64 // scratch for Advance's branch resolution
}

// actCache memoizes one process's next action.
type actCache struct {
	id     uint64 // stateID the entry was computed at (0 = empty)
	act    machine.Action
	begins bool
	probe  machine.Process // the programme after taking act
}

// undoRec records everything one Advance changed.
type undoRec struct {
	proc         int
	prevProc     machine.Process
	prevRunning  bool
	prevOpIdx    int
	prevNextResp int64
	prevStateID  uint64
	histLen      int
	baseHistLen  int
	baseIdx      int // -1 when the step was a return action
	baseSnap     base.Snapshot
	stabName     string // base that stabilized on this step ("" if none)
}

// NewSystem builds a fresh configuration. Workload lists the operations
// each process performs in order; policies assigns stabilization policies
// to eventually linearizable bases (nil means all Immediate); recordBase
// enables base-level history recording.
func NewSystem(impl machine.Impl, workload [][]spec.Op, policies base.PolicyFor, opts check.Options, recordBase bool) (*System, error) {
	n := len(workload)
	if n == 0 {
		return nil, fmt.Errorf("sim: empty workload")
	}
	if err := machine.Validate(impl, n); err != nil {
		return nil, err
	}
	objs, err := base.Instantiate(impl.Bases(), policies, opts)
	if err != nil {
		return nil, fmt.Errorf("sim: instantiate bases for %s: %w", impl.Name(), err)
	}
	s := &System{
		impl:         impl,
		bases:        objs,
		procs:        make([]machine.Process, n),
		running:      make([]bool, n),
		nextResp:     make([]int64, n),
		opIdx:        make([]int, n),
		workload:     workload,
		hist:         history.New(),
		stabilizedAt: make(map[string]int),
		stateID:      1,
		nextID:       1,
		actCache:     make([]actCache, n),
		candTagProc:  -1,
	}
	if recordBase {
		s.baseHist = history.New()
	}
	for p := 0; p < n; p++ {
		s.procs[p] = impl.NewProcess(p, n)
	}
	for _, b := range objs {
		if ev, ok := b.(*base.Eventual); ok && !ev.Stabilized() {
			s.stabilizedAt[b.Name()] = -1
		}
	}
	return s, nil
}

// NumProcs returns the number of processes.
func (s *System) NumProcs() int { return len(s.procs) }

// Impl returns the implementation under execution.
func (s *System) Impl() machine.Impl { return s.impl }

// Steps returns the number of Advance calls performed.
func (s *System) Steps() int { return s.steps }

// History returns the implemented-level history recorded so far. The
// returned value is live; callers must not mutate it.
func (s *System) History() *history.History { return s.hist }

// BaseHistory returns the base-level history (nil if recording was off).
func (s *System) BaseHistory() *history.History { return s.baseHist }

// StabilizedAt returns, per eventually linearizable base, the
// implemented-level event index at which it stabilized (-1 if it has not).
// The map is a fresh copy; hot paths use StabilizedIndex instead.
func (s *System) StabilizedAt() map[string]int {
	out := make(map[string]int, len(s.stabilizedAt))
	for k, v := range s.stabilizedAt {
		out[k] = v
	}
	return out
}

// StabilizedIndex returns the stabilization event index of the named
// eventually linearizable base (-1 while unstabilized) without copying the
// tracking map. The second result is false when the base is not tracked.
func (s *System) StabilizedIndex(name string) (int, bool) {
	at, ok := s.stabilizedAt[name]
	return at, ok
}

// BaseStates returns the current state of every base object by name.
func (s *System) BaseStates() map[string]spec.State {
	out := make(map[string]spec.State, len(s.bases))
	for _, b := range s.bases {
		out[b.Name()] = b.State()
	}
	return out
}

// Bases returns the live base objects (callers must not mutate them).
func (s *System) Bases() []base.Object { return s.bases }

// Proc returns process p's programme (callers must not step it directly).
func (s *System) Proc(p int) machine.Process { return s.procs[p] }

// CanStep reports whether process p can take a step: mid-operation, or
// idle with workload remaining. It is the allocation-free primitive behind
// Enabled and the one exploration loops iterate with.
func (s *System) CanStep(p int) bool {
	return s.running[p] || s.opIdx[p] < len(s.workload[p])
}

// EnabledCount returns the number of processes that can take a step.
func (s *System) EnabledCount() int {
	n := 0
	for p := range s.procs {
		if s.CanStep(p) {
			n++
		}
	}
	return n
}

// AppendEnabled appends the enabled process ids (ascending) to buf and
// returns the extended slice. Callers on hot paths pass a reused buffer.
func (s *System) AppendEnabled(buf []int) []int {
	for p := range s.procs {
		if s.CanStep(p) {
			buf = append(buf, p)
		}
	}
	return buf
}

// Enabled returns the processes that can take a step: mid-operation, or
// idle with workload remaining. The slice is freshly allocated; hot paths
// use AppendEnabled or CanStep instead.
func (s *System) Enabled() []int {
	if s.EnabledCount() == 0 {
		return nil
	}
	return s.AppendEnabled(make([]int, 0, len(s.procs)))
}

// Done reports whether every process has completed its workload.
func (s *System) Done() bool {
	for p := range s.procs {
		if s.CanStep(p) {
			return false
		}
	}
	return true
}

// OpsBegun returns the number of operations process p has begun.
func (s *System) OpsBegun(p int) int { return s.opIdx[p] }

// Running reports whether process p is mid-operation.
func (s *System) Running(p int) bool { return s.running[p] }

// nextActionCached computes (and memoizes) process p's next action. The
// probe programme is cloned from p's current programme, Begin'd if a new
// operation starts, and stepped once; the stepped clone is kept so Advance
// can install it directly instead of re-stepping the live programme. The
// cache entry stays valid for the current configuration only (stateID tag),
// which also revalidates it after an Undo returns to this configuration.
func (s *System) nextActionCached(p int) (*actCache, error) {
	if p < 0 || p >= len(s.procs) {
		return nil, fmt.Errorf("sim: no process p%d", p)
	}
	c := &s.actCache[p]
	if c.id == s.stateID {
		return c, nil
	}
	probe := s.procs[p].Clone()
	begins := false
	if !s.running[p] {
		if s.opIdx[p] >= len(s.workload[p]) {
			return nil, fmt.Errorf("sim: process p%d has no work", p)
		}
		probe.Begin(s.workload[p][s.opIdx[p]])
		begins = true
	}
	act := probe.Step(s.nextResp[p])
	if act.Kind == machine.ActInvoke && (act.Obj < 0 || act.Obj >= len(s.bases)) {
		return nil, fmt.Errorf("sim: %s p%d invokes unknown base %d",
			s.impl.Name(), p, act.Obj)
	}
	if s.detCheck {
		// Step a second, independent clone identically and compare: the
		// machine.Process contract requires Step to be a deterministic
		// function of the programme state, and the advance/undo engine
		// silently assumes it (the stepped probe is installed without
		// re-stepping the live programme). A divergence here means the
		// implementation draws on state outside its Clone — shared pointers,
		// global randomness, map iteration — and every exploration result
		// over it is suspect.
		probe2 := s.procs[p].Clone()
		if begins {
			probe2.Begin(s.workload[p][s.opIdx[p]])
		}
		if act2 := probe2.Step(s.nextResp[p]); act2 != act {
			return nil, fmt.Errorf(
				"sim: %s p%d is nondeterministic: identical probes stepped to %v and %v",
				s.impl.Name(), p, act, act2)
		}
	}
	c.id = s.stateID
	c.act = act
	c.begins = begins
	c.probe = probe
	return c, nil
}

// NextAction returns the action process p would take if scheduled now,
// without advancing the system, plus whether scheduling p would begin a new
// operation. The system is unchanged (the probe runs on a clone of p's
// programme, which is cached and reused by the following Advance).
func (s *System) NextAction(p int) (machine.Action, bool, error) {
	c, err := s.nextActionCached(p)
	if err != nil {
		return machine.Action{}, false, err
	}
	return c.act, c.begins, nil
}

// CandidatesAppend appends the permitted responses for process p's next
// action to buf and returns the extended slice. Return actions have exactly
// one candidate; the first candidate of a base invocation is always the
// true (linearizable) response. The result is additionally memoized for the
// current configuration so that an immediately following Advance resolves
// its branch without recomputing the candidate set.
func (s *System) CandidatesAppend(p int, buf []int64) ([]int64, error) {
	c, err := s.nextActionCached(p)
	if err != nil {
		return nil, err
	}
	start := len(buf)
	if c.act.Kind == machine.ActReturn {
		buf = append(buf, c.act.Ret)
	} else {
		cands, err := s.bases[c.act.Obj].Candidates(p, c.act.Op)
		if err != nil {
			return nil, err
		}
		buf = append(buf, cands...)
	}
	s.candScratch = append(s.candScratch[:0], buf[start:]...)
	s.candTagProc = p
	s.candTagID = s.stateID
	return buf, nil
}

// Candidates returns the permitted responses for process p's next action as
// a fresh slice (safe to retain). Hot paths use CandidatesAppend with a
// reused buffer instead.
func (s *System) Candidates(p int) ([]int64, error) {
	return s.CandidatesAppend(p, nil)
}

// EnableUndo switches on per-step undo recording: every subsequent Advance
// pushes a record that Undo pops to restore the prior configuration.
// Exploration engines enable it on their working copy; long random runs
// (sim.Run) leave it off so the step log does not grow without bound.
func (s *System) EnableUndo() { s.undoOn = true }

// EnableDeterminismCheck makes every probe step its programme clone twice
// and compare the actions, turning a nondeterministic implementation (one
// whose Step depends on state outside its Clone) into a hard error instead
// of one arbitrary explored behaviour. It roughly doubles the per-step
// programme cost; exploration exposes it as Config.CheckDeterminism.
func (s *System) EnableDeterminismCheck() { s.detCheck = true }

// UndoDepth returns the number of recorded steps available to Undo.
func (s *System) UndoDepth() int { return len(s.undo) }

// Undo reverts the most recent Advance recorded while undo was enabled:
// programme, progress counters, histories, the touched base object and the
// stabilization point are restored from the step's undo record.
func (s *System) Undo() error {
	if len(s.undo) == 0 {
		return fmt.Errorf("sim: nothing to undo")
	}
	rec := &s.undo[len(s.undo)-1]
	s.procs[rec.proc] = rec.prevProc
	s.running[rec.proc] = rec.prevRunning
	s.opIdx[rec.proc] = rec.prevOpIdx
	s.nextResp[rec.proc] = rec.prevNextResp
	s.hist.Truncate(rec.histLen)
	if s.baseHist != nil {
		s.baseHist.Truncate(rec.baseHistLen)
	}
	if rec.baseIdx >= 0 {
		s.bases[rec.baseIdx].Restore(rec.baseSnap)
	}
	if rec.stabName != "" {
		s.stabilizedAt[rec.stabName] = -1
	}
	s.steps--
	s.stateID = rec.prevStateID
	rec.prevProc = nil // release for GC
	s.undo = s.undo[:len(s.undo)-1]
	return nil
}

// UndoTo pops undo records until at most n remain, restoring the
// configuration the system had when its undo log was n steps deep. Workers
// that seed themselves on a subtree (advance along a branch path, explore,
// return) use UndoTo(0) to rewind to the root in one call.
func (s *System) UndoTo(n int) error {
	if n < 0 {
		return fmt.Errorf("sim: UndoTo(%d): negative depth", n)
	}
	for len(s.undo) > n {
		if err := s.Undo(); err != nil {
			return err
		}
	}
	return nil
}

// Advance performs one atomic step of process p, resolving a base
// invocation with the branch-th candidate response. For a return action,
// branch must be 0. It records history events and stabilization points.
func (s *System) Advance(p, branch int) error {
	if s.candTagProc == p && s.candTagID == s.stateID {
		if branch < 0 || branch >= len(s.candScratch) {
			return fmt.Errorf("sim: branch %d out of range (%d candidates)", branch, len(s.candScratch))
		}
		return s.AdvanceResp(p, s.candScratch[branch])
	}
	buf, err := s.CandidatesAppend(p, s.advBuf[:0])
	if err != nil {
		return err
	}
	s.advBuf = buf
	if branch < 0 || branch >= len(buf) {
		return fmt.Errorf("sim: branch %d out of range (%d candidates)", branch, len(buf))
	}
	return s.AdvanceResp(p, buf[branch])
}

// AdvanceResp performs one atomic step of process p, resolving a base
// invocation with the given response, which must be one of the process's
// current Candidates — anything else is rejected, so a caller can never
// record an execution outside the paper's tree. The membership check is
// free when Candidates/CandidatesAppend was just called for p (the memo is
// still valid); otherwise the candidate set is recomputed. For a return
// action resp must equal the returned value.
func (s *System) AdvanceResp(p int, resp int64) error {
	c, err := s.nextActionCached(p)
	if err != nil {
		return err
	}
	switch c.act.Kind {
	case machine.ActReturn:
		if resp != c.act.Ret {
			return fmt.Errorf("sim: return action yields %d, got response %d", c.act.Ret, resp)
		}
	case machine.ActInvoke:
		cands := s.candScratch
		if s.candTagProc != p || s.candTagID != s.stateID {
			cands, err = s.CandidatesAppend(p, s.advBuf[:0])
			if err != nil {
				return err
			}
			s.advBuf = cands
		}
		member := false
		for _, r := range cands {
			if r == resp {
				member = true
				break
			}
		}
		if !member {
			return fmt.Errorf("sim: response %d is not a candidate (%v) for p%d on %s",
				resp, cands, p, s.bases[c.act.Obj].Name())
		}
	default:
		return fmt.Errorf("sim: invalid action kind %d", int(c.act.Kind))
	}
	var rec undoRec
	if s.undoOn {
		rec = undoRec{
			proc:         p,
			prevProc:     s.procs[p],
			prevRunning:  s.running[p],
			prevOpIdx:    s.opIdx[p],
			prevNextResp: s.nextResp[p],
			prevStateID:  s.stateID,
			histLen:      s.hist.Len(),
			baseIdx:      -1,
		}
		if s.baseHist != nil {
			rec.baseHistLen = s.baseHist.Len()
		}
	}
	if c.begins {
		op := s.workload[p][s.opIdx[p]]
		if err := s.hist.Invoke(p, s.impl.Name(), op); err != nil {
			return fmt.Errorf("sim: record invoke: %w", err)
		}
		s.opIdx[p]++
		s.running[p] = true
	}
	// Install the probe: it is the live programme advanced by exactly this
	// step. The displaced programme is untouched and serves as the undo
	// record, eliminating the historical probe-then-restep double execution.
	// This leans on the machine.Process contract that Step is deterministic:
	// the old engine re-stepped the live programme and could detect a
	// divergent (buggy) implementation; this one cannot, so a
	// nondeterministic Step yields one arbitrary behaviour instead of an
	// error.
	s.procs[p] = c.probe
	if c.act.Kind == machine.ActReturn {
		if err := s.hist.Respond(p, c.act.Ret); err != nil {
			return fmt.Errorf("sim: record respond: %w", err)
		}
		s.running[p] = false
		s.nextResp[p] = 0
	} else {
		obj := s.bases[c.act.Obj]
		if s.undoOn {
			rec.baseIdx = c.act.Obj
			rec.baseSnap = obj.Snapshot()
		}
		if err := obj.Commit(p, c.act.Op, resp); err != nil {
			return err
		}
		if s.baseHist != nil {
			if err := s.baseHist.Call(p, obj.Name(), c.act.Op, resp); err != nil {
				return fmt.Errorf("sim: record base call: %w", err)
			}
		}
		if ev, ok := obj.(*base.Eventual); ok {
			if at, tracked := s.stabilizedAt[obj.Name()]; tracked && at < 0 && ev.Stabilized() {
				s.stabilizedAt[obj.Name()] = s.hist.Len()
				if s.undoOn {
					rec.stabName = obj.Name()
				}
			}
		}
		s.nextResp[p] = resp
	}
	s.steps++
	s.nextID++
	s.stateID = s.nextID
	if s.undoOn {
		s.undo = append(s.undo, rec)
	}
	return nil
}

// AppendConfigFingerprint appends an injective byte encoding of the
// configuration to b: per process the progress counters, pending-response
// and programme state, plus every base object's state (including, for
// eventually linearizable objects, the committed log the Definition 1
// candidate sets derive from). Recorded histories are deliberately
// excluded: two configurations with equal encodings have identical future
// behaviour, which is the equivalence the explore package's deduplication
// option merges on — the full encoding (not a hash of it) is what visited
// sets must compare, so a collision can never silently merge distinct
// configurations.
//
// The second result is false when some programme does not implement
// machine.Fingerprinter; deduplication is unavailable for such
// implementations.
func (s *System) AppendConfigFingerprint(b []byte) ([]byte, bool) {
	for p := range s.procs {
		f, ok := s.procs[p].(machine.Fingerprinter)
		if !ok {
			return b, false
		}
		flag := byte(0)
		if s.running[p] {
			flag = 1
		}
		b = machine.AppendFPInt(b, int64(p))
		b = append(b, flag)
		b = machine.AppendFPInt(b, int64(s.opIdx[p]))
		b = machine.AppendFPInt(b, s.nextResp[p])
		b, ok = f.AppendFingerprint(b)
		if !ok {
			return b, false
		}
	}
	for _, ob := range s.bases {
		b = ob.AppendFingerprint(b)
	}
	return b, true
}

// Fingerprint returns a 64-bit FNV-1a hash of AppendConfigFingerprint's
// encoding — a compact configuration digest for logging and tests. Exact
// deduplication compares the full encoding instead.
func (s *System) Fingerprint() (uint64, bool) {
	b, ok := s.AppendConfigFingerprint(s.fpBuf[:0])
	s.fpBuf = b
	if !ok {
		return 0, false
	}
	return spec.FNV64(b), true
}

// Clone returns a deep copy of the configuration (programmes, base objects,
// histories, progress counters). The copy starts with empty caches and an
// empty undo log.
func (s *System) Clone() *System {
	cp := &System{
		impl:         s.impl,
		bases:        make([]base.Object, len(s.bases)),
		procs:        make([]machine.Process, len(s.procs)),
		running:      append([]bool(nil), s.running...),
		nextResp:     append([]int64(nil), s.nextResp...),
		opIdx:        append([]int(nil), s.opIdx...),
		workload:     s.workload, // workloads are immutable
		hist:         s.hist.Clone(),
		stabilizedAt: make(map[string]int, len(s.stabilizedAt)),
		steps:        s.steps,
		stateID:      1,
		nextID:       1,
		actCache:     make([]actCache, len(s.procs)),
		candTagProc:  -1,
		detCheck:     s.detCheck,
	}
	for i, b := range s.bases {
		cp.bases[i] = b.Clone()
	}
	for i, p := range s.procs {
		cp.procs[i] = p.Clone()
	}
	if s.baseHist != nil {
		cp.baseHist = s.baseHist.Clone()
	}
	for k, v := range s.stabilizedAt {
		cp.stabilizedAt[k] = v
	}
	return cp
}

// UniformWorkload returns a workload where each of n processes performs the
// same operation reps times.
func UniformWorkload(n, reps int, op spec.Op) [][]spec.Op {
	w := make([][]spec.Op, n)
	for p := range w {
		ops := make([]spec.Op, reps)
		for i := range ops {
			ops[i] = op
		}
		w[p] = ops
	}
	return w
}
