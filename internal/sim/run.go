package sim

import (
	"fmt"
	"math/rand"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// Scheduler picks which enabled process takes the next step. All schedulers
// must be deterministic functions of their inputs (randomness comes from
// the supplied generator), so runs are reproducible from a seed.
type Scheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// Pick selects one process from enabled (never empty), or returns a
	// negative value to halt the run (e.g. every remaining process has
	// crashed).
	Pick(enabled []int, step int, r *rand.Rand) int
}

// RoundRobin cycles through processes.
type RoundRobin struct{}

// Name implements Scheduler.
func (RoundRobin) Name() string { return "roundrobin" }

// Pick implements Scheduler.
func (RoundRobin) Pick(enabled []int, step int, _ *rand.Rand) int {
	return enabled[step%len(enabled)]
}

// Random picks uniformly at random.
type Random struct{}

// Name implements Scheduler.
func (Random) Name() string { return "random" }

// Pick implements Scheduler.
func (Random) Pick(enabled []int, _ int, r *rand.Rand) int {
	return enabled[r.Intn(len(enabled))]
}

// Solo runs one distinguished process whenever it is enabled, falling back
// to round-robin among the rest (used for obstruction-freedom probes).
type Solo struct {
	// P is the distinguished process.
	P int
}

// Name implements Scheduler.
func (s Solo) Name() string { return fmt.Sprintf("solo(p%d)", s.P) }

// Pick implements Scheduler.
func (s Solo) Pick(enabled []int, step int, _ *rand.Rand) int {
	for _, p := range enabled {
		if p == s.P {
			return p
		}
	}
	return enabled[step%len(enabled)]
}

// Burst alternates contention phases (random among all) with quiescent
// phases (one process runs solo), modelling the "unusually high contention"
// regime of the paper's introduction.
type Burst struct {
	// Phase is the number of steps per phase.
	Phase int
}

// Name implements Scheduler.
func (b Burst) Name() string { return fmt.Sprintf("burst(%d)", b.Phase) }

// Pick implements Scheduler.
func (b Burst) Pick(enabled []int, step int, r *rand.Rand) int {
	phase := b.Phase
	if phase <= 0 {
		phase = 8
	}
	if (step/phase)%2 == 0 {
		return enabled[r.Intn(len(enabled))]
	}
	return enabled[(step/phase)%len(enabled)]
}

// Ratio starves one process: the victim is scheduled only every Every-th
// step, the others round-robin in between. With Every aligned to an
// opponent's operation length this is the classic adversary that keeps a
// CAS loop failing forever: the victim's read-CAS window always spans a
// completed opponent operation. It separates wait-freedom (the victim
// still finishes, e.g. the sloppy counter) from mere non-blocking progress
// (the victim starves while others complete, e.g. the CAS counter).
type Ratio struct {
	// Victim is the starved process.
	Victim int
	// Every schedules the victim on step indices divisible by Every
	// (default 4 — one victim step per three opponent steps).
	Every int
}

// Name implements Scheduler.
func (ra Ratio) Name() string { return fmt.Sprintf("ratio(p%d,1/%d)", ra.Victim, ra.every()) }

func (ra Ratio) every() int {
	if ra.Every <= 1 {
		return 4
	}
	return ra.Every
}

// Pick implements Scheduler.
func (ra Ratio) Pick(enabled []int, step int, _ *rand.Rand) int {
	victimEnabled := false
	others := make([]int, 0, len(enabled))
	for _, p := range enabled {
		if p == ra.Victim {
			victimEnabled = true
		} else {
			others = append(others, p)
		}
	}
	if victimEnabled && (step%ra.every() == 0 || len(others) == 0) {
		return ra.Victim
	}
	if len(others) == 0 {
		return enabled[0]
	}
	return others[step%len(others)]
}

// Crash stops scheduling the victim after a given step, modelling a process
// that is "swapped or paged out" forever mid-operation — the failure the
// paper's progress conditions quantify over.
type Crash struct {
	// Victim is the crashed process.
	Victim int
	// After is the step index at which the victim stops being scheduled.
	After int
	// Inner schedules the remaining processes (default RoundRobin).
	Inner Scheduler
}

// Name implements Scheduler.
func (c Crash) Name() string { return fmt.Sprintf("crash(p%d@%d)", c.Victim, c.After) }

// Pick implements Scheduler.
func (c Crash) Pick(enabled []int, step int, r *rand.Rand) int {
	inner := c.Inner
	if inner == nil {
		inner = RoundRobin{}
	}
	if step < c.After {
		return inner.Pick(enabled, step, r)
	}
	alive := make([]int, 0, len(enabled))
	for _, p := range enabled {
		if p != c.Victim {
			alive = append(alive, p)
		}
	}
	if len(alive) == 0 {
		return -1 // only the crashed process remains: halt the run
	}
	return inner.Pick(alive, step, r)
}

// Chooser picks the response an eventually linearizable base object gives,
// from its candidate set (candidates[0] is always the true response).
type Chooser interface {
	// Name identifies the chooser in reports.
	Name() string
	// Choose returns one element of cands.
	Choose(cands []int64, r *rand.Rand) int64
}

// TrueChooser always answers truthfully (the degenerate adversary).
type TrueChooser struct{}

// Name implements Chooser.
func (TrueChooser) Name() string { return "true" }

// Choose implements Chooser.
func (TrueChooser) Choose(cands []int64, _ *rand.Rand) int64 { return cands[0] }

// StaleChooser answers with a weakly consistent lie whenever one exists.
type StaleChooser struct{}

// Name implements Chooser.
func (StaleChooser) Name() string { return "stale" }

// Choose implements Chooser.
func (StaleChooser) Choose(cands []int64, r *rand.Rand) int64 {
	if len(cands) == 1 {
		return cands[0]
	}
	return cands[1+r.Intn(len(cands)-1)]
}

// MixChooser lies with probability P.
type MixChooser struct {
	// P is the lie probability in [0,1].
	P float64
}

// Name implements Chooser.
func (m MixChooser) Name() string { return fmt.Sprintf("mix(%.2f)", m.P) }

// Choose implements Chooser.
func (m MixChooser) Choose(cands []int64, r *rand.Rand) int64 {
	if len(cands) == 1 || m.P <= 0 || r.Float64() >= m.P {
		return cands[0]
	}
	return cands[1+r.Intn(len(cands)-1)]
}

// Config describes one simulation run.
type Config struct {
	// Impl is the implementation to execute.
	Impl machine.Impl
	// Workload lists each process's operations in order.
	Workload [][]spec.Op
	// Scheduler picks processes (default RoundRobin).
	Scheduler Scheduler
	// Chooser resolves eventually linearizable responses (default
	// TrueChooser).
	Chooser Chooser
	// Policies assigns stabilization policies to eventually linearizable
	// bases (default: all Immediate).
	Policies base.PolicyFor
	// Seed seeds the run's randomness.
	Seed int64
	// MaxSteps bounds the run (default 1 << 16). Runs that exhaust the
	// bound report TimedOut; this is how non-terminating executions (e.g.
	// livelocked CAS loops under adversarial scheduling) surface.
	MaxSteps int
	// RecordBase enables base-level history recording.
	RecordBase bool
	// CheckOpts configures the weak-consistency candidate computations of
	// eventually linearizable bases.
	CheckOpts check.Options
}

// Result is the outcome of a run.
type Result struct {
	// History is the implemented-level history.
	History *history.History
	// BaseHistory is the base-level history, if recorded.
	BaseHistory *history.History
	// Steps is the number of atomic steps taken.
	Steps int
	// TimedOut reports that MaxSteps was reached before the workload
	// completed.
	TimedOut bool
	// StabilizedAt maps each eventually linearizable base to the
	// implemented-level event index at which it stabilized (-1 if never).
	StabilizedAt map[string]int
	// OpsCompleted counts completed operations per process.
	OpsCompleted []int
}

// Run executes cfg to completion (or MaxSteps) and returns the recorded
// histories.
func Run(cfg Config) (*Result, error) {
	if cfg.Scheduler == nil {
		cfg.Scheduler = RoundRobin{}
	}
	if cfg.Chooser == nil {
		cfg.Chooser = TrueChooser{}
	}
	maxSteps := cfg.MaxSteps
	if maxSteps <= 0 {
		maxSteps = 1 << 16
	}
	sys, err := NewSystem(cfg.Impl, cfg.Workload, cfg.Policies, cfg.CheckOpts, cfg.RecordBase)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	timedOut := false
	var enabled []int
	for step := 0; ; step++ {
		enabled = sys.AppendEnabled(enabled[:0])
		if len(enabled) == 0 {
			break
		}
		if step >= maxSteps {
			timedOut = true
			break
		}
		p := cfg.Scheduler.Pick(enabled, step, r)
		if p < 0 {
			break // the scheduler declared the run stuck (all crashed)
		}
		cands, err := sys.Candidates(p)
		if err != nil {
			return nil, err
		}
		branch := 0
		if len(cands) > 1 {
			resp := cfg.Chooser.Choose(cands, r)
			branch = -1
			for i, c := range cands {
				if c == resp {
					branch = i
					break
				}
			}
			if branch < 0 {
				return nil, fmt.Errorf("sim: chooser %s returned %d, not a candidate %v",
					cfg.Chooser.Name(), resp, cands)
			}
		}
		if err := sys.Advance(p, branch); err != nil {
			return nil, err
		}
	}
	res := &Result{
		History:      sys.History(),
		BaseHistory:  sys.BaseHistory(),
		Steps:        sys.Steps(),
		TimedOut:     timedOut,
		StabilizedAt: sys.StabilizedAt(),
		OpsCompleted: make([]int, sys.NumProcs()),
	}
	for _, op := range sys.History().Operations() {
		if !op.Pending() {
			res.OpsCompleted[op.Proc]++
		}
	}
	return res, nil
}
