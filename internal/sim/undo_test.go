package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
)

// observe captures everything externally visible about a configuration.
func observe(s *System) string {
	baseStates := fmt.Sprintf("%v", s.BaseStates())
	stab := fmt.Sprintf("%v", s.StabilizedAt())
	var progress string
	for p := 0; p < s.NumProcs(); p++ {
		progress += fmt.Sprintf("p%d:%d/%v ", p, s.OpsBegun(p), s.Running(p))
	}
	baseHist := ""
	if s.BaseHistory() != nil {
		baseHist = s.BaseHistory().String()
	}
	return fmt.Sprintf("steps=%d enabled=%v\n%s\n%s\n%s\nhist:\n%s\nbase:\n%s",
		s.Steps(), s.Enabled(), progress, baseStates, stab, s.History().String(), baseHist)
}

func TestUndoRestoresObservableState(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(2, 2, fetchinc), nil, check.Options{}, true)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableUndo()
	before := observe(sys)
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	if observe(sys) == before {
		t.Fatal("advance did not change the observable state")
	}
	if err := sys.Undo(); err != nil {
		t.Fatal(err)
	}
	if got := observe(sys); got != before {
		t.Fatalf("undo did not restore the configuration:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if err := sys.Undo(); err == nil {
		t.Fatal("undo on an empty log must fail")
	}
}

// TestUndoRandomWalkMatchesReplay drives a random walk of advances and
// undos on one system and checks that every configuration it passes
// through is identical (in all observable respects) to a fresh system
// advanced along the same remaining path.
func TestUndoRandomWalkMatchesReplay(t *testing.T) {
	impls := []struct {
		name string
		mk   func() (*System, error)
	}{
		{"cas-counter", func() (*System, error) {
			return NewSystem(counter.CAS{}, UniformWorkload(2, 2, fetchinc), nil, check.Options{}, true)
		}},
		{"el-consensus", func() (*System, error) {
			return NewSystem(elconsensus.Impl{}, UniformWorkloadProposals(2, 1),
				base.SamePolicy(base.Window{K: 1}), check.Options{}, false)
		}},
	}
	for _, tc := range impls {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(5))
			sys, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			sys.EnableUndo()
			type move struct {
				p, branch int
			}
			var path []move
			for i := 0; i < 300; i++ {
				if sys.UndoDepth() > 0 && (r.Intn(3) == 0 || sys.Done()) {
					if err := sys.Undo(); err != nil {
						t.Fatal(err)
					}
					path = path[:len(path)-1]
				} else if !sys.Done() {
					enabled := sys.Enabled()
					p := enabled[r.Intn(len(enabled))]
					cands, err := sys.Candidates(p)
					if err != nil {
						t.Fatal(err)
					}
					branch := r.Intn(len(cands))
					if err := sys.Advance(p, branch); err != nil {
						t.Fatal(err)
					}
					path = append(path, move{p, branch})
				}
				if i%20 != 0 {
					continue
				}
				// Replay the current path on a fresh system and compare.
				fresh, err := tc.mk()
				if err != nil {
					t.Fatal(err)
				}
				for _, m := range path {
					if err := fresh.Advance(m.p, m.branch); err != nil {
						t.Fatal(err)
					}
				}
				if got, want := observe(sys), observe(fresh); got != want {
					t.Fatalf("step %d: walked configuration diverges from replay:\nwalk:\n%s\nreplay:\n%s",
						i, got, want)
				}
			}
		})
	}
}

func TestUndoRestoresStabilizationPoint(t *testing.T) {
	sys, err := NewSystem(elconsensus.Impl{}, UniformWorkloadProposals(2, 1),
		base.SamePolicy(base.Window{K: 1}), check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	sys.EnableUndo()
	// Advance until some base stabilizes, then undo everything and check
	// all bases are unstabilized again.
	stabilized := func() bool {
		for _, at := range sys.StabilizedAt() {
			if at >= 0 {
				return true
			}
		}
		return false
	}
	guard := 0
	for !stabilized() && !sys.Done() {
		if err := sys.Advance(sys.Enabled()[0], 0); err != nil {
			t.Fatal(err)
		}
		if guard++; guard > 1000 {
			t.Fatal("no base stabilized")
		}
	}
	if !stabilized() {
		t.Fatal("workload finished without stabilization")
	}
	for sys.UndoDepth() > 0 {
		if err := sys.Undo(); err != nil {
			t.Fatal(err)
		}
	}
	if stabilized() {
		t.Fatalf("stabilization survived a full unwind: %v", sys.StabilizedAt())
	}
}

func TestAdvanceRespValidatesReturns(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(1, 1, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	// read, cas → the third step is the return.
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	act, _, err := sys.NextAction(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AdvanceResp(0, act.Ret+99); err == nil {
		t.Fatal("return action accepted a wrong response")
	}
	if err := sys.AdvanceResp(0, act.Ret); err != nil {
		t.Fatal(err)
	}
	if !sys.Done() {
		t.Fatal("workload should be complete")
	}
}

func TestCandidatesAppendReusesBuffer(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(2, 1, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int64, 0, 8)
	got, err := sys.CandidatesAppend(0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || &got[0] != &buf[:1][0] {
		t.Fatal("CandidatesAppend did not reuse the caller's buffer")
	}
	fresh, err := sys.Candidates(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, got) {
		t.Fatalf("Candidates %v != CandidatesAppend %v", fresh, got)
	}
}

func TestEnabledVariantsAgree(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(3, 1, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for !sys.Done() {
		enabled := sys.Enabled()
		if got := sys.AppendEnabled(nil); !reflect.DeepEqual(got, enabled) {
			t.Fatalf("AppendEnabled %v != Enabled %v", got, enabled)
		}
		if sys.EnabledCount() != len(enabled) {
			t.Fatalf("EnabledCount %d != len(Enabled) %d", sys.EnabledCount(), len(enabled))
		}
		for p := 0; p < sys.NumProcs(); p++ {
			want := false
			for _, q := range enabled {
				if q == p {
					want = true
				}
			}
			if sys.CanStep(p) != want {
				t.Fatalf("CanStep(%d) = %v, enabled %v", p, sys.CanStep(p), enabled)
			}
		}
		if err := sys.Advance(enabled[0], 0); err != nil {
			t.Fatal(err)
		}
	}
	if sys.EnabledCount() != 0 || sys.Enabled() != nil {
		t.Fatal("done system still reports enabled processes")
	}
}

func TestEnabledDoesNotAllocateOnHotPath(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(2, 1, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 0, 4)
	allocs := testing.AllocsPerRun(100, func() {
		buf = sys.AppendEnabled(buf[:0])
		_ = sys.EnabledCount()
		_ = sys.Done()
	})
	if allocs != 0 {
		t.Fatalf("enabled hot path allocates %.1f per run", allocs)
	}
}

func TestStabilizedIndexMatchesMap(t *testing.T) {
	sys, err := NewSystem(elconsensus.Impl{}, UniformWorkloadProposals(2, 1),
		base.SamePolicy(base.Window{K: 1}), check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	for !sys.Done() {
		if err := sys.Advance(sys.Enabled()[0], 0); err != nil {
			t.Fatal(err)
		}
	}
	m := sys.StabilizedAt()
	if len(m) == 0 {
		t.Fatal("no tracked bases")
	}
	for name, at := range m {
		got, ok := sys.StabilizedIndex(name)
		if !ok || got != at {
			t.Fatalf("StabilizedIndex(%q) = %d,%v; map has %d", name, got, ok, at)
		}
	}
	if _, ok := sys.StabilizedIndex("no-such-base"); ok {
		t.Fatal("unknown base reported as tracked")
	}
}
