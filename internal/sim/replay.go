package sim

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// ReplayConfig describes a commit-order replay of a recorded history inside
// the deterministic simulator.
type ReplayConfig struct {
	// Object is the specification the history claims to implement. Its Init
	// must be the state at the history's start (rebased windows carry it).
	Object spec.Object
	// Eventually replays against an eventually linearizable base instead of
	// an atomic one: recorded responses are accepted whenever they are
	// weakly consistent (Definition 1) rather than only when exact.
	Eventually bool
	// Policy is the stabilization policy of the eventual base (default
	// Never, the most permissive: no response is rejected merely for coming
	// late). Ignored unless Eventually.
	Policy base.Policy
	// CheckOpts configures the weak-consistency candidate computations.
	CheckOpts check.Options
}

// ReplayResult reports a commit-order replay.
type ReplayResult struct {
	// Diverged reports that some recorded response is outside the model:
	// for an atomic base it differs from the true serialization value, for
	// an eventual base it is not even weakly consistent. A diverged replay
	// confirms that no execution of the paper's model produces the recorded
	// commit-order behaviour.
	Diverged bool
	// Event is the index (in the source history) of the response event at
	// which the replay diverged.
	Event int
	// Proc and Op identify the diverging operation.
	Proc int
	Op   spec.Op
	// Got is the recorded response; Want are the responses the model
	// permits at that point.
	Got  int64
	Want []int64
	// Steps is the number of simulator steps taken.
	Steps int
	// History is the simulator-recorded history up to the divergence (or
	// the full serialization when the replay completes). Each operation's
	// invocation is recorded at its commit point, so the history reads as
	// the commit-order serialization itself.
	History *history.History
}

// Replay re-executes a recorded single-object history in the deterministic
// simulator, following the recorded commit order: a passthrough
// implementation over one base object is driven so that each operation
// performs its base action exactly when its response event appears in h,
// and the base is asked to commit the recorded response. The history's
// response events must therefore be placed in commit order — the recording
// discipline of the live runtime, whose response events carry commit
// tickets — not at client-return time (an arbitrary sim.Run history records
// responses at return actions, which may trail the commit out of order). sim.System rejects
// any response outside the paper's execution tree, so a completed replay
// certifies the recorded commit-order behaviour is reachable in the model,
// and a divergence pinpoints the first operation whose recorded response no
// model execution can give — the bridge that turns a live-runtime violation
// into a model-checker-level witness. Trailing pending invocations in h are
// ignored (they committed nothing).
func Replay(cfg ReplayConfig, h *history.History) (*ReplayResult, error) {
	objs := h.Objects()
	if len(objs) > 1 {
		return nil, fmt.Errorf("sim: replay of multi-object history %v", objs)
	}
	name := "replay"
	if len(objs) == 1 {
		name = objs[0]
	}
	impl := passthrough.New(name, cfg.Object, cfg.Eventually)
	procs := h.Procs()
	maxProc := -1
	for _, p := range procs {
		if p > maxProc {
			maxProc = p
		}
	}
	workload := make([][]spec.Op, maxProc+1)
	for _, op := range h.Operations() {
		workload[op.Proc] = append(workload[op.Proc], op.Op)
	}
	for p := range workload {
		if len(workload[p]) == 0 {
			// NewSystem requires every process to have work; idle process
			// ids (holes in the numbering) get one op that is never run.
			workload[p] = []spec.Op{fallbackOp(cfg.Object)}
		}
	}
	policy := cfg.Policy
	if policy == nil {
		policy = base.Never{}
	}
	sys, err := NewSystem(impl, workload, base.SamePolicy(policy), cfg.CheckOpts, false)
	if err != nil {
		return nil, fmt.Errorf("sim: replay system: %w", err)
	}
	res := &ReplayResult{}
	for i := 0; i < h.Len(); i++ {
		e := h.Event(i)
		if e.Kind != history.KindRespond {
			continue
		}
		// The operation's base action commits now, with the recorded
		// response; the return step follows immediately.
		cands, err := sys.Candidates(e.Proc)
		if err != nil {
			return nil, fmt.Errorf("sim: replay candidates at event %d: %w", i, err)
		}
		member := false
		for _, c := range cands {
			if c == e.Resp {
				member = true
				break
			}
		}
		act, _, err := sys.NextAction(e.Proc)
		if err != nil {
			return nil, fmt.Errorf("sim: replay action at event %d: %w", i, err)
		}
		if !member {
			res.Diverged = true
			res.Event = i
			res.Proc = e.Proc
			res.Op = act.Op
			res.Got = e.Resp
			res.Want = cands
			break
		}
		if err := sys.AdvanceResp(e.Proc, e.Resp); err != nil {
			return nil, fmt.Errorf("sim: replay base step at event %d: %w", i, err)
		}
		if err := sys.AdvanceResp(e.Proc, e.Resp); err != nil {
			return nil, fmt.Errorf("sim: replay return step at event %d: %w", i, err)
		}
	}
	res.Steps = sys.Steps()
	res.History = sys.History()
	return res, nil
}

// fallbackOp returns some operation of the object's type (for processes a
// replay never schedules).
func fallbackOp(obj spec.Object) spec.Op {
	if e, ok := obj.Type.(interface{ EnumOps() []spec.Op }); ok {
		if ops := e.EnumOps(); len(ops) > 0 {
			return ops[0]
		}
	}
	return spec.MakeOp(spec.MethodFetchInc)
}
