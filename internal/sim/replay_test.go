package sim

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

var replayFI = spec.MakeOp(spec.MethodFetchInc)

func TestReplayCleanConcurrent(t *testing.T) {
	// Two overlapping fetchincs answered in commit order, then a serial one.
	h := history.New()
	must(t, h.Invoke(0, "C", replayFI))
	must(t, h.Invoke(1, "C", replayFI))
	must(t, h.Respond(1, 0))
	must(t, h.Respond(0, 1))
	must(t, h.Call(0, "C", replayFI, 2))
	res, err := Replay(ReplayConfig{Object: spec.NewObject(spec.FetchInc{})}, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("clean history diverged: %+v", res)
	}
	if res.Steps != 6 {
		t.Fatalf("steps = %d, want 6 (2 per op)", res.Steps)
	}
	// The replayed history is the commit-order serialization.
	if !res.History.Sequential() {
		t.Fatalf("replay history not sequential:\n%s", res.History)
	}
	lin, err := check.Linearizable(map[string]spec.Object{"C": spec.NewObject(spec.FetchInc{})},
		res.History, check.Options{})
	if err != nil || !lin {
		t.Fatalf("replay serialization not linearizable (lin=%v err=%v)", lin, err)
	}
}

func TestReplayDivergesOnDuplicate(t *testing.T) {
	h := history.New()
	must(t, h.Call(0, "C", replayFI, 0))
	must(t, h.Call(1, "C", replayFI, 1))
	must(t, h.Call(0, "C", replayFI, 1)) // lost update: 1 handed out twice
	res, err := Replay(ReplayConfig{Object: spec.NewObject(spec.FetchInc{})}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged {
		t.Fatal("duplicate response did not diverge")
	}
	if res.Event != 5 || res.Proc != 0 || res.Got != 1 {
		t.Fatalf("divergence at event %d proc %d got %d, want 5/0/1", res.Event, res.Proc, res.Got)
	}
	if len(res.Want) != 1 || res.Want[0] != 2 {
		t.Fatalf("model permits %v, want [2]", res.Want)
	}
	if res.Steps != 4 {
		t.Fatalf("steps before divergence = %d, want 4", res.Steps)
	}
}

func TestReplayEventualAcceptsStale(t *testing.T) {
	// A stale (weakly consistent) response: second op answers 0 again after
	// the first completed. An atomic replay diverges; an eventual one with
	// the Never policy accepts it.
	h := history.New()
	must(t, h.Call(0, "C", replayFI, 0))
	must(t, h.Call(1, "C", replayFI, 0))
	atomicRes, err := Replay(ReplayConfig{Object: spec.NewObject(spec.FetchInc{})}, h)
	if err != nil {
		t.Fatal(err)
	}
	if !atomicRes.Diverged {
		t.Fatal("stale response accepted by atomic replay")
	}
	evRes, err := Replay(ReplayConfig{
		Object:     spec.NewObject(spec.FetchInc{}),
		Eventually: true,
		Policy:     base.Never{},
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	if evRes.Diverged {
		t.Fatalf("weakly consistent response rejected by eventual replay: %+v", evRes)
	}
}

func TestReplayPendingAndHoles(t *testing.T) {
	// Process ids with a hole (p0, p2) and a trailing pending invocation.
	h := history.New()
	must(t, h.Call(2, "C", replayFI, 0))
	must(t, h.Invoke(0, "C", replayFI))
	res, err := Replay(ReplayConfig{Object: spec.NewObject(spec.FetchInc{})}, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.Steps != 2 {
		t.Fatalf("diverged=%v steps=%d, want clean 2", res.Diverged, res.Steps)
	}
}

func TestReplayRoundTripSerialRun(t *testing.T) {
	// A serial simulator run replays cleanly: with one process the response
	// order and the commit order coincide, so the recorded history is in
	// replayable form by construction.
	run, err := Run(Config{
		Impl:     counter.CAS{},
		Workload: UniformWorkload(1, 6, replayFI),
		Seed:     11,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Replay(ReplayConfig{Object: counter.CAS{}.Spec()}, run.History)
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatalf("serial history diverged on replay: %+v", res)
	}
	if res.Steps != 12 {
		t.Fatalf("steps = %d, want 12", res.Steps)
	}
}

func TestReplayRejectsMultiObject(t *testing.T) {
	h := history.New()
	must(t, h.Call(0, "A", replayFI, 0))
	must(t, h.Call(0, "B", replayFI, 0))
	_, err := Replay(ReplayConfig{Object: spec.NewObject(spec.FetchInc{})}, h)
	if err == nil || !strings.Contains(err.Error(), "multi-object") {
		t.Fatalf("err = %v, want multi-object rejection", err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
