package sim

import (
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/spec"
)

var fetchinc = spec.MakeOp(spec.MethodFetchInc)

func implObjs(impl interface {
	Name() string
	Spec() spec.Object
}) map[string]spec.Object {
	return map[string]spec.Object{impl.Name(): impl.Spec()}
}

func TestCASCounterLinearizable(t *testing.T) {
	impl := counter.CAS{}
	for seed := int64(0); seed < 20; seed++ {
		res, err := Run(Config{
			Impl:      impl,
			Workload:  UniformWorkload(3, 4, fetchinc),
			Scheduler: Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("seed %d timed out", seed)
		}
		ok, err := check.Linearizable(implObjs(impl), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: CAS counter produced a non-linearizable history\n%s", seed, res.History)
		}
	}
}

func TestCASCounterCompletesAllOps(t *testing.T) {
	res, err := Run(Config{
		Impl:     counter.CAS{},
		Workload: UniformWorkload(4, 5, fetchinc),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for p, n := range res.OpsCompleted {
		if n != 5 {
			t.Errorf("p%d completed %d ops, want 5", p, n)
		}
	}
	if res.History.Len() != 4*5*2 {
		t.Errorf("history length = %d, want 40", res.History.Len())
	}
}

func TestSloppyCounterWeaklyConsistentButNotLinearizable(t *testing.T) {
	impl := counter.Sloppy{}
	sawViolation := false
	for seed := int64(0); seed < 30; seed++ {
		res, err := Run(Config{
			Impl:      impl,
			Workload:  UniformWorkload(3, 3, fetchinc),
			Scheduler: Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		wc, err := check.WeaklyConsistent(implObjs(impl), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !wc {
			t.Fatalf("seed %d: sloppy counter violated weak consistency\n%s", seed, res.History)
		}
		lin, err := check.Linearizable(implObjs(impl), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !lin {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("sloppy counter never violated linearizability across 30 random schedules")
	}
}

func TestSloppyCounterSoloIsAtomic(t *testing.T) {
	// With a single process the sloppy counter is exact.
	impl := counter.Sloppy{}
	res, err := Run(Config{
		Impl:     impl,
		Workload: UniformWorkload(1, 6, fetchinc),
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := check.Linearizable(implObjs(impl), res.History, check.Options{})
	if err != nil || !ok {
		t.Fatalf("solo sloppy counter not linearizable: %v %v\n%s", ok, err, res.History)
	}
}

func TestWarmupCounterEventuallyLinearizable(t *testing.T) {
	impl := counter.Warmup{Threshold: 6}
	obj := impl.Spec()
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(Config{
			Impl:      impl,
			Workload:  UniformWorkload(2, 10, fetchinc),
			Scheduler: Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		wc, err := check.WeaklyConsistent(implObjs(impl), res.History, check.Options{})
		if err != nil || !wc {
			t.Fatalf("seed %d: warmup counter not weakly consistent: %v %v", seed, wc, err)
		}
		v, err := check.TrackMinT(obj, res.History, 8, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if v.Trend == check.TrendDiverging {
			t.Fatalf("seed %d: warmup counter diverging: %+v", seed, v.Samples)
		}
		// MinT must be bounded by (roughly) the warmup region: all garbage
		// answers happen among the first Threshold completed operations.
		if v.FinalMinT > 2*6+4 {
			t.Fatalf("seed %d: final MinT %d exceeds warmup region", seed, v.FinalMinT)
		}
	}
}

func TestELConsensusEventuallyLinearizable(t *testing.T) {
	impl := elconsensus.Impl{}
	objs := implObjs(impl)
	n := 3
	for seed := int64(0); seed < 15; seed++ {
		// Each process proposes its id+1 three times (re-proposing is
		// allowed for consensus: later proposes return the decided value).
		w := make([][]spec.Op, n)
		for p := 0; p < n; p++ {
			for k := 0; k < 3; k++ {
				w[p] = append(w[p], spec.MakeOp1(spec.MethodPropose, int64(p+1)))
			}
		}
		res, err := Run(Config{
			Impl:      impl,
			Workload:  w,
			Scheduler: Random{},
			Chooser:   StaleChooser{},
			Policies:  base.SamePolicy(base.Window{K: 2}),
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("seed %d: consensus timed out (not wait-free?)", seed)
		}
		wc, err := check.WeaklyConsistent(objs, res.History, check.Options{})
		if err != nil || !wc {
			t.Fatalf("seed %d: not weakly consistent: %v %v\n%s", seed, wc, err, res.History)
		}
		mt, ok, err := check.MinT(impl.Spec(), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: consensus history not t-linearizable for any t", seed)
		}
		if mt > res.History.Len() {
			t.Fatalf("seed %d: MinT %d out of range", seed, mt)
		}
	}
}

func TestELConsensusAtomicBasesStillCorrect(t *testing.T) {
	impl := elconsensus.Impl{AtomicBases: true}
	res, err := Run(Config{
		Impl:      impl,
		Workload:  UniformWorkloadProposals(3, 2),
		Scheduler: RoundRobin{},
		Seed:      0,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := check.WeaklyConsistent(implObjs(impl), res.History, check.Options{})
	if err != nil || !wc {
		t.Fatalf("not weakly consistent: %v %v", wc, err)
	}
}

// UniformWorkloadProposals builds a proposal workload where process p
// proposes p+1, reps times.
func UniformWorkloadProposals(n, reps int) [][]spec.Op {
	w := make([][]spec.Op, n)
	for p := 0; p < n; p++ {
		for k := 0; k < reps; k++ {
			w[p] = append(w[p], spec.MakeOp1(spec.MethodPropose, int64(p+1)))
		}
	}
	return w
}

func TestELTestSetHistories(t *testing.T) {
	impl := eltestset.Local{}
	objs := implObjs(impl)
	res, err := Run(Config{
		Impl:      impl,
		Workload:  UniformWorkload(3, 3, spec.MakeOp(spec.MethodTestSet)),
		Scheduler: Random{},
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := check.WeaklyConsistent(objs, res.History, check.Options{})
	if err != nil || !wc {
		t.Fatalf("el-testset not weakly consistent: %v %v", wc, err)
	}
	// Three processes each return 0 once: not linearizable (only one 0
	// allowed), but t-linearizable once the first-ops prefix passes.
	lin, err := check.Linearizable(objs, res.History, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lin {
		t.Fatal("three zeros should not be linearizable")
	}
	mt, ok, err := check.MinT(impl.Spec(), res.History, check.Options{})
	if err != nil || !ok {
		t.Fatalf("MinT: %v %v", ok, err)
	}
	if mt == 0 || mt > res.History.Len() {
		t.Fatalf("MinT = %d, want in (0, len]", mt)
	}
}

func TestCASTestSetLinearizable(t *testing.T) {
	impl := eltestset.FromCAS{}
	for seed := int64(0); seed < 10; seed++ {
		res, err := Run(Config{
			Impl:      impl,
			Workload:  UniformWorkload(3, 2, spec.MakeOp(spec.MethodTestSet)),
			Scheduler: Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := check.Linearizable(implObjs(impl), res.History, check.Options{})
		if err != nil || !ok {
			t.Fatalf("seed %d: cas-testset not linearizable: %v %v", seed, ok, err)
		}
	}
}

func TestStabilizedAtTracking(t *testing.T) {
	impl := elconsensus.Impl{}
	res, err := Run(Config{
		Impl:     impl,
		Workload: UniformWorkloadProposals(2, 2),
		Policies: base.SamePolicy(base.Window{K: 1}),
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StabilizedAt) == 0 {
		t.Fatal("no eventually linearizable bases tracked")
	}
	stabilizedSomething := false
	for name, at := range res.StabilizedAt {
		if at >= 0 {
			stabilizedSomething = true
		}
		if at > res.History.Len() {
			t.Errorf("base %s stabilized at %d > history length", name, at)
		}
	}
	if !stabilizedSomething {
		t.Error("window(1) never stabilized any base")
	}
}

func TestBaseHistoryRecording(t *testing.T) {
	res, err := Run(Config{
		Impl:       counter.CAS{},
		Workload:   UniformWorkload(2, 2, fetchinc),
		Seed:       0,
		RecordBase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseHistory == nil || res.BaseHistory.Len() == 0 {
		t.Fatal("base history not recorded")
	}
	// Base history is sequential (atomic actions) and on base object names.
	if !res.BaseHistory.Sequential() {
		t.Error("base history should be sequential")
	}
	for _, obj := range res.BaseHistory.Objects() {
		if obj != "C" {
			t.Errorf("unexpected base object %q", obj)
		}
	}
}

func TestSchedulers(t *testing.T) {
	enabled := []int{0, 1, 2}
	if (RoundRobin{}).Pick(enabled, 4, nil) != enabled[1] {
		t.Error("round robin pick")
	}
	if got := (Solo{P: 2}).Pick(enabled, 0, nil); got != 2 {
		t.Errorf("solo pick = %d", got)
	}
	if got := (Solo{P: 5}).Pick(enabled, 1, nil); got != 1 {
		t.Errorf("solo fallback pick = %d", got)
	}
	names := []string{
		RoundRobin{}.Name(), Random{}.Name(), Solo{P: 1}.Name(), Burst{Phase: 4}.Name(),
		TrueChooser{}.Name(), StaleChooser{}.Name(), MixChooser{P: 0.5}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Error("empty name")
		}
	}
}

func TestRatioSchedulerStarvesCASCounter(t *testing.T) {
	// The classic adversary: the victim's read-CAS window always spans an
	// opponent's completed operation, so the victim never finishes while
	// the opponent completes operations forever (non-blocking, not
	// wait-free).
	res, err := Run(Config{
		Impl:      counter.CAS{},
		Workload:  UniformWorkload(2, 100, fetchinc),
		Scheduler: Ratio{Victim: 0, Every: 4},
		MaxSteps:  200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsCompleted[0] != 0 {
		t.Fatalf("victim completed %d ops; starvation failed", res.OpsCompleted[0])
	}
	if res.OpsCompleted[1] == 0 {
		t.Fatal("opponent completed nothing; system not non-blocking under this schedule")
	}
}

func TestRatioSchedulerCannotStarveSloppy(t *testing.T) {
	res, err := Run(Config{
		Impl:      counter.Sloppy{},
		Workload:  UniformWorkload(2, 10, fetchinc),
		Scheduler: Ratio{Victim: 0, Every: 4},
		MaxSteps:  400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsCompleted[0] == 0 {
		t.Fatal("wait-free counter starved")
	}
}

func TestCrashScheduler(t *testing.T) {
	// p0 crashes mid-operation at step 1; p1 must still finish (the CAS
	// counter is non-blocking).
	res, err := Run(Config{
		Impl:      counter.CAS{},
		Workload:  UniformWorkload(2, 2, fetchinc),
		Scheduler: Crash{Victim: 0, After: 1},
		MaxSteps:  100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OpsCompleted[1] != 2 {
		t.Fatalf("survivor completed %d ops, want 2", res.OpsCompleted[1])
	}
	if res.OpsCompleted[0] != 0 {
		t.Fatalf("crashed process completed %d ops", res.OpsCompleted[0])
	}
	// The history with the crashed process's pending op must still be
	// linearizable (pending ops may be dropped or completed by the
	// checker).
	ok, err := check.Linearizable(implObjs(counter.CAS{}), res.History, check.Options{})
	if err != nil || !ok {
		t.Fatalf("crash history not linearizable: %v %v\n%s", ok, err, res.History)
	}
}

func TestSchedulerNames(t *testing.T) {
	if (Ratio{Victim: 1}).Name() == "" || (Crash{Victim: 0, After: 3}).Name() == "" {
		t.Error("schedulers must have names")
	}
}

func TestChoosers(t *testing.T) {
	cands := []int64{10, 20, 30}
	if (TrueChooser{}).Choose(cands, nil) != 10 {
		t.Error("true chooser must pick the first candidate")
	}
	one := []int64{42}
	if (StaleChooser{}).Choose(one, nil) != 42 {
		t.Error("stale chooser must fall back to the only candidate")
	}
	if (MixChooser{P: 0}).Choose(cands, nil) != 10 {
		t.Error("mix(0) must be truthful")
	}
}

func TestRunTimeout(t *testing.T) {
	res, err := Run(Config{
		Impl:     counter.CAS{},
		Workload: UniformWorkload(2, 50, fetchinc),
		MaxSteps: 10,
		Seed:     0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut {
		t.Fatal("expected timeout")
	}
	if res.Steps != 10 {
		t.Fatalf("steps = %d, want 10", res.Steps)
	}
}

func TestSystemErrors(t *testing.T) {
	if _, err := NewSystem(counter.CAS{}, nil, nil, check.Options{}, false); err == nil {
		t.Error("empty workload accepted")
	}
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(1, 1, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.NextAction(5); err == nil {
		t.Error("out-of-range process accepted")
	}
	if err := sys.Advance(0, 3); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestSystemCloneIndependence(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	cl := sys.Clone()
	for !cl.Done() {
		en := cl.Enabled()
		if err := cl.Advance(en[0], 0); err != nil {
			t.Fatal(err)
		}
	}
	if sys.Done() {
		t.Fatal("advancing the clone finished the original")
	}
	if sys.History().Len() == cl.History().Len() {
		t.Fatal("clone history shared with original")
	}
	if sys.Steps() >= cl.Steps() {
		t.Fatal("clone steps shared with original")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys, err := NewSystem(counter.CAS{}, UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Impl().Name() != "cas-counter" {
		t.Errorf("Impl().Name() = %q", sys.Impl().Name())
	}
	if sys.NumProcs() != 2 {
		t.Errorf("NumProcs = %d", sys.NumProcs())
	}
	states := sys.BaseStates()
	if states["C"] != int64(0) {
		t.Errorf("initial base state = %v", states["C"])
	}
	if len(sys.Bases()) != 1 || sys.Bases()[0].Name() != "C" {
		t.Errorf("Bases = %v", sys.Bases())
	}
	if sys.Proc(0) == nil {
		t.Error("Proc(0) nil")
	}
	if sys.OpsBegun(0) != 0 || sys.Running(0) {
		t.Error("fresh system should be idle")
	}
	// Begin p0's op: one advance (read).
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	if sys.OpsBegun(0) != 1 || !sys.Running(0) {
		t.Error("p0 should be mid-operation after one advance")
	}
	// Complete the op: cas + return.
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := sys.Advance(0, 0); err != nil {
		t.Fatal(err)
	}
	if sys.Running(0) {
		t.Error("p0 should be idle after return")
	}
	if sys.BaseStates()["C"] != int64(1) {
		t.Errorf("base state after one op = %v", sys.BaseStates()["C"])
	}
}

func TestUniformWorkload(t *testing.T) {
	w := UniformWorkload(3, 2, fetchinc)
	if len(w) != 3 || len(w[0]) != 2 || w[2][1] != fetchinc {
		t.Fatalf("workload = %v", w)
	}
}
