package loadgen

import (
	"fmt"
	"net"
	"testing"
	"testing/quick"
	"time"

	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/server"
)

// Same seed, same client, same attempt: the identical delay — the whole
// reconnect schedule is reproducible from the seed.
func TestBackoffDeterministic(t *testing.T) {
	base, cap := 200*time.Microsecond, 50*time.Millisecond
	for seed := int64(1); seed <= 3; seed++ {
		for client := 0; client < 4; client++ {
			var first []time.Duration
			for attempt := 0; attempt < 12; attempt++ {
				first = append(first, Backoff(seed, client, attempt, base, cap))
			}
			for attempt := 0; attempt < 12; attempt++ {
				if again := Backoff(seed, client, attempt, base, cap); again != first[attempt] {
					t.Fatalf("seed %d client %d attempt %d: %v then %v",
						seed, client, attempt, first[attempt], again)
				}
			}
		}
	}
}

func TestBackoffShape(t *testing.T) {
	base, cap := 200*time.Microsecond, 50*time.Millisecond
	for attempt := 0; attempt < 40; attempt++ {
		d := Backoff(1, 0, attempt, base, cap)
		if d < 0 || d > cap+base {
			t.Fatalf("attempt %d: delay %v outside (0, cap+base]", attempt, d)
		}
	}
	// Different clients get different jitter (with overwhelming likelihood
	// across 8 clients on one attempt).
	same := true
	d0 := Backoff(1, 0, 3, base, cap)
	for c := 1; c < 8; c++ {
		if Backoff(1, c, 3, base, cap) != d0 {
			same = false
		}
	}
	if same {
		t.Fatal("jitter identical across clients — not actually jittered")
	}
}

// The idempotent-resume property, under testing/quick: for any drop
// schedule (client, trigger ticket) and seed, a fleet driven through
// forced disconnects completes with zero lost and zero duplicated
// tickets.
func TestResumeExactlyOnceQuick(t *testing.T) {
	const clients, ops = 3, 40
	prop := func(seed int64, dropClient uint8, dropTicket uint16, secondDrop uint16) bool {
		c := int(dropClient) % clients
		// Triggers inside the run's ticket range so the drops actually
		// fire (total commits = clients*ops).
		t1 := uint64(dropTicket)%uint64(clients*ops-2) + 1
		t2 := uint64(secondDrop)%uint64(clients*ops-2) + 1
		if t1 == t2 {
			t2++
		}
		spec, err := faults.ParseNet(fmt.Sprintf("drop:%d@%d,drop:%d@%d", c, t1, (c+1)%clients, t2))
		if err != nil {
			t.Fatalf("ParseNet: %v", err)
		}
		srv, err := server.New(server.Config{
			Object:    live.NewAtomicFetchInc("C", 0),
			Clients:   clients,
			Seed:      seed,
			NoMonitor: true,
			NetFaults: spec,
		})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		srv.Serve(ln)
		res, err := Run(Config{
			Addr: ln.Addr().String(), Clients: clients, Ops: ops,
			Gen: live.FetchIncGen(), Seed: seed,
		})
		if err != nil {
			t.Logf("run: %v", err)
			srv.Shutdown()
			return false
		}
		sum, err := srv.Shutdown()
		if err != nil {
			t.Logf("shutdown: %v", err)
			return false
		}
		return res.Lost == 0 && res.Duplicated == 0 &&
			res.Completed == clients*ops &&
			sum.Commits == clients*ops && sum.Events == 2*clients*ops
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
