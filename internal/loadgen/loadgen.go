// Package loadgen is the client side of the networked runtime: an
// open-loop fleet of connection-per-client workers driving an
// internal/server instance through the framed wire protocol, with the
// retry discipline the network fault plane demands — jittered exponential
// backoff on every failure, and idempotent resume across reconnects (the
// hello-ack reconciliation plus the server's last-operation cache make
// every operation exactly-once even when the connection dies between the
// apply and the response).
//
// The backoff schedule is a pure function of (seed, client, attempt), so a
// faulted run's reconnect timing is reproducible from its seed — the same
// determinism contract the rest of the fault plane keeps.
package loadgen

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/server"
	"github.com/elin-go/elin/internal/spec"
)

// Config describes a load run against one server.
type Config struct {
	// Addr is the server's TCP address.
	Addr string
	// Clients and Ops: Clients workers, Ops operations each. Client ids
	// are 0..Clients-1 and must be within the server's id space.
	Clients int
	Ops     int
	// Gen produces each client's operation stream (deterministic per
	// (client, index) given the seeded RNG).
	Gen live.OpGen
	// Seed pins the operation streams and the backoff jitter.
	Seed int64
	// Rate, when positive, paces each client open-loop at Rate ops/sec
	// (scheduled starts; a late response does not shift later starts).
	Rate float64
	// LatencySample records every Nth operation's latency (default 1).
	LatencySample int
	// MaxAttempts bounds connection attempts per pending operation
	// (default 200); exceeding it fails the client.
	MaxAttempts int
	// BackoffBase and BackoffCap shape the reconnect schedule (defaults
	// 200µs and 50ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// IOTimeout bounds each response wait (default 10s) — a server that
	// severed the connection without a FIN still cannot wedge a client.
	IOTimeout time.Duration
}

func (c *Config) latencySample() int {
	if c.LatencySample <= 0 {
		return 1
	}
	return c.LatencySample
}

func (c *Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 200
	}
	return c.MaxAttempts
}

func (c *Config) backoffBase() time.Duration {
	if c.BackoffBase <= 0 {
		return 200 * time.Microsecond
	}
	return c.BackoffBase
}

func (c *Config) backoffCap() time.Duration {
	if c.BackoffCap <= 0 {
		return 50 * time.Millisecond
	}
	return c.BackoffCap
}

func (c *Config) ioTimeout() time.Duration {
	if c.IOTimeout <= 0 {
		return 10 * time.Second
	}
	return c.IOTimeout
}

// Backoff is the deterministic reconnect schedule: attempt k (0-based)
// sleeps base·2^k capped at cap, plus a jitter in [0, base) that is a pure
// splitmix64 function of (seed, client, attempt). Exported so the
// determinism is testable: same seed, same client, same attempt — same
// delay, always.
func Backoff(seed int64, client, attempt int, base, cap time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > cap || d <= 0 { // <= 0: shift overflow
		d = cap
	}
	x := uint64(seed) ^ uint64(client+1)*0x9E3779B97F4A7C15 ^ uint64(attempt+1)*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return d + time.Duration(x%uint64(base))
}

// opResult is one completed operation as the client saw it.
type opResult struct {
	resp   int64
	ticket uint64
}

// Result is what a load run produced.
type Result struct {
	// Clients and Ops echo the config.
	Clients, Ops int
	// Completed counts operations with an accepted response (== Clients*Ops
	// on success).
	Completed int
	// Lost counts operations that never received a response; Duplicated
	// counts commit tickets handed to more than one operation. Both must
	// be zero for the exactly-once contract to hold.
	Lost       int
	Duplicated int
	// Retries counts resent operations, Reconnects successful re-handshakes
	// (beyond each client's first), Refused hello attempts rejected by the
	// server (partition knocks).
	Retries    int
	Reconnects int
	Refused    int
	// Elapsed is the wall-clock run time; the percentiles summarize the
	// sampled per-op latencies (ns).
	Elapsed                    time.Duration
	P50NS, P95NS, P99NS, MaxNS int64
}

// Throughput returns completed ops/sec.
func (r *Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// client is one worker's connection state.
type client struct {
	cfg  *Config
	id   int
	done uint64 // operations known committed
	last opResult

	conn net.Conn
	br   *bufio.Reader

	results    []opResult
	lats       []int64
	retries    int
	reconnects int
	refused    int
	attempts   int // connection attempts since the last progress
}

// Run drives the fleet and verifies the exactly-once contract. The
// returned Result is non-nil even when err is non-nil if at least the
// fleet ran (verification failures are reported in the Result, not err).
func Run(cfg Config) (*Result, error) {
	if cfg.Clients <= 0 || cfg.Ops <= 0 {
		return nil, fmt.Errorf("loadgen: need clients > 0 and ops > 0")
	}
	if cfg.Gen == nil {
		return nil, fmt.Errorf("loadgen: no operation generator")
	}
	clients := make([]*client, cfg.Clients)
	errs := make([]error, cfg.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		clients[c] = &client{cfg: &cfg, id: c}
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = clients[c].run(start)
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &Result{Clients: cfg.Clients, Ops: cfg.Ops, Elapsed: elapsed}
	var lats []int64
	seen := make(map[uint64]int)
	for _, cl := range clients {
		res.Completed += len(cl.results)
		res.Retries += cl.retries
		res.Reconnects += cl.reconnects
		res.Refused += cl.refused
		lats = append(lats, cl.lats...)
		for _, r := range cl.results {
			seen[r.ticket]++
		}
	}
	res.Lost = cfg.Clients*cfg.Ops - res.Completed
	for _, n := range seen {
		if n > 1 {
			res.Duplicated += n - 1
		}
	}
	res.P50NS, res.P95NS, res.P99NS, res.MaxNS = percentiles(lats)
	for c, err := range errs {
		if err != nil {
			return res, fmt.Errorf("loadgen: client %d: %w", c, err)
		}
	}
	return res, nil
}

// run is one client's life: connect, then per op send-await with
// reconnect-and-resume on every failure.
func (c *client) run(start time.Time) error {
	defer c.close()
	rng := rand.New(rand.NewSource(c.cfg.Seed ^ int64(c.id+1)*0x5DEECE66D))
	var interval time.Duration
	if c.cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / c.cfg.Rate)
	}
	if err := c.connect(); err != nil {
		return err
	}
	for i := 0; i < c.cfg.Ops; i++ {
		op := c.cfg.Gen(c.id, i, rng)
		sample := i%c.cfg.latencySample() == 0
		var t0 time.Time
		if interval > 0 {
			t0 = start.Add(time.Duration(i) * interval)
			if d := time.Until(t0); d > 0 {
				time.Sleep(d)
			}
		} else if sample {
			t0 = time.Now()
		}
		c.attempts = 0
		first := true
		for uint64(i) == c.done {
			if !first {
				c.retries++
			}
			first = false
			if err := c.exchange(uint64(i), op); err != nil {
				if err := c.reconnect(); err != nil {
					return fmt.Errorf("op %d: %w", i, err)
				}
			}
		}
		if sample {
			c.lats = append(c.lats, int64(time.Since(t0)))
		}
	}
	return nil
}

// exchange sends one request and awaits its response; on success it
// records the result and advances done.
func (c *client) exchange(opIndex uint64, op spec.Op) error {
	req := server.AppendRequest(nil, server.Request{OpIndex: opIndex, Op: op})
	if err := server.WriteFrame(c.conn, req); err != nil {
		return err
	}
	c.conn.SetReadDeadline(time.Now().Add(c.cfg.ioTimeout()))
	payload, err := server.ReadFrame(c.br)
	if err != nil {
		return err
	}
	if text, isErr := server.DecodeError(payload); isErr {
		return fmt.Errorf("server error: %s", text)
	}
	resp, err := server.DecodeResponse(payload)
	if err != nil {
		return err
	}
	if resp.OpIndex != opIndex {
		return fmt.Errorf("response for op %d while awaiting %d", resp.OpIndex, opIndex)
	}
	c.accept(opResult{resp: resp.Resp, ticket: resp.Ticket})
	return nil
}

// accept records op done's result.
func (c *client) accept(r opResult) {
	c.results = append(c.results, r)
	c.last = r
	c.done++
	c.attempts = 0
}

// connect dials and handshakes, reconciling the session state: the
// server's applied count tells the client whether its in-flight operation
// (index done) committed before the previous connection died.
func (c *client) connect() error {
	for {
		if c.attempts >= c.cfg.maxAttempts() {
			return fmt.Errorf("gave up after %d connection attempts", c.attempts)
		}
		if c.attempts > 0 || c.reconnects > 0 || c.refused > 0 {
			time.Sleep(Backoff(c.cfg.Seed, c.id, c.attempts, c.cfg.backoffBase(), c.cfg.backoffCap()))
		}
		c.attempts++
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.ioTimeout())
		if err != nil {
			continue
		}
		br := bufio.NewReader(conn)
		if err := server.WriteFrame(conn, server.AppendHello(nil, server.Hello{Client: uint64(c.id), Done: c.done})); err != nil {
			conn.Close()
			continue
		}
		conn.SetReadDeadline(time.Now().Add(c.cfg.ioTimeout()))
		payload, err := server.ReadFrame(br)
		if err != nil {
			conn.Close()
			continue
		}
		if text, isErr := server.DecodeError(payload); isErr {
			conn.Close()
			c.refused++
			if strings.Contains(text, "partitioned") {
				continue // knock again after backoff; enough knocks heal
			}
			return fmt.Errorf("hello rejected: %s", text)
		}
		ack, err := server.DecodeHelloAck(payload)
		if err != nil {
			conn.Close()
			continue
		}
		switch {
		case ack.Applied == c.done:
			// Server and client agree; the in-flight operation (if any)
			// was never applied and will be resent.
		case ack.Applied == c.done+1:
			// The in-flight operation committed before the connection
			// died: take the cached response, never resend.
			c.accept(opResult{resp: ack.LastResp, ticket: ack.LastTicket})
		default:
			conn.Close()
			return fmt.Errorf("resume violation: server applied %d, client done %d", ack.Applied, c.done)
		}
		c.conn, c.br = conn, br
		return nil
	}
}

// reconnect tears down the dead connection and re-handshakes.
func (c *client) reconnect() error {
	c.close()
	if err := c.connect(); err != nil {
		return err
	}
	c.reconnects++
	return nil
}

func (c *client) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.br = nil
	}
}

// percentiles summarizes a latency sample (p50/p95/p99/max in ns).
func percentiles(lats []int64) (p50, p95, p99, max int64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]int64(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
}
