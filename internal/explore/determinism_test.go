package explore

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// ndImpl is a deliberately nondeterministic implementation: its processes
// share a mutable counter that Clone does NOT deep-copy, so two clones of
// the same programme stepped identically observe different counter values
// and return different actions — exactly the contract violation
// CheckDeterminism exists to catch.
type ndImpl struct{}

func (ndImpl) Name() string          { return "nondet" }
func (ndImpl) Spec() spec.Object     { return spec.NewObject(spec.Register{}) }
func (ndImpl) Bases() []machine.Base { return nil }
func (ndImpl) NewProcess(p, n int) machine.Process {
	shared := new(int64)
	return &ndProc{shared: shared}
}

type ndProc struct {
	shared *int64 // aliased, not cloned: the nondeterminism source
}

func (p *ndProc) Begin(op spec.Op) {}
func (p *ndProc) Step(resp int64) machine.Action {
	*p.shared++
	return machine.Return(*p.shared % 2)
}
func (p *ndProc) Clone() machine.Process {
	cp := *p // shallow: cp.shared aliases p.shared
	return &cp
}

func ndRoot(t *testing.T) *sim.System {
	t.Helper()
	workload := [][]spec.Op{{spec.MakeOp(spec.MethodRead)}, {spec.MakeOp(spec.MethodRead)}}
	root, err := sim.NewSystem(ndImpl{}, workload, nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestCheckDeterminismCatchesNondetProgramme(t *testing.T) {
	// Without the check the nondeterministic programme explores silently
	// (one arbitrary behaviour per node).
	if _, err := DFS(ndRoot(t), 4, Config{Workers: 1}, nil); err != nil {
		t.Fatalf("unchecked exploration failed: %v", err)
	}
	// With it the divergence is a hard error, sequentially and in parallel.
	for _, workers := range []int{1, 4} {
		_, err := DFS(ndRoot(t), 4, Config{Workers: workers, CheckDeterminism: true}, nil)
		if err == nil || !strings.Contains(err.Error(), "nondeterministic") {
			t.Errorf("workers=%d: err = %v, want nondeterminism error", workers, err)
		}
	}
}

func TestCheckDeterminismPassesDeterministicImpl(t *testing.T) {
	workload := sim.UniformWorkload(2, 1, spec.MakeOp(spec.MethodFetchInc))
	root, err := sim.NewSystem(counter.CAS{}, workload, nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	base, err := DFS(root, 12, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		st, err := DFS(root, 12, Config{Workers: workers, CheckDeterminism: true}, nil)
		if err != nil {
			t.Fatalf("workers=%d: deterministic impl flagged: %v", workers, err)
		}
		if st != base {
			t.Errorf("workers=%d: stats with check %+v != without %+v", workers, st, base)
		}
	}
}
