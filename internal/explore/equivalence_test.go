package explore

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/announce"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// The undo-based engine must be observationally identical to the retained
// clone-per-edge reference on every seed scenario: same Stats, same leaf
// histories in the same order, same valency classifications, same
// stable-node verdicts.

type scenario struct {
	name     string
	impl     machine.Impl
	workload [][]spec.Op
	policies base.PolicyFor
	depth    int
}

func seedScenarios(t *testing.T) []scenario {
	t.Helper()
	wrapJunk, err := announce.New(counter.Junk{}, announce.FetchIncCodec(), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	propose := [][]spec.Op{
		{spec.MakeOp1(spec.MethodPropose, 10)},
		{spec.MakeOp1(spec.MethodPropose, 20)},
	}
	return []scenario{
		{
			name:     "cas-counter",
			impl:     counter.CAS{},
			workload: sim.UniformWorkload(2, 2, fetchinc),
			depth:    10,
		},
		{
			name:     "junk-counter",
			impl:     counter.Junk{},
			workload: sim.UniformWorkload(2, 2, fetchinc),
			depth:    9,
		},
		{
			name:     "announce-junk",
			impl:     wrapJunk,
			workload: sim.UniformWorkload(2, 1, fetchinc),
			depth:    8,
		},
		{
			name:     "el-consensus-never",
			impl:     elconsensus.Impl{},
			workload: propose,
			policies: base.SamePolicy(base.Never{}),
			depth:    10,
		},
		{
			name:     "el-consensus-window",
			impl:     elconsensus.Impl{},
			workload: propose,
			policies: base.SamePolicy(base.Window{K: 2}),
			depth:    11,
		},
		{
			name:     "sloppy-counter",
			impl:     counter.Sloppy{},
			workload: sim.UniformWorkload(2, 1, fetchinc),
			depth:    12,
		},
	}
}

func TestUndoEngineMatchesCloneEngineDFS(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			undoStats, err := DFS(root, sc.depth, Config{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			cloneStats, err := CloneDFS(root, sc.depth, nil)
			if err != nil {
				t.Fatal(err)
			}
			if undoStats != cloneStats {
				t.Fatalf("stats diverge: undo %+v, clone %+v", undoStats, cloneStats)
			}
		})
	}
}

func TestUndoEngineMatchesCloneEngineLeafHistories(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			collect := func(explorer func(*sim.System, int, func(*sim.System) error) (Stats, error)) ([]string, Stats) {
				var hs []string
				st, err := explorer(root, sc.depth, func(leaf *sim.System) error {
					hs = append(hs, leaf.History().String())
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				return hs, st
			}
			undoH, undoStats := collect(func(root *sim.System, maxDepth int, fn func(*sim.System) error) (Stats, error) {
				return Leaves(root, maxDepth, Config{}, fn)
			})
			cloneH, cloneStats := collect(CloneLeaves)
			if undoStats != cloneStats {
				t.Fatalf("stats diverge: undo %+v, clone %+v", undoStats, cloneStats)
			}
			if len(undoH) != len(cloneH) {
				t.Fatalf("leaf counts diverge: undo %d, clone %d", len(undoH), len(cloneH))
			}
			for i := range undoH {
				if undoH[i] != cloneH[i] {
					t.Fatalf("leaf %d diverges:\nundo:\n%s\nclone:\n%s", i, undoH[i], cloneH[i])
				}
			}
		})
	}
}

func TestUndoEngineMatchesCloneEngineValency(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			undoRep, err := Analyze(root, sc.depth, Config{})
			if err != nil {
				t.Fatal(err)
			}
			cloneRep, err := CloneAnalyze(root, sc.depth)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(undoRep.Root, cloneRep.Root) {
				t.Errorf("root valence diverges: undo %+v, clone %+v", undoRep.Root, cloneRep.Root)
			}
			if undoRep.Univalent != cloneRep.Univalent || undoRep.Multivalent != cloneRep.Multivalent {
				t.Errorf("valence counts diverge: undo %d/%d, clone %d/%d",
					undoRep.Univalent, undoRep.Multivalent, cloneRep.Univalent, cloneRep.Multivalent)
			}
			if undoRep.AgreementViolations != cloneRep.AgreementViolations {
				t.Errorf("violations diverge: undo %d, clone %d",
					undoRep.AgreementViolations, cloneRep.AgreementViolations)
			}
			if undoRep.ViolationHistory != cloneRep.ViolationHistory {
				t.Errorf("violation histories diverge")
			}
			if !reflect.DeepEqual(undoRep.Criticals, cloneRep.Criticals) {
				t.Errorf("criticals diverge: undo %d, clone %d", len(undoRep.Criticals), len(cloneRep.Criticals))
			}
			if undoRep.Stats != cloneRep.Stats {
				t.Errorf("stats diverge: undo %+v, clone %+v", undoRep.Stats, cloneRep.Stats)
			}
		})
	}
}

func TestUndoEngineMatchesCloneEngineStableVerdicts(t *testing.T) {
	cases := []struct {
		name   string
		impl   machine.Impl
		verify int
	}{
		{"cas-counter", counter.CAS{}, 12},
		{"warmup-counter", counter.Warmup{Threshold: 2}, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := mustSystem(t, tc.impl, sim.UniformWorkload(2, 2, fetchinc), nil)
			stable, undoStats, err := NodeStable(root, tc.verify, Config{}, check.Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Reference verdict via the clone engine.
			tref := root.History().Len()
			obj := root.Impl().Spec()
			refStable := true
			cloneStats, err := CloneLeaves(root, tc.verify, func(leaf *sim.System) error {
				ok, err := check.TLinearizable(obj, leaf.History(), tref, check.Options{})
				if err != nil {
					return err
				}
				if !ok {
					refStable = false
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if stable != refStable {
				t.Fatalf("stability verdicts diverge: undo %v, clone %v", stable, refStable)
			}
			// The undo engine aborts on the first violation, so its stats can
			// only match when the node is stable (full enumeration).
			if stable && undoStats != cloneStats {
				t.Fatalf("stats diverge: undo %+v, clone %+v", undoStats, cloneStats)
			}
		})
	}
}

// TestUndoEngineQuickRandomWorkloads cross-validates the engines on random
// workloads, implementations and policies.
func TestUndoEngineQuickRandomWorkloads(t *testing.T) {
	methodsByImpl := map[string]func(r *rand.Rand, n int) [][]spec.Op{
		"counter": func(r *rand.Rand, n int) [][]spec.Op {
			w := make([][]spec.Op, n)
			for p := range w {
				for k := 0; k < 1+r.Intn(2); k++ {
					w[p] = append(w[p], fetchinc)
				}
			}
			return w
		},
		"consensus": func(r *rand.Rand, n int) [][]spec.Op {
			w := make([][]spec.Op, n)
			for p := range w {
				w[p] = []spec.Op{spec.MakeOp1(spec.MethodPropose, int64(10*(p+1)))}
			}
			return w
		},
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(2) // 2..3 processes
		var impl machine.Impl
		var workload [][]spec.Op
		var pol base.PolicyFor
		switch r.Intn(4) {
		case 0:
			impl = counter.CAS{}
			workload = methodsByImpl["counter"](r, n)
		case 1:
			impl = counter.Sloppy{}
			workload = methodsByImpl["counter"](r, n)
		case 2:
			impl = counter.Junk{}
			workload = methodsByImpl["counter"](r, n)
		default:
			impl = elconsensus.Impl{}
			workload = methodsByImpl["consensus"](r, n)
			pol = base.SamePolicy(base.Window{K: r.Intn(3)})
		}
		depth := 5 + r.Intn(4)
		root, err := sim.NewSystem(impl, workload, pol, check.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		var undoH, cloneH []string
		undoStats, err := Leaves(root, depth, Config{}, func(leaf *sim.System) error {
			undoH = append(undoH, leaf.History().String())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		cloneStats, err := CloneLeaves(root, depth, func(leaf *sim.System) error {
			cloneH = append(cloneH, leaf.History().String())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if undoStats != cloneStats {
			t.Logf("seed %d (%s, depth %d): stats diverge: undo %+v clone %+v",
				seed, impl.Name(), depth, undoStats, cloneStats)
			return false
		}
		if !reflect.DeepEqual(undoH, cloneH) {
			t.Logf("seed %d (%s, depth %d): leaf histories diverge", seed, impl.Name(), depth)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestParallelEngineMatchesCloneEngine closes the three-way loop: the
// clone-per-edge reference, the sequential undo engine, and the parallel
// frontier-split engine must agree on Stats and valency reports for every
// seed scenario.
func TestParallelEngineMatchesCloneEngine(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			cloneStats, err := CloneDFS(root, sc.depth, nil)
			if err != nil {
				t.Fatal(err)
			}
			parStats, err := DFS(root, sc.depth, Config{Workers: 4}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if parStats != cloneStats {
				t.Fatalf("stats diverge: parallel %+v, clone %+v", parStats, cloneStats)
			}
			cloneRep, err := CloneAnalyze(root, sc.depth)
			if err != nil {
				t.Fatal(err)
			}
			parRep, err := Analyze(root, sc.depth, Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(parRep.Root, cloneRep.Root) {
				t.Errorf("root valence diverges: parallel %+v, clone %+v", parRep.Root, cloneRep.Root)
			}
			if parRep.Univalent != cloneRep.Univalent || parRep.Multivalent != cloneRep.Multivalent {
				t.Errorf("valence counts diverge: parallel %d/%d, clone %d/%d",
					parRep.Univalent, parRep.Multivalent, cloneRep.Univalent, cloneRep.Multivalent)
			}
			if parRep.AgreementViolations != cloneRep.AgreementViolations {
				t.Errorf("violations diverge: parallel %d, clone %d",
					parRep.AgreementViolations, cloneRep.AgreementViolations)
			}
			if parRep.ViolationHistory != cloneRep.ViolationHistory {
				t.Errorf("violation histories diverge")
			}
			if !reflect.DeepEqual(parRep.Criticals, cloneRep.Criticals) {
				t.Errorf("criticals diverge: parallel %d, clone %d", len(parRep.Criticals), len(cloneRep.Criticals))
			}
			if parRep.Stats != cloneRep.Stats {
				t.Errorf("stats diverge: parallel %+v, clone %+v", parRep.Stats, cloneRep.Stats)
			}
		})
	}
}

// TestDedupMatchesExactAnalysis checks that the deduplicating valency
// analysis reaches the same verdicts as the exact one while merging nodes.
func TestDedupMatchesExactAnalysis(t *testing.T) {
	cases := []scenario{
		{
			name: "reg-consensus",
			impl: elconsensus.Impl{AtomicBases: true},
			workload: [][]spec.Op{
				{spec.MakeOp1(spec.MethodPropose, 10)},
				{spec.MakeOp1(spec.MethodPropose, 20)},
			},
			depth: 14,
		},
		{
			name: "el-consensus-never",
			impl: elconsensus.Impl{},
			workload: [][]spec.Op{
				{spec.MakeOp1(spec.MethodPropose, 10)},
				{spec.MakeOp1(spec.MethodPropose, 20)},
			},
			policies: base.SamePolicy(base.Never{}),
			depth:    12,
		},
	}
	for _, sc := range cases {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			exact, err := Analyze(root, sc.depth, Config{})
			if err != nil {
				t.Fatal(err)
			}
			dedup, err := Analyze(root, sc.depth, Config{Dedup: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(exact.Root, dedup.Root) {
				t.Errorf("root valence diverges: exact %+v, dedup %+v", exact.Root, dedup.Root)
			}
			if (exact.AgreementViolations > 0) != (dedup.AgreementViolations > 0) {
				t.Errorf("violation verdicts diverge: exact %d, dedup %d",
					exact.AgreementViolations, dedup.AgreementViolations)
			}
			if (len(exact.Criticals) > 0) != (len(dedup.Criticals) > 0) {
				t.Errorf("critical verdicts diverge: exact %d, dedup %d",
					len(exact.Criticals), len(dedup.Criticals))
			}
			if dedup.Stats.Deduped == 0 {
				t.Error("symmetric workload produced no merged configurations")
			}
			if dedup.Stats.Nodes >= exact.Stats.Nodes {
				t.Errorf("dedup visited %d nodes, exact %d — no reduction", dedup.Stats.Nodes, exact.Stats.Nodes)
			}
		})
	}
}

// TestDedupDFSLeafReduction checks the generic visited-set option on DFS.
func TestDedupDFSLeafReduction(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	exact, err := DFS(root, 12, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	dedup, err := DFS(root, 12, Config{Dedup: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dedup.Deduped == 0 || dedup.Nodes >= exact.Nodes {
		t.Fatalf("dedup ineffective: exact %+v, dedup %+v", exact, dedup)
	}
}

// TestVisitorSeesConsistentDepths pins the visitor contract on the undo
// engine: depths increase by one along edges and the preorder matches the
// clone engine's.
func TestVisitorSeesConsistentDepths(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 1, fetchinc), nil)
	trace := func(explorer func(*sim.System, int, Visitor) (Stats, error)) []string {
		var tr []string
		_, err := explorer(root, 8, func(s *sim.System, depth int) (bool, error) {
			tr = append(tr, fmt.Sprintf("%d:%d", depth, s.History().Len()))
			return true, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	undoTrace := trace(func(root *sim.System, maxDepth int, visit Visitor) (Stats, error) {
		return DFS(root, maxDepth, Config{}, visit)
	})
	cloneTrace := trace(CloneDFS)
	if !reflect.DeepEqual(undoTrace, cloneTrace) {
		t.Fatalf("visitor traces diverge:\nundo:  %v\nclone: %v", undoTrace, cloneTrace)
	}
}

// TestFingerprintDistinguishesConfigurations sanity-checks the fingerprint:
// sibling configurations differ, and advancing then undoing restores the
// root fingerprint exactly.
func TestFingerprintDistinguishesConfigurations(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 1, fetchinc), nil)
	work := root.Clone()
	work.EnableUndo()
	rootFP, ok := work.Fingerprint()
	if !ok {
		t.Fatal("cas-counter processes must be fingerprintable")
	}
	var childFPs []uint64
	for p := 0; p < work.NumProcs(); p++ {
		if err := work.AdvanceResp(p, mustCands(t, work, p)[0]); err != nil {
			t.Fatal(err)
		}
		fp, ok := work.Fingerprint()
		if !ok {
			t.Fatal("fingerprint lost after advance")
		}
		childFPs = append(childFPs, fp)
		if err := work.Undo(); err != nil {
			t.Fatal(err)
		}
		fp2, _ := work.Fingerprint()
		if fp2 != rootFP {
			t.Fatalf("undo did not restore the root fingerprint: %x vs %x", fp2, rootFP)
		}
	}
	sort.Slice(childFPs, func(i, j int) bool { return childFPs[i] < childFPs[j] })
	for i := 1; i < len(childFPs); i++ {
		if childFPs[i] == childFPs[i-1] {
			t.Fatalf("sibling configurations share fingerprint %x", childFPs[i])
		}
	}
	if childFPs[0] == rootFP {
		t.Fatal("child shares the root fingerprint")
	}
}

func mustCands(t *testing.T, s *sim.System, p int) []int64 {
	t.Helper()
	cands, err := s.Candidates(p)
	if err != nil {
		t.Fatal(err)
	}
	return cands
}
