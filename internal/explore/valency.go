package explore

import (
	"fmt"
	"sort"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Valence is the set of consensus decisions reachable from a configuration.
type Valence struct {
	// Decisions holds each value some terminal run below the node decides.
	Decisions map[int64]bool
	// Truncated reports that some run below the node hit the horizon
	// before terminating, so Decisions may be incomplete.
	Truncated bool
}

// Multivalent reports whether at least two decisions are reachable.
func (v Valence) Multivalent() bool { return len(v.Decisions) >= 2 }

// Values returns the reachable decisions in ascending order.
func (v Valence) Values() []int64 {
	out := make([]int64, 0, len(v.Decisions))
	for d := range v.Decisions {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PendingAction describes the next atomic action of one process at a
// configuration, for the critical-configuration case analysis of
// Proposition 15.
type PendingAction struct {
	// Proc is the process.
	Proc int
	// IsReturn reports whether the next action completes an operation
	// rather than accessing a base object.
	IsReturn bool
	// Base is the base object index (when !IsReturn).
	Base int
	// BaseName is the base object's name.
	BaseName string
	// BaseType is the base object's type name (e.g. "register").
	BaseType string
	// Eventually reports whether the base object is eventually
	// linearizable.
	Eventually bool
	// Desc renders the base operation.
	Desc string
}

// Critical describes a critical configuration: a multivalent configuration
// all of whose children are univalent — the pivot of the valency argument
// in Proposition 15 (and of FLP).
type Critical struct {
	// Depth is the configuration's depth in the tree.
	Depth int
	// Valence is the configuration's own valence.
	Valence Valence
	// Pending lists each enabled process's next action.
	Pending []PendingAction
	// SameObject reports whether all pending actions touch one base
	// object — which the paper's proof shows must be the case (otherwise
	// the steps commute).
	SameObject bool
	// History renders the configuration's implemented-level history.
	History string
}

// ValencyReport is the outcome of Analyze.
type ValencyReport struct {
	// Root is the root configuration's valence.
	Root Valence
	// Univalent and Multivalent count non-leaf configurations by valence.
	Univalent, Multivalent int
	// Criticals lists the critical configurations found.
	Criticals []Critical
	// AgreementViolations counts terminal runs in which two processes
	// decided differently (a broken protocol).
	AgreementViolations int
	// ViolationHistory is one violating history, if any.
	ViolationHistory string
	// Stats aggregates exploration counters.
	Stats Stats
}

// Analyze explores the execution tree of a consensus implementation (each
// process's workload should consist of propose operations) and performs
// the valency analysis of Proposition 15: it computes valences, counts
// uni/multivalent configurations, finds critical configurations, and
// records the case analysis data (are the two pending steps on the same
// object? of what kind?).
//
// Decisions are read from completed propose operations; runs in which two
// completed operations return different values are recorded as agreement
// violations (their "decision set" contains both values, which keeps the
// valence bookkeeping meaningful for broken protocols too).
func Analyze(root *sim.System, maxDepth int) (*ValencyReport, error) {
	return AnalyzeConfig(root, maxDepth, Config{})
}

// AnalyzeConfig is Analyze with exploration options. With Config.Dedup the
// valence of each distinct configuration is computed once and memoized
// under a key combining the full configuration encoding with the multiset
// of responses already completed (past decisions contribute to a node's
// valence, so configurations merge only when both agree — and comparing
// full encodings, not hashes, means a collision can never merge distinct
// configurations). Counters then count distinct configurations — the
// execution DAG — rather than tree nodes, and Stats.Deduped reports how
// many tree nodes were merged away.
func AnalyzeConfig(root *sim.System, maxDepth int, cfg Config) (*ValencyReport, error) {
	rep := &ValencyReport{}
	a := &valAnalyzer{
		eng:  newEngine(root, maxDepth, Config{}, &rep.Stats),
		rep:  rep,
		sets: make([][]int64, maxDepth+2),
	}
	if cfg.Dedup {
		if _, ok := a.eng.sys.Fingerprint(); ok {
			a.dedup = true
			a.memo = make(map[string]valMemo)
		}
	}
	truncated, err := a.analyze(0)
	if err != nil {
		return nil, err
	}
	rep.Root = a.valence(0, truncated)
	return rep, nil
}

// valAnalyzer runs the valency analysis on the in-place engine. Decision
// sets live in per-depth scratch rows as sorted multiplicity-free slices,
// so the hot path performs no per-node allocation; Valence maps are built
// only where they escape (the root, critical configurations, memo entries).
type valAnalyzer struct {
	eng     *engine
	rep     *ValencyReport
	sets    [][]int64 // per-depth decision scratch, sorted unique
	dedup   bool
	memo    map[string]valMemo
	respBuf []int64 // scratch for the memo key's completed-response multiset
}

// valMemo is a memoized subtree valence.
type valMemo struct {
	decisions []int64
	truncated bool
}

func (a *valAnalyzer) analyze(depth int) (bool, error) {
	sys := a.eng.sys
	a.sets[depth] = a.sets[depth][:0]
	var key string
	useMemo := false
	if a.dedup {
		var ok bool
		key, ok = a.memoKey(depth)
		if ok {
			useMemo = true
			if m, hit := a.memo[key]; hit {
				a.rep.Stats.Deduped++
				a.sets[depth] = append(a.sets[depth], m.decisions...)
				return m.truncated, nil
			}
		}
	}
	a.rep.Stats.Nodes++
	if sys.Done() {
		a.rep.Stats.Leaves++
		a.terminal(depth)
		if useMemo {
			a.store(key, depth, false)
		}
		return false, nil
	}
	if depth >= a.eng.maxDepth {
		a.rep.Stats.Leaves++
		a.rep.Stats.Truncated = true
		if useMemo {
			a.store(key, depth, true)
		}
		return true, nil
	}
	truncated := false
	allChildrenUnivalent := true
	err := a.eng.expand(depth, func(d int) error {
		ctrunc, err := a.analyze(d)
		if err != nil {
			return err
		}
		for _, v := range a.sets[d] {
			a.sets[depth] = insertSorted(a.sets[depth], v)
		}
		truncated = truncated || ctrunc
		if len(a.sets[d]) >= 2 || ctrunc {
			allChildrenUnivalent = false
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	if len(a.sets[depth]) >= 2 {
		a.rep.Multivalent++
		if allChildrenUnivalent {
			crit, err := describeCritical(sys, depth, a.valence(depth, truncated))
			if err != nil {
				return false, err
			}
			a.rep.Criticals = append(a.rep.Criticals, crit)
		}
	} else if !truncated {
		a.rep.Univalent++
	}
	if useMemo {
		a.store(key, depth, truncated)
	}
	return truncated, nil
}

// terminal collects the decisions of a completed run (the responses of its
// completed operations) into the depth's scratch row and records agreement
// violations.
func (a *valAnalyzer) terminal(depth int) {
	h := a.eng.sys.History()
	for i := 0; i < h.Len(); i++ {
		if e := h.Event(i); e.Kind == history.KindRespond {
			a.sets[depth] = insertSorted(a.sets[depth], e.Resp)
		}
	}
	if len(a.sets[depth]) > 1 {
		a.rep.AgreementViolations++
		if a.rep.ViolationHistory == "" {
			a.rep.ViolationHistory = h.String()
		}
	}
}

// valence converts a depth's scratch row into an exported Valence.
func (a *valAnalyzer) valence(depth int, truncated bool) Valence {
	val := Valence{Decisions: make(map[int64]bool, len(a.sets[depth])), Truncated: truncated}
	for _, v := range a.sets[depth] {
		val.Decisions[v] = true
	}
	return val
}

func (a *valAnalyzer) store(key string, depth int, truncated bool) {
	a.memo[key] = valMemo{
		decisions: append([]int64(nil), a.sets[depth]...),
		truncated: truncated,
	}
}

// memoKey builds the deduplication key for the current configuration: its
// full byte encoding, the depth, and the sorted multiset of responses
// already completed in the history. Keys are compared exactly; no hashing.
func (a *valAnalyzer) memoKey(depth int) (string, bool) {
	b, ok := a.eng.sys.AppendConfigFingerprint(a.eng.keyBuf[:0])
	if !ok {
		a.eng.keyBuf = b
		return "", false
	}
	b = spec.AppendFPInt(b, int64(depth))
	h := a.eng.sys.History()
	buf := a.respBuf[:0]
	for i := 0; i < h.Len(); i++ {
		if e := h.Event(i); e.Kind == history.KindRespond {
			buf = append(buf, e.Resp)
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	a.respBuf = buf
	for _, v := range buf {
		b = spec.AppendFPInt(b, v)
	}
	a.eng.keyBuf = b
	return string(b), true
}

// insertSorted inserts v into the sorted unique slice s.
func insertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func describeCritical(s *sim.System, depth int, val Valence) (Critical, error) {
	bases := s.Impl().Bases()
	crit := Critical{
		Depth:   depth,
		Valence: val,
		History: s.History().String(),
	}
	for _, p := range s.Enabled() {
		act, _, err := s.NextAction(p)
		if err != nil {
			return Critical{}, err
		}
		pa := PendingAction{Proc: p}
		if act.Kind == machine.ActReturn {
			pa.IsReturn = true
			pa.Desc = act.String()
		} else {
			pa.Base = act.Obj
			pa.BaseName = bases[act.Obj].Name
			pa.BaseType = bases[act.Obj].Obj.Type.Name()
			pa.Eventually = bases[act.Obj].Eventually
			pa.Desc = fmt.Sprintf("%s.%s", pa.BaseName, act.Op)
		}
		crit.Pending = append(crit.Pending, pa)
	}
	crit.SameObject = true
	firstBase := -1
	for _, pa := range crit.Pending {
		if pa.IsReturn {
			crit.SameObject = false
			break
		}
		if firstBase == -1 {
			firstBase = pa.Base
		} else if pa.Base != firstBase {
			crit.SameObject = false
			break
		}
	}
	return crit, nil
}
