package explore

import (
	"fmt"
	"sort"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Valence is the set of consensus decisions reachable from a configuration.
type Valence struct {
	// Decisions holds each value some terminal run below the node decides.
	Decisions map[int64]bool
	// Truncated reports that some run below the node hit the horizon
	// before terminating, so Decisions may be incomplete.
	Truncated bool
}

// Multivalent reports whether at least two decisions are reachable.
func (v Valence) Multivalent() bool { return len(v.Decisions) >= 2 }

// Values returns the reachable decisions in ascending order.
func (v Valence) Values() []int64 {
	out := make([]int64, 0, len(v.Decisions))
	for d := range v.Decisions {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// valenceOf builds a Valence from a sorted decision slice.
func valenceOf(dec []int64, truncated bool) Valence {
	v := Valence{Decisions: make(map[int64]bool, len(dec)), Truncated: truncated}
	for _, d := range dec {
		v.Decisions[d] = true
	}
	return v
}

// PendingAction describes the next atomic action of one process at a
// configuration, for the critical-configuration case analysis of
// Proposition 15.
type PendingAction struct {
	// Proc is the process.
	Proc int
	// IsReturn reports whether the next action completes an operation
	// rather than accessing a base object.
	IsReturn bool
	// Base is the base object index (when !IsReturn).
	Base int
	// BaseName is the base object's name.
	BaseName string
	// BaseType is the base object's type name (e.g. "register").
	BaseType string
	// Eventually reports whether the base object is eventually
	// linearizable.
	Eventually bool
	// Desc renders the base operation.
	Desc string
}

// Critical describes a critical configuration: a multivalent configuration
// all of whose children are univalent — the pivot of the valency argument
// in Proposition 15 (and of FLP).
type Critical struct {
	// Depth is the configuration's depth in the tree.
	Depth int
	// Valence is the configuration's own valence.
	Valence Valence
	// Pending lists each enabled process's next action.
	Pending []PendingAction
	// SameObject reports whether all pending actions touch one base
	// object — which the paper's proof shows must be the case (otherwise
	// the steps commute).
	SameObject bool
	// History renders the configuration's implemented-level history.
	History string
}

// ValencyReport is the outcome of Analyze.
type ValencyReport struct {
	// Root is the root configuration's valence.
	Root Valence
	// Univalent and Multivalent count non-leaf configurations by valence.
	Univalent, Multivalent int
	// Criticals lists the critical configurations found.
	Criticals []Critical
	// AgreementViolations counts terminal runs in which two processes
	// decided differently (a broken protocol).
	AgreementViolations int
	// ViolationHistory is one violating history, if any.
	ViolationHistory string
	// Stats aggregates exploration counters.
	Stats Stats
}

// Analyze explores the execution tree of a consensus implementation (each
// process's workload should consist of propose operations) and performs
// the valency analysis of Proposition 15: it computes valences, counts
// uni/multivalent configurations, finds critical configurations, and
// records the case analysis data (are the two pending steps on the same
// object? of what kind?).
//
// Decisions are read from completed propose operations; runs in which two
// completed operations return different values are recorded as agreement
// violations (their "decision set" contains both values, which keeps the
// valence bookkeeping meaningful for broken protocols too).
//
// With Config.Dedup the
// valence of each distinct configuration is computed once and memoized
// under a key combining the full configuration encoding with the multiset
// of responses already completed (past decisions contribute to a node's
// valence, so configurations merge only when both agree — and comparing
// full encodings, not hashes, means a collision can never merge distinct
// configurations). Counters then count distinct configurations — the
// execution DAG — rather than tree nodes, and Stats.Deduped reports how
// many tree nodes were merged away.
//
// With more than one worker the subtrees below a frontier depth are
// classified in parallel and the decision sets merged bottom-up. Without
// Dedup the report is bit-identical for every worker count. With Dedup
// the counters, valences and verdicts stay deterministic, but which
// arrival path a merged configuration is attributed to is a race, so the
// example strings (ViolationHistory, a Critical's History) may differ
// between runs — the same caveat Dedup already carries sequentially
// versus the exact analysis.
func Analyze(root *sim.System, maxDepth int, cfg Config) (*ValencyReport, error) {
	if w := cfg.workerCount(); w > 1 && maxDepth >= 2 {
		return analyzePar(root, maxDepth, cfg, w)
	}
	rep := &ValencyReport{}
	a := &valAnalyzer{
		eng:  newEngine(root, maxDepth, Config{}, &rep.Stats),
		rep:  rep,
		sets: make([][]int64, maxDepth+2),
	}
	if cfg.Dedup {
		if _, ok := a.eng.sys.Fingerprint(); ok {
			a.dedup = true
			a.memo = make(map[string]valMemo)
		}
	}
	truncated, err := a.analyze(0)
	if err != nil {
		return nil, err
	}
	rep.Root = a.valence(0, truncated)
	return rep, nil
}

// valAnalyzer runs the valency analysis on the in-place engine. Decision
// sets live in per-depth scratch rows as sorted multiplicity-free slices,
// so the hot path performs no per-node allocation; Valence maps are built
// only where they escape (the root, critical configurations, memo entries).
type valAnalyzer struct {
	eng     *engine
	rep     *ValencyReport
	sets    [][]int64 // per-depth decision scratch, sorted unique
	dedup   bool
	memo    map[string]valMemo // sequential memo
	shared  *shardedMemo       // cross-worker memo (parallel analyze)
	respBuf []int64            // scratch for the memo key's completed-response multiset
}

// valMemo is a memoized subtree valence.
type valMemo struct {
	decisions []int64
	truncated bool
}

func (a *valAnalyzer) analyze(depth int) (bool, error) {
	sys := a.eng.sys
	a.sets[depth] = a.sets[depth][:0]
	var key string
	var ent *memoEntry
	useMemo := false
	if a.dedup {
		b, ok := a.memoKey(depth)
		if ok {
			if a.shared != nil {
				var claimed bool
				ent, claimed = a.shared.claim(b)
				if !claimed {
					// Another arrival (possibly on another worker) owns
					// this configuration; wait for its verdict. The wait
					// cannot deadlock — see shardedMemo.
					<-ent.ready
					a.rep.Stats.Deduped++
					a.sets[depth] = append(a.sets[depth], ent.decisions...)
					return ent.truncated, nil
				}
			} else {
				if m, hit := a.memo[string(b)]; hit {
					a.rep.Stats.Deduped++
					a.sets[depth] = append(a.sets[depth], m.decisions...)
					return m.truncated, nil
				}
				key = string(b)
			}
			useMemo = true
		}
	}
	// fail releases the latch on error exits so no waiter is stranded.
	fail := func(err error) (bool, error) {
		if ent != nil {
			ent.resolve(nil, false)
		}
		return false, err
	}
	finish := func(truncated bool) {
		if !useMemo {
			return
		}
		if ent != nil {
			ent.resolve(a.sets[depth], truncated)
		} else {
			a.store(key, depth, truncated)
		}
	}
	a.rep.Stats.Nodes++
	if sys.Done() {
		a.rep.Stats.Leaves++
		a.terminal(depth)
		finish(false)
		return false, nil
	}
	if depth >= a.eng.maxDepth {
		a.rep.Stats.Leaves++
		a.rep.Stats.Truncated = true
		finish(true)
		return true, nil
	}
	truncated := false
	allChildrenUnivalent := true
	err := a.eng.expand(depth, func(d int) error {
		ctrunc, err := a.analyze(d)
		if err != nil {
			return err
		}
		for _, v := range a.sets[d] {
			a.sets[depth] = insertSorted(a.sets[depth], v)
		}
		truncated = truncated || ctrunc
		if len(a.sets[d]) >= 2 || ctrunc {
			allChildrenUnivalent = false
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	if len(a.sets[depth]) >= 2 {
		a.rep.Multivalent++
		if allChildrenUnivalent {
			crit, err := describeCritical(sys, depth, a.valence(depth, truncated))
			if err != nil {
				return fail(err)
			}
			a.rep.Criticals = append(a.rep.Criticals, crit)
		}
	} else if !truncated {
		a.rep.Univalent++
	}
	finish(truncated)
	return truncated, nil
}

// terminal collects the decisions of a completed run (the responses of its
// completed operations) into the depth's scratch row and records agreement
// violations.
func (a *valAnalyzer) terminal(depth int) {
	h := a.eng.sys.History()
	for i := 0; i < h.Len(); i++ {
		if e := h.Event(i); e.Kind == history.KindRespond {
			a.sets[depth] = insertSorted(a.sets[depth], e.Resp)
		}
	}
	if len(a.sets[depth]) > 1 {
		a.rep.AgreementViolations++
		if a.rep.ViolationHistory == "" {
			a.rep.ViolationHistory = h.String()
		}
	}
}

// valence converts a depth's scratch row into an exported Valence.
func (a *valAnalyzer) valence(depth int, truncated bool) Valence {
	return valenceOf(a.sets[depth], truncated)
}

func (a *valAnalyzer) store(key string, depth int, truncated bool) {
	a.memo[key] = valMemo{
		decisions: append([]int64(nil), a.sets[depth]...),
		truncated: truncated,
	}
}

// memoKey builds the deduplication key for the current configuration: its
// full byte encoding, the depth, and the sorted multiset of responses
// already completed in the history. Keys are compared exactly; no hashing.
// The returned slice aliases the engine's scratch buffer.
func (a *valAnalyzer) memoKey(depth int) ([]byte, bool) {
	b, ok := a.eng.sys.AppendConfigFingerprint(a.eng.keyBuf[:0])
	if !ok {
		a.eng.keyBuf = b
		return nil, false
	}
	b = spec.AppendFPInt(b, int64(depth))
	h := a.eng.sys.History()
	buf := a.respBuf[:0]
	for i := 0; i < h.Len(); i++ {
		if e := h.Event(i); e.Kind == history.KindRespond {
			buf = append(buf, e.Resp)
		}
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	a.respBuf = buf
	for _, v := range buf {
		b = spec.AppendFPInt(b, v)
	}
	a.eng.keyBuf = b
	return b, true
}

// insertSorted inserts v into the sorted unique slice s.
func insertSorted(s []int64, v int64) []int64 {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func describeCritical(s *sim.System, depth int, val Valence) (Critical, error) {
	bases := s.Impl().Bases()
	crit := Critical{
		Depth:   depth,
		Valence: val,
		History: s.History().String(),
	}
	for _, p := range s.Enabled() {
		act, _, err := s.NextAction(p)
		if err != nil {
			return Critical{}, err
		}
		pa := PendingAction{Proc: p}
		if act.Kind == machine.ActReturn {
			pa.IsReturn = true
			pa.Desc = act.String()
		} else {
			pa.Base = act.Obj
			pa.BaseName = bases[act.Obj].Name
			pa.BaseType = bases[act.Obj].Obj.Type.Name()
			pa.Eventually = bases[act.Obj].Eventually
			pa.Desc = fmt.Sprintf("%s.%s", pa.BaseName, act.Op)
		}
		crit.Pending = append(crit.Pending, pa)
	}
	crit.SameObject = true
	firstBase := -1
	for _, pa := range crit.Pending {
		if pa.IsReturn {
			crit.SameObject = false
			break
		}
		if firstBase == -1 {
			firstBase = pa.Base
		} else if pa.Base != firstBase {
			crit.SameObject = false
			break
		}
	}
	return crit, nil
}

// ---------------------------------------------------------------------------
// Parallel valency analysis.

// prefixKind classifies a node of the split prefix tree.
type prefixKind uint8

const (
	// prefixInternal is a prefix node with children.
	prefixInternal prefixKind = iota
	// prefixTerminal is a completed run above the frontier.
	prefixTerminal
	// prefixFrontier roots a subtree handed to the workers.
	prefixFrontier
	// prefixDup is a duplicate arrival merged away by Dedup; its valence
	// is the claimant's (dupOf).
	prefixDup
)

// prefixNode is one node of the prefix tree the splitter records above the
// frontier, later walked bottom-up to merge the workers' per-subtree
// classifications into the sequential report.
type prefixNode struct {
	step      pathStep // edge from the parent
	kind      prefixKind
	children  []*prefixNode
	task      int     // prefixFrontier: index into the task results
	decisions []int64 // prefixTerminal: the run's decisions
	hist      string  // prefixTerminal: rendered history when it violates agreement
	dupOf     *prefixNode

	// Merge results, filled bottom-up in depth-first order (so a dup's
	// claimant — always earlier in that order — is resolved first).
	mdec   []int64
	mtrunc bool
}

// analyzeSplitter walks the prefix of the execution tree above the
// frontier, recording its shape and handling Dedup at prefix depths with a
// split-local key map (worker keys live at frontier depth and below, so
// the two populations can never collide — the memo key includes depth).
type analyzeSplitter struct {
	a          *valAnalyzer
	k          int
	path       []pathStep
	tasks      []subtreeTask
	prefixKeys map[string]*prefixNode
}

func (sp *analyzeSplitter) walk(depth int, node *prefixNode) error {
	if sp.a.dedup {
		if b, ok := sp.a.memoKey(depth); ok {
			if first, dup := sp.prefixKeys[string(b)]; dup {
				sp.a.rep.Stats.Deduped++
				node.kind = prefixDup
				node.dupOf = first
				return nil
			}
			sp.prefixKeys[string(b)] = node
		}
	}
	if depth == sp.k {
		node.kind = prefixFrontier
		node.task = len(sp.tasks)
		sp.tasks = append(sp.tasks, subtreeTask{path: clonePath(sp.path), node: node})
		return nil
	}
	sys := sp.a.eng.sys
	sp.a.rep.Stats.Nodes++
	if sys.Done() {
		sp.a.rep.Stats.Leaves++
		node.kind = prefixTerminal
		h := sys.History()
		for i := 0; i < h.Len(); i++ {
			if ev := h.Event(i); ev.Kind == history.KindRespond {
				node.decisions = insertSorted(node.decisions, ev.Resp)
			}
		}
		if len(node.decisions) > 1 {
			node.hist = h.String()
		}
		return nil
	}
	node.kind = prefixInternal
	return sp.a.eng.expandSteps(depth, func(d int, step pathStep) error {
		child := &prefixNode{step: step}
		node.children = append(node.children, child)
		sp.path = append(sp.path, step)
		err := sp.walk(d, child)
		sp.path = sp.path[:len(sp.path)-1]
		return err
	})
}

// analyzeTaskResult is one worker-classified subtree.
type analyzeTaskResult struct {
	dec   []int64
	trunc bool
	rep   *ValencyReport
}

// analyzePar is the parallel valency analysis: split the tree at the
// frontier, classify the subtrees on the worker pool, then merge decision
// sets bottom-up through the recorded prefix tree. Criticals and counters
// are emitted in the sequential analysis's postorder, so the merged report
// matches the sequential one field for field (see Analyze for the
// Dedup caveat).
func analyzePar(root *sim.System, maxDepth int, cfg Config, workers int) (*ValencyReport, error) {
	rep := &ValencyReport{}
	a := &valAnalyzer{
		eng:  newEngine(root, maxDepth, Config{}, &rep.Stats),
		rep:  rep,
		sets: make([][]int64, maxDepth+2),
	}
	var shared *shardedMemo
	if cfg.Dedup {
		if _, ok := a.eng.sys.Fingerprint(); ok {
			a.dedup = true
			shared = newShardedMemo()
		}
	}
	k, err := chooseFrontier(a.eng, maxDepth, workers, cfg.FrontierDepth)
	if err != nil {
		return nil, err
	}
	rootNode := &prefixNode{}
	sp := &analyzeSplitter{a: a, k: k, prefixKeys: make(map[string]*prefixNode)}
	if err := sp.walk(0, rootNode); err != nil {
		return nil, err
	}
	results := make([]analyzeTaskResult, len(sp.tasks))
	err = runTasks(root, maxDepth, workers, cfg, sp.tasks, nil, &rep.Stats,
		func(we *engine, t subtreeTask) error {
			taskRep := &ValencyReport{}
			wa := &valAnalyzer{
				eng:    we,
				rep:    taskRep,
				sets:   make([][]int64, maxDepth+2),
				dedup:  shared != nil,
				shared: shared,
			}
			trunc, err := wa.analyze(len(t.path))
			if err != nil {
				return err
			}
			results[t.node.task] = analyzeTaskResult{
				dec:   append([]int64(nil), wa.sets[len(t.path)]...),
				trunc: trunc,
				rep:   taskRep,
			}
			return nil
		}, nil, nil)
	if err != nil {
		return nil, err
	}
	m := &analyzeMerger{rep: rep, results: results}
	m.mat = newEngineScratch(root)
	dec, trunc, err := m.merge(rootNode, 0)
	if err != nil {
		return nil, err
	}
	rep.Root = valenceOf(dec, trunc)
	return rep, nil
}

// engineScratch re-materializes prefix configurations for critical-
// configuration descriptions: one clone, replayed and rewound per use.
type engineScratch struct {
	sys *sim.System
}

func newEngineScratch(root *sim.System) *engineScratch {
	work := root.Clone()
	work.EnableUndo()
	return &engineScratch{sys: work}
}

func (s *engineScratch) at(path []pathStep) (*sim.System, error) {
	if err := s.sys.UndoTo(0); err != nil {
		return nil, err
	}
	if err := replayPath(s.sys, path); err != nil {
		return nil, err
	}
	return s.sys, nil
}

// analyzeMerger folds worker results back through the prefix tree.
type analyzeMerger struct {
	rep     *ValencyReport
	results []analyzeTaskResult
	mat     *engineScratch
	path    []pathStep
}

func (m *analyzeMerger) merge(n *prefixNode, depth int) ([]int64, bool, error) {
	switch n.kind {
	case prefixDup:
		return n.dupOf.mdec, n.dupOf.mtrunc, nil
	case prefixTerminal:
		if len(n.decisions) > 1 {
			m.rep.AgreementViolations++
			if m.rep.ViolationHistory == "" {
				m.rep.ViolationHistory = n.hist
			}
		}
		n.mdec, n.mtrunc = n.decisions, false
		return n.decisions, false, nil
	case prefixFrontier:
		r := m.results[n.task]
		m.rep.Univalent += r.rep.Univalent
		m.rep.Multivalent += r.rep.Multivalent
		m.rep.AgreementViolations += r.rep.AgreementViolations
		if m.rep.ViolationHistory == "" && r.rep.ViolationHistory != "" {
			m.rep.ViolationHistory = r.rep.ViolationHistory
		}
		m.rep.Criticals = append(m.rep.Criticals, r.rep.Criticals...)
		m.rep.Stats.add(r.rep.Stats)
		n.mdec, n.mtrunc = r.dec, r.trunc
		return r.dec, r.trunc, nil
	}
	// prefixInternal: union the children's decision sets, then classify —
	// the same postorder the sequential analysis uses.
	var dec []int64
	trunc := false
	allChildrenUnivalent := true
	for _, c := range n.children {
		m.path = append(m.path, c.step)
		cdec, ctrunc, err := m.merge(c, depth+1)
		m.path = m.path[:len(m.path)-1]
		if err != nil {
			return nil, false, err
		}
		for _, v := range cdec {
			dec = insertSorted(dec, v)
		}
		trunc = trunc || ctrunc
		if len(cdec) >= 2 || ctrunc {
			allChildrenUnivalent = false
		}
	}
	if len(dec) >= 2 {
		m.rep.Multivalent++
		if allChildrenUnivalent {
			sys, err := m.mat.at(m.path)
			if err != nil {
				return nil, false, err
			}
			crit, err := describeCritical(sys, depth, valenceOf(dec, trunc))
			if err != nil {
				return nil, false, err
			}
			m.rep.Criticals = append(m.rep.Criticals, crit)
		}
	} else if !trunc {
		m.rep.Univalent++
	}
	n.mdec, n.mtrunc = dec, trunc
	return dec, trunc, nil
}
