package explore

import (
	"fmt"
	"sort"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
)

// Valence is the set of consensus decisions reachable from a configuration.
type Valence struct {
	// Decisions holds each value some terminal run below the node decides.
	Decisions map[int64]bool
	// Truncated reports that some run below the node hit the horizon
	// before terminating, so Decisions may be incomplete.
	Truncated bool
}

// Multivalent reports whether at least two decisions are reachable.
func (v Valence) Multivalent() bool { return len(v.Decisions) >= 2 }

// Values returns the reachable decisions in ascending order.
func (v Valence) Values() []int64 {
	out := make([]int64, 0, len(v.Decisions))
	for d := range v.Decisions {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PendingAction describes the next atomic action of one process at a
// configuration, for the critical-configuration case analysis of
// Proposition 15.
type PendingAction struct {
	// Proc is the process.
	Proc int
	// IsReturn reports whether the next action completes an operation
	// rather than accessing a base object.
	IsReturn bool
	// Base is the base object index (when !IsReturn).
	Base int
	// BaseName is the base object's name.
	BaseName string
	// BaseType is the base object's type name (e.g. "register").
	BaseType string
	// Eventually reports whether the base object is eventually
	// linearizable.
	Eventually bool
	// Desc renders the base operation.
	Desc string
}

// Critical describes a critical configuration: a multivalent configuration
// all of whose children are univalent — the pivot of the valency argument
// in Proposition 15 (and of FLP).
type Critical struct {
	// Depth is the configuration's depth in the tree.
	Depth int
	// Valence is the configuration's own valence.
	Valence Valence
	// Pending lists each enabled process's next action.
	Pending []PendingAction
	// SameObject reports whether all pending actions touch one base
	// object — which the paper's proof shows must be the case (otherwise
	// the steps commute).
	SameObject bool
	// History renders the configuration's implemented-level history.
	History string
}

// ValencyReport is the outcome of Analyze.
type ValencyReport struct {
	// Root is the root configuration's valence.
	Root Valence
	// Univalent and Multivalent count non-leaf configurations by valence.
	Univalent, Multivalent int
	// Criticals lists the critical configurations found.
	Criticals []Critical
	// AgreementViolations counts terminal runs in which two processes
	// decided differently (a broken protocol).
	AgreementViolations int
	// ViolationHistory is one violating history, if any.
	ViolationHistory string
	// Stats aggregates exploration counters.
	Stats Stats
}

// Analyze explores the execution tree of a consensus implementation (each
// process's workload should consist of propose operations) and performs
// the valency analysis of Proposition 15: it computes valences, counts
// uni/multivalent configurations, finds critical configurations, and
// records the case analysis data (are the two pending steps on the same
// object? of what kind?).
//
// Decisions are read from completed propose operations; runs in which two
// completed operations return different values are recorded as agreement
// violations (their "decision set" contains both values, which keeps the
// valence bookkeeping meaningful for broken protocols too).
func Analyze(root *sim.System, maxDepth int) (*ValencyReport, error) {
	rep := &ValencyReport{}
	rootVal, err := analyze(root, 0, maxDepth, rep)
	if err != nil {
		return nil, err
	}
	rep.Root = rootVal
	return rep, nil
}

func analyze(s *sim.System, depth, maxDepth int, rep *ValencyReport) (Valence, error) {
	rep.Stats.Nodes++
	enabled := s.Enabled()
	if len(enabled) == 0 {
		rep.Stats.Leaves++
		return terminalValence(s, rep), nil
	}
	if depth >= maxDepth {
		rep.Stats.Leaves++
		rep.Stats.Truncated = true
		return Valence{Decisions: map[int64]bool{}, Truncated: true}, nil
	}
	val := Valence{Decisions: map[int64]bool{}}
	allChildrenUnivalent := true
	for _, p := range enabled {
		cands, err := s.Candidates(p)
		if err != nil {
			return Valence{}, fmt.Errorf("explore: candidates for p%d: %w", p, err)
		}
		for branch := range cands {
			child := s.Clone()
			if err := child.Advance(p, branch); err != nil {
				return Valence{}, fmt.Errorf("explore: advance p%d: %w", p, err)
			}
			cv, err := analyze(child, depth+1, maxDepth, rep)
			if err != nil {
				return Valence{}, err
			}
			for d := range cv.Decisions {
				val.Decisions[d] = true
			}
			val.Truncated = val.Truncated || cv.Truncated
			if cv.Multivalent() || cv.Truncated {
				allChildrenUnivalent = false
			}
		}
	}
	if val.Multivalent() {
		rep.Multivalent++
		if allChildrenUnivalent {
			crit, err := describeCritical(s, depth, val)
			if err != nil {
				return Valence{}, err
			}
			rep.Criticals = append(rep.Criticals, crit)
		}
	} else if !val.Truncated {
		rep.Univalent++
	}
	return val, nil
}

// terminalValence extracts the decision(s) of a completed run.
func terminalValence(s *sim.System, rep *ValencyReport) Valence {
	val := Valence{Decisions: map[int64]bool{}}
	for _, op := range s.History().Operations() {
		if !op.Pending() {
			val.Decisions[op.Resp] = true
		}
	}
	if len(val.Decisions) > 1 {
		rep.AgreementViolations++
		if rep.ViolationHistory == "" {
			rep.ViolationHistory = s.History().String()
		}
	}
	return val
}

func describeCritical(s *sim.System, depth int, val Valence) (Critical, error) {
	bases := s.Impl().Bases()
	crit := Critical{
		Depth:   depth,
		Valence: val,
		History: s.History().String(),
	}
	for _, p := range s.Enabled() {
		act, _, err := s.NextAction(p)
		if err != nil {
			return Critical{}, err
		}
		pa := PendingAction{Proc: p}
		if act.Kind == machine.ActReturn {
			pa.IsReturn = true
			pa.Desc = act.String()
		} else {
			pa.Base = act.Obj
			pa.BaseName = bases[act.Obj].Name
			pa.BaseType = bases[act.Obj].Obj.Type.Name()
			pa.Eventually = bases[act.Obj].Eventually
			pa.Desc = fmt.Sprintf("%s.%s", pa.BaseName, act.Op)
		}
		crit.Pending = append(crit.Pending, pa)
	}
	crit.SameObject = true
	firstBase := -1
	for _, pa := range crit.Pending {
		if pa.IsReturn {
			crit.SameObject = false
			break
		}
		if firstBase == -1 {
			firstBase = pa.Base
		} else if pa.Base != firstBase {
			crit.SameObject = false
			break
		}
	}
	return crit, nil
}
