// Package explore performs bounded exhaustive exploration of the execution
// trees of Section 4 and 5: every interleaving of process steps and, for
// eventually linearizable base objects, every weakly consistent response.
//
// Nodes of the paper's execution trees are configurations; here they are
// cloned sim.Systems. The package provides the two searches the paper's
// proofs are built on:
//
//   - valency analysis (Proposition 15): classify configurations by the set
//     of reachable consensus decisions and locate critical configurations;
//   - stable-node search (Proposition 18, Claim 1): find a configuration C
//     such that every bounded extension's history is |αC|-linearizable.
//
// Exploration is bounded by depth; results are exhaustive up to the bound
// and reports state whether the horizon truncated anything.
package explore

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Stats aggregates exploration counters.
type Stats struct {
	// Nodes is the number of configurations visited (including the root).
	Nodes int
	// Leaves is the number of terminal or horizon configurations.
	Leaves int
	// Truncated reports whether any leaf was cut off by the depth bound
	// rather than workload completion.
	Truncated bool
}

// Visitor observes a configuration during DFS. Returning descend=false
// prunes the subtree below the node.
type Visitor func(s *sim.System, depth int) (descend bool, err error)

// DFS explores every interleaving (and every eventually linearizable
// response choice) from root down to maxDepth, invoking visit on each node
// in preorder. The root system is never mutated.
func DFS(root *sim.System, maxDepth int, visit Visitor) (Stats, error) {
	var st Stats
	err := dfs(root, 0, maxDepth, visit, &st)
	return st, err
}

func dfs(s *sim.System, depth, maxDepth int, visit Visitor, st *Stats) error {
	st.Nodes++
	descend := true
	if visit != nil {
		var err error
		descend, err = visit(s, depth)
		if err != nil {
			return err
		}
	}
	enabled := s.Enabled()
	if len(enabled) == 0 {
		st.Leaves++
		return nil
	}
	if !descend {
		return nil
	}
	if depth >= maxDepth {
		st.Leaves++
		st.Truncated = true
		return nil
	}
	for _, p := range enabled {
		cands, err := s.Candidates(p)
		if err != nil {
			return fmt.Errorf("explore: candidates for p%d at depth %d: %w", p, depth, err)
		}
		for branch := range cands {
			child := s.Clone()
			if err := child.Advance(p, branch); err != nil {
				return fmt.Errorf("explore: advance p%d branch %d at depth %d: %w", p, branch, depth, err)
			}
			if err := dfs(child, depth+1, maxDepth, visit, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// Leaves explores to maxDepth and invokes fn on every leaf (terminal or
// horizon configuration).
func Leaves(root *sim.System, maxDepth int, fn func(leaf *sim.System) error) (Stats, error) {
	var st Stats
	err := leaves(root, 0, maxDepth, fn, &st)
	return st, err
}

func leaves(s *sim.System, depth, maxDepth int, fn func(*sim.System) error, st *Stats) error {
	st.Nodes++
	enabled := s.Enabled()
	if len(enabled) == 0 || depth >= maxDepth {
		st.Leaves++
		if len(enabled) > 0 {
			st.Truncated = true
		}
		return fn(s)
	}
	for _, p := range enabled {
		cands, err := s.Candidates(p)
		if err != nil {
			return fmt.Errorf("explore: candidates for p%d at depth %d: %w", p, depth, err)
		}
		for branch := range cands {
			child := s.Clone()
			if err := child.Advance(p, branch); err != nil {
				return fmt.Errorf("explore: advance p%d branch %d at depth %d: %w", p, branch, depth, err)
			}
			if err := leaves(child, depth+1, maxDepth, fn, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// LinearizableEverywhere checks that every leaf history of the bounded
// execution tree is linearizable against the implemented object's spec.
// It returns the first violating history, if any.
func LinearizableEverywhere(root *sim.System, maxDepth int, opts check.Options) (bool, *sim.System, Stats, error) {
	var bad *sim.System
	specs := implSpecs(root)
	st, err := Leaves(root, maxDepth, func(leaf *sim.System) error {
		if bad != nil {
			return nil
		}
		ok, err := check.Linearizable(specs, leaf.History(), opts)
		if err != nil {
			return err
		}
		if !ok {
			bad = leaf
		}
		return nil
	})
	if err != nil {
		return false, nil, st, err
	}
	return bad == nil, bad, st, nil
}

// WeaklyConsistentEverywhere checks weak consistency of every leaf history.
func WeaklyConsistentEverywhere(root *sim.System, maxDepth int, opts check.Options) (bool, *sim.System, Stats, error) {
	var bad *sim.System
	specs := implSpecs(root)
	st, err := Leaves(root, maxDepth, func(leaf *sim.System) error {
		if bad != nil {
			return nil
		}
		ok, err := check.WeaklyConsistent(specs, leaf.History(), opts)
		if err != nil {
			return err
		}
		if !ok {
			bad = leaf
		}
		return nil
	})
	if err != nil {
		return false, nil, st, err
	}
	return bad == nil, bad, st, nil
}

func implSpecs(s *sim.System) map[string]spec.Object {
	return map[string]spec.Object{s.Impl().Name(): s.Impl().Spec()}
}
