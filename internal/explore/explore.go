// Package explore performs bounded exhaustive exploration of the execution
// trees of Section 4 and 5: every interleaving of process steps and, for
// eventually linearizable base objects, every weakly consistent response.
//
// Nodes of the paper's execution trees are configurations. The engine walks
// them with a single mutable sim.System: each edge is one Advance, each
// backtrack one Undo, so the cost of visiting a node is the cost of one
// atomic step instead of a deep copy of the whole configuration (the
// clone-per-edge reference engine is retained in reference.go for
// equivalence testing and benchmarking). The package provides the two
// searches the paper's proofs are built on:
//
//   - valency analysis (Proposition 15): classify configurations by the set
//     of reachable consensus decisions and locate critical configurations;
//   - stable-node search (Proposition 18, Claim 1): find a configuration C
//     such that every bounded extension's history is |αC|-linearizable.
//
// Exploration is bounded by depth; results are exhaustive up to the bound
// and reports state whether the horizon truncated anything.
//
// For symmetric workloads many interleavings reach literally the same
// configuration. Config.Dedup merges such nodes using the configuration
// fingerprint of sim.System.Fingerprint, turning the tree into a DAG; see
// Config for the soundness conditions.
//
// Exploration cost is intrinsically exponential, so the engine also scales
// across cores: Config.Workers splits the execution tree at a frontier
// depth and fans the root subtrees out to a worker pool (see parallel.go).
// Counters, valency reports, stable verdicts and violation witnesses are
// deterministic regardless of worker count; only callback invocation order
// is schedule-dependent.
package explore

import (
	"errors"
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Stats aggregates exploration counters.
type Stats struct {
	// Nodes is the number of configurations visited (including the root).
	Nodes int
	// Leaves is the number of terminal or horizon configurations.
	Leaves int
	// Truncated reports whether any leaf was cut off by the depth bound
	// rather than workload completion.
	Truncated bool
	// Deduped counts configurations skipped because an equivalent
	// configuration had already been explored at the same depth
	// (Config.Dedup only).
	Deduped int
}

// add accumulates other into s.
func (s *Stats) add(other Stats) {
	s.Nodes += other.Nodes
	s.Leaves += other.Leaves
	s.Truncated = s.Truncated || other.Truncated
	s.Deduped += other.Deduped
}

// Config tunes an exploration.
type Config struct {
	// Dedup merges configurations with equal fingerprints at equal depth:
	// only the first is explored, later arrivals are pruned and counted in
	// Stats.Deduped. Merging is sound when the quantity being computed
	// depends only on the configuration's future behaviour (reachable
	// decisions, reachable configurations), NOT when it depends on the path
	// taken to the node (e.g. linearizability of the recorded history).
	// Dedup silently disables itself when some programme does not implement
	// machine.Fingerprinter.
	Dedup bool

	// Workers is the number of exploration workers. 0 picks the engine
	// default: GOMAXPROCS for the verdict and analysis searches
	// (LinearizableEverywhere, WeaklyConsistentEverywhere, Analyze,
	// NodeStable, FindStable), whose results are deterministic for every
	// worker count, and sequential for the callback walks (DFS, Leaves),
	// whose visitors are typically stateful. A negative value forces
	// GOMAXPROCS everywhere; 1 forces the sequential in-place engine (the
	// semantic reference). With more than one worker the execution tree is
	// split at a frontier depth and the root subtrees are handed to a
	// worker pool; counters and verdicts stay deterministic, but
	// visitor/leaf callbacks may be invoked concurrently and in
	// schedule-dependent order, so stateful callbacks must either
	// synchronize or keep the walk sequential.
	Workers int

	// FrontierDepth fixes the depth at which the tree is split into
	// per-worker subtrees. 0 picks a depth automatically (wide enough to
	// keep every worker busy from a shared queue). Ignored when the
	// exploration runs sequentially.
	FrontierDepth int

	// CheckDeterminism re-steps every probe on a second programme clone and
	// turns a probe-vs-probe divergence into a hard error. The in-place
	// engine installs the stepped probe without re-stepping the live
	// programme, so a nondeterministic implementation (Step depending on
	// state outside Clone) would otherwise yield one arbitrary behaviour
	// per node instead of failing loudly; enable this when validating a new
	// implementation. Costs roughly one extra Clone+Step per node.
	CheckDeterminism bool
}

// Visitor observes a configuration during DFS. Returning descend=false
// prunes the subtree below the node. The system passed to the visitor is
// the engine's working copy: it is valid only during the call, and visitors
// that keep a configuration must Clone it.
type Visitor func(s *sim.System, depth int) (descend bool, err error)

// errViolation aborts a leaf enumeration as soon as one violating leaf is
// found (the early-exit sentinel of LinearizableEverywhere, NodeStable and
// friends).
var errViolation = errors.New("explore: violating leaf")

// errCancelled aborts a worker's subtree walk when another subtree already
// holds the answer (parallel searches only).
var errCancelled = errors.New("explore: cancelled")

// engine is one in-place exploration: a mutable working system, per-depth
// candidate scratch (so a node's branch list survives the recursion into
// its subtrees without allocating), and the optional visited set.
type engine struct {
	sys      *sim.System
	maxDepth int
	st       *Stats
	cands    [][]int64 // per-depth candidate scratch
	dedup    bool
	// seen keys merged configurations by their FULL byte encoding (plus
	// depth) — not a hash of it — so a collision can never silently prune
	// an unexplored distinct configuration. Keeping depth in the key makes
	// merging conservative: two arrivals at different depths have different
	// remaining horizons and are never merged. Sequential explorations use
	// the private map; parallel workers share the sharded concurrent set
	// instead (exactly one of the two is non-nil while dedup is on).
	seen   map[string]struct{}
	shared *shardedSet
	keyBuf []byte // scratch for building visit keys
}

func newEngine(root *sim.System, maxDepth int, cfg Config, st *Stats) *engine {
	work := root.Clone()
	work.EnableUndo()
	if cfg.CheckDeterminism {
		work.EnableDeterminismCheck()
	}
	e := &engine{
		sys:      work,
		maxDepth: maxDepth,
		st:       st,
		cands:    make([][]int64, maxDepth+1),
	}
	if cfg.Dedup {
		if _, ok := work.Fingerprint(); ok {
			e.dedup = true
			e.seen = make(map[string]struct{})
		}
	}
	return e
}

// newWorkerEngine builds an engine for a parallel worker: its own clone of
// root (one clone per worker, not per subtree or edge) and, when dedup is
// on, the visited set shared with the other workers.
func newWorkerEngine(root *sim.System, maxDepth int, cfg Config, shared *shardedSet, st *Stats) *engine {
	work := root.Clone()
	work.EnableUndo()
	if cfg.CheckDeterminism {
		work.EnableDeterminismCheck()
	}
	e := &engine{
		sys:      work,
		maxDepth: maxDepth,
		st:       st,
		cands:    make([][]int64, maxDepth+1),
	}
	if shared != nil {
		e.dedup = true
		e.shared = shared
	}
	return e
}

// pruneDup reports whether the current configuration was already explored
// at this depth (recording it if not).
func (e *engine) pruneDup(depth int) bool {
	if !e.dedup {
		return false
	}
	b, ok := e.sys.AppendConfigFingerprint(e.keyBuf[:0])
	if !ok {
		e.keyBuf = b
		return false
	}
	b = spec.AppendFPInt(b, int64(depth))
	e.keyBuf = b
	if e.shared != nil {
		if e.shared.checkAndAdd(b) {
			e.st.Deduped++
			return true
		}
		return false
	}
	if _, dup := e.seen[string(b)]; dup {
		e.st.Deduped++
		return true
	}
	e.seen[string(b)] = struct{}{}
	return false
}

// expand advances into every child of the current configuration (every
// enabled process, every candidate response), invoking rec at depth+1 and
// undoing each step. The candidate buffer lives in per-depth scratch:
// deeper recursion writes deeper rows, so the branch list stays intact
// across subtrees without copying.
func (e *engine) expand(depth int, rec func(depth int) error) error {
	return e.expandSteps(depth, func(d int, _ pathStep) error { return rec(d) })
}

// expandSteps is expand with the edge taken (process, branch index) exposed
// to the callback — the frontier splitter records it to seed workers.
func (e *engine) expandSteps(depth int, rec func(depth int, step pathStep) error) error {
	buf := e.cands[depth][:0]
	for p := 0; p < e.sys.NumProcs(); p++ {
		if !e.sys.CanStep(p) {
			continue
		}
		var err error
		buf, err = e.sys.CandidatesAppend(p, buf[:0])
		if err != nil {
			return fmt.Errorf("explore: candidates for p%d at depth %d: %w", p, depth, err)
		}
		e.cands[depth] = buf
		for i := 0; i < len(buf); i++ {
			if err := e.sys.AdvanceResp(p, buf[i]); err != nil {
				return fmt.Errorf("explore: advance p%d branch %d at depth %d: %w", p, i, depth, err)
			}
			if err := rec(depth+1, pathStep{proc: int32(p), branch: int32(i)}); err != nil {
				return err
			}
			if err := e.sys.Undo(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (e *engine) dfs(depth int, visit Visitor) error {
	if e.pruneDup(depth) {
		return nil
	}
	e.st.Nodes++
	descend := true
	if visit != nil {
		var err error
		descend, err = visit(e.sys, depth)
		if err != nil {
			return err
		}
	}
	if e.sys.Done() {
		e.st.Leaves++
		return nil
	}
	if !descend {
		return nil
	}
	if depth >= e.maxDepth {
		e.st.Leaves++
		e.st.Truncated = true
		return nil
	}
	return e.expand(depth, func(d int) error { return e.dfs(d, visit) })
}

func (e *engine) leaves(depth int, fn func(*sim.System) error) error {
	if e.pruneDup(depth) {
		return nil
	}
	e.st.Nodes++
	done := e.sys.Done()
	if done || depth >= e.maxDepth {
		e.st.Leaves++
		if !done {
			e.st.Truncated = true
		}
		return fn(e.sys)
	}
	return e.expand(depth, func(d int) error { return e.leaves(d, fn) })
}

// DFS explores every interleaving (and every eventually linearizable
// response choice) from root down to maxDepth, invoking visit on each node
// in preorder. The root system is never mutated (the engine works on a
// clone). With the zero Config the walk is sequential, so stateful
// visitors need no synchronization; with more than one worker the visitor
// may be invoked concurrently from multiple goroutines and the preorder
// across subtrees is schedule-dependent, while Stats stay deterministic.
func DFS(root *sim.System, maxDepth int, cfg Config, visit Visitor) (Stats, error) {
	if w := cfg.callbackWorkerCount(); w > 1 && maxDepth >= 2 {
		return dfsPar(root, maxDepth, cfg, w, visit)
	}
	var st Stats
	e := newEngine(root, maxDepth, cfg, &st)
	err := e.dfs(0, visit)
	return st, err
}

// Leaves explores to maxDepth and invokes fn on every leaf (terminal or
// horizon configuration). The leaf system passed to fn is the engine's
// working copy: valid only during the call, Clone it to keep it. With the
// zero Config the walk is sequential (fn is typically stateful); with more
// than one worker fn may be invoked concurrently and the leaf order across
// subtrees is schedule-dependent, while Stats and the set of leaves stay
// deterministic.
func Leaves(root *sim.System, maxDepth int, cfg Config, fn func(leaf *sim.System) error) (Stats, error) {
	if w := cfg.callbackWorkerCount(); w > 1 && maxDepth >= 2 {
		return leavesPar(root, maxDepth, cfg, w,
			func(leaf *sim.System, _ int) error { return fn(leaf) }, nil)
	}
	var st Stats
	e := newEngine(root, maxDepth, cfg, &st)
	err := e.leaves(0, fn)
	return st, err
}

// LinearizableEverywhere checks that every leaf history of the bounded
// execution tree is linearizable against the implemented object's spec.
// It returns the first violating configuration (a clone, safe to keep), if
// any. The walk aborts as soon as a violation is found, so the returned
// Stats cover the full tree only when the check passes.
//
// Regardless of worker count the witness is the violating leaf with the
// lexicographically smallest branch path — the one the sequential walk
// finds first — not whichever worker loses the race. Config.Dedup is
// ignored: linearizability of the recorded history is path-dependent, so
// configuration merging would be unsound here.
func LinearizableEverywhere(root *sim.System, maxDepth int, cfg Config, opts check.Options) (bool, *sim.System, Stats, error) {
	specs := implSpecs(root)
	found, bad, st, err := searchViolation(root, maxDepth, cfg, true, func(leaf *sim.System) (bool, error) {
		return check.Linearizable(specs, leaf.History(), opts)
	})
	if err != nil {
		return false, nil, st, err
	}
	return !found, bad, st, nil
}

// WeaklyConsistentEverywhere checks weak consistency of every leaf history.
// Like LinearizableEverywhere it aborts on the first violation and returns
// the lexicographically first witness; see there for the witness and Dedup
// semantics.
func WeaklyConsistentEverywhere(root *sim.System, maxDepth int, cfg Config, opts check.Options) (bool, *sim.System, Stats, error) {
	specs := implSpecs(root)
	found, bad, st, err := searchViolation(root, maxDepth, cfg, true, func(leaf *sim.System) (bool, error) {
		return check.WeaklyConsistent(specs, leaf.History(), opts)
	})
	if err != nil {
		return false, nil, st, err
	}
	return !found, bad, st, nil
}

func implSpecs(s *sim.System) map[string]spec.Object {
	return map[string]spec.Object{s.Impl().Name(): s.Impl().Spec()}
}
