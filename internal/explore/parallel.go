// Parallel frontier-split exploration.
//
// Exhaustive exploration is exponential in depth, so after the in-place
// advance/undo engine made one core fast, the only remaining
// order-of-magnitude lever is using all of them. The scheme:
//
//  1. Split: walk the tree from the root down to a frontier depth k
//     (chosen so the frontier is several times wider than the worker
//     count). Nodes above the frontier — a vanishingly small prefix of the
//     exponential tree — are handled inline during the split; nodes at the
//     frontier become subtree tasks identified by their branch path.
//  2. Fan out: a pool of workers pulls tasks from a shared queue (an
//     atomic cursor over the task list), so skewed subtrees cannot make
//     stragglers. Each worker owns ONE clone of the root system for its
//     whole lifetime: it seeds a subtree by replaying the task's branch
//     path, explores it with the ordinary advance/undo engine, and rewinds
//     with sim.System.UndoTo — one clone per worker, not per subtree, and
//     certainly not per edge.
//  3. Merge: Stats are accumulated per worker and summed. Deduplication
//     uses a sharded concurrent visited set keyed by the full configuration
//     encoding (never a hash), shared across workers.
//
// Determinism. Counters are additive and every tree node is visited by
// exactly one party (the splitter for depths < k, a worker for depths
// ≥ k), so Nodes/Leaves/Truncated match the sequential engine exactly.
// With Dedup the explored configurations form a DAG whose reachable set is
// schedule-independent (a key is explored iff some explored parent reaches
// it, by induction over depth), so the counters — including Deduped — are
// also deterministic even though *which arrival path* wins a race is not.
// Searches that return a witness (LinearizableEverywhere and friends) keep
// their answers deterministic by ranking violations by the subtree's
// position in depth-first order: the winning witness is the one with the
// lexicographically smallest branch path, exactly the leaf the sequential
// early-exit walk would return.
package explore

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// workerCount resolves Config.Workers for the verdict and analysis
// searches: 0 (and any negative value) means GOMAXPROCS.
func (c Config) workerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// callbackWorkerCount resolves Config.Workers for the callback walks (DFS,
// Leaves): 0 means sequential — the safe default for stateful visitors —
// and a negative value opts in to GOMAXPROCS.
func (c Config) callbackWorkerCount() int {
	if c.Workers == 0 {
		return 1
	}
	return c.workerCount()
}

// pathStep is one edge of the execution tree: process proc advances by its
// branch-th candidate response. A []pathStep from the root identifies a
// configuration, and lexicographic order over paths is exactly the order
// in which the sequential depth-first engine reaches leaves.
type pathStep struct {
	proc, branch int32
}

// clonePath copies a branch path (the splitter reuses its scratch path).
func clonePath(p []pathStep) []pathStep {
	return append([]pathStep(nil), p...)
}

// replayPath advances sys along path. With undo enabled the walk is
// reverted by sys.UndoTo.
func replayPath(sys *sim.System, path []pathStep) error {
	for _, s := range path {
		if err := sys.Advance(int(s.proc), int(s.branch)); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Sharded concurrent visited set.

// visitShardCount is the number of independently locked shards (a power of
// two; the shard index is the low bits of an FNV hash of the key).
const visitShardCount = 64

type visitShard struct {
	mu sync.Mutex
	m  map[string]struct{}
	_  [40]byte // pad to a cache line to avoid false sharing between shards
}

// shardedSet is the concurrent visited set behind Config.Dedup in parallel
// explorations. Keys are full configuration encodings; the hash picks the
// shard only, membership is decided by exact byte comparison, so a
// collision can never silently prune an unexplored distinct configuration.
type shardedSet struct {
	shards [visitShardCount]visitShard
}

func newShardedSet() *shardedSet {
	s := &shardedSet{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]struct{})
	}
	return s
}

// checkAndAdd atomically records key and reports whether it was already
// present.
func (s *shardedSet) checkAndAdd(key []byte) bool {
	sh := &s.shards[spec.FNV64(key)&(visitShardCount-1)]
	sh.mu.Lock()
	_, dup := sh.m[string(key)]
	if !dup {
		sh.m[string(key)] = struct{}{}
	}
	sh.mu.Unlock()
	return dup
}

// ---------------------------------------------------------------------------
// Sharded valence memo (Analyze with Dedup under parallel workers).

// memoEntry is one memoized subtree valence. The claimant publishes
// decisions/truncated and closes ready; later arrivals wait on ready.
type memoEntry struct {
	ready     chan struct{}
	decisions []int64
	truncated bool
}

// resolve publishes the entry and releases every waiter. It must be called
// exactly once by the claimant, on every exit path (including errors, so
// that an aborted run cannot strand waiters).
func (e *memoEntry) resolve(decisions []int64, truncated bool) {
	e.decisions = append([]int64(nil), decisions...)
	e.truncated = truncated
	close(e.ready)
}

type memoShard struct {
	mu sync.Mutex
	m  map[string]*memoEntry
	_  [40]byte
}

// shardedMemo memoizes subtree valences across workers. Unlike the plain
// visited set an arrival needs the merged VALUE, not just a membership
// bit, so entries carry an in-flight latch: the first arrival claims the
// key and explores, later arrivals block until the claimant resolves.
//
// The latch cannot deadlock: a worker waiting at depth d holds claims only
// at depths < d (its DFS ancestors), and the claimant it waits on can
// itself only be waiting at some depth > d (inside the claimed subtree),
// so every wait-for edge strictly increases depth and no cycle exists.
type shardedMemo struct {
	shards [visitShardCount]memoShard
}

func newShardedMemo() *shardedMemo {
	s := &shardedMemo{}
	for i := range s.shards {
		s.shards[i].m = make(map[string]*memoEntry)
	}
	return s
}

// claim returns the entry for key and whether the caller claimed it (and
// must therefore resolve it).
func (s *shardedMemo) claim(key []byte) (*memoEntry, bool) {
	sh := &s.shards[spec.FNV64(key)&(visitShardCount-1)]
	sh.mu.Lock()
	if e, ok := sh.m[string(key)]; ok {
		sh.mu.Unlock()
		return e, false
	}
	e := &memoEntry{ready: make(chan struct{})}
	sh.m[string(key)] = e
	sh.mu.Unlock()
	return e, true
}

// ---------------------------------------------------------------------------
// Frontier split.

// maxFrontierDepth bounds the automatic frontier depth; maxFrontierTasks
// bounds the number of subtree tasks (deeper/wider frontiers buy no
// additional balance, they only add replay overhead).
const (
	maxFrontierDepth = 8
	maxFrontierTasks = 4096
)

// subtreeTask is one unit of worker work: the subtree rooted at the
// configuration reached by path. seq is the task's position in depth-first
// order among all frontier nodes and prefix leaves — the rank used to pick
// deterministic witnesses.
type subtreeTask struct {
	path []pathStep
	seq  int
	node *prefixNode // analyze mode only
}

// chooseFrontier picks the split depth: the explicit Config.FrontierDepth
// if set, else the shallowest depth whose width is comfortably larger than
// the worker count (probed with cheap counting walks; the probe is a
// heuristic, so it ignores dedup and visitor pruning).
func chooseFrontier(e *engine, maxDepth, workers, explicit int) (int, error) {
	if explicit > 0 {
		if explicit >= maxDepth {
			explicit = maxDepth - 1
		}
		if explicit < 1 {
			explicit = 1
		}
		return explicit, nil
	}
	target := 8 * workers
	if target > maxFrontierTasks {
		target = maxFrontierTasks
	}
	k := 1
	for ; k < maxDepth-1 && k < maxFrontierDepth; k++ {
		n, err := e.countAtDepth(k, target)
		if err != nil {
			return 0, err
		}
		if n == 0 || n >= target {
			break
		}
	}
	return k, nil
}

// countAtDepth counts the configurations at exactly the given depth that
// still have work to do, short-circuiting once limit is reached.
func (e *engine) countAtDepth(depth, limit int) (int, error) {
	n := 0
	var walk func(d int) error
	walk = func(d int) error {
		if e.sys.Done() {
			return nil
		}
		if d == depth {
			n++
			if n >= limit {
				return errCancelled
			}
			return nil
		}
		return e.expand(d, walk)
	}
	err := walk(0)
	if err == errCancelled {
		err = nil
	}
	// An aborted walk (the short-circuit above, or an advance error) exits
	// through expand without unwinding; rewind so the engine is back at the
	// root for the real split.
	if uerr := e.sys.UndoTo(0); uerr != nil && err == nil {
		err = uerr
	}
	return n, err
}

// splitter enumerates the prefix of the execution tree above the frontier
// depth. Prefix nodes are visited inline (counted, deduplicated, shown to
// the visitor / leaf callback); frontier nodes become subtree tasks.
type splitter struct {
	e      *engine
	k      int
	dfs    bool    // DFS mode: run the visitor, honour pruning
	visit  Visitor // DFS mode
	leafFn func(s *sim.System, seq int) error
	path   []pathStep
	tasks  []subtreeTask
	seq    int
}

// walk enumerates the prefix below the current configuration at depth.
// Frontier nodes (depth == k) are emitted as tasks and NOT visited — the
// worker that picks the task up runs the full per-node protocol (dedup
// check, counting, callbacks) so every node is processed exactly once.
func (sp *splitter) walk(depth int) error {
	if depth == sp.k {
		sp.tasks = append(sp.tasks, subtreeTask{path: clonePath(sp.path), seq: sp.seq})
		sp.seq++
		return nil
	}
	if sp.e.pruneDup(depth) {
		return nil
	}
	sp.e.st.Nodes++
	descend := true
	if sp.dfs && sp.visit != nil {
		var err error
		descend, err = sp.visit(sp.e.sys, depth)
		if err != nil {
			return err
		}
	}
	if sp.e.sys.Done() {
		sp.e.st.Leaves++
		seq := sp.seq
		sp.seq++
		if !sp.dfs && sp.leafFn != nil {
			return sp.leafFn(sp.e.sys, seq)
		}
		return nil
	}
	if !descend {
		return nil
	}
	return sp.e.expandSteps(depth, func(d int, step pathStep) error {
		sp.path = append(sp.path, step)
		err := sp.walk(d)
		sp.path = sp.path[:len(sp.path)-1]
		return err
	})
}

// ---------------------------------------------------------------------------
// Worker pool.

// fatalErr records the first unrecoverable error across workers and makes
// the others drain.
type fatalErr struct {
	set atomic.Bool
	mu  sync.Mutex
	err error
}

func (f *fatalErr) fail(err error) {
	f.mu.Lock()
	if f.err == nil {
		f.err = err
		f.set.Store(true)
	}
	f.mu.Unlock()
}

func (f *fatalErr) get() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}

// runTasks fans tasks out to workers pulling from a shared atomic cursor.
// body explores one subtree on the worker's engine; abort errors (sentinel
// early exits) end the subtree without failing the run. Worker Stats are
// summed into total.
func runTasks(root *sim.System, maxDepth, workers int, cfg Config, tasks []subtreeTask,
	shared *shardedSet, total *Stats,
	body func(e *engine, t subtreeTask) error,
	isAbort func(error) bool, skip func(t subtreeTask) bool) error {

	if len(tasks) == 0 {
		return nil
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	var cursor atomic.Int64
	var fatal fatalErr
	stats := make([]Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// The engine (a deep clone of root) is created lazily on the
			// first task this worker actually explores: a hunt whose winner
			// was already found during the prefix split skips everything and
			// should not pay a clone per worker.
			var e *engine
			for !fatal.set.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				t := tasks[i]
				if skip != nil && skip(t) {
					continue
				}
				if e == nil {
					e = newWorkerEngine(root, maxDepth, cfg, shared, &stats[w])
				}
				if err := replayPath(e.sys, t.path); err != nil {
					fatal.fail(err)
					return
				}
				err := body(e, t)
				if uerr := e.sys.UndoTo(0); uerr != nil && err == nil {
					err = uerr
				}
				if err != nil && (isAbort == nil || !isAbort(err)) {
					fatal.fail(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w := range stats {
		total.add(stats[w])
	}
	return fatal.get()
}

// isSentinel reports the package's clean-early-exit sentinels.
func isSentinel(err error) bool {
	return err == errViolation || err == errCancelled
}

// ---------------------------------------------------------------------------
// Parallel Leaves / DFS.

// leavesPar is the parallel leaf enumeration: split, fan out, merge. fn
// receives the depth-first rank of the enclosing subtree (or prefix leaf)
// so witness searches can order violations; isAbort marks sentinel errors
// that end a subtree without failing the exploration.
func leavesPar(root *sim.System, maxDepth int, cfg Config, workers int,
	fn func(leaf *sim.System, seq int) error, isAbort func(error) bool) (Stats, error) {

	var st Stats
	e := newEngine(root, maxDepth, cfg, &st)
	k, err := chooseFrontier(e, maxDepth, workers, cfg.FrontierDepth)
	if err != nil {
		return st, err
	}
	sp := &splitter{e: e, k: k, leafFn: fn}
	splitErr := sp.walk(0)
	if splitErr != nil && (isAbort == nil || !isAbort(splitErr)) {
		return st, splitErr
	}
	var shared *shardedSet
	if e.dedup {
		shared = newShardedSet()
	}
	err = runTasks(root, maxDepth, workers, cfg, sp.tasks, shared, &st,
		func(we *engine, t subtreeTask) error {
			return we.leaves(len(t.path), func(leaf *sim.System) error {
				return fn(leaf, t.seq)
			})
		}, isAbort, nil)
	return st, err
}

// dfsPar is the parallel preorder walk. The visitor runs on the splitting
// goroutine for prefix nodes and on workers below the frontier.
func dfsPar(root *sim.System, maxDepth int, cfg Config, workers int, visit Visitor) (Stats, error) {
	var st Stats
	e := newEngine(root, maxDepth, cfg, &st)
	k, err := chooseFrontier(e, maxDepth, workers, cfg.FrontierDepth)
	if err != nil {
		return st, err
	}
	sp := &splitter{e: e, k: k, dfs: true, visit: visit}
	if err := sp.walk(0); err != nil {
		return st, err
	}
	var shared *shardedSet
	if e.dedup {
		shared = newShardedSet()
	}
	err = runTasks(root, maxDepth, workers, cfg, sp.tasks, shared, &st,
		func(we *engine, t subtreeTask) error {
			return we.dfs(len(t.path), visit)
		}, nil, nil)
	return st, err
}

// ---------------------------------------------------------------------------
// Violation search (LinearizableEverywhere, WeaklyConsistentEverywhere,
// NodeStable).

// leafPredicate checks one leaf; ok=false flags a violation.
type leafPredicate func(leaf *sim.System) (ok bool, err error)

// violationHunt coordinates the deterministic-witness search: bestSeq is
// the depth-first rank of the best (smallest) violating subtree found so
// far, read with a bare atomic on the hot path. Workers exploring a
// subtree ranked above it abort; the subtree walk itself stops at its
// first violating leaf, which is the subtree's lexicographic minimum, so
// the surviving witness is the global lexicographic minimum — the leaf the
// sequential walk returns.
type violationHunt struct {
	bestSeq     atomic.Int64
	keepWitness bool
	mu          sync.Mutex
	witness     *sim.System
}

const noViolation = int64(1) << 62

func newViolationHunt(keepWitness bool) *violationHunt {
	h := &violationHunt{keepWitness: keepWitness}
	h.bestSeq.Store(noViolation)
	return h
}

// record notes a violation found at rank seq in leaf (the engine's working
// system — cloned here if a witness is kept).
func (h *violationHunt) record(seq int, leaf *sim.System) {
	if !h.keepWitness {
		// Verdict-only searches (NodeStable) cancel everything outstanding.
		h.bestSeq.Store(-1)
		return
	}
	h.mu.Lock()
	if int64(seq) < h.bestSeq.Load() {
		h.bestSeq.Store(int64(seq))
		h.witness = leaf.Clone()
	}
	h.mu.Unlock()
}

func (h *violationHunt) found() bool { return h.bestSeq.Load() != noViolation }

// searchViolation checks pred on every leaf below root, aborting as early
// as possible once a violation is found. With keepWitness the returned
// system is the violating leaf with the lexicographically smallest branch
// path, identical for every worker count. Stats cover the full tree only
// when no violation exists (early exit truncates them, exactly like the
// sequential sentinel walk). Dedup is forced off: leaf checks read the
// recorded history, which depends on the path taken to a configuration.
func searchViolation(root *sim.System, maxDepth int, cfg Config, keepWitness bool,
	pred leafPredicate) (bool, *sim.System, Stats, error) {

	cfg.Dedup = false
	w := cfg.workerCount()
	if w <= 1 || maxDepth < 2 {
		var bad *sim.System
		var st Stats
		e := newEngine(root, maxDepth, cfg, &st)
		err := e.leaves(0, func(leaf *sim.System) error {
			ok, err := pred(leaf)
			if err != nil {
				return err
			}
			if !ok {
				if keepWitness {
					bad = leaf.Clone()
				}
				return errViolation
			}
			return nil
		})
		found := err == errViolation
		if found {
			err = nil
		}
		return found, bad, st, err
	}

	hunt := newViolationHunt(keepWitness)
	fn := func(leaf *sim.System, seq int) error {
		if int64(seq) > hunt.bestSeq.Load() {
			return errCancelled
		}
		ok, err := pred(leaf)
		if err != nil {
			return err
		}
		if !ok {
			hunt.record(seq, leaf)
			return errViolation
		}
		return nil
	}
	st, err := leavesParHunt(root, maxDepth, cfg, w, fn, hunt)
	if err != nil {
		return false, nil, st, err
	}
	return hunt.found(), hunt.witness, st, nil
}

// leavesParHunt is leavesPar specialised to a violation hunt: subtrees
// ranked above the best violation are skipped before they are even seeded.
func leavesParHunt(root *sim.System, maxDepth int, cfg Config, workers int,
	fn func(leaf *sim.System, seq int) error, hunt *violationHunt) (Stats, error) {

	var st Stats
	e := newEngine(root, maxDepth, cfg, &st)
	k, err := chooseFrontier(e, maxDepth, workers, cfg.FrontierDepth)
	if err != nil {
		return st, err
	}
	sp := &splitter{e: e, k: k, leafFn: fn}
	if splitErr := sp.walk(0); splitErr != nil && !isSentinel(splitErr) {
		return st, splitErr
	}
	err = runTasks(root, maxDepth, workers, cfg, sp.tasks, nil, &st,
		func(we *engine, t subtreeTask) error {
			return we.leaves(len(t.path), func(leaf *sim.System) error {
				return fn(leaf, t.seq)
			})
		}, isSentinel,
		func(t subtreeTask) bool { return int64(t.seq) > hunt.bestSeq.Load() })
	return st, err
}
