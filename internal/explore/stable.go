package explore

import (
	"errors"
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/sim"
)

// errUnstable aborts the leaf enumeration as soon as one violating leaf is
// found.
var errUnstable = errors.New("unstable")

// StableResult describes a stable configuration found by FindStable.
type StableResult struct {
	// System is the configuration C (a clone; safe to keep and advance).
	System *sim.System
	// Depth is C's depth in the execution tree.
	Depth int
	// T is |αC| measured in implemented-level history events: every
	// bounded extension of C is T-linearizable.
	T int
	// VerifyStats aggregates the verification exploration of C's subtree.
	VerifyStats Stats
	// NodesSearched counts configurations examined before C was found.
	NodesSearched int
}

// NodeStable reports whether every leaf history within verifyDepth below
// node is t-linearizable for t = node's current history length — the
// bounded-evidence version of the paper's "stable" (Proposition 18): "every
// execution with prefix αC is |αC|-linearizable". By the prefix closure of
// t-linearizability (Lemma 6), checking the maximal (leaf) extensions
// covers every intermediate configuration.
func NodeStable(node *sim.System, verifyDepth int, opts check.Options) (bool, Stats, error) {
	t := node.History().Len()
	obj := node.Impl().Spec()
	st, err := Leaves(node, verifyDepth, func(leaf *sim.System) error {
		ok, err := check.TLinearizable(obj, leaf.History(), t, opts)
		if err != nil {
			return err
		}
		if !ok {
			return errUnstable
		}
		return nil
	})
	if errors.Is(err, errUnstable) {
		return false, st, nil
	}
	if err != nil {
		return false, st, err
	}
	return true, st, nil
}

// FindStable searches the execution tree of root for a stable configuration
// (Claim 1 in the proof of Proposition 18 guarantees one exists for any
// eventually linearizable implementation). The search walks configurations
// in breadth-first order up to searchDepth and verifies stability of each
// candidate with NodeStable at verifyDepth. It returns the shallowest
// stable configuration found.
//
// The implementation under test must use only linearizable base objects
// (Proposition 18's hypothesis); eventually linearizable bases make the
// tree branch on responses, which is supported but usually unintended here.
func FindStable(root *sim.System, searchDepth, verifyDepth int, opts check.Options) (*StableResult, error) {
	type queued struct {
		sys   *sim.System
		depth int
	}
	queue := []queued{{sys: root.Clone(), depth: 0}}
	searched := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		searched++
		stable, vst, err := NodeStable(cur.sys, verifyDepth, opts)
		if err != nil {
			return nil, fmt.Errorf("explore: stability check at depth %d: %w", cur.depth, err)
		}
		if stable {
			return &StableResult{
				System:        cur.sys,
				Depth:         cur.depth,
				T:             cur.sys.History().Len(),
				VerifyStats:   vst,
				NodesSearched: searched,
			}, nil
		}
		if cur.depth >= searchDepth {
			continue
		}
		for _, p := range cur.sys.Enabled() {
			cands, err := cur.sys.Candidates(p)
			if err != nil {
				return nil, err
			}
			for branch := range cands {
				child := cur.sys.Clone()
				if err := child.Advance(p, branch); err != nil {
					return nil, err
				}
				queue = append(queue, queued{sys: child, depth: cur.depth + 1})
			}
		}
	}
	return nil, fmt.Errorf("explore: no stable configuration within depth %d (verify depth %d)",
		searchDepth, verifyDepth)
}
