package explore

import (
	"errors"
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/sim"
)

// StableResult describes a stable configuration found by FindStable.
type StableResult struct {
	// System is the configuration C (a clone; safe to keep and advance).
	System *sim.System
	// Depth is C's depth in the execution tree.
	Depth int
	// T is |αC| measured in implemented-level history events: every
	// bounded extension of C is T-linearizable.
	T int
	// VerifyStats aggregates the verification exploration of C's subtree.
	VerifyStats Stats
	// NodesSearched counts configurations examined before C was found.
	NodesSearched int
}

// NodeStable reports whether every leaf history within verifyDepth below
// node is t-linearizable for t = node's current history length — the
// bounded-evidence version of the paper's "stable" (Proposition 18): "every
// execution with prefix αC is |αC|-linearizable". By the prefix closure of
// t-linearizability (Lemma 6), checking the maximal (leaf) extensions
// covers every intermediate configuration.
//
// The verdict is deterministic for every worker count; the returned Stats
// cover the full subtree only when the node IS stable (a violation aborts
// the walk early, and under parallel workers the abort point is
// schedule-dependent).
func NodeStable(node *sim.System, verifyDepth int, cfg Config, opts check.Options) (bool, Stats, error) {
	t := node.History().Len()
	obj := node.Impl().Spec()
	found, _, st, err := searchViolation(node, verifyDepth, cfg, false, func(leaf *sim.System) (bool, error) {
		return check.TLinearizable(obj, leaf.History(), t, opts)
	})
	if err != nil {
		return false, st, err
	}
	return !found, st, nil
}

// errBudget aborts a budgeted stability pre-check whose subtree turned out
// to be expensive (see findStable).
var errBudget = errors.New("explore: node budget exhausted")

// stableCheckAt verifies bounded stability of the engine's CURRENT
// configuration, sitting at the given absolute depth, entirely in place:
// every leaf within verifyDepth below it must be t-linearizable for t =
// the current history length. The walk aborts at the first violating leaf
// and rewinds to the configuration it started from. A positive budget
// additionally abandons the walk once that many nodes have been visited
// without a verdict; decided reports whether the verdict is final.
func stableCheckAt(e *engine, depth, verifyDepth int, opts check.Options, budget int) (stable bool, vst Stats, decided bool, err error) {
	prevSt, prevMax := e.st, e.maxDepth
	e.st, e.maxDepth = &vst, depth+verifyDepth
	t := e.sys.History().Len()
	obj := e.sys.Impl().Spec()
	err = e.leaves(depth, func(leaf *sim.System) error {
		if budget > 0 && vst.Nodes > budget {
			return errBudget
		}
		ok, cerr := check.TLinearizable(obj, leaf.History(), t, opts)
		if cerr != nil {
			return cerr
		}
		if !ok {
			return errViolation
		}
		return nil
	})
	e.st, e.maxDepth = prevSt, prevMax
	if uerr := e.sys.UndoTo(depth); uerr != nil && (err == nil || isSentinel(err) || err == errBudget) {
		err = uerr
	}
	switch err {
	case nil:
		return true, vst, true, nil
	case errViolation:
		return false, vst, true, nil
	case errBudget:
		return false, vst, false, nil
	default:
		return false, vst, false, err
	}
}

// appendChildren enumerates the children of the engine's current
// configuration through expandSteps — the same code path every walk in
// this package branches with, so the (process, branch) order the queue
// records is the order replayPath will resolve — and appends their branch
// paths to queue.
func appendChildren(e *engine, depth int, path []pathStep, queue [][]pathStep) ([][]pathStep, error) {
	err := e.expandSteps(depth, func(_ int, step pathStep) error {
		child := make([]pathStep, len(path)+1)
		copy(child, path)
		child[len(path)] = step
		queue = append(queue, child)
		return nil
	})
	return queue, err
}

// FindStable searches the execution tree of root for a stable configuration
// (Claim 1 in the proof of Proposition 18 guarantees one exists for any
// eventually linearizable implementation). The search walks configurations
// in breadth-first order up to searchDepth and verifies stability of each
// candidate (the dominant cost) at verifyDepth. It returns the shallowest
// stable configuration found — among equal depths, the first in
// breadth-first order, for every worker count.
//
// The implementation under test must use only linearizable base objects
// (Proposition 18's hypothesis); eventually linearizable bases make the
// tree branch on responses, which is supported but usually unintended here.
//
// With more than one worker each candidate's stability verification — the
// search's dominant cost, an exhaustive walk of the candidate's bounded
// subtree — fans its leaf checks out across the worker pool, while
// candidates are still consumed strictly in breadth-first order, so the
// result (configuration, depth, T, NodesSearched and the winner's
// VerifyStats) is identical to the sequential search. Parallelism goes
// inside the verification rather than across candidates because the stable
// winner's full-subtree verification dwarfs the early-aborting unstable
// checks before it: speeding up that single walk is what moves wall-clock.
// Config.Dedup is ignored (stability of a node depends on its recorded
// history, not just the configuration).
func FindStable(root *sim.System, searchDepth, verifyDepth int, cfg Config, opts check.Options) (*StableResult, error) {
	return findStable(root, searchDepth, verifyDepth, cfg, opts)
}

// fsSeqBudget is the node budget of the in-place sequential pre-check the
// parallel search gives each candidate before fanning its verification out
// to the pool: most unstable candidates hit a violating leaf well inside
// it, sparing the per-candidate pool setup (worker clones, frontier
// probe), while an expensive subtree — in practice the stable winner's —
// abandons the pre-check early and gets the full parallel treatment.
const fsSeqBudget = 512

// findStable is the shared breadth-first search. The queue holds branch
// paths, not configurations: one working system replays a candidate's
// path, verifies it in place, enumerates its children and rewinds — no
// clone per edge, no clone per queued node, one clone for the result.
func findStable(root *sim.System, searchDepth, verifyDepth int, cfg Config, opts check.Options) (*StableResult, error) {
	workers := cfg.workerCount()
	var scratch Stats
	e := newEngine(root, searchDepth+verifyDepth, Config{}, &scratch)
	budget := 0 // sequential search: run every pre-check to its verdict
	if workers > 1 {
		budget = fsSeqBudget
	}
	queue := [][]pathStep{nil}
	for i := 0; i < len(queue); i++ {
		path := queue[i]
		if err := replayPath(e.sys, path); err != nil {
			return nil, err
		}
		depth := len(path)
		stable, vst, decided, err := stableCheckAt(e, depth, verifyDepth, opts, budget)
		if err == nil && !decided {
			// The budgeted walk found no violation but ran out: verify the
			// candidate exhaustively on the worker pool. A winner decided
			// here enumerates its whole subtree, so its VerifyStats match
			// the sequential search's exactly.
			stable, vst, err = NodeStable(e.sys, verifyDepth, cfg, opts)
		}
		if err != nil {
			return nil, fmt.Errorf("explore: stability check at depth %d: %w", depth, err)
		}
		if stable {
			return &StableResult{
				System:        e.sys.Clone(),
				Depth:         depth,
				T:             e.sys.History().Len(),
				VerifyStats:   vst,
				NodesSearched: i + 1,
			}, nil
		}
		if depth < searchDepth {
			if queue, err = appendChildren(e, depth, path, queue); err != nil {
				return nil, err
			}
		}
		if err := e.sys.UndoTo(0); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("explore: no stable configuration within depth %d (verify depth %d)",
		searchDepth, verifyDepth)
}
