package explore

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// The parallel frontier-split engine must be observationally equivalent to
// the sequential engine for every worker count and schedule: identical
// Stats, identical leaf multisets, identical valency reports, identical
// stable verdicts, and the same (lexicographically first) violation
// witness. These tests run the same workloads at several worker counts —
// including counts far above GOMAXPROCS, which forces heavy interleaving —
// and diff everything against workers=1.

var parWorkerCounts = []int{2, 3, 8}

func TestParallelLeavesMatchesSequential(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			var seqH []string
			seqStats, err := Leaves(root, sc.depth, Config{}, func(leaf *sim.System) error {
				seqH = append(seqH, leaf.History().String())
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(seqH)
			for _, w := range parWorkerCounts {
				var mu sync.Mutex
				var parH []string
				parStats, err := Leaves(root, sc.depth, Config{Workers: w}, func(leaf *sim.System) error {
					h := leaf.History().String()
					mu.Lock()
					parH = append(parH, h)
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if parStats != seqStats {
					t.Fatalf("workers=%d: stats diverge: par %+v, seq %+v", w, parStats, seqStats)
				}
				sort.Strings(parH)
				if !reflect.DeepEqual(parH, seqH) {
					t.Fatalf("workers=%d: leaf multiset diverges (%d vs %d leaves)", w, len(parH), len(seqH))
				}
			}
		})
	}
}

func TestParallelDFSMatchesSequential(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			seqStats, err := DFS(root, sc.depth, Config{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				parStats, err := DFS(root, sc.depth, Config{Workers: w}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if parStats != seqStats {
					t.Fatalf("workers=%d: stats diverge: par %+v, seq %+v", w, parStats, seqStats)
				}
			}
		})
	}
}

// TestParallelDFSVisitorPrune checks that visitor pruning composes with the
// frontier split: pruning at a prefix depth and pruning below the frontier
// must both match the sequential walk.
func TestParallelDFSVisitorPrune(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	for _, cut := range []int{1, 3, 5} {
		visit := func(s *sim.System, depth int) (bool, error) { return depth < cut, nil }
		seqStats, err := DFS(root, 12, Config{}, visit)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range parWorkerCounts {
			parStats, err := DFS(root, 12, Config{Workers: w}, visit)
			if err != nil {
				t.Fatal(err)
			}
			if parStats != seqStats {
				t.Fatalf("cut=%d workers=%d: stats diverge: par %+v, seq %+v", cut, w, parStats, seqStats)
			}
		}
	}
}

// TestParallelDedupCounts checks the sharded concurrent visited set: the
// merged DAG has schedule-independent counters.
func TestParallelDedupCounts(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	seqStats, err := DFS(root, 12, Config{Dedup: true, Workers: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seqStats.Deduped == 0 {
		t.Fatal("symmetric workload should merge configurations")
	}
	for _, w := range parWorkerCounts {
		parStats, err := DFS(root, 12, Config{Dedup: true, Workers: w}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if parStats != seqStats {
			t.Fatalf("workers=%d: dedup stats diverge: par %+v, seq %+v", w, parStats, seqStats)
		}
	}
}

func TestParallelAnalyzeMatchesSequential(t *testing.T) {
	for _, sc := range seedScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			seqRep, err := Analyze(root, sc.depth, Config{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				parRep, err := Analyze(root, sc.depth, Config{Workers: w})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(parRep, seqRep) {
					t.Fatalf("workers=%d: valency reports diverge:\npar: %+v\nseq: %+v", w, parRep, seqRep)
				}
			}
		})
	}
}

// TestParallelAnalyzeDedupDeterministic checks the latch-based shared memo:
// every counter of the deduplicating analysis is schedule-independent.
func TestParallelAnalyzeDedupDeterministic(t *testing.T) {
	cases := []scenario{
		{
			name: "reg-consensus",
			impl: elconsensus.Impl{AtomicBases: true},
			workload: [][]spec.Op{
				{spec.MakeOp1(spec.MethodPropose, 10)},
				{spec.MakeOp1(spec.MethodPropose, 20)},
			},
			depth: 14,
		},
		{
			name:     "cas-counter",
			impl:     counter.CAS{},
			workload: sim.UniformWorkload(2, 2, fetchinc),
			depth:    12,
		},
	}
	for _, sc := range cases {
		t.Run(sc.name, func(t *testing.T) {
			root := mustSystem(t, sc.impl, sc.workload, sc.policies)
			seqRep, err := Analyze(root, sc.depth, Config{Dedup: true, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				for round := 0; round < 3; round++ {
					parRep, err := Analyze(root, sc.depth, Config{Dedup: true, Workers: w})
					if err != nil {
						t.Fatal(err)
					}
					if parRep.Stats != seqRep.Stats {
						t.Fatalf("workers=%d: stats diverge: par %+v, seq %+v", w, parRep.Stats, seqRep.Stats)
					}
					if parRep.Univalent != seqRep.Univalent || parRep.Multivalent != seqRep.Multivalent {
						t.Fatalf("workers=%d: valence counts diverge: par %d/%d, seq %d/%d",
							w, parRep.Univalent, parRep.Multivalent, seqRep.Univalent, seqRep.Multivalent)
					}
					if parRep.AgreementViolations != seqRep.AgreementViolations {
						t.Fatalf("workers=%d: agreement violations diverge: par %d, seq %d",
							w, parRep.AgreementViolations, seqRep.AgreementViolations)
					}
					if len(parRep.Criticals) != len(seqRep.Criticals) {
						t.Fatalf("workers=%d: critical counts diverge: par %d, seq %d",
							w, len(parRep.Criticals), len(seqRep.Criticals))
					}
					if !reflect.DeepEqual(parRep.Root, seqRep.Root) {
						t.Fatalf("workers=%d: root valence diverges: par %+v, seq %+v", w, parRep.Root, seqRep.Root)
					}
				}
			}
		})
	}
}

// TestParallelViolationWitnessDeterministic pins the witness contract: the
// violating leaf returned by the parallel search is the lexicographically
// first one — the exact leaf the sequential early-exit walk returns —
// regardless of worker count and schedule.
func TestParallelViolationWitnessDeterministic(t *testing.T) {
	root := mustSystem(t, counter.Sloppy{}, sim.UniformWorkload(2, 1, fetchinc), nil)
	ok, seqBad, _, err := LinearizableEverywhere(root, 10, Config{Workers: 1}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok || seqBad == nil {
		t.Fatal("sloppy counter must violate linearizability")
	}
	want := seqBad.History().String()
	for _, w := range parWorkerCounts {
		for round := 0; round < 5; round++ {
			ok, bad, _, err := LinearizableEverywhere(root, 10, Config{Workers: w}, check.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if ok || bad == nil {
				t.Fatalf("workers=%d: violation not found", w)
			}
			if got := bad.History().String(); got != want {
				t.Fatalf("workers=%d round %d: witness diverges:\npar:\n%s\nseq:\n%s", w, round, got, want)
			}
		}
	}
}

// TestParallelLinearizableEverywhereClean checks the passing direction:
// with no violation the walk is exhaustive and Stats are deterministic.
func TestParallelLinearizableEverywhereClean(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	okSeq, _, seqStats, err := LinearizableEverywhere(root, 22, Config{Workers: 1}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !okSeq {
		t.Fatal("CAS counter must be linearizable everywhere")
	}
	for _, w := range parWorkerCounts {
		ok, bad, parStats, err := LinearizableEverywhere(root, 22, Config{Workers: w}, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok || bad != nil {
			t.Fatalf("workers=%d: spurious violation", w)
		}
		if parStats != seqStats {
			t.Fatalf("workers=%d: stats diverge: par %+v, seq %+v", w, parStats, seqStats)
		}
	}
}

// TestEarlyExitOnViolation pins the satellite fix: the sequential walk must
// stop at the first violating leaf instead of enumerating the full tree.
func TestEarlyExitOnViolation(t *testing.T) {
	root := mustSystem(t, counter.Sloppy{}, sim.UniformWorkload(2, 1, fetchinc), nil)
	full, err := DFS(root, 10, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, st, err := LinearizableEverywhere(root, 10, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("sloppy counter must violate linearizability")
	}
	if st.Nodes >= full.Nodes {
		t.Fatalf("no early exit: checked %d nodes, tree has %d", st.Nodes, full.Nodes)
	}
}

func TestParallelNodeStableMatchesSequential(t *testing.T) {
	cases := []struct {
		name   string
		impl   machine.Impl
		verify int
	}{
		{"cas-counter", counter.CAS{}, 12},
		{"warmup-counter", counter.Warmup{Threshold: 2}, 12},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := mustSystem(t, tc.impl, sim.UniformWorkload(2, 2, fetchinc), nil)
			seqStable, seqStats, err := NodeStable(root, tc.verify, Config{Workers: 1}, check.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range parWorkerCounts {
				stable, st, err := NodeStable(root, tc.verify, Config{Workers: w}, check.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if stable != seqStable {
					t.Fatalf("workers=%d: verdicts diverge: par %v, seq %v", w, stable, seqStable)
				}
				// Stats are exhaustive (hence deterministic) only when the
				// node is stable; a violation aborts at a schedule-dependent
				// point.
				if stable && st != seqStats {
					t.Fatalf("workers=%d: stats diverge: par %+v, seq %+v", w, st, seqStats)
				}
			}
		})
	}
}

func TestParallelFindStableMatchesSequential(t *testing.T) {
	impl := counter.Warmup{Threshold: 2}
	root := mustSystem(t, impl, sim.UniformWorkload(2, 2, fetchinc), nil)
	seq, err := FindStable(root, 8, 12, Config{Workers: 1}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range parWorkerCounts {
		par, err := FindStable(root, 8, 12, Config{Workers: w}, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if par.Depth != seq.Depth || par.T != seq.T || par.NodesSearched != seq.NodesSearched {
			t.Fatalf("workers=%d: result diverges: par depth=%d t=%d searched=%d, seq depth=%d t=%d searched=%d",
				w, par.Depth, par.T, par.NodesSearched, seq.Depth, seq.T, seq.NodesSearched)
		}
		if par.VerifyStats != seq.VerifyStats {
			t.Fatalf("workers=%d: verify stats diverge: par %+v, seq %+v", w, par.VerifyStats, seq.VerifyStats)
		}
		if par.System.History().String() != seq.System.History().String() {
			t.Fatalf("workers=%d: stable configurations diverge", w)
		}
	}
}

func TestParallelFindStableFailureMatchesSequential(t *testing.T) {
	impl := counter.Warmup{Threshold: 50}
	root := mustSystem(t, impl, sim.UniformWorkload(2, 3, fetchinc), nil)
	_, seqErr := FindStable(root, 2, 10, Config{Workers: 1}, check.Options{})
	if seqErr == nil {
		t.Fatal("expected failure for unreachable stabilization")
	}
	for _, w := range parWorkerCounts {
		_, err := FindStable(root, 2, 10, Config{Workers: w}, check.Options{})
		if err == nil {
			t.Fatalf("workers=%d: expected failure", w)
		}
		if err.Error() != seqErr.Error() {
			t.Fatalf("workers=%d: errors diverge: par %q, seq %q", w, err, seqErr)
		}
	}
}

// TestParallelExplicitFrontierDepths checks that every split depth yields
// the same results (the frontier is a correctness-neutral tuning knob).
func TestParallelExplicitFrontierDepths(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	seqStats, err := DFS(root, 12, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 4, 7, 20} {
		parStats, err := DFS(root, 12, Config{Workers: 4, FrontierDepth: k}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if parStats != seqStats {
			t.Fatalf("frontier=%d: stats diverge: par %+v, seq %+v", k, parStats, seqStats)
		}
	}
}

// TestParallelQuickRandomWorkloads cross-validates sequential and parallel
// exploration on random workloads, implementations, policies, depths and
// worker counts.
func TestParallelQuickRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(2)
		var impl machine.Impl
		var workload [][]spec.Op
		var pol base.PolicyFor
		switch r.Intn(4) {
		case 0:
			impl = counter.CAS{}
			workload = sim.UniformWorkload(n, 1+r.Intn(2), fetchinc)
		case 1:
			impl = counter.Sloppy{}
			workload = sim.UniformWorkload(n, 1+r.Intn(2), fetchinc)
		case 2:
			impl = counter.Junk{}
			workload = sim.UniformWorkload(n, 1+r.Intn(2), fetchinc)
		default:
			impl = elconsensus.Impl{}
			w := make([][]spec.Op, n)
			for p := range w {
				w[p] = []spec.Op{spec.MakeOp1(spec.MethodPropose, int64(10*(p+1)))}
			}
			workload = w
			pol = base.SamePolicy(base.Window{K: r.Intn(3)})
		}
		depth := 5 + r.Intn(4)
		workers := 2 + r.Intn(7)
		dedup := r.Intn(2) == 0
		root, err := sim.NewSystem(impl, workload, pol, check.Options{}, false)
		if err != nil {
			t.Fatal(err)
		}
		var seqH []string
		seqStats, err := Leaves(root, depth, Config{Workers: 1, Dedup: dedup}, func(leaf *sim.System) error {
			seqH = append(seqH, leaf.History().String())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var parH []string
		parStats, err := Leaves(root, depth, Config{Workers: workers, Dedup: dedup}, func(leaf *sim.System) error {
			h := leaf.History().String()
			mu.Lock()
			parH = append(parH, h)
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if parStats != seqStats {
			t.Logf("seed %d (%s depth %d workers %d dedup %v): stats diverge: par %+v seq %+v",
				seed, impl.Name(), depth, workers, dedup, parStats, seqStats)
			return false
		}
		if dedup {
			// With dedup the leaf *configurations* are deterministic but the
			// recorded histories depend on the winning arrival path; only
			// the counts are comparable.
			if len(parH) != len(seqH) {
				t.Logf("seed %d: dedup leaf counts diverge: %d vs %d", seed, len(parH), len(seqH))
				return false
			}
			return true
		}
		sort.Strings(seqH)
		sort.Strings(parH)
		if !reflect.DeepEqual(parH, seqH) {
			t.Logf("seed %d (%s depth %d workers %d): leaf multisets diverge", seed, impl.Name(), depth, workers)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 6
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
