package explore

import (
	"fmt"

	"github.com/elin-go/elin/internal/sim"
)

// This file retains the original clone-per-edge exploration engine. It is
// the semantic reference for the in-place advance/undo engine in
// explore.go: the equivalence tests assert that both engines produce
// identical Stats, leaf histories, valency classifications and stable-node
// verdicts, and the BenchmarkExploreUndo*/BenchmarkExploreClone* pairs
// quantify what the undo engine buys. It is not used on any production
// path.

// CloneDFS is the clone-per-edge reference implementation of DFS: every
// edge deep-copies the entire configuration (programmes, base objects and
// both histories) before advancing.
func CloneDFS(root *sim.System, maxDepth int, visit Visitor) (Stats, error) {
	var st Stats
	err := cloneDFS(root, 0, maxDepth, visit, &st)
	return st, err
}

func cloneDFS(s *sim.System, depth, maxDepth int, visit Visitor, st *Stats) error {
	st.Nodes++
	descend := true
	if visit != nil {
		var err error
		descend, err = visit(s, depth)
		if err != nil {
			return err
		}
	}
	enabled := s.Enabled()
	if len(enabled) == 0 {
		st.Leaves++
		return nil
	}
	if !descend {
		return nil
	}
	if depth >= maxDepth {
		st.Leaves++
		st.Truncated = true
		return nil
	}
	for _, p := range enabled {
		cands, err := s.Candidates(p)
		if err != nil {
			return fmt.Errorf("explore: candidates for p%d at depth %d: %w", p, depth, err)
		}
		for branch := range cands {
			child := s.Clone()
			if err := child.Advance(p, branch); err != nil {
				return fmt.Errorf("explore: advance p%d branch %d at depth %d: %w", p, branch, depth, err)
			}
			if err := cloneDFS(child, depth+1, maxDepth, visit, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloneLeaves is the clone-per-edge reference implementation of Leaves.
func CloneLeaves(root *sim.System, maxDepth int, fn func(leaf *sim.System) error) (Stats, error) {
	var st Stats
	err := cloneLeaves(root, 0, maxDepth, fn, &st)
	return st, err
}

func cloneLeaves(s *sim.System, depth, maxDepth int, fn func(*sim.System) error, st *Stats) error {
	st.Nodes++
	enabled := s.Enabled()
	if len(enabled) == 0 || depth >= maxDepth {
		st.Leaves++
		if len(enabled) > 0 {
			st.Truncated = true
		}
		return fn(s)
	}
	for _, p := range enabled {
		cands, err := s.Candidates(p)
		if err != nil {
			return fmt.Errorf("explore: candidates for p%d at depth %d: %w", p, depth, err)
		}
		for branch := range cands {
			child := s.Clone()
			if err := child.Advance(p, branch); err != nil {
				return fmt.Errorf("explore: advance p%d branch %d at depth %d: %w", p, branch, depth, err)
			}
			if err := cloneLeaves(child, depth+1, maxDepth, fn, st); err != nil {
				return err
			}
		}
	}
	return nil
}

// CloneAnalyze is the clone-per-edge reference implementation of Analyze.
func CloneAnalyze(root *sim.System, maxDepth int) (*ValencyReport, error) {
	rep := &ValencyReport{}
	rootVal, err := cloneAnalyze(root, 0, maxDepth, rep)
	if err != nil {
		return nil, err
	}
	rep.Root = rootVal
	return rep, nil
}

func cloneAnalyze(s *sim.System, depth, maxDepth int, rep *ValencyReport) (Valence, error) {
	rep.Stats.Nodes++
	enabled := s.Enabled()
	if len(enabled) == 0 {
		rep.Stats.Leaves++
		return cloneTerminalValence(s, rep), nil
	}
	if depth >= maxDepth {
		rep.Stats.Leaves++
		rep.Stats.Truncated = true
		return Valence{Decisions: map[int64]bool{}, Truncated: true}, nil
	}
	val := Valence{Decisions: map[int64]bool{}}
	allChildrenUnivalent := true
	for _, p := range enabled {
		cands, err := s.Candidates(p)
		if err != nil {
			return Valence{}, fmt.Errorf("explore: candidates for p%d: %w", p, err)
		}
		for branch := range cands {
			child := s.Clone()
			if err := child.Advance(p, branch); err != nil {
				return Valence{}, fmt.Errorf("explore: advance p%d: %w", p, err)
			}
			cv, err := cloneAnalyze(child, depth+1, maxDepth, rep)
			if err != nil {
				return Valence{}, err
			}
			for d := range cv.Decisions {
				val.Decisions[d] = true
			}
			val.Truncated = val.Truncated || cv.Truncated
			if cv.Multivalent() || cv.Truncated {
				allChildrenUnivalent = false
			}
		}
	}
	if val.Multivalent() {
		rep.Multivalent++
		if allChildrenUnivalent {
			crit, err := describeCritical(s, depth, val)
			if err != nil {
				return Valence{}, err
			}
			rep.Criticals = append(rep.Criticals, crit)
		}
	} else if !val.Truncated {
		rep.Univalent++
	}
	return val, nil
}

// cloneTerminalValence extracts the decision(s) of a completed run.
func cloneTerminalValence(s *sim.System, rep *ValencyReport) Valence {
	val := Valence{Decisions: map[int64]bool{}}
	for _, op := range s.History().Operations() {
		if !op.Pending() {
			val.Decisions[op.Resp] = true
		}
	}
	if len(val.Decisions) > 1 {
		rep.AgreementViolations++
		if rep.ViolationHistory == "" {
			rep.ViolationHistory = s.History().String()
		}
	}
	return val
}
