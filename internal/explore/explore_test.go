package explore

import (
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

var fetchinc = spec.MakeOp(spec.MethodFetchInc)

func mustSystem(t *testing.T, impl machine.Impl, workload [][]spec.Op, pol base.PolicyFor) *sim.System {
	t.Helper()
	s, err := sim.NewSystem(impl, workload, pol, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDFSCountsTinyTree(t *testing.T) {
	// CAS counter, 1 process, 1 op: read, cas, return — a single path.
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(1, 1, fetchinc), nil)
	st, err := DFS(root, 10, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Leaves != 1 {
		t.Fatalf("leaves = %d, want 1", st.Leaves)
	}
	if st.Nodes != 4 { // root + 3 steps
		t.Fatalf("nodes = %d, want 4", st.Nodes)
	}
	if st.Truncated {
		t.Fatal("tiny tree should not truncate")
	}
}

func TestDFSTruncation(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	st, err := DFS(root, 3, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Truncated {
		t.Fatal("depth 3 must truncate a 12-step tree")
	}
}

func TestDFSVisitorPrune(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 1, fetchinc), nil)
	full, err := DFS(root, 20, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := DFS(root, 20, Config{}, func(s *sim.System, depth int) (bool, error) {
		return depth < 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Nodes >= full.Nodes {
		t.Fatalf("pruned %d nodes, full %d", pruned.Nodes, full.Nodes)
	}
}

func TestCASCounterLinearizableEverywhere(t *testing.T) {
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	// Worst-case run length: 12 base steps plus 2 extra steps per failed
	// CAS, and each failure is charged to another process's success (at
	// most 4), so 22 covers every interleaving.
	ok, bad, st, err := LinearizableEverywhere(root, 22, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("CAS counter violated linearizability:\n%s", bad.History())
	}
	if st.Leaves == 0 || st.Truncated {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSloppyCounterViolationFoundExhaustively(t *testing.T) {
	root := mustSystem(t, counter.Sloppy{}, sim.UniformWorkload(2, 1, fetchinc), nil)
	ok, bad, _, err := LinearizableEverywhere(root, 10, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("exhaustive exploration missed the sloppy counter's duplicate-response interleaving")
	}
	if bad == nil {
		t.Fatal("no violating leaf returned")
	}
	// But every leaf is weakly consistent (the counter always counts its
	// own increments).
	wok, wbad, _, err := WeaklyConsistentEverywhere(root, 10, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !wok {
		t.Fatalf("sloppy counter violated weak consistency:\n%s", wbad.History())
	}
}

func TestEventualBaseBranching(t *testing.T) {
	// A passthrough register over an eventually linearizable base: the
	// exploration must branch over weakly consistent responses, so with
	// the Never policy more leaves exist than with Immediate.
	impl := passthrough.New("el-reg", spec.NewObject(spec.Register{}), true)
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodWrite, 1), spec.MakeOp(spec.MethodRead)},
		{spec.MakeOp1(spec.MethodWrite, 2), spec.MakeOp(spec.MethodRead)},
	}
	never := mustSystem(t, impl, w, base.SamePolicy(base.Never{}))
	atomicish := mustSystem(t, impl, w, base.SamePolicy(base.Immediate()))
	stNever, err := DFS(never, 10, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stAtomic, err := DFS(atomicish, 10, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stNever.Leaves <= stAtomic.Leaves {
		t.Fatalf("never-policy leaves %d should exceed immediate-policy leaves %d",
			stNever.Leaves, stAtomic.Leaves)
	}
}

func TestValencyBrokenRegisterConsensus(t *testing.T) {
	// Proposition 16's algorithm on ATOMIC registers is not a linearizable
	// consensus: exhaustive valency analysis finds runs whose completed
	// propose operations disagree. (Registers cannot solve consensus; the
	// paper's Proposition 15/Corollary 19 machinery rests on this.)
	impl := elconsensus.Impl{AtomicBases: true}
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodPropose, 10)},
		{spec.MakeOp1(spec.MethodPropose, 20)},
	}
	root := mustSystem(t, impl, w, nil)
	rep, err := Analyze(root, 16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Truncated {
		t.Fatalf("analysis truncated: %+v", rep.Stats)
	}
	if rep.AgreementViolations == 0 {
		t.Fatal("register consensus should violate agreement on some interleaving")
	}
	if !rep.Root.Multivalent() {
		t.Fatalf("root should be multivalent: %v", rep.Root.Values())
	}
}

func TestValencyStrongObjectPivot(t *testing.T) {
	// A consensus object as base: the protocol is correct, the root is
	// multivalent, and every critical configuration's pending actions are
	// on the same strong (consensus) object — the Proposition 15 case
	// analysis in the positive.
	impl := passthrough.New("cons", spec.NewObject(spec.Consensus{}), false)
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodPropose, 10)},
		{spec.MakeOp1(spec.MethodPropose, 20)},
	}
	root := mustSystem(t, impl, w, nil)
	rep, err := Analyze(root, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgreementViolations != 0 {
		t.Fatalf("base-consensus protocol violated agreement:\n%s", rep.ViolationHistory)
	}
	if !rep.Root.Multivalent() {
		t.Fatalf("root should be multivalent: %v", rep.Root.Values())
	}
	if len(rep.Criticals) == 0 {
		t.Fatal("no critical configuration found")
	}
	for _, crit := range rep.Criticals {
		if !crit.SameObject {
			t.Errorf("critical configuration at depth %d has pending actions on different objects: %+v",
				crit.Depth, crit.Pending)
		}
		for _, pa := range crit.Pending {
			if pa.BaseType != "consensus" {
				t.Errorf("critical pivot on %s, want consensus", pa.BaseType)
			}
			if pa.Eventually {
				t.Error("pivot must not be eventually linearizable")
			}
		}
	}
}

func TestValencyELConsensusDisagreesBeforeStabilization(t *testing.T) {
	// Proposition 16's implementation over eventually linearizable
	// registers that never stabilize within the horizon: weakly consistent
	// lies let two processes return different values — which is exactly
	// why it is only EVENTUALLY linearizable.
	impl := elconsensus.Impl{}
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodPropose, 10)},
		{spec.MakeOp1(spec.MethodPropose, 20)},
	}
	root := mustSystem(t, impl, w, base.SamePolicy(base.Never{}))
	rep, err := Analyze(root, 16, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AgreementViolations == 0 {
		t.Fatal("unstabilized EL consensus should disagree on some branch")
	}
}

func TestStableNodeCASCounterRootStable(t *testing.T) {
	// The CAS counter is linearizable, so the root itself is stable.
	root := mustSystem(t, counter.CAS{}, sim.UniformWorkload(2, 2, fetchinc), nil)
	res, err := FindStable(root, 4, 14, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth != 0 || res.T != 0 {
		t.Fatalf("root should be stable: depth %d t %d", res.Depth, res.T)
	}
}

func TestStableNodeWarmupCounter(t *testing.T) {
	// The warmup counter's root is NOT stable (warmup garbage ahead), but
	// a stable configuration exists once the shared count passes the
	// threshold — Claim 1 of Proposition 18, in the bounded world.
	impl := counter.Warmup{Threshold: 2}
	root := mustSystem(t, impl, sim.UniformWorkload(2, 2, fetchinc), nil)

	stable0, _, err := NodeStable(root, 14, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stable0 {
		t.Fatal("warmup counter root must not be stable")
	}

	res, err := FindStable(root, 8, 14, Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth == 0 {
		t.Fatal("stable node at root contradicts the check above")
	}
	// The stable configuration must have pushed the shared count past the
	// threshold or be positioned so no stale answer can follow.
	states := res.System.BaseStates()
	if v, ok := states["C"].(int64); ok && v < 2 && res.System.History().Len() < 2 {
		t.Fatalf("stable node with count %d and history %d looks premature", v, res.System.History().Len())
	}
}

func TestValenceValues(t *testing.T) {
	v := Valence{Decisions: map[int64]bool{3: true, 1: true, 2: true}}
	vals := v.Values()
	if len(vals) != 3 || vals[0] != 1 || vals[1] != 2 || vals[2] != 3 {
		t.Fatalf("Values = %v", vals)
	}
	if !v.Multivalent() {
		t.Error("three decisions should be multivalent")
	}
	uni := Valence{Decisions: map[int64]bool{7: true}}
	if uni.Multivalent() {
		t.Error("one decision should be univalent")
	}
}

func TestFindStableFailsWithinTinyBounds(t *testing.T) {
	// With a search horizon too small to reach stabilization, FindStable
	// must report failure rather than a bogus configuration.
	impl := counter.Warmup{Threshold: 50}
	root := mustSystem(t, impl, sim.UniformWorkload(2, 3, fetchinc), nil)
	if _, err := FindStable(root, 2, 10, Config{}, check.Options{}); err == nil {
		t.Fatal("expected failure for unreachable stabilization")
	}
}
