package explore

import (
	"fmt"
	"testing"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// The BenchmarkExploreUndo*/BenchmarkExploreClone* pairs compare the
// in-place advance/undo engine against the retained clone-per-edge
// reference on identical workloads. The valency pair is the E8 workload
// (Proposition 15's two-process consensus analysis); the leaves pair is an
// exhaustive CAS-counter enumeration.

func valencyRoot(b *testing.B, atomic bool) *sim.System {
	b.Helper()
	impl := elconsensus.Impl{AtomicBases: atomic}
	workload := [][]spec.Op{
		{spec.MakeOp1(spec.MethodPropose, 10)},
		{spec.MakeOp1(spec.MethodPropose, 20)},
	}
	var pol base.PolicyFor
	if !atomic {
		pol = base.SamePolicy(base.Never{})
	}
	root, err := sim.NewSystem(impl, workload, pol, check.Options{}, false)
	if err != nil {
		b.Fatal(err)
	}
	return root
}

// valencyDepth is deep enough (≥ 10) that the full E8 register-consensus
// tree fits under it without truncation.
const valencyDepth = 14

func BenchmarkExploreUndoValency(b *testing.B) {
	root := valencyRoot(b, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Analyze(root, valencyDepth, Config{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.AgreementViolations == 0 {
			b.Fatal("register consensus must violate agreement")
		}
	}
}

func BenchmarkExploreCloneValency(b *testing.B) {
	root := valencyRoot(b, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := CloneAnalyze(root, valencyDepth)
		if err != nil {
			b.Fatal(err)
		}
		if rep.AgreementViolations == 0 {
			b.Fatal("register consensus must violate agreement")
		}
	}
}

func BenchmarkExploreUndoValencyDedup(b *testing.B) {
	root := valencyRoot(b, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Analyze(root, valencyDepth, Config{Dedup: true})
		if err != nil {
			b.Fatal(err)
		}
		if rep.AgreementViolations == 0 {
			b.Fatal("register consensus must violate agreement")
		}
	}
}

// The EL variant branches over weakly consistent responses too — the
// workload of E8's "never stabilize" row.
func BenchmarkExploreUndoValencyEL(b *testing.B) {
	root := valencyRoot(b, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(root, 12, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExploreCloneValencyEL(b *testing.B) {
	root := valencyRoot(b, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := CloneAnalyze(root, 12); err != nil {
			b.Fatal(err)
		}
	}
}

func leavesRoot(b *testing.B) *sim.System {
	b.Helper()
	root, err := sim.NewSystem(counter.CAS{},
		sim.UniformWorkload(2, 2, spec.MakeOp(spec.MethodFetchInc)), nil, check.Options{}, false)
	if err != nil {
		b.Fatal(err)
	}
	return root
}

func BenchmarkExploreUndoLeaves(b *testing.B) {
	root := leavesRoot(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := Leaves(root, 12, Config{}, func(*sim.System) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if st.Leaves == 0 {
			b.Fatal("no leaves")
		}
	}
}

func BenchmarkExploreCloneLeaves(b *testing.B) {
	root := leavesRoot(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := CloneLeaves(root, 12, func(*sim.System) error { return nil })
		if err != nil {
			b.Fatal(err)
		}
		if st.Leaves == 0 {
			b.Fatal("no leaves")
		}
	}
}

// The BenchmarkExplorePar* benchmarks measure the frontier-split worker
// pool across worker counts on the two workloads the experiment suite
// cares most about: the E8 valency analysis and the E11 stable-search
// verification. workers=1 is the sequential reference path (it must stay
// within noise of BenchmarkExploreUndo*); the speedup at higher counts
// tracks the physical core count — on a single-core machine all counts
// time alike, by design.

var parBenchWorkers = []int{1, 2, 4, 8}

// BenchmarkExploreParValency runs the E8 valency workload (Proposition
// 15's register-consensus analysis) at increasing worker counts.
func BenchmarkExploreParValency(b *testing.B) {
	for _, w := range parBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			root := valencyRoot(b, true)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				rep, err := Analyze(root, valencyDepth, Config{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if rep.AgreementViolations == 0 {
					b.Fatal("register consensus must violate agreement")
				}
			}
		})
	}
}

// BenchmarkExploreParValencyEL is the EL-branching E8 variant (weakly
// consistent responses multiply the branching factor).
func BenchmarkExploreParValencyEL(b *testing.B) {
	for _, w := range parBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			root := valencyRoot(b, false)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Analyze(root, 12, Config{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExploreParLeaves enumerates the CAS-counter tree leaves at
// increasing worker counts.
func BenchmarkExploreParLeaves(b *testing.B) {
	for _, w := range parBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			root := leavesRoot(b)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st, err := Leaves(root, 12, Config{Workers: w}, func(*sim.System) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				if st.Leaves == 0 {
					b.Fatal("no leaves")
				}
			}
		})
	}
}

// BenchmarkExploreParStable runs the E11 stable search (warmup counter,
// Proposition 18's Claim 1) at increasing worker counts; the
// per-candidate stability verifications dominate and pipeline across the
// pool.
func BenchmarkExploreParStable(b *testing.B) {
	for _, w := range parBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			root, err := sim.NewSystem(counter.Warmup{Threshold: 2},
				sim.UniformWorkload(2, 4, spec.MakeOp(spec.MethodFetchInc)), nil, check.Options{}, false)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := FindStable(root, 8, 16, Config{Workers: w}, check.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if res.Depth == 0 {
					b.Fatal("warmup counter root must not be stable")
				}
			}
		})
	}
}

// BenchmarkExploreParLinEverywhere certifies the CAS counter linearizable
// on every interleaving — the leaf-checking workload with worker-side
// linearizability checks.
func BenchmarkExploreParLinEverywhere(b *testing.B) {
	for _, w := range parBenchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			root := leavesRoot(b)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ok, _, _, err := LinearizableEverywhere(root, 22, Config{Workers: w}, check.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("CAS counter must be linearizable")
				}
			}
		})
	}
}
