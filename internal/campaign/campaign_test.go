package campaign

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/elin-go/elin/internal/scenario"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden campaign file")

// goldenSpec is a small deterministic grid spanning all three engines:
// the canonical campaign encoding is pinned byte-for-byte. Any drift here
// is a Campaign schema change: bump Schema and regenerate with
// `go test ./internal/campaign -run Golden -update`.
func goldenSpec() *Spec {
	return &Spec{
		Schema: SpecSchema,
		Name:   "golden",
		Axes: Axes{
			Engine:   []string{"explore", "sim", "live"},
			Impl:     []string{"cas-counter", "warmup-counter:2"},
			Workload: []string{"uniform:inc"},
			Procs:    []int{2},
			Ops:      []int{1, 2},
			Seed:     []int64{1},
		},
		Exclude: []Match{{Engine: "live", Impl: "warmup-counter:2"}},
		Chooser: "stale",
		Budget:  &scenario.Budget{Depth: 12},
	}
}

func TestGoldenCampaign(t *testing.T) {
	camp, err := Run(goldenSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := camp.Canonical().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "campaign.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("campaign drift:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}

// TestRunDeterminism is the baseline-gate contract: the canonical report
// is byte-identical across reruns and worker counts, so an unchanged tree
// always passes its own baseline.
func TestRunDeterminism(t *testing.T) {
	encode := func(workers int) []byte {
		camp, err := Run(goldenSpec(), RunOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := camp.Canonical().EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	one := encode(1)
	for _, workers := range []int{2, 8} {
		if got := encode(workers); !bytes.Equal(one, got) {
			t.Fatalf("canonical report differs between 1 and %d workers", workers)
		}
	}
}

func TestRunStreamsAndAggregates(t *testing.T) {
	var streamed atomic.Int32
	camp, err := Run(goldenSpec(), RunOptions{
		Workers: 4,
		OnCell: func(done, total int, c Cell) {
			streamed.Add(1)
			if total != 10 || done < 1 || done > total {
				t.Errorf("stream callback done=%d total=%d", done, total)
			}
			if c.ID == "" || c.Verdict == "" {
				t.Errorf("streamed cell incomplete: %+v", c)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// 3 engines x 2 impls x 2 ops minus 2 excluded live cells.
	if camp.Totals.Cells != 10 || int(streamed.Load()) != 10 {
		t.Fatalf("cells=%d streamed=%d, want 10", camp.Totals.Cells, streamed.Load())
	}
	if camp.Totals.OK+camp.Totals.Violation != 10 || camp.Totals.Error != 0 {
		t.Fatalf("totals: %+v", camp.Totals)
	}
	// Cells are sorted by identity.
	for i := 1; i < len(camp.Cells); i++ {
		if camp.Cells[i-1].ID >= camp.Cells[i].ID {
			t.Fatalf("cells not sorted: %q >= %q", camp.Cells[i-1].ID, camp.Cells[i].ID)
		}
	}
	// Every cell carries a report and the shared timing record.
	for _, c := range camp.Cells {
		if c.Report == nil || c.Report.Schema != "elin/report/v1" {
			t.Errorf("cell %s has no report", c.ID)
		}
		if c.Timing == nil || c.Timing.ID != c.ID || c.Timing.GOMAXPROCS <= 0 || c.Timing.Workers != 1 {
			t.Errorf("cell %s timing: %+v", c.ID, c.Timing)
		}
	}
	// Rollups: the engine axis accounts for every cell.
	var engineCells int
	for _, row := range camp.Rollups["engine"] {
		engineCells += row.Cells
		if row.OK+row.Violation+row.Error != row.Cells {
			t.Errorf("rollup row inconsistent: %+v", row)
		}
	}
	if engineCells != 10 {
		t.Errorf("engine rollup covers %d cells", engineCells)
	}
	if camp.Rollups["engine"][1].Value != "live" || camp.Rollups["engine"][1].Cells != 2 {
		t.Errorf("engine rollup: %+v", camp.Rollups["engine"])
	}
	if camp.Timing == nil || camp.Timing.WallNS <= 0 || camp.Timing.MaxNS < camp.Timing.P50NS || camp.Timing.Workers != 4 {
		t.Errorf("timing summary: %+v", camp.Timing)
	}
}

// TestRunErrorCells pins that unresolvable coordinates become error cells
// with the registry's actionable message — the grid completes and the
// report names the broken coordinate.
func TestRunErrorCells(t *testing.T) {
	sp := &Spec{
		Schema: SpecSchema,
		Name:   "err",
		Axes: Axes{
			Engine: []string{"sim"},
			Impl:   []string{"cas-counter", "atomic-fi"}, // atomic-fi is live-only
			Procs:  []int{2},
			Ops:    []int{1},
		},
	}
	camp, err := Run(sp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Totals.Error != 1 || camp.Totals.OK != 1 {
		t.Fatalf("totals: %+v", camp.Totals)
	}
	var found bool
	for _, c := range camp.Cells {
		if c.Verdict == VerdictError {
			found = true
			if !strings.Contains(c.Error, "unknown implementation") || c.Report != nil {
				t.Errorf("error cell: %+v", c)
			}
			if c.Timing == nil {
				t.Errorf("error cell %s has no timing", c.ID)
			}
		}
	}
	if !found {
		t.Fatal("no error cell")
	}
	// The human summary names the broken coordinate and its rerun command:
	// the sweep exits non-zero on error cells, so the log must say why.
	var b strings.Builder
	if err := camp.RenderSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"unknown implementation", "impl=atomic-fi", "rerun: elin sim -impl atomic-fi"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary misses %q:\n%s", want, out)
		}
	}
}

func TestCanonicalStripsRunDependentFields(t *testing.T) {
	camp, err := Run(goldenSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	canon := camp.Canonical()
	if canon.Timing != nil || canon.Diff != nil {
		t.Errorf("canonical keeps timing/diff: %+v %+v", canon.Timing, canon.Diff)
	}
	for _, c := range canon.Cells {
		if c.Timing != nil {
			t.Errorf("canonical cell %s keeps timing", c.ID)
		}
		if c.Report != nil && c.Report.Perf != nil && c.Report.Perf.NS != 0 {
			t.Errorf("canonical cell %s keeps wall clock", c.ID)
		}
	}
	// The original is untouched.
	if camp.Timing == nil || camp.Cells[0].Timing == nil {
		t.Error("Canonical mutated the original campaign")
	}
}

func TestLoadCampaign(t *testing.T) {
	camp, err := Run(goldenSpec(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.json")
	var buf bytes.Buffer
	if err := camp.Canonical().EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o600); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Name != "golden" || len(loaded.Cells) != len(camp.Cells) {
		t.Errorf("loaded campaign: name=%q cells=%d", loaded.Name, len(loaded.Cells))
	}
	// A sweep spec is not a campaign report: the error must say so.
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(`{"schema": "elin/sweep/v1", "name": "x"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(specPath); err == nil || !strings.Contains(err.Error(), "sweep spec") {
		t.Errorf("spec-as-baseline error: %v", err)
	}
}
