package campaign

import (
	"strings"
	"testing"
)

func TestNetFaultsAxis(t *testing.T) {
	sp := &Spec{
		Schema: SpecSchema,
		Name:   "nf",
		Axes: Axes{
			Engine:    []string{"serve"},
			Impl:      []string{"atomic-fi"},
			NetFaults: []string{"none", "partition-heal", "drop:0@40"},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("net-faulted spec rejected: %v", err)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("expansion: %d cells, want 3", len(points))
	}
	// "none" is the zero coordinate; presets canonicalize to grammar.
	if points[0].NetFaults != "" || points[1].NetFaults != "partition:60+40" || points[2].NetFaults != "drop:0@40" {
		t.Errorf("net-faults coordinates = %q, %q, %q",
			points[0].NetFaults, points[1].NetFaults, points[2].NetFaults)
	}
	if s := sp.Scenario(points[1]); s.NetFaults != "partition:60+40" {
		t.Errorf("scenario net-faults = %q", s.NetFaults)
	}

	// Predicates match canonicalized, by preset name or grammar.
	sp.Exclude = []Match{{NetFaults: "partition-heal"}}
	points, err = sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("preset exclude left %d cells", len(points))
	}

	// Repeats across spellings and unknown values are rejected.
	sp.Exclude = nil
	sp.Axes.NetFaults = []string{"partition-heal", "partition:60+40"}
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Errorf("duplicate net-faults axis accepted: %v", err)
	}
	sp.Axes.NetFaults = []string{"sever:everything"}
	if err := sp.Validate(); err == nil {
		t.Error("unknown net-faults axis value accepted")
	}
}

func TestWALSyncAxis(t *testing.T) {
	sp := &Spec{
		Schema: SpecSchema,
		Name:   "ws",
		Axes: Axes{
			Engine:  []string{"serve"},
			Impl:    []string{"atomic-fi"},
			WALSync: []string{"none", "never", "interval:8", "always"},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("wal-sync spec rejected: %v", err)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("expansion: %d cells, want 4", len(points))
	}
	// "none" (no log) is the zero coordinate and stays distinct from
	// "never" (a log, unsynced).
	if points[0].WALSync != "" || points[1].WALSync != "never" ||
		points[2].WALSync != "interval:8" || points[3].WALSync != "always" {
		t.Errorf("wal-sync coordinates = %q, %q, %q, %q",
			points[0].WALSync, points[1].WALSync, points[2].WALSync, points[3].WALSync)
	}
	if s := sp.Scenario(points[0]); s.WALSync != "" || s.WAL != "" {
		t.Errorf("wal-sync=none cell still configures a log: %q %q", s.WAL, s.WALSync)
	}

	sp.Axes.WALSync = []string{"none", ""}
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Errorf("duplicate wal-sync axis (none vs empty) accepted: %v", err)
	}
	sp.Axes.WALSync = []string{"fsync-sometimes"}
	if err := sp.Validate(); err == nil {
		t.Error("unknown wal-sync axis value accepted")
	}
}

// A small serve grid actually runs: net-faulted and WAL-synced cells come
// back ok with clean exactly-once ledgers, cell identities carry the new
// coordinates, and the repro commands name `elin load -self`.
func TestServeSweepRuns(t *testing.T) {
	sp := &Spec{
		Schema: SpecSchema,
		Name:   "serve-smoke",
		Axes: Axes{
			Engine:    []string{"serve"},
			Impl:      []string{"atomic-fi"},
			NetFaults: []string{"none", "drop-one"},
			WALSync:   []string{"none", "interval:4"},
			Procs:     []int{3},
			Ops:       []int{60},
			Seed:      []int64{1},
		},
	}
	camp, err := Run(sp, RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Totals.Cells != 4 || camp.Totals.OK != 4 {
		t.Fatalf("totals = %+v, want 4 ok cells", camp.Totals)
	}
	var sawNet, sawWAL bool
	for i := range camp.Cells {
		cell := &camp.Cells[i]
		if strings.Contains(cell.ID, "netfaults=drop:0@40") {
			sawNet = true
			if cell.Report.Net == nil || cell.Report.Net.Lost != 0 || cell.Report.Net.Duplicated != 0 {
				t.Errorf("net-faulted cell ledger: %+v", cell.Report.Net)
			}
		}
		if strings.Contains(cell.ID, "walsync=interval:4") {
			sawWAL = true
		}
		if repro := cell.repro(sp); !strings.HasPrefix(repro, "elin load -self ") {
			t.Errorf("serve repro = %q", repro)
		}
	}
	if !sawNet || !sawWAL {
		t.Fatalf("cell identities missing coordinates (net=%v wal=%v):\n%s\n%s\n%s\n%s",
			sawNet, sawWAL, camp.Cells[0].ID, camp.Cells[1].ID, camp.Cells[2].ID, camp.Cells[3].ID)
	}
	// The wal-sync rollup distinguishes the logged and unlogged halves.
	rows := camp.Rollups["wal-sync"]
	if len(rows) != 2 {
		t.Fatalf("wal-sync rollup rows = %+v", rows)
	}
}
