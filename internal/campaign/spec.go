// Package campaign runs declarative sweep grids over scenarios: one Spec
// names axes (engine, implementation, workload, policy, procs, ops,
// tolerance, seed), expands their cartesian product minus exclusion
// predicates into Scenario cells, executes every cell on one shared
// bounded worker pool, and aggregates the outcomes into a stable
// schema-tagged Campaign report (elin/campaign/v1) a machine can diff:
// Compare classifies every cell against a baseline campaign as
// same/flip/new/missing (plus perf-regressed beyond a threshold) and Gate
// turns flips into a non-zero exit — the regression gate CI runs on.
//
// The paper's paradox is a statement about families of executions —
// eventual linearizability looks fine on any one run and only breaks when
// bases, process counts and schedules are swept — so the grid runner, not
// the single scenario, is the natural unit of reproduction.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/scenario"
	"github.com/elin-go/elin/internal/wal"
)

// SpecSchema is the sweep-spec JSON schema identifier.
const SpecSchema = "elin/sweep/v1"

// Axes are the sweep dimensions. Every non-empty axis contributes one
// cartesian factor; an empty axis contributes the single scenario default
// (engine "sim", impl "cas-counter", workload "default", policy
// "immediate", procs 2, ops 2, tolerance 0, seed 0).
type Axes struct {
	Engine   []string `json:"engine,omitempty"`
	Impl     []string `json:"impl,omitempty"`
	Workload []string `json:"workload,omitempty"`
	Policy   []string `json:"policy,omitempty"`
	// Faults sweeps fault-injection specs over live cells (presets or the
	// faults grammar; default "none"). Explore and sim engines reject
	// faulted scenarios, so grids mixing engines with a faults axis must
	// exclude the faulted non-live cells explicitly — the expansion never
	// drops them silently.
	Faults []string `json:"faults,omitempty"`
	// NetFaults sweeps network fault specs over serve cells (presets or
	// the net-faults grammar; default "none"). Every other engine rejects
	// them, under the same exclude-explicitly rule as Faults.
	NetFaults []string `json:"net-faults,omitempty"`
	// WALSync sweeps commit-log durability over live and serve cells:
	// "none" (no WAL at all — the default), or a durability policy
	// ("always", "never", "interval:N") under which each cell writes its
	// merged stream to a run-scoped temporary log. "none" and "never" are
	// distinct coordinates: "never" still pays the write path, just not
	// the fsyncs.
	WALSync []string `json:"wal-sync,omitempty"`
	// Monitor sweeps the online monitor implementation over live and serve
	// cells ("full" — the default, "sample:N", "shard:K", "shard:key",
	// "none"). The other engines reject non-default monitors, under the
	// same exclude-explicitly rule as Faults.
	Monitor   []string `json:"monitor,omitempty"`
	Procs     []int    `json:"procs,omitempty"`
	Ops       []int    `json:"ops,omitempty"`
	Tolerance []int    `json:"tolerance,omitempty"`
	Seed      []int64  `json:"seed,omitempty"`
}

// Match is an exclusion predicate over resolved grid coordinates: a cell
// is excluded when every set field matches (unset fields are wildcards).
// String fields compare against the resolved names that appear in cell
// identities ("sim", "default", "immediate" — not ""), so predicates and
// cell IDs share one vocabulary.
type Match struct {
	Engine    string `json:"engine,omitempty"`
	Impl      string `json:"impl,omitempty"`
	Workload  string `json:"workload,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Faults    string `json:"faults,omitempty"`
	NetFaults string `json:"net-faults,omitempty"`
	WALSync   string `json:"wal-sync,omitempty"`
	Monitor   string `json:"monitor,omitempty"`
	Procs     *int   `json:"procs,omitempty"`
	Ops       *int   `json:"ops,omitempty"`
	Tolerance *int   `json:"tolerance,omitempty"`
	Seed      *int64 `json:"seed,omitempty"`
}

// zero reports whether no field is set — a predicate that would exclude
// every cell, always a spec mistake.
func (m Match) zero() bool {
	return m.Engine == "" && m.Impl == "" && m.Workload == "" && m.Policy == "" &&
		m.Faults == "" && m.NetFaults == "" && m.WALSync == "" && m.Monitor == "" &&
		m.Procs == nil && m.Ops == nil && m.Tolerance == nil && m.Seed == nil
}

// matches reports whether the point satisfies every set field.
func (m Match) matches(p Point) bool {
	switch {
	case m.Engine != "" && m.Engine != p.Engine,
		m.Impl != "" && m.Impl != p.Impl,
		m.Workload != "" && m.Workload != p.Workload,
		m.Policy != "" && m.Policy != p.Policy,
		m.Faults != "" && resolvedFaults(m.Faults) != resolvedFaults(p.Faults),
		m.NetFaults != "" && resolvedNetFaults(m.NetFaults) != resolvedNetFaults(p.NetFaults),
		m.WALSync != "" && resolvedWALSync(m.WALSync) != resolvedWALSync(p.WALSync),
		m.Monitor != "" && resolvedMonitor(m.Monitor) != resolvedMonitor(p.Monitor),
		m.Procs != nil && *m.Procs != p.Procs,
		m.Ops != nil && *m.Ops != p.Ops,
		m.Tolerance != nil && *m.Tolerance != p.Tolerance,
		m.Seed != nil && *m.Seed != p.Seed:
		return false
	}
	return true
}

// Point is one fully resolved grid coordinate.
type Point struct {
	Engine    string
	Impl      string
	Workload  string
	Policy    string
	Faults    string
	NetFaults string
	WALSync   string
	Monitor   string
	Procs     int
	Ops       int
	Tolerance int
	Seed      int64
}

// Spec is one declarative sweep: the axes, the exclusions, and the
// spec-level knobs every cell shares (scheduler/chooser for sim cells,
// analysis for explore cells, monitor stride for live cells, the per-cell
// budget and per-cell exploration workers).
type Spec struct {
	// Schema must be SpecSchema.
	Schema string `json:"schema"`
	// Name labels the campaign in reports and diffs.
	Name string `json:"name"`
	// Axes are the sweep dimensions.
	Axes Axes `json:"axes"`
	// Exclude drops every cell matched by any predicate.
	Exclude []Match `json:"exclude,omitempty"`

	// Scheduler/Chooser name the sim-cell schedule and base-object
	// adversary (defaults "rr"/"true"); the other engines ignore them.
	Scheduler string `json:"scheduler,omitempty"`
	Chooser   string `json:"chooser,omitempty"`
	// Analysis selects the explore-cell analysis (default "lin").
	Analysis string `json:"analysis,omitempty"`
	// Stride is the live-cell monitor stride in events (0 = automatic).
	Stride int `json:"stride,omitempty"`
	// Budget bounds every cell (exploration depth, sim step cap).
	Budget *scenario.Budget `json:"budget,omitempty"`
	// Workers is the per-cell exploration worker count. It defaults to 1 —
	// across-cell concurrency comes from the campaign's shared pool, so
	// cells stay sequential inside and the pool saturates the cores.
	Workers int `json:"workers,omitempty"`
}

// analyses are the explore-cell analysis names a spec may select.
var analyses = map[string]bool{
	"":                       true,
	scenario.AnalysisLin:     true,
	scenario.AnalysisWeak:    true,
	scenario.AnalysisValency: true,
	scenario.AnalysisStable:  true,
}

// LoadSpec reads and validates a sweep spec file. Unknown JSON fields are
// rejected so a typo in a committed spec fails loudly instead of silently
// sweeping the wrong grid.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read spec: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var sp Spec
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("campaign: parse spec %s: %w", path, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: spec %s has trailing content after the spec object (bad merge?)", path)
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: spec %s: %w", path, err)
	}
	return &sp, nil
}

// Validate checks the schema tag and resolves every axis name that can be
// resolved without an engine in hand (engines, workload syntax, policies,
// the spec-level scheduler/chooser/analysis); implementation names are
// engine-dependent and resolve per cell at run time, surfacing as error
// cells. Resolution errors carry the registry's known-name lists.
func (sp *Spec) Validate() error {
	if sp.Schema != SpecSchema {
		return fmt.Errorf("schema %q, want %q", sp.Schema, SpecSchema)
	}
	if sp.Name == "" {
		return fmt.Errorf("missing name")
	}
	for _, e := range sp.Axes.Engine {
		if _, err := registry.Engine(e); err != nil {
			return err
		}
	}
	for _, w := range sp.Axes.Workload {
		if err := registry.ValidateWorkload(w); err != nil {
			return err
		}
	}
	for _, p := range sp.Axes.Policy {
		if _, err := registry.Policy(p); err != nil {
			return err
		}
	}
	for _, f := range sp.Axes.Faults {
		if err := registry.ValidateFaults(f); err != nil {
			return err
		}
	}
	for _, f := range sp.Axes.NetFaults {
		if err := registry.ValidateNetFaults(f); err != nil {
			return err
		}
	}
	for _, ws := range sp.Axes.WALSync {
		if err := validateWALSync(ws); err != nil {
			return err
		}
	}
	for _, m := range sp.Axes.Monitor {
		if err := registry.ValidateMonitor(m); err != nil {
			return err
		}
	}
	for _, n := range sp.Axes.Procs {
		if n <= 0 {
			return fmt.Errorf("procs axis value %d (want >= 1)", n)
		}
	}
	for _, n := range sp.Axes.Ops {
		if n <= 0 {
			return fmt.Errorf("ops axis value %d (want >= 1)", n)
		}
	}
	if _, err := registry.Scheduler(sp.Scheduler); err != nil {
		return err
	}
	if _, err := registry.Chooser(sp.Chooser); err != nil {
		return err
	}
	if !analyses[sp.Analysis] {
		return fmt.Errorf("unknown analysis %q (known: lin, stable, valency, weak)", sp.Analysis)
	}
	for i, m := range sp.Exclude {
		if m.zero() {
			return fmt.Errorf("exclude[%d] is empty and would drop every cell", i)
		}
	}
	if err := uniqueAxes(sp.Axes); err != nil {
		return err
	}
	return nil
}

// uniqueAxes rejects repeated axis values: they would expand into cells
// with identical identities, which baseline diffing cannot tell apart.
// String axes compare resolved — "" and "sim" (or "" and "cas-counter")
// name the same coordinate and count as a repeat.
func uniqueAxes(a Axes) error {
	dup := func(axis string, vals []string, resolve func(string) string) error {
		seen := map[string]bool{}
		for _, v := range vals {
			r := resolve(v)
			if seen[r] {
				return fmt.Errorf("axis %s repeats value %q", axis, r)
			}
			seen[r] = true
		}
		return nil
	}
	canonEngine := func(v string) string {
		if c, err := registry.Engine(v); err == nil {
			return c
		}
		return v
	}
	if err := dup("engine", a.Engine, canonEngine); err != nil {
		return err
	}
	if err := dup("impl", a.Impl, func(v string) string { return resolved(v, scenario.DefaultImpl) }); err != nil {
		return err
	}
	if err := dup("workload", a.Workload, func(v string) string { return resolved(v, scenario.DefaultWorkload) }); err != nil {
		return err
	}
	if err := dup("policy", a.Policy, func(v string) string { return resolved(v, scenario.DefaultPolicy) }); err != nil {
		return err
	}
	if err := dup("faults", a.Faults, resolvedFaults); err != nil {
		return err
	}
	if err := dup("net-faults", a.NetFaults, resolvedNetFaults); err != nil {
		return err
	}
	if err := dup("wal-sync", a.WALSync, resolvedWALSync); err != nil {
		return err
	}
	if err := dup("monitor", a.Monitor, resolvedMonitor); err != nil {
		return err
	}
	ints := func(axis string, vals []int) error {
		seen := map[int]bool{}
		for _, v := range vals {
			if seen[v] {
				return fmt.Errorf("axis %s repeats value %d", axis, v)
			}
			seen[v] = true
		}
		return nil
	}
	if err := ints("procs", a.Procs); err != nil {
		return err
	}
	if err := ints("ops", a.Ops); err != nil {
		return err
	}
	if err := ints("tolerance", a.Tolerance); err != nil {
		return err
	}
	seen := map[int64]bool{}
	for _, v := range a.Seed {
		if seen[v] {
			return fmt.Errorf("axis seed repeats value %d", v)
		}
		seen[v] = true
	}
	return nil
}

// Expand resolves the cartesian product of the axes minus the exclusions,
// in deterministic axis order (engine, impl, workload, policy, faults,
// net-faults, wal-sync, monitor, procs, ops, tolerance, seed). It errors when
// nothing survives — an all-excluded grid is always a spec mistake.
func (sp *Spec) Expand() ([]Point, error) {
	engines := sp.Axes.Engine
	if len(engines) == 0 {
		engines = []string{""}
	}
	impls := orList(sp.Axes.Impl, scenario.DefaultImpl)
	workloads := orList(sp.Axes.Workload, scenario.DefaultWorkload)
	policies := orList(sp.Axes.Policy, scenario.DefaultPolicy)
	faultSpecs := orList(sp.Axes.Faults, "none")
	netFaultSpecs := orList(sp.Axes.NetFaults, "none")
	walSyncs := orList(sp.Axes.WALSync, "none")
	monitors := orList(sp.Axes.Monitor, "full")
	procs := orInts(sp.Axes.Procs, scenario.DefaultProcs)
	ops := orInts(sp.Axes.Ops, scenario.DefaultOps)
	tols := sp.Axes.Tolerance
	if len(tols) == 0 {
		tols = []int{0}
	}
	seeds := sp.Axes.Seed
	if len(seeds) == 0 {
		seeds = []int64{0}
	}

	var points []Point
	hits := make([]int, len(sp.Exclude))
	for _, e := range engines {
		canon, err := registry.Engine(e)
		if err != nil {
			return nil, err
		}
		for _, impl := range impls {
			for _, w := range workloads {
				for _, pol := range policies {
					for _, f := range faultSpecs {
						for _, nf := range netFaultSpecs {
							for _, ws := range walSyncs {
								for _, mon := range monitors {
									for _, n := range procs {
										for _, k := range ops {
											for _, t := range tols {
												for _, s := range seeds {
													p := Point{
														Engine: canon, Impl: resolved(impl, scenario.DefaultImpl), Workload: resolved(w, scenario.DefaultWorkload),
														Policy:    resolved(pol, scenario.DefaultPolicy),
														Faults:    faultsOrEmpty(resolvedFaults(f)),
														NetFaults: faultsOrEmpty(resolvedNetFaults(nf)),
														WALSync:   faultsOrEmpty(resolvedWALSync(ws)),
														Monitor:   monitorOrEmpty(resolvedMonitor(mon)),
														Procs:     n, Ops: k, Tolerance: t, Seed: s,
													}
													if sp.excluded(p, hits) {
														continue
													}
													points = append(points, p)
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	// A predicate that matched nothing is a typo ("sloppy" for
	// "sloppy-counter"): the cells it meant to drop are silently running,
	// which in a baselined grid surfaces later as flaky canonical bytes.
	for i, n := range hits {
		if n == 0 {
			return nil, fmt.Errorf("campaign: spec %q exclude[%d] matches no cell (typo in a coordinate value?)", sp.Name, i)
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("campaign: spec %q expands to zero cells after exclusions", sp.Name)
	}
	return points, nil
}

// excluded tests every predicate (not first-match), crediting each one
// that fires so Expand can report predicates that never do.
func (sp *Spec) excluded(p Point, hits []int) bool {
	drop := false
	for i, m := range sp.Exclude {
		if m.matches(p) {
			hits[i]++
			drop = true
		}
	}
	return drop
}

// Scenario builds the point's scenario with the spec-level knobs applied.
func (sp *Spec) Scenario(p Point) scenario.Scenario {
	s := scenario.Scenario{
		Impl:      p.Impl,
		Workload:  p.Workload,
		Policy:    p.Policy,
		Faults:    p.Faults,
		NetFaults: p.NetFaults,
		WALSync:   p.WALSync,
		Monitor:   p.Monitor,
		Procs:     p.Procs,
		Ops:       p.Ops,
		Tolerance: p.Tolerance,
		Seed:      p.Seed,
		Scheduler: sp.Scheduler,
		Chooser:   sp.Chooser,
		Analysis:  sp.Analysis,
		Stride:    sp.Stride,
		Workers:   sp.cellWorkers(),
	}
	if sp.Budget != nil {
		s.Budget = *sp.Budget
	}
	return s
}

// cellWorkers is the per-cell exploration worker count (default 1: the
// shared pool supplies the parallelism).
func (sp *Spec) cellWorkers() int {
	if sp.Workers == 0 {
		return 1
	}
	return sp.Workers
}

// orList substitutes the scenario default for an empty string axis.
func orList(vals []string, def string) []string {
	if len(vals) == 0 {
		return []string{def}
	}
	return vals
}

func orInts(vals []int, def int) []int {
	if len(vals) == 0 {
		return []int{def}
	}
	return vals
}

// resolved maps an explicitly empty axis value to its resolved name, so
// exclusion predicates and rollups share the cell-identity vocabulary.
func resolved(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// resolvedFaults canonicalizes a faults axis value: "", "none", presets
// and reordered grammar spellings of one spec all resolve to the same
// coordinate name ("none" when nothing is injected). Unresolvable values
// keep their spelling; Validate has already rejected them.
func resolvedFaults(v string) string {
	sp, err := registry.Faults(v)
	if err != nil {
		return v
	}
	return sp.String()
}

// faultsOrEmpty maps the "none" coordinate to the zero value, so
// unfaulted points — and the scenarios and repro commands built from
// them — are byte-identical with and without a faults axis in the spec.
func faultsOrEmpty(v string) string {
	if v == "none" {
		return ""
	}
	return v
}

// resolvedNetFaults canonicalizes a net-faults axis value, mirroring
// resolvedFaults: "", "none", presets and reordered grammar spellings of
// one spec all resolve to the same coordinate name.
func resolvedNetFaults(v string) string {
	sp, err := registry.NetFaults(v)
	if err != nil {
		return v
	}
	return sp.String()
}

// resolvedWALSync canonicalizes a wal-sync axis value. "" and "none" name
// the no-WAL coordinate; everything else resolves through the durability
// policy parser, so "interval:1" and "always" stay the distinct names the
// parser gives them. "none" (no log) and "never" (a log that is never
// fsynced) are deliberately different coordinates.
func resolvedWALSync(v string) string {
	if v == "" || v == "none" {
		return "none"
	}
	pol, err := wal.ParseSyncPolicy(v)
	if err != nil {
		return v
	}
	return pol.String()
}

// resolvedMonitor canonicalizes a monitor axis value: "" and "full" name
// the default sequential exhaustive monitor; the other forms resolve to
// the parser's canonical spelling. Unresolvable values keep their
// spelling; Validate has already rejected them.
func resolvedMonitor(v string) string {
	ms, err := registry.MonitorSpec(v)
	if err != nil {
		return v
	}
	return ms.String()
}

// monitorOrEmpty maps the "full" coordinate to the zero value, so
// default-monitor points — and the scenarios and repro commands built from
// them — are byte-identical with and without a monitor axis in the spec.
func monitorOrEmpty(v string) string {
	if v == "full" {
		return ""
	}
	return v
}

// validateWALSync rejects unknown wal-sync axis values at spec load.
func validateWALSync(v string) error {
	if v == "" || v == "none" {
		return nil
	}
	if _, err := wal.ParseSyncPolicy(v); err != nil {
		return fmt.Errorf("wal-sync axis value %q (want none, always, never or interval:N): %w", v, err)
	}
	return nil
}
