package campaign

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/elin-go/elin/internal/scenario"
)

// RunOptions tunes sweep execution.
type RunOptions struct {
	// Workers is the shared pool size — how many cells execute
	// concurrently (0 = GOMAXPROCS). One pool spans the whole grid: cells
	// stream through it as workers free up, with no barrier between axis
	// values.
	Workers int
	// OnCell, when set, streams each finished cell (done is the completed
	// count so far, total the grid size). Calls are serialized; completion
	// order is nondeterministic.
	OnCell func(done, total int, c Cell)
}

// Run validates and expands the spec, executes every cell on one shared
// bounded worker pool, and aggregates the campaign report. Cell outcomes
// are deterministic functions of the cell scenario (concurrency only
// reorders completion), and Cells are sorted by identity, so a
// deterministic grid yields a byte-identical canonical report for any
// worker count.
func Run(sp *Spec, opts RunOptions) (*Campaign, error) {
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: spec %q: %w", sp.Name, err)
	}
	points, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(points) {
		workers = len(points)
	}

	cells := make([]Cell, len(points))
	next := make(chan int)
	var (
		wg     sync.WaitGroup
		mu     sync.Mutex
		done   int
		gomax  = runtime.GOMAXPROCS(0)
		cellWk = sp.cellWorkers()
	)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				cells[i] = runCell(sp, points[i], cellWk, gomax)
				mu.Lock()
				done++
				if opts.OnCell != nil {
					opts.OnCell(done, len(points), cells[i])
				}
				mu.Unlock()
			}
		}()
	}
	for i := range points {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(start)

	sort.Slice(cells, func(i, j int) bool { return cells[i].ID < cells[j].ID })
	camp := &Campaign{Schema: Schema, Name: sp.Name, Spec: sp, Cells: cells}
	camp.aggregate()
	camp.Timing = timingSummary(cells, wall, workers)
	return camp, nil
}

// runCell executes one grid point. Scenario errors (unresolvable names,
// impossible monitor configurations) become error cells, not run
// failures: the grid completes and the report says exactly which
// coordinates broke. A wal-sync coordinate gives the cell a run-scoped
// temporary commit log — the durability policy is the coordinate, the
// path is noise and never enters a report.
func runCell(sp *Spec, p Point, cellWorkers, gomax int) Cell {
	s := sp.Scenario(p)
	cell := Cell{ID: s.CellID(p.Engine), point: p}
	if s.WALSync != "" {
		tmp, err := os.CreateTemp("", "elin-cell-*.wal")
		if err != nil {
			cell.Verdict = VerdictError
			cell.Error = fmt.Sprintf("campaign: wal-sync cell temp log: %v", err)
			return cell
		}
		tmp.Close()
		s.WAL = tmp.Name()
		defer os.Remove(tmp.Name())
	}
	start := time.Now()
	rep, err := scenario.Run(p.Engine, s)
	elapsed := time.Since(start)
	cell.Timing = &scenario.Timing{
		ID:         cell.ID,
		NS:         elapsed.Nanoseconds(),
		Workers:    cellWorkers,
		GOMAXPROCS: gomax,
	}
	if err != nil {
		cell.Verdict = VerdictError
		cell.Error = err.Error()
		return cell
	}
	cell.Verdict = rep.Verdict
	cell.Detail = rep.Detail
	cell.Report = rep
	return cell
}
