package campaign

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/scenario"
)

// mkCampaign builds a campaign from (id, verdict, ns) triples; ns 0 means
// no timing record (the canonical-baseline shape).
func mkCampaign(name string, cells ...Cell) *Campaign {
	c := &Campaign{Schema: Schema, Name: name, Cells: cells}
	return c
}

func cell(id, verdict string, ns int64) Cell {
	c := Cell{ID: id, Verdict: verdict}
	if ns > 0 {
		c.Timing = &scenario.Timing{ID: id, NS: ns}
	}
	return c
}

func TestCompareClasses(t *testing.T) {
	base := mkCampaign("base",
		cell("a", "ok", 0),
		cell("b", "ok", 0),
		cell("c", "violation", 0),
		cell("gone", "ok", 0),
	)
	cur := mkCampaign("cur",
		cell("a", "ok", 0),
		cell("b", "violation", 0), // flip
		cell("c", "violation", 0),
		cell("fresh", "ok", 0), // new
	)
	d := Compare(base, cur, 0.2)
	if d.Same != 2 {
		t.Errorf("same = %d, want 2", d.Same)
	}
	if len(d.Flips) != 1 || d.Flips[0].ID != "b" || d.Flips[0].Old != "ok" || d.Flips[0].New != "violation" {
		t.Errorf("flips: %+v", d.Flips)
	}
	if len(d.New) != 1 || d.New[0].ID != "fresh" || d.New[0].Class != ClassNew {
		t.Errorf("new: %+v", d.New)
	}
	if len(d.Missing) != 1 || d.Missing[0].ID != "gone" || d.Missing[0].Old != "ok" {
		t.Errorf("missing: %+v", d.Missing)
	}
	if len(d.Perf) != 0 {
		t.Errorf("perf without timings: %+v", d.Perf)
	}
	// New and missing cells do not fail the gate; flips do.
	err := d.Gate()
	if err == nil {
		t.Fatal("flip passed the gate")
	}
	for _, want := range []string{"1 verdict flip", `baseline "base"`, "flip b: ok -> violation"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q misses %q", err, want)
		}
	}
	// Grid growth/shrinkage alone passes.
	grown := Compare(mkCampaign("base", cell("a", "ok", 0)),
		mkCampaign("cur", cell("a", "ok", 0), cell("fresh", "ok", 0)), 0.2)
	if err := grown.Gate(); err != nil {
		t.Errorf("grid growth failed the gate: %v", err)
	}
}

// TestGatePerfRegression pins the perf leg of the gate: a cell slowing
// beyond the threshold fails with the factor and both wall clocks in the
// message; a slowdown inside the threshold, or a baseline without timing
// records (every committed canonical baseline), gates verdicts only.
func TestGatePerfRegression(t *testing.T) {
	base := mkCampaign("base", cell("a", "ok", 100_000_000), cell("b", "ok", 100_000_000))
	cur := mkCampaign("cur", cell("a", "ok", 130_000_000), cell("b", "ok", 105_000_000))
	d := Compare(base, cur, 0.20)
	if len(d.Perf) != 1 || d.Perf[0].ID != "a" || d.Perf[0].Class != ClassPerf {
		t.Fatalf("perf classification: %+v", d.Perf)
	}
	if f := d.Perf[0].Factor; f < 1.29 || f > 1.31 {
		t.Errorf("factor = %v", f)
	}
	err := d.Gate()
	if err == nil {
		t.Fatal("perf regression passed the gate")
	}
	for _, want := range []string{"1 perf regression", "1.30x slower", "100ms -> 130ms", "threshold 1.20x"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q misses %q", err, want)
		}
	}

	// Inside the threshold: clean gate.
	if err := Compare(base, mkCampaign("cur", cell("a", "ok", 115_000_000), cell("b", "ok", 100_000_000)), 0.20).Gate(); err != nil {
		t.Errorf("15%% slowdown failed a 20%% gate: %v", err)
	}
	// Canonical baseline (no timings): the same 30% slowdown cannot be
	// classified, so the gate stays verdict-only.
	if d := Compare(mkCampaign("base", cell("a", "ok", 0)), mkCampaign("cur", cell("a", "ok", 130_000_000)), 0.20); len(d.Perf) != 0 || d.Gate() != nil {
		t.Errorf("timing-less baseline classified perf: %+v", d.Perf)
	}
	// Threshold 0 disables perf gating outright.
	if d := Compare(base, cur, 0); len(d.Perf) != 0 {
		t.Errorf("threshold 0 classified perf: %+v", d.Perf)
	}
}

// TestGateJunkFlipEndToEnd injects a verdict flip through the real
// pipeline: a junk-fi cell that behaves at baseline time (its bug
// threshold is never reached) and misbehaves in the current sweep. The
// gate must fail with the cell identity and a rerun command.
func TestGateJunkFlipEndToEnd(t *testing.T) {
	grid := func(impl string) *Spec {
		return &Spec{
			Schema: SpecSchema,
			Name:   "junk",
			Axes: Axes{
				Engine: []string{"live"},
				Impl:   []string{impl},
				Procs:  []int{2},
				Ops:    []int{300},
				Seed:   []int64{1},
			},
			Stride: 64,
		}
	}
	healthy, err := Run(grid("junk-fi:100000"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Totals.OK != 1 {
		t.Fatalf("baseline junk cell not ok: %+v", healthy.Totals)
	}
	broken, err := Run(grid("junk-fi:40"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if broken.Totals.Violation != 1 {
		t.Fatalf("sick junk cell not caught: %+v", broken.Totals)
	}
	// The two grids differ in the impl coordinate, so align the identity
	// the way a behaviour change in one commit would: same cell, new
	// verdict.
	baseline := healthy.Canonical()
	baseline.Cells[0].ID = broken.Cells[0].ID
	d := Compare(baseline, broken, 0.2)
	err = d.Gate()
	if err == nil {
		t.Fatal("junk flip passed the gate")
	}
	// The rerun command carries the spec-level stride too: without it the
	// monitor windows — and therefore the violation — need not reproduce.
	for _, want := range []string{"verdict flip", "junk-fi:40", "ok -> violation",
		"rerun: elin stress -impl junk-fi:40", "-stride 64"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error %q misses %q", err, want)
		}
	}
}

// TestReproShapes pins the rerun commands: shell quoting of operands the
// shell would eat, and error cells (no report) rebuilt from their grid
// coordinate.
func TestReproShapes(t *testing.T) {
	sp := &Spec{
		Schema: SpecSchema,
		Name:   "r",
		Axes: Axes{
			Engine:   []string{"sim"},
			Impl:     []string{"el-register"},
			Workload: []string{"uniform:write(3)"},
			Procs:    []int{2},
			Ops:      []int{1},
		},
	}
	camp, err := Run(sp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	repro := camp.Cells[0].repro(sp)
	if !strings.Contains(repro, "-workload 'uniform:write(3)'") {
		t.Errorf("paren workload not shell-quoted: %q", repro)
	}

	// An error cell never produced a report; the rerun command comes from
	// the coordinate + spec instead.
	errCell := Cell{
		ID:      "x",
		Verdict: VerdictError,
		point:   Point{Engine: "sim", Impl: "nosuch", Workload: "default", Policy: "immediate", Procs: 2, Ops: 1, Seed: 3},
	}
	repro = errCell.repro(sp)
	for _, want := range []string{"elin sim", "-impl nosuch", "-seed 3", "-sched rr -chooser true"} {
		if !strings.Contains(repro, want) {
			t.Errorf("error-cell repro %q misses %q", repro, want)
		}
	}
	// Baseline-loaded cells (no report, no coordinate) yield none.
	if got := (&Cell{ID: "y", Verdict: "ok"}).repro(sp); got != "" {
		t.Errorf("baseline cell repro = %q", got)
	}

	// A parameterized impl keeps its :K in the rerun command even when the
	// report's scenario echo normalized the spelling away: the grid
	// coordinate, not the echo, names what the sweep selected.
	normalized := Cell{
		ID:      "z",
		Verdict: "ok",
		Report: &scenario.Report{
			Engine: "sim",
			Scenario: scenario.ScenarioInfo{Impl: "slog-batch", Workload: "default",
				Policy: "immediate", Procs: 2, Ops: 4, Seed: 1},
		},
		point: Point{Engine: "sim", Impl: "slog-batch:7", Workload: "default",
			Policy: "immediate", Procs: 2, Ops: 4, Seed: 1},
	}
	if repro := normalized.repro(sp); !strings.Contains(repro, "-impl slog-batch:7") {
		t.Errorf("parameterized repro dropped :K: %q", repro)
	}
}

func TestDiffRender(t *testing.T) {
	base := mkCampaign("base", cell("a", "ok", 0), cell("gone", "ok", 0))
	cur := mkCampaign("cur", cell("a", "violation", 0), cell("fresh", "ok", 0))
	d := Compare(base, cur, 0.2)
	var b strings.Builder
	if err := d.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"same=0 flips=1 new=1 missing=1", "flip a: ok -> violation", "new fresh: ok", "missing gone: was ok"} {
		if !strings.Contains(out, want) {
			t.Errorf("render misses %q:\n%s", want, out)
		}
	}
}
