package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"github.com/elin-go/elin/internal/scenario"
)

// Schema is the Campaign JSON schema identifier. Bump it on any
// backwards-incompatible change to the encoding; the golden test pins the
// current shape.
const Schema = "elin/campaign/v1"

// VerdictError marks a cell whose scenario failed to resolve or execute —
// distinct from a violation verdict, and a gate failure in its own right.
const VerdictError = "error"

// Cell is one executed grid point: identity, verdict, the cell's unified
// Report, and its timing record (the same encoder as the BENCH_*.json
// trajectory, so perf sections cannot drift between the two).
type Cell struct {
	// ID is the cell's canonical identity (scenario.CellID): what baseline
	// diffing matches on across runs and commits.
	ID string `json:"id"`
	// Verdict is the cell outcome: "ok", "violation", or "error".
	Verdict string `json:"verdict"`
	// Detail is the one-line summary of the verdict.
	Detail string `json:"detail,omitempty"`
	// Error carries the resolution/execution error of an error cell.
	Error string `json:"error,omitempty"`
	// Timing is the cell's wall-clock record; nil in canonical reports.
	Timing *scenario.Timing `json:"timing,omitempty"`
	// Report is the cell's unified engine report (schema elin/report/v1);
	// nil for error cells.
	Report *scenario.Report `json:"report,omitempty"`

	// point is the resolved grid coordinate; unexported (the ID is the
	// serialized identity), used for rollups and repro commands.
	point Point
}

// Totals counts cell outcomes.
type Totals struct {
	Cells     int `json:"cells"`
	OK        int `json:"ok"`
	Violation int `json:"violation"`
	Error     int `json:"error"`
}

// AxisCount is one rollup row: the outcome counts of every cell sharing
// one value on one axis.
type AxisCount struct {
	Value     string `json:"value"`
	Cells     int    `json:"cells"`
	OK        int    `json:"ok"`
	Violation int    `json:"violation"`
	Error     int    `json:"error"`
}

// TimingSummary aggregates the per-cell wall clocks. Canonical drops it
// entirely: every field is run-dependent.
type TimingSummary struct {
	// WallNS is the sweep's wall-clock time; TotalNS sums the cells (their
	// ratio is the realized parallelism).
	WallNS  int64 `json:"wall_ns"`
	TotalNS int64 `json:"total_ns"`
	// P50NS/P95NS/MaxNS are per-cell wall-clock percentiles.
	P50NS int64 `json:"p50_ns"`
	P95NS int64 `json:"p95_ns"`
	MaxNS int64 `json:"max_ns"`
	// Workers is the pool size the sweep ran with.
	Workers int `json:"workers"`
}

// Campaign is the aggregated outcome of one sweep: the spec echo, every
// cell in identity order, rollups by axis, and timing percentiles. Its
// JSON encoding is stable (schema-tagged and golden-tested).
type Campaign struct {
	Schema string `json:"schema"`
	Name   string `json:"name"`
	Spec   *Spec  `json:"spec"`
	Totals Totals `json:"totals"`
	// Rollups maps each axis name to its per-value outcome counts, values
	// sorted; axes the grid does not vary still appear with their single
	// value, so a rollup row exists for every coordinate of every cell.
	Rollups map[string][]AxisCount `json:"rollups"`
	Timing  *TimingSummary         `json:"timing,omitempty"`
	Cells   []Cell                 `json:"cells"`
	// Diff is the baseline comparison, when one ran. Canonical drops it: a
	// baseline file describes one campaign, not a comparison.
	Diff *Diff `json:"diff,omitempty"`
}

// Canonical returns a deep copy with every run-dependent part removed:
// the timing summary, the per-cell timing records, the diff section, and
// each cell report reduced to its canonical form (scenario.Report
// Canonical zeroes wall-clock perf fields). A deterministic sweep's
// canonical encoding is byte-identical across runs and machines — the
// form baselines are committed in.
func (c *Campaign) Canonical() *Campaign {
	cp := *c
	cp.Timing = nil
	cp.Diff = nil
	cp.Cells = make([]Cell, len(c.Cells))
	for i, cell := range c.Cells {
		cc := cell
		cc.Timing = nil
		if cell.Report != nil {
			cc.Report = cell.Report.Canonical()
		}
		cp.Cells[i] = cc
	}
	cp.Rollups = make(map[string][]AxisCount, len(c.Rollups))
	for axis, rows := range c.Rollups {
		cp.Rollups[axis] = append([]AxisCount(nil), rows...)
	}
	return &cp
}

// EncodeJSON writes the campaign's stable JSON encoding (indented,
// trailing newline). Map keys encode sorted, so the output is
// deterministic.
func (c *Campaign) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Load reads a campaign report file (full or canonical — a baseline).
func Load(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: read report: %w", err)
	}
	var c Campaign
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("campaign: parse report %s: %w", path, err)
	}
	if c.Schema != Schema {
		return nil, fmt.Errorf("campaign: report %s has schema %q, want %q (is this a sweep spec instead of a campaign report?)",
			path, c.Schema, Schema)
	}
	return &c, nil
}

// axisNames are the rollup axes, in presentation order.
var axisNames = []string{"engine", "impl", "workload", "policy", "faults", "net-faults", "wal-sync", "monitor", "procs", "ops", "tolerance", "seed"}

// AxisNames lists the sweepable axes of a spec — the vocabulary `elin
// list` prints.
func AxisNames() []string { return append([]string(nil), axisNames...) }

// coordinates projects a point onto the named axes as strings.
func (p Point) coordinates() map[string]string {
	return map[string]string{
		"engine":     p.Engine,
		"impl":       p.Impl,
		"workload":   p.Workload,
		"policy":     p.Policy,
		"faults":     resolvedFaults(p.Faults),
		"net-faults": resolvedNetFaults(p.NetFaults),
		"wal-sync":   resolvedWALSync(p.WALSync),
		"monitor":    resolvedMonitor(p.Monitor),
		"procs":      strconv.Itoa(p.Procs),
		"ops":        strconv.Itoa(p.Ops),
		"tolerance":  strconv.Itoa(p.Tolerance),
		"seed":       strconv.FormatInt(p.Seed, 10),
	}
}

// aggregate fills totals and rollups from the cells' points and verdicts.
func (c *Campaign) aggregate() {
	c.Totals = Totals{}
	rollups := map[string]map[string]*AxisCount{}
	for _, axis := range axisNames {
		rollups[axis] = map[string]*AxisCount{}
	}
	for _, cell := range c.Cells {
		c.Totals.Cells++
		switch cell.Verdict {
		case scenario.VerdictOK:
			c.Totals.OK++
		case scenario.VerdictViolation:
			c.Totals.Violation++
		default:
			c.Totals.Error++
		}
		for axis, value := range cell.point.coordinates() {
			row := rollups[axis][value]
			if row == nil {
				row = &AxisCount{Value: value}
				rollups[axis][value] = row
			}
			row.Cells++
			switch cell.Verdict {
			case scenario.VerdictOK:
				row.OK++
			case scenario.VerdictViolation:
				row.Violation++
			default:
				row.Error++
			}
		}
	}
	c.Rollups = make(map[string][]AxisCount, len(rollups))
	for axis, byValue := range rollups {
		rows := make([]AxisCount, 0, len(byValue))
		for _, row := range byValue {
			rows = append(rows, *row)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Value < rows[j].Value })
		c.Rollups[axis] = rows
	}
}

// timingSummary computes the percentile summary from the per-cell
// timings.
func timingSummary(cells []Cell, wall time.Duration, workers int) *TimingSummary {
	ns := make([]int64, 0, len(cells))
	var total int64
	for _, c := range cells {
		if c.Timing == nil {
			continue
		}
		ns = append(ns, c.Timing.NS)
		total += c.Timing.NS
	}
	if len(ns) == 0 {
		return nil
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	pct := func(p float64) int64 {
		i := int(p * float64(len(ns)-1))
		return ns[i]
	}
	return &TimingSummary{
		WallNS:  wall.Nanoseconds(),
		TotalNS: total,
		P50NS:   pct(0.50),
		P95NS:   pct(0.95),
		MaxNS:   ns[len(ns)-1],
		Workers: workers,
	}
}

// RenderSummary writes the human-readable campaign summary: the stable
// totals line, the engine rollup, every error cell's reason and rerun
// command (the sweep exits non-zero on them, so the log must say why),
// and the timing percentiles.
func (c *Campaign) RenderSummary(w io.Writer) error {
	fmt.Fprintf(w, "campaign %s: cells=%d ok=%d violation=%d error=%d\n",
		c.Name, c.Totals.Cells, c.Totals.OK, c.Totals.Violation, c.Totals.Error)
	for _, row := range c.Rollups["engine"] {
		fmt.Fprintf(w, "  %-8s cells=%d ok=%d violation=%d error=%d\n",
			row.Value, row.Cells, row.OK, row.Violation, row.Error)
	}
	for i := range c.Cells {
		cell := &c.Cells[i]
		if cell.Verdict != VerdictError {
			continue
		}
		fmt.Fprintf(w, "error %s: %s\n", cell.ID, cell.Error)
		if repro := cell.repro(c.Spec); repro != "" {
			fmt.Fprintf(w, "  rerun: %s\n", repro)
		}
	}
	if t := c.Timing; t != nil {
		fmt.Fprintf(w, "timing: wall=%v cells-total=%v p50=%v p95=%v max=%v workers=%d\n",
			time.Duration(t.WallNS).Round(time.Millisecond),
			time.Duration(t.TotalNS).Round(time.Millisecond),
			time.Duration(t.P50NS).Round(time.Microsecond),
			time.Duration(t.P95NS).Round(time.Microsecond),
			time.Duration(t.MaxNS).Round(time.Microsecond),
			t.Workers)
	}
	return nil
}
