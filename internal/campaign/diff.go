package campaign

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"github.com/elin-go/elin/internal/scenario"
)

// Cell diff classes.
const (
	// ClassSame: the cell exists in both campaigns with the same verdict.
	ClassSame = "same"
	// ClassFlip: the cell exists in both campaigns with different
	// verdicts — the regression the gate exists to catch.
	ClassFlip = "flip"
	// ClassNew: the cell exists only in the current campaign (the grid
	// grew).
	ClassNew = "new"
	// ClassMissing: the cell exists only in the baseline (the grid
	// shrank).
	ClassMissing = "missing"
	// ClassPerf: the cell kept its verdict but slowed beyond the
	// threshold.
	ClassPerf = "perf-regressed"
)

// CellDiff is one classified cell.
type CellDiff struct {
	ID    string `json:"id"`
	Class string `json:"class"`
	// Old/New are the baseline and current verdicts (flips; one side for
	// new/missing cells).
	Old string `json:"old,omitempty"`
	New string `json:"new,omitempty"`
	// Detail is the current cell's verdict detail.
	Detail string `json:"detail,omitempty"`
	// OldNS/NewNS/Factor quantify a perf regression (both campaigns must
	// carry timing records; canonical baselines carry none).
	OldNS  int64   `json:"old_ns,omitempty"`
	NewNS  int64   `json:"new_ns,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	// Repro is the single-cell CLI rerun command.
	Repro string `json:"repro,omitempty"`
}

// Diff is the classification of every cell of a current campaign against
// a baseline campaign.
type Diff struct {
	// Baseline names the baseline campaign.
	Baseline string `json:"baseline"`
	// PerfThreshold is the slowdown fraction beyond which a same-verdict
	// cell counts as perf-regressed (0 disables perf classification).
	PerfThreshold float64 `json:"perf_threshold,omitempty"`
	// Same counts identically-verdicted cells.
	Same int `json:"same"`
	// Flips/New/Missing/Perf list the non-same cells, sorted by identity.
	Flips   []CellDiff `json:"flips,omitempty"`
	New     []CellDiff `json:"new,omitempty"`
	Missing []CellDiff `json:"missing,omitempty"`
	Perf    []CellDiff `json:"perf_regressed,omitempty"`
}

// Compare classifies every cell of current against baseline. Identity is
// the cell ID; verdict changes are flips, grid growth is new, grid
// shrinkage is missing. Cells with equal verdicts whose wall clock grew
// beyond threshold (a fraction: 0.20 = 20% slower) are additionally
// classified perf-regressed when both sides carry timing records —
// canonical baselines carry none, so committed baselines gate verdicts
// only and perf gating stays opt-in via archived full reports.
func Compare(baseline, current *Campaign, threshold float64) *Diff {
	d := &Diff{Baseline: baseline.Name, PerfThreshold: threshold}
	base := make(map[string]*Cell, len(baseline.Cells))
	for i := range baseline.Cells {
		base[baseline.Cells[i].ID] = &baseline.Cells[i]
	}
	seen := make(map[string]bool, len(current.Cells))
	for i := range current.Cells {
		cur := &current.Cells[i]
		seen[cur.ID] = true
		old, ok := base[cur.ID]
		if !ok {
			d.New = append(d.New, CellDiff{
				ID: cur.ID, Class: ClassNew, New: cur.Verdict, Detail: cur.Detail, Repro: cur.repro(current.Spec),
			})
			continue
		}
		if old.Verdict != cur.Verdict {
			detail := cur.Detail
			if cur.Verdict == VerdictError {
				detail = cur.Error
			}
			d.Flips = append(d.Flips, CellDiff{
				ID: cur.ID, Class: ClassFlip, Old: old.Verdict, New: cur.Verdict,
				Detail: detail, Repro: cur.repro(current.Spec),
			})
			continue
		}
		d.Same++
		if threshold > 0 && old.Timing != nil && cur.Timing != nil && old.Timing.NS > 0 && cur.Timing.NS > 0 {
			factor := float64(cur.Timing.NS) / float64(old.Timing.NS)
			if factor > 1+threshold {
				d.Perf = append(d.Perf, CellDiff{
					ID: cur.ID, Class: ClassPerf, OldNS: old.Timing.NS, NewNS: cur.Timing.NS,
					Factor: factor, Repro: cur.repro(current.Spec),
				})
			}
		}
	}
	for id, old := range base {
		if !seen[id] {
			d.Missing = append(d.Missing, CellDiff{ID: id, Class: ClassMissing, Old: old.Verdict})
		}
	}
	for _, list := range [][]CellDiff{d.Flips, d.New, d.Missing, d.Perf} {
		sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	}
	return d
}

// Gate returns a non-nil error when the diff must fail CI: any verdict
// flip, or any perf regression beyond the threshold. The error names the
// first offending cells and their rerun commands, so the failure is
// actionable from the log alone.
func (d *Diff) Gate() error {
	if len(d.Flips) == 0 && len(d.Perf) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "campaign gate failed vs baseline %q: %d verdict flip(s), %d perf regression(s) beyond %.0f%%",
		d.Baseline, len(d.Flips), len(d.Perf), d.PerfThreshold*100)
	for _, f := range clip(d.Flips, 5) {
		fmt.Fprintf(&b, "\n  flip %s: %s -> %s", f.ID, f.Old, f.New)
		if f.Detail != "" {
			fmt.Fprintf(&b, " (%s)", f.Detail)
		}
		if f.Repro != "" {
			fmt.Fprintf(&b, "\n    rerun: %s", f.Repro)
		}
	}
	for _, p := range clip(d.Perf, 5) {
		fmt.Fprintf(&b, "\n  perf %s: %.2fx slower (%v -> %v, threshold %.2fx)",
			p.ID, p.Factor,
			time.Duration(p.OldNS).Round(time.Microsecond),
			time.Duration(p.NewNS).Round(time.Microsecond),
			1+d.PerfThreshold)
		if p.Repro != "" {
			fmt.Fprintf(&b, "\n    rerun: %s", p.Repro)
		}
	}
	if len(d.Flips) > 5 || len(d.Perf) > 5 {
		fmt.Fprintf(&b, "\n  ... (full classification in the campaign report's diff section)")
	}
	return fmt.Errorf("%s", b.String())
}

// Render writes the human-readable diff summary.
func (d *Diff) Render(w io.Writer) error {
	fmt.Fprintf(w, "baseline %s: same=%d flips=%d new=%d missing=%d perf-regressed=%d\n",
		d.Baseline, d.Same, len(d.Flips), len(d.New), len(d.Missing), len(d.Perf))
	for _, f := range d.Flips {
		fmt.Fprintf(w, "  flip %s: %s -> %s\n", f.ID, f.Old, f.New)
	}
	for _, n := range d.New {
		fmt.Fprintf(w, "  new %s: %s\n", n.ID, n.New)
	}
	for _, m := range d.Missing {
		fmt.Fprintf(w, "  missing %s: was %s\n", m.ID, m.Old)
	}
	for _, p := range d.Perf {
		fmt.Fprintf(w, "  perf %s: %.2fx slower\n", p.ID, p.Factor)
	}
	return nil
}

func clip(list []CellDiff, n int) []CellDiff {
	if len(list) > n {
		return list[:n]
	}
	return list
}

// repro builds the cell's single-run CLI command from its report's
// resolved scenario echo — or, for error cells that never produced a
// report, from the grid coordinate and spec — plus the spec-level knobs
// the echo does not carry (the monitor/trend stride), so rerunning it
// reproduces the cell exactly.
func (c *Cell) repro(sp *Spec) string {
	var engine string
	var inf scenario.ScenarioInfo
	switch {
	case c.Report != nil:
		engine, inf = c.Report.Engine, c.Report.Scenario
		if c.point.Impl != "" {
			// The echo names the resolved object, which for parameterized
			// impls can normalize away the grid's spelling (a default-batch
			// "slog-batch" echoes without its :K); the rerun must use the
			// coordinate the sweep actually selected.
			inf.Impl = c.point.Impl
		}
	case sp != nil && c.point != (Point{}):
		engine = c.point.Engine
		inf = sp.Scenario(c.point).Info(engine)
	default:
		// A baseline-loaded cell: the coordinate never made it off disk.
		return ""
	}
	sub := engine
	switch sub {
	case "live":
		sub = "stress"
	case "serve":
		// A serve cell reruns as a self-contained load run: `elin load
		// -self` stands the server up in-process exactly like the engine.
		sub = "load -self"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "elin %s -impl %s -workload %s -policy %s -procs %d -ops %d -seed %d -tolerance %d",
		sub, shellArg(inf.Impl), shellArg(inf.Workload), shellArg(inf.Policy),
		inf.Procs, inf.Ops, inf.Seed, inf.Tolerance)
	switch engine {
	case "explore":
		fmt.Fprintf(&b, " -mode %s -depth %d", inf.Analysis, inf.Depth)
		if inf.VerifyDepth > 0 {
			fmt.Fprintf(&b, " -verify-depth %d", inf.VerifyDepth)
		}
	case "sim":
		fmt.Fprintf(&b, " -sched %s -chooser %s", shellArg(inf.Scheduler), shellArg(inf.Chooser))
		if inf.MaxSteps > 0 {
			fmt.Fprintf(&b, " -max-steps %d", inf.MaxSteps)
		}
		if sp != nil && sp.Stride > 0 {
			fmt.Fprintf(&b, " -stride %d", sp.Stride)
		}
	case "live":
		if inf.Faults != "" {
			fmt.Fprintf(&b, " -faults %s", shellArg(inf.Faults))
		}
		if inf.Serial {
			fmt.Fprint(&b, " -serial")
		}
		if inf.Monitor != "" {
			fmt.Fprintf(&b, " -monitor %s", shellArg(inf.Monitor))
		}
		if sp != nil && sp.Stride > 0 {
			fmt.Fprintf(&b, " -stride %d", sp.Stride)
		}
	case "serve":
		if inf.NetFaults != "" {
			fmt.Fprintf(&b, " -net-faults %s", shellArg(inf.NetFaults))
		}
		if inf.Monitor != "" {
			fmt.Fprintf(&b, " -monitor %s", shellArg(inf.Monitor))
		}
		if sp != nil && sp.Stride > 0 {
			fmt.Fprintf(&b, " -stride %d", sp.Stride)
		}
	}
	if inf.WALSync != "" {
		// The cell wrote a run-scoped temp log; the rerun gets its own.
		fmt.Fprintf(&b, " -wal /tmp/elin-rerun.wal -wal-sync %s", shellArg(inf.WALSync))
	}
	return b.String()
}

// shellArg single-quotes an operand the shell would otherwise interpret
// ("uniform:write(3)"), so the printed rerun command pastes cleanly.
func shellArg(s string) string {
	plain := strings.IndexFunc(s, func(r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return false
		case r == ':' || r == '-' || r == '_' || r == '.' || r == ',':
			return false
		}
		return true
	}) < 0
	if plain && s != "" {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", `'\''`) + "'"
}
