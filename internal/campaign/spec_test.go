package campaign

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/scenario"
)

func validSpec() *Spec {
	return &Spec{
		Schema: SpecSchema,
		Name:   "t",
		Axes: Axes{
			Engine: []string{"explore", "sim"},
			Impl:   []string{"cas-counter", "sloppy-counter"},
			Procs:  []int{2},
			Ops:    []int{1, 2},
			Seed:   []int64{1},
		},
	}
}

func TestSpecValidate(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"bad schema", func(s *Spec) { s.Schema = "elin/sweep/v9" }, "schema"},
		{"missing name", func(s *Spec) { s.Name = "" }, "name"},
		{"unknown engine", func(s *Spec) { s.Axes.Engine = []string{"nosuch"} }, "explore"},
		{"unknown workload", func(s *Spec) { s.Axes.Workload = []string{"nosuch"} }, "uniform"},
		{"unknown policy", func(s *Spec) { s.Axes.Policy = []string{"nosuch"} }, "immediate"},
		{"unknown scheduler", func(s *Spec) { s.Scheduler = "nosuch" }, "rr"},
		{"unknown chooser", func(s *Spec) { s.Chooser = "nosuch" }, "stale"},
		{"unknown analysis", func(s *Spec) { s.Analysis = "nosuch" }, "valency"},
		{"zero procs", func(s *Spec) { s.Axes.Procs = []int{0} }, "procs"},
		{"zero ops", func(s *Spec) { s.Axes.Ops = []int{2, 0} }, "ops"},
		{"empty exclude", func(s *Spec) { s.Exclude = []Match{{}} }, "every cell"},
		{"dup string axis", func(s *Spec) { s.Axes.Impl = []string{"cas-counter", "cas-counter"} }, "repeats"},
		{"dup int axis", func(s *Spec) { s.Axes.Ops = []int{1, 1} }, "repeats"},
		{"dup seed axis", func(s *Spec) { s.Axes.Seed = []int64{3, 3} }, "repeats"},
		// "" resolves to the axis default, so spelling both is a repeat:
		// they would expand into byte-identical cell identities.
		{"dup resolved impl", func(s *Spec) { s.Axes.Impl = []string{"", "cas-counter"} }, "repeats"},
		{"dup resolved engine", func(s *Spec) { s.Axes.Engine = []string{"", "sim"} }, "repeats"},
		{"dup resolved workload", func(s *Spec) { s.Axes.Workload = []string{"default", ""} }, "repeats"},
		{"dup resolved policy", func(s *Spec) { s.Axes.Policy = []string{"immediate", ""} }, "repeats"},
	}
	for _, tc := range cases {
		sp := validSpec()
		tc.mut(sp)
		err := sp.Validate()
		if err == nil {
			t.Errorf("%s accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestExpandDefaultsAndOrder(t *testing.T) {
	// An all-empty grid is the single default cell on the default engine.
	sp := &Spec{Schema: SpecSchema, Name: "d"}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("default expansion: %d cells", len(points))
	}
	want := Point{Engine: "sim", Impl: "cas-counter", Workload: "default", Policy: "immediate", Procs: 2, Ops: 2}
	if points[0] != want {
		t.Errorf("default point = %+v, want %+v", points[0], want)
	}

	// Axis order is deterministic: engine outermost, seed innermost.
	sp = validSpec()
	points, err = sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("expansion: %d cells, want 8", len(points))
	}
	if points[0].Engine != "explore" || points[0].Impl != "cas-counter" || points[0].Ops != 1 {
		t.Errorf("first point: %+v", points[0])
	}
	if points[1].Ops != 2 {
		t.Errorf("ops is not the faster-varying axis: %+v", points[1])
	}
	if points[4].Engine != "sim" {
		t.Errorf("engine is not the slowest-varying axis: %+v", points[4])
	}
}

func TestExpandExcludes(t *testing.T) {
	two := 2
	sp := validSpec()
	sp.Exclude = []Match{
		{Engine: "sim", Impl: "sloppy-counter"},
		{Procs: &two, Ops: &two, Engine: "explore"},
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// 8 cells minus 2 (sim x sloppy x 2 ops) minus 2 (explore x ops=2 x 2 impls).
	if len(points) != 4 {
		t.Fatalf("got %d cells: %+v", len(points), points)
	}
	for _, p := range points {
		if p.Engine == "sim" && p.Impl == "sloppy-counter" {
			t.Errorf("excluded cell survived: %+v", p)
		}
		if p.Engine == "explore" && p.Ops == 2 {
			t.Errorf("excluded cell survived: %+v", p)
		}
	}

	// Excluding everything is a spec error.
	sp.Exclude = []Match{{Impl: "cas-counter"}, {Impl: "sloppy-counter"}}
	if _, err := sp.Expand(); err == nil || !strings.Contains(err.Error(), "zero cells") {
		t.Errorf("all-excluded expansion: %v", err)
	}

	// A predicate that matches nothing is a typo ("sloppy" for
	// "sloppy-counter") and must fail loudly: its cells would silently run.
	sp = validSpec()
	sp.Exclude = []Match{{Engine: "sim", Impl: "sloppy"}}
	if _, err := sp.Expand(); err == nil || !strings.Contains(err.Error(), "matches no cell") {
		t.Errorf("dead exclude accepted: %v", err)
	}
	// Overlapping predicates both count as live when both fire.
	sp = validSpec()
	sp.Exclude = []Match{{Impl: "sloppy-counter"}, {Engine: "sim", Impl: "sloppy-counter"}}
	if _, err := sp.Expand(); err != nil {
		t.Errorf("overlapping excludes rejected: %v", err)
	}
}

func TestSpecScenario(t *testing.T) {
	sp := validSpec()
	sp.Scheduler = "random"
	sp.Chooser = "stale"
	sp.Analysis = scenario.AnalysisValency
	sp.Stride = 64
	sp.Budget = &scenario.Budget{Depth: 9, MaxSteps: 100}
	p := Point{Engine: "sim", Impl: "warmup-counter:2", Workload: "uniform:inc", Policy: "window:2",
		Procs: 3, Ops: 4, Tolerance: -1, Seed: 7}
	s := sp.Scenario(p)
	if s.Impl != p.Impl || s.Workload != p.Workload || s.Policy != p.Policy ||
		s.Procs != 3 || s.Ops != 4 || s.Tolerance != -1 || s.Seed != 7 {
		t.Errorf("coordinates not applied: %+v", s)
	}
	if s.Scheduler != "random" || s.Chooser != "stale" || s.Analysis != scenario.AnalysisValency ||
		s.Stride != 64 || s.Budget.Depth != 9 || s.Budget.MaxSteps != 100 {
		t.Errorf("spec knobs not applied: %+v", s)
	}
	if s.Workers != 1 {
		t.Errorf("cell workers = %d, want the sequential default 1", s.Workers)
	}
	sp.Workers = 3
	if s := sp.Scenario(p); s.Workers != 3 {
		t.Errorf("explicit cell workers not applied: %d", s.Workers)
	}
}

func TestLoadSpec(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `{"schema": "elin/sweep/v1", "name": "g", "axes": {"engine": ["sim"]}}`)
	sp, err := LoadSpec(good)
	if err != nil {
		t.Fatalf("good spec: %v", err)
	}
	if sp.Name != "g" {
		t.Errorf("loaded spec: %+v", sp)
	}
	// Unknown fields fail loudly: a typoed axis name must not silently
	// sweep the wrong grid.
	typo := write("typo.json", `{"schema": "elin/sweep/v1", "name": "t", "axes": {"engines": ["sim"]}}`)
	if _, err := LoadSpec(typo); err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Errorf("typoed spec: %v", err)
	}
	if _, err := LoadSpec(filepath.Join(dir, "nosuch.json")); err == nil {
		t.Error("missing file accepted")
	}
	// Trailing content (a bad merge concatenating two specs) fails loudly
	// instead of silently loading the first half.
	merged := write("merged.json",
		`{"schema": "elin/sweep/v1", "name": "a", "axes": {"engine": ["sim"]}}
{"schema": "elin/sweep/v1", "name": "b", "axes": {"engine": ["live"]}}`)
	if _, err := LoadSpec(merged); err == nil || !strings.Contains(err.Error(), "trailing content") {
		t.Errorf("concatenated spec: %v", err)
	}
	bad := write("bad.json", `{"schema": "elin/sweep/v1"}`)
	if _, err := LoadSpec(bad); err == nil || !strings.Contains(err.Error(), "name") {
		t.Errorf("invalid spec: %v", err)
	}
}

func TestCellIDMatchesScenario(t *testing.T) {
	// The cell identity is scenario.CellID of the built scenario — one
	// vocabulary between grids, reports and baselines.
	sp := validSpec()
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		id := sp.Scenario(p).CellID(p.Engine)
		for _, frag := range []string{"engine=" + p.Engine, "impl=" + p.Impl, "workload=default", "policy=immediate"} {
			if !strings.Contains(id, frag) {
				t.Errorf("cell id %q misses %q", id, frag)
			}
		}
	}
}

// TestFaultsAxis pins the faults sweep dimension: validation, expansion
// with "none" mapping to the zero coordinate, canonicalized matching in
// exclusion predicates, and the scenario handoff.
func TestFaultsAxis(t *testing.T) {
	sp := &Spec{
		Schema: SpecSchema,
		Name:   "f",
		Axes: Axes{
			Engine: []string{"live"},
			Impl:   []string{"atomic-fi"},
			Faults: []string{"none", "jitter-light", "stall:0@4+2"},
		},
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("faulted spec rejected: %v", err)
	}
	points, err := sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("expansion: %d cells, want 3", len(points))
	}
	// "none" is the zero coordinate; presets canonicalize to grammar.
	if points[0].Faults != "" || points[1].Faults != "jitter:3" || points[2].Faults != "stall:0@4+2" {
		t.Errorf("faults coordinates = %q, %q, %q", points[0].Faults, points[1].Faults, points[2].Faults)
	}
	if s := sp.Scenario(points[1]); s.Faults != "jitter:3" {
		t.Errorf("scenario faults = %q", s.Faults)
	}
	if s := sp.Scenario(points[0]); s.Faults != "" {
		t.Errorf("unfaulted scenario faults = %q (must stay zero for baseline compatibility)", s.Faults)
	}

	// Predicates match canonicalized: excluding the preset by its preset
	// name drops the canonical cell; "none" matches the unfaulted cell.
	sp.Exclude = []Match{{Faults: "jitter-light"}}
	points, err = sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("preset exclude left %d cells", len(points))
	}
	sp.Exclude = []Match{{Faults: "none"}}
	points, err = sp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Faults == "" {
			t.Errorf("faults=none exclude left the unfaulted cell: %+v", p)
		}
	}

	// Repeated values — even across spellings — are rejected.
	sp.Exclude = nil
	sp.Axes.Faults = []string{"jitter-light", "jitter:3"}
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "repeats") {
		t.Errorf("duplicate faults axis accepted: %v", err)
	}
	// Unknown values are rejected with the vocabulary.
	sp.Axes.Faults = []string{"explode:9"}
	if err := sp.Validate(); err == nil || !strings.Contains(err.Error(), "chaos") {
		t.Errorf("unknown faults axis value accepted: %v", err)
	}
}
