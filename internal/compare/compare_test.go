package compare

import (
	"bytes"
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/campaign"
	"github.com/elin-go/elin/internal/scenario"
)

func TestSplitImpl(t *testing.T) {
	id := "engine=sim impl=slog-batch:1 workload=default policy=immediate sched=rr chooser=true procs=2 ops=8 tol=-1 seed=1"
	impl, key, err := splitImpl(id)
	if err != nil {
		t.Fatal(err)
	}
	if impl != "slog-batch:1" {
		t.Fatalf("impl = %q", impl)
	}
	want := "engine=sim impl=* workload=default policy=immediate sched=rr chooser=true procs=2 ops=8 tol=-1 seed=1"
	if key != want {
		t.Fatalf("key = %q, want %q", key, want)
	}
	if _, _, err := splitImpl("engine=sim procs=2"); err == nil {
		t.Fatal("identity without impl accepted")
	}
}

func TestStabilizedAt(t *testing.T) {
	cases := []struct {
		trend *scenario.TrendInfo
		want  int
	}{
		{nil, -1},
		{&scenario.TrendInfo{FinalMinT: 0}, -1},
		// Settles at the start of the trailing FinalMinT run, not the end.
		{&scenario.TrendInfo{FinalMinT: 0, Samples: []scenario.TrendSample{
			{Events: 4, MinT: 2}, {Events: 8, MinT: 0}, {Events: 12, MinT: 0},
		}}, 8},
		// An earlier visit to the final value does not count: MinT left it.
		{&scenario.TrendInfo{FinalMinT: 0, Samples: []scenario.TrendSample{
			{Events: 4, MinT: 0}, {Events: 8, MinT: 3}, {Events: 12, MinT: 0},
		}}, 12},
		// Never settled below the final value: stabilization is the first sample.
		{&scenario.TrendInfo{FinalMinT: 5, Samples: []scenario.TrendSample{
			{Events: 4, MinT: 5}, {Events: 8, MinT: 5},
		}}, 4},
	}
	for i, c := range cases {
		if got := stabilizedAt(c.trend); got != c.want {
			t.Errorf("case %d: stabilizedAt = %d, want %d", i, got, c.want)
		}
	}
}

func TestDecideLadder(t *testing.T) {
	m := func(verdict, trend string, minT, stab int) Metrics {
		return Metrics{Verdict: verdict, Trend: trend, FinalMinT: minT, StabilizedAt: stab}
	}
	cases := []struct {
		name   string
		a, b   Metrics
		winner string
		reason string
	}{
		{"verdict beats trend", m("ok", "diverging", 9, 9), m("violation", "stabilized", 0, 0), WinnerA, ReasonVerdict},
		{"error loses to violation", m("error", "", 0, -1), m("violation", "diverging", 4, 4), WinnerB, ReasonVerdict},
		{"trend class", m("ok", "stabilized", 0, 8), m("ok", "diverging", 6, 8), WinnerA, ReasonTrend},
		{"inconclusive between", m("ok", "inconclusive", 1, 4), m("ok", "diverging", 1, 4), WinnerA, ReasonTrend},
		{"missing trend ranks as inconclusive", m("ok", "", 0, -1), m("ok", "stabilized", 0, 4), WinnerB, ReasonTrend},
		{"final MinT", m("ok", "diverging", 6, 8), m("ok", "diverging", 3, 8), WinnerB, ReasonFinalMinT},
		{"stabilization point", m("ok", "stabilized", 0, 16), m("ok", "stabilized", 0, 8), WinnerB, ReasonStabilization},
		{"no samples never wins stabilization", m("ok", "stabilized", 0, -1), m("ok", "stabilized", 0, 99), WinnerB, ReasonStabilization},
		{"deterministic tie", m("ok", "stabilized", 0, 8), m("ok", "stabilized", 0, 8), WinnerTie, ReasonTie},
		{"both trendless tie", m("ok", "", 0, -1), m("ok", "", 0, -1), WinnerTie, ReasonTie},
	}
	for _, c := range cases {
		winner, reason := decide(c.a, c.b)
		if winner != c.winner || reason != c.reason {
			t.Errorf("%s: decide = (%s, %s), want (%s, %s)", c.name, winner, reason, c.winner, c.reason)
		}
	}
	// Throughput must never decide: identical deterministic fields with
	// wildly different throughputs still tie.
	a := m("ok", "stabilized", 0, 8)
	b := a
	a.ThroughputOpsS, b.ThroughputOpsS = 1e6, 1
	if winner, _ := decide(a, b); winner != WinnerTie {
		t.Fatalf("throughput decided a winner: %s", winner)
	}
}

// e19Spec is a small two-family grid (one slog cell, one local-copy cell
// per coordinate) the package tests sweep for the end-to-end path.
func e19Spec() *campaign.Spec {
	return &campaign.Spec{
		Schema: campaign.SpecSchema,
		Name:   "compare-test",
		Axes: campaign.Axes{
			Engine:    []string{"sim"},
			Impl:      []string{"slog-register", "localcopy-register"},
			Ops:       []int{4, 8},
			Tolerance: []int{-1},
			Seed:      []int64{1},
		},
	}
}

func TestSplitEndToEnd(t *testing.T) {
	camp, err := campaign.Run(e19Spec(), campaign.RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Split(camp, []string{"slog-register"}, []string{"localcopy-register"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Totals.Cells != 2 || len(rep.UnmatchedA)+len(rep.UnmatchedB) != 0 {
		t.Fatalf("totals = %+v, unmatched a=%v b=%v", rep.Totals, rep.UnmatchedA, rep.UnmatchedB)
	}
	// The paper's head-to-head: the stabilizing log settles, the local
	// copy diverges — every cell goes to side a on trend class.
	if rep.Totals.AWins != 2 {
		t.Fatalf("slog-register won %d of 2 cells: %+v", rep.Totals.AWins, rep.Cells)
	}
	for _, c := range rep.Cells {
		if !strings.Contains(c.Key, "impl=*") {
			t.Fatalf("key %q not impl-wildcarded", c.Key)
		}
		if c.A.Trend != "stabilized" || c.B.Trend != "diverging" {
			t.Fatalf("cell %s trends a=%q b=%q", c.Key, c.A.Trend, c.B.Trend)
		}
		if c.Reason != ReasonTrend {
			t.Fatalf("cell %s decided by %q, want trend", c.Key, c.Reason)
		}
	}
	if rows := rep.Rollups["ops"]; len(rows) != 2 {
		t.Fatalf("ops rollup = %+v", rows)
	}
	if _, ok := rep.Rollups["impl"]; ok {
		t.Fatal("impl leaked into the rollup axes")
	}
}

// The canonical encoding of a deterministic comparison is byte-stable
// across independent sweeps — the acceptance bar for committed reports.
func TestCanonicalByteStable(t *testing.T) {
	encode := func() []byte {
		camp, err := campaign.Run(e19Spec(), campaign.RunOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Split(camp, []string{"slog-register"}, []string{"localcopy-register"})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Canonical().EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical comparison not byte-stable:\n%s\nvs\n%s", a, b)
	}
}

func TestSplitErrors(t *testing.T) {
	camp, err := campaign.Run(e19Spec(), campaign.RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Split(camp, nil, []string{"localcopy-register"}); err == nil {
		t.Fatal("empty side accepted")
	}
	if _, err := Split(camp, []string{"slog-register"}, []string{"slog-register"}); err == nil {
		t.Fatal("impl on both sides accepted")
	}
	if _, err := Split(camp, []string{"slog-register"}, []string{"slog-batch:99"}); err == nil {
		t.Fatal("impl matching no cell accepted")
	}
}

func TestCampaignsModeAndUnmatched(t *testing.T) {
	cell := func(id, verdict string) campaign.Cell {
		return campaign.Cell{ID: id, Verdict: verdict}
	}
	a := &campaign.Campaign{Name: "slog", Cells: []campaign.Cell{
		cell("engine=sim impl=slog-counter workload=default policy=immediate procs=2 ops=4 tol=0 seed=1", "ok"),
		cell("engine=sim impl=slog-counter workload=default policy=immediate procs=2 ops=8 tol=0 seed=1", "ok"),
	}}
	b := &campaign.Campaign{Name: "localcopy", Cells: []campaign.Cell{
		cell("engine=sim impl=localcopy-register workload=default policy=immediate procs=2 ops=4 tol=0 seed=1", "violation"),
		cell("engine=sim impl=localcopy-register workload=default policy=immediate procs=3 ops=4 tol=0 seed=1", "violation"),
	}}
	rep, err := Campaigns(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NameA != "slog" || rep.NameB != "localcopy" {
		t.Fatalf("names %q vs %q", rep.NameA, rep.NameB)
	}
	if rep.Totals.Cells != 1 || rep.Totals.AWins != 1 {
		t.Fatalf("totals = %+v", rep.Totals)
	}
	if len(rep.UnmatchedA) != 1 || len(rep.UnmatchedB) != 1 {
		t.Fatalf("unmatched a=%v b=%v", rep.UnmatchedA, rep.UnmatchedB)
	}
	if rep.Cells[0].Reason != ReasonVerdict {
		t.Fatalf("reason = %q", rep.Cells[0].Reason)
	}

	// Two same-side cells collapsing onto one family-blind key is
	// ambiguous, not a silent overwrite.
	dup := &campaign.Campaign{Name: "dup", Cells: []campaign.Cell{
		cell("engine=sim impl=slog-counter workload=default policy=immediate procs=2 ops=4 tol=0 seed=1", "ok"),
		cell("engine=sim impl=slog-batch:2 workload=default policy=immediate procs=2 ops=4 tol=0 seed=1", "ok"),
	}}
	if _, err := Campaigns(dup, b); err == nil {
		t.Fatal("ambiguous side accepted")
	}
}

func TestRenderMentionsEverySide(t *testing.T) {
	camp, err := campaign.Run(e19Spec(), campaign.RunOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Split(camp, []string{"slog-register"}, []string{"localcopy-register"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"slog-register", "localcopy-register", "winner=a (trend)", "rollup ops:", "a-wins=2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}
