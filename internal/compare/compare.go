// Package compare builds head-to-head reports between two implementation
// families over matched campaign cells. The paper's argument is
// comparative — an eventually linearizable construction is only "cheap"
// or "expensive" relative to a competitor on the same workload — so the
// unit of comparison is the pair of cells that agree on every grid
// coordinate except the implementation. Compare matches cells by that
// family-blind identity (the cell ID with the impl coordinate wildcarded
// to impl=*), extracts each side's deterministic outcome (verdict, t-lin
// trend class, final MinT, stabilization point) plus its measured
// throughput, and decides a per-cell winner from the deterministic fields
// alone: throughput is reported, never adjudicated, so canonical reports
// stay byte-identical across machines.
package compare

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/elin-go/elin/internal/campaign"
	"github.com/elin-go/elin/internal/scenario"
)

// Schema is the comparison-report JSON schema identifier. Bump it on any
// backwards-incompatible change to the encoding; the golden test pins the
// current shape.
const Schema = "elin/compare/v1"

// Winner values.
const (
	// WinnerA / WinnerB: the named side won the cell.
	WinnerA = "a"
	WinnerB = "b"
	// WinnerTie: the deterministic fields cannot separate the sides.
	WinnerTie = "tie"
)

// Reason values — which rung of the decision ladder settled a cell.
const (
	// ReasonVerdict: one side passed its check and the other did not.
	ReasonVerdict = "verdict"
	// ReasonTrend: the t-lin trend classes differ (stabilized beats
	// inconclusive beats diverging).
	ReasonTrend = "trend"
	// ReasonFinalMinT: same trend class, different final MinT.
	ReasonFinalMinT = "final-min-t"
	// ReasonStabilization: same final MinT, one side reached it earlier.
	ReasonStabilization = "stabilization"
	// ReasonTie: nothing deterministic separates the sides.
	ReasonTie = "tie"
)

// Metrics is one side's extract of a matched cell: the deterministic
// outcome fields the winner rule reads, plus the measured throughput
// (informational only; Canonical zeroes it).
type Metrics struct {
	// Impl is the side's implementation coordinate as it appears in the
	// cell identity ("slog-batch:1").
	Impl string `json:"impl"`
	// Verdict is the cell verdict: "ok", "violation", or "error".
	Verdict string `json:"verdict"`
	// Detail is the cell's one-line verdict summary (the error text for
	// error cells).
	Detail string `json:"detail,omitempty"`
	// Trend is the t-lin trend class ("stabilized", "inconclusive",
	// "diverging"); empty when the engine produced no trend section.
	Trend string `json:"trend,omitempty"`
	// FinalMinT is the trend's final MinT measurement.
	FinalMinT int `json:"final_min_t"`
	// StabilizedAt is the stabilization point: the event count at which
	// MinT last reached its final value (the start of the trailing run of
	// samples measuring FinalMinT) — lower means the history settled
	// earlier. -1 when the cell has no trend samples.
	StabilizedAt int `json:"stabilized_at"`
	// ThroughputOpsS is the side's measured throughput (live cells; 0
	// elsewhere). Reported for the trade-off reading, never consulted by
	// the winner rule, zeroed by Canonical.
	ThroughputOpsS float64 `json:"throughput_ops_s,omitempty"`
}

// Cell is one matched pair: the family-blind identity both sides share,
// each side's metrics, and the decided winner.
type Cell struct {
	// Key is the shared identity: the cell ID with the implementation
	// coordinate wildcarded to impl=*.
	Key string  `json:"key"`
	A   Metrics `json:"a"`
	B   Metrics `json:"b"`
	// Winner is "a", "b" or "tie"; Reason names the decision-ladder rung
	// that settled it.
	Winner string `json:"winner"`
	Reason string `json:"reason"`
}

// Totals counts cell outcomes.
type Totals struct {
	Cells int `json:"cells"`
	AWins int `json:"a_wins"`
	BWins int `json:"b_wins"`
	Ties  int `json:"ties"`
}

// AxisCount is one rollup row: the win counts of every matched cell
// sharing one value on one axis.
type AxisCount struct {
	Value string `json:"value"`
	Cells int    `json:"cells"`
	AWins int    `json:"a_wins"`
	BWins int    `json:"b_wins"`
	Ties  int    `json:"ties"`
}

// Report is a head-to-head comparison: every matched cell in key order,
// win totals, and per-axis winner rollups. Its JSON encoding is stable
// (schema-tagged and golden-tested).
type Report struct {
	Schema string `json:"schema"`
	// NameA/NameB label the sides (campaign names, or the impl lists of a
	// single-grid split).
	NameA  string `json:"name_a"`
	NameB  string `json:"name_b"`
	Totals Totals `json:"totals"`
	// Rollups maps each varied coordinate of the shared keys (engine,
	// workload, procs, ops, ... — everything except impl) to its per-value
	// win counts, values sorted.
	Rollups map[string][]AxisCount `json:"rollups"`
	Cells   []Cell                 `json:"cells"`
	// UnmatchedA/UnmatchedB list cell IDs present on one side only, sorted
	// — grid asymmetry the totals do not count.
	UnmatchedA []string `json:"unmatched_a,omitempty"`
	UnmatchedB []string `json:"unmatched_b,omitempty"`
}

// splitImpl splits a cell identity into its implementation coordinate and
// the family-blind key both sides of a comparison share.
func splitImpl(id string) (impl, key string, err error) {
	const marker = " impl="
	i := strings.Index(id, marker)
	if i < 0 {
		return "", "", fmt.Errorf("compare: cell %q has no impl coordinate", id)
	}
	start := i + len(marker)
	rest := strings.IndexByte(id[start:], ' ')
	if rest < 0 {
		return "", "", fmt.Errorf("compare: cell %q ends at its impl coordinate", id)
	}
	return id[start : start+rest], id[:start] + "*" + id[start+rest:], nil
}

// stabilizedAt finds the stabilization point of a trend: the event count
// of the earliest sample in the trailing run measuring FinalMinT, or -1
// when the trend carries no samples.
func stabilizedAt(t *scenario.TrendInfo) int {
	if t == nil || len(t.Samples) == 0 {
		return -1
	}
	at := t.Samples[len(t.Samples)-1].Events
	for i := len(t.Samples) - 1; i >= 0 && t.Samples[i].MinT == t.FinalMinT; i-- {
		at = t.Samples[i].Events
	}
	return at
}

// metrics extracts one side's comparison fields from a campaign cell.
func metrics(c *campaign.Cell, impl string) Metrics {
	m := Metrics{Impl: impl, Verdict: c.Verdict, Detail: c.Detail, StabilizedAt: -1}
	if c.Verdict == campaign.VerdictError {
		m.Detail = c.Error
	}
	if r := c.Report; r != nil {
		if t := r.Trend; t != nil {
			m.Trend = t.Trend
			m.FinalMinT = t.FinalMinT
			m.StabilizedAt = stabilizedAt(t)
		}
		if p := r.Perf; p != nil {
			m.ThroughputOpsS = p.ThroughputOpsS
		}
	}
	return m
}

// verdictRank orders verdicts best-first: a passing cell beats a
// violating one beats one that failed to run at all.
func verdictRank(v string) int {
	switch v {
	case scenario.VerdictOK:
		return 0
	case scenario.VerdictViolation:
		return 1
	default:
		return 2
	}
}

// trendRank orders trend classes best-first. A missing trend section
// ranks with inconclusive: the cell measured nothing either way.
func trendRank(t string) int {
	switch t {
	case "stabilized":
		return 0
	case "diverging":
		return 2
	default:
		return 1
	}
}

// decide applies the winner ladder to one matched pair. Every rung reads
// a deterministic field — verdict, then trend class, then final MinT,
// then stabilization point — so the decision is a pure function of the
// canonical reports; throughput never enters.
func decide(a, b Metrics) (winner, reason string) {
	pick := func(less bool) string {
		if less {
			return WinnerA
		}
		return WinnerB
	}
	if ra, rb := verdictRank(a.Verdict), verdictRank(b.Verdict); ra != rb {
		return pick(ra < rb), ReasonVerdict
	}
	if ra, rb := trendRank(a.Trend), trendRank(b.Trend); ra != rb {
		return pick(ra < rb), ReasonTrend
	}
	if a.Trend == "" && b.Trend == "" {
		return WinnerTie, ReasonTie
	}
	if a.FinalMinT != b.FinalMinT {
		return pick(a.FinalMinT < b.FinalMinT), ReasonFinalMinT
	}
	// A side with no samples (-1) cannot claim early stabilization.
	sa, sb := stabOrder(a.StabilizedAt), stabOrder(b.StabilizedAt)
	if sa != sb {
		return pick(sa < sb), ReasonStabilization
	}
	return WinnerTie, ReasonTie
}

// stabOrder maps the no-samples marker (-1) past every real
// stabilization point.
func stabOrder(at int) int {
	if at < 0 {
		return math.MaxInt
	}
	return at
}

// side is one comparison input: a label and its cells.
type side struct {
	name  string
	cells []*campaign.Cell
}

// Campaigns compares two campaign runs cell-by-cell: every cell of a is
// matched to the b cell sharing its family-blind identity. The campaigns
// are typically the same grid swept with different impl axes. A campaign
// in which two cells collapse onto one family-blind key (an impl axis
// with more than one value per side) is ambiguous and errors; use Split
// on the single grid instead.
func Campaigns(a, b *campaign.Campaign) (*Report, error) {
	return build(
		side{name: a.Name, cells: cellPtrs(a.Cells)},
		side{name: b.Name, cells: cellPtrs(b.Cells)},
	)
}

// Split partitions one campaign's cells into two families by their impl
// coordinate and compares the halves — the one-grid form `elin sweep`
// feeds through an impl axis listing both families. Cells whose impl is
// on neither list are ignored (the grid may sweep more than the two
// families under comparison); a listed impl that matches no cell is an
// error (a typo would otherwise read as a flawless sweep).
func Split(c *campaign.Campaign, implsA, implsB []string) (*Report, error) {
	if len(implsA) == 0 || len(implsB) == 0 {
		return nil, fmt.Errorf("compare: both sides need at least one impl")
	}
	member := map[string]string{}
	for _, impl := range implsA {
		member[impl] = WinnerA
	}
	for _, impl := range implsB {
		if member[impl] == WinnerA {
			return nil, fmt.Errorf("compare: impl %q listed on both sides", impl)
		}
		member[impl] = WinnerB
	}
	hits := map[string]int{}
	var a, b side
	a.name, b.name = strings.Join(implsA, "+"), strings.Join(implsB, "+")
	for i := range c.Cells {
		cell := &c.Cells[i]
		impl, _, err := splitImpl(cell.ID)
		if err != nil {
			return nil, err
		}
		switch member[impl] {
		case WinnerA:
			a.cells = append(a.cells, cell)
		case WinnerB:
			b.cells = append(b.cells, cell)
		default:
			continue
		}
		hits[impl]++
	}
	for impl := range member {
		if hits[impl] == 0 {
			return nil, fmt.Errorf("compare: impl %q matches no cell of campaign %q (typo in a family list?)", impl, c.Name)
		}
	}
	return build(a, b)
}

func cellPtrs(cells []campaign.Cell) []*campaign.Cell {
	out := make([]*campaign.Cell, len(cells))
	for i := range cells {
		out[i] = &cells[i]
	}
	return out
}

// build matches the two sides by family-blind key and assembles the
// report.
func build(a, b side) (*Report, error) {
	index := func(s side) (map[string]*campaign.Cell, map[string]string, error) {
		byKey := make(map[string]*campaign.Cell, len(s.cells))
		impls := make(map[string]string, len(s.cells))
		for _, cell := range s.cells {
			impl, key, err := splitImpl(cell.ID)
			if err != nil {
				return nil, nil, err
			}
			if prev, dup := byKey[key]; dup {
				return nil, nil, fmt.Errorf("compare: side %q has two cells with identity %q (%s and %s) — one impl per side per grid point",
					s.name, key, prev.ID, cell.ID)
			}
			byKey[key] = cell
			impls[key] = impl
		}
		return byKey, impls, nil
	}
	aByKey, aImpls, err := index(a)
	if err != nil {
		return nil, err
	}
	bByKey, bImpls, err := index(b)
	if err != nil {
		return nil, err
	}

	rep := &Report{Schema: Schema, NameA: a.name, NameB: b.name, Rollups: map[string][]AxisCount{}}
	for key, ca := range aByKey {
		cb, ok := bByKey[key]
		if !ok {
			rep.UnmatchedA = append(rep.UnmatchedA, ca.ID)
			continue
		}
		cell := Cell{Key: key, A: metrics(ca, aImpls[key]), B: metrics(cb, bImpls[key])}
		cell.Winner, cell.Reason = decide(cell.A, cell.B)
		rep.Cells = append(rep.Cells, cell)
	}
	for key, cb := range bByKey {
		if _, ok := aByKey[key]; !ok {
			rep.UnmatchedB = append(rep.UnmatchedB, cb.ID)
		}
	}
	sort.Slice(rep.Cells, func(i, j int) bool { return rep.Cells[i].Key < rep.Cells[j].Key })
	sort.Strings(rep.UnmatchedA)
	sort.Strings(rep.UnmatchedB)
	rep.aggregate()
	return rep, nil
}

// aggregate fills the totals and the per-axis winner rollups from the
// matched cells' shared keys.
func (r *Report) aggregate() {
	rollups := map[string]map[string]*AxisCount{}
	for i := range r.Cells {
		cell := &r.Cells[i]
		r.Totals.Cells++
		switch cell.Winner {
		case WinnerA:
			r.Totals.AWins++
		case WinnerB:
			r.Totals.BWins++
		default:
			r.Totals.Ties++
		}
		for axis, value := range keyCoordinates(cell.Key) {
			byValue := rollups[axis]
			if byValue == nil {
				byValue = map[string]*AxisCount{}
				rollups[axis] = byValue
			}
			row := byValue[value]
			if row == nil {
				row = &AxisCount{Value: value}
				byValue[value] = row
			}
			row.Cells++
			switch cell.Winner {
			case WinnerA:
				row.AWins++
			case WinnerB:
				row.BWins++
			default:
				row.Ties++
			}
		}
	}
	for axis, byValue := range rollups {
		rows := make([]AxisCount, 0, len(byValue))
		for _, row := range byValue {
			rows = append(rows, *row)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Value < rows[j].Value })
		r.Rollups[axis] = rows
	}
}

// keyCoordinates parses the k=v coordinates of a family-blind key,
// dropping the wildcarded impl token.
func keyCoordinates(key string) map[string]string {
	coords := map[string]string{}
	for _, tok := range strings.Fields(key) {
		k, v, ok := strings.Cut(tok, "=")
		if !ok || k == "impl" {
			continue
		}
		coords[k] = v
	}
	return coords
}

// Canonical returns a deep copy with every run-dependent field removed —
// the per-side throughputs, the only wall-clock numbers a comparison
// carries. A comparison of deterministic campaigns canonicalizes to
// byte-identical JSON across runs and machines.
func (r *Report) Canonical() *Report {
	cp := *r
	cp.Cells = make([]Cell, len(r.Cells))
	for i, cell := range r.Cells {
		cell.A.ThroughputOpsS = 0
		cell.B.ThroughputOpsS = 0
		cp.Cells[i] = cell
	}
	cp.Rollups = make(map[string][]AxisCount, len(r.Rollups))
	for axis, rows := range r.Rollups {
		cp.Rollups[axis] = append([]AxisCount(nil), rows...)
	}
	cp.UnmatchedA = append([]string(nil), r.UnmatchedA...)
	cp.UnmatchedB = append([]string(nil), r.UnmatchedB...)
	return &cp
}

// EncodeJSON writes the report's stable JSON encoding (indented, trailing
// newline). Map keys encode sorted, so the output is deterministic.
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the human-readable comparison: the totals line, one line
// per matched cell (trend, final MinT, stabilization point and — when
// measured — throughput for each side), the non-trivial axis rollups,
// and any unmatched cells.
func (r *Report) Render(w io.Writer) error {
	fmt.Fprintf(w, "compare %s (a) vs %s (b): cells=%d a-wins=%d b-wins=%d ties=%d\n",
		r.NameA, r.NameB, r.Totals.Cells, r.Totals.AWins, r.Totals.BWins, r.Totals.Ties)
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(w, "  %s\n    a %-22s %s | b %-22s %s | winner=%s (%s)\n",
			c.Key, c.A.Impl, sideSummary(c.A), c.B.Impl, sideSummary(c.B), c.Winner, c.Reason)
	}
	axes := make([]string, 0, len(r.Rollups))
	for axis, rows := range r.Rollups {
		if len(rows) > 1 {
			axes = append(axes, axis)
		}
	}
	sort.Strings(axes)
	for _, axis := range axes {
		fmt.Fprintf(w, "rollup %s:\n", axis)
		for _, row := range r.Rollups[axis] {
			fmt.Fprintf(w, "  %-12s cells=%d a-wins=%d b-wins=%d ties=%d\n",
				row.Value, row.Cells, row.AWins, row.BWins, row.Ties)
		}
	}
	for _, id := range r.UnmatchedA {
		fmt.Fprintf(w, "unmatched a: %s\n", id)
	}
	for _, id := range r.UnmatchedB {
		fmt.Fprintf(w, "unmatched b: %s\n", id)
	}
	return nil
}

// sideSummary formats one side's metrics for the per-cell render line.
func sideSummary(m Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s", m.Verdict)
	if m.Trend != "" {
		fmt.Fprintf(&b, "/%s minT=%d", m.Trend, m.FinalMinT)
		if m.StabilizedAt >= 0 {
			fmt.Fprintf(&b, " stab@%d", m.StabilizedAt)
		}
	}
	if m.ThroughputOpsS > 0 {
		fmt.Fprintf(&b, " %.0f op/s", m.ThroughputOpsS)
	}
	return b.String()
}
