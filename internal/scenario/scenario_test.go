package scenario

import (
	"strings"
	"testing"
)

// TestOneScenarioEveryEngine is the tentpole contract: one Scenario value,
// unchanged, runs on all three engines and the verdicts agree where the
// regimes overlap.
func TestOneScenarioEveryEngine(t *testing.T) {
	// A linearizable counter: every engine must say ok.
	correct := Scenario{
		Impl:     "cas-counter",
		Workload: "uniform:inc",
		Procs:    2,
		Ops:      2,
		Seed:     3,
		Budget:   Budget{Depth: 22},
	}
	for _, e := range Engines() {
		rep, err := e.Run(correct)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !rep.OK() {
			t.Errorf("%s verdict = %s (%s), want ok", e.Name(), rep.Verdict, rep.Detail)
		}
		if rep.Engine != e.Name() {
			t.Errorf("report engine = %q, want %q", rep.Engine, e.Name())
		}
		if rep.Scenario.Impl != "cas-counter" || rep.Scenario.Workload != "uniform:inc" {
			t.Errorf("%s scenario echo = %+v", e.Name(), rep.Scenario)
		}
	}

	// A broken counter whose second completed operation answers out of
	// left field: every engine must produce a counterexample, whatever the
	// schedule.
	broken := Scenario{
		Impl:      "junk-counter",
		Workload:  "uniform:inc",
		Procs:     2,
		Ops:       2,
		Seed:      5,
		Tolerance: 0,
		Budget:    Budget{Depth: 16},
	}
	for _, e := range Engines() {
		rep, err := e.Run(broken)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if rep.Verdict != VerdictViolation {
			t.Errorf("%s verdict = %s (%s), want violation", e.Name(), rep.Verdict, rep.Detail)
		}
		if rep.Witness == nil || rep.Witness.History == "" {
			t.Errorf("%s violation carries no witness history", e.Name())
		}
	}

	// An eventually linearizable counter mid-stabilization: the strict
	// verdict is a violation on the deterministic engines, and observe-only
	// tolerance turns it back into a pass.
	eventual := Scenario{
		Impl:      "warmup-counter:2",
		Workload:  "uniform:inc",
		Procs:     2,
		Ops:       2,
		Seed:      5,
		Chooser:   "stale",
		Policy:    "window:2",
		Tolerance: 0,
		Budget:    Budget{Depth: 16},
	}
	for _, name := range []string{"explore", "sim"} {
		rep, err := Run(name, eventual)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Verdict != VerdictViolation {
			t.Errorf("%s verdict = %s (%s), want violation", name, rep.Verdict, rep.Detail)
		}
	}
	observe := eventual
	observe.Tolerance = -1
	for _, name := range []string{"sim", "live"} {
		rep, err := Run(name, observe)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.OK() {
			t.Errorf("%s observe-only verdict = %s (%s), want ok", name, rep.Verdict, rep.Detail)
		}
	}
}

// TestCellID pins the canonical cell-identity vocabulary campaign grids
// and baselines match on.
func TestCellID(t *testing.T) {
	// Defaults resolve: the zero scenario and the spelled-out default
	// scenario name the same grid point.
	zero := Scenario{}.CellID("")
	spelled := Scenario{Impl: "cas-counter", Workload: "default", Policy: "immediate", Procs: 2, Ops: 2}.CellID("sim")
	if zero != spelled {
		t.Errorf("default identity split: %q vs %q", zero, spelled)
	}
	want := "engine=sim impl=cas-counter workload=default policy=immediate sched=rr chooser=true procs=2 ops=2 tol=0 seed=0"
	if zero != want {
		t.Errorf("sim cell id = %q, want %q", zero, want)
	}

	s := Scenario{Impl: "warmup-counter:2", Workload: "uniform:inc", Policy: "window:2",
		Procs: 3, Ops: 4, Tolerance: -1, Seed: 9, Analysis: AnalysisValency}
	if got, want := s.CellID("explore"),
		"engine=explore impl=warmup-counter:2 workload=uniform:inc policy=window:2 analysis=valency procs=3 ops=4 tol=-1 seed=9"; got != want {
		t.Errorf("explore cell id = %q, want %q", got, want)
	}
	// The live engine carries neither analysis nor scheduler coordinates.
	if id := s.CellID("live"); strings.Contains(id, "analysis=") || strings.Contains(id, "sched=") {
		t.Errorf("live cell id has foreign coordinates: %q", id)
	}
	// Identities separate every axis the grid sweeps.
	other := s
	other.Seed = 10
	if s.CellID("live") == other.CellID("live") {
		t.Error("seed does not separate cell identities")
	}
}

// TestEngineByName pins the engine registry.
func TestEngineByName(t *testing.T) {
	for name, want := range map[string]string{
		"":        "sim",
		"sim":     "sim",
		"explore": "explore",
		"live":    "live",
	} {
		e, err := EngineByName(name)
		if err != nil {
			t.Fatalf("EngineByName(%q): %v", name, err)
		}
		if e.Name() != want {
			t.Errorf("EngineByName(%q) = %s, want %s", name, e.Name(), want)
		}
	}
	if _, err := EngineByName("nosuch"); err == nil || !strings.Contains(err.Error(), "explore") {
		t.Errorf("unknown engine error does not list names: %v", err)
	}
}

// TestScenarioErrors pins that resolution errors surface with the
// available names.
func TestScenarioErrors(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		eng  string
	}{
		{"unknown impl", Scenario{Impl: "nosuch"}, "explore"},
		{"unknown impl sim", Scenario{Impl: "nosuch"}, "sim"},
		{"unknown impl live", Scenario{Impl: "nosuch"}, "live"},
		{"unknown workload", Scenario{Workload: "nosuch"}, "sim"},
		{"unknown scheduler", Scenario{Scheduler: "nosuch"}, "sim"},
		{"unknown chooser", Scenario{Chooser: "nosuch"}, "sim"},
		{"unknown policy", Scenario{Policy: "nosuch"}, "explore"},
		{"unknown analysis", Scenario{Analysis: "nosuch"}, "explore"},
	}
	for _, tc := range cases {
		if _, err := Run(tc.eng, tc.s); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestExploreAnalyses exercises the non-default analyses end to end.
func TestExploreAnalyses(t *testing.T) {
	// Registers cannot solve consensus: the valency analysis must find
	// agreement violations (the Proposition 15 case analysis).
	valency := Scenario{
		Impl:     "reg-consensus",
		Procs:    2,
		Ops:      1,
		Analysis: AnalysisValency,
		Budget:   Budget{Depth: 18},
	}
	rep, err := Run("explore", valency)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation || rep.Valency == nil || rep.Valency.AgreementViolations == 0 {
		t.Fatalf("reg-consensus valency report: verdict=%s valency=%+v", rep.Verdict, rep.Valency)
	}
	if len(rep.Valency.RootValence) < 2 {
		t.Errorf("reg-consensus root should be multivalent, got %v", rep.Valency.RootValence)
	}

	// A real consensus base solves it: no violations, critical pivots
	// exist.
	strong := valency
	strong.Impl = "base-consensus"
	rep, err = Run("explore", strong)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Valency == nil || rep.Valency.AgreementViolations != 0 {
		t.Fatalf("base-consensus valency report: verdict=%s valency=%+v", rep.Verdict, rep.Valency)
	}

	stable := Scenario{
		Impl:     "warmup-counter:2",
		Procs:    2,
		Ops:      3,
		Policy:   "never",
		Analysis: AnalysisStable,
		Budget:   Budget{Depth: 8, VerifyDepth: 14},
	}
	rep, err = Run("explore", stable)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Stable == nil {
		t.Fatalf("stable report: verdict=%s stable=%+v", rep.Verdict, rep.Stable)
	}

	weak := Scenario{
		Impl:     "junk-counter",
		Procs:    2,
		Ops:      1,
		Policy:   "never",
		Analysis: AnalysisWeak,
		Budget:   Budget{Depth: 10},
	}
	rep, err = Run("explore", weak)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation {
		t.Fatalf("junk-counter weak verdict = %s, want violation", rep.Verdict)
	}
}

// TestLiveFuzzScenario drives the fuzz path through the Scenario API: the
// junk counter must be caught, shrunk and sim-refuted.
func TestLiveFuzzScenario(t *testing.T) {
	s := Scenario{
		Impl:     "junk-fi:20",
		Procs:    2,
		Ops:      400,
		Seed:     1,
		Stride:   64,
		FuzzRuns: 3,
	}
	rep, err := Run("live", s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictViolation || rep.Fuzz == nil || !rep.Fuzz.Found {
		t.Fatalf("junk fuzz: verdict=%s fuzz=%+v", rep.Verdict, rep.Fuzz)
	}
	if rep.Witness == nil || rep.Witness.Shrunk == nil || !rep.Witness.Shrunk.SimDiverged {
		t.Fatalf("junk fuzz witness not sim-refuted: %+v", rep.Witness)
	}
}
