package scenario

// Timing is the machine-readable timing record shared by every consumer
// that archives wall-clock measurements: `elin bench -json` emits one per
// experiment (the BENCH_*.json trajectory format) and campaign sweeps
// attach one per cell. One encoder means the two formats cannot drift.
type Timing struct {
	// ID identifies the measured unit: an experiment id ("E8") or a
	// campaign cell identity.
	ID string `json:"id"`
	// Artifact names the paper artifact an experiment reproduces (bench
	// records only).
	Artifact string `json:"artifact,omitempty"`
	// Rows is the number of table rows an experiment produced (bench
	// records only).
	Rows int `json:"rows,omitempty"`
	// NS is the wall-clock run time in nanoseconds.
	NS int64 `json:"ns"`
	// Workers is the exploration worker setting the run used (0 =
	// GOMAXPROCS).
	Workers int `json:"workers"`
	// GOMAXPROCS records the scheduler parallelism the run had available,
	// so timings stay attributable across machines.
	GOMAXPROCS int `json:"gomaxprocs"`
}
