package scenario

import (
	"fmt"
	"runtime"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/spec"
	"github.com/elin-go/elin/internal/wal"
)

// Live is the real-concurrency engine: Procs goroutine clients hammer one
// genuinely shared object, an online windowed monitor t-lin-checks the
// merged history as it grows, and a violation is ddmin-shrunk and
// confirmed in the deterministic simulator. With FuzzRuns > 0 the engine
// runs a seeded fuzz campaign instead of a single run.
type Live struct{}

// Name implements Engine.
func (Live) Name() string { return "live" }

// resolveLive resolves the object under stress.
func (s Scenario) resolveLive() (live.Object, error) {
	if s.LiveValue != nil {
		return s.LiveValue, nil
	}
	if s.ImplValue != nil {
		policy, err := s.resolvePolicy()
		if err != nil {
			return nil, err
		}
		return live.NewSerializedImpl(s.ImplValue, s.Procs, base.SamePolicy(policy), s.Seed, s.Check)
	}
	policy, err := s.resolvePolicy()
	if err != nil {
		return nil, err
	}
	return registry.LiveObject(s.Impl, s.Procs, policy, s.Seed, s.Check)
}

// monitorStride picks the window stride: generous for the polynomial
// checkers, capped for generic types whose windows hold at most
// check.MaxOpsPerObject operations.
func monitorStride(obj live.Object, clients, stride int) (int, error) {
	if stride > 0 {
		return stride, nil
	}
	switch obj.Spec().Type.(type) {
	case spec.FetchInc, spec.Consensus:
		return 512, nil
	default:
		s := 2 * (check.MaxOpsPerObject - clients - 2)
		if s < 8 {
			return 0, fmt.Errorf("scenario: %d clients leave no window room for the generic checker (cap %d ops); lower Procs or set NoMonitor",
				clients, check.MaxOpsPerObject)
		}
		if s > 80 {
			s = 80
		}
		return s, nil
	}
}

// Run implements Engine.
func (Live) Run(s Scenario) (*Report, error) {
	s = s.withDefaults()
	if s.NetFaults != "" && s.NetFaults != "none" {
		return nil, fmt.Errorf("scenario: net-faults %q are a serve-engine feature; engine %q rejects them (the live engine has no connections to sever)", s.NetFaults, "live")
	}
	obj, err := s.resolveLive()
	if err != nil {
		return nil, err
	}
	gen, err := registry.OpGenByName(s.Workload, obj.Spec())
	if err != nil {
		return nil, err
	}
	mspec, err := s.resolveMonitor()
	if err != nil {
		return nil, err
	}
	stride := 0
	if !s.monitorOff() {
		stride, err = monitorStride(obj, s.Procs, s.Stride)
		if err != nil {
			return nil, err
		}
	}
	fspec, err := s.resolveFaults()
	if err != nil {
		return nil, err
	}
	cfg := live.Config{
		Object:        obj,
		Clients:       s.Procs,
		Ops:           s.Ops,
		Gen:           gen,
		Seed:          s.Seed,
		Rate:          s.Rate,
		Monitor:       check.IncrementalConfig{Stride: stride, MaxT: s.Tolerance, Opts: s.Check},
		MonitorSpec:   mspec,
		NoMonitor:     s.NoMonitor,
		LatencySample: s.LatencySample,
		Faults:        fspec,
		Serial:        s.Serial,
	}
	rep := &Report{Schema: Schema, Engine: "live", Scenario: s.info("live")}

	if s.FuzzRuns > 0 {
		if s.WAL != "" || !fspec.Zero() || s.Serial {
			return nil, fmt.Errorf("scenario: fuzz campaigns do not compose with faults, WAL logging or the serial driver")
		}
		return runFuzz(rep, cfg, s)
	}
	if s.WAL != "" {
		pol, err := wal.ParseSyncPolicy(s.WALSync)
		if err != nil {
			return nil, err
		}
		log, err := wal.Create(s.WAL, wal.Header{
			Object:    s.implName(),
			ObjName:   obj.Name(),
			Procs:     s.Procs,
			Ops:       s.Ops,
			Workload:  orDefault(s.Workload, DefaultWorkload),
			Policy:    orDefault(s.Policy, DefaultPolicy),
			Seed:      s.Seed,
			Tolerance: s.Tolerance,
		}, pol)
		if err != nil {
			return nil, err
		}
		cfg.Sink = log // Run owns the sink and closes it on every path
	} else if s.WALSync != "" {
		return nil, fmt.Errorf("scenario: WALSync %q set without a WAL path", s.WALSync)
	}

	res, err := live.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep.history = res.History
	rep.Perf = &PerfInfo{
		Ops:            res.Ops,
		Events:         res.History.Len(),
		NS:             res.Elapsed.Nanoseconds(),
		ThroughputOpsS: res.Throughput,
		P50NS:          res.LatP50.Nanoseconds(),
		P95NS:          res.LatP95.Nanoseconds(),
		P99NS:          res.LatP99.Nanoseconds(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
	}
	if !s.monitorOff() {
		rep.Trend = trendInfo(res.Verdict)
	}
	if res.Violation != nil {
		rep.Verdict = VerdictViolation
		rep.Detail = res.Violation.String()
		wi, err := witnessOf(res.Violation, s)
		if err != nil {
			return nil, err
		}
		rep.Witness = wi
		return rep, nil
	}
	rep.Verdict = VerdictOK
	switch {
	case res.Crashed:
		rep.Detail = fmt.Sprintf("crashed at commit %d (injected fault); %d ops merged before the cut", res.CrashTicket, res.Ops)
	case s.monitorOff():
		rep.Detail = "run completed (monitoring disabled)"
	default:
		rep.Detail = "no monitor window exceeded tolerance"
	}
	if res.Crashed {
		// The history ends mid-flight: replay verification applies to the
		// recovered continuation (scenario.Recover), not the cut.
		return rep, nil
	}
	if !s.NoVerify {
		same, err := live.Verify(obj, res.History)
		if err != nil {
			return nil, err
		}
		rep.Checks = &Checks{ReplayIdentical: boolPtr(same)}
	}
	return rep, nil
}

// witnessOf converts a monitor violation, shrinking it unless disabled.
func witnessOf(v *check.WindowViolation, s Scenario) (*WitnessInfo, error) {
	wi := &WitnessInfo{
		WindowStart: v.Start,
		WindowEnd:   v.End,
		MinT:        v.MinT,
		History:     v.Window.String(),
	}
	if s.NoShrink {
		return wi, nil
	}
	w, err := live.Shrink(v, s.Check)
	if err != nil {
		return nil, err
	}
	wi.History = w.History.String()
	wi.Shrunk = &ShrunkInfo{
		Ops:         w.Ops,
		Trials:      w.Trials,
		SimDiverged: w.Replay != nil && w.Replay.Diverged,
	}
	if w.Replay != nil && w.Replay.Diverged {
		wi.Shrunk.Proc = w.Replay.Proc
		wi.Shrunk.Op = w.Replay.Op.String()
		wi.Shrunk.Got = w.Replay.Got
		wi.Shrunk.Want = w.Replay.Want
	}
	return wi, nil
}

// runFuzz executes a fuzz campaign and reports it.
func runFuzz(rep *Report, cfg live.Config, s Scenario) (*Report, error) {
	res, err := live.Fuzz(live.FuzzConfig{
		Base:      cfg,
		Runs:      s.FuzzRuns,
		NoShrink:  s.NoShrink,
		CheckOpts: s.Check,
	})
	if err != nil {
		return nil, err
	}
	rep.Fuzz = &FuzzInfo{Runs: res.Runs, TotalOps: res.TotalOps, Found: res.Found(), Seed: res.Seed}
	if !res.Found() {
		rep.Verdict = VerdictOK
		rep.Detail = fmt.Sprintf("no violation in %d runs", res.Runs)
		return rep, nil
	}
	rep.Verdict = VerdictViolation
	rep.Detail = fmt.Sprintf("violation at seed %d: %s", res.Seed, res.Violation)
	wi := &WitnessInfo{
		WindowStart: res.Violation.Start,
		WindowEnd:   res.Violation.End,
		MinT:        res.Violation.MinT,
		History:     res.Violation.Window.String(),
	}
	if res.Witness != nil {
		wi.History = res.Witness.History.String()
		wi.Shrunk = &ShrunkInfo{
			Ops:         res.Witness.Ops,
			Trials:      res.Witness.Trials,
			SimDiverged: res.Witness.Replay != nil && res.Witness.Replay.Diverged,
		}
		if res.Witness.Replay != nil && res.Witness.Replay.Diverged {
			wi.Shrunk.Proc = res.Witness.Replay.Proc
			wi.Shrunk.Op = res.Witness.Replay.Op.String()
			wi.Shrunk.Got = res.Witness.Replay.Got
			wi.Shrunk.Want = res.Witness.Replay.Want
		}
	}
	rep.Witness = wi
	return rep, nil
}
