package scenario

import (
	"fmt"
	"runtime"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/wal"
)

// Recover runs the crash-recovery pipeline on the Live engine: recover a
// commit log (truncating any torn tail at the first bad frame), replay it
// against a fresh template — verifying every recorded response against the
// commit-determinism contract — and continue the run with fresh clients on
// top of the recovered state, online-monitoring the stitched history so
// the verdict covers the crash cut.
//
// The scenario parameterizes the continuation; zero-valued fields default
// from the log header, so Recover("run.wal", Scenario{}) continues a
// crashed run exactly as it was configured. Seed defaults to the header
// seed + 1 (the continuation draws fresh op streams; the header seed keeps
// pinning the recovered object's response choices). When s.WAL names a
// path, the recovered prefix is copied into it before the continuation
// appends, so the new log is self-contained and itself recoverable.
func Recover(walPath string, s Scenario) (*Report, error) {
	rec, err := wal.Recover(walPath)
	if err != nil {
		return nil, err
	}
	hdr := rec.Header
	if s.Procs <= 0 {
		s.Procs = hdr.Procs
	}
	if s.Ops <= 0 {
		s.Ops = hdr.Ops
	}
	if s.Workload == "" {
		s.Workload = hdr.Workload
	}
	if s.Policy == "" {
		s.Policy = hdr.Policy
	}
	if s.Tolerance == 0 {
		s.Tolerance = hdr.Tolerance
	}
	if s.Seed == 0 {
		s.Seed = hdr.Seed + 1
	}
	s.Impl = hdr.Object
	s.LiveValue, s.ImplValue = nil, nil
	s = s.withDefaults()

	policy, err := s.resolvePolicy()
	if err != nil {
		return nil, err
	}
	fspec, err := s.resolveFaults()
	if err != nil {
		return nil, err
	}
	// The template covers the crashed run's procs plus the continuation
	// clients and replays with the original seed: response choices of
	// eventually linearizable objects are a pure function of (seed, ticket),
	// which is what makes the recorded log verifiable at all.
	template, err := registry.LiveObject(hdr.Object, hdr.Procs+s.Procs, policy, hdr.Seed, s.Check)
	if err != nil {
		return nil, fmt.Errorf("scenario: recover %s: %w", walPath, err)
	}
	rr, err := live.Resume(template, rec)
	if err != nil {
		return nil, err
	}
	gen, err := registry.OpGenByName(s.Workload, rr.Object.Spec())
	if err != nil {
		return nil, err
	}
	stride := 0
	if !s.NoMonitor {
		stride, err = monitorStride(rr.Object, hdr.Procs+s.Procs, s.Stride)
		if err != nil {
			return nil, err
		}
	}
	cfg := live.Config{
		Object:        rr.Object,
		Clients:       s.Procs,
		Ops:           s.Ops,
		Gen:           gen,
		Seed:          s.Seed,
		Rate:          s.Rate,
		Monitor:       check.IncrementalConfig{Stride: stride, MaxT: s.Tolerance, Opts: s.Check},
		NoMonitor:     s.NoMonitor,
		LatencySample: s.LatencySample,
		Faults:        fspec,
		Serial:        s.Serial,
		StartSeq:      rr.NextSeq,
		ProcBase:      hdr.Procs,
		History:       rr.History,
	}
	if s.WAL != "" {
		pol, err := wal.ParseSyncPolicy(s.WALSync)
		if err != nil {
			return nil, err
		}
		log, err := wal.Create(s.WAL, wal.Header{
			Object:    hdr.Object,
			ObjName:   hdr.ObjName,
			Procs:     hdr.Procs + s.Procs,
			Ops:       s.Ops,
			Workload:  s.Workload,
			Policy:    s.Policy,
			Seed:      hdr.Seed,
			Tolerance: s.Tolerance,
		}, pol)
		if err != nil {
			return nil, err
		}
		for i, e := range rec.Events {
			if err := log.Append(e, rec.Pos[i]); err != nil {
				log.Close()
				return nil, fmt.Errorf("scenario: recover: copying prefix into %s: %w", s.WAL, err)
			}
		}
		cfg.Sink = log
	} else if s.WALSync != "" {
		return nil, fmt.Errorf("scenario: WALSync %q set without a WAL path", s.WALSync)
	}

	res, err := live.Run(cfg)
	if err != nil {
		return nil, err
	}
	rep := &Report{Schema: Schema, Engine: "live", Scenario: s.info("live")}
	rep.history = res.History
	rep.Recovery = &RecoveryInfo{
		Frames:           rec.Frames,
		Torn:             rec.Torn,
		TornAt:           rec.TornAt,
		RecoveredEvents:  len(rec.Events),
		RecoveredCommits: rr.Committed,
		PendingOps:       rr.Pending,
		ResumedSeq:       rr.NextSeq,
		ContinuedOps:     res.Ops,
		StitchedEvents:   res.History.Len(),
	}
	rep.Perf = &PerfInfo{
		Ops:            res.Ops,
		Events:         res.History.Len(),
		NS:             res.Elapsed.Nanoseconds(),
		ThroughputOpsS: res.Throughput,
		P50NS:          res.LatP50.Nanoseconds(),
		P95NS:          res.LatP95.Nanoseconds(),
		P99NS:          res.LatP99.Nanoseconds(),
		Gomaxprocs:     runtime.GOMAXPROCS(0),
	}
	if !s.NoMonitor {
		rep.Trend = trendInfo(res.Verdict)
	}
	if res.Violation != nil {
		rep.Verdict = VerdictViolation
		rep.Detail = res.Violation.String()
		wi, err := witnessOf(res.Violation, s)
		if err != nil {
			return nil, err
		}
		rep.Witness = wi
		return rep, nil
	}
	rep.Verdict = VerdictOK
	switch {
	case res.Crashed:
		rep.Detail = fmt.Sprintf("recovered %d commits, then crashed again at commit %d (injected fault)",
			rr.Committed, res.CrashTicket)
	case rec.Torn:
		rep.Detail = fmt.Sprintf("recovered %d commits from a torn log (cut at byte %d) and continued %d ops; stitched history within tolerance",
			rr.Committed, rec.TornAt, res.Ops)
	default:
		rep.Detail = fmt.Sprintf("recovered %d commits and continued %d ops; stitched history within tolerance",
			rr.Committed, res.Ops)
	}
	return rep, nil
}
