package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
)

// Schema is the Report JSON schema identifier. Bump it on any
// backwards-incompatible change to the encoding; the golden tests pin the
// current shape.
const Schema = "elin/report/v1"

// Verdict values.
const (
	// VerdictOK: the scenario passed its engine's check (within tolerance,
	// up to the configured bounds).
	VerdictOK = "ok"
	// VerdictViolation: the engine produced a counterexample (a violating
	// interleaving, a history beyond tolerance, or a flagged monitor
	// window).
	VerdictViolation = "violation"
)

// ScenarioInfo echoes the resolved scenario a report describes, with
// engine-relevant fields only.
type ScenarioInfo struct {
	Name        string `json:"name,omitempty"`
	Impl        string `json:"impl"`
	Workload    string `json:"workload"`
	Scheduler   string `json:"scheduler,omitempty"`
	Chooser     string `json:"chooser,omitempty"`
	Policy      string `json:"policy"`
	Analysis    string `json:"analysis,omitempty"`
	Procs       int    `json:"procs"`
	Ops         int    `json:"ops"`
	Seed        int64  `json:"seed"`
	Tolerance   int    `json:"tolerance"`
	Depth       int    `json:"depth,omitempty"`
	VerifyDepth int    `json:"verify_depth,omitempty"`
	MaxSteps    int    `json:"max_steps,omitempty"`
	Workers     int    `json:"workers,omitempty"`
	// Faults is the canonical fault-injection spec of a Live run ("" when
	// nothing is injected); Serial reports the deterministic serial driver.
	Faults string `json:"faults,omitempty"`
	Serial bool   `json:"serial,omitempty"`
	// NetFaults is the canonical network fault spec of a Serve run ("" when
	// nothing is injected); WALSync the resolved durability policy of a run
	// writing a commit log ("" when none is).
	NetFaults string `json:"net_faults,omitempty"`
	WALSync   string `json:"wal_sync,omitempty"`
	// Monitor is the canonical monitor spec of a Live/Serve run ("" for the
	// default full exhaustive monitor).
	Monitor string `json:"monitor,omitempty"`
}

// Checks reports the after-the-fact decision procedures an engine ran on
// its recorded history.
type Checks struct {
	// Linearizable / WeaklyConsistent are the per-history verdicts, when
	// computed.
	Linearizable     *bool `json:"linearizable,omitempty"`
	WeaklyConsistent *bool `json:"weakly_consistent,omitempty"`
	// MinT is the least t making the history t-linearizable; nil when the
	// history is not t-linearizable for any t or the check did not run.
	MinT *int `json:"min_t,omitempty"`
	// ReplayIdentical reports the Live engine's byte-identical replay
	// verification (reproducibility from seed + commit order).
	ReplayIdentical *bool `json:"replay_identical,omitempty"`
}

// TrendSample is one (prefix events, MinT) measurement.
type TrendSample struct {
	Events int `json:"events"`
	MinT   int `json:"min_t"`
}

// TrendInfo is the MinT-trend classification over growing prefixes (Sim)
// or monitor windows (Live).
type TrendInfo struct {
	Trend     string  `json:"trend"`
	FinalMinT int     `json:"final_min_t"`
	Slope     float64 `json:"slope"`
	// Windows counts the measurements taken; it stays meaningful when an
	// archiver strips the sample list.
	Windows int           `json:"windows"`
	Samples []TrendSample `json:"samples,omitempty"`
}

// ExploreInfo aggregates exhaustive-exploration counters.
type ExploreInfo struct {
	Nodes     int  `json:"nodes"`
	Leaves    int  `json:"leaves"`
	Truncated bool `json:"truncated"`
	Deduped   int  `json:"deduped,omitempty"`
}

// ValencyInfo is the AnalysisValency summary.
type ValencyInfo struct {
	RootValence         []int64 `json:"root_valence"`
	Truncated           bool    `json:"truncated"`
	Multivalent         int     `json:"multivalent"`
	Univalent           int     `json:"univalent"`
	Criticals           int     `json:"criticals"`
	AgreementViolations int     `json:"agreement_violations"`
}

// StableInfo is the AnalysisStable summary.
type StableInfo struct {
	Depth         int `json:"depth"`
	T             int `json:"t"`
	NodesSearched int `json:"nodes_searched"`
	VerifyNodes   int `json:"verify_nodes"`
	VerifyLeaves  int `json:"verify_leaves"`
}

// ShrunkInfo describes a ddmin-minimized, simulator-confirmed live
// witness.
type ShrunkInfo struct {
	Ops         int     `json:"ops"`
	Trials      int     `json:"trials"`
	SimDiverged bool    `json:"sim_diverged"`
	Proc        int     `json:"proc,omitempty"`
	Op          string  `json:"op,omitempty"`
	Got         int64   `json:"got,omitempty"`
	Want        []int64 `json:"want,omitempty"`
}

// WitnessInfo carries a counterexample: the violating history (rendered in
// the compact text serialization) plus engine-specific context.
type WitnessInfo struct {
	// History is the violating history, text-serialized.
	History string `json:"history,omitempty"`
	// WindowStart/WindowEnd locate a Live monitor window in the merged
	// history ([start, end) event indexes).
	WindowStart int `json:"window_start,omitempty"`
	WindowEnd   int `json:"window_end,omitempty"`
	// MinT is the measured MinT of the violating history/window (-1: not
	// t-linearizable for any t).
	MinT int `json:"min_t"`
	// Shrunk describes the minimized witness, when shrinking ran.
	Shrunk *ShrunkInfo `json:"shrunk,omitempty"`
}

// PerfInfo carries the measured execution characteristics. Wall-clock
// fields are inherently run-dependent; Canonical zeroes them for golden
// comparisons.
type PerfInfo struct {
	// Steps is the number of atomic steps (Sim).
	Steps int `json:"steps,omitempty"`
	// TimedOut reports a Sim run cut off by MaxSteps.
	TimedOut bool `json:"timed_out,omitempty"`
	// Ops counts completed operations, Events recorded history events.
	Ops    int `json:"ops"`
	Events int `json:"events"`
	// NS is wall-clock run time in nanoseconds (Live).
	NS int64 `json:"ns,omitempty"`
	// ThroughputOpsS is completed operations per second (Live).
	ThroughputOpsS float64 `json:"throughput_ops_s,omitempty"`
	// P50NS/P95NS/P99NS are latency percentiles in nanoseconds (Live).
	P50NS int64 `json:"p50_ns,omitempty"`
	P95NS int64 `json:"p95_ns,omitempty"`
	P99NS int64 `json:"p99_ns,omitempty"`
	// Gomaxprocs records the scheduler parallelism the run had available.
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	// Overloaded reports that the Serve engine's overload controller
	// degraded the monitor to sampling; MonSampleEvery is the widest
	// sampling interval reached (0 when never degraded), MonWindowsSkipped
	// the windows that skipped their MinT search (their events still fold
	// into the incremental state), MonEscalations the near-violation
	// escalations back to exhaustive checking.
	Overloaded        bool `json:"overloaded,omitempty"`
	MonSampleEvery    int  `json:"mon_sample_every,omitempty"`
	MonWindowsSkipped int  `json:"mon_windows_skipped,omitempty"`
	MonEscalations    int  `json:"mon_escalations,omitempty"`
}

// NetInfo describes what the Serve engine's client fleet endured on the
// wire: reconnects and resends under the network fault plane, and the
// exactly-once ledger (Lost/Duplicated are the contract — both zero on any
// ok report).
type NetInfo struct {
	Clients    int `json:"clients"`
	Retries    int `json:"retries,omitempty"`
	Reconnects int `json:"reconnects,omitempty"`
	Refused    int `json:"refused,omitempty"`
	Lost       int `json:"lost"`
	Duplicated int `json:"duplicated"`
}

// RecoveryInfo describes a crash-recovery pipeline: what a commit log
// yielded, how the replay resumed, and how far the continuation ran.
type RecoveryInfo struct {
	// Frames counts the intact event frames decoded from the log; Torn
	// reports a tail cut mid-frame (TornAt: the byte offset of the first
	// bad frame — everything before it recovered).
	Frames int   `json:"frames"`
	Torn   bool  `json:"torn,omitempty"`
	TornAt int64 `json:"torn_at,omitempty"`
	// RecoveredEvents/RecoveredCommits describe the replayed prefix:
	// history events recovered, completed operations replayed into the
	// object. PendingOps counts invocations lost in flight at the crash.
	RecoveredEvents  int `json:"recovered_events"`
	RecoveredCommits int `json:"recovered_commits"`
	PendingOps       int `json:"pending_ops,omitempty"`
	// ResumedSeq is the commit ticket the continuation started from.
	ResumedSeq uint64 `json:"resumed_seq"`
	// ContinuedOps counts the continuation run's completed operations;
	// StitchedEvents is the total stitched history length (recovered
	// prefix plus continuation).
	ContinuedOps   int `json:"continued_ops"`
	StitchedEvents int `json:"stitched_events"`
}

// FuzzInfo summarizes a Live fuzz campaign.
type FuzzInfo struct {
	Runs     int   `json:"runs"`
	TotalOps int   `json:"total_ops"`
	Found    bool  `json:"found"`
	Seed     int64 `json:"seed,omitempty"`
}

// Report is the unified outcome every engine returns. Its JSON encoding is
// stable (schema-tagged and golden-tested); nil sections are omitted, so a
// report only carries the sections its engine produces.
type Report struct {
	Schema   string       `json:"schema"`
	Engine   string       `json:"engine"`
	Scenario ScenarioInfo `json:"scenario"`
	Verdict  string       `json:"verdict"`
	// Detail is a one-line human-readable summary of the verdict.
	Detail  string       `json:"detail,omitempty"`
	Checks  *Checks      `json:"checks,omitempty"`
	Trend   *TrendInfo   `json:"trend,omitempty"`
	Explore *ExploreInfo `json:"explore,omitempty"`
	Valency *ValencyInfo `json:"valency,omitempty"`
	Stable  *StableInfo  `json:"stable,omitempty"`
	Witness *WitnessInfo `json:"witness,omitempty"`
	Perf    *PerfInfo    `json:"perf,omitempty"`
	// Net is present on Serve reports whose client fleet ran.
	Net  *NetInfo  `json:"net,omitempty"`
	Fuzz *FuzzInfo `json:"fuzz,omitempty"`
	// Recovery is present on reports of the crash-recovery pipeline
	// (scenario.Recover): log recovery, replay, continuation.
	Recovery *RecoveryInfo `json:"recovery,omitempty"`

	// history is the recorded history of the engines that keep one (Sim,
	// Live). Unexported: it never enters the JSON encoding.
	history *history.History
}

// History returns the engine's recorded history (Sim: the run's history;
// Live: the merged history), or nil for engines that do not keep one.
func (r *Report) History() *history.History { return r.history }

// OK reports whether the verdict is VerdictOK.
func (r *Report) OK() bool { return r.Verdict == VerdictOK }

// Canonical returns a deep copy with every wall-clock-dependent field
// zeroed (run time, throughput, latency percentiles, GOMAXPROCS), so that
// reports of deterministic scenarios compare byte-for-byte across runs and
// machines — the form the golden tests pin. Every section pointer is
// copied, so mutating the canonical report never touches the original.
func (r *Report) Canonical() *Report {
	cp := *r
	cp.Checks = copyPtr(r.Checks)
	cp.Explore = copyPtr(r.Explore)
	cp.Valency = copyPtr(r.Valency)
	if cp.Valency != nil {
		cp.Valency.RootValence = append([]int64(nil), r.Valency.RootValence...)
	}
	cp.Stable = copyPtr(r.Stable)
	cp.Fuzz = copyPtr(r.Fuzz)
	cp.Recovery = copyPtr(r.Recovery)
	if r.Trend != nil {
		trend := *r.Trend
		trend.Samples = append([]TrendSample(nil), r.Trend.Samples...)
		cp.Trend = &trend
	}
	if r.Witness != nil {
		wit := *r.Witness
		wit.Shrunk = copyPtr(r.Witness.Shrunk)
		if wit.Shrunk != nil {
			wit.Shrunk.Want = append([]int64(nil), wit.Shrunk.Want...)
		}
		cp.Witness = &wit
	}
	if r.Perf != nil {
		perf := *r.Perf
		perf.NS = 0
		perf.ThroughputOpsS = 0
		perf.P50NS, perf.P95NS, perf.P99NS = 0, 0, 0
		perf.Gomaxprocs = 0
		// Overload and sampling depend on load timing, not the scenario.
		perf.Overloaded = false
		perf.MonSampleEvery, perf.MonWindowsSkipped, perf.MonEscalations = 0, 0, 0
		cp.Perf = &perf
	}
	if r.Net != nil {
		net := *r.Net
		// Reconnect counts ride wall-clock races (when a drop fires relative
		// to in-flight requests, how often a partitioned client knocks); the
		// exactly-once ledger and the fleet size are the scenario's contract.
		net.Retries, net.Reconnects, net.Refused = 0, 0, 0
		cp.Net = &net
	}
	return &cp
}

// copyPtr shallow-copies a section pointer (nil-safe).
func copyPtr[T any](p *T) *T {
	if p == nil {
		return nil
	}
	cp := *p
	return &cp
}

// EncodeJSON writes the report's stable JSON encoding (indented, trailing
// newline).
func (r *Report) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Render writes the human-readable form of the report.
func (r *Report) Render(w io.Writer) error {
	sc := r.Scenario
	fmt.Fprintf(w, "engine=%s impl=%s workload=%s procs=%d ops=%d seed=%d",
		r.Engine, sc.Impl, sc.Workload, sc.Procs, sc.Ops, sc.Seed)
	if sc.NetFaults != "" {
		fmt.Fprintf(w, " net-faults=%s", sc.NetFaults)
	}
	if sc.WALSync != "" {
		fmt.Fprintf(w, " wal-sync=%s", sc.WALSync)
	}
	if sc.Monitor != "" {
		fmt.Fprintf(w, " monitor=%s", sc.Monitor)
	}
	fmt.Fprintln(w)
	if r.Detail != "" {
		fmt.Fprintf(w, "verdict: %s (%s)\n", r.Verdict, r.Detail)
	} else {
		fmt.Fprintf(w, "verdict: %s\n", r.Verdict)
	}
	if c := r.Checks; c != nil {
		fmt.Fprintf(w, "checks:")
		if c.Linearizable != nil {
			fmt.Fprintf(w, " linearizable=%v", *c.Linearizable)
		}
		if c.WeaklyConsistent != nil {
			fmt.Fprintf(w, " weakly-consistent=%v", *c.WeaklyConsistent)
		}
		if c.MinT != nil {
			fmt.Fprintf(w, " MinT=%d", *c.MinT)
		}
		if c.ReplayIdentical != nil {
			fmt.Fprintf(w, " replay-identical=%v", *c.ReplayIdentical)
		}
		fmt.Fprintln(w)
	}
	if t := r.Trend; t != nil {
		fmt.Fprintf(w, "trend: %s final-MinT=%d slope=%.4f windows=%d\n",
			t.Trend, t.FinalMinT, t.Slope, t.Windows)
	}
	if e := r.Explore; e != nil {
		fmt.Fprintf(w, "explored: nodes=%d leaves=%d truncated=%v", e.Nodes, e.Leaves, e.Truncated)
		if e.Deduped > 0 {
			fmt.Fprintf(w, " deduped=%d", e.Deduped)
		}
		fmt.Fprintln(w)
	}
	if v := r.Valency; v != nil {
		fmt.Fprintf(w, "valency: root=%v multivalent=%d univalent=%d critical=%d agreement-violations=%d truncated=%v\n",
			v.RootValence, v.Multivalent, v.Univalent, v.Criticals, v.AgreementViolations, v.Truncated)
	}
	if s := r.Stable; s != nil {
		fmt.Fprintf(w, "stable: depth=%d t=%d searched=%d verify-nodes=%d verify-leaves=%d\n",
			s.Depth, s.T, s.NodesSearched, s.VerifyNodes, s.VerifyLeaves)
	}
	if p := r.Perf; p != nil {
		if r.Engine == "sim" {
			fmt.Fprintf(w, "run: steps=%d timedout=%v ops=%d events=%d\n",
				p.Steps, p.TimedOut, p.Ops, p.Events)
		} else {
			fmt.Fprintf(w, "run: ops=%d events=%d", p.Ops, p.Events)
			if p.NS > 0 {
				fmt.Fprintf(w, " ns=%d throughput=%.0f/s p50=%dns p95=%dns p99=%dns",
					p.NS, p.ThroughputOpsS, p.P50NS, p.P95NS, p.P99NS)
			}
			if p.Overloaded {
				fmt.Fprintf(w, " overloaded sample-every=%d skipped=%d escalations=%d",
					p.MonSampleEvery, p.MonWindowsSkipped, p.MonEscalations)
			}
			fmt.Fprintln(w)
		}
	}
	if n := r.Net; n != nil {
		fmt.Fprintf(w, "net: clients=%d retries=%d reconnects=%d refused=%d lost=%d duplicated=%d\n",
			n.Clients, n.Retries, n.Reconnects, n.Refused, n.Lost, n.Duplicated)
	}
	if rc := r.Recovery; rc != nil {
		fmt.Fprintf(w, "recovery: frames=%d", rc.Frames)
		if rc.Torn {
			fmt.Fprintf(w, " torn@%d", rc.TornAt)
		}
		fmt.Fprintf(w, " events=%d commits=%d", rc.RecoveredEvents, rc.RecoveredCommits)
		if rc.PendingOps > 0 {
			fmt.Fprintf(w, " pending=%d", rc.PendingOps)
		}
		fmt.Fprintf(w, " resumed-seq=%d continued-ops=%d stitched-events=%d\n",
			rc.ResumedSeq, rc.ContinuedOps, rc.StitchedEvents)
	}
	if f := r.Fuzz; f != nil {
		fmt.Fprintf(w, "fuzz: runs=%d total-ops=%d found=%v", f.Runs, f.TotalOps, f.Found)
		if f.Found {
			fmt.Fprintf(w, " seed=%d", f.Seed)
		}
		fmt.Fprintln(w)
	}
	if wi := r.Witness; wi != nil {
		if wi.Shrunk != nil {
			fmt.Fprintf(w, "shrunk to %d ops in %d trials; sim replay diverged=%v\n",
				wi.Shrunk.Ops, wi.Shrunk.Trials, wi.Shrunk.SimDiverged)
			if wi.Shrunk.SimDiverged {
				fmt.Fprintf(w, "sim: p%d %s got %d, model permits %v\n",
					wi.Shrunk.Proc, wi.Shrunk.Op, wi.Shrunk.Got, wi.Shrunk.Want)
			}
		}
		if wi.History != "" {
			fmt.Fprintln(w, "witness history:")
			fmt.Fprint(w, wi.History)
		}
	}
	return nil
}

// trendInfo converts a checker verdict, including its samples.
func trendInfo(v check.Verdict) *TrendInfo {
	t := &TrendInfo{
		Trend:     v.Trend.String(),
		FinalMinT: v.FinalMinT,
		Slope:     v.Slope,
	}
	for _, s := range v.Samples {
		t.Samples = append(t.Samples, TrendSample{Events: s.Events, MinT: s.MinT})
	}
	t.Windows = len(t.Samples)
	return t
}

func boolPtr(b bool) *bool { return &b }
func intPtr(v int) *int    { return &v }
