package scenario

import (
	"fmt"
	"net"
	"runtime"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/loadgen"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/server"
	"github.com/elin-go/elin/internal/wal"
)

// Serve is the networked engine: the object under test goes behind a
// framed-TCP server (package server) and a fleet of Procs retrying clients
// (package loadgen) drives it over real connections, through the network
// fault plane when one is configured. The online monitor runs server-side
// on the merged commit stream and degrades to window sampling under
// overload; the fleet's exactly-once ledger (lost/duplicated commits) is
// part of the verdict alongside the monitor's.
//
// A self-contained Run stands the server up on a loopback port, runs the
// fleet, and shuts down. The CLI's long-lived `elin serve` uses the same
// construction through BuildServer/ServerReport and owns the listener
// itself.
type Serve struct{}

// Name implements Engine.
func (Serve) Name() string { return "serve" }

// BuildServer resolves a scenario into a ready-to-Serve server instance —
// the construction half of the Serve engine, exported for the long-lived
// CLI server. The caller owns the listener and the Shutdown; the server
// owns the commit log (when the scenario writes one) and closes it on
// Shutdown.
func BuildServer(s Scenario) (*server.Server, error) {
	s = s.withDefaults()
	if err := s.rejectNonServe(); err != nil {
		return nil, err
	}
	obj, err := s.resolveLive()
	if err != nil {
		return nil, err
	}
	nf, err := registry.NetFaults(s.NetFaults)
	if err != nil {
		return nil, err
	}
	mspec, err := s.resolveMonitor()
	if err != nil {
		return nil, err
	}
	stride := 0
	if !s.monitorOff() {
		stride, err = monitorStride(obj, s.Procs, s.Stride)
		if err != nil {
			return nil, err
		}
	}
	var sink live.CommitSink
	if s.WAL != "" {
		pol, err := wal.ParseSyncPolicy(s.WALSync)
		if err != nil {
			return nil, err
		}
		log, err := wal.Create(s.WAL, wal.Header{
			Object:    s.implName(),
			ObjName:   obj.Name(),
			Procs:     s.Procs,
			Ops:       s.Ops,
			Workload:  orDefault(s.Workload, DefaultWorkload),
			Policy:    orDefault(s.Policy, DefaultPolicy),
			Seed:      s.Seed,
			Tolerance: s.Tolerance,
		}, pol)
		if err != nil {
			return nil, err
		}
		sink = log
	} else if s.WALSync != "" {
		return nil, fmt.Errorf("scenario: WALSync %q set without a WAL path", s.WALSync)
	}
	return server.New(server.Config{
		Object:      obj,
		Clients:     s.Procs,
		Seed:        s.Seed,
		Monitor:     check.IncrementalConfig{Stride: stride, MaxT: s.Tolerance, Opts: s.Check},
		MonitorSpec: mspec,
		NoMonitor:   s.NoMonitor,
		NetFaults:   nf,
		Sink:        sink,
	})
}

// ServerReport converts a finished server run into the unified Report: the
// Summary is the server side (merged history, monitor verdict, overload
// degradation), res the fleet side when one ran (nil for a long-lived
// server whose clients were external). Replay verification is the caller's
// step — it needs a fresh object.
func ServerReport(s Scenario, sum *server.Summary, res *loadgen.Result) *Report {
	s = s.withDefaults()
	rep := &Report{Schema: Schema, Engine: "serve", Scenario: s.info("serve")}
	rep.history = sum.History
	perf := &PerfInfo{
		Ops:               int(sum.Commits),
		Events:            sum.Events,
		Gomaxprocs:        runtime.GOMAXPROCS(0),
		Overloaded:        sum.Overloaded,
		MonWindowsSkipped: sum.MonSkipped,
		MonEscalations:    sum.MonEscalations,
	}
	if sum.MonMaxSampleEvery > 1 {
		perf.MonSampleEvery = sum.MonMaxSampleEvery
	}
	if res != nil {
		perf.Ops = res.Completed
		perf.NS = int64(res.Elapsed)
		perf.ThroughputOpsS = res.Throughput()
		perf.P50NS, perf.P95NS, perf.P99NS = res.P50NS, res.P95NS, res.P99NS
		rep.Net = &NetInfo{
			Clients:    res.Clients,
			Retries:    res.Retries,
			Reconnects: res.Reconnects,
			Refused:    res.Refused,
			Lost:       res.Lost,
			Duplicated: res.Duplicated,
		}
	}
	rep.Perf = perf
	if s.monitorOff() {
		rep.Verdict = VerdictOK
		rep.Detail = "run completed (monitoring disabled)"
	} else {
		rep.Trend = trendInfo(sum.Verdict)
		if v := sum.Violation; v != nil {
			rep.Verdict = VerdictViolation
			rep.Detail = v.String()
			// The window is reported as-is: shrink-to-simulator is the live
			// engine's pipeline; a networked witness replays with elin sim.
			rep.Witness = &WitnessInfo{
				WindowStart: v.Start,
				WindowEnd:   v.End,
				MinT:        v.MinT,
				History:     v.Window.String(),
			}
		} else {
			rep.Verdict = VerdictOK
			rep.Detail = "no monitor window exceeded tolerance"
		}
	}
	if res != nil && (res.Lost > 0 || res.Duplicated > 0) {
		rep.Verdict = VerdictViolation
		rep.Detail = fmt.Sprintf("exactly-once broken: %d lost, %d duplicated commits (%s)",
			res.Lost, res.Duplicated, rep.Detail)
	}
	if rep.Verdict == VerdictOK && sum.Overloaded {
		rep.Detail += "; monitor degraded to sampling under overload"
	}
	return rep
}

// Run implements Engine: a self-contained serve run on a loopback port.
func (Serve) Run(s Scenario) (*Report, error) {
	s = s.withDefaults()
	srv, err := BuildServer(s)
	if err != nil {
		return nil, err
	}
	// A fresh resolve for the fleet's generator and the replay check; the
	// served instance accumulates state.
	obj, err := s.resolveLive()
	if err != nil {
		return nil, err
	}
	gen, err := registry.OpGenByName(s.Workload, obj.Spec())
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("scenario: serve: %w", err)
	}
	srv.Serve(ln)
	res, lerr := loadgen.Run(loadgen.Config{
		Addr:          ln.Addr().String(),
		Clients:       s.Procs,
		Ops:           s.Ops,
		Gen:           gen,
		Seed:          s.Seed,
		Rate:          s.Rate,
		LatencySample: s.LatencySample,
	})
	sum, serr := srv.Shutdown()
	if lerr != nil && res == nil {
		return nil, lerr // the fleet never ran (config error)
	}
	if serr != nil {
		return nil, serr
	}
	rep := ServerReport(s, sum, res)
	if lerr != nil {
		// The fleet ran but a client gave up: the partial result (and its
		// lost ops) is the report, the error its verdict.
		rep.Verdict = VerdictViolation
		rep.Detail = fmt.Sprintf("fleet failed: %v", lerr)
		return rep, nil
	}
	if rep.Verdict == VerdictOK && !s.NoVerify {
		same, err := live.Verify(obj, sum.History)
		if err != nil {
			return nil, err
		}
		rep.Checks = &Checks{ReplayIdentical: boolPtr(same)}
	}
	return rep, nil
}
