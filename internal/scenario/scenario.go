// Package scenario is the declarative entry point of the toolkit: one
// Scenario value — object/implementation, workload, scheduler, checker
// options, tolerance, budget, workers, seed — runs unchanged on every
// execution engine, and every engine answers with the same unified Report.
//
// The four engines cover the four regimes the repository implements:
//
//   - Explore: bounded exhaustive model checking of every interleaving
//     (and every weakly consistent response choice), with valency analysis
//     and stable-configuration search (packages explore/sim);
//   - Sim: one deterministic seeded simulation run under a named scheduler
//     and base-object adversary, checked after the fact (package sim);
//   - Live: real goroutine clients hammering a genuinely shared object
//     with online windowed monitoring, fuzzing and shrink-to-simulator
//     replay (package live);
//   - Serve: the same object behind a framed-TCP server, driven by a
//     retrying client fleet through the network fault plane, with the
//     online monitor running server-side (packages server/loadgen).
//
// Implementations, workloads, schedulers, choosers, policies and engines
// are all resolved by registry name, so adding one registry entry lights up
// every engine and the elin CLI at once; direct values (ImplValue,
// LiveValue) are accepted for programmatic use.
package scenario

import (
	"fmt"
	"strings"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/faults"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/wal"
)

// Analysis names the exhaustive-exploration analyses of the Explore
// engine.
const (
	// AnalysisLin certifies linearizability of every bounded interleaving.
	AnalysisLin = "lin"
	// AnalysisWeak certifies weak consistency of every bounded
	// interleaving.
	AnalysisWeak = "weak"
	// AnalysisValency runs the Proposition 15 valency analysis.
	AnalysisValency = "valency"
	// AnalysisStable searches for a Proposition 18 stable configuration.
	AnalysisStable = "stable"
)

// The documented scenario defaults, exported so grid expansion (package
// campaign) resolves omitted axes to exactly what a bare scenario runs.
const (
	// DefaultImpl is the implementation an empty Impl resolves to.
	DefaultImpl = "cas-counter"
	// DefaultWorkload is the workload an empty Workload resolves to.
	DefaultWorkload = "default"
	// DefaultPolicy is the policy an empty Policy resolves to.
	DefaultPolicy = "immediate"
	// DefaultProcs/DefaultOps are the process and per-process operation
	// counts when unset.
	DefaultProcs = 2
	DefaultOps   = 2
)

// Budget bounds a scenario's execution per engine regime. The zero value
// picks sensible defaults everywhere.
type Budget struct {
	// Depth is the exploration horizon in atomic steps (Explore; default
	// 16).
	Depth int `json:"depth,omitempty"`
	// VerifyDepth is the stability-verification horizon of the stable
	// search (Explore with AnalysisStable; default 14).
	VerifyDepth int `json:"verify_depth,omitempty"`
	// MaxSteps bounds a simulation run (Sim; 0 = the sim default, 1<<16).
	MaxSteps int `json:"max_steps,omitempty"`
}

// Scenario is one declarative description of an execution to check. The
// zero value of every field is meaningful: an empty scenario explores the
// default implementation under the default workload.
type Scenario struct {
	// Name optionally labels the scenario in reports.
	Name string

	// Impl names the object under test in the registry ("cas-counter",
	// "warmup-counter:8", ...). The Live engine additionally accepts the
	// live-native objects ("atomic-fi", "junk-fi:40", ...); registry
	// implementation names run live through the mutex-serialized
	// step-machine adapter. Default "cas-counter".
	Impl string
	// ImplValue overrides Impl with a direct implementation value for the
	// Explore and Sim engines.
	ImplValue machine.Impl
	// LiveValue overrides Impl with a direct object value for the Live
	// engine.
	LiveValue live.Object

	// Workload names the operation mix: "default", "uniform:OP", "rw:P".
	Workload string
	// Procs is the number of processes (Explore, Sim) or client goroutines
	// (Live). Default 2.
	Procs int
	// Ops is the number of operations per process/client. Default 2.
	Ops int

	// Scheduler names the Sim scheduler ("rr", "random", "solo:P",
	// "burst:N"). The Explore engine quantifies over all schedules and the
	// Live engine schedules for real, so both ignore it.
	Scheduler string
	// Chooser names the Sim base-object response adversary ("true",
	// "stale", "mix:P"). Explore quantifies over all choices; Live draws
	// choices from the seed.
	Chooser string
	// Policy names the stabilization policy of eventually linearizable
	// bases ("immediate", "never", "window:K"). Default "immediate".
	Policy string

	// Analysis selects the Explore engine's analysis (AnalysisLin,
	// AnalysisWeak, AnalysisValency, AnalysisStable). Default AnalysisLin.
	// The other engines ignore it.
	Analysis string

	// Tolerance is the t-linearizability tolerance of the verdict: Sim
	// reports a violation when the recorded history's MinT exceeds it, Live
	// when a monitor window's MinT does. 0 demands linearizability;
	// negative means observe-only (trend watching, never a violation).
	// Explore's analyses have their own verdicts and ignore it.
	Tolerance int
	// Budget bounds the execution.
	Budget Budget
	// Check tunes the decision procedures everywhere.
	Check check.Options
	// Workers is the exploration worker count (Explore; 0 = GOMAXPROCS).
	Workers int
	// Seed pins all randomness (Sim scheduling/choosing, Live per-client
	// streams and response choices).
	Seed int64

	// Dedup merges equivalent configurations during AnalysisValency.
	Dedup bool
	// CheckDeterminism re-steps every exploration probe on a second clone
	// (Explore; catches nondeterministic implementations).
	CheckDeterminism bool

	// Rate switches the Live engine to open-loop mode: each client issues
	// operations at Rate ops/second. 0 means closed loop.
	Rate float64
	// Stride is the online monitor's window stride in events (Live) and
	// the MinT-trend stride (Sim). 0 picks automatically.
	Stride int
	// LatencySample records one latency sample every N operations per
	// client (Live; default 1).
	LatencySample int
	// NoMonitor disables online monitoring (Live; pure throughput).
	NoMonitor bool
	// Monitor names the online monitor implementation for the Live and
	// Serve engines: "full" (default), "sample:N", "shard:K", "shard:key",
	// or "none" (record only, like NoMonitor). Empty means full. Echoed in
	// the report header and the campaign cell identity when non-default.
	Monitor string
	// NoCheck skips the after-the-fact decision procedures and MinT trend
	// of the Sim engine: the run executes and records only (history
	// export, raw timing). The verdict is always ok.
	NoCheck bool
	// Faults names a fault-injection spec for the Live engine: a registry
	// preset ("chaos", "stall-one", ...) or the faults grammar directly
	// ("stall:0@64+256,crash:5000,jitter:20,flip"). Empty or "none" injects
	// nothing. The Explore and Sim engines reject faulted scenarios: their
	// regimes already quantify over (or deterministically pick) schedules,
	// so wall-clock fault injection is meaningless there.
	Faults string
	// NetFaults names a network fault spec for the Serve engine: a registry
	// preset ("flaky-net", "partition-heal", ...) or the net-faults grammar
	// directly ("drop:0@40,slow:2:200,partition:120+40"). Empty or "none"
	// injects nothing. Every other engine rejects it: only the networked
	// runtime has connections to drop, sever or slow.
	NetFaults string
	// WAL, when non-empty, is a filesystem path the Live and Serve engines
	// write a durable commit log to (package wal), one CRC-framed record per
	// merged history event in commit order.
	WAL string
	// WALSync names the WAL durability policy: "always", "never" (default),
	// or "interval:N" (fsync every N appends).
	WALSync string
	// Serial switches the Live engine to the deterministic serial driver:
	// clients take round-robin turns on one goroutine, so the merged
	// history — and any WAL written from it — is byte-identical across
	// reruns of the same configuration. Faults retain their semantics
	// (stalls skip turns, jitter defers them, crashes cut the run).
	Serial bool
	// FuzzRuns, when positive, turns the Live engine into a fuzz campaign
	// over FuzzRuns consecutive seeds.
	FuzzRuns int
	// NoShrink reports a Live violation as-is instead of ddmin-shrinking
	// and sim-confirming it.
	NoShrink bool
	// NoVerify skips the byte-identical replay verification of a clean
	// Live run.
	NoVerify bool
}

// withDefaults returns s with the documented defaults filled in.
func (s Scenario) withDefaults() Scenario {
	if s.Impl == "" && s.ImplValue == nil && s.LiveValue == nil {
		s.Impl = DefaultImpl
	}
	if s.Procs <= 0 {
		s.Procs = DefaultProcs
	}
	if s.Ops <= 0 {
		s.Ops = DefaultOps
	}
	if s.Analysis == "" {
		s.Analysis = AnalysisLin
	}
	if s.Budget.Depth <= 0 {
		s.Budget.Depth = 16
	}
	if s.Budget.VerifyDepth <= 0 {
		s.Budget.VerifyDepth = 14
	}
	return s
}

// resolveImpl resolves the step-machine implementation of the Explore and
// Sim engines.
func (s Scenario) resolveImpl() (machine.Impl, error) {
	if s.ImplValue != nil {
		return s.ImplValue, nil
	}
	return registry.Impl(s.Impl)
}

// resolvePolicy resolves the stabilization policy.
func (s Scenario) resolvePolicy() (base.Policy, error) {
	return registry.Policy(s.Policy)
}

// implName names the object under test for reports.
func (s Scenario) implName() string {
	switch {
	case s.ImplValue != nil:
		return s.ImplValue.Name()
	case s.LiveValue != nil:
		return s.LiveValue.Name()
	default:
		return s.Impl
	}
}

// Engine executes scenarios in one regime. Implementations are stateless
// values; the same Scenario may be handed to every engine.
type Engine interface {
	// Name is the engine's registry name ("explore", "sim", "live").
	Name() string
	// Run executes the scenario and reports.
	Run(s Scenario) (*Report, error)
}

// Engines returns every engine, in registry-name order.
func Engines() []Engine { return []Engine{Explore{}, Live{}, Serve{}, Sim{}} }

// EngineByName resolves an engine by registry name ("" defaults to "sim").
func EngineByName(name string) (Engine, error) {
	canon, err := registry.Engine(name)
	if err != nil {
		return nil, err
	}
	switch canon {
	case "explore":
		return Explore{}, nil
	case "live":
		return Live{}, nil
	case "serve":
		return Serve{}, nil
	default:
		return Sim{}, nil
	}
}

// Run resolves the named engine and executes s on it — the one-call form
// the CLI uses.
func Run(engine string, s Scenario) (*Report, error) {
	e, err := EngineByName(engine)
	if err != nil {
		return nil, err
	}
	return e.Run(s)
}

// buildSystem constructs the simulation root for the Explore engine.
func buildSystem(s Scenario) (*sim.System, machine.Impl, error) {
	impl, err := s.resolveImpl()
	if err != nil {
		return nil, nil, err
	}
	workload, err := registry.WorkloadByName(s.Workload, impl, s.Procs, s.Ops)
	if err != nil {
		return nil, nil, err
	}
	policy, err := s.resolvePolicy()
	if err != nil {
		return nil, nil, err
	}
	root, err := sim.NewSystem(impl, workload, base.SamePolicy(policy), s.Check, false)
	if err != nil {
		return nil, nil, err
	}
	return root, impl, nil
}

// info echoes the resolved scenario into a report.
func (s Scenario) info(engine string) ScenarioInfo {
	inf := ScenarioInfo{
		Name:      s.Name,
		Impl:      s.implName(),
		Workload:  orDefault(s.Workload, DefaultWorkload),
		Policy:    orDefault(s.Policy, DefaultPolicy),
		Procs:     s.Procs,
		Ops:       s.Ops,
		Seed:      s.Seed,
		Tolerance: s.Tolerance,
	}
	switch engine {
	case "explore":
		inf.Analysis = s.Analysis
		inf.Depth = s.Budget.Depth
		if s.Analysis == AnalysisStable {
			inf.VerifyDepth = s.Budget.VerifyDepth
		}
		inf.Workers = s.Workers
	case "sim":
		inf.Scheduler = orDefault(s.Scheduler, "rr")
		inf.Chooser = orDefault(s.Chooser, "true")
		inf.MaxSteps = s.Budget.MaxSteps
	case "live":
		inf.Faults = s.faultsName()
		inf.Serial = s.Serial
		inf.WALSync = s.walSyncName()
		inf.Monitor = s.monitorName()
	case "serve":
		inf.NetFaults = s.netFaultsName()
		inf.WALSync = s.walSyncName()
		inf.Monitor = s.monitorName()
	}
	return inf
}

// resolveFaults resolves the fault spec: a registry preset name or the
// faults grammar. nil means no injection.
func (s Scenario) resolveFaults() (*faults.Spec, error) {
	return registry.Faults(s.Faults)
}

// rejectLiveOnly errors when a scenario carries live-only features into
// another engine. Explore quantifies over every schedule and Sim picks one
// deterministically, so wall-clock fault injection, commit logging and the
// serial driver have no meaning there — silently ignoring them would make
// a faulted campaign axis lie about what its explore/sim cells ran.
func (s Scenario) rejectLiveOnly(engine string) error {
	switch {
	case s.Faults != "" && s.Faults != "none":
		return fmt.Errorf("scenario: faults %q are a live-engine feature; engine %q rejects them (exclude faulted cells from %s sweeps)", s.Faults, engine, engine)
	case s.NetFaults != "" && s.NetFaults != "none":
		return fmt.Errorf("scenario: net-faults %q are a serve-engine feature; engine %q rejects them", s.NetFaults, engine)
	case s.WAL != "" || s.WALSync != "":
		return fmt.Errorf("scenario: WAL commit logging is a live/serve-engine feature; engine %q rejects it", engine)
	case s.Serial:
		return fmt.Errorf("scenario: the serial driver is a live-engine feature; engine %q rejects it", engine)
	case s.Monitor != "" && s.Monitor != "full":
		return fmt.Errorf("scenario: monitor %q selects the online monitor, a live/serve-engine feature; engine %q rejects it (exclude monitor cells from %s sweeps)", s.Monitor, engine, engine)
	}
	return nil
}

// rejectNonServe errors when a scenario carries another regime's features
// into the Serve engine: the process fault plane (stalls, crashes, jitter,
// flips) acts inside live.Run's client goroutines, which a networked run
// does not have — its fault plane is NetFaults, acting on connections.
func (s Scenario) rejectNonServe() error {
	switch {
	case s.Faults != "" && s.Faults != "none":
		return fmt.Errorf("scenario: process faults %q are a live-engine feature; the serve engine's fault plane is NetFaults", s.Faults)
	case s.Serial:
		return fmt.Errorf("scenario: the serial driver is a live-engine feature; the serve engine rejects it")
	case s.FuzzRuns > 0:
		return fmt.Errorf("scenario: fuzz campaigns are a live-engine feature; the serve engine rejects them")
	}
	return nil
}

// faultsName returns the canonical spelling of the fault spec for reports
// and cell identities ("" when no faults are injected). Presets and
// differently-ordered grammar spellings of the same spec canonicalize to
// the same name, so they occupy the same campaign grid cell. Unresolvable
// specs keep their raw spelling; execution rejects them with a real error.
func (s Scenario) faultsName() string {
	sp, err := s.resolveFaults()
	if err != nil {
		return s.Faults
	}
	if sp.Zero() {
		return ""
	}
	return sp.String()
}

// netFaultsName is faultsName's counterpart for the network fault plane:
// the canonical spelling of the net-fault spec ("" when none is injected).
func (s Scenario) netFaultsName() string {
	sp, err := registry.NetFaults(s.NetFaults)
	if err != nil {
		return s.NetFaults
	}
	if sp.Zero() {
		return ""
	}
	return sp.String()
}

// monitorName resolves the monitor spec to its canonical spelling ("" for
// full exhaustive checking, the default) — "" and "full" name the same grid
// cell, and "sample:08" never occurs because the canonical form is emitted.
// Unresolvable specs keep their raw spelling; execution rejects them with a
// real error.
func (s Scenario) monitorName() string {
	ms, err := registry.MonitorSpec(s.Monitor)
	if err != nil {
		return s.Monitor
	}
	if ms.Kind == check.MonitorFull {
		return ""
	}
	return ms.String()
}

// monitorOff reports whether online monitoring is disabled — either the
// NoMonitor switch or the record-only "none" monitor spec. Reporting
// branches on it so both spellings produce the same monitoring-disabled
// report shape.
func (s Scenario) monitorOff() bool {
	if s.NoMonitor {
		return true
	}
	ms, err := registry.MonitorSpec(s.Monitor)
	return err == nil && ms.Kind == check.MonitorNone
}

// resolveMonitor resolves the monitor spec for execution.
func (s Scenario) resolveMonitor() (check.MonitorSpec, error) {
	return registry.MonitorSpec(s.Monitor)
}

// walSyncName resolves the WAL durability policy to its canonical name
// ("" when no commit log is written) — "never" and "" on a WAL-writing
// scenario name the same policy and must name the same grid cell.
func (s Scenario) walSyncName() string {
	if s.WAL == "" && s.WALSync == "" {
		return ""
	}
	pol, err := wal.ParseSyncPolicy(s.WALSync)
	if err != nil {
		return s.WALSync
	}
	return pol.String()
}

// Info returns the resolved scenario echo a report for the named engine
// would carry, defaults filled in — the same projection executed cells
// embed, available without running anything (campaign uses it to build
// rerun commands for cells that never produced a report).
func (s Scenario) Info(engine string) ScenarioInfo {
	canon, err := registry.Engine(engine)
	if err != nil {
		canon = engine
	}
	return s.withDefaults().info(canon)
}

// CellID returns the canonical identity of the scenario as one cell of a
// campaign grid on the named engine: the resolved grid coordinates
// (engine, impl, workload, policy, procs, ops, tolerance, seed) plus the
// engine-relevant resolved names (analysis for explore, scheduler and
// chooser for sim, the canonical fault spec for live when one is
// injected, the canonical net-fault spec and WAL sync policy for serve). Defaults are filled in first, so Workload "" and
// "default" — or Engine "" and "sim" — name the same cell. Two scenarios
// with equal CellIDs on the same engine occupy the same grid point, which
// is what campaign baseline diffing matches on across runs and commits.
func (s Scenario) CellID(engine string) string {
	canon, err := registry.Engine(engine)
	if err != nil {
		canon = engine // unknown engines keep their spelling; resolution rejects them later
	}
	inf := s.withDefaults().info(canon)
	var b strings.Builder
	fmt.Fprintf(&b, "engine=%s impl=%s workload=%s policy=%s", canon, inf.Impl, inf.Workload, inf.Policy)
	if inf.Faults != "" {
		fmt.Fprintf(&b, " faults=%s", inf.Faults)
	}
	if inf.NetFaults != "" {
		fmt.Fprintf(&b, " netfaults=%s", inf.NetFaults)
	}
	if inf.WALSync != "" {
		fmt.Fprintf(&b, " walsync=%s", inf.WALSync)
	}
	if inf.Monitor != "" {
		fmt.Fprintf(&b, " monitor=%s", inf.Monitor)
	}
	if inf.Analysis != "" {
		fmt.Fprintf(&b, " analysis=%s", inf.Analysis)
	}
	if inf.Scheduler != "" {
		fmt.Fprintf(&b, " sched=%s chooser=%s", inf.Scheduler, inf.Chooser)
	}
	fmt.Fprintf(&b, " procs=%d ops=%d tol=%d seed=%d", inf.Procs, inf.Ops, inf.Tolerance, inf.Seed)
	return b.String()
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}
