package scenario

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Sim is the deterministic simulation engine: one seeded run under the
// named scheduler and base-object adversary, with the recorded history
// checked after the fact (linearizability, weak consistency, MinT and the
// MinT trend over growing prefixes).
type Sim struct{}

// Name implements Engine.
func (Sim) Name() string { return "sim" }

// Run implements Engine.
func (Sim) Run(s Scenario) (*Report, error) {
	s = s.withDefaults()
	if err := s.rejectLiveOnly("sim"); err != nil {
		return nil, err
	}
	impl, err := s.resolveImpl()
	if err != nil {
		return nil, err
	}
	workload, err := registry.WorkloadByName(s.Workload, impl, s.Procs, s.Ops)
	if err != nil {
		return nil, err
	}
	sched, err := registry.Scheduler(s.Scheduler)
	if err != nil {
		return nil, err
	}
	chooser, err := registry.Chooser(s.Chooser)
	if err != nil {
		return nil, err
	}
	policy, err := s.resolvePolicy()
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Config{
		Impl:      impl,
		Workload:  workload,
		Scheduler: sched,
		Chooser:   chooser,
		Policies:  base.SamePolicy(policy),
		Seed:      s.Seed,
		MaxSteps:  s.Budget.MaxSteps,
		CheckOpts: s.Check,
	})
	if err != nil {
		return nil, err
	}

	h := res.History
	rep := &Report{Schema: Schema, Engine: "sim", Scenario: s.info("sim"), history: h}
	rep.Perf = &PerfInfo{Steps: res.Steps, TimedOut: res.TimedOut, Events: h.Len()}
	for _, n := range res.OpsCompleted {
		rep.Perf.Ops += n
	}
	if s.NoCheck {
		rep.Verdict = VerdictOK
		rep.Detail = "run recorded (checks skipped)"
		return rep, nil
	}

	objs := map[string]spec.Object{impl.Name(): impl.Spec()}
	lin, err := check.Linearizable(objs, h, s.Check)
	if err != nil {
		return nil, err
	}
	wc, err := check.WeaklyConsistent(objs, h, s.Check)
	if err != nil {
		return nil, err
	}
	minT, hasT, err := check.MinT(impl.Spec(), h, s.Check)
	if err != nil {
		return nil, err
	}

	rep.Checks = &Checks{Linearizable: boolPtr(lin), WeaklyConsistent: boolPtr(wc)}
	if hasT {
		rep.Checks.MinT = intPtr(minT)
	}
	if h.Len() > 0 {
		stride := s.Stride
		if stride <= 0 {
			stride = max(h.Len()/8, 2)
		}
		v, err := check.TrackMinT(impl.Spec(), h, stride, s.Check)
		if err != nil {
			return nil, err
		}
		rep.Trend = trendInfo(v)
	}

	switch {
	case s.Tolerance < 0:
		rep.Verdict = VerdictOK
		rep.Detail = "observe-only (negative tolerance)"
	case hasT && minT <= s.Tolerance:
		rep.Verdict = VerdictOK
		if minT == 0 {
			rep.Detail = "history is linearizable"
		} else {
			rep.Detail = fmt.Sprintf("MinT %d within tolerance %d", minT, s.Tolerance)
		}
	default:
		rep.Verdict = VerdictViolation
		if !hasT {
			rep.Detail = "history is not t-linearizable for any t"
			rep.Witness = &WitnessInfo{History: h.String(), MinT: -1}
		} else {
			rep.Detail = fmt.Sprintf("MinT %d exceeds tolerance %d", minT, s.Tolerance)
			rep.Witness = &WitnessInfo{History: h.String(), MinT: minT}
		}
	}
	return rep, nil
}
