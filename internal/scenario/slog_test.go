package scenario

import "testing"

// TestSlogFamilyEveryEngine mirrors the cas-counter three-engine contract
// for the stabilizing-log family: one Scenario value runs unchanged on
// explore, sim and live, and the verdicts agree. The live engine routes
// the counter spellings to the lock-free fast path, so this test also
// pins the fast path and the step machine to one semantics.
func TestSlogFamilyEveryEngine(t *testing.T) {
	// Batch 1: every operation waits for promotion, so the construction is
	// linearizable — ok everywhere at strict tolerance.
	strong := Scenario{
		Impl:     "slog-batch:1",
		Workload: "uniform:inc",
		Procs:    2,
		Ops:      2,
		Seed:     3,
		Budget:   Budget{Depth: 30},
	}
	for _, e := range Engines() {
		rep, err := e.Run(strong)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if !rep.OK() {
			t.Errorf("%s slog-batch:1 verdict = %s (%s), want ok", e.Name(), rep.Verdict, rep.Detail)
		}
		if rep.Scenario.Impl != "slog-batch:1" {
			t.Errorf("%s scenario echo dropped the batch: %+v", e.Name(), rep.Scenario)
		}
	}

	// The default batch speculates. Explore proves the violation exists in
	// some interleaving; sim's seeded round-robin realizes one (each
	// process's first operation lands below the promotion threshold and
	// answers the initial value); the live serial driver deterministically
	// realizes the same alternation. (The free-running live driver is
	// excluded on purpose: a schedule that lets one client race ahead
	// promotes every other client on arrival and can produce a
	// linearizable history — speculation is a property of the family of
	// executions, which is the paper's point.)
	fast := Scenario{
		Impl:      "slog-counter",
		Workload:  "uniform:inc",
		Procs:     2,
		Ops:       2,
		Seed:      5,
		Tolerance: 0,
		Budget:    Budget{Depth: 30},
	}
	fastLive := fast
	fastLive.Serial = true
	for _, run := range []struct {
		engine string
		s      Scenario
	}{{"explore", fast}, {"sim", fast}, {"live", fastLive}} {
		rep, err := Run(run.engine, run.s)
		if err != nil {
			t.Fatalf("%s: %v", run.engine, err)
		}
		if rep.Verdict != VerdictViolation {
			t.Errorf("%s slog-counter verdict = %s (%s), want violation", run.engine, rep.Verdict, rep.Detail)
		}
		if rep.Witness == nil || rep.Witness.History == "" {
			t.Errorf("%s slog-counter violation carries no witness history", run.engine)
		}
	}
}

// TestSlogTrendClassesAcrossEngines pins the trend vocabulary across the
// two engines that classify trends, on deterministic runs (sim; live
// under the serial driver with a pinned stride):
//
//   - slog-batch:1 is linearizable, so both methodologies agree:
//     stabilized at MinT 0.
//   - slog-counter separates the methodologies, and the split is the
//     interesting measurement: sim's checker computes strict MinT over
//     growing prefixes, where an early speculative duplicate must move
//     further in every longer prefix — diverging. The live monitor
//     checks bounded windows, and within any window the fast path's
//     staleness is bounded by the promotion batch — stabilized at a
//     small positive MinT strictly below the batch. Both are correct:
//     the log speculates by a bounded amount forever, which a windowed
//     monitor forgives and a whole-history checker does not.
func TestSlogTrendClassesAcrossEngines(t *testing.T) {
	run := func(engine, impl string) *Report {
		t.Helper()
		s := Scenario{
			Impl:      impl,
			Workload:  "uniform:inc",
			Procs:     2,
			Ops:       8,
			Seed:      1,
			Tolerance: -1,
		}
		if engine == "live" {
			s.Serial = true
			s.Stride = 4
		}
		rep, err := Run(engine, s)
		if err != nil {
			t.Fatalf("%s %s: %v", engine, impl, err)
		}
		if !rep.OK() {
			t.Fatalf("%s %s verdict = %s (%s), want ok", engine, impl, rep.Verdict, rep.Detail)
		}
		if rep.Trend == nil {
			t.Fatalf("%s %s produced no trend", engine, impl)
		}
		return rep
	}
	// The linearizable member: both engines classify identically.
	if sim, lv := run("sim", "slog-batch:1").Trend, run("live", "slog-batch:1").Trend; sim.Trend != "stabilized" ||
		lv.Trend != "stabilized" || sim.FinalMinT != 0 || lv.FinalMinT != 0 {
		t.Errorf("slog-batch:1 trends: sim=%s/%d live=%s/%d, want stabilized/0 on both",
			sim.Trend, sim.FinalMinT, lv.Trend, lv.FinalMinT)
	}
	// The speculating member: strict prefixes diverge, bounded windows
	// stabilize strictly below the promotion batch.
	sim, lv := run("sim", "slog-counter").Trend, run("live", "slog-counter").Trend
	if sim.Trend != "diverging" {
		t.Errorf("sim slog-counter trend = %s/%d, want diverging", sim.Trend, sim.FinalMinT)
	}
	if lv.Trend != "stabilized" || lv.FinalMinT <= 0 || lv.FinalMinT >= 4 {
		t.Errorf("live slog-counter trend = %s/%d, want stabilized at MinT in (0,4)", lv.Trend, lv.FinalMinT)
	}
}
