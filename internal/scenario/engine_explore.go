package scenario

import (
	"fmt"

	"github.com/elin-go/elin/internal/explore"
)

// Explore is the bounded exhaustive engine: it quantifies over every
// interleaving (and every weakly consistent response choice) up to
// Budget.Depth and runs the analysis named by Scenario.Analysis.
type Explore struct{}

// Name implements Engine.
func (Explore) Name() string { return "explore" }

// Run implements Engine.
func (Explore) Run(s Scenario) (*Report, error) {
	s = s.withDefaults()
	if err := s.rejectLiveOnly("explore"); err != nil {
		return nil, err
	}
	if s.LiveValue != nil && s.ImplValue == nil && s.Impl == "" {
		return nil, fmt.Errorf("scenario: the explore engine needs an implementation (Impl or ImplValue), not a live object")
	}
	root, _, err := buildSystem(s)
	if err != nil {
		return nil, err
	}
	cfg := explore.Config{
		Workers:          s.Workers,
		Dedup:            s.Dedup,
		CheckDeterminism: s.CheckDeterminism,
	}
	rep := &Report{Schema: Schema, Engine: "explore", Scenario: s.info("explore")}
	switch s.Analysis {
	case AnalysisLin, AnalysisWeak:
		everywhere := explore.LinearizableEverywhere
		what := "linearizable"
		if s.Analysis == AnalysisWeak {
			everywhere = explore.WeaklyConsistentEverywhere
			what = "weakly consistent"
		}
		okAll, badSys, st, err := everywhere(root, s.Budget.Depth, cfg, s.Check)
		if err != nil {
			return nil, err
		}
		rep.Explore = &ExploreInfo{Nodes: st.Nodes, Leaves: st.Leaves, Truncated: st.Truncated, Deduped: st.Deduped}
		if okAll {
			rep.Verdict = VerdictOK
			rep.Detail = fmt.Sprintf("every bounded interleaving is %s", what)
		} else {
			rep.Verdict = VerdictViolation
			rep.Detail = fmt.Sprintf("found an interleaving that is not %s", what)
			rep.Witness = &WitnessInfo{History: badSys.History().String(), MinT: -1}
		}
	case AnalysisValency:
		vrep, err := explore.Analyze(root, s.Budget.Depth, cfg)
		if err != nil {
			return nil, err
		}
		rep.Explore = &ExploreInfo{
			Nodes: vrep.Stats.Nodes, Leaves: vrep.Stats.Leaves,
			Truncated: vrep.Stats.Truncated, Deduped: vrep.Stats.Deduped,
		}
		rep.Valency = &ValencyInfo{
			RootValence:         vrep.Root.Values(),
			Truncated:           vrep.Root.Truncated,
			Multivalent:         vrep.Multivalent,
			Univalent:           vrep.Univalent,
			Criticals:           len(vrep.Criticals),
			AgreementViolations: vrep.AgreementViolations,
		}
		if vrep.AgreementViolations == 0 {
			rep.Verdict = VerdictOK
			rep.Detail = fmt.Sprintf("root valence %v, no agreement violations", vrep.Root.Values())
		} else {
			rep.Verdict = VerdictViolation
			rep.Detail = fmt.Sprintf("%d agreement violations", vrep.AgreementViolations)
			if vrep.ViolationHistory != "" {
				rep.Witness = &WitnessInfo{History: vrep.ViolationHistory, MinT: -1}
			}
		}
	case AnalysisStable:
		res, err := explore.FindStable(root, s.Budget.Depth, s.Budget.VerifyDepth, cfg, s.Check)
		if err != nil {
			return nil, err
		}
		rep.Verdict = VerdictOK
		rep.Detail = fmt.Sprintf("stable configuration at depth %d (t=%d)", res.Depth, res.T)
		rep.Stable = &StableInfo{
			Depth: res.Depth, T: res.T, NodesSearched: res.NodesSearched,
			VerifyNodes: res.VerifyStats.Nodes, VerifyLeaves: res.VerifyStats.Leaves,
		}
		rep.Witness = &WitnessInfo{History: res.System.History().String(), MinT: res.T}
	default:
		return nil, fmt.Errorf("scenario: unknown analysis %q (known: %s, %s, %s, %s)",
			s.Analysis, AnalysisLin, AnalysisWeak, AnalysisValency, AnalysisStable)
	}
	return rep, nil
}
