package scenario

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden report files")

// goldenScenarios are deterministic scenarios whose canonical report JSON
// is pinned byte-for-byte, one per engine plus the violation shapes. Any
// drift here is a Report schema change: bump Schema and regenerate with
// `go test ./internal/scenario -run Golden -update`.
func goldenScenarios() []struct {
	name   string
	engine string
	s      Scenario
} {
	return []struct {
		name   string
		engine string
		s      Scenario
	}{
		{
			name:   "explore_lin_ok",
			engine: "explore",
			s: Scenario{
				Impl:     "cas-counter",
				Workload: "uniform:inc",
				Procs:    2,
				Ops:      1,
				Budget:   Budget{Depth: 12},
			},
		},
		{
			name:   "explore_valency_violation",
			engine: "explore",
			s: Scenario{
				Impl:     "reg-consensus",
				Procs:    2,
				Ops:      1,
				Analysis: AnalysisValency,
				Budget:   Budget{Depth: 18},
			},
		},
		{
			name:   "sim_warmup_violation",
			engine: "sim",
			s: Scenario{
				Impl:    "warmup-counter:2",
				Procs:   2,
				Ops:     2,
				Seed:    5,
				Chooser: "stale",
				Policy:  "window:2",
				Budget:  Budget{MaxSteps: 4096},
			},
		},
		{
			name:   "live_cas_ok",
			engine: "live",
			s: Scenario{
				Impl:     "cas-counter",
				Workload: "uniform:inc",
				Procs:    2,
				Ops:      4,
				Seed:     1,
			},
		},
	}
}

// TestGoldenReports pins the stable JSON encoding of the unified Report on
// every engine.
func TestGoldenReports(t *testing.T) {
	for _, tc := range goldenScenarios() {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Run(tc.engine, tc.s)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := rep.Canonical().EncodeJSON(&buf); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", tc.name+".golden.json")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("report drift for %s:\ngot:\n%s\nwant:\n%s", tc.name, buf.Bytes(), want)
			}
		})
	}
}

// TestCanonicalZeroesWallClock pins that Canonical strips every
// run-dependent field but keeps the deterministic ones.
func TestCanonicalZeroesWallClock(t *testing.T) {
	rep, err := Run("live", Scenario{Impl: "atomic-fi", Procs: 2, Ops: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Perf == nil || rep.Perf.NS == 0 {
		t.Fatalf("live run reported no wall-clock time: %+v", rep.Perf)
	}
	canon := rep.Canonical()
	if canon.Perf.NS != 0 || canon.Perf.ThroughputOpsS != 0 || canon.Perf.P99NS != 0 || canon.Perf.Gomaxprocs != 0 {
		t.Errorf("canonical perf keeps wall-clock fields: %+v", canon.Perf)
	}
	if canon.Perf.Ops != rep.Perf.Ops || canon.Perf.Events != rep.Perf.Events {
		t.Errorf("canonical perf lost deterministic fields: %+v", canon.Perf)
	}
	if rep.Perf.NS == 0 {
		t.Error("Canonical mutated the original report")
	}
}

// TestReportRender smoke-tests the human rendering of each golden report.
func TestReportRender(t *testing.T) {
	for _, tc := range goldenScenarios() {
		rep, err := Run(tc.engine, tc.s)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.Render(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		if !strings.Contains(out, "verdict: "+rep.Verdict) {
			t.Errorf("%s render misses verdict:\n%s", tc.name, out)
		}
		if !strings.Contains(out, "engine="+tc.engine) {
			t.Errorf("%s render misses engine:\n%s", tc.name, out)
		}
	}
}
