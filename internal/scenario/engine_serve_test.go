package scenario

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/wal"
)

// One declarative scenario stands up a real TCP server, drives a retrying
// fleet through a named network fault preset, and still answers ok with
// the exactly-once ledger clean — the serve engine's headline.
func TestServeEngineFlakyNet(t *testing.T) {
	s := Scenario{
		Impl:      "atomic-fi",
		Procs:     4,
		Ops:       150,
		Seed:      7,
		NetFaults: "flaky-net",
	}
	rep, err := Serve{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verdict = %s (%s), want ok", rep.Verdict, rep.Detail)
	}
	if rep.Scenario.NetFaults != "drop:0@40,drop:1@80,slow:2:200,partition:120+40" {
		t.Fatalf("scenario echo net-faults = %q (preset not canonicalized)", rep.Scenario.NetFaults)
	}
	if rep.Net == nil {
		t.Fatal("serve report carries no net section")
	}
	if rep.Net.Lost != 0 || rep.Net.Duplicated != 0 {
		t.Fatalf("exactly-once ledger dirty: %+v", rep.Net)
	}
	if rep.Net.Reconnects == 0 {
		t.Fatal("flaky-net run saw no reconnects — faults did not fire")
	}
	if rep.Perf.Events != 2*4*150 {
		t.Fatalf("events = %d, want %d (resumed ops must not re-record)", rep.Perf.Events, 2*4*150)
	}
	if rep.Checks == nil || rep.Checks.ReplayIdentical == nil || !*rep.Checks.ReplayIdentical {
		t.Fatalf("faulted serve history did not verify: %+v", rep.Checks)
	}
}

// The fault-free serve cell is deterministic where it matters: the same
// scenario twice yields byte-identical canonical reports (wall-clock and
// reconnect noise zeroed, everything contractual kept).
func TestServeEngineCanonicalStable(t *testing.T) {
	s := Scenario{Impl: "atomic-fi", Procs: 3, Ops: 60, Seed: 11}
	var first []byte
	for i := 0; i < 2; i++ {
		rep, err := Serve{}.Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("run %d: verdict %s (%s)", i, rep.Verdict, rep.Detail)
		}
		var buf bytes.Buffer
		if err := rep.Canonical().EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = append([]byte(nil), buf.Bytes()...)
		} else if !bytes.Equal(first, buf.Bytes()) {
			t.Fatalf("canonical serve reports diverge:\n%s\nvs\n%s", first, buf.Bytes())
		}
	}
}

// A serve scenario with a WAL persists the merged stream; the recovered
// log matches the report, and the resolved sync policy lands in the echo.
func TestServeEngineWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "serve.wal")
	s := Scenario{
		Impl:    "atomic-fi",
		Procs:   3,
		Ops:     80,
		Seed:    5,
		WAL:     path,
		WALSync: "interval:8",
	}
	rep, err := Serve{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("verdict = %s (%s)", rep.Verdict, rep.Detail)
	}
	if rep.Scenario.WALSync != "interval:8" {
		t.Fatalf("scenario echo wal-sync = %q", rep.Scenario.WALSync)
	}
	rec, err := wal.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Torn || rec.Frames != rep.Perf.Events {
		t.Fatalf("recovered %d frames (torn=%v), report has %d events", rec.Frames, rec.Torn, rep.Perf.Events)
	}
}

// Regime features stay in their regimes, loudly.
func TestServeEngineRejections(t *testing.T) {
	cases := []struct {
		name string
		s    Scenario
		want string
	}{
		{"process faults", Scenario{Faults: "chaos"}, "live-engine feature"},
		{"serial driver", Scenario{Serial: true}, "live-engine feature"},
		{"fuzz", Scenario{FuzzRuns: 3}, "live-engine feature"},
	}
	for _, c := range cases {
		if _, err := (Serve{}).Run(c.s); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("serve accepted %s (err %v)", c.name, err)
		}
	}
	// And the other engines refuse the network fault plane.
	nf := Scenario{Impl: "cas-counter", NetFaults: "flaky-net"}
	for _, e := range Engines() {
		if e.Name() == "serve" {
			continue
		}
		if _, err := e.Run(nf); err == nil || !strings.Contains(err.Error(), "serve-engine feature") {
			t.Errorf("engine %s accepted net-faults (err %v)", e.Name(), err)
		}
	}
}

// Net-fault and WAL-sync coordinates enter the cell identity — and
// canonicalize, so a preset and its grammar spelling share a cell.
func TestServeEngineCellID(t *testing.T) {
	a := Scenario{NetFaults: "partition-heal", WAL: "/tmp/x.wal", WALSync: ""}
	b := Scenario{NetFaults: "partition:60+40", WAL: "/tmp/y.wal", WALSync: "never"}
	if a.CellID("serve") != b.CellID("serve") {
		t.Fatalf("equivalent serve cells diverge:\n%s\n%s", a.CellID("serve"), b.CellID("serve"))
	}
	id := a.CellID("serve")
	for _, want := range []string{"engine=serve", "netfaults=partition:60+40", "walsync=never"} {
		if !strings.Contains(id, want) {
			t.Fatalf("cell id %q missing %q", id, want)
		}
	}
	plain := Scenario{}.CellID("serve")
	if strings.Contains(plain, "netfaults") || strings.Contains(plain, "walsync") {
		t.Fatalf("fault-free cell id %q carries fault coordinates", plain)
	}
}
