package scenario

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestFaultedCellID pins the faults coordinate: inserted after policy only
// when a fault spec is injected, canonicalized across spellings, absent
// from unfaulted identities (so pre-existing baselines keep their IDs).
func TestFaultedCellID(t *testing.T) {
	plain := Scenario{Impl: "atomic-fi", Procs: 2, Ops: 4}
	if id := plain.CellID("live"); strings.Contains(id, "faults=") {
		t.Errorf("unfaulted cell id carries a faults coordinate: %q", id)
	}
	faulted := plain
	faulted.Faults = "jitter:2,stall:0@4+2"
	want := "engine=live impl=atomic-fi workload=default policy=immediate faults=stall:0@4+2,jitter:2 procs=2 ops=4 tol=0 seed=0"
	if got := faulted.CellID("live"); got != want {
		t.Errorf("faulted cell id = %q, want %q", got, want)
	}
	// "none" and "" name the same cell; presets canonicalize to grammar.
	none := plain
	none.Faults = "none"
	if none.CellID("live") != plain.CellID("live") {
		t.Error(`faults "none" and "" split the cell identity`)
	}
	preset := plain
	preset.Faults = "jitter-light"
	if id := preset.CellID("live"); !strings.Contains(id, "faults=jitter:3") {
		t.Errorf("preset did not canonicalize in the cell id: %q", id)
	}
}

// TestEnginesRejectLiveOnly pins that explore and sim refuse faulted,
// WAL-logging or serial scenarios instead of silently ignoring them.
func TestEnginesRejectLiveOnly(t *testing.T) {
	for _, eng := range []string{"explore", "sim"} {
		for name, s := range map[string]Scenario{
			"faults": {Faults: "jitter:2"},
			"wal":    {WAL: filepath.Join(t.TempDir(), "x.wal")},
			"serial": {Serial: true},
		} {
			if _, err := Run(eng, s); err == nil {
				t.Errorf("%s accepted a %s scenario", eng, name)
			}
		}
		// "none" passes through untouched.
		if _, err := Run(eng, Scenario{Faults: "none", Ops: 1, Procs: 2, Budget: Budget{Depth: 8}}); err != nil {
			t.Errorf(`%s rejected faults "none": %v`, eng, err)
		}
	}
}

// TestStressCrashReport pins the live engine's crash surface: a WAL-logged
// serial run that crashes at commit K reports ok with the crash detail and
// skips replay verification of the cut history.
func TestStressCrashReport(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "run.wal")
	s := Scenario{
		Impl: "el-fi", Procs: 2, Ops: 200, Seed: 5, Tolerance: -1,
		Policy: "window:8", Serial: true,
		WAL: walPath, WALSync: "interval:16",
		Faults: "crash:300",
	}
	rep, err := Run("live", s)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || !strings.Contains(rep.Detail, "crashed at commit 300") {
		t.Fatalf("crash report: verdict=%s detail=%q", rep.Verdict, rep.Detail)
	}
	if rep.Checks != nil {
		t.Error("crashed run must not claim replay verification")
	}
	if rep.Scenario.Faults != "crash:300" || !rep.Scenario.Serial {
		t.Errorf("scenario echo lost the fault plane: %+v", rep.Scenario)
	}

	// Recover the log and continue; the stitched history must stabilize.
	rec, err := Recover(walPath, Scenario{Ops: 100, Serial: true, Tolerance: -1, Stride: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OK() {
		t.Fatalf("recover verdict=%s detail=%q", rec.Verdict, rec.Detail)
	}
	ri := rec.Recovery
	if ri == nil {
		t.Fatal("recover report has no recovery section")
	}
	if ri.Torn || ri.RecoveredCommits != 300 || ri.ResumedSeq != 300 {
		t.Errorf("recovery = %+v, want 300 clean commits", ri)
	}
	if ri.ContinuedOps != 200 || ri.StitchedEvents != rec.Perf.Events {
		t.Errorf("continuation = %+v (perf %+v)", ri, rec.Perf)
	}
	if rec.Trend == nil || rec.Trend.Trend != "stabilized" {
		t.Errorf("stitched trend = %+v, want stabilized", rec.Trend)
	}
	// Header defaults applied: impl, workload, policy from the log; the
	// continuation seed is the header seed + 1.
	inf := rec.Scenario
	if inf.Impl != "el-fi" || inf.Policy != "window:8" || inf.Seed != 6 || inf.Procs != 2 {
		t.Errorf("continuation defaults not taken from the header: %+v", inf)
	}
}

// TestRecoverChainsThroughOutWAL pins the self-contained re-log: a
// continuation that writes its own WAL (recovered prefix copied in front)
// is itself recoverable.
func TestRecoverChainsThroughOutWAL(t *testing.T) {
	dir := t.TempDir()
	first := filepath.Join(dir, "a.wal")
	second := filepath.Join(dir, "b.wal")
	s := Scenario{
		Impl: "atomic-fi", Procs: 2, Ops: 100, Seed: 3,
		Serial: true, WAL: first, Faults: "crash:120",
	}
	if _, err := Run("live", s); err != nil {
		t.Fatal(err)
	}
	rec1, err := Recover(first, Scenario{Ops: 50, Serial: true, WAL: second})
	if err != nil {
		t.Fatal(err)
	}
	if !rec1.OK() || rec1.Recovery.RecoveredCommits != 120 {
		t.Fatalf("first recovery: %s (%+v)", rec1.Verdict, rec1.Recovery)
	}
	rec2, err := Recover(second, Scenario{Ops: 25, Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	// The second log holds the full stitched run: 120 crash-cut commits
	// plus the 2x50 continuation ops.
	if got := rec2.Recovery.RecoveredCommits; got != 220 {
		t.Errorf("chained recovery commits = %d, want 220", got)
	}
	if !rec2.OK() {
		t.Errorf("chained recovery verdict = %s (%s)", rec2.Verdict, rec2.Detail)
	}
}
