// Package base provides live base-object instances for executions: atomic
// (linearizable) objects, and eventually linearizable objects whose
// pre-stabilization responses range over exactly the set permitted by weak
// consistency (Definition 1) — the paper's "not out of left field"
// constraint — while behaving atomically after stabilization.
package base

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// Object is a live base object in an execution. Each base-object action is
// atomic: the runtime asks for the permitted responses (Candidates) and then
// commits one of them.
type Object interface {
	// Name returns the object's name for base-level histories.
	Name() string
	// Candidates returns the responses the object may give to op invoked
	// by proc in the current state. The first element is always the "true"
	// response — the one a linearizable object would give. Linearizable
	// objects return exactly one candidate.
	Candidates(proc int, op spec.Op) ([]int64, error)
	// Commit applies op by proc with the chosen response, which must be
	// one of Candidates' values.
	Commit(proc int, op spec.Op, resp int64) error
	// State returns the object's current abstract state (for the
	// Proposition 18 configuration capture). For eventually linearizable
	// objects this is the state reached by applying all committed
	// operations in commit order.
	State() spec.State
	// Steps returns the number of committed actions.
	Steps() int
	// Clone returns a deep copy (used by the model checker to branch).
	Clone() Object
	// Snapshot captures the object's state in a small value record.
	// Together with Restore it is the undo hook of the in-place exploration
	// engine: Snapshot before a Commit, Restore to revert it. Snapshots are
	// plain values — taking one performs no heap allocation.
	Snapshot() Snapshot
	// Restore reverts the object to a previously captured Snapshot. The
	// snapshot must have been taken on this object, and only undo in LIFO
	// order is supported (restoring an older snapshot after newer commits
	// is permitted; restoring a newer one after an older Restore is not).
	Restore(Snapshot)
	// AppendFingerprint appends a canonical encoding of everything that
	// determines the object's future behaviour (state, step count and, for
	// eventually linearizable objects, the committed action log) to b.
	AppendFingerprint(b []byte) []byte
}

// Snapshot is a compact undo record for one base object. State and Steps
// cover both object kinds; LogLen is meaningful for Eventual objects only.
type Snapshot struct {
	// State is the abstract state at capture time.
	State spec.State
	// Steps is the committed-action count at capture time.
	Steps int
	// LogLen is the committed-log length at capture time (Eventual only).
	LogLen int
}

// ----------------------------------------------------------------------------
// Atomic objects.

// Atomic is a linearizable base object over a deterministic type.
type Atomic struct {
	name  string
	typ   spec.Type
	det   spec.DetStepper // non-nil allocation-free fast path
	state spec.State
	steps int
}

var _ Object = (*Atomic)(nil)

// NewAtomic returns a linearizable instance of obj. The type must be
// deterministic (all of the paper's base objects are).
func NewAtomic(name string, obj spec.Object) (*Atomic, error) {
	if !obj.Type.Deterministic() {
		return nil, fmt.Errorf("base: atomic object %q requires a deterministic type, %s is not",
			name, obj.Type.Name())
	}
	a := &Atomic{name: name, typ: obj.Type, state: obj.Init}
	a.det, _ = obj.Type.(spec.DetStepper)
	return a, nil
}

// stepOne returns the unique outcome of op in state s, preferring the
// allocation-free DetStepper fast path. Commit and candidate computation
// run once per explored edge, so avoiding the Step slice here matters.
func stepOne(typ spec.Type, det spec.DetStepper, s spec.State, op spec.Op) (spec.Outcome, bool) {
	if det != nil {
		return det.StepDet(s, op)
	}
	outs := typ.Step(s, op)
	if len(outs) == 0 {
		return spec.Outcome{}, false
	}
	return outs[0], true
}

// Name implements Object.
func (a *Atomic) Name() string { return a.name }

// Candidates implements Object: the unique legal response.
func (a *Atomic) Candidates(proc int, op spec.Op) ([]int64, error) {
	out, ok := stepOne(a.typ, a.det, a.state, op)
	if !ok {
		return nil, fmt.Errorf("base: %s (%s) rejects %s in state %v", a.name, a.typ.Name(), op, a.state)
	}
	return []int64{out.Resp}, nil
}

// Commit implements Object.
func (a *Atomic) Commit(proc int, op spec.Op, resp int64) error {
	out, ok := stepOne(a.typ, a.det, a.state, op)
	if !ok {
		return fmt.Errorf("base: %s (%s) rejects %s in state %v", a.name, a.typ.Name(), op, a.state)
	}
	if out.Resp != resp {
		return fmt.Errorf("base: %s commit of %s with response %d, want %d", a.name, op, resp, out.Resp)
	}
	a.state = out.Next
	a.steps++
	return nil
}

// State implements Object.
func (a *Atomic) State() spec.State { return a.state }

// Steps implements Object.
func (a *Atomic) Steps() int { return a.steps }

// Clone implements Object.
func (a *Atomic) Clone() Object {
	cp := *a
	return &cp
}

// Snapshot implements Object.
func (a *Atomic) Snapshot() Snapshot {
	return Snapshot{State: a.state, Steps: a.steps}
}

// Restore implements Object.
func (a *Atomic) Restore(s Snapshot) {
	a.state = s.State
	a.steps = s.Steps
}

// AppendFingerprint implements Object.
func (a *Atomic) AppendFingerprint(b []byte) []byte {
	b, ok := machine.AppendFPState(b, a.state)
	if !ok {
		// Unsupported state kinds cannot occur for the concrete types in
		// spec; fall back to a marker so fingerprints stay deterministic.
		b = append(b, '?')
	}
	return machine.AppendFPInt(b, int64(a.steps))
}

// ----------------------------------------------------------------------------
// Stabilization policies.

// Policy decides when an eventually linearizable object stabilizes. The
// paper's definition allows the stabilization point to differ from
// execution to execution (and that freedom matters: the proof of
// Proposition 18 must work without a uniform bound), so policies are
// per-instance and may be arbitrary functions of the action count.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Stabilized reports whether the object behaves atomically from its
	// k-th committed action (0-based) onward.
	Stabilized(k int) bool
}

// Window stabilizes after a fixed number of committed actions.
type Window struct {
	// K is the number of pre-stabilization actions.
	K int
}

// Name implements Policy.
func (w Window) Name() string { return fmt.Sprintf("window(%d)", w.K) }

// Stabilized implements Policy.
func (w Window) Stabilized(k int) bool { return k >= w.K }

// Never does not stabilize within any horizon. Runs under Never model the
// pre-stabilization regime only; an implementation built over Never objects
// must still be weakly consistent.
type Never struct{}

// Name implements Policy.
func (Never) Name() string { return "never" }

// Stabilized implements Policy.
func (Never) Stabilized(int) bool { return false }

// Immediate is a Window of zero: the object is atomic from the start.
// Eventually linearizable objects may behave linearizably; Immediate is the
// degenerate adversary.
func Immediate() Policy { return Window{K: 0} }

// ----------------------------------------------------------------------------
// Eventually linearizable objects.

// Eventual wraps a deterministic type as an eventually linearizable object.
// Mutations always apply in commit order (so the object has a well-defined
// "true" state), but before the policy's stabilization point the response
// offered to each action ranges over the full weak-consistency candidate
// set of Definition 1 computed against the object's own action history.
// After stabilization only the true response is offered; the resulting
// complete history is then t-linearizable with t at most the stabilization
// index, and weakly consistent throughout — i.e. eventually linearizable.
type Eventual struct {
	name   string
	typ    spec.Type
	det    spec.DetStepper // non-nil allocation-free fast path
	obj    spec.Object
	state  spec.State
	steps  int
	policy Policy
	// log records committed (proc, op) pairs as a sequential history; weak
	// consistency candidates are computed against it. Responses recorded
	// are the true responses (Definition 1 ignores them).
	log  *history.History
	opts check.Options
}

var _ Object = (*Eventual)(nil)

// NewEventual returns an eventually linearizable instance of obj governed
// by the given stabilization policy.
func NewEventual(name string, obj spec.Object, policy Policy, opts check.Options) (*Eventual, error) {
	if !obj.Type.Deterministic() {
		return nil, fmt.Errorf("base: eventual object %q requires a deterministic type, %s is not",
			name, obj.Type.Name())
	}
	if policy == nil {
		return nil, fmt.Errorf("base: eventual object %q requires a policy", name)
	}
	e := &Eventual{
		name:   name,
		typ:    obj.Type,
		obj:    obj,
		state:  obj.Init,
		policy: policy,
		log:    history.New(),
		opts:   opts,
	}
	e.det, _ = obj.Type.(spec.DetStepper)
	return e, nil
}

// Name implements Object.
func (e *Eventual) Name() string { return e.name }

// Stabilized reports whether the object has reached its stabilization
// point (its next action will be answered atomically).
func (e *Eventual) Stabilized() bool { return e.policy.Stabilized(e.steps) }

// Policy returns the stabilization policy.
func (e *Eventual) Policy() Policy { return e.policy }

// trueResponse computes the response a linearizable object would give.
func (e *Eventual) trueResponse(op spec.Op) (int64, error) {
	out, ok := stepOne(e.typ, e.det, e.state, op)
	if !ok {
		return 0, fmt.Errorf("base: %s (%s) rejects %s in state %v", e.name, e.typ.Name(), op, e.state)
	}
	return out.Resp, nil
}

// Candidates implements Object. The true response is always first;
// pre-stabilization, every other weakly consistent response follows.
func (e *Eventual) Candidates(proc int, op spec.Op) ([]int64, error) {
	truth, err := e.trueResponse(op)
	if err != nil {
		return nil, err
	}
	if e.Stabilized() {
		return []int64{truth}, nil
	}
	// Build the hypothetical history with this operation pending and
	// enumerate Definition 1 responses. The pending invocation is appended
	// to the live log and truncated away afterwards, avoiding a full log
	// clone per candidate computation (WeakResponses does not retain the
	// history).
	logLen := e.log.Len()
	if err := e.log.Invoke(proc, e.name, op); err != nil {
		return nil, fmt.Errorf("base: %s candidates: %w", e.name, err)
	}
	weak, err := check.WeakResponses(e.obj, e.log, proc, e.opts)
	e.log.Truncate(logLen)
	if err != nil {
		return nil, fmt.Errorf("base: %s candidates: %w", e.name, err)
	}
	out := make([]int64, 0, len(weak)+1)
	out = append(out, truth)
	for _, r := range weak {
		if r != truth {
			out = append(out, r)
		}
	}
	return out, nil
}

// Commit implements Object: the mutation follows the type's transition in
// commit order regardless of the (possibly stale) response handed out.
func (e *Eventual) Commit(proc int, op spec.Op, resp int64) error {
	out, ok := stepOne(e.typ, e.det, e.state, op)
	if !ok {
		return fmt.Errorf("base: %s (%s) rejects %s in state %v", e.name, e.typ.Name(), op, e.state)
	}
	if e.Stabilized() && resp != out.Resp {
		return fmt.Errorf("base: %s stabilized commit of %s with response %d, want %d",
			e.name, op, resp, out.Resp)
	}
	if err := e.log.Call(proc, e.name, op, out.Resp); err != nil {
		return fmt.Errorf("base: %s log: %w", e.name, err)
	}
	e.state = out.Next
	e.steps++
	return nil
}

// State implements Object.
func (e *Eventual) State() spec.State { return e.state }

// Steps implements Object.
func (e *Eventual) Steps() int { return e.steps }

// Clone implements Object.
func (e *Eventual) Clone() Object {
	cp := *e
	cp.log = e.log.Clone()
	return &cp
}

// Snapshot implements Object.
func (e *Eventual) Snapshot() Snapshot {
	return Snapshot{State: e.state, Steps: e.steps, LogLen: e.log.Len()}
}

// Restore implements Object.
func (e *Eventual) Restore(s Snapshot) {
	e.state = s.State
	e.steps = s.Steps
	e.log.Truncate(s.LogLen)
}

// AppendFingerprint implements Object. The committed log is included
// because the Definition 1 candidate sets of future actions are computed
// against it: two Eventual objects behave identically iff state, step count
// and log agree.
func (e *Eventual) AppendFingerprint(b []byte) []byte {
	b, ok := machine.AppendFPState(b, e.state)
	if !ok {
		b = append(b, '?')
	}
	b = machine.AppendFPInt(b, int64(e.steps))
	return e.log.AppendFingerprint(b)
}

// ----------------------------------------------------------------------------
// Instantiation from machine.Base descriptors.

// PolicyFor assigns a stabilization policy to an eventually linearizable
// base object, identified by its index and descriptor.
type PolicyFor func(index int, name string) Policy

// SamePolicy assigns one policy to every eventually linearizable base.
func SamePolicy(p Policy) PolicyFor {
	return func(int, string) Policy { return p }
}

// Instantiate builds live objects for an implementation's base descriptor
// list. Non-eventual bases become Atomic; eventual ones become Eventual
// with the assigned policy (SamePolicy(Immediate()) if policies is nil).
func Instantiate(bases []machine.Base, policies PolicyFor, opts check.Options) ([]Object, error) {
	if policies == nil {
		policies = SamePolicy(Immediate())
	}
	out := make([]Object, 0, len(bases))
	for i, b := range bases {
		if b.Eventually {
			obj, err := NewEventual(b.Name, b.Obj, policies(i, b.Name), opts)
			if err != nil {
				return nil, err
			}
			out = append(out, obj)
			continue
		}
		obj, err := NewAtomic(b.Name, b.Obj)
		if err != nil {
			return nil, err
		}
		out = append(out, obj)
	}
	return out, nil
}
