package base

import (
	"reflect"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/spec"
)

func TestAtomicSnapshotRestore(t *testing.T) {
	a, err := NewAtomic("C", spec.NewObject(spec.FetchInc{}))
	if err != nil {
		t.Fatal(err)
	}
	fi := spec.MakeOp(spec.MethodFetchInc)
	if err := a.Commit(0, fi, 0); err != nil {
		t.Fatal(err)
	}
	snap := a.Snapshot()
	if err := a.Commit(1, fi, 1); err != nil {
		t.Fatal(err)
	}
	if a.State() != int64(2) || a.Steps() != 2 {
		t.Fatalf("state %v steps %d", a.State(), a.Steps())
	}
	a.Restore(snap)
	if a.State() != int64(1) || a.Steps() != 1 {
		t.Fatalf("restore: state %v steps %d", a.State(), a.Steps())
	}
	// The undone step must replay identically.
	cands, err := a.Candidates(1, fi)
	if err != nil || len(cands) != 1 || cands[0] != 1 {
		t.Fatalf("candidates after restore: %v %v", cands, err)
	}
}

func TestEventualSnapshotRestore(t *testing.T) {
	e, err := NewEventual("R", spec.NewObject(spec.Register{}), Never{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w1 := spec.MakeOp1(spec.MethodWrite, 1)
	w2 := spec.MakeOp1(spec.MethodWrite, 2)
	read := spec.MakeOp(spec.MethodRead)
	if err := e.Commit(0, w1, 0); err != nil {
		t.Fatal(err)
	}
	before, err := e.Candidates(1, read)
	if err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if err := e.Commit(1, w2, 0); err != nil {
		t.Fatal(err)
	}
	e.Restore(snap)
	if e.State() != int64(1) || e.Steps() != 1 {
		t.Fatalf("restore: state %v steps %d", e.State(), e.Steps())
	}
	after, err := e.Candidates(1, read)
	if err != nil {
		t.Fatal(err)
	}
	// Restoring must also truncate the log: the Definition 1 candidate set
	// (computed against the log) must be exactly what it was.
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("candidates diverge after restore: %v vs %v", before, after)
	}
}

func TestSnapshotIsAllocationFree(t *testing.T) {
	a, err := NewAtomic("C", spec.NewObject(spec.CAS{}))
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		snap := a.Snapshot()
		a.Restore(snap)
	})
	if allocs != 0 {
		t.Fatalf("Snapshot/Restore allocates %.1f per run", allocs)
	}
}

func TestObjectFingerprints(t *testing.T) {
	a, err := NewAtomic("C", spec.NewObject(spec.FetchInc{}))
	if err != nil {
		t.Fatal(err)
	}
	fp0 := string(a.AppendFingerprint(nil))
	if err := a.Commit(0, spec.MakeOp(spec.MethodFetchInc), 0); err != nil {
		t.Fatal(err)
	}
	if string(a.AppendFingerprint(nil)) == fp0 {
		t.Fatal("atomic fingerprint unchanged by a commit")
	}

	e, err := NewEventual("R", spec.NewObject(spec.Register{}), Never{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	efp0 := string(e.AppendFingerprint(nil))
	if err := e.Commit(0, spec.MakeOp1(spec.MethodWrite, 1), 0); err != nil {
		t.Fatal(err)
	}
	efp1 := string(e.AppendFingerprint(nil))
	if efp1 == efp0 {
		t.Fatal("eventual fingerprint unchanged by a commit")
	}
	// Two eventual objects with equal state/steps but different logs must
	// differ (their candidate sets differ).
	e2, err := NewEventual("R", spec.NewObject(spec.Register{}), Never{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Commit(1, spec.MakeOp1(spec.MethodWrite, 1), 0); err != nil {
		t.Fatal(err)
	}
	if string(e2.AppendFingerprint(nil)) == efp1 {
		t.Fatal("eventual fingerprints ignore the committing process")
	}
}
