package base

import (
	"sort"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

func TestAtomicRegister(t *testing.T) {
	a, err := NewAtomic("R", spec.NewObject(spec.Register{}))
	if err != nil {
		t.Fatal(err)
	}
	cands, err := a.Candidates(0, spec.MakeOp(spec.MethodRead))
	if err != nil || len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("read candidates = %v, %v", cands, err)
	}
	if err := a.Commit(0, spec.MakeOp1(spec.MethodWrite, 7), 0); err != nil {
		t.Fatal(err)
	}
	cands, _ = a.Candidates(1, spec.MakeOp(spec.MethodRead))
	if len(cands) != 1 || cands[0] != 7 {
		t.Fatalf("read after write = %v", cands)
	}
	if a.Steps() != 1 {
		t.Fatalf("steps = %d", a.Steps())
	}
	if a.State() != int64(7) {
		t.Fatalf("state = %v", a.State())
	}
	// Committing a wrong response is rejected.
	if err := a.Commit(0, spec.MakeOp(spec.MethodRead), 99); err == nil {
		t.Error("atomic commit accepted wrong response")
	}
	// Unknown op is rejected.
	if _, err := a.Candidates(0, spec.MakeOp("zap")); err == nil {
		t.Error("atomic candidates accepted unknown op")
	}
	// Clone is independent.
	c := a.Clone()
	if err := c.Commit(0, spec.MakeOp1(spec.MethodWrite, 9), 0); err != nil {
		t.Fatal(err)
	}
	if a.State() != int64(7) {
		t.Error("clone mutation leaked into original")
	}
}

func TestAtomicRejectsNondeterministicType(t *testing.T) {
	flip := spec.MakeOp("flip")
	nd := &spec.TableType{
		TypeName: "coin", NStates: 1, Ops: []spec.Op{flip},
		Delta: map[spec.TableKey][]spec.Outcome{
			{State: 0, Op: flip}: {{Resp: 0, Next: int64(0)}, {Resp: 1, Next: int64(0)}},
		},
	}
	if _, err := NewAtomic("N", spec.NewObject(nd)); err == nil {
		t.Error("NewAtomic accepted a nondeterministic type")
	}
	if _, err := NewEventual("N", spec.NewObject(nd), Never{}, check.Options{}); err == nil {
		t.Error("NewEventual accepted a nondeterministic type")
	}
	if _, err := NewEventual("N", spec.NewObject(spec.Register{}), nil, check.Options{}); err == nil {
		t.Error("NewEventual accepted a nil policy")
	}
}

func TestEventualRegisterCandidates(t *testing.T) {
	e, err := NewEventual("R", spec.NewObject(spec.Register{}), Never{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh object: only the initial value.
	cands, err := e.Candidates(0, spec.MakeOp(spec.MethodRead))
	if err != nil || len(cands) != 1 || cands[0] != 0 {
		t.Fatalf("fresh read candidates = %v, %v", cands, err)
	}
	// p0 writes 5; p1 writes 9.
	if err := e.Commit(0, spec.MakeOp1(spec.MethodWrite, 5), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1, spec.MakeOp1(spec.MethodWrite, 9), 0); err != nil {
		t.Fatal(err)
	}
	// p2 (never wrote) may see 5, 9, or the initial 0. True response (9)
	// must be first.
	cands, err = e.Candidates(2, spec.MakeOp(spec.MethodRead))
	if err != nil {
		t.Fatal(err)
	}
	if cands[0] != 9 {
		t.Fatalf("true response not first: %v", cands)
	}
	sorted := append([]int64(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	want := []int64{0, 5, 9}
	if len(sorted) != 3 || sorted[0] != want[0] || sorted[1] != want[1] || sorted[2] != want[2] {
		t.Fatalf("candidates = %v, want %v", sorted, want)
	}
	// p0 wrote, so the initial value is off the table for p0.
	cands, err = e.Candidates(0, spec.MakeOp(spec.MethodRead))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c == 0 {
			t.Fatalf("p0 offered the initial value after writing: %v", cands)
		}
	}
}

func TestEventualStabilization(t *testing.T) {
	e, err := NewEventual("R", spec.NewObject(spec.Register{}), Window{K: 2}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Stabilized() {
		t.Fatal("stabilized before any action with window 2")
	}
	if err := e.Commit(0, spec.MakeOp1(spec.MethodWrite, 5), 0); err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(1, spec.MakeOp1(spec.MethodWrite, 9), 0); err != nil {
		t.Fatal(err)
	}
	if !e.Stabilized() {
		t.Fatal("not stabilized after window")
	}
	// Post-stabilization reads offer only the truth.
	cands, err := e.Candidates(2, spec.MakeOp(spec.MethodRead))
	if err != nil || len(cands) != 1 || cands[0] != 9 {
		t.Fatalf("stabilized candidates = %v, %v", cands, err)
	}
	// Post-stabilization commits with a lie are rejected.
	if err := e.Commit(2, spec.MakeOp(spec.MethodRead), 5); err == nil {
		t.Error("stabilized commit accepted a stale response")
	}
	if err := e.Commit(2, spec.MakeOp(spec.MethodRead), 9); err != nil {
		t.Fatal(err)
	}
}

func TestEventualMutationsAlwaysApply(t *testing.T) {
	// Even while lying, the true state advances in commit order.
	e, err := NewEventual("F", spec.NewObject(spec.FetchInc{}), Never{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cands, err := e.Candidates(0, spec.MakeOp(spec.MethodFetchInc))
		if err != nil {
			t.Fatal(err)
		}
		if cands[0] != int64(i) {
			t.Fatalf("true response = %d, want %d", cands[0], i)
		}
		if err := e.Commit(0, spec.MakeOp(spec.MethodFetchInc), cands[len(cands)-1]); err != nil {
			t.Fatal(err)
		}
	}
	if e.State() != int64(3) {
		t.Fatalf("state = %v, want 3", e.State())
	}
}

func TestEventualCloneIndependence(t *testing.T) {
	e, err := NewEventual("R", spec.NewObject(spec.Register{}), Window{K: 10}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(0, spec.MakeOp1(spec.MethodWrite, 5), 0); err != nil {
		t.Fatal(err)
	}
	c := e.Clone()
	if err := c.Commit(1, spec.MakeOp1(spec.MethodWrite, 9), 0); err != nil {
		t.Fatal(err)
	}
	// The clone's write must not pollute the original's candidate set.
	cands, err := e.Candidates(2, spec.MakeOp(spec.MethodRead))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range cands {
		if v == 9 {
			t.Fatalf("clone write leaked: %v", cands)
		}
	}
	if e.Steps() != 1 || c.Steps() != 2 {
		t.Fatalf("steps: orig %d clone %d", e.Steps(), c.Steps())
	}
}

func TestPolicies(t *testing.T) {
	if (Window{K: 3}).Stabilized(2) || !(Window{K: 3}).Stabilized(3) {
		t.Error("window policy boundary wrong")
	}
	if (Never{}).Stabilized(1 << 30) {
		t.Error("never policy stabilized")
	}
	if !Immediate().Stabilized(0) {
		t.Error("immediate policy not stabilized at 0")
	}
	if (Window{K: 3}).Name() == "" || (Never{}).Name() == "" {
		t.Error("policies must have names")
	}
}

func TestInstantiate(t *testing.T) {
	bases := []machine.Base{
		{Name: "A", Obj: spec.NewObject(spec.Register{})},
		{Name: "B", Obj: spec.NewObject(spec.Register{}), Eventually: true},
	}
	objs, err := Instantiate(bases, SamePolicy(Window{K: 4}), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("objects = %d", len(objs))
	}
	if _, ok := objs[0].(*Atomic); !ok {
		t.Error("base A should be atomic")
	}
	ev, ok := objs[1].(*Eventual)
	if !ok {
		t.Fatal("base B should be eventual")
	}
	if ev.Policy().Name() != (Window{K: 4}).Name() {
		t.Errorf("policy = %s", ev.Policy().Name())
	}
	// nil policy function defaults to Immediate.
	objs, err = Instantiate(bases, nil, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !objs[1].(*Eventual).Stabilized() {
		t.Error("default policy should be immediate")
	}
}
