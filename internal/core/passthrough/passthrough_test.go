package passthrough

import (
	"testing"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

func TestPassthroughDelegates(t *testing.T) {
	impl := New("reg", spec.NewObject(spec.Register{}), false)
	if err := machine.Validate(impl, 2); err != nil {
		t.Fatal(err)
	}
	p := impl.NewProcess(0, 1)
	p.Begin(spec.MakeOp1(spec.MethodWrite, 5))
	act := p.Step(0)
	if act.Kind != machine.ActInvoke || act.Obj != 0 || act.Op.Args[0] != 5 {
		t.Fatalf("delegated action = %v", act)
	}
	act = p.Step(0)
	if act.Kind != machine.ActReturn || act.Ret != 0 {
		t.Fatalf("return = %v", act)
	}
}

func TestPassthroughEventualFlag(t *testing.T) {
	impl := New("reg", spec.NewObject(spec.Register{}), true)
	if !impl.Bases()[0].Eventually {
		t.Fatal("eventual flag dropped")
	}
	if impl.Name() != "reg" || impl.Spec().Type.Name() != "register" {
		t.Fatalf("metadata: %s %s", impl.Name(), impl.Spec().Type.Name())
	}
}

func TestPassthroughClone(t *testing.T) {
	impl := New("reg", spec.NewObject(spec.Register{}), false)
	p := impl.NewProcess(0, 1)
	p.Begin(spec.MakeOp(spec.MethodRead))
	q := p.Clone()
	actP := p.Step(0)
	if actP.Kind != machine.ActInvoke {
		t.Fatal("original did not invoke")
	}
	actQ := q.Step(0)
	if actQ.Kind != machine.ActInvoke {
		t.Fatal("clone lost pending op")
	}
}
