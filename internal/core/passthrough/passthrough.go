// Package passthrough implements an object of type T from a single base
// object of the same type T: every operation is delegated to the base. It
// is the identity of the implementation algebra and the building block of
// several of the paper's arguments:
//
//   - over a linearizable base it is the degenerate linearizable
//     implementation (used as the "strong pivot" protocol in the
//     Proposition 15 case analysis);
//   - over an eventually linearizable base it is the canonical
//     implementation "from some collection of eventually linearizable
//     objects" that Theorem 12's local-copy construction transforms.
package passthrough

import (
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// Impl delegates every operation to one base object.
type Impl struct {
	// ImplName names the implementation (and the implemented object in
	// histories).
	ImplName string
	// Base is the base object's specification.
	Base spec.Object
	// Eventually marks the base object as eventually linearizable.
	Eventually bool
}

var _ machine.Impl = Impl{}

// New returns a passthrough implementation of obj. If eventually is true
// the base is eventually linearizable.
func New(name string, obj spec.Object, eventually bool) Impl {
	return Impl{ImplName: name, Base: obj, Eventually: eventually}
}

// Name implements machine.Impl.
func (im Impl) Name() string { return im.ImplName }

// Spec implements machine.Impl.
func (im Impl) Spec() spec.Object { return im.Base }

// Bases implements machine.Impl.
func (im Impl) Bases() []machine.Base {
	return []machine.Base{{Name: "B", Obj: im.Base, Eventually: im.Eventually}}
}

// NewProcess implements machine.Impl.
func (im Impl) NewProcess(p, n int) machine.Process { return &proc{} }

type proc struct {
	waiting bool
	op      spec.Op
}

func (c *proc) Begin(op spec.Op) {
	c.waiting = false
	c.op = op
}

func (c *proc) Step(resp int64) machine.Action {
	if !c.waiting {
		c.waiting = true
		return machine.Invoke(0, c.op)
	}
	return machine.Return(resp)
}

func (c *proc) Clone() machine.Process {
	cp := *c
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (c *proc) AppendFingerprint(b []byte) ([]byte, bool) {
	if c.waiting {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	return machine.AppendFPOp(b, c.op), true
}
