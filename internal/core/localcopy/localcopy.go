// Package localcopy implements the construction in the proof of
// Theorem 12: given an implementation I of type T from a collection of
// eventually linearizable objects, build the implementation I′ in which
// every shared base object is replaced by per-process local copies. Since
// the eventually linearizable bases may return arbitrary weakly consistent
// answers in any finite prefix, every finite history of I′ is also a
// history of I; and I′ uses no shared objects at all, so each process is
// isolated.
//
// The theorem's punchline is the contrapositive: if exhaustive exploration
// of I′ exhibits a non-linearizable history for a type that is not trivial
// (Definition 13), then no linearizable obstruction-free implementation of
// that type from eventually linearizable objects exists.
package localcopy

import (
	"fmt"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// DefaultMaxInnerSteps bounds the inner steps simulated per operation.
const DefaultMaxInnerSteps = 1 << 14

// Impl is the local-copy transformation I′ of an inner implementation I.
type Impl struct {
	inner        machine.Impl
	maxInner     int
	templateBase []machine.Base
}

var _ machine.Impl = (*Impl)(nil)

// New builds the local-copy transformation. Theorem 12's hypothesis
// requires every base object of the inner implementation to be eventually
// linearizable (and, as everywhere in this module, deterministic so that
// local simulation is well-defined); New enforces both.
func New(inner machine.Impl, maxInnerSteps int) (*Impl, error) {
	if maxInnerSteps <= 0 {
		maxInnerSteps = DefaultMaxInnerSteps
	}
	bases := inner.Bases()
	for _, b := range bases {
		if !b.Eventually {
			return nil, fmt.Errorf("localcopy: base %q of %s is linearizable; Theorem 12 applies to implementations from eventually linearizable objects only",
				b.Name, inner.Name())
		}
		if !b.Obj.Type.Deterministic() {
			return nil, fmt.Errorf("localcopy: base %q of %s has nondeterministic type %s",
				b.Name, inner.Name(), b.Obj.Type.Name())
		}
	}
	return &Impl{inner: inner, maxInner: maxInnerSteps, templateBase: bases}, nil
}

// Name implements machine.Impl.
func (im *Impl) Name() string { return im.inner.Name() + "-localcopy" }

// Spec implements machine.Impl.
func (im *Impl) Spec() spec.Object { return im.inner.Spec() }

// Bases implements machine.Impl: the construction uses no shared objects.
func (im *Impl) Bases() []machine.Base { return nil }

// NewProcess implements machine.Impl: process p runs the inner programme
// against fresh local copies o_1, ..., o_m of the base objects.
func (im *Impl) NewProcess(p, n int) machine.Process {
	copies := make([]localObj, len(im.templateBase))
	for i, b := range im.templateBase {
		copies[i] = localObj{typ: b.Obj.Type, state: b.Obj.Init}
	}
	return &proc{
		inner:    im.inner.NewProcess(p, n),
		copies:   copies,
		maxInner: im.maxInner,
	}
}

type localObj struct {
	typ   spec.Type
	state spec.State
}

type proc struct {
	inner    machine.Process
	copies   []localObj
	maxInner int
}

func (c *proc) Begin(op spec.Op) { c.inner.Begin(op) }

// Step runs the inner programme to completion against the local copies.
// All inner base actions are local computation in the transformed
// implementation, so the whole operation is one step of I′ — which is also
// why I′ is wait-free whenever I is obstruction-free: the inner programme
// runs solo against its copies.
//
// Step panics if the inner programme violates its contract (invokes an
// out-of-range base, applies an inapplicable operation, or exceeds
// maxInner steps without returning); these are programmer errors in the
// inner implementation, not runtime conditions.
func (c *proc) Step(resp int64) machine.Action {
	act := c.inner.Step(resp)
	for steps := 0; act.Kind == machine.ActInvoke; steps++ {
		if steps >= c.maxInner {
			panic(fmt.Sprintf("localcopy: inner programme exceeded %d steps without returning (not obstruction-free solo?)", c.maxInner))
		}
		if act.Obj < 0 || act.Obj >= len(c.copies) {
			panic(fmt.Sprintf("localcopy: inner programme invoked unknown base %d", act.Obj))
		}
		obj := &c.copies[act.Obj]
		outs := obj.typ.Step(obj.state, act.Op)
		if len(outs) == 0 {
			panic(fmt.Sprintf("localcopy: base %d (%s) rejects %s in state %v",
				act.Obj, obj.typ.Name(), act.Op, obj.state))
		}
		obj.state = outs[0].Next
		act = c.inner.Step(outs[0].Resp)
	}
	return machine.Return(act.Ret)
}

func (c *proc) Clone() machine.Process {
	cp := &proc{
		inner:    c.inner.Clone(),
		copies:   make([]localObj, len(c.copies)),
		maxInner: c.maxInner,
	}
	copy(cp.copies, c.copies)
	return cp
}

// AppendFingerprint implements machine.Fingerprinter; it reports false
// when the inner programme is not a Fingerprinter. The local base-object
// copies are part of the process state and are included.
func (c *proc) AppendFingerprint(b []byte) ([]byte, bool) {
	f, ok := c.inner.(machine.Fingerprinter)
	if !ok {
		return b, false
	}
	b, ok = f.AppendFingerprint(b)
	if !ok {
		return b, false
	}
	for i := range c.copies {
		b, ok = machine.AppendFPState(b, c.copies[i].state)
		if !ok {
			return b, false
		}
	}
	return b, true
}
