package localcopy

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

func elRegisterImpl() machine.Impl {
	return passthrough.New("reg", spec.NewObject(spec.Register{}), true)
}

func TestNewValidation(t *testing.T) {
	// Theorem 12 requires all bases eventually linearizable.
	if _, err := New(counter.CAS{}, 0); err == nil {
		t.Fatal("accepted linearizable bases")
	}
	lc, err := New(elRegisterImpl(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(lc.Name(), "-localcopy") {
		t.Errorf("name = %q", lc.Name())
	}
	if len(lc.Bases()) != 0 {
		t.Error("local-copy implementation must use no shared objects")
	}
}

func TestLocalCopyIsWaitFreeOneStepPerOp(t *testing.T) {
	// Every operation of I′ completes in exactly one step: the whole inner
	// programme runs locally (this is the wait-freedom part of the
	// theorem, in the strongest possible form).
	lc, err := New(elRegisterImpl(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodWrite, 1), spec.MakeOp(spec.MethodRead)},
		{spec.MakeOp1(spec.MethodWrite, 2), spec.MakeOp(spec.MethodRead)},
	}
	res, err := sim.Run(sim.Config{Impl: lc, Workload: w, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 4 {
		t.Fatalf("steps = %d, want 4 (one per operation)", res.Steps)
	}
}

func TestLocalCopyHistoriesWeaklyConsistent(t *testing.T) {
	// "Note that using a local copy of each object ensures the responses
	// satisfy weak consistency" — every leaf history of I′'s execution
	// tree satisfies Definition 1.
	lc, err := New(elRegisterImpl(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodWrite, 1), spec.MakeOp(spec.MethodRead)},
		{spec.MakeOp1(spec.MethodWrite, 2), spec.MakeOp(spec.MethodRead)},
	}
	root, err := sim.NewSystem(lc, w, nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, _, err := explore.WeaklyConsistentEverywhere(root, 8, explore.Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("local-copy history violates weak consistency:\n%s", bad.History())
	}
}

func TestLocalCopyNonTrivialTypeNotLinearizable(t *testing.T) {
	// The register is a non-trivial type (Definition 13), so the theorem's
	// contrapositive predicts I′ cannot be linearizable: exploration must
	// exhibit a violation (a process missing another's write forever).
	lc, err := New(elRegisterImpl(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]spec.Op{
		{spec.MakeOp1(spec.MethodWrite, 1)},
		{spec.MakeOp(spec.MethodRead), spec.MakeOp(spec.MethodRead)},
	}
	root, err := sim.NewSystem(lc, w, nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, _, err := explore.LinearizableEverywhere(root, 8, explore.Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("local-copy register appeared linearizable; Theorem 12 would be violated")
	}
	if bad == nil {
		t.Fatal("no violating history returned")
	}
}

func TestLocalCopyTrivialTypeIsLinearizable(t *testing.T) {
	// A constant object is trivial, and its local-copy implementation is
	// perfectly linearizable — the other direction of Proposition 14.
	ct := spec.ConstantType(42)
	inner := passthrough.New("const", spec.NewObject(ct), true)
	lc, err := New(inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	get := spec.MakeOp("get")
	w := [][]spec.Op{{get, get}, {get}}
	root, err := sim.NewSystem(lc, w, nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, _, err := explore.LinearizableEverywhere(root, 8, explore.Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("constant local copy not linearizable:\n%s", bad.History())
	}
}

func TestLocalCopySoloMatchesInner(t *testing.T) {
	// A solo process cannot distinguish I′ from I (the indistinguishability
	// step in the wait-freedom argument): solo histories agree.
	inner := elRegisterImpl()
	lc, err := New(inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]spec.Op{{
		spec.MakeOp1(spec.MethodWrite, 5),
		spec.MakeOp(spec.MethodRead),
		spec.MakeOp1(spec.MethodWrite, 6),
		spec.MakeOp(spec.MethodRead),
	}}
	resInner, err := sim.Run(sim.Config{Impl: inner, Workload: w, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	resLC, err := sim.Run(sim.Config{Impl: lc, Workload: w, Seed: 0})
	if err != nil {
		t.Fatal(err)
	}
	opsInner := resInner.History.Operations()
	opsLC := resLC.History.Operations()
	if len(opsInner) != len(opsLC) {
		t.Fatalf("op counts differ: %d vs %d", len(opsInner), len(opsLC))
	}
	for i := range opsInner {
		if opsInner[i].Resp != opsLC[i].Resp {
			t.Fatalf("solo op %d: inner %d, localcopy %d", i, opsInner[i].Resp, opsLC[i].Resp)
		}
	}
}

func TestLocalCopyCloneIndependence(t *testing.T) {
	lc, err := New(elRegisterImpl(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p := lc.NewProcess(0, 1)
	p.Begin(spec.MakeOp1(spec.MethodWrite, 9))
	if act := p.Step(0); act.Kind != machine.ActReturn {
		t.Fatalf("write action = %v", act)
	}
	q := p.Clone()
	q.Begin(spec.MakeOp1(spec.MethodWrite, 3))
	if act := q.Step(0); act.Kind != machine.ActReturn {
		t.Fatal("clone write failed")
	}
	p.Begin(spec.MakeOp(spec.MethodRead))
	act := p.Step(0)
	if act.Ret != 9 {
		t.Fatalf("original read %d after clone write, want 9", act.Ret)
	}
}

func TestLocalCopyPanicsOnRunawayInner(t *testing.T) {
	// An inner programme that loops forever on a local copy violates the
	// obstruction-freedom hypothesis; the transformation reports it.
	inner := &loopImpl{}
	lc, err := New(inner, 16)
	if err != nil {
		t.Fatal(err)
	}
	p := lc.NewProcess(0, 1)
	p.Begin(spec.MakeOp(spec.MethodRead))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for runaway inner programme")
		}
	}()
	p.Step(0)
}

// loopImpl's programme reads its base register forever.
type loopImpl struct{}

func (loopImpl) Name() string      { return "loop" }
func (loopImpl) Spec() spec.Object { return spec.NewObject(spec.Register{}) }
func (loopImpl) Bases() []machine.Base {
	return []machine.Base{{Name: "R", Obj: spec.NewObject(spec.Register{}), Eventually: true}}
}
func (loopImpl) NewProcess(p, n int) machine.Process { return &loopProc{} }

type loopProc struct{}

func (l *loopProc) Begin(op spec.Op) {}
func (l *loopProc) Step(resp int64) machine.Action {
	return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
}
func (l *loopProc) Clone() machine.Process { return &loopProc{} }
