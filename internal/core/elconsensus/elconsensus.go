// Package elconsensus implements Proposition 16: a wait-free, eventually
// linearizable consensus object built from eventually linearizable
// single-writer registers.
//
// The algorithm is the paper's, verbatim:
//
//	Propose(v):
//	  if Proposal[i] = ⊥ then Proposal[i] := v
//	  read Proposal[1..n] and return leftmost non-⊥ value
//
// Weak consistency of the base registers guarantees that a process's read
// of its own register returns ⊥ exactly until its first write, so the
// leftmost non-⊥ value is always well-defined; once the base registers
// stabilize and the writes settle, all late Propose operations read the
// same array and return the same value, which is what makes the
// implementation eventually linearizable (see the proof of Proposition 16).
package elconsensus

import (
	"fmt"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// MaxProcs bounds the number of processes (one single-writer register
// each).
const MaxProcs = 8

// Impl is the Proposition 16 implementation.
type Impl struct {
	// AtomicBases, when true, uses linearizable base registers instead of
	// eventually linearizable ones. The proposition holds either way (a
	// linearizable register is a degenerate eventually linearizable one);
	// the interesting runs use the default false.
	AtomicBases bool
}

var _ machine.Impl = Impl{}

// Name implements machine.Impl.
func (Impl) Name() string { return "el-consensus" }

// Spec implements machine.Impl.
func (Impl) Spec() spec.Object { return spec.NewObject(spec.Consensus{}) }

// Bases implements machine.Impl: one register per process, initialized to
// the paper's ⊥ (spec.NoValue), eventually linearizable by default.
func (im Impl) Bases() []machine.Base {
	bases := make([]machine.Base, MaxProcs)
	for i := range bases {
		bases[i] = machine.Base{
			Name:       fmt.Sprintf("Proposal%d", i),
			Obj:        spec.Object{Type: spec.Register{InitVal: spec.NoValue}, Init: spec.NoValue},
			Eventually: !im.AtomicBases,
		}
	}
	return bases
}

// NewProcess implements machine.Impl.
func (Impl) NewProcess(p, n int) machine.Process {
	return &proc{p: p, n: n}
}

const (
	stIdle = iota
	stAfterOwnRead
	stAfterWrite
	stScanning
)

type proc struct {
	p, n     int
	pc       int
	v        int64 // current proposal argument
	scan     int   // next register to read in the scan
	leftmost int64 // leftmost non-⊥ seen so far
}

func (c *proc) Begin(op spec.Op) {
	c.pc = stIdle
	c.v = op.Args[0]
}

func (c *proc) Step(resp int64) machine.Action {
	switch c.pc {
	case stIdle:
		c.pc = stAfterOwnRead
		return machine.Invoke(c.p, spec.MakeOp(spec.MethodRead))
	case stAfterOwnRead:
		if resp == spec.NoValue {
			c.pc = stAfterWrite
			return machine.Invoke(c.p, spec.MakeOp1(spec.MethodWrite, c.v))
		}
		return c.startScan()
	case stAfterWrite:
		return c.startScan()
	default: // stScanning: resp answers the read of register c.scan
		if resp != spec.NoValue && c.leftmost == spec.NoValue {
			c.leftmost = resp
		}
		c.scan++
		if c.scan >= c.n {
			return machine.Return(c.leftmost)
		}
		return machine.Invoke(c.scan, spec.MakeOp(spec.MethodRead))
	}
}

func (c *proc) startScan() machine.Action {
	c.scan = 0
	c.leftmost = spec.NoValue
	c.pc = stScanning
	return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
}

func (c *proc) Clone() machine.Process {
	cp := *c
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (c *proc) AppendFingerprint(b []byte) ([]byte, bool) {
	b = machine.AppendFPInt(b, int64(c.pc))
	b = machine.AppendFPInt(b, c.v)
	b = machine.AppendFPInt(b, int64(c.scan))
	return machine.AppendFPInt(b, c.leftmost), true
}
