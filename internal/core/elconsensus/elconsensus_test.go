package elconsensus

import (
	"testing"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// soloDrive runs one operation solo against atomic base registers.
func soloDrive(t *testing.T, impl machine.Impl, proc machine.Process, states []spec.State, op spec.Op) int64 {
	t.Helper()
	bases := impl.Bases()
	proc.Begin(op)
	resp := int64(0)
	for i := 0; i < 1000; i++ {
		act := proc.Step(resp)
		if act.Kind == machine.ActReturn {
			return act.Ret
		}
		outs := bases[act.Obj].Obj.Type.Step(states[act.Obj], act.Op)
		if len(outs) == 0 {
			t.Fatalf("base %d rejects %s", act.Obj, act.Op)
		}
		states[act.Obj] = outs[0].Next
		resp = outs[0].Resp
	}
	t.Fatal("propose did not complete")
	return 0
}

func initStates(impl machine.Impl) []spec.State {
	bases := impl.Bases()
	states := make([]spec.State, len(bases))
	for i, b := range bases {
		states[i] = b.Obj.Init
	}
	return states
}

func TestSoloProposeDecidesOwnValue(t *testing.T) {
	impl := Impl{}
	states := initStates(impl)
	p := impl.NewProcess(0, 3)
	if got := soloDrive(t, impl, p, states, spec.MakeOp1(spec.MethodPropose, 42)); got != 42 {
		t.Fatalf("solo propose returned %d, want 42", got)
	}
	// Re-proposing returns the same value and writes nothing new.
	if got := soloDrive(t, impl, p, states, spec.MakeOp1(spec.MethodPropose, 9)); got != 42 {
		t.Fatalf("second propose returned %d, want 42", got)
	}
	if states[0] != int64(42) {
		t.Fatalf("register overwritten: %v", states[0])
	}
}

func TestLeftmostWins(t *testing.T) {
	impl := Impl{}
	states := initStates(impl)
	// p2 proposes after p0 and p1 already announced.
	states[0] = int64(10)
	states[1] = int64(20)
	p := impl.NewProcess(2, 3)
	if got := soloDrive(t, impl, p, states, spec.MakeOp1(spec.MethodPropose, 30)); got != 10 {
		t.Fatalf("propose returned %d, want leftmost 10", got)
	}
}

func TestSecondProposeSkipsWrite(t *testing.T) {
	impl := Impl{}
	p := impl.NewProcess(0, 2)
	p.Begin(spec.MakeOp1(spec.MethodPropose, 5))
	act := p.Step(0)
	if act.Op.Method != spec.MethodRead || act.Obj != 0 {
		t.Fatalf("first action = %v", act)
	}
	// Own register already holds a value: straight to the scan.
	act = p.Step(5)
	if act.Op.Method != spec.MethodRead || act.Obj != 0 {
		t.Fatalf("after own-read action = %v, want scan from register 0", act)
	}
}

func TestCloneIndependence(t *testing.T) {
	impl := Impl{}
	p := impl.NewProcess(0, 2)
	p.Begin(spec.MakeOp1(spec.MethodPropose, 5))
	p.Step(0)
	q := p.Clone()
	actP := p.Step(spec.NoValue) // own cell empty: write
	actQ := q.Step(7)            // own cell occupied: scan
	if actP.Op.Method != spec.MethodWrite {
		t.Fatalf("original action = %v", actP)
	}
	if actQ.Op.Method != spec.MethodRead {
		t.Fatalf("clone action = %v", actQ)
	}
}

func TestImplMetadata(t *testing.T) {
	impl := Impl{}
	if err := machine.Validate(impl, 3); err != nil {
		t.Fatal(err)
	}
	if _, ok := impl.Spec().Type.(spec.Consensus); !ok {
		t.Fatalf("spec type = %s", impl.Spec().Type.Name())
	}
	for _, b := range impl.Bases() {
		if !b.Eventually {
			t.Error("default bases must be eventually linearizable")
		}
		if b.Obj.Init != spec.NoValue {
			t.Errorf("base init = %v, want ⊥", b.Obj.Init)
		}
	}
	for _, b := range (Impl{AtomicBases: true}).Bases() {
		if b.Eventually {
			t.Error("AtomicBases not honored")
		}
	}
}
