package announce

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/progress"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

var fetchinc = spec.MakeOp(spec.MethodFetchInc)

func implObjs(impl interface {
	Name() string
	Spec() spec.Object
}) map[string]spec.Object {
	return map[string]spec.Object{impl.Name(): impl.Spec()}
}

func TestJunkCounterViolatesWeakConsistency(t *testing.T) {
	// Baseline: the junk counter's overshoots are out of left field.
	impl := counter.Junk{}
	sawViolation := false
	for seed := int64(0); seed < 10; seed++ {
		res, err := sim.Run(sim.Config{
			Impl:      impl,
			Workload:  sim.UniformWorkload(2, 3, fetchinc),
			Scheduler: sim.Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := check.WeaklyConsistent(implObjs(impl), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Fatal("junk counter never violated weak consistency; the demo premise is broken")
	}
}

func TestWrapperRestoresWeakConsistency(t *testing.T) {
	// Figure 1 in action: wrapping the junk counter yields weakly
	// consistent histories on every schedule tried.
	inner := counter.Junk{}
	impl, err := New(inner, FetchIncCodec(), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(impl.Name(), "-announced") {
		t.Errorf("name = %q", impl.Name())
	}
	for seed := int64(0); seed < 20; seed++ {
		res, err := sim.Run(sim.Config{
			Impl:      impl,
			Workload:  sim.UniformWorkload(2, 3, fetchinc),
			Scheduler: sim.Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.TimedOut {
			t.Fatalf("seed %d timed out (wrapper not non-blocking?)", seed)
		}
		ok, badOp, err := check.WeaklyConsistentExplain(implObjs(impl), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: wrapped junk violated weak consistency at %s\n%s",
				seed, badOp, res.History)
		}
	}
}

func TestWrapperPreservesGoodResponses(t *testing.T) {
	// Wrapping the honest CAS counter: the verification accepts the shared
	// responses, so the wrapper behaves linearizably too.
	inner := counter.CAS{}
	impl, err := New(inner, FetchIncCodec(), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 10; seed++ {
		res, err := sim.Run(sim.Config{
			Impl:      impl,
			Workload:  sim.UniformWorkload(2, 2, fetchinc),
			Scheduler: sim.Random{},
			Seed:      seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		ok, err := check.Linearizable(implObjs(impl), res.History, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("seed %d: wrapped CAS counter not linearizable\n%s", seed, res.History)
		}
	}
}

func TestWrapperSoloSequence(t *testing.T) {
	// Solo, the wrapped junk counter returns a legal 0,1,2,... sequence:
	// overshoots are replaced by the private count, which solo coincides
	// with the true count.
	inner := counter.Junk{}
	impl, err := New(inner, FetchIncCodec(), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Config{
		Impl:     impl,
		Workload: [][]spec.Op{{fetchinc, fetchinc, fetchinc, fetchinc}},
		Seed:     0,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, op := range res.History.Operations() {
		if op.Resp != want {
			t.Fatalf("solo wrapped junk returned %d, want %d", op.Resp, want)
		}
		want++
	}
}

func TestWrapperPreservesProgress(t *testing.T) {
	// Proposition 11's wrapper must stay non-blocking: the announcement
	// write, the inner call, and the bounded scan add only finitely many
	// steps per operation (the scan is bounded by operations already
	// announced).
	impl, err := New(counter.Junk{}, FetchIncCodec(), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := progress.Probe(impl, progress.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ObstructionFree || !rep.NonBlocking {
		t.Errorf("wrapper lost progress: %+v", rep)
	}
}

func TestFetchIncCodec(t *testing.T) {
	c := FetchIncCodec()
	code, err := c.Encode(fetchinc)
	if err != nil || code != 0 {
		t.Fatalf("encode = %d, %v", code, err)
	}
	op, err := c.Decode(0)
	if err != nil || op != fetchinc {
		t.Fatalf("decode = %v, %v", op, err)
	}
	if _, err := c.Encode(spec.MakeOp(spec.MethodRead)); err == nil {
		t.Error("encoded a read")
	}
	if _, err := c.Decode(5); err == nil {
		t.Error("decoded an unknown announcement")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(counter.CAS{}, Codec{}, check.Options{}); err == nil {
		t.Fatal("accepted a codec without Encode/Decode")
	}
}

func TestWrapperBasesLayout(t *testing.T) {
	impl, err := New(counter.CAS{}, FetchIncCodec(), check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bases := impl.Bases()
	if len(bases) != 1+MaxProcs {
		t.Fatalf("bases = %d, want %d", len(bases), 1+MaxProcs)
	}
	if bases[0].Name != "C" {
		t.Errorf("inner base first, got %q", bases[0].Name)
	}
	for i := 1; i < len(bases); i++ {
		if bases[i].Eventually {
			t.Error("announcement arrays must be linearizable")
		}
		if bases[i].Obj.Type.Name() != "regarray" {
			t.Errorf("base %d type %s", i, bases[i].Obj.Type.Name())
		}
	}
}
