// Package announce implements Figure 1 of the paper (the proof of
// Proposition 11): a wrapper that upgrades any implementation satisfying
// only the liveness half of eventual linearizability (t-linearizability for
// some t) into one that also satisfies the safety half (weak consistency,
// Definition 1) — hence into an eventually linearizable implementation —
// using a family of single-writer announcement registers.
//
// Per operation, the wrapper:
//
//  1. announces the operation by writing it into the process's announcement
//     array R_i[c_i] (line 2);
//  2. computes a private fallback response r_private by applying the
//     operation to a local copy q_i of the object that has seen only this
//     process's operations (line 4);
//  3. runs the inner implementation to obtain r_shared (line 5);
//  4. reads every process's announcement array to collect all announced
//     operations (lines 6-12);
//  5. returns r_shared if some permutation of a subset of the announced
//     operations — including all of its own — forms a legal sequential
//     execution in which the operation returns r_shared (line 13), and
//     otherwise returns r_private (line 14).
package announce

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// MaxProcs bounds the number of processes (one announcement array each).
const MaxProcs = 8

// Codec translates operations to and from announcement register values
// (which must be non-negative; spec.NoValue marks empty cells).
type Codec struct {
	// Encode maps an operation to a non-negative announcement value.
	Encode func(spec.Op) (int64, error)
	// Decode inverts Encode.
	Decode func(int64) (spec.Op, error)
}

// FetchIncCodec encodes the single fetch&inc operation as 0.
func FetchIncCodec() Codec {
	return Codec{
		Encode: func(op spec.Op) (int64, error) {
			if op.Method != spec.MethodFetchInc {
				return 0, fmt.Errorf("announce: cannot encode %s", op)
			}
			return 0, nil
		},
		Decode: func(v int64) (spec.Op, error) {
			if v != 0 {
				return spec.Op{}, fmt.Errorf("announce: cannot decode %d", v)
			}
			return spec.MakeOp(spec.MethodFetchInc), nil
		},
	}
}

// Impl is the Figure 1 wrapper around an inner implementation.
type Impl struct {
	inner machine.Impl
	codec Codec
	opts  check.Options
}

var _ machine.Impl = (*Impl)(nil)

// New wraps inner with the Figure 1 algorithm. The inner implementation's
// type must have finite nondeterminism (all types in this module do); codec
// translates its operations into announcement values.
func New(inner machine.Impl, codec Codec, opts check.Options) (*Impl, error) {
	if codec.Encode == nil || codec.Decode == nil {
		return nil, fmt.Errorf("announce: codec must provide Encode and Decode")
	}
	return &Impl{inner: inner, codec: codec, opts: opts}, nil
}

// Name implements machine.Impl.
func (im *Impl) Name() string { return im.inner.Name() + "-announced" }

// Spec implements machine.Impl.
func (im *Impl) Spec() spec.Object { return im.inner.Spec() }

// Bases implements machine.Impl: the inner bases followed by one
// linearizable announcement array per process (Proposition 11's "system
// that includes linearizable registers as base objects").
func (im *Impl) Bases() []machine.Base {
	inner := im.inner.Bases()
	out := make([]machine.Base, 0, len(inner)+MaxProcs)
	out = append(out, inner...)
	for i := 0; i < MaxProcs; i++ {
		out = append(out, machine.Base{
			Name: fmt.Sprintf("R%d", i),
			Obj: spec.Object{
				Type: spec.RegisterArray{InitVal: spec.NoValue},
				Init: spec.RegisterArray{InitVal: spec.NoValue}.Init(),
			},
		})
	}
	return out
}

// NewProcess implements machine.Impl.
func (im *Impl) NewProcess(p, n int) machine.Process {
	return &proc{
		me:        p,
		n:         n,
		arrayBase: len(im.inner.Bases()),
		inner:     im.inner.NewProcess(p, n),
		codec:     im.codec,
		obj:       im.inner.Spec(),
		q:         im.inner.Spec().Init,
		opts:      im.opts,
	}
}

const (
	phStart = iota
	phAnnounced
	phInner
	phScan
)

type proc struct {
	me, n     int
	arrayBase int
	inner     machine.Process
	codec     Codec
	obj       spec.Object
	opts      check.Options

	// Cross-operation state (the paper's c_i and q_i).
	c int64      // operations announced so far
	q spec.State // object state seen through own operations only

	// Per-operation state.
	phase    int
	op       spec.Op
	rprivate int64
	rshared  int64
	scanJ    int
	scanK    int64
	ownOps   []spec.Op
	otherOps []spec.Op
}

func (c *proc) Begin(op spec.Op) {
	c.phase = phStart
	c.op = op
}

func (c *proc) Step(resp int64) machine.Action {
	switch c.phase {
	case phStart:
		code, err := c.codec.Encode(c.op)
		if err != nil || code < 0 {
			panic(fmt.Sprintf("announce: encode %s: %v (code %d)", c.op, err, code))
		}
		c.phase = phAnnounced
		return machine.Invoke(c.arrayBase+c.me, spec.MakeOp2(spec.MethodWrite, c.c, code))
	case phAnnounced:
		c.c++
		outs := c.obj.Type.Step(c.q, c.op)
		if len(outs) == 0 {
			panic(fmt.Sprintf("announce: %s inapplicable to private state %v", c.op, c.q))
		}
		c.q = outs[0].Next
		c.rprivate = outs[0].Resp
		c.inner.Begin(c.op)
		return c.driveInner(0)
	case phInner:
		return c.driveInner(resp)
	default: // phScan: resp answers the read of R_scanJ[scanK]
		return c.scanStep(resp)
	}
}

// driveInner forwards the inner implementation's actions; when the inner
// operation completes, the announcement scan begins.
func (c *proc) driveInner(resp int64) machine.Action {
	act := c.inner.Step(resp)
	if act.Kind == machine.ActInvoke {
		c.phase = phInner
		return act
	}
	c.rshared = act.Ret
	c.phase = phScan
	c.scanJ = 0
	c.scanK = 0
	c.ownOps = c.ownOps[:0]
	c.otherOps = c.otherOps[:0]
	return machine.Invoke(c.arrayBase, spec.MakeOp1(spec.MethodRead, 0))
}

// scanStep consumes one announcement-array read and issues the next, or
// finishes the operation once every array has been drained.
func (c *proc) scanStep(resp int64) machine.Action {
	if resp == spec.NoValue {
		c.scanJ++
		c.scanK = 0
	} else {
		op, err := c.codec.Decode(resp)
		if err != nil {
			panic(fmt.Sprintf("announce: decode announcement %d: %v", resp, err))
		}
		if c.scanJ == c.me {
			c.ownOps = append(c.ownOps, op)
		} else {
			c.otherOps = append(c.otherOps, op)
		}
		c.scanK++
	}
	if c.scanJ < c.n {
		return machine.Invoke(c.arrayBase+c.scanJ, spec.MakeOp1(spec.MethodRead, c.scanK))
	}
	return machine.Return(c.finish())
}

// finish performs the line 13 test and picks r_shared or r_private.
func (c *proc) finish() int64 {
	if len(c.ownOps) == 0 || c.ownOps[len(c.ownOps)-1] != c.op {
		panic(fmt.Sprintf("announce: own announcement missing: read %v, current %s", c.ownOps, c.op))
	}
	must := c.ownOps[:len(c.ownOps)-1]
	ok, err := check.SequentialWitness(c.obj, must, c.otherOps, c.op, c.rshared, c.opts)
	if err != nil {
		panic(fmt.Sprintf("announce: witness search: %v", err))
	}
	if ok {
		return c.rshared
	}
	return c.rprivate
}

func (c *proc) Clone() machine.Process {
	cp := *c
	cp.inner = c.inner.Clone()
	cp.ownOps = append([]spec.Op(nil), c.ownOps...)
	cp.otherOps = append([]spec.Op(nil), c.otherOps...)
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter; it reports false
// when the inner programme is not a Fingerprinter.
func (c *proc) AppendFingerprint(b []byte) ([]byte, bool) {
	f, ok := c.inner.(machine.Fingerprinter)
	if !ok {
		return b, false
	}
	b, ok = f.AppendFingerprint(b)
	if !ok {
		return b, false
	}
	b = machine.AppendFPInt(b, c.c)
	b, ok = machine.AppendFPState(b, c.q)
	if !ok {
		return b, false
	}
	b = machine.AppendFPInt(b, int64(c.phase))
	b = machine.AppendFPOp(b, c.op)
	b = machine.AppendFPInt(b, c.rprivate)
	b = machine.AppendFPInt(b, c.rshared)
	b = machine.AppendFPInt(b, int64(c.scanJ))
	b = machine.AppendFPInt(b, c.scanK)
	b = machine.AppendFPInt(b, int64(len(c.ownOps)))
	for _, op := range c.ownOps {
		b = machine.AppendFPOp(b, op)
	}
	b = machine.AppendFPInt(b, int64(len(c.otherOps)))
	for _, op := range c.otherOps {
		b = machine.AppendFPOp(b, op)
	}
	return b, true
}
