package eltestset

import (
	"testing"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

var testset = spec.MakeOp(spec.MethodTestSet)

func TestLocalFirstZeroThenOnes(t *testing.T) {
	impl := Local{}
	if err := machine.Validate(impl, 2); err != nil {
		t.Fatal(err)
	}
	if len(impl.Bases()) != 0 {
		t.Fatal("el-testset must use no shared objects")
	}
	p := impl.NewProcess(0, 2)
	p.Begin(testset)
	if act := p.Step(0); act.Kind != machine.ActReturn || act.Ret != 0 {
		t.Fatalf("first testset = %v, want return 0", act)
	}
	for i := 0; i < 3; i++ {
		p.Begin(testset)
		if act := p.Step(0); act.Kind != machine.ActReturn || act.Ret != 1 {
			t.Fatalf("testset #%d = %v, want return 1", i+2, act)
		}
	}
}

func TestLocalEachProcessGetsOneZero(t *testing.T) {
	impl := Local{}
	for pid := 0; pid < 3; pid++ {
		p := impl.NewProcess(pid, 3)
		p.Begin(testset)
		if act := p.Step(0); act.Ret != 0 {
			t.Fatalf("p%d first testset = %v", pid, act)
		}
	}
}

func TestLocalClone(t *testing.T) {
	impl := Local{}
	p := impl.NewProcess(0, 1)
	p.Begin(testset)
	p.Step(0)
	q := p.Clone()
	q.Begin(testset)
	if act := q.Step(0); act.Ret != 1 {
		t.Fatalf("clone lost state: %v", act)
	}
}

func TestFromCASWinnerAndLosers(t *testing.T) {
	impl := FromCAS{}
	if err := machine.Validate(impl, 2); err != nil {
		t.Fatal(err)
	}
	state := impl.Bases()[0].Obj.Init
	typ := impl.Bases()[0].Obj.Type

	run := func(p machine.Process) int64 {
		p.Begin(testset)
		resp := int64(0)
		for {
			act := p.Step(resp)
			if act.Kind == machine.ActReturn {
				return act.Ret
			}
			outs := typ.Step(state, act.Op)
			state = outs[0].Next
			resp = outs[0].Resp
		}
	}
	if got := run(impl.NewProcess(0, 2)); got != 0 {
		t.Fatalf("winner returned %d", got)
	}
	if got := run(impl.NewProcess(1, 2)); got != 1 {
		t.Fatalf("loser returned %d", got)
	}
}
