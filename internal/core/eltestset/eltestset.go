// Package eltestset implements the two test&set objects of the paper's
// Section 4/5 discussion:
//
//   - Local: the eventually linearizable test&set that uses no shared
//     objects at all — each process returns 0 from its first testset and 1
//     from every later one. At most n operations ever return 0, all within
//     a finite prefix, so every (infinite) history is t-linearizable once
//     the prefix has passed; the implementation communicates nothing and is
//     trivially wait-free. This is the paper's example of a type whose
//     "interesting" behaviour lives in a finite prefix, making eventual
//     linearizability free.
//   - FromCAS: the linearizable test&set from compare&swap, for contrast:
//     full linearizability of test&set requires real synchronization (it
//     solves two-process consensus).
package eltestset

import (
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// Local is the communication-free eventually linearizable test&set.
type Local struct{}

var _ machine.Impl = Local{}

// Name implements machine.Impl.
func (Local) Name() string { return "el-testset" }

// Spec implements machine.Impl.
func (Local) Spec() spec.Object { return spec.NewObject(spec.TestSet{}) }

// Bases implements machine.Impl: none.
func (Local) Bases() []machine.Base { return nil }

// NewProcess implements machine.Impl.
func (Local) NewProcess(p, n int) machine.Process { return &localProc{} }

type localProc struct {
	called bool
}

func (l *localProc) Begin(op spec.Op) {}

func (l *localProc) Step(resp int64) machine.Action {
	if l.called {
		return machine.Return(1)
	}
	l.called = true
	return machine.Return(0)
}

func (l *localProc) Clone() machine.Process {
	cp := *l
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (l *localProc) AppendFingerprint(b []byte) ([]byte, bool) {
	if l.called {
		return append(b, 1), true
	}
	return append(b, 0), true
}

// FromCAS is the linearizable test&set from a compare&swap word.
type FromCAS struct{}

var _ machine.Impl = FromCAS{}

// Name implements machine.Impl.
func (FromCAS) Name() string { return "cas-testset" }

// Spec implements machine.Impl.
func (FromCAS) Spec() spec.Object { return spec.NewObject(spec.TestSet{}) }

// Bases implements machine.Impl.
func (FromCAS) Bases() []machine.Base {
	return []machine.Base{{
		Name: "C",
		Obj:  spec.Object{Type: spec.CAS{}, Init: int64(0)},
	}}
}

// NewProcess implements machine.Impl.
func (FromCAS) NewProcess(p, n int) machine.Process { return &casTSProc{} }

type casTSProc struct {
	waiting bool
}

func (c *casTSProc) Begin(op spec.Op) { c.waiting = false }

func (c *casTSProc) Step(resp int64) machine.Action {
	if !c.waiting {
		c.waiting = true
		return machine.Invoke(0, spec.MakeOp2(spec.MethodCAS, 0, 1))
	}
	if resp == 1 {
		return machine.Return(0)
	}
	return machine.Return(1)
}

func (c *casTSProc) Clone() machine.Process {
	cp := *c
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (c *casTSProc) AppendFingerprint(b []byte) ([]byte, bool) {
	if c.waiting {
		return append(b, 1), true
	}
	return append(b, 0), true
}
