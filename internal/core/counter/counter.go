// Package counter provides the fetch&increment implementations around which
// the paper's paradox revolves:
//
//   - CAS: the textbook linearizable, non-blocking fetch&increment from
//     compare&swap (what the paper's introduction says such counters are
//     "typically implemented in software using").
//   - Sloppy: the introduction's eventually-consistent counter — increment
//     locally, announce via a single-writer register, return a possibly
//     lower value. It is always weakly consistent and every increment is
//     eventually counted, yet by Corollary 19 it cannot be eventually
//     linearizable: under perpetual contention its histories require
//     ever-growing t (the divergence the experiments measure).
//   - Warmup: an eventually linearizable but non-linearizable counter. It
//     increments through CAS (so nothing is lost) but answers with its
//     private operation count until the shared count crosses a threshold;
//     afterwards it is the linearizable CAS counter. The stabilization
//     point depends on the schedule, exactly the regime Proposition 18
//     quantifies over; the stable-configuration construction (package
//     stabilize) extracts the linearizable core from it.
package counter

import (
	"fmt"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// ----------------------------------------------------------------------------
// CAS counter (linearizable).

// CAS is the linearizable fetch&increment from a compare&swap base object.
type CAS struct {
	// InitVal is the counter's initial value.
	InitVal int64
}

var _ machine.Impl = CAS{}

// Name implements machine.Impl.
func (CAS) Name() string { return "cas-counter" }

// Spec implements machine.Impl.
func (c CAS) Spec() spec.Object {
	return spec.Object{Type: spec.FetchInc{InitVal: c.InitVal}, Init: c.InitVal}
}

// Bases implements machine.Impl: a single linearizable CAS word.
func (c CAS) Bases() []machine.Base {
	return []machine.Base{{
		Name: "C",
		Obj:  spec.Object{Type: spec.CAS{InitVal: c.InitVal}, Init: c.InitVal},
	}}
}

// NewProcess implements machine.Impl.
func (CAS) NewProcess(p, n int) machine.Process { return &casProc{} }

const (
	casIdle = iota
	casAfterRead
	casAfterCAS
)

type casProc struct {
	pc int
	v  int64
}

func (c *casProc) Begin(op spec.Op) { c.pc = casIdle }

func (c *casProc) Step(resp int64) machine.Action {
	switch c.pc {
	case casIdle:
		c.pc = casAfterRead
		return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
	case casAfterRead:
		c.v = resp
		c.pc = casAfterCAS
		return machine.Invoke(0, spec.MakeOp2(spec.MethodCAS, c.v, c.v+1))
	default: // casAfterCAS
		if resp == 1 {
			return machine.Return(c.v)
		}
		c.pc = casAfterRead
		return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
	}
}

func (c *casProc) Clone() machine.Process {
	cp := *c
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (c *casProc) AppendFingerprint(b []byte) ([]byte, bool) {
	b = machine.AppendFPInt(b, int64(c.pc))
	return machine.AppendFPInt(b, c.v), true
}

// ----------------------------------------------------------------------------
// Sloppy counter (registers only; weakly consistent, not eventually
// linearizable — the Corollary 19 witness).

// Sloppy is the introduction's counter over single-writer registers: each
// process announces its private increment count in its own register and
// returns the sum of all announcements minus one.
type Sloppy struct {
	// EventualBases, when true, marks the announcement registers as
	// eventually linearizable instead of atomic. The counter's guarantees
	// are unchanged (it never relies on register freshness).
	EventualBases bool
}

var _ machine.Impl = Sloppy{}

// Name implements machine.Impl.
func (Sloppy) Name() string { return "sloppy-counter" }

// Spec implements machine.Impl.
func (Sloppy) Spec() spec.Object { return spec.NewObject(spec.FetchInc{}) }

// Bases implements machine.Impl. The register count is fixed by the first
// NewProcess call's n; Bases cannot know n, so Sloppy uses MaxProcs
// registers. Unused registers stay 0 and are harmless.
func (s Sloppy) Bases() []machine.Base {
	bases := make([]machine.Base, MaxProcs)
	for i := range bases {
		bases[i] = machine.Base{
			Name:       fmt.Sprintf("Inc%d", i),
			Obj:        spec.Object{Type: spec.Register{}, Init: int64(0)},
			Eventually: s.EventualBases,
		}
	}
	return bases
}

// MaxProcs bounds the number of processes the register-family
// implementations support (one single-writer register per process).
const MaxProcs = 8

// NewProcess implements machine.Impl.
func (Sloppy) NewProcess(p, n int) machine.Process {
	return &sloppyProc{p: p, n: n}
}

const (
	sloppyIdle = iota
	sloppyAfterWrite
	sloppyReading
)

type sloppyProc struct {
	p, n     int
	pc       int
	mine     int64 // private increment count (persists across operations)
	sum      int64
	nextRead int
}

func (s *sloppyProc) Begin(op spec.Op) {
	s.pc = sloppyIdle
}

func (s *sloppyProc) Step(resp int64) machine.Action {
	switch s.pc {
	case sloppyIdle:
		s.mine++
		s.pc = sloppyAfterWrite
		return machine.Invoke(s.p, spec.MakeOp1(spec.MethodWrite, s.mine))
	case sloppyAfterWrite:
		s.sum = 0
		s.nextRead = 0
		s.pc = sloppyReading
		if s.nextRead == s.p {
			s.nextRead++
		}
		if s.nextRead >= s.n {
			return machine.Return(s.mine - 1)
		}
		return machine.Invoke(s.nextRead, spec.MakeOp(spec.MethodRead))
	default: // sloppyReading
		s.sum += resp
		s.nextRead++
		if s.nextRead == s.p {
			s.nextRead++
		}
		if s.nextRead >= s.n {
			return machine.Return(s.mine + s.sum - 1)
		}
		return machine.Invoke(s.nextRead, spec.MakeOp(spec.MethodRead))
	}
}

func (s *sloppyProc) Clone() machine.Process {
	cp := *s
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (s *sloppyProc) AppendFingerprint(b []byte) ([]byte, bool) {
	b = machine.AppendFPInt(b, int64(s.pc))
	b = machine.AppendFPInt(b, s.mine)
	b = machine.AppendFPInt(b, s.sum)
	return machine.AppendFPInt(b, int64(s.nextRead)), true
}

// ----------------------------------------------------------------------------
// Warmup counter (eventually linearizable, not linearizable).

// Warmup increments through a CAS word like CAS, but answers with its
// private operation count while the shared count is below Threshold. Every
// execution in which operations keep completing eventually crosses the
// threshold, after which responses are the linearizable CAS values; hence
// every history is weakly consistent and t-linearizable for a t that
// depends on the schedule — eventually linearizable with no uniform
// stabilization bound, which is precisely the class of implementations
// Proposition 18's construction accepts.
type Warmup struct {
	// Threshold is the shared count at which responses become truthful.
	Threshold int64
}

var _ machine.Impl = Warmup{}

// Name implements machine.Impl.
func (w Warmup) Name() string { return "warmup-counter" }

// Spec implements machine.Impl.
func (Warmup) Spec() spec.Object { return spec.NewObject(spec.FetchInc{}) }

// Bases implements machine.Impl: a single linearizable CAS word, as
// Proposition 18 requires ("from a set O of linearizable objects").
func (Warmup) Bases() []machine.Base {
	return []machine.Base{{
		Name: "C",
		Obj:  spec.Object{Type: spec.CAS{}, Init: int64(0)},
	}}
}

// NewProcess implements machine.Impl.
func (w Warmup) NewProcess(p, n int) machine.Process {
	return &warmupProc{threshold: w.Threshold}
}

type warmupProc struct {
	threshold int64
	pc        int
	v         int64
	done      int64 // operations completed by this process (persists)
}

func (w *warmupProc) Begin(op spec.Op) { w.pc = casIdle }

func (w *warmupProc) Step(resp int64) machine.Action {
	switch w.pc {
	case casIdle:
		w.pc = casAfterRead
		return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
	case casAfterRead:
		w.v = resp
		w.pc = casAfterCAS
		return machine.Invoke(0, spec.MakeOp2(spec.MethodCAS, w.v, w.v+1))
	default: // casAfterCAS
		if resp != 1 {
			w.pc = casAfterRead
			return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
		}
		ret := w.v
		if w.v < w.threshold {
			ret = w.done // private count: weakly consistent, possibly stale
		}
		w.done++
		return machine.Return(ret)
	}
}

func (w *warmupProc) Clone() machine.Process {
	cp := *w
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (w *warmupProc) AppendFingerprint(b []byte) ([]byte, bool) {
	b = machine.AppendFPInt(b, int64(w.pc))
	b = machine.AppendFPInt(b, w.v)
	return machine.AppendFPInt(b, w.done), true
}
