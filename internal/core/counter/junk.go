package counter

import (
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// Junk is a deliberately broken fetch&increment: it increments correctly
// through CAS (so the liveness structure is intact) but overshoots its
// response by JunkOffset whenever the pre-increment value is congruent to
// 1 mod 3. The overshoot responses are "out of left field" — they violate
// weak consistency (Definition 1) because they exceed the number of
// operations invoked so far.
//
// Junk is the demonstration input for the Figure 1 wrapper (package
// announce): wrapping Junk restores weak consistency, because the line 13
// verification rejects the overshoots and substitutes the private fallback
// response.
type Junk struct {
	// JunkOffset is added to every third response (default 100 if zero).
	JunkOffset int64
}

var _ machine.Impl = Junk{}

// Name implements machine.Impl.
func (Junk) Name() string { return "junk-counter" }

// Spec implements machine.Impl.
func (Junk) Spec() spec.Object { return spec.NewObject(spec.FetchInc{}) }

// Bases implements machine.Impl.
func (Junk) Bases() []machine.Base {
	return []machine.Base{{
		Name: "C",
		Obj:  spec.Object{Type: spec.CAS{}, Init: int64(0)},
	}}
}

// NewProcess implements machine.Impl.
func (j Junk) NewProcess(p, n int) machine.Process {
	off := j.JunkOffset
	if off == 0 {
		off = 100
	}
	return &junkProc{offset: off}
}

type junkProc struct {
	offset int64
	pc     int
	v      int64
}

func (j *junkProc) Begin(op spec.Op) { j.pc = casIdle }

func (j *junkProc) Step(resp int64) machine.Action {
	switch j.pc {
	case casIdle:
		j.pc = casAfterRead
		return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
	case casAfterRead:
		j.v = resp
		j.pc = casAfterCAS
		return machine.Invoke(0, spec.MakeOp2(spec.MethodCAS, j.v, j.v+1))
	default: // casAfterCAS
		if resp != 1 {
			j.pc = casAfterRead
			return machine.Invoke(0, spec.MakeOp(spec.MethodRead))
		}
		if j.v%3 == 1 {
			return machine.Return(j.v + j.offset)
		}
		return machine.Return(j.v)
	}
}

func (j *junkProc) Clone() machine.Process {
	cp := *j
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (j *junkProc) AppendFingerprint(b []byte) ([]byte, bool) {
	b = machine.AppendFPInt(b, int64(j.pc))
	return machine.AppendFPInt(b, j.v), true
}
