package counter

import (
	"testing"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

var fetchinc = spec.MakeOp(spec.MethodFetchInc)

// drive runs a process solo against in-memory base objects built from the
// implementation's base descriptors, returning the op's response.
func drive(t *testing.T, impl machine.Impl, proc machine.Process, states []spec.State, op spec.Op) int64 {
	t.Helper()
	bases := impl.Bases()
	proc.Begin(op)
	resp := int64(0)
	for i := 0; i < 1000; i++ {
		act := proc.Step(resp)
		if act.Kind == machine.ActReturn {
			return act.Ret
		}
		outs := bases[act.Obj].Obj.Type.Step(states[act.Obj], act.Op)
		if len(outs) == 0 {
			t.Fatalf("base %d rejects %s in state %v", act.Obj, act.Op, states[act.Obj])
		}
		states[act.Obj] = outs[0].Next
		resp = outs[0].Resp
	}
	t.Fatal("operation did not complete in 1000 steps")
	return 0
}

func initStates(impl machine.Impl) []spec.State {
	bases := impl.Bases()
	states := make([]spec.State, len(bases))
	for i, b := range bases {
		states[i] = b.Obj.Init
	}
	return states
}

func TestCASCounterSolo(t *testing.T) {
	impl := CAS{}
	if err := machine.Validate(impl, 2); err != nil {
		t.Fatal(err)
	}
	states := initStates(impl)
	p := impl.NewProcess(0, 1)
	for want := int64(0); want < 5; want++ {
		if got := drive(t, impl, p, states, fetchinc); got != want {
			t.Fatalf("op returned %d, want %d", got, want)
		}
	}
}

func TestCASCounterNonzeroInit(t *testing.T) {
	impl := CAS{InitVal: 10}
	if impl.Spec().Init != int64(10) {
		t.Fatalf("spec init = %v", impl.Spec().Init)
	}
	states := initStates(impl)
	p := impl.NewProcess(0, 1)
	if got := drive(t, impl, p, states, fetchinc); got != 10 {
		t.Fatalf("first op returned %d, want 10", got)
	}
}

func TestCASCounterRetriesAfterInterference(t *testing.T) {
	impl := CAS{}
	states := initStates(impl)
	p := impl.NewProcess(0, 2)
	p.Begin(fetchinc)
	// p reads 0.
	act := p.Step(0)
	if act.Kind != machine.ActInvoke || act.Op.Method != spec.MethodRead {
		t.Fatalf("first action = %v", act)
	}
	// Interference: another process increments behind p's back.
	states[0] = int64(1)
	// p's CAS(0,1) fails; p must re-read and retry with CAS(1,2).
	act = p.Step(0) // response to read: it saw 0
	if act.Op.Method != spec.MethodCAS || act.Op.Args[0] != 0 {
		t.Fatalf("cas action = %v", act)
	}
	act = p.Step(0) // CAS failed
	if act.Op.Method != spec.MethodRead {
		t.Fatalf("after failed CAS: %v, want re-read", act)
	}
	act = p.Step(1) // read 1
	if act.Op.Method != spec.MethodCAS || act.Op.Args[0] != 1 || act.Op.Args[1] != 2 {
		t.Fatalf("retry cas = %v", act)
	}
	act = p.Step(1) // CAS succeeded
	if act.Kind != machine.ActReturn || act.Ret != 1 {
		t.Fatalf("return = %v, want 1", act)
	}
}

func TestSloppyCounterSolo(t *testing.T) {
	impl := Sloppy{}
	if err := machine.Validate(impl, 3); err != nil {
		t.Fatal(err)
	}
	states := initStates(impl)
	p := impl.NewProcess(0, 3)
	for want := int64(0); want < 4; want++ {
		if got := drive(t, impl, p, states, fetchinc); got != want {
			t.Fatalf("solo sloppy op returned %d, want %d", got, want)
		}
	}
}

func TestSloppyCounterSeesOthersAnnouncements(t *testing.T) {
	impl := Sloppy{}
	states := initStates(impl)
	// Simulate p1 having announced 3 increments.
	states[1] = int64(3)
	p := impl.NewProcess(0, 2)
	if got := drive(t, impl, p, states, fetchinc); got != 3 {
		t.Fatalf("op returned %d, want 3 (own 1 + others 3 - 1)", got)
	}
}

func TestSloppyCounterSingleProcessNoReads(t *testing.T) {
	impl := Sloppy{}
	states := initStates(impl)
	p := impl.NewProcess(0, 1)
	p.Begin(fetchinc)
	act := p.Step(0)
	if act.Op.Method != spec.MethodWrite {
		t.Fatalf("first action = %v", act)
	}
	act = p.Step(0)
	if act.Kind != machine.ActReturn || act.Ret != 0 {
		t.Fatalf("single-process return = %v", act)
	}
	_ = states
}

func TestWarmupCounterTransitions(t *testing.T) {
	impl := Warmup{Threshold: 2}
	states := initStates(impl)
	p := impl.NewProcess(0, 1)
	// Solo: ops 1 and 2 are in warmup but the private count happens to
	// coincide with the truth, so solo responses are exact throughout.
	for want := int64(0); want < 4; want++ {
		if got := drive(t, impl, p, states, fetchinc); got != want {
			t.Fatalf("solo warmup op returned %d, want %d", got, want)
		}
	}
}

func TestWarmupCounterStaleUnderInterference(t *testing.T) {
	impl := Warmup{Threshold: 5}
	states := initStates(impl)
	// Another process already did 3 increments (still under threshold).
	states[0] = int64(3)
	p := impl.NewProcess(0, 2)
	// p's first op: CAS 3->4 succeeds, but 3 < threshold, so p answers its
	// private count 0 — stale but weakly consistent.
	if got := drive(t, impl, p, states, fetchinc); got != 0 {
		t.Fatalf("warmup op returned %d, want stale 0", got)
	}
	// Push the count past the threshold; p now answers truthfully.
	states[0] = int64(7)
	if got := drive(t, impl, p, states, fetchinc); got != 7 {
		t.Fatalf("post-warmup op returned %d, want 7", got)
	}
}

func TestJunkCounterOvershoots(t *testing.T) {
	impl := Junk{}
	states := initStates(impl)
	p := impl.NewProcess(0, 1)
	got := []int64{}
	for i := 0; i < 4; i++ {
		got = append(got, drive(t, impl, p, states, fetchinc))
	}
	// v=0 honest, v=1 overshoots by 100, v=2 honest, v=3 honest (3%3==0).
	want := []int64{0, 101, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("junk responses = %v, want %v", got, want)
		}
	}
}

func TestJunkCounterCustomOffset(t *testing.T) {
	impl := Junk{JunkOffset: 7}
	states := initStates(impl)
	p := impl.NewProcess(0, 1)
	drive(t, impl, p, states, fetchinc)
	if got := drive(t, impl, p, states, fetchinc); got != 8 {
		t.Fatalf("junk op returned %d, want 8 (1+7)", got)
	}
}

func TestCloneMidOperation(t *testing.T) {
	impl := CAS{}
	p := impl.NewProcess(0, 1)
	p.Begin(fetchinc)
	p.Step(0) // read issued
	q := p.Clone()
	// Feed different read responses to original and clone: they must
	// diverge independently.
	actP := p.Step(5)
	actQ := q.Step(9)
	if actP.Op.Args[0] != 5 || actQ.Op.Args[0] != 9 {
		t.Fatalf("clone shares state: %v vs %v", actP, actQ)
	}
}

func TestImplMetadata(t *testing.T) {
	impls := []machine.Impl{CAS{}, Sloppy{}, Warmup{Threshold: 1}, Junk{}}
	for _, im := range impls {
		if im.Name() == "" {
			t.Error("empty name")
		}
		if _, ok := im.Spec().Type.(spec.FetchInc); !ok {
			t.Errorf("%s spec is %s, want fetchinc", im.Name(), im.Spec().Type.Name())
		}
		if err := machine.Validate(im, 2); err != nil {
			t.Errorf("%s: %v", im.Name(), err)
		}
	}
	// Sloppy's bases must all be eventually linearizable when requested.
	for _, b := range (Sloppy{EventualBases: true}).Bases() {
		if !b.Eventually {
			t.Error("EventualBases not honored")
		}
	}
}
