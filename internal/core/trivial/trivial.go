// Package trivial implements the decision procedure behind Definition 13
// and Proposition 14: a deterministic type T is trivial iff there is a
// computable function r mapping each initial state q0 and operation op to a
// response that is correct in every state reachable from q0 — equivalently
// (for deterministic types), iff every operation returns the same response
// in every reachable state. Proposition 14 then says exactly the trivial
// types have linearizable obstruction-free implementations from eventually
// linearizable objects (for two or more processes).
package trivial

import (
	"fmt"

	"github.com/elin-go/elin/internal/spec"
)

// Result reports a triviality decision.
type Result struct {
	// Trivial reports whether the type is trivial per Definition 13.
	Trivial bool
	// Responses is the function r(q0, ·) witnessing triviality (nil when
	// not trivial).
	Responses map[spec.Op]int64
	// WitnessOp is an operation with state-dependent responses (zero when
	// trivial).
	WitnessOp spec.Op
	// WitnessStates are two reachable states in which WitnessOp responds
	// differently (or in one of which it is inapplicable).
	WitnessStates []spec.State
}

// Decide decides triviality of a deterministic type with enumerable
// operations, exploring at most maxStates reachable states.
func Decide(t spec.Type, maxStates int) (Result, error) {
	if !t.Deterministic() {
		return Result{}, fmt.Errorf("trivial: %s is nondeterministic; Definition 13 is stated for deterministic types", t.Name())
	}
	enum, ok := t.(spec.OpEnumerator)
	if !ok {
		return Result{}, fmt.Errorf("trivial: %s does not enumerate operations", t.Name())
	}
	states, err := spec.Reachable(t, maxStates)
	if err != nil {
		return Result{}, fmt.Errorf("trivial: %w", err)
	}
	res := Result{Trivial: true, Responses: make(map[spec.Op]int64)}
	for _, op := range enum.EnumOps() {
		first := true
		var resp int64
		var firstState spec.State
		for _, s := range states {
			outs := t.Step(s, op)
			if len(outs) == 0 {
				// Inapplicable somewhere: no response is correct in every
				// reachable state.
				return nonTrivial(op, firstState, s), nil
			}
			if first {
				first = false
				resp = outs[0].Resp
				firstState = s
				continue
			}
			if outs[0].Resp != resp {
				return nonTrivial(op, firstState, s), nil
			}
		}
		res.Responses[op] = resp
	}
	return res, nil
}

func nonTrivial(op spec.Op, a, b spec.State) Result {
	return Result{
		Trivial:       false,
		WitnessOp:     op,
		WitnessStates: []spec.State{a, b},
	}
}
