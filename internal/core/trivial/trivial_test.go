package trivial

import (
	"testing"

	"github.com/elin-go/elin/internal/spec"
)

func TestConstantTypeTrivial(t *testing.T) {
	res, err := Decide(spec.ConstantType(42), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trivial {
		t.Fatalf("constant type not trivial: %+v", res)
	}
	if got := res.Responses[spec.MakeOp("get")]; got != 42 {
		t.Fatalf("r(q0, get) = %d, want 42", got)
	}
}

func TestClassicTypesNonTrivial(t *testing.T) {
	types := []spec.Type{
		spec.Register{},
		spec.TestSet{},
		spec.Consensus{},
		spec.CAS{},
	}
	for _, typ := range types {
		res, err := Decide(typ, 1000)
		if err != nil {
			t.Errorf("Decide(%s): %v", typ.Name(), err)
			continue
		}
		if res.Trivial {
			t.Errorf("%s decided trivial; Proposition 14 says these need communication", typ.Name())
			continue
		}
		if len(res.WitnessStates) != 2 {
			t.Errorf("%s: no witness states", typ.Name())
		}
	}
}

func TestFetchIncNonTrivialBounded(t *testing.T) {
	// fetch&inc has unbounded state; the witness appears within any bound
	// of at least two states.
	res, err := Decide(spec.FetchInc{}, 10)
	if err == nil && res.Trivial {
		t.Fatal("fetch&inc decided trivial")
	}
	// Either the bound was hit (err != nil) or non-triviality was found.
	if err == nil && res.WitnessOp.Method != spec.MethodFetchInc {
		t.Fatalf("witness op = %v", res.WitnessOp)
	}
}

func TestWriteOnlyRegisterTrivial(t *testing.T) {
	// A register supporting only writes (acks) is trivial: every op
	// returns 0 in every state.
	w0 := spec.MakeOp1(spec.MethodWrite, 0)
	w1 := spec.MakeOp1(spec.MethodWrite, 1)
	tt := &spec.TableType{
		TypeName: "write-only",
		NStates:  2,
		Ops:      []spec.Op{w0, w1},
		Delta: map[spec.TableKey][]spec.Outcome{
			{State: 0, Op: w0}: {{Resp: 0, Next: int64(0)}},
			{State: 0, Op: w1}: {{Resp: 0, Next: int64(1)}},
			{State: 1, Op: w0}: {{Resp: 0, Next: int64(0)}},
			{State: 1, Op: w1}: {{Resp: 0, Next: int64(1)}},
		},
	}
	res, err := Decide(tt, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Trivial {
		t.Fatalf("write-only register should be trivial: %+v", res)
	}
}

func TestPartialTypeNonTrivial(t *testing.T) {
	// An operation inapplicable in some reachable state cannot have a
	// universally correct response.
	a := spec.MakeOp("a")
	tt := &spec.TableType{
		TypeName: "partial",
		NStates:  2,
		Ops:      []spec.Op{a},
		Delta: map[spec.TableKey][]spec.Outcome{
			{State: 0, Op: a}: {{Resp: 7, Next: int64(1)}},
			// state 1 has no transition for a.
		},
	}
	res, err := Decide(tt, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trivial {
		t.Fatal("partial type decided trivial")
	}
}

func TestDecideErrors(t *testing.T) {
	flip := spec.MakeOp("flip")
	nd := &spec.TableType{
		TypeName: "coin", NStates: 1, Ops: []spec.Op{flip},
		Delta: map[spec.TableKey][]spec.Outcome{
			{State: 0, Op: flip}: {{Resp: 0, Next: int64(0)}, {Resp: 1, Next: int64(0)}},
		},
	}
	if _, err := Decide(nd, 10); err == nil {
		t.Error("accepted a nondeterministic type")
	}
	if _, err := Decide(spec.RegisterArray{}, 10); err == nil {
		t.Error("accepted a type without EnumOps")
	}
	if _, err := Decide(spec.FetchInc{}, 2); err == nil {
		t.Error("expected state-bound error for fetch&inc with bound 2")
	}
}
