// Package stablog implements the stabilizing-log construction of
// "Stabilizing Logs for Eventually Linearizable Shared Objects"
// (arXiv 1512.08258) as a machine.Impl family — the main competitor to the
// paper's local-copy construction (Theorem 12, internal/core/localcopy).
//
// One linearizable append-only log L (spec.OpLog) is shared by every
// process. Performing an operation means appending its encoded form to L;
// the position the log assigns is the operation's place in the single
// agreed total order. What a process answers depends on how far its
// *stable prefix* lags behind its own append:
//
//   - Speculative apply: while the gap pos+1-frontier stays below the
//     promotion batch K, the process answers immediately from its local
//     speculative state (the stable replica plus its own pending
//     operations, in local order) — fast, but blind to concurrent appends
//     in the gap.
//   - Stabilization: once the gap reaches K, the process catches up — it
//     reads every log entry in [frontier, pos], re-executes them against
//     its replica in agreed order (re-execution on rebase: the speculative
//     state is discarded wholesale), promotes the frontier past its own
//     entry, and answers from the agreed order exactly.
//
// The promotion rule is a pure function of log positions — no randomness,
// no wall clock — so a live run's responses are a deterministic function
// of the commit order and replay stays byte-identical (the live package's
// reproducibility contract). K=1 makes every operation catch up, which is
// exactly linearizability: the log order is the linearization and each
// response is computed from the full agreed prefix. K>1 trades bounded
// staleness for latency: a speculative response misses at most K-1
// concurrent operations, so MinT stays bounded where the local-copy
// construction's divergence grows without bound (E19 measures the
// head-to-head).
package stablog

import (
	"fmt"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

// DefaultBatch is the promotion batch K used by the unparameterized
// registry family members (slog-counter, slog-register, slog-testset).
const DefaultBatch = 4

// ----------------------------------------------------------------------------
// Operation codec: log entries are non-negative int64 encodings of ops.

// Operation tags (the low 3 bits of an encoded entry).
const (
	tagFetchInc int64 = 1
	tagRead     int64 = 2
	tagWrite    int64 = 3
	tagTestSet  int64 = 4
	tagWriteMax int64 = 5
)

// EncodeOp encodes an operation as a non-negative int64 log entry: the
// method tag in the low 3 bits, the zigzag-encoded argument above. The
// codec covers the total one-word types the family implements (fetchinc,
// register read/write, testset, writemax).
func EncodeOp(op spec.Op) (int64, error) {
	var tag, arg int64
	switch {
	case op.Method == spec.MethodFetchInc && op.NArgs == 0:
		tag = tagFetchInc
	case op.Method == spec.MethodRead && op.NArgs == 0:
		tag = tagRead
	case op.Method == spec.MethodWrite && op.NArgs == 1:
		tag, arg = tagWrite, op.Args[0]
	case op.Method == spec.MethodTestSet && op.NArgs == 0:
		tag = tagTestSet
	case op.Method == spec.MethodWriteMax && op.NArgs == 1:
		tag, arg = tagWriteMax, op.Args[0]
	default:
		return 0, fmt.Errorf("stablog: operation %s has no log encoding", op)
	}
	z := uint64(arg<<1) ^ uint64(arg>>63) // zigzag: sign into bit 0
	if z>>60 != 0 {
		return 0, fmt.Errorf("stablog: argument of %s out of encodable range", op)
	}
	return tag | int64(z)<<3, nil
}

// DecodeOp inverts EncodeOp.
func DecodeOp(code int64) (spec.Op, error) {
	if code < 0 {
		return spec.Op{}, fmt.Errorf("stablog: negative log entry %d", code)
	}
	z := uint64(code) >> 3
	arg := int64(z>>1) ^ -int64(z&1)
	switch code & 7 {
	case tagFetchInc:
		return spec.MakeOp(spec.MethodFetchInc), nil
	case tagRead:
		return spec.MakeOp(spec.MethodRead), nil
	case tagWrite:
		return spec.MakeOp1(spec.MethodWrite, arg), nil
	case tagTestSet:
		return spec.MakeOp(spec.MethodTestSet), nil
	case tagWriteMax:
		return spec.MakeOp1(spec.MethodWriteMax, arg), nil
	default:
		return spec.Op{}, fmt.Errorf("stablog: unknown tag in log entry %d", code)
	}
}

// Reexecute applies an encoded log prefix to the object's initial state in
// agreed order and returns every position's response — the pure function
// stabilization computes. Because the log is append-only, a position's
// response is fixed the moment it stabilizes: Reexecute(obj, l[:k]) is a
// prefix of Reexecute(obj, l) for every k (the testing/quick invariant).
func Reexecute(obj spec.Object, codes []int64) ([]int64, error) {
	st := obj.Init
	resps := make([]int64, len(codes))
	for i, code := range codes {
		op, err := DecodeOp(code)
		if err != nil {
			return nil, err
		}
		outs := obj.Type.Step(st, op)
		if len(outs) == 0 {
			return nil, fmt.Errorf("stablog: %s not applicable to %s state %v", op, obj.Type.Name(), st)
		}
		resps[i] = outs[0].Resp
		st = outs[0].Next
	}
	return resps, nil
}

// ----------------------------------------------------------------------------
// The implementation.

// Impl is one member of the stabilizing-log family.
type Impl struct {
	name  string
	inner spec.Object
	batch int64
}

var _ machine.Impl = (*Impl)(nil)

// New builds a stabilizing-log implementation of the inner object with
// promotion batch K (K=1 is linearizable; larger K speculates more). The
// inner type must be deterministic — stabilized re-execution replays the
// agreed order and a non-deterministic type would make responses
// ambiguous. name is the registry spelling (it should carry the :K
// parameter when one was given, so reports and repro commands round-trip).
func New(name string, inner spec.Object, batch int64) (*Impl, error) {
	if batch < 1 {
		return nil, fmt.Errorf("stablog: promotion batch %d out of range (want >= 1)", batch)
	}
	if inner.Type == nil {
		return nil, fmt.Errorf("stablog: inner object has nil type")
	}
	if !inner.Type.Deterministic() {
		return nil, fmt.Errorf("stablog: inner type %s is non-deterministic; re-execution needs a unique agreed order", inner.Type.Name())
	}
	return &Impl{name: name, inner: inner, batch: batch}, nil
}

// Name implements machine.Impl.
func (im *Impl) Name() string { return im.name }

// Spec implements machine.Impl.
func (im *Impl) Spec() spec.Object { return im.inner }

// Batch returns the promotion batch K.
func (im *Impl) Batch() int64 { return im.batch }

// Bases implements machine.Impl: one linearizable append-only log.
func (im *Impl) Bases() []machine.Base {
	return []machine.Base{{Name: "L", Obj: spec.NewObject(spec.OpLog{})}}
}

// NewProcess implements machine.Impl.
func (im *Impl) NewProcess(p, n int) machine.Process {
	return &proc{
		typ:       im.inner.Type,
		batch:     im.batch,
		replica:   im.inner.Init,
		specState: im.inner.Init,
	}
}

// Programme counters.
const (
	pcIdle   = iota // no operation in flight; next step appends
	pcAppend        // waiting for the append's position
	pcScan          // catching up: waiting for read(scan)
)

// proc is one process's programme. Local state across operations: the
// stable frontier (log prefix promoted into replica), the replica itself,
// and the speculative state (replica plus the process's own pending
// appends in local order).
type proc struct {
	typ   spec.Type
	batch int64

	frontier  int64      // replica == init · log[0:frontier)
	replica   spec.State // state after the stable prefix
	specState spec.State // replica ⊕ own pending speculative ops
	pending   int64      // own appends past frontier, applied to specState

	pc   int
	code int64 // encoded current op
	pos  int64 // current op's log position
	scan int64 // next log index to re-execute during catch-up
	resp int64 // agreed-order response captured at scan == pos
}

// Begin implements machine.Process.
func (m *proc) Begin(op spec.Op) {
	code, err := EncodeOp(op)
	if err != nil {
		panic(fmt.Sprintf("stablog: %v (workload op does not match the implemented type?)", err))
	}
	m.code = code
	m.pc = pcIdle
}

// Step implements machine.Process.
func (m *proc) Step(resp int64) machine.Action {
	switch m.pc {
	case pcIdle:
		m.pc = pcAppend
		return machine.Invoke(0, spec.MakeOp1(spec.MethodAppend, m.code))
	case pcAppend:
		m.pos = resp
		if m.pos+1-m.frontier >= m.batch {
			// Stabilize: re-execute [frontier, pos] in agreed order.
			m.scan = m.frontier
			m.pc = pcScan
			return machine.Invoke(0, spec.MakeOp1(spec.MethodRead, m.scan))
		}
		// Speculate: answer from the local state, blind to the gap.
		out := m.apply(m.specState, m.code)
		m.specState = out.Next
		m.pending++
		m.pc = pcIdle
		return machine.Return(out.Resp)
	case pcScan:
		// resp is the entry at position scan — present for sure, since the
		// log already holds our own entry at pos >= scan.
		out := m.apply(m.replica, resp)
		m.replica = out.Next
		if m.scan == m.pos {
			m.resp = out.Resp
		}
		m.scan++
		if m.scan <= m.pos {
			return machine.Invoke(0, spec.MakeOp1(spec.MethodRead, m.scan))
		}
		// Rebase: the agreed prefix supersedes every speculation.
		m.frontier = m.pos + 1
		m.pending = 0
		m.specState = m.replica
		m.pc = pcIdle
		return machine.Return(m.resp)
	default:
		panic(fmt.Sprintf("stablog: Step in unknown state %d", m.pc))
	}
}

// apply decodes and applies one log entry to a state; entries were encoded
// by Begin, so a failure here is a programming error.
func (m *proc) apply(st spec.State, code int64) spec.Outcome {
	op, err := DecodeOp(code)
	if err != nil {
		panic(fmt.Sprintf("stablog: %v", err))
	}
	outs := m.typ.Step(st, op)
	if len(outs) == 0 {
		panic(fmt.Sprintf("stablog: %s not applicable to %s state %v", op, m.typ.Name(), st))
	}
	return outs[0]
}

// Clone implements machine.Process. States are immutable values (int64 or
// string), so a value copy is a deep copy.
func (m *proc) Clone() machine.Process {
	cp := *m
	return &cp
}

// AppendFingerprint implements machine.Fingerprinter.
func (m *proc) AppendFingerprint(b []byte) ([]byte, bool) {
	b = machine.AppendFPInt(b, int64(m.pc))
	b = machine.AppendFPInt(b, m.frontier)
	b = machine.AppendFPInt(b, m.pending)
	b = machine.AppendFPInt(b, m.code)
	b = machine.AppendFPInt(b, m.pos)
	b = machine.AppendFPInt(b, m.scan)
	b = machine.AppendFPInt(b, m.resp)
	var ok bool
	if b, ok = machine.AppendFPState(b, m.replica); !ok {
		return b, false
	}
	return machine.AppendFPState(b, m.specState)
}
