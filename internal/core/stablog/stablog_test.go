package stablog

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/spec"
)

func TestCodecRoundTrip(t *testing.T) {
	f := func(kind uint8, arg int64) bool {
		arg %= 1 << 40
		var op spec.Op
		switch kind % 5 {
		case 0:
			op = spec.MakeOp(spec.MethodFetchInc)
		case 1:
			op = spec.MakeOp(spec.MethodRead)
		case 2:
			op = spec.MakeOp1(spec.MethodWrite, arg)
		case 3:
			op = spec.MakeOp(spec.MethodTestSet)
		case 4:
			op = spec.MakeOp1(spec.MethodWriteMax, arg)
		}
		code, err := EncodeOp(op)
		if err != nil || code < 0 {
			return false
		}
		got, err := DecodeOp(code)
		return err == nil && got == op
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeOpRejectsUnknown(t *testing.T) {
	if _, err := EncodeOp(spec.MakeOp1(spec.MethodEnq, 1)); err == nil {
		t.Fatal("EncodeOp(enq) did not fail")
	}
	if _, err := EncodeOp(spec.MakeOp1(spec.MethodWrite, 1<<62)); err == nil {
		t.Fatal("EncodeOp(write(1<<62)) did not fail (out of encodable range)")
	}
	if _, err := DecodeOp(-1); err == nil {
		t.Fatal("DecodeOp(-1) did not fail")
	}
}

// randomLog builds a random encodable log over the register ops.
func randomLog(r *rand.Rand, n int) []int64 {
	codes := make([]int64, n)
	for i := range codes {
		var op spec.Op
		switch r.Intn(3) {
		case 0:
			op = spec.MakeOp(spec.MethodRead)
		case 1:
			op = spec.MakeOp1(spec.MethodWrite, r.Int63n(16))
		default:
			op = spec.MakeOp1(spec.MethodWrite, -r.Int63n(16))
		}
		code, err := EncodeOp(op)
		if err != nil {
			panic(err)
		}
		codes[i] = code
	}
	return codes
}

// The stabilized-prefix invariant: once a position's response is computed
// from the agreed order, appending more entries never changes it —
// Reexecute over a prefix is a prefix of Reexecute over the full log.
func TestReexecutePrefixStable(t *testing.T) {
	obj := spec.NewObject(spec.Register{})
	f := func(seed int64, n uint8, cut uint8) bool {
		r := rand.New(rand.NewSource(seed))
		codes := randomLog(r, int(n%32)+1)
		k := int(cut) % (len(codes) + 1)
		full, err := Reexecute(obj, codes)
		if err != nil {
			return false
		}
		prefix, err := Reexecute(obj, codes[:k])
		if err != nil {
			return false
		}
		return reflect.DeepEqual(prefix, full[:k])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// logHarness is a sequential in-memory log the invariant tests drive
// processes against, standing in for the engines' shared OpLog base.
type logHarness struct{ log []int64 }

func (h *logHarness) invoke(t *testing.T, op spec.Op) int64 {
	t.Helper()
	switch op.Method {
	case spec.MethodAppend:
		h.log = append(h.log, op.Args[0])
		return int64(len(h.log)) - 1
	case spec.MethodRead:
		if i := op.Args[0]; i < int64(len(h.log)) {
			return h.log[i]
		}
		return spec.NoValue
	default:
		t.Fatalf("harness: unexpected base op %s", op)
		return 0
	}
}

// perform drives one operation of proc p to completion against the log and
// returns (response, catch-up?).
func perform(t *testing.T, h *logHarness, p machine.Process, op spec.Op) (int64, bool) {
	t.Helper()
	p.Begin(op)
	act := p.Step(0)
	steps := 0
	for act.Kind == machine.ActInvoke {
		if steps++; steps > 10000 {
			t.Fatal("process did not return within 10000 steps")
		}
		act = p.Step(h.invoke(t, act.Op))
	}
	return act.Ret, steps > 1 // one step = the append alone = speculative
}

// The promotion invariants, over random schedules: the stable frontier is
// monotone, and every stabilized (catch-up) response equals the pure
// re-execution of the agreed prefix at that position — so later promotions
// can never contradict it.
func TestPromotionInvariants(t *testing.T) {
	obj := spec.NewObject(spec.Register{})
	f := func(seed int64, batchRaw uint8) bool {
		batch := int64(batchRaw%5) + 1
		im, err := New("slog-test", obj, batch)
		if err != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed))
		h := &logHarness{}
		const nproc = 3
		procs := make([]machine.Process, nproc)
		for i := range procs {
			procs[i] = im.NewProcess(i, nproc)
		}
		lastFrontier := make([]int64, nproc)
		for step := 0; step < 40; step++ {
			pi := r.Intn(nproc)
			var op spec.Op
			if r.Intn(2) == 0 {
				op = spec.MakeOp(spec.MethodRead)
			} else {
				op = spec.MakeOp1(spec.MethodWrite, r.Int63n(8))
			}
			ret, caughtUp := perform(t, h, procs[pi], op)
			m := procs[pi].(*proc)
			if m.frontier < lastFrontier[pi] {
				t.Errorf("frontier of p%d decreased: %d -> %d", pi, lastFrontier[pi], m.frontier)
				return false
			}
			lastFrontier[pi] = m.frontier
			if caughtUp {
				agreed, err := Reexecute(obj, h.log[:m.pos+1])
				if err != nil {
					t.Errorf("Reexecute: %v", err)
					return false
				}
				if ret != agreed[m.pos] {
					t.Errorf("stabilized response of p%d at pos %d: got %d, agreed order says %d",
						pi, m.pos, ret, agreed[m.pos])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Batch 1 catches up on every operation: the construction degenerates to
// linearizability, with each response computed from the full agreed prefix.
func TestBatchOneIsSequentialReplay(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	im, err := New("slog-batch:1", obj, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := &logHarness{}
	p0 := im.NewProcess(0, 2)
	p1 := im.NewProcess(1, 2)
	for i := 0; i < 6; i++ {
		p := p0
		if i%2 == 1 {
			p = p1
		}
		ret, caughtUp := perform(t, h, p, spec.MakeOp(spec.MethodFetchInc))
		if !caughtUp {
			t.Fatalf("op %d speculated under batch 1", i)
		}
		if ret != int64(i) {
			t.Fatalf("op %d returned %d, want %d", i, ret, i)
		}
	}
}

func TestNewRejectsBadParameters(t *testing.T) {
	obj := spec.NewObject(spec.Register{})
	if _, err := New("slog", obj, 0); err == nil {
		t.Fatal("New with batch 0 did not fail")
	}
	if _, err := New("slog", spec.Object{}, 1); err == nil {
		t.Fatal("New with nil type did not fail")
	}
}

func TestValidateAndFingerprint(t *testing.T) {
	im, err := New("slog-counter", spec.NewObject(spec.FetchInc{}), DefaultBatch)
	if err != nil {
		t.Fatal(err)
	}
	if err := machine.Validate(im, 3); err != nil {
		t.Fatal(err)
	}
	p := im.NewProcess(0, 2)
	fp, ok := p.(machine.Fingerprinter)
	if !ok {
		t.Fatal("stablog process is not a Fingerprinter")
	}
	b, ok := fp.AppendFingerprint(nil)
	if !ok || len(b) == 0 {
		t.Fatalf("AppendFingerprint: ok=%v len=%d", ok, len(b))
	}
	cl := p.Clone().(machine.Fingerprinter)
	b2, _ := cl.AppendFingerprint(nil)
	if !reflect.DeepEqual(b, b2) {
		t.Fatal("clone fingerprint differs from original")
	}
}
