// Package core groups the paper's objects, algorithms and constructions,
// one subpackage per artifact:
//
//   - counter: fetch&increment implementations (linearizable CAS counter,
//     the introduction's sloppy counter, the eventually-linearizable warmup
//     counter, and the deliberately inconsistent junk counter).
//   - elconsensus: Proposition 16 — wait-free eventually linearizable
//     consensus from eventually linearizable registers.
//   - eltestset: the Section 4/5 test&set pair (communication-free
//     eventually linearizable, and linearizable from CAS).
//   - announce: Figure 1 / Proposition 11 — the announce/verify wrapper
//     that adds weak consistency to any liveness-only implementation.
//   - localcopy: Theorem 12 — the local-copy construction eliminating
//     eventually linearizable base objects.
//   - stabilize: Proposition 18 — the stable-configuration construction
//     turning an eventually linearizable fetch&increment into a fully
//     linearizable one.
//   - trivial: Definition 13 / Proposition 14 — the triviality decision
//     procedure.
//   - passthrough: the identity implementation used by several experiments.
package core
