package stabilize

import (
	"strings"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/progress"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

var fetchinc = spec.MakeOp(spec.MethodFetchInc)

func TestTransformWarmupCounter(t *testing.T) {
	// The headline paradox, end to end: the eventually linearizable (but
	// non-linearizable) warmup counter is transformed into A′, and A′ is
	// exhaustively verified to be fully linearizable.
	impl := counter.Warmup{Threshold: 2}
	out, rep, err := Transform(impl, Config{
		NumProcs:    2,
		OpsPerProc:  4,
		SearchDepth: 8,
		VerifyDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StableDepth == 0 {
		t.Fatal("warmup counter's root must not be stable")
	}
	if rep.V0 <= 0 {
		t.Fatalf("v0 = %d, want positive", rep.V0)
	}
	if out.V0() != rep.V0 {
		t.Fatalf("V0 mismatch: %d vs %d", out.V0(), rep.V0)
	}
	if !strings.HasSuffix(out.Name(), "-stabilized") {
		t.Errorf("name = %q", out.Name())
	}

	// A′'s first operation by any process must return 0, 1, ... — verify
	// exhaustively that every interleaving is linearizable.
	root, err := sim.NewSystem(out, sim.UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, st, err := explore.LinearizableEverywhere(root, 24, explore.Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("A′ is not linearizable:\n%s", bad.History())
	}
	if st.Truncated {
		t.Fatalf("verification truncated: %+v", st)
	}
}

func TestTransformedCounterSequentialSemantics(t *testing.T) {
	impl := counter.Warmup{Threshold: 2}
	out, _, err := Transform(impl, Config{
		NumProcs:    2,
		OpsPerProc:  5,
		SearchDepth: 8,
		VerifyDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A solo run of A′ must produce 0, 1, 2, ...
	res, err := sim.Run(sim.Config{
		Impl:     out,
		Workload: [][]spec.Op{{fetchinc, fetchinc, fetchinc}, {}},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(0)
	for _, op := range res.History.Operations() {
		if op.Pending() {
			continue
		}
		if op.Resp != want {
			t.Fatalf("solo A′ returned %d, want %d\n%s", op.Resp, want, res.History)
		}
		want++
	}
}

func TestTransformRejectsNonFetchInc(t *testing.T) {
	if _, _, err := Transform(eltestset.FromCAS{}, Config{NumProcs: 2, OpsPerProc: 2, SearchDepth: 2, VerifyDepth: 4}); err == nil {
		t.Fatal("accepted a test&set implementation")
	}
}

func TestTransformRejectsEventualBases(t *testing.T) {
	if _, _, err := Transform(counter.Sloppy{EventualBases: true}, Config{NumProcs: 2, OpsPerProc: 2, SearchDepth: 2, VerifyDepth: 4}); err == nil {
		t.Fatal("accepted eventually linearizable bases")
	}
}

func TestTransformRejectsBadConfig(t *testing.T) {
	impl := counter.Warmup{Threshold: 1}
	if _, _, err := Transform(impl, Config{NumProcs: 0}); err == nil {
		t.Fatal("accepted zero processes")
	}
	if _, _, err := Transform(impl, Config{NumProcs: 2, SoloProc: 5, OpsPerProc: 2, SearchDepth: 2, VerifyDepth: 4}); err == nil {
		t.Fatal("accepted out-of-range solo process")
	}
}

func TestTransformNotEventuallyLinearizableFails(t *testing.T) {
	// The sloppy counter (atomic register bases) is NOT eventually
	// linearizable; Claim 1 fails and the stable search must come up
	// empty. (This is Corollary 19 seen from the construction's side.)
	impl := counter.Sloppy{}
	_, _, err := Transform(impl, Config{
		NumProcs:    2,
		OpsPerProc:  3,
		SearchDepth: 5,
		VerifyDepth: 12,
	})
	if err == nil {
		t.Fatal("Transform succeeded on the sloppy counter")
	}
}

func TestCASCounterTransformIsIdentityLike(t *testing.T) {
	// A counter that is already linearizable stabilizes at the root with
	// v0 equal to the operations consumed by the solo probe.
	impl := counter.CAS{}
	out, rep, err := Transform(impl, Config{
		NumProcs:    2,
		OpsPerProc:  3,
		SearchDepth: 4,
		VerifyDepth: 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.StableDepth != 0 {
		t.Fatalf("stable depth = %d, want 0 (already linearizable)", rep.StableDepth)
	}
	// op0 is the very first solo op: returns 0 with 0 invocations before.
	if rep.V0 != 1 {
		t.Fatalf("v0 = %d, want 1", rep.V0)
	}
	root, err := sim.NewSystem(out, sim.UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	ok, bad, _, err := explore.LinearizableEverywhere(root, 22, explore.Config{}, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("transformed CAS counter not linearizable:\n%s", bad.History())
	}
}

func TestTransformPreservesProgress(t *testing.T) {
	// The Remark after Proposition 18: the construction preserves the
	// progress condition. The warmup counter is non-blocking (CAS loop);
	// A′ must remain obstruction-free/non-blocking — probed empirically.
	out, _, err := Transform(counter.Warmup{Threshold: 2}, Config{
		NumProcs:    2,
		OpsPerProc:  6,
		SearchDepth: 8,
		VerifyDepth: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := progress.Probe(out, progress.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.ObstructionFree {
		t.Error("A′ lost obstruction-freedom")
	}
	if !rep.NonBlocking {
		t.Error("A′ lost the non-blocking property")
	}
	// Like its source, A′ keeps the CAS retry loop, so the starvation
	// adversary still works — it must NOT have silently become wait-free
	// (the construction changes initial state, not control structure).
	if !rep.StarvationFound {
		t.Error("A′ unexpectedly immune to the starvation adversary")
	}
}

func TestNewProcessOutOfRangePanics(t *testing.T) {
	impl := counter.CAS{}
	out, _, err := Transform(impl, Config{
		NumProcs: 2, OpsPerProc: 3, SearchDepth: 4, VerifyDepth: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range process")
		}
	}()
	out.NewProcess(7, 8)
}
