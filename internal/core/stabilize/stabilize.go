// Package stabilize implements the construction in the proof of
// Proposition 18 — the paper's headline paradox: any eventually
// linearizable, non-blocking implementation A of a fetch&increment object
// from linearizable base objects yields a fully linearizable implementation
// A′ of fetch&increment from the same base objects.
//
// The construction, mechanized:
//
//  1. Find a stable configuration C of A's execution tree: one from which
//     every (bounded) extension's history is |αC|-linearizable. Claim 1 of
//     the proof guarantees a stable configuration exists whenever A is
//     eventually linearizable — even though the stabilization point may
//     differ from execution to execution.
//  2. Let every process run solo to complete its pending operation
//     (reaching C_idle), then run one process p solo until some operation
//     op0 returns a value equal to the number of fetch&inc operations
//     invoked before op0 (the proof shows this must happen, else the
//     execution could not be t-linearized).
//  3. Capture the configuration C0 at the end of op0: every base object's
//     state and every process's local variables. Let v0 be the number of
//     operations invoked up to and including op0.
//  4. A′ is A with base objects initialized to their states in C0,
//     processes initialized to their local states in C0, and every response
//     decremented by v0.
//
// The output implementation can be exhaustively re-checked for full
// linearizability (package explore); the experiments do exactly that.
package stabilize

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// Config tunes the construction's bounded searches.
type Config struct {
	// NumProcs is the number of processes n (the construction is for a
	// fixed n, as in the paper).
	NumProcs int
	// OpsPerProc sizes the exploration workload; it must be large enough
	// for the solo phase to find op0 (a handful past the implementation's
	// unstable region).
	OpsPerProc int
	// SearchDepth bounds the breadth-first stable-configuration search.
	SearchDepth int
	// VerifyDepth bounds the per-configuration stability verification.
	VerifyDepth int
	// SoloProc is the process run solo to find op0 (default 0).
	SoloProc int
	// MaxSoloOps bounds the solo phase (default OpsPerProc).
	MaxSoloOps int
	// CheckOpts configures the t-linearizability checks.
	CheckOpts check.Options
	// Workers is the exploration worker count for the stable search (the
	// construction's dominant cost): 0 means GOMAXPROCS, 1 forces the
	// sequential reference engine. The search result is identical for
	// every worker count.
	Workers int
}

// Report documents the construction's run.
type Report struct {
	// StableDepth is the depth of the stable configuration C found.
	StableDepth int
	// StableT is |αC| in implemented-history events.
	StableT int
	// NodesSearched counts configurations examined by the stable search.
	NodesSearched int
	// SoloOps is the number of solo operations run before op0.
	SoloOps int
	// V0 is the response offset of A′ (operations invoked up to and
	// including op0).
	V0 int64
	// BaseStates are the captured base-object states of C0.
	BaseStates map[string]spec.State
}

// Transform runs the Proposition 18 construction on impl, which must
// implement fetch&increment from linearizable, deterministic base objects.
func Transform(impl machine.Impl, cfg Config) (*Impl, *Report, error) {
	if _, ok := impl.Spec().Type.(spec.FetchInc); !ok {
		return nil, nil, fmt.Errorf("stabilize: %s implements %s; the Proposition 18 construction is for fetch&increment",
			impl.Name(), impl.Spec().Type.Name())
	}
	for _, b := range impl.Bases() {
		if b.Eventually {
			return nil, nil, fmt.Errorf("stabilize: base %q of %s is eventually linearizable; Proposition 18 requires linearizable base objects",
				b.Name, impl.Name())
		}
	}
	if cfg.NumProcs <= 0 {
		return nil, nil, fmt.Errorf("stabilize: NumProcs must be positive")
	}
	if cfg.SoloProc < 0 || cfg.SoloProc >= cfg.NumProcs {
		return nil, nil, fmt.Errorf("stabilize: SoloProc %d out of range", cfg.SoloProc)
	}
	if cfg.MaxSoloOps <= 0 {
		cfg.MaxSoloOps = cfg.OpsPerProc
	}

	workload := sim.UniformWorkload(cfg.NumProcs, cfg.OpsPerProc, spec.MakeOp(spec.MethodFetchInc))
	root, err := sim.NewSystem(impl, workload, nil, cfg.CheckOpts, false)
	if err != nil {
		return nil, nil, fmt.Errorf("stabilize: %w", err)
	}

	// Step 1: find a stable configuration (Claim 1).
	stable, err := explore.FindStable(root, cfg.SearchDepth, cfg.VerifyDepth,
		explore.Config{Workers: cfg.Workers}, cfg.CheckOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("stabilize: %w", err)
	}
	sys := stable.System
	rep := &Report{
		StableDepth:   stable.Depth,
		StableT:       stable.T,
		NodesSearched: stable.NodesSearched,
	}

	// Step 2a: reach C_idle — run each process solo until its pending
	// operation completes. Bases are linearizable, so each Advance has a
	// single branch.
	for p := 0; p < cfg.NumProcs; p++ {
		for guard := 0; sys.Running(p); guard++ {
			if guard > 1<<14 {
				return nil, nil, fmt.Errorf("stabilize: process p%d did not complete its operation solo (not non-blocking?)", p)
			}
			if err := sys.Advance(p, 0); err != nil {
				return nil, nil, fmt.Errorf("stabilize: drain p%d: %w", p, err)
			}
		}
	}

	// Step 2b: run SoloProc until op0 returns the number of operations
	// invoked before it.
	p := cfg.SoloProc
	found := false
	for k := 0; k < cfg.MaxSoloOps; k++ {
		if sys.OpsBegun(p) >= cfg.OpsPerProc {
			return nil, nil, fmt.Errorf("stabilize: solo workload exhausted after %d ops; increase OpsPerProc", k)
		}
		invBefore := int64(len(sys.History().Operations()))
		resp, err := runOneOpSolo(sys, p)
		if err != nil {
			return nil, nil, fmt.Errorf("stabilize: solo op %d: %w", k, err)
		}
		rep.SoloOps = k + 1
		if resp == invBefore {
			rep.V0 = invBefore + 1 // operations invoked up to and including op0
			found = true
			break
		}
	}
	if !found {
		return nil, nil, fmt.Errorf("stabilize: no op0 within %d solo operations (is %s eventually linearizable?)",
			cfg.MaxSoloOps, impl.Name())
	}

	// Step 3: capture C0.
	rep.BaseStates = sys.BaseStates()
	procs := make([]machine.Process, cfg.NumProcs)
	for q := 0; q < cfg.NumProcs; q++ {
		procs[q] = sys.Proc(q).Clone()
	}

	// Step 4: A′.
	bases := impl.Bases()
	for i := range bases {
		st, ok := rep.BaseStates[bases[i].Name]
		if !ok {
			return nil, nil, fmt.Errorf("stabilize: no captured state for base %q", bases[i].Name)
		}
		bases[i].Obj.Init = st
	}
	out := &Impl{
		inner: impl,
		bases: bases,
		procs: procs,
		v0:    rep.V0,
	}
	return out, rep, nil
}

// runOneOpSolo advances process p until its next operation completes and
// returns the operation's response.
func runOneOpSolo(sys *sim.System, p int) (int64, error) {
	before := sys.OpsBegun(p)
	for guard := 0; ; guard++ {
		if guard > 1<<14 {
			return 0, fmt.Errorf("operation did not complete solo (not non-blocking?)")
		}
		if err := sys.Advance(p, 0); err != nil {
			return 0, err
		}
		if sys.OpsBegun(p) > before && !sys.Running(p) {
			h := sys.History()
			return h.Event(h.Len() - 1).Resp, nil
		}
	}
}

// Impl is the constructed implementation A′.
type Impl struct {
	inner machine.Impl
	bases []machine.Base
	procs []machine.Process
	v0    int64
}

var _ machine.Impl = (*Impl)(nil)

// Name implements machine.Impl.
func (im *Impl) Name() string { return im.inner.Name() + "-stabilized" }

// Spec implements machine.Impl: A′ implements the same fetch&increment,
// from its canonical initial value, because responses are offset by v0.
func (im *Impl) Spec() spec.Object { return im.inner.Spec() }

// Bases implements machine.Impl: the same base objects, initialized to
// their states in C0.
func (im *Impl) Bases() []machine.Base {
	out := make([]machine.Base, len(im.bases))
	copy(out, im.bases)
	return out
}

// V0 returns the response offset.
func (im *Impl) V0() int64 { return im.v0 }

// NewProcess implements machine.Impl. The construction fixes the process
// count; asking for a process outside the captured set panics (programmer
// error: A′ is an n-process implementation for the n used in Transform).
func (im *Impl) NewProcess(p, n int) machine.Process {
	if p < 0 || p >= len(im.procs) {
		panic(fmt.Sprintf("stabilize: A′ was constructed for %d processes, got p%d", len(im.procs), p))
	}
	return &offsetProc{inner: im.procs[p].Clone(), v0: im.v0}
}

type offsetProc struct {
	inner machine.Process
	v0    int64
}

func (c *offsetProc) Begin(op spec.Op) { c.inner.Begin(op) }

func (c *offsetProc) Step(resp int64) machine.Action {
	act := c.inner.Step(resp)
	if act.Kind == machine.ActReturn {
		return machine.Return(act.Ret - c.v0)
	}
	return act
}

func (c *offsetProc) Clone() machine.Process {
	return &offsetProc{inner: c.inner.Clone(), v0: c.v0}
}

// AppendFingerprint implements machine.Fingerprinter; it reports false
// when the inner programme is not a Fingerprinter.
func (c *offsetProc) AppendFingerprint(b []byte) ([]byte, bool) {
	f, ok := c.inner.(machine.Fingerprinter)
	if !ok {
		return b, false
	}
	b, ok = f.AppendFingerprint(b)
	if !ok {
		return b, false
	}
	return machine.AppendFPInt(b, c.v0), true
}
