package exp

import (
	"fmt"
	"time"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/core/stabilize"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/gen"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

var fetchinc = spec.MakeOp(spec.MethodFetchInc)

// E9ELConsensus reproduces Proposition 16: the Proposals-array consensus
// over eventually linearizable registers is wait-free and eventually
// linearizable; MinT tracks the adversary's stabilization window.
func E9ELConsensus(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E9",
		Artifact: "Proposition 16",
		Title:    "EL consensus from EL registers: stabilization vs adversary window (20 seeds each)",
		Columns: []string{"procs", "window", "wait-free", "weakly consistent",
			"mean MinT (events)", "max MinT"},
		Notes: []string{
			"window = per-register actions before the base adversary stabilizes (stale answers allowed);",
			"every run must be weakly consistent and t-linearizable for finite t (eventual linearizability);",
			"larger windows push MinT up — stabilization is schedule-dependent, never absent",
		},
	}
	const seeds = 20
	for _, n := range []int{2, 4} {
		for _, window := range []int{0, 2, 6} {
			wcAll, wfAll := true, true
			sumT, maxT := 0, 0
			for seed := int64(0); seed < seeds; seed++ {
				w := make([][]spec.Op, n)
				for p := 0; p < n; p++ {
					for k := 0; k < 2; k++ {
						w[p] = append(w[p], spec.MakeOp1(spec.MethodPropose, int64(10*(p+1))))
					}
				}
				impl := elconsensus.Impl{}
				res, err := sim.Run(sim.Config{
					Impl:      impl,
					Workload:  w,
					Scheduler: sim.Random{},
					Chooser:   sim.StaleChooser{},
					Policies:  base.SamePolicy(base.Window{K: window}),
					Seed:      seed,
				})
				if err != nil {
					return nil, fmt.Errorf("E9 n=%d w=%d seed=%d: %w", n, window, seed, err)
				}
				if res.TimedOut {
					wfAll = false
				}
				wc, err := check.WeaklyConsistent(implObjs(impl), res.History, check.Options{})
				if err != nil {
					return nil, err
				}
				wcAll = wcAll && wc
				mt, ok, err := check.MinT(impl.Spec(), res.History, check.Options{})
				if err != nil {
					return nil, err
				}
				if !ok {
					return nil, fmt.Errorf("E9: run not t-linearizable for any t")
				}
				sumT += mt
				if mt > maxT {
					maxT = mt
				}
			}
			t.AddRow(n, window, wfAll, wcAll,
				fmt.Sprintf("%.1f", float64(sumT)/float64(seeds)), maxT)
		}
	}
	return t, nil
}

// E10TestSet reproduces the Section 4/5 test&set discussion: the
// communication-free implementation is eventually linearizable (bounded
// MinT: all zeros sit in a finite prefix), while the CAS-based one is
// linearizable outright.
func E10TestSet(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E10",
		Artifact: "Section 4/5 (test&set)",
		Title:    "Test&set: communication-free EL vs linearizable-from-CAS (20 seeds, 3 procs x 3 ops)",
		Columns:  []string{"implementation", "bases", "linearizable", "weakly consistent", "max MinT"},
		Notes: []string{
			"test&set is 'interesting' only in a finite prefix, so eventual linearizability is free;",
			"MinT is bounded by the prefix containing each process's first operation",
		},
	}
	const seeds = 20
	for _, impl := range []struct {
		im    machine.Impl
		bases string
	}{
		{eltestset.Local{}, "none"},
		{eltestset.FromCAS{}, "1 CAS"},
	} {
		linAll, wcAll := true, true
		maxT := 0
		for seed := int64(0); seed < seeds; seed++ {
			res, err := sim.Run(sim.Config{
				Impl:      impl.im,
				Workload:  sim.UniformWorkload(3, 3, spec.MakeOp(spec.MethodTestSet)),
				Scheduler: sim.Random{},
				Seed:      seed,
			})
			if err != nil {
				return nil, err
			}
			objs := implObjs(impl.im)
			lin, err := check.Linearizable(objs, res.History, check.Options{})
			if err != nil {
				return nil, err
			}
			linAll = linAll && lin
			wc, err := check.WeaklyConsistent(objs, res.History, check.Options{})
			if err != nil {
				return nil, err
			}
			wcAll = wcAll && wc
			mt, ok, err := check.MinT(impl.im.Spec(), res.History, check.Options{})
			if err != nil || !ok {
				return nil, fmt.Errorf("E10 MinT: %v %v", ok, err)
			}
			if mt > maxT {
				maxT = mt
			}
		}
		t.AddRow(impl.im.Name(), impl.bases, linAll, wcAll, maxT)
	}
	return t, nil
}

// E11Stabilize reproduces Proposition 18 end to end: the eventually
// linearizable warmup counter is transformed via the stable-configuration
// construction into A′, which exhaustive exploration then certifies as
// fully linearizable; the sloppy counter (not eventually linearizable)
// makes the stable search fail, as Claim 1 predicts it must not for EL
// implementations.
func E11Stabilize(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E11",
		Artifact: "Proposition 18 (the paradox)",
		Title:    "Stable-configuration construction: EL fetch&inc => linearizable fetch&inc",
		Columns: []string{"input", "stable found", "stable depth", "t=|aC|", "v0",
			"A' linearizable (exhaustive)"},
		Notes: []string{
			"warmup-counter: EL but not linearizable; its A' must pass the exhaustive check;",
			"sloppy-counter: not EL (Corollary 19), so no stable configuration exists to find",
		},
	}
	// Warmup counter: the headline result.
	out, rep, err := stabilize.Transform(counter.Warmup{Threshold: 2}, stabilize.Config{
		NumProcs:    2,
		OpsPerProc:  4,
		SearchDepth: 8,
		VerifyDepth: 16,
		Workers:     cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("E11 warmup: %w", err)
	}
	root, err := sim.NewSystem(out, sim.UniformWorkload(2, 2, fetchinc), nil, check.Options{}, false)
	if err != nil {
		return nil, err
	}
	linOK, _, _, err := explore.LinearizableEverywhere(root, 24, cfg.explore(), check.Options{})
	if err != nil {
		return nil, err
	}
	t.AddRow("warmup-counter (EL)", true, rep.StableDepth, rep.StableT, rep.V0, linOK)

	// Sloppy counter: stable search must fail.
	_, _, err = stabilize.Transform(counter.Sloppy{}, stabilize.Config{
		NumProcs:    2,
		OpsPerProc:  3,
		SearchDepth: 5,
		VerifyDepth: 12,
		Workers:     cfg.Workers,
	})
	t.AddRow("sloppy-counter (not EL)", err == nil, "-", "-", "-", "-")
	return t, nil
}

// E12Divergence reproduces Corollary 19 empirically: the register-only
// sloppy counter's MinT diverges linearly with run length under
// contention, while the CAS counter sits at MinT = 0. No register-only
// fetch&increment can be eventually linearizable.
func E12Divergence(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E12",
		Artifact: "Corollary 19",
		Title:    "MinT growth with run length: register-only counter vs CAS counter",
		Columns:  []string{"groups", "events", "sloppy MinT", "sloppy trend", "cas MinT"},
		Notes: []string{
			"sloppy trace: n concurrent increments per group all return the group index;",
			"its MinT must keep growing (divergence = the finite shadow of impossibility);",
			"the CAS counter is linearizable, so its MinT is identically 0",
		},
	}
	obj := spec.NewObject(spec.FetchInc{})
	for _, groups := range []int{4, 8, 16, 32} {
		h, err := gen.SloppyTrace(2, groups)
		if err != nil {
			return nil, err
		}
		v, err := check.TrackMinT(obj, h, h.Len()/8, check.Options{})
		if err != nil {
			return nil, err
		}
		// CAS counter run of the same op count.
		res, err := sim.Run(sim.Config{
			Impl:      counter.CAS{},
			Workload:  sim.UniformWorkload(2, groups, fetchinc),
			Scheduler: sim.Random{},
			Seed:      int64(groups),
		})
		if err != nil {
			return nil, err
		}
		casT, ok, err := check.MinT(obj, res.History, check.Options{})
		if err != nil || !ok {
			return nil, fmt.Errorf("E12 cas MinT: %v %v", ok, err)
		}
		t.AddRow(groups, h.Len(), v.FinalMinT, v.Trend.String(), casT)
	}
	return t, nil
}

// E13Throughput reproduces the introduction's motivation: under
// contention, the register-only sloppy counter completes operations in a
// bounded number of steps while the CAS counter retries; the price is
// consistency (E12), which is the trade-off the paper formalizes.
func E13Throughput(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E13",
		Artifact: "Introduction (motivating trade-off)",
		Title:    "Steps per completed operation under contention (10 seeds each)",
		Columns:  []string{"procs", "cas steps/op", "sloppy steps/op", "sloppy bounded"},
		Notes: []string{
			"cas-counter retries on contention (unbounded worst case, non-blocking only);",
			"sloppy-counter always finishes in n+1 steps — the 'do the increment locally' regime;",
			"the paper's point: that regime can be weakly consistent but never eventually linearizable",
		},
	}
	const seeds = 10
	for _, n := range []int{2, 4, 8} {
		var casSteps, sloppySteps float64
		var casOps, sloppyOps float64
		for seed := int64(0); seed < seeds; seed++ {
			resCAS, err := sim.Run(sim.Config{
				Impl:      counter.CAS{},
				Workload:  sim.UniformWorkload(n, 4, fetchinc),
				Scheduler: sim.Random{},
				Seed:      seed,
			})
			if err != nil {
				return nil, err
			}
			casSteps += float64(resCAS.Steps)
			casOps += float64(n * 4)
			resSloppy, err := sim.Run(sim.Config{
				Impl:      counter.Sloppy{},
				Workload:  sim.UniformWorkload(n, 4, fetchinc),
				Scheduler: sim.Random{},
				Seed:      seed,
			})
			if err != nil {
				return nil, err
			}
			sloppySteps += float64(resSloppy.Steps)
			sloppyOps += float64(n * 4)
		}
		t.AddRow(n,
			fmt.Sprintf("%.2f", casSteps/casOps),
			fmt.Sprintf("%.2f", sloppySteps/sloppyOps),
			fmt.Sprintf("%d", n+1))
	}
	return t, nil
}

// E14Checker measures the decision procedures themselves: the polynomial
// Lemma 17 fetch&inc checker against the generic exponential engine, and
// MinT via binary search.
func E14Checker(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E14",
		Artifact: "checker engineering (Lemma 17 as an algorithm)",
		Title:    "Checker latency on atomic fetch&inc histories",
		Columns:  []string{"ops", "events", "fast path", "generic engine", "MinT (fast)"},
		Notes: []string{
			"the Lemma 17 slot argument gives a polynomial checker; the generic engine is",
			"exponential with memoization and capped at 63 ops (— marks sizes beyond the cap)",
		},
	}
	obj := spec.NewObject(spec.FetchInc{})
	for _, nops := range []int{8, 16, 32, 64, 128} {
		h := historyOfAtomicCounter(nops)
		start := time.Now()
		if _, err := check.TLinearizable(obj, h, 0, check.Options{}); err != nil {
			return nil, err
		}
		fast := time.Since(start)

		generic := "—"
		if nops <= 32 {
			start = time.Now()
			if _, err := check.TLinearizable(obj, h, 0, check.Options{NoFastPath: true}); err != nil {
				return nil, err
			}
			generic = time.Since(start).String()
		}

		start = time.Now()
		if _, _, err := check.MinT(obj, h, check.Options{}); err != nil {
			return nil, err
		}
		minT := time.Since(start)
		t.AddRow(nops, h.Len(), fast.String(), generic, minT.String())
	}
	return t, nil
}

func historyOfAtomicCounter(nops int) *history.History {
	h := history.New()
	for i := 0; i < nops; i++ {
		if err := h.Call(i%2, "X", fetchinc, int64(i)); err != nil {
			panic(fmt.Sprintf("exp: counter history: %v", err))
		}
	}
	return h
}
