package exp

import (
	"fmt"
	"strings"

	"github.com/elin-go/elin/internal/campaign"
	"github.com/elin-go/elin/internal/compare"
)

// e19Pair is one head-to-head of the E19 comparison grid.
type e19Pair struct {
	label string
	a, b  []string
}

// E19SlogVersusLocalCopy pits the stabilizing-log construction (arXiv
// 1512.08258) against the paper's Theorem 12 local-copy construction on
// one deterministic sim grid, read through the comparison harness. Two
// head-to-heads share the grid:
//
//   - slog-register vs localcopy-register — the EL design-space question:
//     both are eventually linearizable registers built from an EL base,
//     but the log's promotion rule re-anchors speculation to the agreed
//     prefix, so its strict MinT settles to 0 while the local copy's
//     grows with the history (the divergence E6 demonstrates).
//   - slog-batch:1 vs slog-counter — the trade-off inside the family: at
//     batch 1 every operation waits for promotion (linearizable, MinT 0);
//     at the default batch the counter answers speculatively and its
//     duplicate speculative responses never stabilize under strict MinT.
//
// Every quantity in the table is deterministic (verdicts, trend classes,
// MinT, stabilization points of seeded sim runs); throughput is a live
// measurement and deliberately absent here — `elin compare` reports it on
// live grids.
func E19SlogVersusLocalCopy(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E19",
		Artifact: "Stabilizing logs (arXiv 1512.08258) vs Theorem 12",
		Title:    "Head-to-head: log promotion stabilizes where local-copy speculation diverges",
		Columns:  []string{"pair", "ops", "a", "a-trend", "a-minT", "b", "b-trend", "b-minT", "winner", "reason"},
		Notes: []string{
			"trend: classification of MinT over growing history prefixes (stabilized / inconclusive / diverging)",
			"minT: final MinT of the full history (0 = linearizable); stab points are in the archived compare report",
			"winner: decided by the compare ladder (verdict, then trend class, then final MinT, then stabilization point)",
			"slog-counter diverges by design under strict MinT: speculative duplicate counter responses persist in every prefix",
		},
	}

	sp := &campaign.Spec{
		Schema: campaign.SpecSchema,
		Name:   "E19",
		Axes: campaign.Axes{
			Engine:    []string{"sim"},
			Impl:      []string{"slog-register", "localcopy-register", "slog-batch:1", "slog-counter"},
			Ops:       []int{4, 8},
			Tolerance: []int{-1},
			Seed:      []int64{1},
		},
	}
	camp, err := campaign.Run(sp, campaign.RunOptions{Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}

	pairs := []e19Pair{
		{label: "slog/localcopy", a: []string{"slog-register"}, b: []string{"localcopy-register"}},
		{label: "strong/fast", a: []string{"slog-batch:1"}, b: []string{"slog-counter"}},
	}
	for _, pair := range pairs {
		rep, err := compare.Split(camp, pair.a, pair.b)
		if err != nil {
			return nil, fmt.Errorf("E19 %s: %w", pair.label, err)
		}
		for _, c := range rep.Cells {
			t.AddRow(pair.label, keyOps(c.Key),
				c.A.Impl, c.A.Trend, c.A.FinalMinT,
				c.B.Impl, c.B.Trend, c.B.FinalMinT,
				c.Winner, c.Reason)
		}
	}
	return t, nil
}

// keyOps extracts the ops coordinate of a family-blind comparison key.
func keyOps(key string) string {
	for _, tok := range strings.Fields(key) {
		if v, ok := strings.CutPrefix(tok, "ops="); ok {
			return v
		}
	}
	return "?"
}
