package exp

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/elin-go/elin/internal/registry"
	"github.com/elin-go/elin/internal/scenario"
)

// E18Recovery exercises the fault plane and the durable commit log end to
// end: a WAL-logged run crashes at an injected commit ticket (or has its
// log corrupted after the fact), the log is recovered — truncating any
// torn tail at the first bad frame — and the run continues on top of the
// recovered state with the online monitor covering the stitched history.
// All rows use the serial driver, so every cell (commit counts, stitched
// event counts, trends) is a pure function of the fixed seeds and the
// table reproduces byte for byte.
func E18Recovery(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E18",
		Artifact: "Fault plane",
		Title:    "Crash, corrupt, recover: durable commit log + stitched-history verification",
		Columns:  []string{"object", "fault", "recovered", "torn", "resumed-seq", "continued", "stitched", "trend", "verdict"},
		Notes: []string{
			"fault: crash:K kills the run after commit K is durable; trunc:N tears N bytes off a clean log's tail",
			"recovered: commits replayed from the log and re-verified against the (seed, ticket) determinism contract",
			"resumed-seq: the sequencer value the continuation starts from — recovered commits keep their tickets",
			"trend: MinT trend of the STITCHED history (recovered prefix + continuation), classified across the cut",
			"serial driver throughout: every cell is deterministic in the seeds",
		},
	}

	dir, err := os.MkdirTemp("", "elin-e18-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	type row struct {
		name     string // object under stress
		run      scenario.Scenario
		corrupt  string // post-run log corruption ("" = none)
		cont     scenario.Scenario
		wantTorn bool
		wantRec  int // commits the recovery must find
	}
	rows := []row{
		{
			name: "atomic-fi",
			run: scenario.Scenario{
				Impl: "atomic-fi", Procs: 2, Ops: 100, Seed: 3,
				Serial: true, Faults: "crash:120",
			},
			cont:    scenario.Scenario{Ops: 50, Serial: true, Stride: 64},
			wantRec: 120,
		},
		{
			name: "mutex-fi",
			run: scenario.Scenario{
				Impl: "mutex-fi", Procs: 2, Ops: 100, Seed: 3,
				Serial: true, Faults: "crash:120",
			},
			cont:    scenario.Scenario{Ops: 50, Serial: true, Stride: 64},
			wantRec: 120,
		},
		{
			name: "el-fi(window:8)",
			run: scenario.Scenario{
				Impl: "el-fi", Procs: 2, Ops: 200, Seed: 5, Tolerance: -1,
				Policy: "window:8", Serial: true, Faults: "crash:300",
			},
			cont:    scenario.Scenario{Ops: 100, Serial: true, Tolerance: -1, Stride: 64},
			wantRec: 300,
		},
		{
			name: "el-fi(window:8)",
			run: scenario.Scenario{
				Impl: "el-fi", Procs: 2, Ops: 150, Seed: 7, Tolerance: -1,
				Policy: "window:8", Serial: true,
			},
			corrupt:  "trunc:7",
			cont:     scenario.Scenario{Ops: 100, Serial: true, Tolerance: -1, Stride: 64},
			wantTorn: true,
			wantRec:  299, // 2x150 ops minus the one commit the torn frame loses
		},
	}

	for i, r := range rows {
		walPath := filepath.Join(dir, fmt.Sprintf("run%d.wal", i))
		r.run.WAL = walPath
		rep, err := scenario.Run("live", r.run)
		if err != nil {
			return nil, fmt.Errorf("E18 %s run: %w", r.name, err)
		}
		if !rep.OK() {
			return nil, fmt.Errorf("E18 %s run: verdict %s (%s)", r.name, rep.Verdict, rep.Detail)
		}
		fault := r.run.Faults
		if r.corrupt != "" {
			sp, err := registry.Faults(r.corrupt)
			if err != nil {
				return nil, fmt.Errorf("E18 %s: %w", r.name, err)
			}
			if err := sp.CorruptFile(walPath, r.run.Seed); err != nil {
				return nil, fmt.Errorf("E18 %s corrupt: %w", r.name, err)
			}
			fault = r.corrupt
		}
		rec, err := scenario.Recover(walPath, r.cont)
		if err != nil {
			return nil, fmt.Errorf("E18 %s recover: %w", r.name, err)
		}
		ri := rec.Recovery
		if ri == nil || ri.Torn != r.wantTorn || ri.RecoveredCommits != r.wantRec {
			return nil, fmt.Errorf("E18 %s recovery = %+v, want torn=%v recovered=%d",
				r.name, ri, r.wantTorn, r.wantRec)
		}
		if !rec.OK() {
			return nil, fmt.Errorf("E18 %s recover: verdict %s (%s)", r.name, rec.Verdict, rec.Detail)
		}
		trend := "-"
		if rec.Trend != nil {
			trend = rec.Trend.Trend
		}
		t.AddRow(r.name, fault, ri.RecoveredCommits, ri.Torn, ri.ResumedSeq,
			ri.ContinuedOps, ri.StitchedEvents, trend, string(rec.Verdict))
	}
	return t, nil
}
