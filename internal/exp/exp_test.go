package exp

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	tab, err := e.Run(Config{})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tab.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("%s render: %v", id, err)
	}
	if !strings.Contains(buf.String(), tab.ID) {
		t.Fatalf("%s render missing id", id)
	}
	return tab
}

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", tab.ID, row, col)
	}
	return tab.Rows[row][col]
}

func TestE1NoViolations(t *testing.T) {
	tab := runExp(t, "E1")
	for i, row := range tab.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("E1 row %d reports violations: %v", i, row)
		}
	}
}

func TestE2FullAgreement(t *testing.T) {
	tab := runExp(t, "E2")
	for i, row := range tab.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("E2 row %d reports disagreements: %v", i, row)
		}
	}
}

func TestE3GlobalMinTGrows(t *testing.T) {
	tab := runExp(t, "E3")
	prev := -1
	for i, row := range tab.Rows {
		if row[2] != "2" {
			t.Errorf("E3 row %d: per-object t_o = %s, want 2", i, row[2])
		}
		g, err := strconv.Atoi(row[3])
		if err != nil {
			t.Fatal(err)
		}
		if g <= prev {
			t.Errorf("E3 global MinT not growing: %v", tab.Rows)
		}
		prev = g
	}
}

func TestE4SlotEscapes(t *testing.T) {
	tab := runExp(t, "E4")
	prev := int64(-1)
	for i, row := range tab.Rows {
		if row[1] != "true" {
			t.Errorf("E4 row %d: prefix not 2-linearizable", i)
		}
		if row[2] != "false" {
			t.Errorf("E4 row %d: prefix unexpectedly 1-linearizable", i)
		}
		slot, err := strconv.ParseInt(row[3], 10, 64)
		if err != nil {
			t.Fatal(err)
		}
		if slot <= prev {
			t.Errorf("E4 forced slot not escaping: %v", tab.Rows)
		}
		prev = slot
	}
}

func TestE5WrapperRestoresWeakConsistency(t *testing.T) {
	tab := runExp(t, "E5")
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	junk := byName["junk-counter"]
	if junk == nil || junk[2] == "40/40" {
		t.Errorf("junk counter should violate weak consistency somewhere: %v", junk)
	}
	wrapped := byName["junk-counter-announced"]
	if wrapped == nil || wrapped[2] != "40/40" {
		t.Errorf("wrapped junk counter must be weakly consistent on all runs: %v", wrapped)
	}
	cas := byName["cas-counter"]
	if cas == nil || cas[3] != "40/40" {
		t.Errorf("cas counter must be linearizable on all runs: %v", cas)
	}
}

func TestE6TheoremTwelveShape(t *testing.T) {
	tab := runExp(t, "E6")
	for _, row := range tab.Rows {
		switch row[0] {
		case "register":
			if row[2] != "true" || row[3] != "false" {
				t.Errorf("register local-copy: wc=%s lin=%s, want true/false", row[2], row[3])
			}
		case "constant":
			if row[2] != "true" || row[3] != "true" {
				t.Errorf("constant local-copy: wc=%s lin=%s, want true/true", row[2], row[3])
			}
		}
	}
}

func TestE7DecisionsAgree(t *testing.T) {
	tab := runExp(t, "E7")
	for i, row := range tab.Rows {
		if row[len(row)-1] != "true" {
			t.Errorf("E7 row %d: Proposition 14 verdicts disagree: %v", i, row)
		}
	}
}

func TestE8ValencyShape(t *testing.T) {
	tab := runExp(t, "E8")
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	regs := byName["P16 on atomic registers"]
	if regs == nil || regs[1] == "0" {
		t.Errorf("register protocol should violate agreement: %v", regs)
	}
	strong := byName["passthrough on consensus base"]
	if strong == nil || strong[1] != "0" {
		t.Errorf("strong-base protocol should not violate agreement: %v", strong)
	}
	if strong != nil && (strong[3] != "true" || !strings.Contains(strong[4], "consensus")) {
		t.Errorf("strong pivot expected: %v", strong)
	}
}

func TestE10Shape(t *testing.T) {
	tab := runExp(t, "E10")
	for _, row := range tab.Rows {
		switch row[0] {
		case "el-testset":
			if row[2] != "false" {
				t.Errorf("el-testset should not be linearizable across seeds: %v", row)
			}
			if row[3] != "true" {
				t.Errorf("el-testset must be weakly consistent: %v", row)
			}
		case "cas-testset":
			if row[2] != "true" || row[4] != "0" {
				t.Errorf("cas-testset must be linearizable with MinT 0: %v", row)
			}
		}
	}
}

func TestE11ParadoxShape(t *testing.T) {
	tab := runExp(t, "E11")
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	warm := tab.Rows[0]
	if warm[1] != "true" || warm[5] != "true" {
		t.Errorf("warmup transform failed: %v", warm)
	}
	sloppy := tab.Rows[1]
	if sloppy[1] != "false" {
		t.Errorf("sloppy transform should fail to find a stable configuration: %v", sloppy)
	}
}

func TestE12DivergenceShape(t *testing.T) {
	tab := runExp(t, "E12")
	prev := -1
	for i, row := range tab.Rows {
		mt, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if mt <= prev {
			t.Errorf("E12 row %d: sloppy MinT not growing: %v", i, tab.Rows)
		}
		prev = mt
		if row[4] != "0" {
			t.Errorf("E12 row %d: cas MinT = %s, want 0", i, row[4])
		}
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[3] != "diverging" {
		t.Errorf("E12 final trend = %s, want diverging", last[3])
	}
}

func TestE13ContentionShape(t *testing.T) {
	tab := runExp(t, "E13")
	// CAS steps/op must grow with contention; sloppy steps/op equals n+1.
	var casPrev float64
	for i, row := range tab.Rows {
		cas, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if cas < casPrev {
			t.Errorf("E13 row %d: cas steps/op decreased under contention: %v", i, tab.Rows)
		}
		casPrev = cas
	}
}

func TestE9AndE14Run(t *testing.T) {
	if testing.Short() {
		t.Skip("long experiments")
	}
	tab := runExp(t, "E9")
	for _, row := range tab.Rows {
		if row[2] != "true" || row[3] != "true" {
			t.Errorf("E9 run not wait-free/weakly consistent: %v", row)
		}
	}
	runExp(t, "E14")
}

func TestE15ProgressShape(t *testing.T) {
	tab := runExp(t, "E15")
	byName := map[string][]string{}
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	cas := byName["cas-counter"]
	if cas == nil || cas[1] != "true" || cas[2] != "true" {
		t.Errorf("cas counter should be obstruction-free with starvation found: %v", cas)
	}
	sloppy := byName["sloppy-counter"]
	if sloppy == nil || sloppy[2] != "false" {
		t.Errorf("sloppy counter should not starve: %v", sloppy)
	}
	ts := byName["el-testset"]
	if ts == nil || ts[4] != "1" {
		t.Errorf("el-testset should take one step per op: %v", ts)
	}
}

func TestE16HierarchyShape(t *testing.T) {
	tab := runExp(t, "E16")
	wantEL := map[string]string{
		"el-testset":          "true",
		"consensus-localcopy": "false",
		"fetchinc-localcopy":  "false",
		"el-consensus":        "true",
		"sloppy-counter":      "false",
		"warmup-counter":      "true",
	}
	for _, row := range tab.Rows {
		want, ok := wantEL[row[1]]
		if !ok {
			t.Errorf("unexpected row %v", row)
			continue
		}
		if row[5] != want {
			t.Errorf("%s EL verdict = %s, want %s", row[1], row[5], want)
		}
	}
	if len(tab.Rows) != len(wantEL) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(wantEL))
	}
}

func TestAllUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID found a ghost")
	}
	if _, ok := ByID("e3"); !ok {
		t.Error("ByID should be case-insensitive")
	}
}

func TestE17StressShape(t *testing.T) {
	tab := runExp(t, "E17")
	if len(tab.Rows) != 4 {
		t.Fatalf("E17 rows = %d, want 4", len(tab.Rows))
	}
	// Correct objects: clean, stabilized trend, byte-identical replay.
	for i := 0; i < 3; i++ {
		if cell(t, tab, i, 4) != "clean" || cell(t, tab, i, 5) != "stabilized" {
			t.Errorf("E17 row %d not clean/stabilized: %v", i, tab.Rows[i])
		}
		if cell(t, tab, i, 6) != "identical" {
			t.Errorf("E17 row %d replay: %v", i, tab.Rows[i])
		}
	}
	// The injected-bug counter: caught, shrunk small, sim-confirmed.
	junk := tab.Rows[3]
	if cell(t, tab, 3, 4) != "caught" {
		t.Fatalf("E17 junk row not caught: %v", junk)
	}
	if n, err := strconv.Atoi(cell(t, tab, 3, 7)); err != nil || n < 1 || n > 2 {
		t.Errorf("E17 junk shrunk-ops = %q, want 1 or 2", cell(t, tab, 3, 7))
	}
	if cell(t, tab, 3, 8) != "true" {
		t.Errorf("E17 junk not sim-diverged: %v", junk)
	}
}

func TestE18RecoveryShape(t *testing.T) {
	tab := runExp(t, "E18")
	if len(tab.Rows) != 4 {
		t.Fatalf("E18 rows = %d, want 4", len(tab.Rows))
	}
	// Every row stitches to ok with a stabilized trend — the serial driver
	// makes each cell deterministic, so the counts are exact.
	for i := range tab.Rows {
		if cell(t, tab, i, 7) != "stabilized" || cell(t, tab, i, 8) != "ok" {
			t.Errorf("E18 row %d not stabilized/ok: %v", i, tab.Rows[i])
		}
	}
	// Crash rows recover exactly the injected cut; recovered commits keep
	// their tickets (resumed-seq == recovered).
	for i := 0; i < 3; i++ {
		if cell(t, tab, i, 3) != "false" || cell(t, tab, i, 2) != cell(t, tab, i, 4) {
			t.Errorf("E18 crash row %d: %v", i, tab.Rows[i])
		}
	}
	if cell(t, tab, 0, 2) != "120" || cell(t, tab, 2, 2) != "300" {
		t.Errorf("E18 recovered commits drifted: %v / %v", tab.Rows[0], tab.Rows[2])
	}
	// The torn row loses exactly the one commit the truncated frame held.
	if cell(t, tab, 3, 3) != "true" || cell(t, tab, 3, 2) != "299" {
		t.Errorf("E18 torn row: %v", tab.Rows[3])
	}
}

// E19 is the comparison-harness experiment: its golden claims are the
// exact per-cell trend classes and winners — the acceptance bar is at
// least one cell where the two families' trend classes differ, and here
// every cell does.
func TestE19SlogComparisonGolden(t *testing.T) {
	tab := runExp(t, "E19")
	want := [][]string{
		{"slog/localcopy", "4", "slog-register", "stabilized", "0", "localcopy-register", "diverging", "14", "a", "trend"},
		{"slog/localcopy", "8", "slog-register", "stabilized", "0", "localcopy-register", "diverging", "30", "a", "trend"},
		{"strong/fast", "4", "slog-batch:1", "stabilized", "0", "slog-counter", "diverging", "15", "a", "trend"},
		{"strong/fast", "8", "slog-batch:1", "stabilized", "0", "slog-counter", "diverging", "28", "a", "trend"},
	}
	if len(tab.Rows) != len(want) {
		t.Fatalf("E19 rows = %d, want %d: %v", len(tab.Rows), len(want), tab.Rows)
	}
	for i, w := range want {
		for j, cellWant := range w {
			if got := cell(t, tab, i, j); got != cellWant {
				t.Errorf("E19 row %d col %d (%s) = %q, want %q", i, j, tab.Columns[j], got, cellWant)
			}
		}
	}
}

// E19 must be deterministic for any worker count: two independent runs
// (one parallel) produce identical tables.
func TestE19Deterministic(t *testing.T) {
	e, _ := ByID("E19")
	a, err := e.Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	render := func(tab *Table) string {
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render(a) != render(b) {
		t.Fatalf("E19 not deterministic:\n%s\nvs\n%s", render(a), render(b))
	}
}

func TestE20MonitorGapShape(t *testing.T) {
	tab := runExp(t, "E20")
	if len(tab.Rows) != 10 {
		t.Fatalf("E20 rows = %d, want 2 workloads x 5 monitors", len(tab.Rows))
	}
	for i := range tab.Rows {
		junk := i >= 5
		mon, verdict, match := cell(t, tab, i, 1), cell(t, tab, i, 4), cell(t, tab, i, 7)
		switch mon {
		case "none":
			if verdict != "recorded" || match != "n/a" {
				t.Errorf("E20 row %d: %v", i, tab.Rows[i])
			}
		case "sample:4":
			if match != "verdict" {
				t.Errorf("E20 sample row %d diverged: %v", i, tab.Rows[i])
			}
		case "full":
			if match != "ref" {
				t.Errorf("E20 full row %d: %v", i, tab.Rows[i])
			}
		default: // shard:4, shard:key — pinned to the full monitor exactly
			if match != "yes" {
				t.Errorf("E20 row %d (%s) diverged from full: %v", i, mon, tab.Rows[i])
			}
		}
		if mon != "none" {
			want := "clean"
			if junk {
				want = "caught"
			}
			if verdict != want {
				t.Errorf("E20 row %d verdict = %q, want %q: %v", i, verdict, want, tab.Rows[i])
			}
		}
	}
}
