package exp

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/live"
	"github.com/elin-go/elin/internal/spec"
)

// E17Stress exercises the live concurrent runtime end to end: goroutine
// clients against genuinely shared objects, online windowed monitoring,
// and — for the injected-bug counter — the full catch → shrink → sim-replay
// pipeline. Table cells are restricted to schedule-independent quantities
// (multi-client interleavings vary run to run; completed-op counts,
// violation verdicts and trends do not). The buggy and eventually
// linearizable rows run a single client so that even the shrunk witness
// size is reproducible.
func E17Stress(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E17",
		Artifact: "Live runtime",
		Title:    "Goroutine stress harness: online windowed t-lin monitoring, fuzz + shrink-to-sim",
		Columns:  []string{"object", "clients", "events", "windows", "verdict", "trend", "replay", "shrunk-ops", "sim-diverged"},
		Notes: []string{
			"verdict: clean = no window exceeded tolerance; caught = the online monitor stopped the run",
			"replay: identical = re-deriving every response from the recorded commit order reproduces the merged history byte for byte",
			"shrunk-ops / sim-diverged: size of the ddmin-minimized window and whether its commit-order replay diverges in the deterministic simulator",
			"throughput/latency are measured by elin stress and archived in BENCH_*.json (schedule-dependent, so not table cells)",
		},
	}

	type row struct {
		name    string
		mk      func() (live.Object, error)
		clients int
		ops     int
		monitor check.IncrementalConfig
		buggy   bool
	}
	rows := []row{
		{
			name:    "atomic-fi",
			mk:      func() (live.Object, error) { return live.NewAtomicFetchInc("C", 0), nil },
			clients: 4, ops: 1500,
			monitor: check.IncrementalConfig{Stride: 512},
		},
		{
			name: "mutex-fi",
			mk: func() (live.Object, error) {
				return live.NewSerialized("C", spec.NewObject(spec.FetchInc{}), 17)
			},
			clients: 4, ops: 1500,
			monitor: check.IncrementalConfig{Stride: 512},
		},
		{
			name: "el-fi(window:400)",
			mk: func() (live.Object, error) {
				return live.NewSerializedEventual("C", spec.NewObject(spec.FetchInc{}),
					base.Window{K: 400}, 17, check.Options{})
			},
			clients: 1, ops: 1200,
			monitor: check.IncrementalConfig{Stride: 256, NoViolation: true},
		},
		{
			name:    "junk-fi(stick:40)",
			mk:      func() (live.Object, error) { return live.NewJunkFetchInc("C", 40), nil },
			clients: 1, ops: 150,
			monitor: check.IncrementalConfig{Stride: 64},
			buggy:   true,
		},
	}

	for _, r := range rows {
		obj, err := r.mk()
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", r.name, err)
		}
		res, err := live.Run(live.Config{
			Object:  obj,
			Clients: r.clients,
			Ops:     r.ops,
			Seed:    17,
			Monitor: r.monitor,
		})
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", r.name, err)
		}
		verdict := "clean"
		shrunk, simDiverged := "-", "-"
		if res.Violation != nil {
			verdict = "caught"
			w, err := live.Shrink(res.Violation, check.Options{})
			if err != nil {
				return nil, fmt.Errorf("E17 %s shrink: %w", r.name, err)
			}
			shrunk = fmt.Sprintf("%d", w.Ops)
			simDiverged = fmt.Sprintf("%v", w.Replay.Diverged)
		}
		if r.buggy != (verdict == "caught") {
			return nil, fmt.Errorf("E17 %s: verdict %s does not match expectation (buggy=%v)",
				r.name, verdict, r.buggy)
		}
		// Replay identity covers whatever was merged (a violation stop
		// truncates the history at the offending window's end).
		same, err := live.Verify(obj, res.History)
		if err != nil {
			return nil, fmt.Errorf("E17 %s verify: %w", r.name, err)
		}
		replay := "identical"
		if !same {
			replay = "DIVERGED"
		}
		t.AddRow(r.name, r.clients, res.History.Len(), len(res.Verdict.Samples), verdict,
			res.Verdict.Trend.String(), replay, shrunk, simDiverged)
	}
	return t, nil
}
