package exp

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/core/localcopy"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

// E16Hierarchy probes the paper's closing open question (Section 6): for
// which types is an eventually linearizable implementation easier to
// attain than a linearizable one? The measured MinT trends sort the
// paper's example types into a three-level hierarchy of "how much
// synchronization eventual linearizability still requires":
//
//   - free (no shared objects): test&set — all interesting behaviour lives
//     in a finite prefix; its communication-free implementation stabilizes.
//     Contrast: communication-free consensus and fetch&inc diverge.
//   - registers suffice: consensus (Proposition 16) — the Proposals-array
//     algorithm stabilizes even over eventually linearizable registers.
//     Contrast: register-only fetch&inc diverges (Corollary 19).
//   - consensus power required: fetch&inc — only with CAS does the MinT
//     trend stabilize, and by Proposition 18 any such implementation
//     already contains a fully linearizable one.
func E16Hierarchy(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E16",
		Artifact: "Section 6 (open question)",
		Title:    "How much synchronization does eventual linearizability still need?",
		Columns:  []string{"type", "implementation", "shared bases", "MinT trend", "max MinT", "EL?"},
		Notes: []string{
			"trend over 3 contended runs of growing length (seeds 1-3); 'diverging' anywhere = not EL;",
			"the table is the paper's hierarchy: t&s free; consensus needs registers (P16);",
			"fetch&inc needs consensus power (C19), and then contains a linearizable core (P18)",
		},
	}

	lcConsensus, err := localcopy.New(
		passthrough.New("consensus", spec.NewObject(spec.Consensus{}), true), 0)
	if err != nil {
		return nil, err
	}
	lcFetchInc, err := localcopy.New(
		passthrough.New("fetchinc", spec.NewObject(spec.FetchInc{}), true), 0)
	if err != nil {
		return nil, err
	}

	cases := []struct {
		typeName string
		impl     machine.Impl
		bases    string
		pol      base.PolicyFor
	}{
		{"testset", eltestset.Local{}, "none", nil},
		{"consensus", lcConsensus, "none", nil},
		{"fetchinc", lcFetchInc, "none", nil},
		{"consensus", elconsensus.Impl{}, "EL registers", base.SamePolicy(base.Window{K: 2})},
		{"fetchinc", counter.Sloppy{}, "registers", nil},
		{"fetchinc", counter.Warmup{Threshold: 4}, "CAS", nil},
	}
	for _, tc := range cases {
		worstTrend := check.TrendStabilized
		maxT := 0
		for seed := int64(1); seed <= 3; seed++ {
			ops := 6 * int(seed)
			res, err := sim.Run(sim.Config{
				Impl:      tc.impl,
				Workload:  workloadFor(tc.impl, 2, ops),
				Scheduler: sim.Random{},
				Chooser:   sim.StaleChooser{},
				Policies:  tc.pol,
				Seed:      seed,
			})
			if err != nil {
				return nil, fmt.Errorf("E16 %s/%s seed %d: %w", tc.typeName, tc.impl.Name(), seed, err)
			}
			v, err := check.TrackMinT(tc.impl.Spec(), res.History, max(res.History.Len()/8, 2), check.Options{})
			if err != nil {
				return nil, err
			}
			if v.FinalMinT > maxT {
				maxT = v.FinalMinT
			}
			if v.Trend == check.TrendDiverging {
				worstTrend = check.TrendDiverging
			} else if v.Trend == check.TrendInconclusive && worstTrend != check.TrendDiverging {
				worstTrend = check.TrendInconclusive
			}
		}
		t.AddRow(tc.typeName, tc.impl.Name(), tc.bases, worstTrend.String(), maxT,
			worstTrend != check.TrendDiverging)
	}
	return t, nil
}

func workloadFor(impl machine.Impl, procs, ops int) [][]spec.Op {
	w := make([][]spec.Op, procs)
	for p := 0; p < procs; p++ {
		var op spec.Op
		switch impl.Spec().Type.(type) {
		case spec.Consensus:
			op = spec.MakeOp1(spec.MethodPropose, int64(10*(p+1)))
		case spec.TestSet:
			op = spec.MakeOp(spec.MethodTestSet)
		default:
			op = spec.MakeOp(spec.MethodFetchInc)
		}
		for k := 0; k < ops; k++ {
			w[p] = append(w[p], op)
		}
	}
	return w
}
