package exp

import (
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/eltestset"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/progress"
)

// E15Progress probes the progress conditions of Section 3 (wait-free,
// non-blocking, obstruction-free) for the main implementations: solo runs
// certify obstruction-freedom, the starvation adversary separates
// wait-freedom from the non-blocking property, and per-operation step
// bounds estimate wait-free bounds.
func E15Progress(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E15",
		Artifact: "Section 3 (progress conditions)",
		Title:    "Progress probes: solo completion, starvation adversary, step bounds",
		Columns: []string{"implementation", "obstruction-free", "starvation found",
			"others completed", "max steps/op", "verdict"},
		Notes: []string{
			"the CAS counter is the paper's canonical non-blocking-but-not-wait-free object:",
			"under the ratio adversary its victim's read-CAS window always spans another's",
			"success; the sloppy counter and P16 consensus finish in a fixed number of own steps",
		},
	}
	impls := []machine.Impl{
		counter.CAS{},
		counter.Sloppy{},
		elconsensus.Impl{},
		eltestset.Local{},
	}
	for _, impl := range impls {
		rep, err := progress.Probe(impl, progress.Config{})
		if err != nil {
			return nil, err
		}
		t.AddRow(impl.Name(), rep.ObstructionFree, rep.StarvationFound,
			rep.OthersCompleted, rep.MaxStepsPerOp, progress.Classify(rep))
	}
	return t, nil
}
