package exp

import (
	"fmt"
	"math/rand"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/gen"
	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// E1MonotonePrefix verifies Lemma 5 (t-linearizability is monotone in t)
// and Lemma 6 (t-linearizability is prefix-closed) on randomized histories
// of three types, counting verified implications.
func E1MonotonePrefix(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E1",
		Artifact: "Lemma 5 + Lemma 6",
		Title:    "Monotonicity in t and prefix closure of t-linearizability on random histories",
		Columns:  []string{"type", "trials", "monotone checks", "prefix checks", "violations"},
		Notes: []string{
			"a violation would falsify the lemma (and indicate a checker bug); the expected count is 0",
		},
	}
	kinds := []struct {
		name string
		gen  func(r *rand.Rand) (*TableHistory, error)
	}{
		{"register", func(r *rand.Rand) (*TableHistory, error) {
			h := gen.Register(r, gen.HistoryConfig{Procs: 3, Ops: 6, Corrupt: 0.4, PendingBias: 0.2})
			return &TableHistory{H: h, Obj: spec.NewObject(spec.Register{})}, nil
		}},
		{"fetchinc", func(r *rand.Rand) (*TableHistory, error) {
			h := gen.FetchInc(r, gen.HistoryConfig{Procs: 3, Ops: 6, Corrupt: 0.4, PendingBias: 0.2})
			return &TableHistory{H: h, Obj: spec.NewObject(spec.FetchInc{})}, nil
		}},
	}
	const trials = 40
	for _, kind := range kinds {
		r := rand.New(rand.NewSource(11))
		monotone, prefix, violations := 0, 0, 0
		for trial := 0; trial < trials; trial++ {
			th, err := kind.gen(r)
			if err != nil {
				return nil, err
			}
			h, obj := th.H, th.Obj
			prev := false
			for tt := 0; tt <= h.Len(); tt++ {
				ok, err := check.TLinearizable(obj, h, tt, check.Options{})
				if err != nil {
					return nil, fmt.Errorf("E1 %s trial %d t=%d: %w", kind.name, trial, tt, err)
				}
				if tt > 0 {
					monotone++
					if prev && !ok {
						violations++
					}
				}
				if ok && tt%3 == 0 {
					for k := 0; k <= h.Len(); k += 3 {
						pok, err := check.TLinearizable(obj, h.Prefix(k), tt, check.Options{})
						if err != nil {
							return nil, err
						}
						prefix++
						if !pok {
							violations++
						}
					}
				}
				prev = ok
			}
		}
		t.AddRow(kind.name, trials, monotone, prefix, violations)
	}
	return t, nil
}

// TableHistory pairs a history with its object specification.
type TableHistory struct {
	H   *history.History
	Obj spec.Object
}

// randomTwoObject generates a random history over a register X and a
// fetch&inc Y, with corrupted responses so both verdicts occur.
func randomTwoObject(r *rand.Rand) *history.History {
	hx := gen.Register(r, gen.HistoryConfig{Procs: 2, Ops: 4, Corrupt: 0.3, Object: "X"})
	hy := gen.FetchInc(r, gen.HistoryConfig{Procs: 2, Ops: 4, Corrupt: 0.3, Object: "Y"})
	// Interleave the two histories process-disjointly: X's events keep
	// processes 0..1, Y's shift to 2..3, preserving well-formedness.
	out := history.New()
	ex, ey := hx.Events(), hy.Events()
	i, j := 0, 0
	for i < len(ex) || j < len(ey) {
		pick := i < len(ex) && (j >= len(ey) || r.Intn(2) == 0)
		if pick {
			e := ex[i]
			i++
			if err := out.Append(e); err != nil {
				panic(fmt.Sprintf("exp: interleave: %v", err))
			}
			continue
		}
		e := ey[j]
		j++
		e.Proc += 2
		if err := out.Append(e); err != nil {
			panic(fmt.Sprintf("exp: interleave: %v", err))
		}
	}
	return out
}

// E2Locality verifies Lemma 7/Lemma 8 empirically: per-object
// (locality-based) linearizability and weak-consistency verdicts agree
// with the direct product-state check on random two-object histories.
func E2Locality(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E2",
		Artifact: "Lemma 7 + Lemma 8 (locality)",
		Title:    "Per-object verdicts vs direct product-state verdicts on two-object histories",
		Columns:  []string{"check", "trials", "agreements", "disagreements"},
		Notes: []string{
			"Herlihy-Wing locality carries over to the paper's definitions for finitely many objects",
		},
	}
	objs := map[string]spec.Object{
		"X": spec.NewObject(spec.Register{}),
		"Y": spec.NewObject(spec.FetchInc{}),
	}
	r := rand.New(rand.NewSource(12))
	const trials = 50
	agree, disagree := 0, 0
	for trial := 0; trial < trials; trial++ {
		h := randomTwoObject(r)
		perObj, err := check.Linearizable(objs, h, check.Options{})
		if err != nil {
			return nil, err
		}
		direct, err := check.TLinearizableMulti(objs, h, 0, check.Options{})
		if err != nil {
			return nil, err
		}
		if perObj == direct {
			agree++
		} else {
			disagree++
		}
	}
	t.AddRow("linearizability", trials, agree, disagree)

	// MinT lift soundness: the Lemma 7 construction's global t really
	// t-linearizes the history.
	sound, unsound := 0, 0
	for trial := 0; trial < trials; trial++ {
		h := randomTwoObject(r)
		tUp, err := check.MinTGlobalUpper(objs, h, check.Options{})
		if err != nil {
			return nil, err
		}
		ok, err := check.TLinearizableMulti(objs, h, tUp, check.Options{})
		if err != nil {
			return nil, err
		}
		if ok {
			sound++
		} else {
			unsound++
		}
	}
	t.AddRow("MinT lift (Lemma 7 construction)", trials, sound, unsound)
	return t, nil
}

// E3InfiniteObjects reproduces the Proposition 9 counterexample: the
// history over registers R1..Rk in which every per-object projection has
// t_o = 2 but the global MinT grows linearly in k, because the "write 1 /
// read 0" pattern keeps recurring on fresh objects.
func E3InfiniteObjects(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E3",
		Artifact: "Proposition 9 counterexample",
		Title:    "Per-object t_o stays 2 while global MinT grows with the object count",
		Columns:  []string{"objects k", "events", "max per-object t_o", "global MinT (Lemma 7 lift)"},
		Notes: []string{
			"paper: eventual linearizability is local for finitely many objects only;",
			"the global t must cover the last inconsistent block, so it grows without bound",
		},
	}
	for _, k := range []int{2, 4, 8, 12, 16} {
		h, objs, err := gen.Proposition9Counterexample(k)
		if err != nil {
			return nil, err
		}
		local, err := check.MinTLocal(objs, h, check.Options{})
		if err != nil {
			return nil, err
		}
		maxLocal := 0
		for _, to := range local {
			if to > maxLocal {
				maxLocal = to
			}
		}
		global, err := check.MinTGlobalUpper(objs, h, check.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(k, h.Len(), maxLocal, global)
	}
	return t, nil
}

// E4NotSafety reproduces the Section 3.2 counterexample: every finite
// prefix of the fetch&inc history is 2-linearizable, yet the witness
// placement of p's operation escapes to infinity, so the infinite history
// is not 2-linearizable and t-linearizability is not limit-closed.
func E4NotSafety(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E4",
		Artifact: "Section 3.2 (t-linearizability is not a safety property)",
		Title:    "Prefixes stay 2-linearizable while p's forced slot grows without bound",
		Columns:  []string{"q-ops k", "2-linearizable", "1-linearizable", "min slot for p's op"},
		Notes: []string{
			"p's operation must take a slot above every constrained response; the slot equals k,",
			"so no single placement works for the infinite limit — exactly the paper's argument",
		},
	}
	obj := spec.NewObject(spec.FetchInc{})
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		h, err := gen.Section32Counterexample(k)
		if err != nil {
			return nil, err
		}
		two, err := check.TLinearizable(obj, h, 2, check.Options{})
		if err != nil {
			return nil, err
		}
		one, err := check.TLinearizable(obj, h, 1, check.Options{})
		if err != nil {
			return nil, err
		}
		// q's constrained ops occupy slots 0..k-1, so the only free slot
		// for p's operation is k.
		slots, err := check.FetchIncSlots(obj, h, 2)
		if err != nil {
			return nil, err
		}
		used := make(map[int64]bool, len(slots))
		for _, s := range slots {
			used[s] = true
		}
		minFree := int64(0)
		for used[minFree] {
			minFree++
		}
		t.AddRow(k, two, one, minFree)
	}
	return t, nil
}
