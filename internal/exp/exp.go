// Package exp implements the experiment suite of EXPERIMENTS.md: one
// experiment per paper artifact (lemma, proposition, theorem,
// counterexample, algorithm), each regenerating a table that records what
// the paper claims and what this reproduction measures. The experiments
// are deterministic (fixed seeds) and shared by cmd/elin (elin bench) and the root
// benchmark suite.
package exp

import (
	"fmt"
	"io"
	"strings"

	"github.com/elin-go/elin/internal/explore"
)

// Config tunes an experiment run. There is no package-global state: every
// experiment receives its configuration explicitly, so concurrent runs with
// different settings cannot interfere.
type Config struct {
	// Workers is the exploration worker count the experiments hand to
	// package explore: 0 (the default) uses GOMAXPROCS — the results are
	// deterministic for every worker count, so parallelism is safe to
	// leave on — and 1 forces the sequential reference engine for
	// apples-to-apples timings.
	Workers int
}

// explore is the exploration configuration the experiments share.
func (c Config) explore() explore.Config { return explore.Config{Workers: c.Workers} }

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier, e.g. "E1".
	ID string
	// Artifact names the paper artifact reproduced, e.g. "Lemma 5".
	Artifact string
	// Title is a one-line description.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows are the data rows.
	Rows [][]string
	// Notes explain how to read the table and what "passing" means.
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n%s\n", t.ID, t.Artifact, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// Experiment pairs an identifier with its runner.
type Experiment struct {
	// ID is the experiment identifier.
	ID string
	// Run executes the experiment with the given configuration.
	Run func(Config) (*Table, error)
}

// All returns the full suite in order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1MonotonePrefix},
		{"E2", E2Locality},
		{"E3", E3InfiniteObjects},
		{"E4", E4NotSafety},
		{"E5", E5Announce},
		{"E6", E6LocalCopy},
		{"E7", E7Trivial},
		{"E8", E8Valency},
		{"E9", E9ELConsensus},
		{"E10", E10TestSet},
		{"E11", E11Stabilize},
		{"E12", E12Divergence},
		{"E13", E13Throughput},
		{"E14", E14Checker},
		{"E15", E15Progress},
		{"E16", E16Hierarchy},
		{"E17", E17Stress},
		{"E18", E18Recovery},
		{"E19", E19SlogVersusLocalCopy},
		{"E20", E20MonitorGap},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
