package exp

import (
	"fmt"

	"github.com/elin-go/elin/internal/base"
	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/core/announce"
	"github.com/elin-go/elin/internal/core/counter"
	"github.com/elin-go/elin/internal/core/elconsensus"
	"github.com/elin-go/elin/internal/core/localcopy"
	"github.com/elin-go/elin/internal/core/passthrough"
	"github.com/elin-go/elin/internal/core/trivial"
	"github.com/elin-go/elin/internal/explore"
	"github.com/elin-go/elin/internal/machine"
	"github.com/elin-go/elin/internal/sim"
	"github.com/elin-go/elin/internal/spec"
)

func implObjs(impl machine.Impl) map[string]spec.Object {
	return map[string]spec.Object{impl.Name(): impl.Spec()}
}

// E5Announce reproduces Figure 1 / Proposition 11: wrapping a
// weak-consistency-violating counter in the announce/verify algorithm
// restores weak consistency on every schedule, while an honest counter
// passes through unharmed.
func E5Announce(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E5",
		Artifact: "Proposition 11 / Figure 1",
		Title:    "Weak-consistency verdicts across 40 random schedules, before and after wrapping",
		Columns:  []string{"implementation", "runs", "weakly consistent", "linearizable"},
		Notes: []string{
			"junk-counter overshoots responses (out of left field); its wrapped form must be 40/40",
			"weakly consistent — the announce arrays let line 13 reject the junk",
		},
	}
	wrapJunk, err := announce.New(counter.Junk{}, announce.FetchIncCodec(), check.Options{})
	if err != nil {
		return nil, err
	}
	wrapCAS, err := announce.New(counter.CAS{}, announce.FetchIncCodec(), check.Options{})
	if err != nil {
		return nil, err
	}
	impls := []machine.Impl{counter.Junk{}, wrapJunk, counter.CAS{}, wrapCAS}
	const runs = 40
	for _, impl := range impls {
		wcCount, linCount := 0, 0
		for seed := int64(0); seed < runs; seed++ {
			res, err := sim.Run(sim.Config{
				Impl:      impl,
				Workload:  sim.UniformWorkload(2, 3, spec.MakeOp(spec.MethodFetchInc)),
				Scheduler: sim.Random{},
				Seed:      seed,
			})
			if err != nil {
				return nil, fmt.Errorf("E5 %s seed %d: %w", impl.Name(), seed, err)
			}
			wc, err := check.WeaklyConsistent(implObjs(impl), res.History, check.Options{})
			if err != nil {
				return nil, err
			}
			if wc {
				wcCount++
			}
			lin, err := check.Linearizable(implObjs(impl), res.History, check.Options{})
			if err != nil {
				return nil, err
			}
			if lin {
				linCount++
			}
		}
		t.AddRow(impl.Name(), runs, fmt.Sprintf("%d/%d", wcCount, runs), fmt.Sprintf("%d/%d", linCount, runs))
	}
	return t, nil
}

// E6LocalCopy reproduces Theorem 12's construction: replacing eventually
// linearizable bases with local copies yields a communication-free,
// wait-free implementation whose histories stay weakly consistent; for the
// non-trivial register type, bounded exploration exhibits the
// linearizability violation that the theorem's contrapositive predicts.
func E6LocalCopy(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E6",
		Artifact: "Theorem 12 (local-copy construction)",
		Title:    "Exhaustive bounded exploration of local-copy implementations",
		Columns: []string{"inner type", "steps/op", "weakly consistent everywhere",
			"linearizable everywhere", "leaves"},
		Notes: []string{
			"register is non-trivial: the theorem says its local-copy version cannot be linearizable;",
			"the constant type is trivial (Definition 13) and survives the construction",
		},
	}
	cases := []struct {
		name     string
		obj      spec.Object
		workload [][]spec.Op
	}{
		{
			name: "register",
			obj:  spec.NewObject(spec.Register{}),
			workload: [][]spec.Op{
				{spec.MakeOp1(spec.MethodWrite, 1)},
				{spec.MakeOp(spec.MethodRead), spec.MakeOp(spec.MethodRead)},
			},
		},
		{
			name: "constant",
			obj:  spec.NewObject(spec.ConstantType(7)),
			workload: [][]spec.Op{
				{spec.MakeOp("get"), spec.MakeOp("get")},
				{spec.MakeOp("get")},
			},
		},
	}
	for _, tc := range cases {
		inner := passthrough.New(tc.name, tc.obj, true)
		lc, err := localcopy.New(inner, 0)
		if err != nil {
			return nil, err
		}
		root, err := sim.NewSystem(lc, tc.workload, nil, check.Options{}, false)
		if err != nil {
			return nil, err
		}
		// The leaf count comes from the weak-consistency sweep: it passes on
		// both rows, so it enumerates the whole tree and the count is
		// deterministic; the linearizability sweep aborts at its first
		// violation, leaving its counters at a schedule-dependent point.
		wcOK, _, wcSt, err := explore.WeaklyConsistentEverywhere(root, 10, cfg.explore(), check.Options{})
		if err != nil {
			return nil, err
		}
		linOK, _, _, err := explore.LinearizableEverywhere(root, 10, cfg.explore(), check.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.name, 1, wcOK, linOK, wcSt.Leaves)
	}
	return t, nil
}

// E7Trivial reproduces Proposition 14: the Definition 13 decision procedure
// agrees with bounded exploration of the local-copy construction — trivial
// types survive it linearizably, non-trivial types do not.
func E7Trivial(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E7",
		Artifact: "Definition 13 / Proposition 14",
		Title:    "Triviality decision vs exhaustive local-copy linearizability (2 processes)",
		Columns:  []string{"type", "trivial (Def. 13)", "local-copy linearizable", "verdicts agree"},
		Notes: []string{
			"Proposition 14: a deterministic type has a linearizable obstruction-free implementation",
			"from eventually linearizable objects iff it is trivial",
		},
	}
	cases := []struct {
		typ      spec.Type
		workload [][]spec.Op
	}{
		{spec.ConstantType(3), [][]spec.Op{{spec.MakeOp("get")}, {spec.MakeOp("get"), spec.MakeOp("get")}}},
		{spec.Register{}, [][]spec.Op{
			{spec.MakeOp1(spec.MethodWrite, 1)},
			{spec.MakeOp(spec.MethodRead), spec.MakeOp(spec.MethodRead)},
		}},
		{spec.TestSet{}, [][]spec.Op{
			{spec.MakeOp(spec.MethodTestSet)},
			{spec.MakeOp(spec.MethodTestSet)},
		}},
		{spec.Consensus{}, [][]spec.Op{
			{spec.MakeOp1(spec.MethodPropose, 0)},
			{spec.MakeOp1(spec.MethodPropose, 1)},
		}},
	}
	for _, tc := range cases {
		dec, err := trivial.Decide(tc.typ, 1000)
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", tc.typ.Name(), err)
		}
		inner := passthrough.New(tc.typ.Name(), spec.NewObject(tc.typ), true)
		lc, err := localcopy.New(inner, 0)
		if err != nil {
			return nil, err
		}
		root, err := sim.NewSystem(lc, tc.workload, nil, check.Options{}, false)
		if err != nil {
			return nil, err
		}
		linOK, _, _, err := explore.LinearizableEverywhere(root, 10, cfg.explore(), check.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.typ.Name(), dec.Trivial, linOK, dec.Trivial == linOK)
	}
	return t, nil
}

// E8Valency reproduces the Proposition 15 machinery: exhaustive valency
// analysis of two-process consensus protocols. A protocol over plain
// registers (Proposition 16's algorithm run on atomic registers) violates
// agreement; a protocol whose pivot is a strong object has critical
// configurations whose pending actions all touch that object — the proof's
// case analysis made visible.
func E8Valency(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E8",
		Artifact: "Proposition 15 (valency argument)",
		Title:    "Exhaustive valency analysis of two-process consensus protocols",
		Columns: []string{"protocol", "agreement violations", "critical configs",
			"pivot same object", "pivot kind"},
		Notes: []string{
			"registers cannot solve consensus: the register protocol must fail agreement;",
			"the strong-base protocol's every critical pivot is one (non-eventual) consensus object,",
			"matching the proof: register or eventually linearizable pivots always commute/swap",
		},
	}
	workload := [][]spec.Op{
		{spec.MakeOp1(spec.MethodPropose, 10)},
		{spec.MakeOp1(spec.MethodPropose, 20)},
	}
	cases := []struct {
		name string
		impl machine.Impl
		pol  base.PolicyFor
	}{
		{"P16 on atomic registers", elconsensus.Impl{AtomicBases: true}, nil},
		{"P16 on EL registers (never stabilize)", elconsensus.Impl{}, base.SamePolicy(base.Never{})},
		{"passthrough on consensus base", passthrough.New("cons", spec.NewObject(spec.Consensus{}), false), nil},
	}
	for _, tc := range cases {
		root, err := sim.NewSystem(tc.impl, workload, tc.pol, check.Options{}, false)
		if err != nil {
			return nil, err
		}
		rep, err := explore.Analyze(root, 18, cfg.explore())
		if err != nil {
			return nil, fmt.Errorf("E8 %s: %w", tc.name, err)
		}
		same := "n/a"
		kind := "n/a"
		if len(rep.Criticals) > 0 {
			allSame := true
			kinds := map[string]bool{}
			for _, c := range rep.Criticals {
				if !c.SameObject {
					allSame = false
				}
				for _, pa := range c.Pending {
					label := pa.BaseType
					if pa.Eventually {
						label += "(EL)"
					}
					if pa.IsReturn {
						label = "return"
					}
					kinds[label] = true
				}
			}
			same = fmt.Sprintf("%v", allSame)
			kind = ""
			for k := range kinds {
				if kind != "" {
					kind += ","
				}
				kind += k
			}
		}
		t.AddRow(tc.name, rep.AgreementViolations, len(rep.Criticals), same, kind)
	}
	return t, nil
}
