package exp

import (
	"fmt"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/live"
)

// E20MonitorGap is the monitored-gap matrix behind the check.Monitor API:
// the same deterministic serial run under every monitor implementation the
// spec vocabulary selects. The table pins verdict equivalence — full,
// shard:4 and shard:key must agree on verdict, trend, final MinT and (on
// the junk workload) the violation window; sample:4 checks fewer windows
// by design and is held to the verdict only. The other half of the gap,
// what monitoring costs in throughput and how much of it shard:K buys
// back, is schedule-dependent and archived as the MON-* rows of
// BENCH_*.json (elin bench -json -stress).
func E20MonitorGap(cfg Config) (*Table, error) {
	t := &Table{
		ID:       "E20",
		Artifact: "Monitor API",
		Title:    "Monitored-gap matrix: one serial run under every monitor implementation",
		Columns:  []string{"workload", "monitor", "events", "windows-checked", "verdict", "trend", "final-minT", "matches-full"},
		Notes: []string{
			"every row of one workload replays the identical serial event sequence; monitor specs differ only in how the windows are checked",
			"the events column on a caught run shows the pipelined monitor's documented detection lag: shard:4 keeps recording while the violating window's check runs off the hot path, yet reports the identical violation window",
			"matches-full: verdict, trend, final MinT and (junk workload) the violation window equal the sequential full monitor's; sample:4 skips windows by design, so it is held to the verdict only",
			"none is record-only: no windows, no verdict — the absence the other rows are measured against",
			"throughput gaps are schedule-dependent: see the MON-* rows in BENCH_*.json for full vs shard:4 vs none at the 1M-op stress scale",
		},
	}

	workloads := []struct {
		name string
		mk   func() live.Object
	}{
		{"atomic-fi", func() live.Object { return live.NewAtomicFetchInc("C", 0) }},
		{"junk-fi(stick:120)", func() live.Object { return live.NewJunkFetchInc("C", 120) }},
	}
	specs := []check.MonitorSpec{
		{Kind: check.MonitorFull},
		{Kind: check.MonitorSample, N: 4},
		{Kind: check.MonitorShardWindow, N: 4},
		{Kind: check.MonitorShardKey},
		{Kind: check.MonitorNone},
	}

	for _, w := range workloads {
		var ref *live.Result
		for _, ms := range specs {
			res, err := live.Run(live.Config{
				Object:      w.mk(),
				Clients:     4,
				Ops:         300,
				Seed:        3,
				Serial:      true,
				Monitor:     check.IncrementalConfig{Stride: 64},
				MonitorSpec: ms,
			})
			if err != nil {
				return nil, fmt.Errorf("E20 %s %s: %w", w.name, ms, err)
			}
			if ms.Kind == check.MonitorFull {
				ref = res
			}
			verdict, trend, finalMinT := "clean", res.Verdict.Trend.String(), fmt.Sprint(res.Verdict.FinalMinT)
			if res.Violation != nil {
				verdict = "caught"
			}
			if ms.Kind == check.MonitorNone {
				verdict, trend, finalMinT = "recorded", "-", "-"
			}
			t.AddRow(w.name, ms.String(), res.History.Len(), len(res.Verdict.Samples),
				verdict, trend, finalMinT, matchesFull(ref, res, ms))
		}
	}
	return t, nil
}

// matchesFull scores a row against the sequential full-monitor reference.
func matchesFull(ref, res *live.Result, ms check.MonitorSpec) string {
	switch ms.Kind {
	case check.MonitorFull:
		return "ref"
	case check.MonitorNone:
		return "n/a"
	case check.MonitorSample:
		if (ref.Violation == nil) == (res.Violation == nil) {
			return "verdict"
		}
		return "NO"
	}
	if (ref.Violation == nil) != (res.Violation == nil) {
		return "NO"
	}
	if ref.Violation != nil {
		rv, sv := ref.Violation, res.Violation
		if rv.Start != sv.Start || rv.End != sv.End || rv.MinT != sv.MinT || rv.Window.String() != sv.Window.String() {
			return "NO"
		}
	}
	if ref.Verdict.Trend != res.Verdict.Trend || ref.Verdict.FinalMinT != res.Verdict.FinalMinT ||
		len(ref.Verdict.Samples) != len(res.Verdict.Samples) {
		return "NO"
	}
	return "yes"
}
