package gen

import (
	"math/rand"
	"testing"

	"github.com/elin-go/elin/internal/check"
	"github.com/elin-go/elin/internal/spec"
)

func TestRegisterGeneratorUncorruptedIsLinearizable(t *testing.T) {
	objs := map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		h := Register(r, HistoryConfig{Procs: 3, Ops: 8})
		ok, err := check.Linearizable(objs, h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("trial %d: uncorrupted register history not linearizable\n%s", trial, h)
		}
	}
}

func TestFetchIncGeneratorUncorruptedIsLinearizable(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		h := FetchInc(r, HistoryConfig{Procs: 3, Ops: 8})
		mt, ok, err := check.MinT(obj, h, check.Options{})
		if err != nil || !ok {
			t.Fatal(err)
		}
		if mt != 0 {
			t.Fatalf("trial %d: uncorrupted fetchinc history has MinT %d\n%s", trial, mt, h)
		}
	}
}

func TestCorruptionProducesViolations(t *testing.T) {
	objs := map[string]spec.Object{"X": spec.NewObject(spec.Register{})}
	r := rand.New(rand.NewSource(3))
	violations := 0
	for trial := 0; trial < 30; trial++ {
		h := Register(r, HistoryConfig{Procs: 3, Ops: 8, Corrupt: 0.5})
		ok, err := check.Linearizable(objs, h, check.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("50% corruption never produced a violation")
	}
}

func TestPendingBiasLeavesOverlap(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	overlapped := false
	for trial := 0; trial < 20 && !overlapped; trial++ {
		h := FetchInc(r, HistoryConfig{Procs: 3, Ops: 10, PendingBias: 0.7})
		ops := h.Operations()
		for i := range ops {
			for j := range ops {
				if i != j && !ops[i].Pending() && ops[i].Inv < ops[j].Inv &&
					(ops[i].Res < 0 || ops[j].Inv < ops[i].Res) {
					overlapped = true
				}
			}
		}
	}
	if !overlapped {
		t.Fatal("pending bias produced no overlapping operations")
	}
}

func TestSection32Counterexample(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	for k := 1; k <= 8; k++ {
		h, err := Section32Counterexample(k)
		if err != nil {
			t.Fatal(err)
		}
		if h.Len() != 2*(k+1) {
			t.Fatalf("k=%d: len %d", k, h.Len())
		}
		ok, err := check.TLinearizable(obj, h, 2, check.Options{})
		if err != nil || !ok {
			t.Fatalf("k=%d: not 2-linearizable (%v)", k, err)
		}
	}
}

func TestProposition9Counterexample(t *testing.T) {
	h, objs, err := Proposition9Counterexample(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 5 || h.Len() != 20 {
		t.Fatalf("objs %d, len %d", len(objs), h.Len())
	}
	local, err := check.MinTLocal(objs, h, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, to := range local {
		if to != 2 {
			t.Errorf("%s: t_o = %d, want 2", name, to)
		}
	}
}

func TestSloppyTrace(t *testing.T) {
	obj := spec.NewObject(spec.FetchInc{})
	h, err := SloppyTrace(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	v, err := check.TrackMinT(obj, h, 4, check.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Trend != check.TrendDiverging {
		t.Fatalf("sloppy trace trend = %v, want diverging (samples %v)", v.Trend, v.Samples)
	}
	if v.Slope < 0.8 {
		t.Fatalf("slope = %f, want near 1 (one event of t per event of history)", v.Slope)
	}
}

func TestDefaults(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	h := Register(r, HistoryConfig{})
	if h.Len() == 0 {
		t.Fatal("default config generated empty history")
	}
	if h.Objects()[0] != "X" {
		t.Fatalf("default object = %s", h.Objects()[0])
	}
}
