// Package gen generates workloads and random histories for tests,
// experiments and benchmarks: concurrent histories with controllable
// correctness (responses drawn from an atomic simulation, optionally
// corrupted), and the two counterexample histories written out in the
// paper (Section 3.2 and Proposition 9).
package gen

import (
	"fmt"
	"math/rand"

	"github.com/elin-go/elin/internal/history"
	"github.com/elin-go/elin/internal/spec"
)

// HistoryConfig controls random history generation.
type HistoryConfig struct {
	// Procs is the number of processes.
	Procs int
	// Ops is the number of operations to invoke.
	Ops int
	// Corrupt is the probability that a response is replaced by a random
	// value (producing histories that violate consistency conditions).
	Corrupt float64
	// PendingBias is the probability that a completed operation's response
	// is withheld for a while (increasing overlap).
	PendingBias float64
	// Object is the object name (default "X").
	Object string
}

// Register generates a random register history: responses are produced by
// an atomic register at the response point, then corrupted per config.
func Register(r *rand.Rand, cfg HistoryConfig) *history.History {
	cfg = cfg.defaults()
	h := history.New()
	val := int64(0)
	type pendingOp struct {
		isRead bool
		arg    int64
	}
	pending := make(map[int]*pendingOp)
	invoked := 0
	for steps := 0; steps < 8*cfg.Ops+16; steps++ {
		p := r.Intn(cfg.Procs)
		if po, ok := pending[p]; ok {
			if r.Float64() < cfg.PendingBias {
				continue
			}
			var resp int64
			if po.isRead {
				resp = val
			} else {
				val = po.arg
			}
			if r.Float64() < cfg.Corrupt {
				resp = int64(r.Intn(4))
			}
			mustRespond(h, p, resp)
			delete(pending, p)
		} else if invoked < cfg.Ops {
			po := &pendingOp{isRead: r.Intn(2) == 0}
			op := spec.MakeOp(spec.MethodRead)
			if !po.isRead {
				po.arg = int64(1 + r.Intn(3))
				op = spec.MakeOp1(spec.MethodWrite, po.arg)
			}
			mustInvoke(h, p, cfg.Object, op)
			pending[p] = po
			invoked++
		}
	}
	return h
}

// FetchInc generates a random fetch&increment history.
func FetchInc(r *rand.Rand, cfg HistoryConfig) *history.History {
	cfg = cfg.defaults()
	h := history.New()
	counter := int64(0)
	pending := make(map[int]bool)
	invoked := 0
	for steps := 0; steps < 8*cfg.Ops+16; steps++ {
		p := r.Intn(cfg.Procs)
		if pending[p] {
			if r.Float64() < cfg.PendingBias {
				continue
			}
			resp := counter
			counter++
			if r.Float64() < cfg.Corrupt {
				resp = int64(r.Intn(cfg.Ops + 1))
			}
			mustRespond(h, p, resp)
			delete(pending, p)
		} else if invoked < cfg.Ops {
			mustInvoke(h, p, cfg.Object, spec.MakeOp(spec.MethodFetchInc))
			pending[p] = true
			invoked++
		}
	}
	return h
}

func (cfg HistoryConfig) defaults() HistoryConfig {
	if cfg.Procs <= 0 {
		cfg.Procs = 2
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 6
	}
	if cfg.Object == "" {
		cfg.Object = "X"
	}
	return cfg
}

// Section32Counterexample builds the paper's Section 3.2 history showing
// that t-linearizability is not a safety property: process p's fetch&inc
// answers 0, then process q's fetch&incs answer 0, 1, 2, ..., k-1. Every
// finite prefix is 2-linearizable, but the slot that p's operation must
// take escapes to infinity as k grows.
func Section32Counterexample(k int) (*history.History, error) {
	h := history.New()
	if err := h.Call(0, "X", spec.MakeOp(spec.MethodFetchInc), 0); err != nil {
		return nil, err
	}
	for i := 0; i < k; i++ {
		if err := h.Call(1, "X", spec.MakeOp(spec.MethodFetchInc), int64(i)); err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Proposition9Counterexample builds the paper's history over registers
// R1, R2, ..., Rk: for each i, p writes 1 to Ri and then q reads 0 from Ri.
// Each per-object projection is eventually linearizable with a constant
// t_o, but the whole history needs t growing with k — eventual
// linearizability is local only for finitely many objects. The object
// specifications are returned alongside the history.
func Proposition9Counterexample(k int) (*history.History, map[string]spec.Object, error) {
	h := history.New()
	objs := make(map[string]spec.Object, k)
	for i := 1; i <= k; i++ {
		name := fmt.Sprintf("R%d", i)
		objs[name] = spec.NewObject(spec.Register{})
		if err := h.Call(0, name, spec.MakeOp1(spec.MethodWrite, 1), 0); err != nil {
			return nil, nil, err
		}
		if err := h.Call(1, name, spec.MakeOp(spec.MethodRead), 0); err != nil {
			return nil, nil, err
		}
	}
	return h, objs, nil
}

// SloppyTrace builds the canonical Corollary 19 divergence witness
// directly: n processes interleave fetch&incs so that every group of n
// concurrent operations returns the same n values (each process counts
// only itself plus stale announcements). Group g's operations all return
// g, so MinT grows linearly with the number of groups.
func SloppyTrace(n, groups int) (*history.History, error) {
	h := history.New()
	for g := 0; g < groups; g++ {
		for p := 0; p < n; p++ {
			if err := h.Invoke(p, "X", spec.MakeOp(spec.MethodFetchInc)); err != nil {
				return nil, err
			}
		}
		for p := 0; p < n; p++ {
			if err := h.Respond(p, int64(g)); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

func mustInvoke(h *history.History, p int, obj string, op spec.Op) {
	if err := h.Invoke(p, obj, op); err != nil {
		// The generators control well-formedness themselves; a failure
		// here is a bug in this package.
		panic(fmt.Sprintf("gen: invoke: %v", err))
	}
}

func mustRespond(h *history.History, p int, resp int64) {
	if err := h.Respond(p, resp); err != nil {
		panic(fmt.Sprintf("gen: respond: %v", err))
	}
}
